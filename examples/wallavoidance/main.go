// Wall avoidance: the motivating story of the paper's Figure 1.
//
// Deterministic optimization keeps improving whatever path is nominally
// critical, which equalizes path delays into a "wall" just below the
// critical delay. Under process variation every near-critical path can
// become the slowest one, so the wall hurts the statistical delay. The
// statistical optimizer spends the same area without building the wall.
//
//	go run ./examples/wallavoidance
package main

import (
	"context"
	"fmt"
	"log"

	"statsize"
)

func main() {
	const iters = 80
	ctx := context.Background()

	eng, err := statsize.New()
	if err != nil {
		log.Fatal(err)
	}
	// One cached netlist serves both runs: each Optimize call sizes its
	// own private clone of d.
	d, err := eng.Benchmark("c432")
	if err != nil {
		log.Fatal(err)
	}

	detRes, err := eng.Optimize(ctx, d, "deterministic", statsize.MaxIterations(iters))
	if err != nil {
		log.Fatal(err)
	}
	// Equal area: the statistical optimizer gets the same number of
	// width steps the deterministic one actually used.
	statRes, err := eng.Optimize(ctx, d, "accelerated", statsize.MaxIterations(detRes.Iterations))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equal added area: deterministic %d steps, statistical %d steps\n",
		detRes.Iterations, statRes.Iterations)

	det, stat := detRes.Design, statRes.Design

	// Compare the path profiles on a common delay axis (as Figure 1
	// does): the wall shows up as the population of paths slower than a
	// shared threshold near the deterministic design's critical delay.
	detCrit := eng.AnalyzeSTA(det).CircuitDelay()
	threshold := 0.92 * detCrit
	for _, c := range []struct {
		name string
		d    *statsize.Design
	}{{"deterministic", det}, {"statistical", stat}} {
		crit := eng.AnalyzeSTA(c.d).CircuitDelay()
		h := statsize.PathHistogram(c.d, detCrit/300)
		wall := h.CountAtLeast(threshold)
		a, err := eng.AnalyzeSSTA(ctx, c.d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s nominal %.4f ns | paths slower than %.3f ns: %9.3g | p99 %.4f ns\n",
			c.name, crit, threshold, wall, a.Percentile(0.99))
	}

	detA, err := eng.AnalyzeSSTA(ctx, det)
	if err != nil {
		log.Fatal(err)
	}
	statA, err := eng.AnalyzeSSTA(ctx, stat)
	if err != nil {
		log.Fatal(err)
	}
	d99, s99 := detA.Percentile(0.99), statA.Percentile(0.99)
	fmt.Printf("\nstatistical optimization wins the 99-percentile delay by %.2f%% at the same area\n",
		100*(d99-s99)/d99)
}
