// Wall avoidance: the motivating story of the paper's Figure 1.
//
// Deterministic optimization keeps improving whatever path is nominally
// critical, which equalizes path delays into a "wall" just below the
// critical delay. Under process variation every near-critical path can
// become the slowest one, so the wall hurts the statistical delay. The
// statistical optimizer spends the same area without building the wall.
//
//	go run ./examples/wallavoidance
package main

import (
	"fmt"
	"log"

	"statsize"
)

func main() {
	const iters = 80

	det, err := statsize.Benchmark("c432")
	if err != nil {
		log.Fatal(err)
	}
	stat, err := statsize.Benchmark("c432")
	if err != nil {
		log.Fatal(err)
	}

	detRes, err := statsize.OptimizeDeterministic(det, statsize.Config{MaxIterations: iters})
	if err != nil {
		log.Fatal(err)
	}
	// Equal area: the statistical optimizer gets the same number of
	// width steps the deterministic one actually used.
	statRes, err := statsize.OptimizeAccelerated(stat, statsize.Config{MaxIterations: detRes.Iterations})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equal added area: deterministic %d steps, statistical %d steps\n",
		detRes.Iterations, statRes.Iterations)

	// Compare the path profiles on a common delay axis (as Figure 1
	// does): the wall shows up as the population of paths slower than a
	// shared threshold near the deterministic design's critical delay.
	detCrit := statsize.AnalyzeSTA(det).CircuitDelay()
	threshold := 0.92 * detCrit
	for _, c := range []struct {
		name string
		d    *statsize.Design
	}{{"deterministic", det}, {"statistical", stat}} {
		crit := statsize.AnalyzeSTA(c.d).CircuitDelay()
		h := statsize.PathHistogram(c.d, detCrit/300)
		wall := h.CountAtLeast(threshold)
		a, err := statsize.AnalyzeSSTA(c.d, 600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s nominal %.4f ns | paths slower than %.3f ns: %9.3g | p99 %.4f ns\n",
			c.name, crit, threshold, wall, a.Percentile(0.99))
	}

	detA, _ := statsize.AnalyzeSSTA(det, 600)
	statA, _ := statsize.AnalyzeSSTA(stat, 600)
	d99, s99 := detA.Percentile(0.99), statA.Percentile(0.99)
	fmt.Printf("\nstatistical optimization wins the 99-percentile delay by %.2f%% at the same area\n",
		100*(d99-s99)/d99)
}
