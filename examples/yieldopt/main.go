// Yield optimization: use the full delay CDF to answer the questions a
// designer actually asks — "what clock period gives 95% parametric
// yield?" and "how much area buys how much yield?".
//
// The optimizer supports any objective on the sink CDF; this example
// contrasts a p99 run with a mean-delay run and reads yield off the
// resulting distributions, tracing the area-yield trade-off as it goes.
//
//	go run ./examples/yieldopt
package main

import (
	"fmt"
	"log"

	"statsize"
)

func main() {
	base, err := statsize.Benchmark("c880")
	if err != nil {
		log.Fatal(err)
	}
	a, err := statsize.AnalyzeSSTA(base, 600)
	if err != nil {
		log.Fatal(err)
	}
	// Target clock: the minimum-size 10th percentile — only ~10% of dies
	// make it at minimum size, so sizing has real yield to win.
	target := a.Percentile(0.10)
	fmt.Printf("target clock period: %.4f ns\n", target)
	fmt.Printf("min-size yield at target: %.1f%%\n", 100*a.SinkDist().CDF(target))

	for _, objective := range []statsize.Objective{
		statsize.Percentile(0.99),
		statsize.Mean{},
	} {
		d, err := statsize.Benchmark("c880")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\noptimizing objective %v:\n", objective)
		fmt.Printf("  %-6s %-12s %-10s\n", "iter", "total size", "yield @ target")
		res, err := statsize.OptimizeAccelerated(d, statsize.Config{
			MaxIterations: 60,
			Objective:     objective,
			OnIteration: func(r statsize.IterRecord) {
				// Yield moves fastest in the first few steps; sample
				// densely there, sparsely afterwards.
				it := r.Iter + 1
				if !(it <= 10 && it%2 == 0) && it%15 != 0 {
					return
				}
				ya, err := statsize.AnalyzeSSTA(d, 600)
				if err != nil {
					return
				}
				fmt.Printf("  %-6d %-12.1f %.1f%%\n",
					r.Iter+1, r.TotalWidth, 100*ya.SinkDist().CDF(target))
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		final, err := statsize.AnalyzeSSTA(d, 600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  final: %v %.4f -> %.4f ns, yield %.1f%% (+%.1f%% area)\n",
			objective, res.InitialObjective, res.FinalObjective,
			100*final.SinkDist().CDF(target), res.AreaIncrease())
	}
}
