// Yield optimization: use the full delay CDF to answer the questions a
// designer actually asks — "what clock period gives 95% parametric
// yield?" and "how much area buys how much yield?".
//
// The optimizer supports any objective on the sink CDF; this example
// contrasts a p99 run with a mean-delay run and reads yield off the
// resulting distributions. Because Engine.Optimize hands back the sized
// clone after each call, the area-yield trade-off is traced by running
// the optimizer in short bursts and re-analyzing between them — the
// session-style composition the Engine API is built for.
//
//	go run ./examples/yieldopt
package main

import (
	"context"
	"fmt"
	"log"

	"statsize"
)

func main() {
	ctx := context.Background()
	eng, err := statsize.New()
	if err != nil {
		log.Fatal(err)
	}
	base, err := eng.Benchmark("c880")
	if err != nil {
		log.Fatal(err)
	}
	a, err := eng.AnalyzeSSTA(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	// Target clock: the minimum-size 10th percentile — only ~10% of dies
	// make it at minimum size, so sizing has real yield to win.
	target := a.Percentile(0.10)
	fmt.Printf("target clock period: %.4f ns\n", target)
	fmt.Printf("min-size yield at target: %.1f%%\n", 100*a.SinkDist().CDF(target))

	const bursts, burstIters = 6, 10
	for _, objective := range []statsize.Objective{
		statsize.Percentile(0.99),
		statsize.Mean{},
	} {
		fmt.Printf("\noptimizing objective %v:\n", objective)
		fmt.Printf("  %-6s %-12s %-10s\n", "iters", "total size", "yield @ target")
		d := base
		initial, final := 0.0, 0.0
		for burst := 0; burst < bursts; burst++ {
			res, err := eng.Optimize(ctx, d, "accelerated",
				statsize.MaxIterations(burstIters),
				statsize.ForObjective(objective),
			)
			if err != nil {
				log.Fatal(err)
			}
			if burst == 0 {
				initial = res.InitialObjective
			}
			final = res.FinalObjective
			d = res.Design
			ya, err := eng.AnalyzeSSTA(ctx, d)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6d %-12.1f %.1f%%\n",
				(burst+1)*burstIters, d.TotalWidth(), 100*ya.SinkDist().CDF(target))
			if res.Iterations < burstIters {
				break // converged early
			}
		}
		areaInc := 100 * (d.TotalWidth() - base.TotalWidth()) / base.TotalWidth()
		fmt.Printf("  final: %v %.4f -> %.4f ns (+%.1f%% area)\n",
			objective, initial, final, areaInc)
	}
}
