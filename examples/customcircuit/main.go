// Custom circuits: bring your own netlist. This example sizes the
// genuine ISCAS'85 c17 parsed from .bench text, then a synthetic circuit
// generated to a custom spec, comparing brute-force and accelerated
// optimizers — which must agree gate for gate. Both runs size private
// clones of the same loaded design.
//
//	go run ./examples/customcircuit
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"statsize"
)

// A tiny carry-skip-like fragment in .bench format.
const myBench = `
# adder fragment
INPUT(a0) INPUT(b0)
INPUT(a1)
INPUT(b1)
INPUT(cin)
OUTPUT(s1)
OUTPUT(cout)
p0 = XOR(a0, b0)
g0 = AND(a0, b0)
c1a = AND(p0, cin)
c1 = OR(g0, c1a)
p1 = XOR(a1, b1)
g1 = AND(a1, b1)
s1 = XOR(p1, c1)
c2a = AND(p1, c1)
cout = OR(g1, c2a)
`

func main() {
	ctx := context.Background()
	eng, err := statsize.New(statsize.WithBins(800))
	if err != nil {
		log.Fatal(err)
	}

	// Note: the parser takes one declaration per line.
	src := strings.ReplaceAll(myBench, "INPUT(a0) INPUT(b0)", "INPUT(a0)\nINPUT(b0)")
	d, err := eng.LoadBench(strings.NewReader(src), "adder2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.NL)

	// One design, two optimizers: each run clones d, so no second parse
	// is needed and d itself stays minimum-sized.
	accRes, err := eng.Optimize(ctx, d, "accelerated", statsize.MaxIterations(10))
	if err != nil {
		log.Fatal(err)
	}
	bruRes, err := eng.Optimize(ctx, d, "brute-force", statsize.MaxIterations(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerated: p99 %.4f -> %.4f ns in %v\n",
		accRes.InitialObjective, accRes.FinalObjective, accRes.Elapsed.Round(1000000))
	fmt.Printf("brute force: p99 %.4f -> %.4f ns in %v\n",
		bruRes.InitialObjective, bruRes.FinalObjective, bruRes.Elapsed.Round(1000000))
	for i := range accRes.Records {
		a, b := accRes.Records[i].Gates[0], bruRes.Records[i].Gates[0]
		if a != b {
			log.Fatalf("iteration %d: optimizers disagree (%v vs %v)", i, a, b)
		}
	}
	fmt.Println("exactness check: both optimizers sized the same gates in the same order")

	// Synthetic circuits with exact graph statistics are one call away —
	// here a 500-node, depth-20 benchmark of our own.
	custom, err := eng.GenerateCircuit(statsize.CircuitSpec{
		Name: "mydesign", Nodes: 500, Edges: 900, PIs: 40, POs: 25, Depth: 20, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Optimize(ctx, custom, "accelerated", statsize.MaxIterations(40))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v\n", custom.NL)
	fmt.Printf("custom circuit: p99 %.4f -> %.4f ns (%.1f%% better, +%.1f%% area)\n",
		res.InitialObjective, res.FinalObjective, res.Improvement(), res.AreaIncrease())
}
