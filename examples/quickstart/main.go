// Quickstart: open an incremental timing session on a benchmark, query
// its statistical timing (percentiles, slack, criticality), evaluate
// what-if resizes without committing, run the paper's accelerated
// statistical gate sizer against the same session, and validate the
// result with Monte Carlo.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"statsize"
)

func main() {
	ctx := context.Background()

	// An Engine is the long-lived entry point: library and analysis
	// defaults bound once, then any number of requests.
	eng, err := statsize.New(
		statsize.WithBins(600),
		statsize.WithObjective(statsize.Percentile(0.99)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The replica of ISCAS'85 c432 — 214 timing-graph nodes and 379
	// edges, exactly as in the paper's Table 1.
	d, err := eng.Benchmark("c432")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.NL)

	// Deterministic timing: the longest path through nominal delays.
	nominal := eng.AnalyzeSTA(d).CircuitDelay()
	fmt.Printf("nominal circuit delay: %.4f ns\n", nominal)

	// Open a session: one full SSTA pass up front, every query and
	// mutation incremental from here on. The session owns a private
	// clone; d itself is never touched.
	s, err := eng.Open(ctx, d)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	sink, _ := s.SinkDist()
	p99, _ := s.Percentile(0.99)
	fmt.Printf("statistical delay: mean %.4f ns, p99 %.4f ns\n", sink.Mean(), p99)

	// Statistical slack and criticality per gate, from the backward
	// required-time pass — no Monte Carlo needed. Measure against the
	// mean circuit delay as the deadline: gates with P(slack<=0) near
	// 0.5 sit on the statistically critical paths.
	if err := s.SetDeadline(sink.Mean()); err != nil {
		log.Fatal(err)
	}
	numGates, err := s.NumGates()
	if err != nil {
		log.Fatal(err)
	}
	best, bestCrit := statsize.GateID(-1), 0.0
	for g := 0; g < numGates; g++ {
		crit, err := s.Criticality(ctx, statsize.GateID(g))
		if err != nil {
			log.Fatal(err)
		}
		if crit > bestCrit {
			best, bestCrit = statsize.GateID(g), crit
		}
	}
	fmt.Printf("most critical gate: %d (P(slack<=0) = %.2f)\n", best, bestCrit)

	// What-if: the exact p99 sensitivity of upsizing that gate, via
	// perturbation propagation — nothing is committed.
	w, _ := s.Width(best)
	wi, err := s.WhatIf(ctx, best, w+0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("what-if gate %d at width %.1f: p99 %.4f -> %.4f ns (%d of %d nodes touched)\n",
		best, wi.Width, p99, wi.Objective, wi.NodesVisited, numGates)

	// Commit it transactionally: checkpoint, resize incrementally, and
	// keep the rollback handle in case we change our mind.
	if _, err := s.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	rs, err := s.Resize(ctx, best, w+0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed: p99 %.4f ns, %d nodes recomputed (full pass = %d)\n",
		rs.Objective, rs.NodesRecomputed, rs.FullPassNodes)

	// Run the paper's accelerated statistical optimizer against the same
	// session. Each iteration finds the gate whose upsizing most
	// improves the p99 delay — using perturbation-bound pruning instead
	// of a full SSTA run per candidate — and commits it incrementally.
	res, err := eng.OptimizeSession(ctx, s, "accelerated", statsize.MaxIterations(60))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d sizing iterations: p99 %.4f -> %.4f ns (%.1f%% better, +%.1f%% area)\n",
		res.Iterations, res.InitialObjective, res.FinalObjective,
		res.Improvement(), res.AreaIncrease())
	st, _ := s.Stats()
	fmt.Printf("session totals: %d resizes, %.0f nodes recomputed per commit on average (full pass = %d)\n",
		st.Resizes, float64(st.NodesRecomputed)/float64(st.Resizes), st.TotalNodes)

	// Monte Carlo confirms the SSTA bound tracked the true distribution.
	sized, err := s.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	mc, err := eng.MonteCarlo(ctx, sized, 5000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo p99: %.4f ns (bound error %+.2f%%)\n",
		mc.Percentile(0.99),
		100*(res.FinalObjective-mc.Percentile(0.99))/mc.Percentile(0.99))
}
