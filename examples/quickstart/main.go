// Quickstart: load a benchmark, inspect its statistical timing, run the
// paper's accelerated statistical gate sizer, and validate the result
// with Monte Carlo.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"statsize"
)

func main() {
	// The replica of ISCAS'85 c432 — 214 timing-graph nodes and 379
	// edges, exactly as in the paper's Table 1.
	d, err := statsize.Benchmark("c432")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.NL)

	// Deterministic timing: the longest path through nominal delays.
	nominal := statsize.AnalyzeSTA(d).CircuitDelay()
	fmt.Printf("nominal circuit delay: %.4f ns\n", nominal)

	// Statistical timing: with 10%-sigma intra-die variation the
	// 99-percentile delay sits well above nominal.
	a, err := statsize.AnalyzeSSTA(d, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistical delay: mean %.4f ns, p99 %.4f ns\n",
		a.SinkDist().Mean(), a.Percentile(0.99))

	// Size gates with the accelerated statistical optimizer. Each
	// iteration finds the gate whose upsizing most improves the p99
	// delay — using perturbation-bound pruning instead of a full SSTA
	// run per candidate.
	res, err := statsize.OptimizeAccelerated(d, statsize.Config{MaxIterations: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d sizing iterations: p99 %.4f -> %.4f ns (%.1f%% better, +%.1f%% area)\n",
		res.Iterations, res.InitialObjective, res.FinalObjective,
		res.Improvement(), res.AreaIncrease())

	// Monte Carlo confirms the SSTA bound tracked the true distribution.
	mc, err := statsize.MonteCarlo(d, 5000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo p99: %.4f ns (bound error %+.2f%%)\n",
		mc.Percentile(0.99),
		100*(res.FinalObjective-mc.Percentile(0.99))/mc.Percentile(0.99))
}
