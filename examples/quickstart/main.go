// Quickstart: build an engine, load a benchmark, inspect its
// statistical timing, run the paper's accelerated statistical gate
// sizer, and validate the result with Monte Carlo.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"statsize"
)

func main() {
	ctx := context.Background()

	// An Engine is a long-lived, concurrency-safe session: library and
	// analysis defaults bound once, then any number of requests.
	eng, err := statsize.New(
		statsize.WithBins(600),
		statsize.WithObjective(statsize.Percentile(0.99)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The replica of ISCAS'85 c432 — 214 timing-graph nodes and 379
	// edges, exactly as in the paper's Table 1.
	d, err := eng.Benchmark("c432")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.NL)

	// Deterministic timing: the longest path through nominal delays.
	nominal := eng.AnalyzeSTA(d).CircuitDelay()
	fmt.Printf("nominal circuit delay: %.4f ns\n", nominal)

	// Statistical timing: with 10%-sigma intra-die variation the
	// 99-percentile delay sits well above nominal.
	a, err := eng.AnalyzeSSTA(ctx, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistical delay: mean %.4f ns, p99 %.4f ns\n",
		a.SinkDist().Mean(), a.Percentile(0.99))

	// Size gates with the accelerated statistical optimizer. Each
	// iteration finds the gate whose upsizing most improves the p99
	// delay — using perturbation-bound pruning instead of a full SSTA
	// run per candidate. The run works on a private clone; d itself is
	// untouched and the sized design comes back in res.Design.
	res, err := eng.Optimize(ctx, d, "accelerated", statsize.MaxIterations(60))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d sizing iterations: p99 %.4f -> %.4f ns (%.1f%% better, +%.1f%% area)\n",
		res.Iterations, res.InitialObjective, res.FinalObjective,
		res.Improvement(), res.AreaIncrease())

	// Monte Carlo confirms the SSTA bound tracked the true distribution.
	mc, err := eng.MonteCarlo(ctx, res.Design, 5000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo p99: %.4f ns (bound error %+.2f%%)\n",
		mc.Percentile(0.99),
		100*(res.FinalObjective-mc.Percentile(0.99))/mc.Percentile(0.99))
}
