// Package client is the public resilient client for the statsized
// daemon. It re-exports the implementation in internal/client together
// with the wire types it speaks, so programs outside this repository's
// internal tree can drive a daemon with retries, Retry-After honoring,
// and optimize-stream reconnection:
//
//	cl, err := client.New(client.Config{BaseURL: "http://127.0.0.1:8790"})
//	sess, err := cl.Open(ctx, &client.OpenSessionRequest{Design: "c1908"})
//	done, err := cl.Optimize(ctx, sess.SessionID,
//	    &client.OptimizeRequest{Optimizer: "accelerated"}, nil)
//
// See DESIGN.md "Resilience" for the retry/idempotency table.
package client

import (
	iclient "statsize/internal/client"
	"statsize/internal/server"
)

// Client, Config, APIError, and Event are the resilient client proper.
type (
	Client   = iclient.Client
	Config   = iclient.Config
	APIError = iclient.APIError
	Event    = iclient.Event
)

// New builds a Client; Config.BaseURL is required.
var New = iclient.New

// Wire types for every endpoint the client speaks.
type (
	OpenSessionRequest  = server.OpenSessionRequest
	OpenSessionResponse = server.OpenSessionResponse
	SessionInfoResponse = server.SessionInfoResponse
	AnalyzeRequest      = server.AnalyzeRequest
	AnalyzeResponse     = server.AnalyzeResponse
	WhatIfRequest       = server.WhatIfRequest
	WhatIfResponse      = server.WhatIfResponse
	CandidateWire       = server.CandidateWire
	ResizeRequest       = server.ResizeRequest
	ResizeResponse      = server.ResizeResponse
	CheckpointResponse  = server.CheckpointResponse
	OptimizeRequest     = server.OptimizeRequest
	StartEvent          = server.StartEvent
	DoneEvent           = server.DoneEvent
	HealthResponse      = server.HealthResponse
	AdmissionHealth     = server.AdmissionHealth
	ClassHealth         = server.ClassHealth
	StatsResponse       = server.StatsResponse
)
