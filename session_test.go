package statsize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/ssta"
)

// sessionDT and sessionNumGates unwrap the locked accessors for tests
// that only need the value.
func sessionDT(t testing.TB, s *Session) float64 {
	t.Helper()
	dt, err := s.DT()
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func sessionNumGates(t testing.TB, s *Session) int {
	t.Helper()
	n, err := s.NumGates()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func openSession(t testing.TB, circuit string, opts ...RunOption) (*Engine, *Session) {
	t.Helper()
	eng, err := New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.Benchmark(circuit)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Open(context.Background(), d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return eng, s
}

func TestSessionQueries(t *testing.T) {
	_, s := openSession(t, "c432")
	ctx := context.Background()

	sink, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	p99, err := s.Percentile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p99 != sink.Percentile(0.99) {
		t.Errorf("Percentile(0.99) = %v, sink says %v", p99, sink.Percentile(0.99))
	}
	obj, err := s.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if obj != p99 {
		t.Errorf("default objective %v should be the 99th percentile %v", obj, p99)
	}
	if name, err := s.ObjectiveName(); err != nil || name != "p99" {
		t.Errorf("ObjectiveName = %q, want p99", name)
	}

	// Per-gate queries across the whole netlist: arrivals exist, slack
	// distributions exist, criticalities are probabilities, and at least
	// one gate is statistically critical against the default deadline.
	maxCrit := 0.0
	for g := 0; g < sessionNumGates(t, s); g++ {
		arr, err := s.Arrival(GateID(g))
		if err != nil {
			t.Fatal(err)
		}
		if arr == nil || arr.Mean() <= 0 {
			t.Fatalf("gate %d: missing arrival", g)
		}
		crit, err := s.Criticality(ctx, GateID(g))
		if err != nil {
			t.Fatal(err)
		}
		if crit < 0 || crit > 1 {
			t.Fatalf("gate %d: criticality %v outside [0,1]", g, crit)
		}
		if crit > maxCrit {
			maxCrit = crit
		}
	}
	if maxCrit <= 0 {
		t.Error("no gate has positive criticality against the default deadline")
	}

	// Required + slack are mutually consistent: slack = required - arrival
	// in distribution, so mean(slack) ~ mean(required) - mean(arrival).
	g := GateID(0)
	req, err := s.Required(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := s.Arrival(g)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := s.Slack(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(sl.Mean() - (req.Mean() - arr.Mean())); diff > 1e-9 {
		t.Errorf("slack mean %v != required mean - arrival mean %v (diff %v)",
			sl.Mean(), req.Mean()-arr.Mean(), diff)
	}

	// Out-of-range gates error instead of panicking.
	if _, err := s.Arrival(GateID(-1)); err == nil {
		t.Error("negative gate ID accepted")
	}
	if _, err := s.Width(GateID(sessionNumGates(t, s))); err == nil {
		t.Error("out-of-range gate ID accepted")
	}
}

// TestSessionWhatIfMatchesBruteForce is the exactness acceptance check:
// for every candidate gate of c432, the what-if sensitivity from the
// pruned perturbation propagation must equal the sensitivity from an
// unpruned full overlay propagation — the brute-force reference of
// Section 3.1 — bit for bit.
func TestSessionWhatIfMatchesBruteForce(t *testing.T) {
	_, s := openSession(t, "c432", WithConfig(Config{Bins: 400}))
	ctx := context.Background()

	// Independent full analysis of an identical design at the same grid.
	eng, err := New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ssta.Analyze(ctx, d, sessionDT(t, s))
	if err != nil {
		t.Fatal(err)
	}
	base := a.Percentile(0.99)
	deltaW := d.Lib.DeltaW

	candidates := 0
	for g := 0; g < d.NL.NumGates(); g++ {
		gid := GateID(g)
		w := d.Width(gid) + deltaW
		if w > d.Lib.WMax {
			continue
		}
		candidates++

		// Brute-force reference: propagate the perturbation through the
		// entire graph with no pruning.
		delays, err := a.PerturbedDelays(gid, w)
		if err != nil {
			t.Fatal(err)
		}
		gr := d.E.G
		arr := make([]*dist.Dist, gr.NumNodes())
		for _, n := range gr.Topo() {
			if n == gr.Source() {
				arr[n] = a.Arrival(n)
				continue
			}
			arr[n] = a.ArrivalWithOverlay(n,
				func(m graph.NodeID) *dist.Dist { return arr[m] },
				func(e graph.EdgeID) *dist.Dist { return delays[e] })
		}
		wantSens := (base - arr[gr.Sink()].Percentile(0.99)) / deltaW

		got, err := s.WhatIf(ctx, gid, w)
		if err != nil {
			t.Fatal(err)
		}
		if got.Sensitivity != wantSens {
			t.Fatalf("gate %d: WhatIf sensitivity %v != brute-force %v", g, got.Sensitivity, wantSens)
		}
		if got.NodesVisited <= 0 || got.NodesVisited > gr.NumNodes()-1 {
			t.Fatalf("gate %d: implausible visit count %d", g, got.NodesVisited)
		}
	}
	if candidates == 0 {
		t.Fatal("no candidate gates on c432")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WhatIfs != candidates {
		t.Errorf("stats report %d what-ifs, ran %d", st.WhatIfs, candidates)
	}
	if st.Resizes != 0 {
		t.Errorf("what-ifs must not commit, stats report %d resizes", st.Resizes)
	}
}

// resizeCone returns the structural perturbation cone of resizing gate
// x: every node reachable from the outputs of the affected gates (x and
// its fanin drivers). No bit-exact incremental timer can recompute fewer
// nodes than the part of this cone the perturbation actually reaches,
// and the session's commit must never recompute more.
func resizeCone(d *Design, x GateID) map[graph.NodeID]bool {
	g := d.E.G
	cone := make(map[graph.NodeID]bool)
	var queue []graph.NodeID
	for _, gid := range ssta.AffectedGates(d, x) {
		n := d.E.NodeOf[d.NL.Gate(gid).Out]
		if !cone[n] {
			cone[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, eid := range g.Out(n) {
			to := g.EdgeAt(eid).To
			if !cone[to] {
				cone[to] = true
				queue = append(queue, to)
			}
		}
	}
	return cone
}

// TestSessionResizeIncremental is the incrementality acceptance check:
// a mid-circuit resize on c1908 recomputes fewer than 20% of the nodes
// a full SSTA pass would, with the count visible in the stats API. The
// recompute set is structural — the nodes reachable from the resized
// gate and its fanin drivers — so the test picks its mid-circuit gate
// by that criterion: among gates in the middle band of logic levels,
// the one with the smallest reachable cone (mid-level cones on c1908
// span ~14%..50% of the graph; the commit must track the true cone,
// never the graph). The resized analysis must still match a
// from-scratch pass bit for bit.
func TestSessionResizeIncremental(t *testing.T) {
	_, s := openSession(t, "c1908")
	ctx := context.Background()

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g := snap.E.G
	target, bestCone := GateID(-1), 1<<30
	lo, hi := g.MaxLevel()*2/5, g.MaxLevel()*3/5
	for gi := 0; gi < snap.NL.NumGates(); gi++ {
		lvl := g.Level(snap.E.NodeOf[snap.NL.Gate(GateID(gi)).Out])
		if lvl < lo || lvl > hi {
			continue
		}
		if cone := len(resizeCone(snap, GateID(gi))); cone < bestCone {
			bestCone, target = cone, GateID(gi)
		}
	}
	if target < 0 {
		t.Fatal("no mid-level gate found")
	}

	w, err := s.Width(target)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Resize(ctx, target, w+snap.Lib.DeltaW)
	if err != nil {
		t.Fatal(err)
	}
	if rs.FullPassNodes != g.NumNodes()-1 {
		t.Errorf("FullPassNodes = %d, want %d", rs.FullPassNodes, g.NumNodes()-1)
	}
	if rs.NodesRecomputed > bestCone {
		t.Errorf("commit recomputed %d nodes, more than the structural cone %d", rs.NodesRecomputed, bestCone)
	}
	if frac := float64(rs.NodesRecomputed) / float64(rs.FullPassNodes); frac >= 0.20 {
		t.Errorf("mid-circuit resize recomputed %d of %d nodes (%.1f%%), want <20%%",
			rs.NodesRecomputed, rs.FullPassNodes, 100*frac)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.LastResizeNodes != rs.NodesRecomputed || st.NodesRecomputed != rs.NodesRecomputed || st.Resizes != 1 {
		t.Errorf("stats %+v inconsistent with resize report %+v", st, rs)
	}

	// The incremental commit must equal a from-scratch analysis.
	after, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ssta.Analyze(ctx, after, sessionDT(t, s))
	if err != nil {
		t.Fatal(err)
	}
	sink, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(sink, fresh.SinkDist(), 0) {
		t.Error("incremental commit diverged from full re-analysis")
	}
}

func TestSessionCheckpointRollback(t *testing.T) {
	_, s := openSession(t, "c880")
	ctx := context.Background()

	obj0, err := s.Objective()
	if err != nil {
		t.Fatal(err)
	}
	sink0, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	if depth, err := s.Checkpoint(); err != nil || depth != 1 {
		t.Fatalf("first checkpoint depth %d err %v", depth, err)
	}
	if _, err := s.Resize(ctx, 3, 4); err != nil {
		t.Fatal(err)
	}
	if depth, err := s.Checkpoint(); err != nil || depth != 2 {
		t.Fatalf("second checkpoint depth %d err %v", depth, err)
	}
	if _, err := s.Resize(ctx, 7, 8); err != nil {
		t.Fatal(err)
	}
	objMut, err := s.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if objMut >= obj0 {
		t.Logf("note: resizes did not improve objective (%v -> %v)", obj0, objMut)
	}

	// Rollback pops to the post-first-resize state.
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if w, _ := s.Width(7); w != 1 {
		t.Errorf("gate 7 width %v after rollback, want 1 (minimum)", w)
	}
	if w, _ := s.Width(3); w != 4 {
		t.Errorf("gate 3 width %v after rollback, want 4 (committed before checkpoint)", w)
	}
	// Second rollback restores the pristine state bit for bit.
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	sink1, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(sink0, sink1, 0) {
		t.Error("rollback did not restore the sink distribution exactly")
	}
	obj1, err := s.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if obj1 != obj0 {
		t.Errorf("objective %v after full rollback, want %v", obj1, obj0)
	}
	// Rollback stack must now be empty.
	if err := s.Rollback(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("rollback on empty stack: err = %v, want ErrNoCheckpoint", err)
	}

	// The rolled-back session remains fully usable: the analysis matches
	// a fresh pass over the restored design.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ssta.Analyze(ctx, snap, sessionDT(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(sink1, fresh.SinkDist(), 0) {
		t.Error("restored analysis diverged from full re-analysis")
	}
}

func TestSessionRollbackWithoutCheckpoint(t *testing.T) {
	_, s := openSession(t, "c17")
	if err := s.Rollback(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestSessionUseAfterClose(t *testing.T) {
	eng, err := New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s, err := eng.Open(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("second Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.SinkDist(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("SinkDist after Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Resize(ctx, 0, 2); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Resize after Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.WhatIf(ctx, 0, 2); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("WhatIf after Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Checkpoint(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Checkpoint after Close: err = %v, want ErrSessionClosed", err)
	}
	if err := s.Rollback(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Rollback after Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := eng.OptimizeSession(ctx, s, "accelerated", MaxIterations(1)); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("OptimizeSession after Close: err = %v, want ErrSessionClosed", err)
	}
}

// TestSessionConcurrentResize: concurrent Resize calls on one session
// serialize on the session lock (the documented behavior — no error,
// no corruption). Run under -race in CI.
func TestSessionConcurrentResize(t *testing.T) {
	_, s := openSession(t, "c432")
	ctx := context.Background()

	const workers = 8
	numGates := sessionNumGates(t, s)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				g := GateID((w*17 + k*53) % numGates)
				width, err := s.Width(g)
				if err != nil {
					errs[w] = err
					return
				}
				if _, err := s.Resize(ctx, g, width+0.5); err != nil {
					errs[w] = err
					return
				}
				if _, err := s.Percentile(0.99); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Resizes != workers*4 {
		t.Errorf("stats report %d resizes, want %d", st.Resizes, workers*4)
	}

	// After the storm the session must be exactly consistent.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ssta.Analyze(ctx, snap, sessionDT(t, s))
	if err != nil {
		t.Fatal(err)
	}
	sink, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(sink, fresh.SinkDist(), 0) {
		t.Error("concurrent resizes left the analysis inconsistent")
	}
	if err := snap.RecomputeLoads(1e-9); err != nil {
		t.Error(err)
	}
}

// TestSessionResizeCancellation: a canceled Resize is all-or-nothing —
// whether it was canceled before starting or mid-commit, the session
// must be left in its pre-call state and remain usable.
func TestSessionResizeCancellation(t *testing.T) {
	_, s := openSession(t, "c880")

	sink0, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	w0, err := s.Width(5)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-canceled context: must fail without touching anything.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Resize(pre, 5, w0+1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled resize: err = %v, want context.Canceled", err)
	}

	// Race a cancellation against a series of resizes; whichever resize
	// observes the cancel mid-commit must restore its pre-image.
	mid, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel2()
	}()
	for g := 0; g < sessionNumGates(t, s); g++ {
		if _, err := s.Resize(mid, GateID(g), w0+1); err != nil {
			break
		}
	}

	// Whatever was committed, the session must be exactly consistent.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ssta.Analyze(context.Background(), snap, sessionDT(t, s))
	if err != nil {
		t.Fatal(err)
	}
	sink, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(sink, fresh.SinkDist(), 0) {
		t.Error("cancellation left the analysis inconsistent with the design")
	}
	if w, _ := s.Width(5); w == w0 && dist.ApproxEqual(sink0, sink, 0) {
		// Everything canceled before the first commit — equally fine.
		t.Log("cancellation fired before any commit")
	}
}

// TestOptimizeSessionInterleaved drives the ROADMAP's "one engine, N
// workloads" story on a single session: query, what-if, manually resize,
// checkpoint, run a full optimizer, and keep querying afterwards.
func TestOptimizeSessionInterleaved(t *testing.T) {
	eng, s := openSession(t, "c432")
	ctx := context.Background()

	before, err := s.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.OptimizeSession(ctx, s, "accelerated", MaxIterations(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.FinalObjective >= before {
		t.Fatalf("optimizer made no progress: %+v", res)
	}
	after, err := s.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if after != res.FinalObjective {
		t.Errorf("session objective %v != optimizer final %v — session out of sync", after, res.FinalObjective)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Resizes != res.Iterations {
		t.Errorf("session saw %d resizes for %d optimizer iterations", st.Resizes, res.Iterations)
	}
	// Roll the whole optimization back.
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	objRolled, err := s.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if objRolled != before {
		t.Errorf("rollback after optimizer run: objective %v, want %v", objRolled, before)
	}
}

// TestWhatIfBatchMatchesSerial is the batch determinism acceptance
// check: WhatIfBatch over every candidate gate must return, in
// candidate order, results bit-identical to the equivalent serial
// WhatIf loop — same sensitivities, same objectives, same visit counts
// — and the stats accounting must aggregate identically. Runs at full
// engine parallelism, so any completion-order dependence or shared
// state in the fan-out would show up as a diff (or as a race under
// -race).
func TestWhatIfBatchMatchesSerial(t *testing.T) {
	_, serialS := openSession(t, "c880", WithConfig(Config{Bins: 400, Parallelism: 1}))
	_, batchS := openSession(t, "c880", WithConfig(Config{Bins: 400}))
	ctx := context.Background()

	numGates := sessionNumGates(t, serialS)
	var cands []Candidate
	for g := 0; g < numGates; g++ {
		gid := GateID(g)
		w, err := serialS.Width(gid)
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, Candidate{Gate: gid, Width: w + 0.5})
	}

	want := make([]WhatIfResult, len(cands))
	for i, c := range cands {
		r, err := serialS.WhatIf(ctx, c.Gate, c.Width)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	got, err := batchS.WhatIfBatch(ctx, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d results for %d candidates", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %d (gate %d): batch %+v != serial %+v", i, cands[i].Gate, got[i], want[i])
		}
	}

	stSerial, err := serialS.Stats()
	if err != nil {
		t.Fatal(err)
	}
	stBatch, err := batchS.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stBatch.WhatIfs != stSerial.WhatIfs || stBatch.WhatIfNodesVisited != stSerial.WhatIfNodesVisited {
		t.Errorf("batch stats (%d what-ifs, %d nodes) != serial stats (%d, %d)",
			stBatch.WhatIfs, stBatch.WhatIfNodesVisited, stSerial.WhatIfs, stSerial.WhatIfNodesVisited)
	}
	// Nothing committed on either session.
	if stBatch.Resizes != 0 {
		t.Errorf("batch committed %d resizes", stBatch.Resizes)
	}
}

// TestWhatIfBatchConcurrent hammers WhatIfBatch from several goroutines
// while others query, resize, checkpoint and roll back the same session
// — the -race coverage for the one-lock-many-workers design. A batch
// holds the session lock for its whole evaluation, so each one sees a
// frozen snapshot regardless of the surrounding mutations; the per-batch
// checks (results in candidate order, every candidate evaluated) hold
// under any interleaving, and the post-storm check proves the analysis
// ends exactly consistent with the design.
func TestWhatIfBatchConcurrent(t *testing.T) {
	_, s := openSession(t, "c432")
	ctx := context.Background()
	numGates := sessionNumGates(t, s)

	cands := make([]Candidate, 0, 16)
	for g := 0; g < 16; g++ {
		cands = append(cands, Candidate{Gate: GateID(g % numGates), Width: 3})
	}

	const hammers = 6
	var wg sync.WaitGroup
	errs := make([]error, hammers)
	for w := 0; w < hammers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				switch w % 3 {
				case 0: // batch evaluation
					res, err := s.WhatIfBatch(ctx, cands)
					if err != nil {
						errs[w] = err
						return
					}
					for i, r := range res {
						if r.Gate != cands[i].Gate {
							errs[w] = fmt.Errorf("batch result %d out of order: gate %d, want %d", i, r.Gate, cands[i].Gate)
							return
						}
						if r.NodesVisited <= 0 {
							errs[w] = fmt.Errorf("batch result %d: nothing visited: %+v", i, r)
							return
						}
					}
				case 1: // queries
					if _, err := s.Percentile(0.99); err != nil {
						errs[w] = err
						return
					}
					if _, err := s.Arrival(GateID((w + k) % numGates)); err != nil {
						errs[w] = err
						return
					}
				case 2: // mutations with rollback
					if _, err := s.Checkpoint(); err != nil {
						errs[w] = err
						return
					}
					gid := GateID((w*5 + k) % numGates)
					width, err := s.Width(gid)
					if err != nil {
						errs[w] = err
						return
					}
					if _, err := s.Resize(ctx, gid, width+0.5); err != nil {
						errs[w] = err
						return
					}
					if err := s.Rollback(); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("hammer %d: %v", w, err)
		}
	}

	// The session must end exactly consistent with its design.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ssta.Analyze(ctx, snap, sessionDT(t, s))
	if err != nil {
		t.Fatal(err)
	}
	sink, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(sink, fresh.SinkDist(), 0) {
		t.Error("concurrent batches left the analysis inconsistent")
	}
}
