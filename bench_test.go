// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark runs a scaled-down but shape-preserving
// version of the corresponding experiment; the cmd/ tools run the full
// protocols (see EXPERIMENTS.md for recorded paper-vs-measured results).
//
//	go test -bench=. -benchmem
package statsize

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"statsize/internal/core"
	"statsize/internal/experiments"
	"statsize/internal/ssta"
)

// benchOpts is the scaled-down experiment configuration used by the
// table/figure benchmarks.
func benchOpts(circuits ...string) experiments.Options {
	return experiments.Options{
		Circuits:        circuits,
		Iterations:      6,
		TimedIterations: 2,
		Bins:            400,
		MCSamples:       800,
		TracePoints:     3,
	}
}

// BenchmarkTable1 regenerates Table 1 rows (deterministic vs statistical
// 99-percentile delay at equal area).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(context.Background(), benchOpts("c432"))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 rows (brute force vs accelerated
// per-iteration runtime and pruning rate).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(context.Background(), benchOpts("c432"))
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Factor <= 0 {
			b.Fatal("bad factor")
		}
	}
}

// BenchmarkFigure1 regenerates the path-wall comparison of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(context.Background(), "c432", benchOpts("c432")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the single-step CDF perturbation of
// Figure 2.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(context.Background(), "c432", benchOpts("c432")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 regenerates the area-delay curves with Monte Carlo
// validation (the paper plots c3540; the benchmark uses c432 to stay
// fast — cmd/figure10 runs the paper's circuit).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(context.Background(), "c432", benchOpts("c432")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoundsVsMC regenerates the Section 4 accuracy check (SSTA
// bound vs Monte Carlo at the 99th percentile).
func BenchmarkBoundsVsMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BoundsVsMC(context.Background(), benchOpts("c432", "c880")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSTA measures one full statistical timing analysis pass per
// circuit — the inner building block whose cost Table 2's brute force
// multiplies by the gate count.
func BenchmarkSSTA(b *testing.B) {
	for _, name := range []string{"c432", "c880", "c2670", "c6288"} {
		b.Run(name, func(b *testing.B) {
			d, err := Benchmark(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeSSTA(d, 600); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSizingIteration measures one coordinate-descent iteration of
// each statistical optimizer — the per-iteration times behind Table 2.
func BenchmarkSizingIteration(b *testing.B) {
	for _, method := range []string{"brute", "accel"} {
		for _, name := range []string{"c432", "c880"} {
			b.Run(fmt.Sprintf("%s/%s", method, name), func(b *testing.B) {
				d, err := Benchmark(name)
				if err != nil {
					b.Fatal(err)
				}
				cfg := Config{MaxIterations: 1, Bins: 400}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fresh := d.Clone()
					b.StartTimer()
					var err error
					if method == "brute" {
						_, err = OptimizeBruteForce(fresh, cfg)
					} else {
						_, err = OptimizeAccelerated(fresh, cfg)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// runAccelerated drives one accelerated run over a session on d — the
// ablation benchmarks reach past the facade to toggle Config knobs the
// RunOptions intentionally do not expose.
func runAccelerated(b *testing.B, d *Design, cfg Config) {
	b.Helper()
	s, err := core.OpenSession(context.Background(), d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := core.Accelerated(context.Background(), s, cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationPruning quantifies the value of the paper's pruning
// bound: the same accelerated machinery with pruning disabled.
func BenchmarkAblationPruning(b *testing.B) {
	for _, pruning := range []bool{true, false} {
		name := "on"
		if !pruning {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			d, err := Benchmark("c432")
			if err != nil {
				b.Fatal(err)
			}
			cfg := Config{MaxIterations: 2, Bins: 400, DisablePruning: !pruning}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := d.Clone()
				b.StartTimer()
				runAccelerated(b, fresh, cfg)
			}
		})
	}
}

// BenchmarkAblationElision quantifies the dead-front elision (an
// exactness-preserving engineering addition on top of the paper).
func BenchmarkAblationElision(b *testing.B) {
	for _, elision := range []bool{true, false} {
		name := "on"
		if !elision {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			d, err := Benchmark("c432")
			if err != nil {
				b.Fatal(err)
			}
			cfg := Config{MaxIterations: 2, Bins: 400, DisableDeadFrontElision: !elision}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := d.Clone()
				b.StartTimer()
				runAccelerated(b, fresh, cfg)
			}
		})
	}
}

// BenchmarkGridResolution sweeps the SSTA bin budget — the
// accuracy/runtime knob of the discretized framework.
func BenchmarkGridResolution(b *testing.B) {
	for _, bins := range []int{200, 400, 800, 1600} {
		b.Run(fmt.Sprintf("bins%d", bins), func(b *testing.B) {
			d, err := Benchmark("c880")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeSSTA(d, bins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sessionBenchGate picks the mid-level gate with the median structural
// perturbation cone — the representative "mid-circuit resize" the
// incremental-commit benchmarks exercise.
func sessionBenchGate(b *testing.B, d *Design) (GateID, int) {
	b.Helper()
	g := d.E.G
	lo, hi := g.MaxLevel()*2/5, g.MaxLevel()*3/5
	type cand struct {
		gate GateID
		cone int
	}
	var cands []cand
	for gi := 0; gi < d.NL.NumGates(); gi++ {
		lvl := g.Level(d.E.NodeOf[d.NL.Gate(GateID(gi)).Out])
		if lvl < lo || lvl > hi {
			continue
		}
		cands = append(cands, cand{GateID(gi), len(resizeCone(d, GateID(gi)))})
	}
	if len(cands) == 0 {
		b.Fatal("no mid-level gates")
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cone < cands[j].cone })
	mid := cands[len(cands)/2]
	return mid.gate, mid.cone
}

// BenchmarkSessionResize measures one incremental session commit for a
// mid-circuit resize: wall time plus the nodes actually recomputed,
// against the full-pass node count. Pair with BenchmarkFullReanalyze
// for the incremental-commit win the Session API exists to deliver.
func BenchmarkSessionResize(b *testing.B) {
	for _, name := range []string{"c880", "c1908"} {
		b.Run(name, func(b *testing.B) {
			eng, err := New()
			if err != nil {
				b.Fatal(err)
			}
			d, err := eng.Benchmark(name)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			s, err := eng.Open(ctx, d)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			gate, _ := sessionBenchGate(b, d)
			w, err := s.Width(gate)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Toggle between two widths so every iteration commits a
				// real perturbation.
				next := w + 0.5
				if i%2 == 1 {
					next = w
				}
				if _, err := s.Resize(ctx, gate, next); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st, err := s.Stats()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(st.NodesRecomputed)/float64(st.Resizes), "nodes/resize")
			b.ReportMetric(100*float64(st.NodesRecomputed)/float64(st.Resizes)/float64(st.TotalNodes), "%full-pass")
		})
	}
}

// BenchmarkFullReanalyze is the baseline BenchmarkSessionResize beats: a
// from-scratch SSTA pass after the same resize, which recomputes every
// node and rebuilds every edge-delay distribution.
func BenchmarkFullReanalyze(b *testing.B) {
	for _, name := range []string{"c880", "c1908"} {
		b.Run(name, func(b *testing.B) {
			eng, err := New()
			if err != nil {
				b.Fatal(err)
			}
			d, err := eng.Benchmark(name)
			if err != nil {
				b.Fatal(err)
			}
			gate, _ := sessionBenchGate(b, d)
			w := d.Width(gate)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := w + 0.5
				if i%2 == 1 {
					next = w
				}
				d.SetWidth(gate, next)
				if _, err := AnalyzeSSTA(d, 600); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(d.E.G.NumNodes()-1), "nodes/resize")
			b.ReportMetric(100, "%full-pass")
		})
	}
}

// BenchmarkMonteCarlo measures the Figure 10 validation cost.
func BenchmarkMonteCarlo(b *testing.B) {
	d, err := Benchmark("c3540")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarlo(d, 1000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathHistogram measures the exact Figure 1 path-count DP.
func BenchmarkPathHistogram(b *testing.B) {
	d, err := Benchmark("c3540")
	if err != nil {
		b.Fatal(err)
	}
	bin := AnalyzeSTA(d).CircuitDelay() / 150
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h := PathHistogram(d, bin); h.NumPaths() <= 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkHeuristicMode measures the paper's future-work heuristic
// (fronts cut off after k levels) against the exact algorithm.
func BenchmarkHeuristicMode(b *testing.B) {
	for _, levels := range []int{0, 2, 4} {
		name := "exact"
		if levels > 0 {
			name = fmt.Sprintf("levels%d", levels)
		}
		b.Run(name, func(b *testing.B) {
			d, err := Benchmark("c880")
			if err != nil {
				b.Fatal(err)
			}
			cfg := Config{MaxIterations: 2, Bins: 400, HeuristicLevels: levels}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := d.Clone()
				b.StartTimer()
				if _, err := OptimizeAccelerated(fresh, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWhatIfBatch is the acceptance benchmark for the
// mutation-free parallel evaluation path: the serial WhatIf loop versus
// one WhatIfBatch call over the same candidate sweep on c1908. "serial"
// runs the historical one-lock-per-candidate loop on a
// parallelism-1 engine; "batch4" is the acceptance configuration
// (4 workers, expected ≥1.5x over serial); "batch" uses every core.
// Results are bit-identical across all modes — only wall time moves.
func BenchmarkWhatIfBatch(b *testing.B) {
	modes := []struct {
		name  string
		par   int
		batch bool
	}{
		{"serial", 1, false},
		{"batch4", 4, true},
		{"batch", 0, true},
	}
	for _, mode := range modes {
		b.Run(mode.name+"/c1908", func(b *testing.B) {
			eng, err := New(WithParallelism(mode.par))
			if err != nil {
				b.Fatal(err)
			}
			d, err := eng.Benchmark("c1908")
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			s, err := eng.Open(ctx, d)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			numGates, err := s.NumGates()
			if err != nil {
				b.Fatal(err)
			}
			cands := make([]Candidate, 0, numGates)
			for g := 0; g < numGates; g++ {
				gid := GateID(g)
				w, err := s.Width(gid)
				if err != nil {
					b.Fatal(err)
				}
				cands = append(cands, Candidate{Gate: gid, Width: w + 0.5})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode.batch {
					if _, err := s.WhatIfBatch(ctx, cands); err != nil {
						b.Fatal(err)
					}
				} else {
					for _, c := range cands {
						if _, err := s.WhatIf(ctx, c.Gate, c.Width); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.ReportMetric(float64(len(cands)), "candidates/op")
		})
	}
}

// BenchmarkAnalyzeParallel measures the level-parallel full SSTA pass
// against the serial reference — the scaling behind session open and
// legacy resync.
func BenchmarkAnalyzeParallel(b *testing.B) {
	for _, name := range []string{"c1908", "c6288"} {
		d, err := Benchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		dt := d.SuggestDT(600)
		for _, workers := range []int{1, 4, 0} {
			label := fmt.Sprintf("%s/workers%d", name, workers)
			if workers == 0 {
				label = fmt.Sprintf("%s/workersMax", name)
			}
			b.Run(label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ssta.AnalyzeParallel(context.Background(), d, dt, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
