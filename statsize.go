// Package statsize is a statistical-timing-driven gate sizing library —
// a from-scratch reproduction of Agarwal, Chopra & Blaauw, "Statistical
// Timing Based Optimization using Gate Sizing" (DATE 2005).
//
// The library bundles everything the paper's flow needs: a gate-level
// netlist model with an ISCAS .bench parser, structural replicas of the
// ISCAS'85 benchmark suite, a logical-effort delay model with intra-die
// variation (truncated Gaussians, σ = 10% of nominal), block-based SSTA
// over discretized arrival-time distributions, Monte Carlo validation,
// and three gate sizers: a deterministic critical-path baseline, an
// exact brute-force statistical optimizer, and the paper's accelerated
// optimizer whose perturbation-bound pruning delivers identical results
// at a fraction of the cost.
//
// The entry point is the Engine: long-lived and concurrency-safe, it
// binds a cell library and analysis defaults once and then serves any
// number of requests. The core abstraction under it is the Session —
// an incremental timing view over one design: Engine.Open runs SSTA
// once, and from then on queries (sink distribution, percentiles,
// per-gate arrival, statistical slack and criticality via the backward
// required-time pass), uncommitted what-ifs, incremental resizes and
// Checkpoint/Rollback transactions all run against the live analysis.
// Optimizers are pluggable by name (see Optimizers and
// RegisterOptimizer) and drive sessions, all long-running methods take
// a context.Context, and optimization always runs on a private clone
// of the caller's design.
//
// Quick start:
//
//	eng, _ := statsize.New()
//	d, _ := eng.Benchmark("c432")
//	s, _ := eng.Open(ctx, d)
//	defer s.Close()
//	crit, _ := s.Criticality(ctx, gate)           // P(slack <= 0), no Monte Carlo
//	wi, _ := s.WhatIf(ctx, gate, width)           // exact sensitivity, uncommitted
//	ws, _ := s.WhatIfBatch(ctx, candidates)       // many candidates, evaluated in parallel
//	rs, _ := s.Resize(ctx, gate, width)           // incremental commit
//	res, _ := eng.OptimizeSession(ctx, s, "accelerated", statsize.MaxIterations(100))
//	fmt.Printf("p99 %.3f -> %.3f ns (+%.1f%% area)\n",
//		res.InitialObjective, res.FinalObjective, res.AreaIncrease())
//
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduction of every table and figure.
package statsize

import (
	"context"
	"io"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/core"
	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/gauss"
	"statsize/internal/montecarlo"
	"statsize/internal/netlist"
	"statsize/internal/session"
	"statsize/internal/ssta"
	"statsize/internal/sta"
)

// Re-exported core types. A Design is a netlist bound to a cell library
// with mutable gate widths; Config and Result parameterize and summarize
// optimization runs.
type (
	// Design is a sized circuit ready for analysis and optimization.
	Design = design.Design
	// Library holds cell timing parameters and the sizing policy.
	Library = cell.Library
	// Netlist is a combinational gate-level circuit.
	Netlist = netlist.Netlist
	// Config controls an optimization run; its zero value follows the
	// paper's protocol (99-percentile objective, Δw steps, pruning on).
	Config = core.Config
	// Result summarizes an optimization run; Result.Design is the sized
	// design (a private clone when the run went through an Engine).
	Result = core.Result
	// IterRecord is one sizing iteration of a Result.
	IterRecord = core.IterRecord
	// Objective is the scalar the optimizers minimize.
	Objective = core.Objective
	// Percentile is the p-quantile objective (the paper uses 0.99).
	Percentile = core.Percentile
	// Mean is the expected-delay objective.
	Mean = core.Mean
	// Dist is a discretized probability distribution on a uniform grid.
	Dist = dist.Dist
	// Analysis is a completed SSTA pass.
	Analysis = ssta.Analysis
	// STAResult is a completed deterministic timing analysis.
	STAResult = sta.Result
	// PathHistogramResult counts source-to-sink paths by nominal delay.
	PathHistogramResult = sta.Histogram
	// MCResult holds Monte Carlo circuit-delay samples.
	MCResult = montecarlo.Result
	// CircuitSpec describes a synthetic benchmark circuit to generate.
	CircuitSpec = circuitgen.Spec
	// GateID identifies a gate instance within a netlist.
	GateID = netlist.GateID
	// NetID identifies a net within a netlist.
	NetID = netlist.NetID
	// Session is a stateful incremental timing view over one design: a
	// live SSTA analysis that queries (arrival, slack, criticality),
	// uncommitted what-ifs, incremental resizes and checkpoints all run
	// against. Open one with Engine.Open.
	Session = session.Session
	// SessionTx is the locked transaction view of an acquired Session —
	// what optimizers drive between Session.Acquire and Release.
	SessionTx = session.Tx
	// SessionStats is the cumulative accounting of a Session (resizes,
	// nodes recomputed incrementally vs. a full pass, what-ifs, ...).
	SessionStats = session.Stats
	// ResizeStats describes one committed incremental resize.
	ResizeStats = session.ResizeStats
	// WhatIfResult describes one uncommitted candidate evaluation.
	WhatIfResult = session.WhatIfResult
	// Candidate names one hypothetical resize for Session.WhatIfBatch.
	Candidate = session.Candidate
)

// Session error sentinels, re-exported for errors.Is checks.
var (
	// ErrSessionClosed is returned by every operation on a closed Session.
	ErrSessionClosed = session.ErrClosed
	// ErrNoCheckpoint is returned by Session.Rollback when no checkpoint
	// is pending.
	ErrNoCheckpoint = session.ErrNoCheckpoint
)

// DefaultLibrary returns the synthetic 180nm-style library used by all
// experiments (EQ 1 constants, σ=10% with 3σ truncation, w ∈ [1,32],
// Δw = 0.5).
func DefaultLibrary() *Library { return cell.Default180nm() }

// Benchmark builds a minimum-sized design for a named benchmark: "c17"
// is the genuine embedded ISCAS'85 netlist; c432..c7552 are structural
// replicas matching the paper's Table 1 node/edge counts exactly.
//
// Deprecated: use Engine.Benchmark, which additionally caches the
// elaborated circuit across calls.
func Benchmark(name string) (*Design, error) {
	return defaultEngine().Benchmark(name)
}

// BenchmarkNames lists the replica suite in Table 1 order (excluding the
// embedded "c17").
func BenchmarkNames() []string { return circuitgen.Names() }

// UnknownCircuitError reports a benchmark name outside the suite.
type UnknownCircuitError struct{ Name string }

func (e *UnknownCircuitError) Error() string {
	return "statsize: unknown benchmark circuit " + e.Name
}

// GenerateCircuit builds a design from a custom synthetic circuit spec.
//
// Deprecated: use Engine.GenerateCircuit.
func GenerateCircuit(sp CircuitSpec) (*Design, error) {
	return defaultEngine().GenerateCircuit(sp)
}

// LoadBench parses an ISCAS .bench netlist and returns a minimum-sized
// design over the default library.
//
// Deprecated: use Engine.LoadBench.
func LoadBench(r io.Reader, name string) (*Design, error) {
	return defaultEngine().LoadBench(r, name)
}

// NewDesign binds an existing netlist to a library at minimum widths.
func NewDesign(nl *Netlist, lib *Library) (*Design, error) {
	return design.New(nl, lib)
}

// AnalyzeSTA runs deterministic static timing analysis.
func AnalyzeSTA(d *Design) *STAResult { return sta.Analyze(d) }

// AnalyzeSSTA runs statistical static timing analysis with the given
// grid resolution (bins across the estimated circuit delay; 600 is the
// experiments' default).
//
// Deprecated: use Engine.AnalyzeSSTA, which takes a context and the
// engine's configured resolution.
func AnalyzeSSTA(d *Design, bins int) (*Analysis, error) {
	if bins <= 0 {
		return nil, &ConfigError{Option: "AnalyzeSSTA", Value: bins, Reason: "bin budget must be positive"}
	}
	return ssta.Analyze(context.Background(), d, d.SuggestDT(bins))
}

// MonteCarlo samples the exact circuit-delay distribution.
//
// Deprecated: use Engine.MonteCarlo, which takes a context.
func MonteCarlo(d *Design, samples int, seed int64) (*MCResult, error) {
	return montecarlo.Run(context.Background(), d, samples, seed)
}

// PathHistogram computes the exact path-count-versus-delay histogram
// (Figure 1's x-axis) with the given bin width in nanoseconds.
func PathHistogram(d *Design, binWidth float64) *PathHistogramResult {
	return sta.PathHistogram(d, binWidth)
}

// OptimizeDeterministic runs the corner-based critical-path coordinate
// descent baseline of Section 4 on a clone of d; the sized design is
// Result.Design.
//
// Deprecated: use Engine.Optimize with the "deterministic" optimizer.
func OptimizeDeterministic(d *Design, cfg Config) (*Result, error) {
	return defaultEngine().Optimize(context.Background(), d, "deterministic", WithConfig(cfg))
}

// OptimizeBruteForce runs exact statistical sizing with a full SSTA pass
// per candidate gate per iteration (Section 3.1) on a clone of d; the
// sized design is Result.Design.
//
// Deprecated: use Engine.Optimize with the "brute-force" optimizer.
func OptimizeBruteForce(d *Design, cfg Config) (*Result, error) {
	return defaultEngine().Optimize(context.Background(), d, "brute-force", WithConfig(cfg))
}

// OptimizeAccelerated runs the paper's pruning algorithm (Figures 6, 7
// and 9) on a clone of d; the sized design is Result.Design. Results are
// identical to OptimizeBruteForce at a small fraction of the cost (the
// paper reports up to 56x; EXPERIMENTS.md records the factors measured
// on this implementation, growing with circuit size).
//
// Deprecated: use Engine.Optimize with the "accelerated" optimizer.
func OptimizeAccelerated(d *Design, cfg Config) (*Result, error) {
	return defaultEngine().Optimize(context.Background(), d, "accelerated", WithConfig(cfg))
}

// GaussAnalysis is a moment-propagation SSTA pass (the related-work
// baseline of Jacobs/Berkelaar and Raj et al.: Gaussian arrivals with
// Clark's max approximation).
type GaussAnalysis = gauss.Analysis

// AnalyzeGaussian runs the analytic Gaussian SSTA baseline — fast, but
// it discards the CDF shape information the paper's discretized engine
// retains.
func AnalyzeGaussian(d *Design) *GaussAnalysis { return gauss.Analyze(d) }

// TimingPath is one source-to-sink path with its nominal delay.
type TimingPath = sta.Path

// TopPaths enumerates the k nominally longest paths in descending order.
func TopPaths(d *Design, k int) []TimingPath {
	return sta.Analyze(d).TopPaths(k)
}

// Criticality estimates per-gate critical-path probabilities by Monte
// Carlo (indexed by gate ID).
//
// Deprecated: use Engine.Criticality, which takes a context.
func Criticality(d *Design, samples int, seed int64) ([]float64, error) {
	return montecarlo.Criticality(context.Background(), d, samples, seed)
}

// CorrModel describes spatially correlated intra-die variation for
// MonteCarloCorrelated.
type CorrModel = montecarlo.CorrModel

// MonteCarloCorrelated samples the circuit delay under spatially
// correlated variation — the effect the paper's independence-based bound
// explicitly does not model (Section 2); use it to quantify that gap.
//
// Deprecated: use Engine.MonteCarloCorrelated, which takes a context.
func MonteCarloCorrelated(d *Design, samples int, seed int64, m CorrModel) (*MCResult, error) {
	return montecarlo.RunCorrelated(context.Background(), d, samples, seed, m)
}
