package statsize

import (
	"context"
	"sync"
	"testing"
)

// TestEngineStatsCounterAccuracy hammers one engine from many
// goroutines — each opens a session, serves a fixed mix of what-ifs
// (single and batch), resizes, checkpoints and rollbacks, and closes —
// and then checks the engine-wide rollup against the exact totals the
// workload performed. The rollup is updated with atomics from inside
// the session lock, so any lost update or double count is a bug this
// test catches deterministically.
func TestEngineStatsCounterAccuracy(t *testing.T) {
	eng, err := New(WithBins(120))
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		rounds  = 3
		batchN  = 3
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := func() error {
				d, err := eng.Benchmark("c17")
				if err != nil {
					return err
				}
				s, err := eng.Open(ctx, d)
				if err != nil {
					return err
				}
				defer s.Close()
				for r := 0; r < rounds; r++ {
					if _, err := s.WhatIf(ctx, 0, 2.0); err != nil {
						return err
					}
					cands := make([]Candidate, batchN)
					for i := range cands {
						cands[i] = Candidate{Gate: GateID(i % 2), Width: 1.5 + 0.5*float64(i)}
					}
					if _, err := s.WhatIfBatch(ctx, cands); err != nil {
						return err
					}
					if _, err := s.Checkpoint(); err != nil {
						return err
					}
					if _, err := s.Resize(ctx, 1, 2.5); err != nil {
						return err
					}
					if err := s.Rollback(); err != nil {
						return err
					}
				}
				return nil
			}
			if err := run(); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.SessionsOpened != workers {
		t.Errorf("SessionsOpened = %d, want %d", st.SessionsOpened, workers)
	}
	if st.SessionsLive != 0 {
		t.Errorf("SessionsLive = %d, want 0 after all sessions closed", st.SessionsLive)
	}
	if want := int64(workers * rounds * (1 + batchN)); st.WhatIfsServed != want {
		t.Errorf("WhatIfsServed = %d, want %d", st.WhatIfsServed, want)
	}
	if want := int64(workers * rounds); st.ResizesCommitted != want {
		t.Errorf("ResizesCommitted = %d, want %d", st.ResizesCommitted, want)
	}
	if want := int64(workers * rounds); st.Checkpoints != want {
		t.Errorf("Checkpoints = %d, want %d", st.Checkpoints, want)
	}
	if want := int64(workers * rounds); st.Rollbacks != want {
		t.Errorf("Rollbacks = %d, want %d", st.Rollbacks, want)
	}
	if st.BenchmarksCached != 1 {
		t.Errorf("BenchmarksCached = %d, want 1", st.BenchmarksCached)
	}
	if st.DelayCacheEntries == 0 || st.DelayCacheMisses == 0 {
		t.Errorf("delay-cache rollup empty (entries=%d misses=%d); expected activity from c17 sessions",
			st.DelayCacheEntries, st.DelayCacheMisses)
	}
}

// TestEngineStatsCountsOptimizeSessions pins that the private sessions
// behind Engine.Optimize report into the rollup too, and return Live
// to its prior level when the run's deferred Close fires.
func TestEngineStatsCountsOptimizeSessions(t *testing.T) {
	eng, err := New(WithBins(120))
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Optimize(context.Background(), d, "accelerated", MaxIterations(2)); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SessionsOpened != 1 {
		t.Errorf("SessionsOpened = %d, want 1 (the optimize run's private session)", st.SessionsOpened)
	}
	if st.SessionsLive != 0 {
		t.Errorf("SessionsLive = %d, want 0 after the run closed its session", st.SessionsLive)
	}
	if st.ResizesCommitted == 0 {
		t.Errorf("ResizesCommitted = 0, want >0 from the optimize run's commits")
	}
}
