package statsize

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func newEngine(t testing.TB, opts ...Option) *Engine {
	t.Helper()
	eng, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineOptionsApply(t *testing.T) {
	lib := DefaultLibrary()
	eng := newEngine(t,
		WithLibrary(lib),
		WithBins(400),
		WithObjective(Percentile(0.95)),
		WithParallelism(3),
	)
	if eng.Library() != lib {
		t.Error("WithLibrary not applied")
	}
	if eng.Bins() != 400 {
		t.Error("WithBins not applied")
	}
	if eng.Objective() != Percentile(0.95) {
		t.Error("WithObjective not applied")
	}
	if eng.Parallelism() != 3 {
		t.Error("WithParallelism not applied")
	}
}

func TestEngineOptionValidation(t *testing.T) {
	// Every rejected option value comes back as a typed *ConfigError
	// naming the option, so callers can tell misconfiguration apart
	// from environmental failures.
	wantConfigError := func(opt string, err error) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: invalid value accepted", opt)
			return
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: err %v is not a *ConfigError", opt, err)
			return
		}
		if ce.Option != opt {
			t.Errorf("%s: ConfigError names option %q", opt, ce.Option)
		}
	}
	_, err := New(WithBins(-1))
	wantConfigError("WithBins", err)
	// Zero was historically accepted by New (it aliased "default") and
	// then panicked deep inside Design.SuggestDT; it must fail at
	// construction like every other non-positive budget.
	_, err = New(WithBins(0))
	wantConfigError("WithBins", err)
	_, err = New(WithParallelism(-2))
	wantConfigError("WithParallelism", err)
	_, err = New(WithConvolveCrossover(-1))
	wantConfigError("WithConvolveCrossover", err)

	bad := DefaultLibrary()
	bad.WMin = -1
	if _, err := New(WithLibrary(bad)); err == nil {
		t.Error("invalid library accepted")
	}

	// The deprecated free function took the same unvalidated bins and
	// panicked; it now reports the same typed error.
	d, err := newEngine(t).Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	var ce *ConfigError
	if _, err := AnalyzeSSTA(d, 0); !errors.As(err, &ce) {
		t.Errorf("AnalyzeSSTA(d, 0) err = %v, want *ConfigError", err)
	}
}

func TestEngineBenchmarkCachesAndClones(t *testing.T) {
	eng := newEngine(t)
	d1, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("Benchmark returned the same design twice")
	}
	if d1.NL != d2.NL {
		t.Error("clones should share the immutable netlist")
	}
	// Sizing one clone must not leak into the other.
	d1.SetWidth(0, d1.Lib.WMax)
	if d2.Width(0) == d1.Width(0) {
		t.Error("widths leaked between benchmark clones")
	}
	d3, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	if d3.Width(0) != d3.Lib.WMin {
		t.Error("cache was polluted by a caller's resize")
	}
}

func TestEngineOptimizeDoesNotMutateCaller(t *testing.T) {
	eng := newEngine(t)
	d, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	before := d.TotalWidth()
	res, err := eng.Optimize(context.Background(), d, "accelerated", MaxIterations(3))
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalWidth() != before {
		t.Error("Optimize mutated the caller's design")
	}
	if res.Design == nil || res.Design == d {
		t.Fatal("Result.Design must be a private clone")
	}
	if res.Design.TotalWidth() <= before {
		t.Error("clone was not sized")
	}
	if res.FinalWidth != res.Design.TotalWidth() {
		t.Error("Result.FinalWidth disagrees with the sized clone")
	}
}

func TestEngineObjectiveDefaultsAndOverrides(t *testing.T) {
	eng := newEngine(t, WithObjective(Mean{}))
	d, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	// The engine default objective flows into runs...
	res, err := eng.Optimize(context.Background(), d, "accelerated", MaxIterations(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.AnalyzeSSTA(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.InitialObjective, a.SinkDist().Mean(); got != want {
		t.Errorf("engine objective not used: initial %v, want mean %v", got, want)
	}
	// ...and a per-run override wins.
	res99, err := eng.Optimize(context.Background(), d, "accelerated",
		MaxIterations(1), ForObjective(Percentile(0.99)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res99.InitialObjective, a.Percentile(0.99); got != want {
		t.Errorf("ForObjective override not used: initial %v, want p99 %v", got, want)
	}
}

// Canceling a brute-force run on c880 mid-flight must return promptly
// with context.Canceled and the partial trace of whatever iterations
// committed — not run the remaining (expensive) iterations to the end.
func TestOptimizeCancellationReturnsPartialResult(t *testing.T) {
	eng := newEngine(t)
	d, err := eng.Benchmark("c880")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel as soon as the first iteration lands: the remaining 999
	// brute-force iterations would take minutes.
	canceledAt := make(chan struct{})
	var once sync.Once
	res, err := eng.Optimize(ctx, d, "brute-force",
		MaxIterations(1000),
		OnIteration(func(IterRecord) {
			once.Do(func() { cancel(); close(canceledAt) })
		}),
	)
	select {
	case <-canceledAt:
	default:
		t.Fatal("optimization finished without ever iterating")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled run returned no partial result")
	}
	if res.Iterations < 1 || len(res.Records) != res.Iterations {
		t.Errorf("partial trace inconsistent: %d iterations, %d records", res.Iterations, len(res.Records))
	}
	if res.Iterations >= 1000 {
		t.Error("run completed despite cancellation")
	}
	if res.Design == nil {
		t.Fatal("partial result lost the design")
	}
	// The partial design state must match the partial trace.
	if res.Design.TotalWidth() != res.Records[len(res.Records)-1].TotalWidth {
		t.Error("partial design width disagrees with last committed record")
	}
	cancel()
}

// A context that is already dead must stop the run before any sizing.
func TestOptimizePreCanceledContext(t *testing.T) {
	eng := newEngine(t)
	d, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = eng.Optimize(ctx, d, "accelerated", MaxIterations(10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnalysisCancellation(t *testing.T) {
	eng := newEngine(t)
	d, err := eng.Benchmark("c880")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.AnalyzeSSTA(ctx, d); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeSSTA err = %v, want context.Canceled", err)
	}
	mc, err := eng.MonteCarlo(ctx, d, 100000, 1)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("MonteCarlo err = %v, want context.Canceled", err)
	}
	if mc == nil {
		t.Error("MonteCarlo cancellation should still return the partial sample set")
	}
	if _, err := eng.Criticality(ctx, d, 100000, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("Criticality err = %v, want context.Canceled", err)
	}
}

// Two goroutines optimizing clones of one loaded design concurrently —
// the headline concurrency contract, meaningful under -race.
func TestConcurrentOptimizeOnSharedDesign(t *testing.T) {
	eng := newEngine(t)
	d, err := eng.Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	results := make([]*Result, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Optimize(ctx, d, "accelerated", MaxIterations(5))
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
	}
	// Identical inputs, independent clones: both runs must agree.
	if results[0].FinalObjective != results[1].FinalObjective {
		t.Errorf("concurrent runs diverged: %v vs %v",
			results[0].FinalObjective, results[1].FinalObjective)
	}
	if results[0].Design == results[1].Design {
		t.Error("concurrent runs shared a design")
	}
	if d.TotalWidth() != float64(d.NL.NumGates())*d.Lib.WMin {
		t.Error("shared base design was mutated")
	}
}

// Concurrent mixed analysis traffic against one engine and one design.
func TestConcurrentAnalysisTraffic(t *testing.T) {
	eng := newEngine(t)
	d, err := eng.Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				if _, err := eng.AnalyzeSSTA(ctx, d); err != nil {
					t.Error(err)
				}
			case 1:
				if _, err := eng.MonteCarlo(ctx, d, 2000, int64(i)); err != nil {
					t.Error(err)
				}
			default:
				if _, err := eng.Benchmark("c432"); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestOptimizeSuite(t *testing.T) {
	eng := newEngine(t, WithParallelism(2))
	ctx := context.Background()
	out, err := eng.OptimizeSuite(ctx, []string{"c17", "c432", "c9999"}, "accelerated", MaxIterations(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("suite returned %d results", len(out))
	}
	for i, name := range []string{"c17", "c432", "c9999"} {
		if out[i].Circuit != name {
			t.Errorf("result %d is %q, want input order %q", i, out[i].Circuit, name)
		}
	}
	for _, r := range out[:2] {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Circuit, r.Err)
		}
		if r.Result == nil || r.Result.Iterations == 0 {
			t.Errorf("%s: no optimization happened", r.Circuit)
		}
	}
	// A bad circuit fails its own row without aborting the batch.
	var unknown *UnknownCircuitError
	if !errors.As(out[2].Err, &unknown) || unknown.Name != "c9999" {
		t.Errorf("c9999 err = %v, want UnknownCircuitError", out[2].Err)
	}
}

func TestOptimizeSuiteUnknownOptimizer(t *testing.T) {
	eng := newEngine(t)
	_, err := eng.OptimizeSuite(context.Background(), []string{"c17"}, "simulated-annealing")
	var unknown *UnknownOptimizerError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want UnknownOptimizerError", err)
	}
}

func TestOptimizeSuiteCancellation(t *testing.T) {
	eng := newEngine(t, WithParallelism(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := eng.OptimizeSuite(ctx, []string{"c17", "c432"}, "accelerated", MaxIterations(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range out {
		if r.Err == nil && r.Result == nil {
			t.Errorf("%s: no outcome recorded on canceled suite", r.Circuit)
		}
	}
}

func TestOptimizerRegistry(t *testing.T) {
	names := Optimizers()
	for _, want := range []string{"accelerated", "brute-force", "deterministic", "heuristic-levels", "multi-size"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin optimizer %q missing from registry (%v)", want, names)
		}
	}

	// Plug in a custom strategy and drive it through the engine by name.
	custom := OptimizerFunc{
		OptName: "test-noop",
		Run: func(ctx context.Context, d *Design, cfg Config) (*Result, error) {
			return &Result{Method: "test-noop", Design: d}, nil
		},
	}
	if err := RegisterOptimizer(custom); err != nil {
		t.Fatal(err)
	}
	if err := RegisterOptimizer(custom); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterOptimizer(OptimizerFunc{OptName: ""}); err == nil {
		t.Error("empty name accepted")
	}
	eng := newEngine(t)
	d, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Optimize(context.Background(), d, "test-noop")
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "test-noop" {
		t.Errorf("custom optimizer not dispatched: method %q", res.Method)
	}
}

func TestUnknownOptimizerError(t *testing.T) {
	eng := newEngine(t)
	d, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Optimize(context.Background(), d, "gradient-descent")
	var unknown *UnknownOptimizerError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want UnknownOptimizerError", err)
	}
	if unknown.Name != "gradient-descent" {
		t.Errorf("error names %q", unknown.Name)
	}
	if !strings.Contains(err.Error(), "accelerated") {
		t.Error("error message should list registered optimizers")
	}
}

// The registered strategy variants must actually change behavior.
func TestRegisteredVariants(t *testing.T) {
	eng := newEngine(t)
	d, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	multi, err := eng.Optimize(ctx, d, "multi-size", MaxIterations(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Records) > 0 && len(multi.Records[0].Gates) < 2 {
		t.Error("multi-size variant sized one gate per iteration")
	}
	heur, err := eng.Optimize(ctx, d, "heuristic-levels", MaxIterations(2))
	if err != nil {
		t.Fatal(err)
	}
	if heur.Iterations == 0 {
		t.Error("heuristic-levels variant made no progress")
	}
}

func TestDeprecatedWrappersDelegate(t *testing.T) {
	// The free functions must behave exactly like the engine methods
	// they wrap: same improvements, no caller mutation.
	d, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	before := d.TotalWidth()
	for _, run := range []func(*Design, Config) (*Result, error){
		OptimizeDeterministic, OptimizeBruteForce, OptimizeAccelerated,
	} {
		res, err := run(d, Config{MaxIterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		if d.TotalWidth() != before {
			t.Fatal("deprecated wrapper mutated the caller's design")
		}
		if res.Design == nil {
			t.Fatal("deprecated wrapper lost the sized design")
		}
	}
}

// Cancellation latency guard: a canceled long run must come back well
// under the time the full run would take.
func TestCancellationIsPrompt(t *testing.T) {
	eng := newEngine(t)
	d, err := eng.Benchmark("c880")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = eng.Optimize(ctx, d, "brute-force", MaxIterations(1000))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Generous bound: a c880 brute-force run is minutes; prompt
	// cancellation is within one candidate evaluation of the deadline.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
