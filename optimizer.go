package statsize

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"statsize/internal/core"
)

// Optimizer is a pluggable gate-sizing strategy. Implementations drive
// the Session they are given — acquiring it, evaluating candidates
// against its live analysis, and committing width changes through its
// incremental Resize — and must honor ctx, returning partial results
// wrapped around the context error on cancellation. Driving a session
// rather than a bare design is what gives every strategy (including
// external RegisterOptimizer plugins) incremental commits, transactional
// checkpoints, cancellation and stats accounting for free.
//
// Strategies register once with RegisterOptimizer and are then
// addressable by name through Engine.Optimize, Engine.OptimizeSession
// and Engine.OptimizeSuite, so new algorithms — a future Gaussian-guided
// sizer, an ML proposal distribution — plug in without touching the
// facade.
type Optimizer interface {
	// Name is the registry key, lower-case and stable.
	Name() string
	// Optimize sizes the session's design under cfg.
	Optimize(ctx context.Context, s *Session, cfg Config) (*Result, error)
}

// SessionOptimizerFunc adapts a session-driving function to the
// Optimizer interface.
type SessionOptimizerFunc struct {
	OptName string
	Run     func(ctx context.Context, s *Session, cfg Config) (*Result, error)
}

// Name returns the registry key.
func (o SessionOptimizerFunc) Name() string { return o.OptName }

// Optimize runs the wrapped function.
func (o SessionOptimizerFunc) Optimize(ctx context.Context, s *Session, cfg Config) (*Result, error) {
	return o.Run(ctx, s, cfg)
}

// OptimizerFunc adapts a function with the pre-Session call shape — one
// that sizes a *Design it owns outright — to the session-based Optimizer
// interface: the wrapped function runs on the session's design under the
// session lock, and the session's analysis is then resynchronized with a
// full SSTA pass (counted in SessionStats.FullReanalyses), since a
// legacy strategy cannot report incremental commits.
//
// Deprecated: implement Optimizer directly or use SessionOptimizerFunc;
// session-driving strategies keep the analysis consistent incrementally
// instead of paying a full re-analysis at the end.
type OptimizerFunc struct {
	OptName string
	Run     func(ctx context.Context, d *Design, cfg Config) (*Result, error)
}

// Name returns the registry key.
func (o OptimizerFunc) Name() string { return o.OptName }

// Optimize runs the wrapped legacy function on the session's design,
// then resynchronizes the session's analysis.
func (o OptimizerFunc) Optimize(ctx context.Context, s *Session, cfg Config) (*Result, error) {
	tx, err := s.Acquire()
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	res, runErr := o.Run(ctx, tx.Design(), cfg)
	// Resync unconditionally: a failed or canceled legacy run may still
	// have moved widths, and the session must stay consistent either way.
	if syncErr := tx.Reanalyze(context.WithoutCancel(ctx)); syncErr != nil {
		if runErr != nil {
			return res, errors.Join(runErr, syncErr)
		}
		return res, fmt.Errorf("statsize: legacy optimizer %q ran but session resync failed: %w", o.OptName, syncErr)
	}
	return res, runErr
}

var optRegistry = struct {
	sync.RWMutex
	m map[string]Optimizer
}{m: make(map[string]Optimizer)}

// RegisterOptimizer adds a sizing strategy to the registry. The name
// must be non-empty and unused; registration is safe for concurrent
// use.
func RegisterOptimizer(o Optimizer) error {
	name := o.Name()
	if name == "" {
		return fmt.Errorf("statsize: optimizer with empty name")
	}
	optRegistry.Lock()
	defer optRegistry.Unlock()
	if _, dup := optRegistry.m[name]; dup {
		return fmt.Errorf("statsize: optimizer %q already registered", name)
	}
	optRegistry.m[name] = o
	return nil
}

// Optimizers lists the registered strategy names, sorted.
func Optimizers() []string {
	optRegistry.RLock()
	defer optRegistry.RUnlock()
	names := make([]string, 0, len(optRegistry.m))
	for name := range optRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// UnknownOptimizerError reports a name absent from the registry.
type UnknownOptimizerError struct {
	Name  string
	Known []string
}

func (e *UnknownOptimizerError) Error() string {
	return fmt.Sprintf("statsize: unknown optimizer %q (registered: %s)",
		e.Name, strings.Join(e.Known, ", "))
}

func lookupOptimizer(name string) (Optimizer, error) {
	optRegistry.RLock()
	o, ok := optRegistry.m[name]
	optRegistry.RUnlock()
	if !ok {
		return nil, &UnknownOptimizerError{Name: name, Known: Optimizers()}
	}
	return o, nil
}

func mustRegister(o Optimizer) {
	if err := RegisterOptimizer(o); err != nil {
		panic(err)
	}
}

func init() {
	// The three optimizers of the paper, session-driving natively.
	mustRegister(SessionOptimizerFunc{"deterministic", core.Deterministic})
	mustRegister(SessionOptimizerFunc{"brute-force", core.BruteForce})
	mustRegister(SessionOptimizerFunc{"accelerated", core.Accelerated})
	// The extensions the paper names as future work, exposed as
	// first-class strategies with sensible defaults (both remain
	// reachable through the accelerated optimizer's Config knobs too).
	mustRegister(SessionOptimizerFunc{"heuristic-levels", func(ctx context.Context, s *Session, cfg Config) (*Result, error) {
		if cfg.HeuristicLevels <= 0 {
			cfg.HeuristicLevels = 4
		}
		return core.Accelerated(ctx, s, cfg)
	}})
	mustRegister(SessionOptimizerFunc{"multi-size", func(ctx context.Context, s *Session, cfg Config) (*Result, error) {
		if cfg.MultiSize <= 1 {
			cfg.MultiSize = 3
		}
		return core.Accelerated(ctx, s, cfg)
	}})
}
