package statsize

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"statsize/internal/core"
)

// Optimizer is a pluggable gate-sizing strategy. Implementations size
// the design they are given in place (the Engine hands them a private
// clone) and must honor ctx, returning partial results wrapped around
// the context error on cancellation.
//
// Strategies register once with RegisterOptimizer and are then
// addressable by name through Engine.Optimize and Engine.OptimizeSuite,
// so new algorithms — a future Gaussian-guided sizer, an ML proposal
// distribution — plug in without touching the facade.
type Optimizer interface {
	// Name is the registry key, lower-case and stable.
	Name() string
	// Optimize sizes d under cfg.
	Optimize(ctx context.Context, d *Design, cfg Config) (*Result, error)
}

// OptimizerFunc adapts a function to the Optimizer interface.
type OptimizerFunc struct {
	OptName string
	Run     func(ctx context.Context, d *Design, cfg Config) (*Result, error)
}

// Name returns the registry key.
func (o OptimizerFunc) Name() string { return o.OptName }

// Optimize runs the wrapped function.
func (o OptimizerFunc) Optimize(ctx context.Context, d *Design, cfg Config) (*Result, error) {
	return o.Run(ctx, d, cfg)
}

var optRegistry = struct {
	sync.RWMutex
	m map[string]Optimizer
}{m: make(map[string]Optimizer)}

// RegisterOptimizer adds a sizing strategy to the registry. The name
// must be non-empty and unused; registration is safe for concurrent
// use.
func RegisterOptimizer(o Optimizer) error {
	name := o.Name()
	if name == "" {
		return fmt.Errorf("statsize: optimizer with empty name")
	}
	optRegistry.Lock()
	defer optRegistry.Unlock()
	if _, dup := optRegistry.m[name]; dup {
		return fmt.Errorf("statsize: optimizer %q already registered", name)
	}
	optRegistry.m[name] = o
	return nil
}

// Optimizers lists the registered strategy names, sorted.
func Optimizers() []string {
	optRegistry.RLock()
	defer optRegistry.RUnlock()
	names := make([]string, 0, len(optRegistry.m))
	for name := range optRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// UnknownOptimizerError reports a name absent from the registry.
type UnknownOptimizerError struct {
	Name  string
	Known []string
}

func (e *UnknownOptimizerError) Error() string {
	return fmt.Sprintf("statsize: unknown optimizer %q (registered: %s)",
		e.Name, strings.Join(e.Known, ", "))
}

func lookupOptimizer(name string) (Optimizer, error) {
	optRegistry.RLock()
	o, ok := optRegistry.m[name]
	optRegistry.RUnlock()
	if !ok {
		return nil, &UnknownOptimizerError{Name: name, Known: Optimizers()}
	}
	return o, nil
}

func mustRegister(o Optimizer) {
	if err := RegisterOptimizer(o); err != nil {
		panic(err)
	}
}

func init() {
	// The three optimizers of the paper.
	mustRegister(OptimizerFunc{"deterministic", core.Deterministic})
	mustRegister(OptimizerFunc{"brute-force", core.BruteForce})
	mustRegister(OptimizerFunc{"accelerated", core.Accelerated})
	// The extensions the paper names as future work, exposed as
	// first-class strategies with sensible defaults (both remain
	// reachable through the accelerated optimizer's Config knobs too).
	mustRegister(OptimizerFunc{"heuristic-levels", func(ctx context.Context, d *Design, cfg Config) (*Result, error) {
		if cfg.HeuristicLevels <= 0 {
			cfg.HeuristicLevels = 4
		}
		return core.Accelerated(ctx, d, cfg)
	}})
	mustRegister(OptimizerFunc{"multi-size", func(ctx context.Context, d *Design, cfg Config) (*Result, error) {
		if cfg.MultiSize <= 1 {
			cfg.MultiSize = 3
		}
		return core.Accelerated(ctx, d, cfg)
	}})
}
