package core

import (
	"context"
	"fmt"
	"time"

	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/netlist"
	"statsize/internal/par"
	"statsize/internal/session"
	"statsize/internal/ssta"
)

// BruteForce runs exact statistical sizing as described in Section 3.1:
// every iteration evaluates every candidate gate's sensitivity with a
// complete SSTA propagation of its perturbation to the sink — the
// O(N·E)-per-iteration reference the accelerated algorithm is measured
// against in Table 2, and the ground truth its results must match
// exactly.
func BruteForce(ctx context.Context, s *session.Session, cfg Config) (*Result, error) {
	return statisticalDescent(ctx, s, cfg, "brute-force", bruteForceIteration)
}

// statisticalDescent is the outer coordinate-descent loop shared by the
// brute-force and accelerated sizers, driving a session: per iteration
// it finds the most sensitive gates via `inner` over the session's live
// analysis, then sizes them up through the session's incremental
// commit. The previous iteration's winner is passed down as a
// warm-start hint — the paper notes that identifying a high-sensitivity
// gate early lets it prune many inferior candidates, and the just-sized
// gate is usually still near the top. The hint only reorders evaluation;
// results are unchanged.
//
// The session is acquired exclusively for the whole run, so concurrent
// session calls block until it finishes. The run uses the analysis grid
// the session was opened at; cfg.Bins and cfg.DT are construction-time
// parameters (see OpenSession) and are ignored here.
//
// The context is checked between iterations and between candidate
// evaluations inside `inner`. On cancellation the Result built so far —
// every committed iteration, a consistent session state, the partial
// trace — is returned alongside an error wrapping context.Canceled (or
// DeadlineExceeded), so a canceled run is still a usable, smaller run.
func statisticalDescent(
	ctx context.Context,
	s *session.Session,
	cfg Config,
	method string,
	inner func(ctx context.Context, a *ssta.Analysis, cfg Config, base float64, hint netlist.GateID, ws []*sweepScratch) (innerResult, error),
) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	// Per-worker sweep scratch lives for the whole run: every iteration's
	// candidate sweep reuses the same warm arenas, overlay slices and
	// delay maps.
	ws := newSweepScratches(cfg)
	tx, err := s.Acquire()
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	a := tx.Analysis()
	d := tx.Design()
	res := &Result{
		Method:           method,
		InitialWidth:     d.TotalWidth(),
		InitialObjective: cfg.Objective.Eval(a.SinkDist()),
		Design:           d,
	}
	res.FinalObjective = res.InitialObjective

	partial := func(cause error) (*Result, error) {
		res.FinalWidth = d.TotalWidth()
		res.Elapsed = time.Since(start)
		return res, fmt.Errorf("core: %s optimization interrupted after %d iterations: %w",
			method, res.Iterations, cause)
	}

	hint := netlist.NoGate
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return partial(err)
		}
		if areaCapReached(cfg, res.InitialWidth, d.TotalWidth()) {
			break
		}
		iterStart := time.Now()
		base := cfg.Objective.Eval(a.SinkDist())
		ir, err := inner(ctx, a, cfg, base, hint, ws)
		if err != nil {
			if ctx.Err() != nil {
				return partial(ctx.Err())
			}
			return nil, err
		}
		if len(ir.picks) == 0 || ir.bestSens <= cfg.Tolerance {
			break
		}
		var sized []netlist.GateID
		for _, p := range ir.picks {
			if p.sens <= cfg.Tolerance {
				continue
			}
			if _, err := tx.Resize(ctx, p.gate, d.Width(p.gate)+d.Lib.DeltaW); err != nil {
				if ctx.Err() != nil {
					return partial(ctx.Err())
				}
				return nil, err
			}
			sized = append(sized, p.gate)
		}
		if len(sized) == 0 {
			break
		}
		if !cfg.DisableWarmStart {
			hint = sized[0]
		}
		after := cfg.Objective.Eval(a.SinkDist())
		rec := IterRecord{
			Iter:                 iter,
			Gates:                sized,
			Sensitivity:          ir.bestSens,
			Objective:            after,
			TotalWidth:           d.TotalWidth(),
			CandidatesConsidered: ir.considered,
			CandidatesPruned:     ir.pruned,
			NodesVisited:         ir.nodesVisited,
			Elapsed:              time.Since(iterStart),
		}
		res.Records = append(res.Records, rec)
		res.Iterations++
		res.FinalObjective = after
		if cfg.OnIteration != nil {
			cfg.OnIteration(rec)
		}
	}
	res.FinalWidth = d.TotalWidth()
	res.Elapsed = time.Since(start)
	return res, nil
}

// sweepScratch is the per-worker reusable state of the optimizer inner
// loops, hoisted across coordinate-descent iterations so the hundreds
// of sweeps in one run share one warm working set instead of rebuilding
// (and garbage-collecting) it every iteration: a kernel arena, the
// overlay arrival slice of the brute-force sweep, and a perturbed-delay
// map recycled between candidates.
type sweepScratch struct {
	ar     *dist.Arena
	arr    []*dist.Dist
	delays map[graph.EdgeID]*dist.Dist
}

// newSweepScratches builds one scratch per evaluation worker plus one
// extra for the serial phase that follows the parallel fan-out (the
// accelerated heap loop).
func newSweepScratches(cfg Config) []*sweepScratch {
	out := make([]*sweepScratch, par.Workers(cfg.Parallelism)+1)
	for i := range out {
		out[i] = &sweepScratch{
			ar:     dist.NewArena(),
			delays: make(map[graph.EdgeID]*dist.Dist),
		}
	}
	return out
}

// overlayArrivals returns the scratch's arrival slice sized for n
// nodes, cleared for a fresh sweep.
func (sc *sweepScratch) overlayArrivals(n int) []*dist.Dist {
	if len(sc.arr) < n {
		sc.arr = make([]*dist.Dist, n)
	}
	arr := sc.arr[:n]
	clear(arr)
	return arr
}

// pick is one gate selected for sizing with its exact sensitivity.
type pick struct {
	gate netlist.GateID
	sens float64
}

// innerResult is what one inner-loop sensitivity search reports.
type innerResult struct {
	picks        []pick // best gates in descending sensitivity
	bestSens     float64
	considered   int
	pruned       int
	nodesVisited int
}

// bruteForceIteration computes every candidate's exact sensitivity by a
// full overlay SSTA pass and returns the top MultiSize gates. Brute
// force evaluates everything anyway, so the hint is unused. The sweeps
// are independent — each candidate's overlay pass owns its arrival
// slice and only reads the base analysis — so they fan out across the
// configured worker pool; the top-k selection then merges in candidate
// order, never completion order, so the picks (including tie-breaks)
// are bit-identical to the serial sweep. Cancellation is checked per
// candidate — each one costs a full SSTA propagation, the natural
// granularity.
func bruteForceIteration(ctx context.Context, a *ssta.Analysis, cfg Config, base float64, _ netlist.GateID, ws []*sweepScratch) (innerResult, error) {
	d := a.D
	var ir innerResult
	cands := candidateGates(d)
	type sweep struct {
		sink    *dist.Dist
		visited int
	}
	sweeps := make([]sweep, len(cands))
	// Each candidate's full overlay pass computes in its worker's
	// scratch (arena + recycled overlay slice + delay map); only the
	// persisted sink distribution escapes.
	err := par.RunIndexed(ctx, cfg.Parallelism, len(cands), func(w, i int) error {
		sinkDist, visited, err := bruteSinkDist(a, cands[i], ws[w])
		if err != nil {
			return err
		}
		sweeps[i] = sweep{sink: sinkDist, visited: visited}
		return nil
	})
	if err != nil {
		// par.Run already prefers the lowest-index evaluation error over
		// a bare cancellation, matching the serial loop's reporting.
		return ir, err
	}
	// The user-supplied objective is evaluated here, in candidate order
	// on this goroutine — objectives carry no thread-safety requirement.
	top := newTopK(cfg.MultiSize)
	for i, s := range sweeps {
		ir.considered++
		ir.nodesVisited += s.visited
		top.offer(pick{gate: cands[i], sens: (base - cfg.Objective.Eval(s.sink)) / d.Lib.DeltaW})
	}
	ir.picks = top.sorted()
	if len(ir.picks) > 0 {
		ir.bestSens = ir.picks[0].sens
	}
	return ir, nil
}

// bruteSinkDist propagates gate gid's perturbation through the entire
// timing graph — a full SSTA run per candidate, per Section 3.1. The
// whole pass computes in the scratch arena without intermediate resets
// (every node's perturbed arrival is an operand of its fanouts, so all
// of them must stay live until the sink); the scratch — arena, overlay
// arrival slice, delay map — is rewound once per candidate and only
// the persisted sink escapes.
func bruteSinkDist(a *ssta.Analysis, gid netlist.GateID, sc *sweepScratch) (*dist.Dist, int, error) {
	d := a.D
	g := d.E.G
	clear(sc.delays)
	if err := a.PerturbedDelaysInto(gid, d.Width(gid)+d.Lib.DeltaW, sc.delays); err != nil {
		return nil, 0, err
	}
	sc.ar.Reset()
	arr := sc.overlayArrivals(g.NumNodes())
	arrOverlay := func(n graph.NodeID) *dist.Dist { return arr[n] }
	delayOverlay := func(e graph.EdgeID) *dist.Dist { return sc.delays[e] }
	visited := 0
	for _, n := range g.Topo() {
		if n == g.Source() {
			arr[n] = a.Arrival(n)
			continue
		}
		//lint:allow statlint/scratchescape the overlay slice is scratch-scoped: rewound with sc.ar each candidate, only the persisted sink below escapes
		arr[n] = a.ArrivalWithOverlayInto(n, arrOverlay, delayOverlay, sc.ar)
		visited++
	}
	return arr[g.Sink()].Persist(), visited, nil
}

// topK keeps the k best picks by (sensitivity desc, gate ID asc) — the
// deterministic tie-break every optimizer variant shares.
type topK struct {
	k     int
	items []pick
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) offer(p pick) {
	pos := len(t.items)
	for pos > 0 && better(p, t.items[pos-1]) {
		pos--
	}
	if pos >= t.k {
		return
	}
	t.items = append(t.items, pick{})
	copy(t.items[pos+1:], t.items[pos:])
	t.items[pos] = p
	if len(t.items) > t.k {
		t.items = t.items[:t.k]
	}
}

func (t *topK) sorted() []pick { return t.items }

// kthSens returns the k-th best sensitivity seen so far (the pruning
// threshold for MultiSize runs), or negative infinity while fewer than k
// candidates have finished.
func (t *topK) kthSens() float64 {
	if len(t.items) < t.k {
		return negInf
	}
	return t.items[len(t.items)-1].sens
}

const negInf = -1e308

func better(a, b pick) bool {
	if a.sens != b.sens {
		return a.sens > b.sens
	}
	return a.gate < b.gate
}
