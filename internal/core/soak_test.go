package core

import (
	"math"
	"testing"
)

// Forty dual iterations on a real benchmark: the accelerated optimizer
// must shadow brute force exactly through regimes where sensitivities
// crowd together and pruning gets hard (the paper's own observation
// about late iterations). Skipped with -short.
func TestLongHorizonExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak test")
	}
	db := newDesign(t, "c432")
	da := newDesign(t, "c432")
	cfg := Config{MaxIterations: 40}
	rb, err := runOn(t, db, cfg, BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := runOn(t, da, cfg, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Iterations != ra.Iterations {
		t.Fatalf("iterations: brute %d vs accel %d", rb.Iterations, ra.Iterations)
	}
	for i := range rb.Records {
		if rb.Records[i].Gates[0] != ra.Records[i].Gates[0] {
			t.Fatalf("iter %d: gates %v vs %v (sens %v vs %v)",
				i, rb.Records[i].Gates, ra.Records[i].Gates,
				rb.Records[i].Sensitivity, ra.Records[i].Sensitivity)
		}
		if math.Abs(rb.Records[i].Sensitivity-ra.Records[i].Sensitivity) > 1e-12 {
			t.Fatalf("iter %d: sensitivity drift", i)
		}
	}
	if math.Abs(rb.FinalObjective-ra.FinalObjective) > 1e-12 {
		t.Fatal("final objectives diverged")
	}
	// Sanity on the run itself: meaningful improvement and pruning.
	if ra.Improvement() < 5 {
		t.Errorf("only %.2f%% improvement over 40 iterations", ra.Improvement())
	}
	var pruned, considered int
	for _, r := range ra.Records {
		pruned += r.CandidatesPruned
		considered += r.CandidatesConsidered
	}
	if frac := float64(pruned) / float64(considered); frac < 0.5 {
		t.Errorf("pruning rate %.1f%% over the long run", frac*100)
	}
}

// The same soak with MultiSize: both optimizers must agree on the whole
// set of gates sized per iteration.
func TestMultiSizeExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak test")
	}
	db := smallDesign(t, 12)
	da := smallDesign(t, 12)
	cfg := Config{MaxIterations: 8, MultiSize: 3}
	rb, err := runOn(t, db, cfg, BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := runOn(t, da, cfg, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Iterations != ra.Iterations {
		t.Fatalf("iterations differ: %d vs %d", rb.Iterations, ra.Iterations)
	}
	for i := range rb.Records {
		bg, ag := rb.Records[i].Gates, ra.Records[i].Gates
		if len(bg) != len(ag) {
			t.Fatalf("iter %d: sized %d vs %d gates", i, len(bg), len(ag))
		}
		for j := range bg {
			if bg[j] != ag[j] {
				t.Fatalf("iter %d slot %d: %v vs %v", i, j, bg, ag)
			}
		}
	}
}
