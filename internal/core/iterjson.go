package core

import (
	"encoding/json"
	"time"

	"statsize/internal/netlist"
)

// iterRecordJSON is the pinned wire shape of an IterRecord. The field
// names are a public contract: the daemon's SSE progress stream emits
// records in exactly this encoding and external clients parse it, so
// renaming a Go field must not move the wire format — that is why the
// encoding goes through this explicit mirror instead of reflecting over
// IterRecord directly. TestIterRecordJSONGolden pins the bytes.
//
// Floats are encoded as JSON numbers in Go's shortest round-trip form,
// which parses back to the identical float64 bit pattern — the property
// the golden-trace SSE replay test relies on. Elapsed travels as
// integer nanoseconds.
type iterRecordJSON struct {
	Iter                 int              `json:"iter"`
	Gates                []netlist.GateID `json:"gates"`
	Sensitivity          float64          `json:"sensitivity"`
	Objective            float64          `json:"objective"`
	TotalWidth           float64          `json:"total_width"`
	CandidatesConsidered int              `json:"candidates_considered"`
	CandidatesPruned     int              `json:"candidates_pruned"`
	NodesVisited         int              `json:"nodes_visited"`
	ElapsedNS            int64            `json:"elapsed_ns"`
}

// MarshalJSON encodes the record in its stable wire form. A record
// that sized no gates encodes "gates":[] rather than null, so clients
// can index unconditionally.
func (r IterRecord) MarshalJSON() ([]byte, error) {
	gates := r.Gates
	if gates == nil {
		gates = []netlist.GateID{}
	}
	return json.Marshal(iterRecordJSON{
		Iter:                 r.Iter,
		Gates:                gates,
		Sensitivity:          r.Sensitivity,
		Objective:            r.Objective,
		TotalWidth:           r.TotalWidth,
		CandidatesConsidered: r.CandidatesConsidered,
		CandidatesPruned:     r.CandidatesPruned,
		NodesVisited:         r.NodesVisited,
		ElapsedNS:            r.Elapsed.Nanoseconds(),
	})
}

// UnmarshalJSON decodes the stable wire form; floats round-trip
// bit-exactly.
func (r *IterRecord) UnmarshalJSON(b []byte) error {
	var w iterRecordJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = IterRecord{
		Iter:                 w.Iter,
		Gates:                w.Gates,
		Sensitivity:          w.Sensitivity,
		Objective:            w.Objective,
		TotalWidth:           w.TotalWidth,
		CandidatesConsidered: w.CandidatesConsidered,
		CandidatesPruned:     w.CandidatesPruned,
		NodesVisited:         w.NodesVisited,
		Elapsed:              time.Duration(w.ElapsedNS),
	}
	return nil
}
