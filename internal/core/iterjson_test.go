package core

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"statsize/internal/netlist"
)

// TestIterRecordJSONGolden pins the exact bytes of the IterRecord wire
// encoding. This encoding doubles as the daemon's SSE progress event,
// so any drift — a renamed key, a reordered field, a changed number
// format — breaks external clients; the pinned literal makes such a
// change a conscious wire-format revision instead of a silent fallout
// of a Go-side refactor.
func TestIterRecordJSONGolden(t *testing.T) {
	rec := IterRecord{
		Iter:                 7,
		Gates:                []netlist.GateID{3, 141},
		Sensitivity:          math.Nextafter(0.3, 1), // 0.30000000000000004: exercises shortest-round-trip encoding
		Objective:            math.Pi,
		TotalWidth:           512.5,
		CandidatesConsidered: 880,
		CandidatesPruned:     761,
		NodesVisited:         12345,
		Elapsed:              1500 * time.Microsecond,
	}
	const want = `{"iter":7,"gates":[3,141],"sensitivity":0.30000000000000004,` +
		`"objective":3.141592653589793,"total_width":512.5,` +
		`"candidates_considered":880,"candidates_pruned":761,` +
		`"nodes_visited":12345,"elapsed_ns":1500000}`
	got, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("IterRecord wire encoding drifted:\n got  %s\n want %s", got, want)
	}

	// Zero value: gates must encode as [] (not null) so clients index
	// unconditionally.
	zero, err := json.Marshal(IterRecord{})
	if err != nil {
		t.Fatal(err)
	}
	const wantZero = `{"iter":0,"gates":[],"sensitivity":0,"objective":0,"total_width":0,` +
		`"candidates_considered":0,"candidates_pruned":0,"nodes_visited":0,"elapsed_ns":0}`
	if string(zero) != wantZero {
		t.Fatalf("zero IterRecord encoding drifted:\n got  %s\n want %s", zero, wantZero)
	}
}

// TestIterRecordJSONRoundTrip proves decode(encode(r)) restores every
// field, with floats compared by bit pattern — the property the SSE
// golden-trace replay depends on.
func TestIterRecordJSONRoundTrip(t *testing.T) {
	recs := []IterRecord{
		{
			Iter:        1,
			Gates:       []netlist.GateID{0},
			Sensitivity: 1e-17,   // denormal-adjacent tiny sensitivity
			Objective:   2.625,   // exactly representable
			TotalWidth:  1.0 / 3, // repeating binary fraction
			Elapsed:     time.Nanosecond,
		},
		{
			Iter:                 999,
			Gates:                []netlist.GateID{5, 6, 7},
			Sensitivity:          math.SmallestNonzeroFloat64,
			Objective:            math.MaxFloat64,
			TotalWidth:           0.1,
			CandidatesConsidered: 1 << 30,
			CandidatesPruned:     1,
			NodesVisited:         2,
			Elapsed:              3 * time.Hour,
		},
	}
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var back IterRecord
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back.Iter != rec.Iter || back.CandidatesConsidered != rec.CandidatesConsidered ||
			back.CandidatesPruned != rec.CandidatesPruned || back.NodesVisited != rec.NodesVisited ||
			back.Elapsed != rec.Elapsed {
			t.Fatalf("round trip changed integer fields: got %+v want %+v", back, rec)
		}
		if len(back.Gates) != len(rec.Gates) {
			t.Fatalf("round trip changed gates: got %v want %v", back.Gates, rec.Gates)
		}
		for i := range rec.Gates {
			if back.Gates[i] != rec.Gates[i] {
				t.Fatalf("round trip changed gates: got %v want %v", back.Gates, rec.Gates)
			}
		}
		for _, f := range []struct {
			name      string
			got, want float64
		}{
			{"Sensitivity", back.Sensitivity, rec.Sensitivity},
			{"Objective", back.Objective, rec.Objective},
			{"TotalWidth", back.TotalWidth, rec.TotalWidth},
		} {
			if math.Float64bits(f.got) != math.Float64bits(f.want) {
				t.Errorf("%s not bit-identical after round trip: got %x want %x",
					f.name, math.Float64bits(f.got), math.Float64bits(f.want))
			}
		}
	}
}
