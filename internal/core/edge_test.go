package core

import (
	"context"
	"math"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/netlist"
	"statsize/internal/ssta"
)

// When every gate saturates at WMax, the optimizer must stop cleanly
// with no candidates rather than spin or crash.
func TestAllGatesAtMaxWidth(t *testing.T) {
	d := newDesign(t, "c17")
	for g := 0; g < d.NL.NumGates(); g++ {
		d.SetWidth(netlist.GateID(g), d.Lib.WMax)
	}
	res, err := runOn(t, d, Config{MaxIterations: 5}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Errorf("saturated design still ran %d iterations", res.Iterations)
	}
	if res.FinalObjective != res.InitialObjective {
		t.Error("saturated design changed objective")
	}
}

// A library with a tiny WMax forces saturation mid-run; the candidate
// set must shrink and the run must converge without error.
func TestSaturationMidRun(t *testing.T) {
	lib := cell.Default180nm()
	lib.WMax = 2.0 // two steps per gate
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runOn(t, d, Config{MaxIterations: 100}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	// 6 gates x 2 steps = at most 12 sizing moves.
	if res.Iterations > 12 {
		t.Errorf("ran %d iterations, at most 12 moves possible", res.Iterations)
	}
	for g := 0; g < d.NL.NumGates(); g++ {
		if d.Width(netlist.GateID(g)) > lib.WMax {
			t.Error("width exceeded WMax")
		}
	}
}

// With a huge tolerance nothing is ever worth sizing.
func TestToleranceStopsImmediately(t *testing.T) {
	d := newDesign(t, "c17")
	res, err := runOn(t, d, Config{MaxIterations: 10, Tolerance: 1e9}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Error("huge tolerance should stop before the first sizing")
	}
}

// Deterministic optimizer on a saturated design.
func TestDeterministicSaturated(t *testing.T) {
	d := newDesign(t, "c17")
	for g := 0; g < d.NL.NumGates(); g++ {
		d.SetWidth(netlist.GateID(g), d.Lib.WMax)
	}
	res, err := runOn(t, d, Config{MaxIterations: 5}, Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Error("saturated deterministic run should not iterate")
	}
}

// Zero-variance libraries: the statistical optimizer degenerates to
// optimizing (a discretized image of) the nominal delay and must still
// run without numerical trouble.
func TestZeroSigmaStatisticalRun(t *testing.T) {
	lib := cell.Default180nm()
	lib.SigmaRatio = 0
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runOn(t, d, Config{MaxIterations: 6, Bins: 2000}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.FinalObjective >= res.InitialObjective {
		t.Error("zero-sigma run should still improve the (nominal) delay")
	}
}

// Explicit DT override must be honored over Bins.
func TestExplicitGridOverride(t *testing.T) {
	d := newDesign(t, "c17")
	cfg := Config{MaxIterations: 1, DT: 0.004}.withDefaults()
	a, err := ssta.Analyze(context.Background(), d, gridFor(d, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if a.DT != 0.004 {
		t.Errorf("grid %v, want 0.004", a.DT)
	}
}

// Sensitivities can legitimately be negative (upsizing a gate whose
// fanin load penalty dominates); the optimizer must never commit one.
func TestNeverCommitsNegativeSensitivity(t *testing.T) {
	d := newDesign(t, "c432")
	res, err := runOn(t, d, Config{MaxIterations: 40}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Sensitivity <= 0 {
			t.Fatalf("iteration %d committed sensitivity %v", r.Iter, r.Sensitivity)
		}
	}
	// And the objective must be monotone non-increasing along the run.
	prev := res.InitialObjective
	for _, r := range res.Records {
		if r.Objective > prev+1e-9 {
			t.Fatalf("objective rose at iteration %d: %v -> %v", r.Iter, prev, r.Objective)
		}
		prev = r.Objective
	}
}

// The perturbation-front bookkeeping must empty out completely when a
// front is propagated to the end (no leaked nodes).
func TestFrontDrainsCompletely(t *testing.T) {
	d := smallDesign(t, 8)
	cfg := Config{DisablePruning: true}.withDefaults()
	a, err := ssta.Analyze(context.Background(), d, gridFor(d, cfg))
	if err != nil {
		t.Fatal(err)
	}
	for _, gid := range candidateGates(d)[:10] {
		f, err := newFront(a, cfg, gid, dist.NewArena())
		if err != nil {
			t.Fatal(err)
		}
		for !f.dead {
			f.propagateOneLevel(a, cfg, dist.NewArena())
		}
		if len(f.perturbed) != 0 || len(f.delta) != 0 || len(f.foLeft) != 0 {
			t.Fatalf("gate %d: front leaked %d/%d/%d entries",
				gid, len(f.perturbed), len(f.delta), len(f.foLeft))
		}
		if len(f.scheduled) != 0 || len(f.inSched) != 0 {
			t.Fatalf("gate %d: scheduling state leaked", gid)
		}
	}
}

// The warm start only reorders inner-loop evaluation; disabling it must
// leave the entire trajectory unchanged.
func TestWarmStartExactness(t *testing.T) {
	d1 := smallDesign(t, 14)
	d2 := smallDesign(t, 14)
	r1, err := runOn(t, d1, Config{MaxIterations: 12}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runOn(t, d2, Config{MaxIterations: 12, DisableWarmStart: true}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations != r2.Iterations {
		t.Fatalf("iterations differ: %d vs %d", r1.Iterations, r2.Iterations)
	}
	for i := range r1.Records {
		if r1.Records[i].Gates[0] != r2.Records[i].Gates[0] ||
			r1.Records[i].Sensitivity != r2.Records[i].Sensitivity {
			t.Fatalf("iter %d: warm start changed the choice", i)
		}
	}
	// On tiny circuits a stale hint can cost a little extra work (its
	// front is propagated fully even when mediocre); the win appears on
	// large circuits where crowded sensitivities make pruning hard. The
	// overhead must stay bounded either way.
	v1, v2 := 0, 0
	for i := range r1.Records {
		v1 += r1.Records[i].NodesVisited
		v2 += r2.Records[i].NodesVisited
	}
	if float64(v1) > 1.25*float64(v2) {
		t.Errorf("warm start visited %d nodes vs cold %d (>25%% overhead)", v1, v2)
	}
}

// MultiSize beyond the candidate count must size what exists and stop.
func TestMultiSizeOversized(t *testing.T) {
	d := newDesign(t, "c17")
	res, err := runOn(t, d, Config{MaxIterations: 2, MultiSize: 100}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations")
	}
	if len(res.Records[0].Gates) > d.NL.NumGates() {
		t.Error("sized more gates than exist")
	}
}

// An area cap below one step stops immediately after at most one move.
func TestTinyAreaCap(t *testing.T) {
	d := newDesign(t, "c432")
	res, err := runOn(t, d, Config{MaxIterations: 100, MaxAreaIncrease: 1e-9}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Errorf("tiny area cap allowed %d iterations", res.Iterations)
	}
}

// Mean and percentile objectives must order designs consistently with
// their definitions: optimizing the mean may not be optimal for p99 and
// vice versa, but both must improve their own metric.
func TestObjectivesImproveThemselves(t *testing.T) {
	for _, obj := range []Objective{Percentile(0.5), Percentile(0.99), Mean{}} {
		d := smallDesign(t, 9)
		res, err := runOn(t, d, Config{MaxIterations: 10, Objective: obj}, Accelerated)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalObjective >= res.InitialObjective {
			t.Errorf("objective %v did not improve: %v -> %v",
				obj, res.InitialObjective, res.FinalObjective)
		}
	}
}

// Improvement and AreaIncrease handle degenerate results.
func TestResultMetricsDegenerate(t *testing.T) {
	r := &Result{}
	if r.Improvement() != 0 || r.AreaIncrease() != 0 {
		t.Error("zero result should report zero metrics")
	}
	r = &Result{InitialObjective: 2, FinalObjective: 1, InitialWidth: 10, FinalWidth: 12}
	if math.Abs(r.Improvement()-50) > 1e-12 {
		t.Errorf("Improvement = %v, want 50", r.Improvement())
	}
	if math.Abs(r.AreaIncrease()-20) > 1e-12 {
		t.Errorf("AreaIncrease = %v, want 20", r.AreaIncrease())
	}
}
