// Package core implements the paper's contribution: sensitivity-based
// statistical gate sizing by coordinate descent, in three variants that
// share one framework —
//
//   - Deterministic: the Section 4 baseline. Nominal (corner) delays,
//     candidates restricted to the critical path, sensitivity = change
//     in nominal circuit delay per width step.
//   - BruteForce: exact statistical sizing. Every candidate gate's
//     sensitivity is the change in the objective (default: 99-percentile
//     of the circuit-delay CDF) obtained by a full SSTA propagation of
//     its perturbation — O(N·E) per sizing iteration (Section 3.1).
//   - Accelerated: the paper's pruning algorithm (Figures 6, 7, 9).
//     Perturbation fronts propagate level by level in best-first order
//     of their bound Smx = Δmx/Δw; Theorems 1–4 guarantee Smx can only
//     shrink and always bounds the true sensitivity, so any candidate
//     whose bound falls below the best exact sensitivity seen so far
//     (Max_S) is pruned without reaching the sink. Results are identical
//     to BruteForce.
//
// All three mutate the design's widths in place and report per-iteration
// traces (area, objective, pruning statistics) from which the paper's
// Tables 1–2 and Figure 10 are regenerated.
package core

import (
	"context"
	"fmt"
	"time"

	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/netlist"
	"statsize/internal/par"
	"statsize/internal/session"
)

// Objective maps the circuit-delay distribution at the sink to the
// scalar being minimized. The perturbation-bound theory holds for any
// objective that cannot improve by more than the maximum percentile
// improvement Δ — true for every percentile and for the mean. It is the
// same interface sessions are opened with, so one objective value
// configures both.
type Objective = session.Objective

// Percentile is the p-quantile objective; the paper uses 0.99.
type Percentile float64

// Eval returns the p-quantile of the sink distribution.
func (p Percentile) Eval(s *dist.Dist) float64 { return s.Percentile(float64(p)) }

func (p Percentile) String() string { return fmt.Sprintf("p%g", 100*float64(p)) }

// Mean is the expected-delay objective.
type Mean struct{}

// Eval returns the mean of the sink distribution.
func (Mean) Eval(s *dist.Dist) float64 { return s.Mean() }

func (Mean) String() string { return "mean" }

// pruneSlack absorbs the numerical slop between a candidate's true
// sensitivity and its perturbation-front bound (grid quantization of the
// bound rounds it up; the ε probability slack can cost ~1e-9 of delay).
// A candidate is pruned only when its bound is below Max_S by more than
// this, so pruning can never eliminate the argmax.
const pruneSlack = 1e-8

// Config controls one optimization run. The zero value selects the
// paper's protocol: 99-percentile objective, 600-bin grid, single gate
// per iteration, pruning and dead-front elision enabled.
type Config struct {
	// Objective to minimize; default Percentile(0.99).
	Objective Objective
	// Bins sets the SSTA grid resolution when DT is zero; default 600.
	Bins int
	// DT overrides the grid bin width directly (ns).
	DT float64
	// MaxIterations bounds the sizing iterations; default 1000 (the
	// paper sized for "over 1000 iterations").
	MaxIterations int
	// MaxAreaIncrease stops when TotalWidth exceeds the initial total by
	// this fraction (e.g. 0.25 = +25%); non-positive means unlimited.
	MaxAreaIncrease float64
	// Tolerance is the minimum sensitivity worth sizing; default 1e-9.
	Tolerance float64
	// MultiSize sizes the top-k gates per iteration (the paper notes the
	// algorithm "can be easily modified to size multiple gates");
	// default 1.
	MultiSize int
	// Parallelism bounds the worker pools of the parallel evaluation
	// paths: the session-opening SSTA pass, what-if batches, and the
	// per-candidate sweeps inside the brute-force and accelerated inner
	// loops. Candidate evaluation is mutation-free, results merge in
	// candidate order, and distributions are exact lattice operations,
	// so the worker count never changes any result — trajectories are
	// bit-identical at every setting. Non-positive means one worker per
	// logical CPU; 1 forces fully serial evaluation.
	Parallelism int
	// HeuristicLevels, when positive, stops each perturbation front
	// after this many levels and uses its bound Smx as an approximate
	// sensitivity — the fast heuristic the paper names as future work.
	// The exactness guarantee no longer applies.
	HeuristicLevels int
	// DisablePruning propagates every front to the sink (ablation).
	DisablePruning bool
	// DisableDeadFrontElision keeps propagating fronts whose perturbed
	// arrivals have collapsed onto the base analysis (ablation).
	DisableDeadFrontElision bool
	// ConvolveCrossover, when positive, sets the support width at which
	// the dist kernels switch from the exact direct convolution to the
	// FFT fast path (1 forces the FFT everywhere, as the validation
	// oracle does). Zero keeps the current process setting — by default
	// an auto-calibrated threshold that no grid at or below the default
	// 600-bin budget can reach. Note this is process-wide dispatch
	// policy (dist.SetConvolveCrossover), not per-session state.
	ConvolveCrossover int
	// DisableWarmStart skips evaluating the previous iteration's winner
	// first (ablation). The warm start only reorders the inner loop and
	// never changes results; measurements show the best-first Smx order
	// already establishes Max_S almost as quickly, so the effect on
	// visited nodes is within noise (~0.1% on c880).
	DisableWarmStart bool
	// OnIteration, when non-nil, observes each completed iteration (used
	// to trace Figure 10 area-delay curves).
	OnIteration func(IterRecord)
}

func (c Config) withDefaults() Config {
	if c.Objective == nil {
		c.Objective = Percentile(0.99)
	}
	if c.Bins <= 0 {
		c.Bins = 600
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 1000
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-9
	}
	if c.MultiSize <= 0 {
		c.MultiSize = 1
	}
	c.Parallelism = par.Workers(c.Parallelism)
	return c
}

// IterRecord describes one completed sizing iteration.
type IterRecord struct {
	Iter        int
	Gates       []netlist.GateID // gates sized this iteration
	Sensitivity float64          // best sensitivity found
	Objective   float64          // objective value after sizing
	TotalWidth  float64          // total gate size after sizing
	// Candidate statistics for Table 2.
	CandidatesConsidered int
	CandidatesPruned     int // fronts retired before reaching the sink
	NodesVisited         int // perturbed-arrival computations
	Elapsed              time.Duration
}

// Result summarizes an optimization run.
type Result struct {
	Method           string
	InitialObjective float64
	FinalObjective   float64
	InitialWidth     float64
	FinalWidth       float64
	Iterations       int
	Records          []IterRecord
	Elapsed          time.Duration
	// Design is the design the optimizer sized: the session-owned design
	// (a private clone when the run went through an Engine). On
	// cancellation it holds the partially sized state that the trace in
	// Records describes. When the session outlives the run, later session
	// mutations keep writing to it — snapshot via Session.Snapshot for an
	// independent copy.
	Design *design.Design
}

// Improvement returns the relative objective improvement in percent —
// the quantity Table 1 reports between optimizers.
func (r *Result) Improvement() float64 {
	if r.InitialObjective == 0 {
		return 0
	}
	return 100 * (r.InitialObjective - r.FinalObjective) / r.InitialObjective
}

// AreaIncrease returns the relative total-width increase in percent
// (Table 1, column "% inc").
func (r *Result) AreaIncrease() float64 {
	if r.InitialWidth == 0 {
		return 0
	}
	return 100 * (r.FinalWidth - r.InitialWidth) / r.InitialWidth
}

// candidateGates returns the gates eligible for upsizing: everything not
// pinned at the maximum width. Order is ascending gate ID; ties in
// sensitivity resolve to the lowest ID in every optimizer so that
// trajectories are comparable.
func candidateGates(d *design.Design) []netlist.GateID {
	var out []netlist.GateID
	for g := 0; g < d.NL.NumGates(); g++ {
		gid := netlist.GateID(g)
		if d.Width(gid)+d.Lib.DeltaW <= d.Lib.WMax {
			out = append(out, gid)
		}
	}
	return out
}

// gridFor resolves the analysis grid from the config.
func gridFor(d *design.Design, cfg Config) float64 {
	if cfg.DT > 0 {
		return cfg.DT
	}
	return d.SuggestDT(cfg.Bins)
}

// OpenSession opens an incremental timing session over d at the grid
// and objective the config resolves to — the single construction path
// shared by the Engine facade, the experiment harness and the tests, so
// an optimizer driven through a session opened here sees exactly the
// analysis it used to build for itself.
func OpenSession(ctx context.Context, d *design.Design, cfg Config) (*session.Session, error) {
	cfg = cfg.withDefaults()
	if cfg.ConvolveCrossover > 0 {
		dist.SetConvolveCrossover(cfg.ConvolveCrossover)
	}
	return session.Open(ctx, d, gridFor(d, cfg), cfg.Objective, cfg.Parallelism)
}

// areaCapReached reports whether the configured relative area budget is
// exhausted.
func areaCapReached(cfg Config, initial, current float64) bool {
	return cfg.MaxAreaIncrease > 0 && current >= initial*(1+cfg.MaxAreaIncrease)
}
