package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/netlist"
	"statsize/internal/session"
	"statsize/internal/ssta"
)

func newDesign(t testing.TB, name string) *design.Design {
	t.Helper()
	lib := cell.Default180nm()
	var nl *netlist.Netlist
	if name == "c17" {
		nl = netlist.C17(lib)
	} else {
		sp, ok := circuitgen.ByName(name)
		if !ok {
			t.Fatalf("unknown circuit %q", name)
		}
		var err error
		nl, err = circuitgen.Generate(lib, sp)
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallDesign(t testing.TB, seed int64) *design.Design {
	t.Helper()
	lib := cell.Default180nm()
	sp := circuitgen.Spec{Name: "small", Nodes: 60, Edges: 104, PIs: 8, POs: 5, Depth: 8, Seed: seed}
	nl, err := circuitgen.Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runOn opens a session over d (as the facade does) and runs the
// optimizer against it — the one-line bridge the pre-session tests
// drove the design-taking signatures with.
func runOn(t testing.TB, d *design.Design, cfg Config,
	opt func(context.Context, *session.Session, Config) (*Result, error)) (*Result, error) {
	t.Helper()
	s, err := OpenSession(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return opt(context.Background(), s, cfg)
}

func TestObjectives(t *testing.T) {
	d := newDesign(t, "c17")
	a, err := ssta.Analyze(context.Background(), d, d.SuggestDT(500))
	if err != nil {
		t.Fatal(err)
	}
	s := a.SinkDist()
	if Percentile(0.99).Eval(s) != s.Percentile(0.99) {
		t.Error("Percentile objective mismatch")
	}
	if (Mean{}).Eval(s) != s.Mean() {
		t.Error("Mean objective mismatch")
	}
	if Percentile(0.99).String() == "" || (Mean{}).String() == "" {
		t.Error("objective names empty")
	}
}

func TestDeterministicImproves(t *testing.T) {
	d := newDesign(t, "c432")
	res, err := runOn(t, d, Config{MaxIterations: 25}, Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations performed")
	}
	if res.FinalObjective >= res.InitialObjective {
		t.Errorf("nominal delay did not improve: %v -> %v", res.InitialObjective, res.FinalObjective)
	}
	if res.FinalWidth <= res.InitialWidth {
		t.Error("total width should grow")
	}
	// One gate per iteration, one width step each.
	wantArea := res.InitialWidth + float64(res.Iterations)*d.Lib.DeltaW
	if math.Abs(res.FinalWidth-wantArea) > 1e-9 {
		t.Errorf("area accounting: %v, want %v", res.FinalWidth, wantArea)
	}
}

func TestAcceleratedImproves(t *testing.T) {
	d := newDesign(t, "c432")
	res, err := runOn(t, d, Config{MaxIterations: 20}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations performed")
	}
	if res.FinalObjective >= res.InitialObjective {
		t.Errorf("p99 did not improve: %v -> %v", res.InitialObjective, res.FinalObjective)
	}
	if res.Improvement() <= 0 || res.AreaIncrease() <= 0 {
		t.Error("summary metrics inconsistent")
	}
	// Pruning must actually happen on a real circuit.
	pruned := 0
	for _, rec := range res.Records {
		pruned += rec.CandidatesPruned
	}
	if pruned == 0 {
		t.Error("no candidates pruned in 20 iterations")
	}
}

// The headline claim: the accelerated algorithm is exact — identical
// gate choices, sensitivities and objective trajectory to brute force.
func TestAcceleratedMatchesBruteForceTrajectories(t *testing.T) {
	for _, tc := range []struct {
		name  string
		iters int
	}{
		{"c17", 12},
		{"small-1", 15},
		{"small-2", 15},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var db, da *design.Design
			switch tc.name {
			case "c17":
				db, da = newDesign(t, "c17"), newDesign(t, "c17")
			case "small-1":
				db, da = smallDesign(t, 1), smallDesign(t, 1)
			default:
				db, da = smallDesign(t, 2), smallDesign(t, 2)
			}
			cfg := Config{MaxIterations: tc.iters}
			rb, err := runOn(t, db, cfg, BruteForce)
			if err != nil {
				t.Fatal(err)
			}
			ra, err := runOn(t, da, cfg, Accelerated)
			if err != nil {
				t.Fatal(err)
			}
			if rb.Iterations != ra.Iterations {
				t.Fatalf("iteration counts differ: brute %d vs accel %d", rb.Iterations, ra.Iterations)
			}
			for i := range rb.Records {
				b, a := rb.Records[i], ra.Records[i]
				if len(b.Gates) != 1 || len(a.Gates) != 1 || b.Gates[0] != a.Gates[0] {
					t.Fatalf("iter %d: different gate chosen: brute %v vs accel %v", i, b.Gates, a.Gates)
				}
				if math.Abs(b.Sensitivity-a.Sensitivity) > 1e-12 {
					t.Fatalf("iter %d: sensitivities differ: %v vs %v", i, b.Sensitivity, a.Sensitivity)
				}
				if math.Abs(b.Objective-a.Objective) > 1e-12 {
					t.Fatalf("iter %d: objectives differ: %v vs %v", i, b.Objective, a.Objective)
				}
			}
			if math.Abs(rb.FinalObjective-ra.FinalObjective) > 1e-12 {
				t.Fatalf("final objectives differ: %v vs %v", rb.FinalObjective, ra.FinalObjective)
			}
			// The widths must agree gate by gate.
			for g := 0; g < db.NL.NumGates(); g++ {
				if db.Width(netlist.GateID(g)) != da.Width(netlist.GateID(g)) {
					t.Fatalf("gate %d widths diverged", g)
				}
			}
		})
	}
}

// Smx must bound the exact sensitivity for every candidate (Theorem 4):
// run one inner iteration with pruning disabled and compare each front's
// initial bound against its final exact sensitivity.
func TestFrontBoundDominatesSensitivity(t *testing.T) {
	d := smallDesign(t, 3)
	cfg := Config{DisablePruning: true}.withDefaults()
	a, err := ssta.Analyze(context.Background(), d, gridFor(d, cfg))
	if err != nil {
		t.Fatal(err)
	}
	base := cfg.Objective.Eval(a.SinkDist())
	for _, gid := range candidateGates(d) {
		f, err := newFront(a, cfg, gid, dist.NewArena())
		if err != nil {
			t.Fatal(err)
		}
		bound := f.smx / d.Lib.DeltaW
		prevBound := math.Inf(1)
		for !f.dead {
			f.propagateOneLevel(a, cfg, dist.NewArena())
			b := f.smx / d.Lib.DeltaW
			if b > prevBound+pruneSlack {
				t.Fatalf("gate %d: front bound grew from %v to %v", gid, prevBound, b)
			}
			prevBound = b
		}
		sens := 0.0
		if f.sinkDist != nil {
			sens = (base - cfg.Objective.Eval(f.sinkDist)) / d.Lib.DeltaW
		}
		if sens > bound+pruneSlack {
			t.Errorf("gate %d: sensitivity %v exceeds initial bound %v", gid, sens, bound)
		}
	}
}

func TestMaxIterationsHonored(t *testing.T) {
	d := newDesign(t, "c17")
	res, err := runOn(t, d, Config{MaxIterations: 3}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Errorf("ran %d iterations, cap was 3", res.Iterations)
	}
}

func TestAreaCapHonored(t *testing.T) {
	d := newDesign(t, "c17")
	res, err := runOn(t, d, Config{MaxIterations: 1000, MaxAreaIncrease: 0.10}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.AreaIncrease() > 10+100*d.Lib.DeltaW/res.InitialWidth {
		t.Errorf("area increased %.1f%%, cap was 10%%", res.AreaIncrease())
	}
}

func TestMultiSize(t *testing.T) {
	d := smallDesign(t, 4)
	res, err := runOn(t, d, Config{MaxIterations: 5, MultiSize: 3}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations")
	}
	if len(res.Records[0].Gates) < 2 {
		t.Errorf("multi-size iteration sized %d gates, want >= 2", len(res.Records[0].Gates))
	}
	if res.FinalObjective >= res.InitialObjective {
		t.Error("multi-size run did not improve")
	}
}

func TestHeuristicMode(t *testing.T) {
	d := smallDesign(t, 5)
	res, err := runOn(t, d, Config{MaxIterations: 10, HeuristicLevels: 3}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("heuristic run made no progress")
	}
	if res.FinalObjective >= res.InitialObjective {
		t.Error("heuristic run did not improve the objective")
	}
}

func TestMeanObjective(t *testing.T) {
	d := smallDesign(t, 6)
	res, err := runOn(t, d, Config{MaxIterations: 8, Objective: Mean{}}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective >= res.InitialObjective {
		t.Error("mean-objective run did not improve")
	}
}

func TestDisableAblationsStillExact(t *testing.T) {
	// With pruning and elision disabled the algorithm degenerates to a
	// front-based brute force; results must be unchanged.
	d1 := smallDesign(t, 7)
	d2 := smallDesign(t, 7)
	r1, err := runOn(t, d1, Config{MaxIterations: 6}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runOn(t, d2, Config{MaxIterations: 6, DisablePruning: true, DisableDeadFrontElision: true}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations != r2.Iterations || math.Abs(r1.FinalObjective-r2.FinalObjective) > 1e-12 {
		t.Error("ablation flags changed optimization results")
	}
	for i := range r1.Records {
		if r1.Records[i].Gates[0] != r2.Records[i].Gates[0] {
			t.Fatalf("iter %d: ablation changed gate choice", i)
		}
	}
	// Pruning must make the inner loop cheaper.
	v1, v2 := 0, 0
	for i := range r1.Records {
		v1 += r1.Records[i].NodesVisited
		v2 += r2.Records[i].NodesVisited
	}
	if v1 >= v2 {
		t.Errorf("pruned run visited %d nodes, unpruned %d — pruning saved nothing", v1, v2)
	}
}

func TestTopK(t *testing.T) {
	top := newTopK(2)
	top.offer(pick{gate: 5, sens: 1.0})
	top.offer(pick{gate: 3, sens: 3.0})
	top.offer(pick{gate: 9, sens: 2.0})
	top.offer(pick{gate: 1, sens: 0.5})
	got := top.sorted()
	if len(got) != 2 || got[0].gate != 3 || got[1].gate != 9 {
		t.Fatalf("topK = %v", got)
	}
	if top.kthSens() != 2.0 {
		t.Errorf("kthSens = %v, want 2", top.kthSens())
	}
	// Ties resolve to lowest gate ID.
	tie := newTopK(1)
	tie.offer(pick{gate: 7, sens: 1.0})
	tie.offer(pick{gate: 2, sens: 1.0})
	if tie.sorted()[0].gate != 2 {
		t.Error("tie should resolve to lowest gate ID")
	}
}

func TestTraceCallback(t *testing.T) {
	d := newDesign(t, "c17")
	calls := 0
	_, err := runOn(t, d, Config{MaxIterations: 4, OnIteration: func(r IterRecord) {
		calls++
		if r.TotalWidth <= 0 || r.Objective <= 0 {
			t.Error("bad trace record")
		}
	}}, Accelerated)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("trace callback never invoked")
	}
}

// TestAcceleratedCancelMidRun: regression for the unchecked hint-front
// drain ctxflow flagged in acceleratedIteration — cancellation raised
// mid-run (here from the OnIteration hook, after warm-start hints
// exist) must stop the run at the next observation point and return the
// partial result wrapped around context.Canceled, per the Engine
// contract.
func TestAcceleratedCancelMidRun(t *testing.T) {
	d := newDesign(t, "c432")
	s, err := OpenSession(context.Background(), d, Config{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Accelerated(ctx, s, Config{MaxIterations: 50, OnIteration: func(IterRecord) { cancel() }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want a context.Canceled wrap", err)
	}
	if res == nil || res.Iterations != 1 {
		t.Fatalf("partial result = %+v, want exactly the one committed iteration", res)
	}
}
