package core

import (
	"context"
	"fmt"
	"time"

	"statsize/internal/netlist"
	"statsize/internal/session"
	"statsize/internal/sta"
)

// Deterministic runs the Section 4 baseline: coordinate descent on the
// nominal circuit delay. Each iteration computes, for every gate on the
// critical path, the change in nominal delay from one width step, and
// sizes up the most sensitive gate. Because it has no incentive to touch
// paths that are not nominally critical, it equalizes path delays into
// the "wall" of Figure 1a — which is exactly what the statistical
// optimizer avoids.
//
// The reported per-iteration Objective is the nominal circuit delay; the
// experiment harness reruns SSTA on the resulting designs to obtain the
// 99-percentile values Table 1 compares. Sizing commits go through the
// session, so its statistical view (sink distribution, slack queries)
// stays live while this nominal-only baseline runs.
func Deterministic(ctx context.Context, s *session.Session, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	tx, err := s.Acquire()
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	d := tx.Design()
	res := &Result{
		Method:       "deterministic",
		InitialWidth: d.TotalWidth(),
		Design:       d,
	}
	res.InitialObjective = sta.Analyze(d).CircuitDelay()
	res.FinalObjective = res.InitialObjective

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.FinalWidth = d.TotalWidth()
			res.Elapsed = time.Since(start)
			return res, fmt.Errorf("core: deterministic optimization interrupted after %d iterations: %w",
				res.Iterations, err)
		}
		if areaCapReached(cfg, res.InitialWidth, d.TotalWidth()) {
			break
		}
		iterStart := time.Now()
		r := sta.Analyze(d)
		base := r.CircuitDelay()

		bestGate, bestSens := -1, 0.0
		candidates := 0
		for _, gid := range r.CriticalGates() {
			w := d.Width(gid)
			next := w + d.Lib.DeltaW
			if next > d.Lib.WMax {
				continue
			}
			candidates++
			var after float64
			_ = d.WithWidth(gid, next, func() error {
				after = sta.Analyze(d).CircuitDelay()
				return nil
			})
			sens := (base - after) / d.Lib.DeltaW
			if sens > bestSens || (sens == bestSens && bestGate >= 0 && int(gid) < bestGate) {
				bestGate, bestSens = int(gid), sens
			}
		}
		if bestGate < 0 || bestSens <= cfg.Tolerance {
			break
		}
		gid := netlist.GateID(bestGate)
		if _, err := tx.Resize(ctx, gid, d.Width(gid)+d.Lib.DeltaW); err != nil {
			if ctx.Err() != nil {
				res.FinalWidth = d.TotalWidth()
				res.Elapsed = time.Since(start)
				return res, fmt.Errorf("core: deterministic optimization interrupted after %d iterations: %w",
					res.Iterations, ctx.Err())
			}
			return nil, err
		}
		after := sta.Analyze(d).CircuitDelay()

		rec := IterRecord{
			Iter:                 iter,
			Gates:                []netlist.GateID{gid},
			Sensitivity:          bestSens,
			Objective:            after,
			TotalWidth:           d.TotalWidth(),
			CandidatesConsidered: candidates,
			Elapsed:              time.Since(iterStart),
		}
		res.Records = append(res.Records, rec)
		res.Iterations++
		res.FinalObjective = after
		if cfg.OnIteration != nil {
			cfg.OnIteration(rec)
		}
	}
	res.FinalWidth = d.TotalWidth()
	res.Elapsed = time.Since(start)
	return res, nil
}
