package core

import (
	"container/heap"
	"context"
	"sort"

	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/netlist"
	"statsize/internal/par"
	"statsize/internal/session"
	"statsize/internal/ssta"
)

// Accelerated runs the paper's pruning algorithm (Figures 6, 7 and 9).
//
// For every candidate gate a perturbation front is initialized: the
// delay distributions of the gate and of its fanin drivers are perturbed
// for one width step, and the perturbed arrival CDFs are propagated from
// the lowest affected level up to the gate's own level (Initialize,
// Figure 7). Each front carries the bound Smx = Δmx/Δw, where Δmx is the
// largest perturbation gap across the front's live nodes; by Theorems
// 1–4 this bound is an upper bound on the candidate's true sensitivity
// and can only shrink as the front advances.
//
// The inner loop (Figure 6, steps 6–21) repeatedly advances the front
// with the largest bound by one level. When a front reaches the sink,
// its exact sensitivity updates Max_S; any front whose bound falls below
// Max_S is discarded without further propagation. The surviving argmax
// is identical to the brute-force result.
func Accelerated(ctx context.Context, s *session.Session, cfg Config) (*Result, error) {
	return statisticalDescent(ctx, s, cfg, "accelerated", acceleratedIteration)
}

// front is the A'set bookkeeping of one candidate gate (Figure 7/9): the
// perturbed delay overlays, the live perturbed arrivals with their
// remaining-fanout counts, the nodes scheduled for future levels, and
// the current bound.
type front struct {
	gate   netlist.GateID
	delays map[graph.EdgeID]*dist.Dist

	perturbed map[graph.NodeID]*dist.Dist
	delta     map[graph.NodeID]float64
	foLeft    map[graph.NodeID]int
	scheduled map[int][]graph.NodeID
	inSched   map[graph.NodeID]bool
	nextLevel int
	levels    int // levels advanced so far (for the heuristic cutoff)

	smx      float64
	sinkDist *dist.Dist // set once the sink is computed
	dead     bool       // nothing scheduled and nothing live

	heapIdx int
	visits  int
}

// newFront builds and initializes a candidate's front, propagating
// through the candidate gate's own level exactly as Initialize does.
// ar is the kernel scratch arena of the calling worker; the front
// itself retains only persisted (heap) distributions, so fronts built
// on different arenas mix freely in one heap afterwards.
func newFront(a *ssta.Analysis, cfg Config, x netlist.GateID, ar *dist.Arena) (*front, error) {
	d := a.D
	delays, err := a.PerturbedDelays(x, d.Width(x)+d.Lib.DeltaW)
	if err != nil {
		return nil, err
	}
	f := &front{
		gate:      x,
		delays:    delays,
		perturbed: make(map[graph.NodeID]*dist.Dist),
		delta:     make(map[graph.NodeID]float64),
		foLeft:    make(map[graph.NodeID]int),
		scheduled: make(map[int][]graph.NodeID),
		inSched:   make(map[graph.NodeID]bool),
		nextLevel: int(^uint(0) >> 1),
	}
	g := d.E.G
	for _, gid := range ssta.AffectedGates(d, x) {
		n := d.E.NodeOf[d.NL.Gate(gid).Out]
		f.schedule(g, n)
	}
	// Initialize propagates up to and including the candidate's output
	// level so every front starts with a meaningful bound (Figure 7,
	// steps 4–6).
	ownLevel := g.Level(d.E.NodeOf[d.NL.Gate(x).Out])
	for !f.dead && f.nextLevel <= ownLevel {
		f.propagateOneLevel(a, cfg, ar)
	}
	return f, nil
}

// schedule queues a node for computation at its level.
func (f *front) schedule(g *graph.Graph, n graph.NodeID) {
	if f.inSched[n] {
		return
	}
	f.inSched[n] = true
	l := g.Level(n)
	f.scheduled[l] = append(f.scheduled[l], n)
	if l < f.nextLevel {
		f.nextLevel = l
	}
}

// propagateOneLevel computes the perturbed arrivals of every node
// scheduled at the front's current level (Figure 9), updates the
// perturbation bounds and remaining-fanout counts, schedules fanouts,
// and recomputes Smx. Kernel intermediates cycle through ar per node;
// whatever the front retains (perturbed arrivals, the sink) is
// persisted out of scratch first.
func (f *front) propagateOneLevel(a *ssta.Analysis, cfg Config, ar *dist.Arena) {
	g := a.D.E.G
	sink := g.Sink()
	nodes := f.scheduled[f.nextLevel]
	delete(f.scheduled, f.nextLevel)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	arrOverlay := func(n graph.NodeID) *dist.Dist { return f.perturbed[n] }
	delayOverlay := func(e graph.EdgeID) *dist.Dist { return f.delays[e] }

	for _, n := range nodes {
		delete(f.inSched, n)
		ar.Reset()
		pert := a.ArrivalWithOverlayInto(n, arrOverlay, delayOverlay, ar)
		f.visits++
		base := a.Arrival(n)
		alive := true
		if !cfg.DisableDeadFrontElision && dist.ApproxEqual(pert, base, 0) {
			// The perturbation cancelled exactly on this node (an
			// unperturbed fanin dominates the max); nothing downstream
			// of it can ever differ. All perturbed parents are at lower
			// levels and final, so this elision is exact.
			alive = false
		}
		if n == sink {
			f.sinkDist = pert.Persist()
			alive = false
		}
		if alive {
			f.perturbed[n] = pert.Persist()
			f.delta[n] = dist.PerturbationBound(base, pert)
			f.foLeft[n] = len(g.Out(n))
			for _, eid := range g.Out(n) {
				f.schedule(g, g.EdgeAt(eid).To)
			}
		}
		// Consume one fanout slot of every perturbed fanin (Figure 9,
		// steps 13–18); fully consumed nodes leave the front.
		for _, eid := range g.In(n) {
			from := g.EdgeAt(eid).From
			if _, ok := f.perturbed[from]; !ok {
				continue
			}
			f.foLeft[from]--
			if f.foLeft[from] == 0 {
				delete(f.perturbed, from)
				delete(f.delta, from)
				delete(f.foLeft, from)
			}
		}
	}
	f.levels++

	// Advance to the next scheduled level.
	f.nextLevel = int(^uint(0) >> 1)
	for l := range f.scheduled {
		if l < f.nextLevel {
			f.nextLevel = l
		}
	}
	if len(f.scheduled) == 0 {
		f.dead = true
	}
	// Smx = max Δi over the live front (Theorem 4): an upper bound on
	// the eventual sink perturbation.
	f.smx = 0
	for _, dl := range f.delta {
		if dl > f.smx {
			f.smx = dl
		}
	}
}

// frontHeap is a max-heap over Smx (ties: lower gate ID first).
type frontHeap []*front

func (h frontHeap) Len() int { return len(h) }
func (h frontHeap) Less(i, j int) bool {
	if h[i].smx != h[j].smx {
		return h[i].smx > h[j].smx
	}
	return h[i].gate < h[j].gate
}
func (h frontHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *frontHeap) Push(x any) {
	f := x.(*front)
	f.heapIdx = len(*h)
	*h = append(*h, f)
}
func (h *frontHeap) Pop() any {
	old := *h
	f := old[len(old)-1]
	*h = old[:len(old)-1]
	return f
}

// acceleratedIteration is the inner loop of Figure 6 (steps 3–21): find
// the most sensitive gates without propagating every candidate to the
// sink. The warm-start hint (the previous iteration's winner) is
// propagated to the sink before anything else, so Max_S starts high and
// prunes from the first heap pop; this only reorders evaluation and
// cannot change the result.
func acceleratedIteration(ctx context.Context, a *ssta.Analysis, cfg Config, base float64, hint netlist.GateID, ws []*sweepScratch) (innerResult, error) {
	d := a.D
	deltaW := d.Lib.DeltaW
	var ir innerResult

	// Front initialization is independent per candidate — each front owns
	// its overlay maps and only reads the base analysis (PerturbedDelays
	// is mutation-free) — so the fronts build concurrently. The merge
	// below runs in candidate order, never completion order: the heap
	// receives the same fronts in the same sequence as the historical
	// serial loop, so trajectories stay bit-identical at any parallelism.
	cands := candidateGates(d)
	fronts := make([]*front, len(cands))
	// The run-lifetime worker scratches carry the kernel arenas: one
	// per worker for the parallel build, plus the spare the serial heap
	// loop reuses afterwards; fronts only retain persisted heap
	// distributions, never arena views.
	loopArena := ws[len(ws)-1].ar
	err := par.RunIndexed(ctx, cfg.Parallelism, len(cands), func(w, i int) error {
		f, err := newFront(a, cfg, cands[i], ws[w].ar)
		if err != nil {
			return err
		}
		fronts[i] = f
		return nil
	})
	if err != nil {
		// par.Run already prefers the lowest-index evaluation error over
		// a bare cancellation, matching the serial loop's reporting.
		return ir, err
	}
	h := make(frontHeap, 0, len(cands))
	var hintFront *front
	for i, f := range fronts {
		ir.considered++
		ir.nodesVisited += f.visits
		f.visits = 0
		if cands[i] == hint {
			hintFront = f
			continue
		}
		heap.Push(&h, f)
	}

	top := newTopK(cfg.MultiSize)
	finish := func(f *front) {
		sens := 0.0
		if f.sinkDist != nil {
			sens = (base - cfg.Objective.Eval(f.sinkDist)) / deltaW
		} else {
			// The perturbation died out before the sink: the sensitivity
			// is exactly zero and the front stopped early — count it with
			// the pruning wins.
			ir.pruned++
		}
		top.offer(pick{gate: f.gate, sens: sens})
	}

	if hintFront != nil {
		for !hintFront.dead {
			// The hint front runs to the sink outside the heap's pop loop
			// and its pruning checks, so cancellation must be observed
			// here: one level of one front is the latency bound.
			if err := ctx.Err(); err != nil {
				return ir, err
			}
			hintFront.propagateOneLevel(a, cfg, loopArena)
			ir.nodesVisited += hintFront.visits
			hintFront.visits = 0
		}
		finish(hintFront)
	}

	pops := 0
	for h.Len() > 0 {
		if pops%64 == 0 {
			if err := ctx.Err(); err != nil {
				return ir, err
			}
		}
		pops++
		f := heap.Pop(&h).(*front)
		// Pruning (Figure 6, step 20): the heap maximum's front bound
		// Smx = Δmx/Δw dominates every remaining candidate's true
		// sensitivity, so once it falls below the MultiSize-th exact
		// sensitivity nothing left can win.
		if !cfg.DisablePruning && f.smx/deltaW < top.kthSens()-pruneSlack {
			ir.pruned += 1 + h.Len()
			break
		}
		if f.dead {
			finish(f)
			continue
		}
		if cfg.HeuristicLevels > 0 && f.levels >= cfg.HeuristicLevels {
			// Future-work heuristic: accept the bound as the sensitivity
			// estimate without reaching the sink.
			top.offer(pick{gate: f.gate, sens: f.smx / deltaW})
			ir.pruned++
			continue
		}
		f.propagateOneLevel(a, cfg, loopArena)
		ir.nodesVisited += f.visits
		f.visits = 0
		if f.dead {
			finish(f)
			continue
		}
		heap.Push(&h, f)
	}
	ir.picks = top.sorted()
	if len(ir.picks) > 0 {
		ir.bestSens = ir.picks[0].sens
	}
	return ir, nil
}
