package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"statsize"
	"statsize/internal/faultinject"
	"statsize/internal/server"
)

// bootDaemon starts a real daemon on a loopback listener (chaos needs
// real connections — httptest's in-process pipes never see resets) and
// returns its base URL.
func bootDaemon(t testing.TB, cfg server.Config, mw func(http.Handler) http.Handler) (*server.Server, string) {
	t.Helper()
	eng, err := statsize.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logf = func(string, ...any) {}
	s := server.New(eng, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if mw != nil {
		h = mw(h)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		srv.Close()
	})
	return s, "http://" + l.Addr().String()
}

// countingTripper counts requests per path suffix under faults.
type countingTripper struct {
	inner    http.RoundTripper
	optimize atomic.Int64
}

func (ct *countingTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, "/optimize") {
		ct.optimize.Add(1)
	}
	return ct.inner.RoundTrip(req)
}

// TestOptimizeGoldenTraceThroughFaults is the acceptance bar for the
// resilient stream: a fault plan that truncates and resets the optimize
// stream repeatedly must not change what the client reconstructs — the
// golden c432 trace, bit for bit, exactly as the unbroken stream test
// in internal/server builds it.
func TestOptimizeGoldenTraceThroughFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full 10-iteration optimize on c432; skipped with -short")
	}
	_, base := bootDaemon(t, server.Config{SweepEvery: time.Hour, RunLinger: 10 * time.Second}, nil)

	plan := &faultinject.Plan{
		Seed:     1905,
		Reset:    &faultinject.ResetFault{P: 0.15},
		Truncate: &faultinject.TruncateFault{P: 0.75, AfterBytes: 900},
	}
	ct := &countingTripper{inner: plan.Transport(nil)}
	c, err := New(Config{
		BaseURL:     base,
		Transport:   ct,
		BackoffBase: time.Millisecond,
		BackoffCap:  10 * time.Millisecond,
		MaxRetries:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	sess, err := c.Open(ctx, &server.OpenSessionRequest{Design: "c432", Client: "golden-chaos", Bins: 400})
	if err != nil {
		t.Fatalf("open through faults: %v", err)
	}

	var events []Event
	done, err := c.Optimize(ctx, sess.SessionID,
		&server.OptimizeRequest{Optimizer: "accelerated", MaxIterations: 10},
		func(ev Event) {
			events = append(events, Event{Name: ev.Name, ID: ev.ID, Data: append([]byte(nil), ev.Data...)})
		})
	if err != nil {
		t.Fatalf("optimize through faults: %v", err)
	}
	if done.Canceled || done.Error != "" {
		t.Fatalf("run did not complete cleanly: %+v", done)
	}
	if n := ct.optimize.Load(); n < 2 {
		t.Fatalf("stream survived with %d optimize connections; the fault plan should have broken it at least once", n)
	}

	if len(events) < 3 || events[0].Name != "start" || events[len(events)-1].Name != "done" {
		t.Fatalf("reconstructed stream shape: %d events", len(events))
	}
	var start server.StartEvent
	if err := json.Unmarshal(events[0].Data, &start); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# golden optimizer trace: %s %s (MaxIterations=10 Bins=400)\n", "c432", "accelerated")
	fmt.Fprintf(&b, "initial %x %x\n", start.InitialObjective, start.InitialWidth)
	for _, ev := range events[1 : len(events)-1] {
		if ev.Name != "iter" {
			t.Fatalf("unexpected mid-stream event %q", ev.Name)
		}
		var rec statsize.IterRecord
		if err := json.Unmarshal(ev.Data, &rec); err != nil {
			t.Fatal(err)
		}
		if ev.ID != rec.Iter {
			t.Fatalf("SSE id %d does not match iteration %d", ev.ID, rec.Iter)
		}
		gates := make([]string, len(rec.Gates))
		for i, g := range rec.Gates {
			gates[i] = fmt.Sprint(g)
		}
		fmt.Fprintf(&b, "iter %d gates=%s sens=%x obj=%x width=%x considered=%d pruned=%d visited=%d\n",
			rec.Iter, strings.Join(gates, ","), rec.Sensitivity, rec.Objective, rec.TotalWidth,
			rec.CandidatesConsidered, rec.CandidatesPruned, rec.NodesVisited)
	}
	var de server.DoneEvent
	if err := json.Unmarshal(events[len(events)-1].Data, &de); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "final %x %x\n", de.FinalObjective, de.FinalWidth)

	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "traces", "c432_accelerated.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(want) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := range gotLines {
			if i >= len(wantLines) || gotLines[i] != wantLines[i] {
				t.Fatalf("reconstructed trace diverges from golden at line %d:\n got  %q\n want %q",
					i+1, gotLines[i], wantLines[min(i, len(wantLines)-1)])
			}
		}
		t.Fatalf("reconstructed trace diverges from golden (golden %d lines, got %d)",
			len(wantLines), len(gotLines))
	}
}

// TestChaosSoak drives concurrent sessions through a fault-injecting
// transport and checks the daemon's hard invariants afterwards:
//
//   - no leaked leases: the manager's refcounts return to zero;
//   - exact /stats accounting: transport faults either reach the daemon
//     or they don't, so the clean-path success counts observed by the
//     workers match the engine counters exactly;
//   - every optimize stream the client completes delivers exactly one
//     terminal done event;
//   - no request ever surfaces a 500 (internal_panic) — closed sessions
//     must answer with their sentinel codes, never a crash.
//
// Unary traffic runs fault-free while optimize streams run through
// resets and truncation; client-side 5xx/reset faults never reach the
// daemon, which is what keeps the accounting exact.
func TestChaosSoak(t *testing.T) {
	s, base := bootDaemon(t, server.Config{
		MaxSessions: 16,
		SweepEvery:  time.Hour,
		RunLinger:   500 * time.Millisecond,
		HeavySlots:  4,
		QueueWait:   2 * time.Second,
	}, nil)

	before, err := mustClient(t, base).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	plan := &faultinject.Plan{
		Seed:     77,
		Reset:    &faultinject.ResetFault{P: 0.1},
		Truncate: &faultinject.TruncateFault{P: 0.5, AfterBytes: 700},
	}

	duration := 4 * time.Second
	iterations := 4
	if testing.Short() {
		duration = 1500 * time.Millisecond
		iterations = 2
	}

	var (
		whatifs, resizes, checkpoints, rollbacks atomic.Int64
		doneEvents, streamsCompleted             atomic.Int64
		saw500                                   atomic.Int64
	)
	note500 := func(err error) {
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusInternalServerError {
			saw500.Add(1)
		}
	}

	deadlineAt := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			clean := mustClient(t, base)
			chaos, err := New(Config{
				BaseURL:     base,
				Transport:   plan.Transport(nil),
				BackoffBase: time.Millisecond,
				BackoffCap:  20 * time.Millisecond,
				MaxRetries:  10,
			})
			if err != nil {
				t.Error(err)
				return
			}
			design := []string{"c17", "c432"}[w%2]
			open := &server.OpenSessionRequest{Design: design, Client: "soak-" + strconv.Itoa(w), Bins: 200}
			for round := 0; time.Now().Before(deadlineAt); round++ {
				sess, err := clean.Open(ctx, open)
				if err != nil {
					t.Errorf("worker %d open: %v", w, err)
					return
				}
				id := sess.SessionID
				g := int64(round % 4)
				width := 1.5 + 0.25*float64(w)

				if _, err := clean.WhatIf(ctx, id, &server.WhatIfRequest{Gate: &g, Width: &width}); err == nil {
					whatifs.Add(1)
				} else {
					note500(err)
				}
				if _, err := clean.Checkpoint(ctx, id); err == nil {
					checkpoints.Add(1)
				} else {
					note500(err)
				}
				if _, err := clean.Resize(ctx, id, &server.ResizeRequest{Gate: g, Width: width}); err == nil {
					resizes.Add(1)
				} else {
					note500(err)
				}
				if _, err := clean.Rollback(ctx, id); err == nil {
					rollbacks.Add(1)
				} else {
					note500(err)
				}

				// One chaotic optimize per round: the stream runs through
				// resets and truncation and must still end in exactly one
				// done.
				var dones int
				done, err := chaos.Optimize(ctx, id,
					&server.OptimizeRequest{Optimizer: "accelerated", MaxIterations: iterations},
					func(ev Event) {
						if ev.Name == "done" {
							dones++
						}
					})
				if err != nil {
					note500(err)
					var ae *APIError
					if !errors.As(err, &ae) {
						// Connection-level failure after retries; tolerable
						// under chaos, the invariants below still hold.
						continue
					}
					continue
				}
				if dones != 1 || done == nil {
					t.Errorf("worker %d: stream delivered %d done events", w, dones)
					return
				}
				doneEvents.Add(int64(dones))
				streamsCompleted.Add(1)
			}
		}(w)
	}
	wg.Wait()

	if saw500.Load() != 0 {
		t.Fatalf("%d requests surfaced 500 internal_panic during the soak", saw500.Load())
	}
	if doneEvents.Load() != streamsCompleted.Load() {
		t.Fatalf("%d done events across %d completed streams", doneEvents.Load(), streamsCompleted.Load())
	}
	if streamsCompleted.Load() == 0 {
		t.Fatal("soak completed zero optimize streams")
	}

	// Let lingering runs expire and leases come home, then check the
	// refcounts and the books.
	waitUntil(t, 10*time.Second, func() bool {
		return s.Manager().Stats().InFlight == 0
	}, "leases still outstanding after the soak")

	after, err := mustClient(t, base).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after.Engine.WhatIfsServed-before.Engine.WhatIfsServed, whatifs.Load(); got != want {
		t.Errorf("whatifs_served delta %d, want exactly %d client successes", got, want)
	}
	if got, want := after.Engine.Checkpoints-before.Engine.Checkpoints, checkpoints.Load(); got != want {
		t.Errorf("checkpoints delta %d, want %d", got, want)
	}
	if got, want := after.Engine.Rollbacks-before.Engine.Rollbacks, rollbacks.Load(); got != want {
		t.Errorf("rollbacks delta %d, want %d", got, want)
	}
	// Resizes: the workers' commits plus whatever the optimizer runs
	// committed — bounded below by the workers' count.
	if got := after.Engine.ResizesCommitted - before.Engine.ResizesCommitted; got < resizes.Load() {
		t.Errorf("resizes_committed delta %d < %d worker commits", got, resizes.Load())
	}
}

func mustClient(t testing.TB, base string) *Client {
	t.Helper()
	c, err := New(Config{BaseURL: base, BackoffBase: time.Millisecond, BackoffCap: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func waitUntil(t testing.TB, limit time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadlineAt := time.Now().Add(limit)
	for !cond() {
		if time.Now().After(deadlineAt) {
			t.Fatal(msg)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
