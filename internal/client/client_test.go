package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"statsize/internal/server"
)

// newClient builds a Client against base with fast, deterministic
// backoff.
func newClient(t testing.TB, base string) *Client {
	t.Helper()
	c, err := New(Config{
		BaseURL:     base,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
		MaxRetries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRetriesIdempotentUntilSuccess: a flaky analyze (two 503s, then
// 200) succeeds without surfacing the transient failures.
func TestRetriesIdempotentUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"code":"pool_full","message":"try later"}}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"objective":1.5,"objective_name":"mean","total_width":10,"num_gates":4}`)
	}))
	defer ts.Close()

	resp, err := newClient(t, ts.URL).Analyze(context.Background(), "s1", &server.AnalyzeRequest{})
	if err != nil {
		t.Fatalf("analyze through transient 503s: %v", err)
	}
	if resp.Objective != 1.5 || calls.Load() != 3 {
		t.Fatalf("objective %v after %d calls, want 1.5 after 3", resp.Objective, calls.Load())
	}
}

// TestNeverRetriesMutations: resize, checkpoint, rollback, and close
// see exactly one attempt no matter how retryable the failure looks.
func TestNeverRetriesMutations(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"draining","message":"go away"}}`)
	}))
	defer ts.Close()

	c := newClient(t, ts.URL)
	ctx := context.Background()
	checks := []struct {
		name string
		call func() error
	}{
		{"resize", func() error {
			_, err := c.Resize(ctx, "s1", &server.ResizeRequest{Gate: 1, Width: 2})
			return err
		}},
		{"checkpoint", func() error { _, err := c.Checkpoint(ctx, "s1"); return err }},
		{"rollback", func() error { _, err := c.Rollback(ctx, "s1"); return err }},
		{"close", func() error { return c.Close(ctx, "s1") }},
	}
	for _, tc := range checks {
		calls.Store(0)
		err := tc.call()
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
			t.Fatalf("%s: err %v, want 503 APIError", tc.name, err)
		}
		if ae.RetryAfter != time.Second {
			t.Fatalf("%s: RetryAfter %v, want 1s from the header", tc.name, ae.RetryAfter)
		}
		if calls.Load() != 1 {
			t.Fatalf("%s made %d attempts, want exactly 1", tc.name, calls.Load())
		}
	}
}

// TestNoRetryOnDefinitiveError: a 404 is an answer, not a transient.
func TestNoRetryOnDefinitiveError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"no_session","message":"nope"}}`)
	}))
	defer ts.Close()

	_, err := newClient(t, ts.URL).Analyze(context.Background(), "s1", &server.AnalyzeRequest{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "no_session" {
		t.Fatalf("err %v, want no_session APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("definitive 404 drew %d attempts, want 1", calls.Load())
	}
}

// TestHonorsRetryAfter: the server's hint overrides the jittered draw.
func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"shed","message":"overloaded","retry_after_s":1}}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok","uptime_s":1,"go_design":"statsized"}`)
	}))
	defer ts.Close()

	startAt := time.Now()
	if _, err := newClient(t, ts.URL).Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
	if elapsed := time.Since(startAt); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v; Retry-After: 1 demands ~1s", elapsed)
	}
}

// TestParseRetryAfterForms: both RFC 9110 Retry-After forms resolve to
// a clamped delay; garbage and past dates degrade to "no hint".
func TestParseRetryAfterForms(t *testing.T) {
	now := time.Date(2026, time.August, 7, 12, 0, 0, 0, time.UTC)
	httpDate := func(t time.Time) string { return t.UTC().Format(http.TimeFormat) }
	cases := []struct {
		name  string
		value string
		date  string
		want  time.Duration
	}{
		{"delta seconds", "7", "", 7 * time.Second},
		{"delta zero", "0", "", 0},
		{"delta negative", "-3", "", 0},
		{"http date vs Date header", httpDate(now.Add(90 * time.Second)), httpDate(now), 90 * time.Second},
		{"http date vs local clock", httpDate(now.Add(30 * time.Second)), "", 30 * time.Second},
		{"http date skewed server clock", httpDate(now.Add(time.Hour + 10*time.Second)), httpDate(now.Add(time.Hour)), 10 * time.Second},
		{"http date in the past", httpDate(now.Add(-time.Minute)), httpDate(now), 0},
		{"rfc850 date", now.Add(45 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), httpDate(now), 45 * time.Second},
		{"garbage", "soon", "", 0},
		{"garbage date header", httpDate(now.Add(20 * time.Second)), "yesterday-ish", 20 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.value, tc.date, now); got != tc.want {
				t.Errorf("parseRetryAfter(%q, %q) = %v, want %v", tc.value, tc.date, got, tc.want)
			}
		})
	}
}

// TestHonorsRetryAfterHTTPDate: the HTTP-date form is honored end to
// end, not silently dropped to the jittered draw.
func TestHonorsRetryAfterHTTPDate(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			now := time.Now()
			w.Header().Set("Date", now.UTC().Format(http.TimeFormat))
			w.Header().Set("Retry-After", now.Add(time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"shed","message":"overloaded"}}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok","uptime_s":1,"go_design":"statsized"}`)
	}))
	defer ts.Close()

	startAt := time.Now()
	if _, err := newClient(t, ts.URL).Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
	// The HTTP-date rounds down to whole seconds, so the observed wait
	// can be just under the nominal 1s; anything near it proves the
	// date was parsed (the fallback jitter is capped at 4ms here).
	if elapsed := time.Since(startAt); elapsed < 500*time.Millisecond {
		t.Fatalf("retried after %v; the HTTP-date Retry-After demands ~1s", elapsed)
	}
}

// TestDeadlineHeaderThreaded: a context deadline becomes X-Deadline-Ms.
func TestDeadlineHeaderThreaded(t *testing.T) {
	var sawMs atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ms, _ := strconv.ParseInt(r.Header.Get(server.HeaderDeadlineMs), 10, 64)
		sawMs.Store(ms)
		fmt.Fprint(w, `{"status":"ok","uptime_s":1,"go_design":"statsized"}`)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := newClient(t, ts.URL).Health(ctx); err != nil {
		t.Fatal(err)
	}
	if ms := sawMs.Load(); ms < 1000 || ms > 5000 {
		t.Fatalf("X-Deadline-Ms %d, want within (1000, 5000] for a 5s context", ms)
	}
}

// TestRetryStopsAtContextDeadline: the retry loop respects the caller's
// context rather than burning all attempts.
func TestRetryStopsAtContextDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"pool_full","message":"full"}}`)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	startAt := time.Now()
	_, err := newClient(t, ts.URL).Health(ctx)
	if err == nil {
		t.Fatal("health succeeded against a permanently-full server")
	}
	if elapsed := time.Since(startAt); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v past a 200ms context", elapsed)
	}
}
