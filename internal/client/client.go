// Package client is the typed HTTP client for the statsized daemon: one
// method per endpoint, per-attempt timeouts, capped exponential backoff
// with full jitter, Retry-After honoring, and optimize-stream
// reconnection that resumes a broken run from the last iteration
// received.
//
// Retries are restricted to idempotent requests. Opening a session is
// idempotent (the daemon pools one session per (design, client) key, so
// a replayed open attaches), and so are analyze, what-if, info, health,
// and stats — they read. Resize, checkpoint, rollback, and close mutate
// session state and are never retried: a resize whose response was lost
// may have committed, and replaying it would double-apply.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"statsize/internal/server"
)

// maxResponseBytes bounds every response body read; the daemon's
// replies are small and an unbounded read of a confused proxy's output
// must not balloon the client.
const maxResponseBytes = 8 << 20

// Config parameterizes a Client. The zero value needs only BaseURL.
type Config struct {
	// BaseURL roots every request, e.g. "http://127.0.0.1:8790".
	BaseURL string
	// Transport overrides the HTTP transport (fault injection hooks in
	// here); nil means http.DefaultTransport.
	Transport http.RoundTripper
	// AttemptTimeout bounds each individual attempt of a unary request
	// (default 30s). Optimize streams are exempt — they are legitimately
	// long-lived — but their connection phase uses it.
	AttemptTimeout time.Duration
	// MaxRetries caps retries after the first attempt of an idempotent
	// request, and consecutive no-progress reconnects of an optimize
	// stream (default 3).
	MaxRetries int
	// BackoffBase and BackoffCap shape the exponential backoff: attempt
	// n sleeps rand · min(BackoffCap, BackoffBase·2ⁿ) (full jitter).
	// Defaults 100ms and 5s. A server Retry-After overrides the draw.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// rand is the jitter source; tests may fix it.
	rand func() float64
}

func (c Config) normalize() Config {
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 5 * time.Second
	}
	if c.rand == nil {
		c.rand = rand.Float64
	}
	return c
}

// APIError is a non-2xx daemon response: the status, the machine
// -readable code from the error envelope, and the server's retry hint
// when it gave one.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
	// RunID accompanies run_active conflicts: the id of the run already
	// streaming on the session.
	RunID string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("statsized: %d %s: %s", e.Status, e.Code, e.Message)
}

// Client talks to one statsized daemon. Safe for concurrent use.
type Client struct {
	cfg Config
	hc  *http.Client
}

// New builds a Client over cfg.
func New(cfg Config) (*Client, error) {
	cfg = cfg.normalize()
	if cfg.BaseURL == "" {
		return nil, errors.New("client: BaseURL is required")
	}
	return &Client{
		cfg: cfg,
		// No http.Client.Timeout: it would sever optimize streams
		// mid-run. Unary attempts are bounded per-request instead.
		hc: &http.Client{Transport: cfg.Transport},
	}, nil
}

// backoff sleeps before retry attempt n (0-based), honoring the
// server's hint when present. Returns false if ctx expired first.
func (c *Client) backoff(ctx context.Context, n int, hint time.Duration) bool {
	d := hint
	if d <= 0 {
		step := min(c.cfg.BackoffCap, c.cfg.BackoffBase<<min(n, 16))
		d = time.Duration(c.cfg.rand() * float64(step))
	}
	if d <= 0 {
		d = time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// deadlineHeader mirrors the caller's context deadline into
// X-Deadline-Ms so the daemon stops working the moment the client
// stops waiting.
func deadlineHeader(ctx context.Context, h http.Header) {
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1 // let the server reject it; 0 would mean "absent" semantics drift
		}
		h.Set(server.HeaderDeadlineMs, strconv.FormatInt(ms, 10))
	}
}

// retryableStatus reports whether a status is worth retrying once the
// endpoint allows retries at all: overload sheds, pool pressure, and
// transient upstream 5xx.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// parseRetryAfter interprets a Retry-After header in both RFC 9110
// forms. Delta-seconds is the common case; an HTTP-date is converted
// to a delay relative to the response's own Date header when present
// (the two stamps come from the same server clock, so their difference
// is immune to client/server clock skew) and the local clock
// otherwise. Dates in the past — and negative deltas — clamp to zero,
// which the backoff treats as "no hint" and replaces with its jittered
// draw. Unparseable values also yield zero: a garbled hint must not
// stall or crash the retry loop.
func parseRetryAfter(value, date string, now time.Time) time.Duration {
	if s, err := strconv.Atoi(value); err == nil {
		if s <= 0 {
			return 0
		}
		return time.Duration(s) * time.Second
	}
	at, err := http.ParseTime(value)
	if err != nil {
		return 0
	}
	base := now
	if d, err := http.ParseTime(date); err == nil {
		base = d
	}
	if delay := at.Sub(base); delay > 0 {
		return delay
	}
	return 0
}

// parseError reads a non-2xx response into an APIError.
func parseError(resp *http.Response) *APIError {
	ae := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		ae.RetryAfter = parseRetryAfter(ra, resp.Header.Get("Date"), time.Now())
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		ae.Code = "unreadable_error"
		ae.Message = err.Error()
		return ae
	}
	var env struct {
		Error *struct {
			Code        string `json:"code"`
			Message     string `json:"message"`
			RetryAfterS int    `json:"retry_after_s"`
			RunID       string `json:"run_id"`
		} `json:"error"`
	}
	if jsonErr := json.Unmarshal(body, &env); jsonErr == nil && env.Error != nil {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		ae.RunID = env.Error.RunID
		if ae.RetryAfter == 0 && env.Error.RetryAfterS > 0 {
			ae.RetryAfter = time.Duration(env.Error.RetryAfterS) * time.Second
		}
	} else {
		ae.Code = "non_json_error"
		ae.Message = strings.TrimSpace(string(body))
	}
	return ae
}

// do runs one unary exchange: marshal, attempt with a per-attempt
// timeout, decode, and — only when idempotent — retry transient
// failures under the backoff policy.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal %s %s: %w", method, path, err)
		}
	}
	attempts := 1
	if idempotent {
		attempts += c.cfg.MaxRetries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			var hint time.Duration
			var ae *APIError
			if errors.As(lastErr, &ae) {
				hint = ae.RetryAfter
			}
			if !c.backoff(ctx, attempt-1, hint) {
				break
			}
		}
		lastErr = c.attempt(ctx, method, path, body, out)
		if lastErr == nil {
			return nil
		}
		var ae *APIError
		if errors.As(lastErr, &ae) && !retryableStatus(ae.Status) {
			return lastErr // a definitive answer, not a transient failure
		}
		if ctx.Err() != nil {
			break
		}
	}
	return lastErr
}

// attempt is one bounded exchange.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	deadlineHeader(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return parseError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, io.LimitReader(resp.Body, maxResponseBytes))
		return err
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return fmt.Errorf("client: read %s %s: %w", method, path, err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decode %s %s: %w", method, path, err)
	}
	return nil
}

// Open opens (or attaches to) a pooled session. Idempotent: the daemon
// keeps one session per (design, client) key, so a replay attaches.
func (c *Client) Open(ctx context.Context, req *server.OpenSessionRequest) (*server.OpenSessionResponse, error) {
	var out server.OpenSessionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Info fetches session metadata. Idempotent.
func (c *Client) Info(ctx context.Context, sessionID string) (*server.SessionInfoResponse, error) {
	var out server.SessionInfoResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+sessionID, nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Analyze summarizes the session's current timing. Idempotent.
func (c *Client) Analyze(ctx context.Context, sessionID string, req *server.AnalyzeRequest) (*server.AnalyzeResponse, error) {
	var out server.AnalyzeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/analyze", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// WhatIf evaluates hypothetical resizes without committing. Idempotent.
func (c *Client) WhatIf(ctx context.Context, sessionID string, req *server.WhatIfRequest) (*server.WhatIfResponse, error) {
	var out server.WhatIfResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/whatif", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Resize commits one gate resize. NOT idempotent — never retried: a
// lost response may have committed, and a replay would re-apply.
func (c *Client) Resize(ctx context.Context, sessionID string, req *server.ResizeRequest) (*server.ResizeResponse, error) {
	var out server.ResizeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/resize", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Checkpoint pushes a restore point. NOT idempotent — never retried.
func (c *Client) Checkpoint(ctx context.Context, sessionID string) (*server.CheckpointResponse, error) {
	var out server.CheckpointResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/checkpoint", nil, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rollback pops to the last checkpoint. NOT idempotent — never retried.
func (c *Client) Rollback(ctx context.Context, sessionID string) (*server.CheckpointResponse, error) {
	var out server.CheckpointResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/rollback", nil, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Close releases the pooled session. Not retried: a second delete of a
// session the first attempt already closed is a 404, not a success.
func (c *Client) Close(ctx context.Context, sessionID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+sessionID, nil, nil, false)
}

// Health fetches /healthz, including the admission controller's
// overload snapshot. Idempotent. A draining daemon answers 503 with a
// well-formed body, so the response is returned alongside the APIError.
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	var out server.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches /stats. Idempotent.
func (c *Client) Stats(ctx context.Context) (*server.StatsResponse, error) {
	var out server.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}
