package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"statsize/internal/server"
)

// Event is one SSE frame from an optimize stream, bytes preserved
// exactly as the daemon framed them (the golden-trace tests rebuild the
// optimizer trace bit-for-bit from these).
type Event struct {
	Name string
	ID   int // SSE id (iteration number); -1 when the frame had none
	Data []byte
}

// Optimize starts an optimizer run on the session and follows its SSE
// stream to the terminal done event, invoking onEvent (when non-nil)
// for every frame in order, duplicates already suppressed.
//
// The stream is resilient: when the connection breaks mid-run — reset,
// truncation, a stalled proxy — the client reconnects with X-Run-Id
// and Last-Event-ID and the daemon replays from the last iteration
// received. If the initial POST races a lost response into 409
// run_active, the client attaches to the run the daemon names instead
// of failing. Reconnects back off like retries and give up after
// MaxRetries consecutive attempts with no forward progress; any new
// frame resets the counter.
func (c *Client) Optimize(ctx context.Context, sessionID string, req *server.OptimizeRequest, onEvent func(Event)) (*server.DoneEvent, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: marshal optimize: %w", err)
	}
	st := &streamState{lastIter: -1}
	path := "/v1/sessions/" + sessionID + "/optimize"

	failures := 0 // consecutive attempts with no forward progress
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, errors.Join(err, lastErr)
		}
		if failures > 0 && failures > c.cfg.MaxRetries {
			return nil, fmt.Errorf("client: optimize stream gave up after %d attempts without progress: %w",
				failures, lastErr)
		}
		if failures > 0 {
			var hint time.Duration
			var ae *APIError
			if errors.As(lastErr, &ae) {
				hint = ae.RetryAfter
			}
			if !c.backoff(ctx, failures-1, hint) {
				return nil, errors.Join(ctx.Err(), lastErr)
			}
		}

		done, progressed, err := c.streamOnce(ctx, path, body, st, onEvent)
		if done != nil {
			return done, nil
		}
		if progressed {
			failures = 0
		}
		failures++
		lastErr = err

		var ae *APIError
		if errors.As(err, &ae) {
			switch {
			case ae.Code == server.CodeRunActive && ae.RunID != "" && st.runID == "":
				// Our POST's response was lost but the run started:
				// adopt it and replay from the top.
				st.runID = ae.RunID
				failures = 0
			case retryableStatus(ae.Status):
				// Shed or transient; back off and retry.
			default:
				return nil, err // 4xx/410: definitive
			}
		}
	}
}

// streamState carries resume progress across reconnects.
type streamState struct {
	runID     string
	lastIter  int // highest iter id delivered; -1 before the first
	sentStart bool
}

// streamOnce runs one connection of the stream: POST (fresh or
// reattach), then consume frames until done or the stream breaks.
// Returns the terminal event if reached, and whether any new frame was
// delivered this attempt.
func (c *Client) streamOnce(ctx context.Context, path string, body []byte, st *streamState, onEvent func(Event)) (*server.DoneEvent, bool, error) {
	var rd io.Reader
	if st.runID == "" {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, false, fmt.Errorf("client: optimize: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	deadlineHeader(ctx, req.Header)
	if st.runID != "" {
		req.Header.Set(server.HeaderRunID, st.runID)
		if st.lastIter >= 0 {
			req.Header.Set(server.HeaderLastEventID, strconv.Itoa(st.lastIter))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("client: optimize connect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, parseError(resp)
	}

	progressed := false
	sc := newFrameScanner(resp.Body)
	for {
		// The body read below is already bound to ctx via the request,
		// but check directly so a cancellation between frames returns
		// the context error, not a wrapped read failure.
		if err := ctx.Err(); err != nil {
			return nil, progressed, err
		}
		ev, err := sc.next()
		if err != nil {
			// Stream broke mid-run (truncation, reset). Progress made so
			// far is kept in st; the caller reconnects.
			return nil, progressed, fmt.Errorf("client: optimize stream broke: %w", err)
		}
		switch ev.Name {
		case "start":
			var se server.StartEvent
			if err := json.Unmarshal(ev.Data, &se); err != nil {
				return nil, progressed, fmt.Errorf("client: bad start event: %w", err)
			}
			if st.runID == "" {
				st.runID = se.RunID
			}
			if st.sentStart {
				continue // replayed on full-replay reconnects; deliver once
			}
			st.sentStart = true
			progressed = true
			if onEvent != nil {
				onEvent(ev)
			}
		case "iter":
			if ev.ID <= st.lastIter {
				continue // replay overlap
			}
			st.lastIter = ev.ID
			progressed = true
			if onEvent != nil {
				onEvent(ev)
			}
		case "done":
			var de server.DoneEvent
			if err := json.Unmarshal(ev.Data, &de); err != nil {
				return nil, progressed, fmt.Errorf("client: bad done event: %w", err)
			}
			if onEvent != nil {
				onEvent(ev)
			}
			return &de, true, nil
		default:
			// Unknown event kinds are forward-compatible noise.
		}
	}
}

// frameScanner incrementally parses SSE frames off a live stream.
type frameScanner struct {
	sc *bufio.Scanner
}

func newFrameScanner(r io.Reader) *frameScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxResponseBytes)
	return &frameScanner{sc: sc}
}

// next reads one frame. io.EOF before a complete frame is an error —
// a well-formed stream ends only after its done event, so a clean EOF
// mid-frame still means truncation.
func (f *frameScanner) next() (Event, error) {
	ev := Event{ID: -1}
	got := false
	for f.sc.Scan() {
		line := f.sc.Text()
		switch {
		case line == "":
			if got {
				return ev, nil
			}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				return ev, fmt.Errorf("client: bad SSE id line %q", line)
			}
			ev.ID = n
			got = true
		case strings.HasPrefix(line, "event: "):
			ev.Name = strings.TrimPrefix(line, "event: ")
			got = true
		case strings.HasPrefix(line, "data: "):
			ev.Data = []byte(strings.TrimPrefix(line, "data: "))
			got = true
		}
	}
	if err := f.sc.Err(); err != nil {
		return ev, err
	}
	return ev, io.ErrUnexpectedEOF
}
