// Package faultinject turns a declarative fault plan into misbehaving
// HTTP plumbing: a RoundTripper that delays, errors, resets, and
// truncates responses on the client side, and a server middleware that
// does the same ahead of real handlers. Every decision comes from a
// seed-driven deterministic RNG, so a chaos run that found a bug is
// replayable from its seed alone.
//
// The package is a test-and-tooling dependency: the daemon only wires
// it in under the faultinject build tag (cmd/statsized/fault_enabled.go),
// so the default build path never carries an injection branch.
package faultinject

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Plan declares which faults to inject and how often. Probabilities
// are in [0, 1]; a nil fault section never fires. The zero Plan
// injects nothing.
type Plan struct {
	// Seed drives every injection decision. Two runs with the same
	// plan and the same request order make the same decisions.
	Seed uint64 `json:"seed"`
	// Latency delays a request before it is forwarded.
	Latency *LatencyFault `json:"latency,omitempty"`
	// Error replaces the response with a synthetic 5xx.
	Error *ErrorFault `json:"error,omitempty"`
	// Reset kills the exchange as a connection-level failure: the
	// transport returns a reset error, the middleware aborts the
	// connection without writing a response.
	Reset *ResetFault `json:"reset,omitempty"`
	// Truncate cuts the response body after a byte budget — the SSE
	// mid-stream truncation shape.
	Truncate *TruncateFault `json:"truncate,omitempty"`
	// Exempt lists path prefixes never faulted (health probes, stats
	// scrapes — endpoints whose failure would just confuse the harness).
	Exempt []string `json:"exempt,omitempty"`
}

// LatencyFault delays with probability P by a uniform draw from
// [MinMs, MaxMs] milliseconds.
type LatencyFault struct {
	P     float64 `json:"p"`
	MinMs int     `json:"min_ms"`
	MaxMs int     `json:"max_ms"`
}

// ErrorFault replaces the response with Status (default 503) with
// probability P.
type ErrorFault struct {
	P      float64 `json:"p"`
	Status int     `json:"status,omitempty"`
}

// ResetFault simulates a connection reset with probability P.
type ResetFault struct {
	P float64 `json:"p"`
}

// TruncateFault cuts the response body after AfterBytes (default 512)
// with probability P.
type TruncateFault struct {
	P          float64 `json:"p"`
	AfterBytes int64   `json:"after_bytes,omitempty"`
}

// ParsePlan decodes and validates a JSON plan.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faultinject: parse plan: %w", err)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

func (p *Plan) validate() error {
	check := func(name string, prob float64) error {
		if prob < 0 || prob > 1 {
			return fmt.Errorf("faultinject: %s probability %v outside [0,1]", name, prob)
		}
		return nil
	}
	if p.Latency != nil {
		if err := check("latency", p.Latency.P); err != nil {
			return err
		}
		if p.Latency.MinMs < 0 || p.Latency.MaxMs < p.Latency.MinMs {
			return fmt.Errorf("faultinject: latency window [%d,%d]ms is invalid", p.Latency.MinMs, p.Latency.MaxMs)
		}
	}
	if p.Error != nil {
		if err := check("error", p.Error.P); err != nil {
			return err
		}
		if s := p.Error.Status; s != 0 && (s < 500 || s > 599) {
			return fmt.Errorf("faultinject: error status %d is not a 5xx", s)
		}
	}
	if p.Reset != nil {
		if err := check("reset", p.Reset.P); err != nil {
			return err
		}
	}
	if p.Truncate != nil {
		if err := check("truncate", p.Truncate.P); err != nil {
			return err
		}
		if p.Truncate.AfterBytes < 0 {
			return fmt.Errorf("faultinject: truncate after_bytes %d is negative", p.Truncate.AfterBytes)
		}
	}
	return nil
}

// ErrInjectedReset is the connection-reset error the transport returns;
// clients and tests match it with errors.Is.
var ErrInjectedReset = errors.New("faultinject: injected connection reset")

// rng is splitmix64 — tiny, well-mixed, and deterministic across
// platforms, which is the whole point here.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hit draws one probability decision.
func (r *rng) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.next()>>11)/(1<<53) < p
}

// intIn draws uniformly from [lo, hi].
func (r *rng) intIn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + int(r.next()%uint64(hi-lo+1))
}

// decision is one request's resolved fault set, drawn in a fixed order
// so the sequence depends only on (seed, request ordinal).
type decision struct {
	delay     time.Duration
	errStatus int
	reset     bool
	truncAt   int64
}

// injector owns the request ordinal counter shared by a transport or
// middleware built from one plan.
type injector struct {
	plan *Plan
	seq  atomic.Uint64
}

func (in *injector) exempt(path string) bool {
	for _, prefix := range in.plan.Exempt {
		if strings.HasPrefix(path, prefix) {
			return true
		}
	}
	return false
}

// decide draws the fault set for the next request. The per-request RNG
// is keyed on (seed, request ordinal), so one request's decision is
// independent of how many draws earlier requests made.
func (in *injector) decide() decision {
	n := in.seq.Add(1)
	r := &rng{s: in.plan.Seed ^ (n * 0xA24BAED4963EE407)}
	var d decision
	if lat := in.plan.Latency; lat != nil && r.hit(lat.P) {
		d.delay = time.Duration(r.intIn(lat.MinMs, lat.MaxMs)) * time.Millisecond
	}
	if e := in.plan.Error; e != nil && r.hit(e.P) {
		d.errStatus = e.Status
		if d.errStatus == 0 {
			d.errStatus = http.StatusServiceUnavailable
		}
	}
	if rs := in.plan.Reset; rs != nil && r.hit(rs.P) {
		d.reset = true
	}
	if tr := in.plan.Truncate; tr != nil && r.hit(tr.P) {
		d.truncAt = tr.AfterBytes
		if d.truncAt == 0 {
			d.truncAt = 512
		}
	}
	return d
}

// Transport wraps inner (nil means http.DefaultTransport) with the
// plan's client-side faults: injected latency before the round trip,
// synthetic 5xx responses, connection resets, and response-body
// truncation that surfaces as io.ErrUnexpectedEOF mid-read — the shape
// a broken SSE stream has in the wild.
func (p *Plan) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{injector: injector{plan: p}, inner: inner}
}

type transport struct {
	injector
	inner http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.exempt(req.URL.Path) {
		return t.inner.RoundTrip(req)
	}
	d := t.decide()
	if d.delay > 0 {
		select {
		case <-time.After(d.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if d.reset {
		return nil, ErrInjectedReset
	}
	if d.errStatus != 0 {
		body := fmt.Sprintf(`{"error":{"code":"injected","message":"faultinject synthetic %d"}}`, d.errStatus)
		return &http.Response{
			StatusCode:    d.errStatus,
			Status:        fmt.Sprintf("%d injected", d.errStatus),
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || d.truncAt == 0 {
		return resp, err
	}
	resp.Body = &truncatedBody{inner: resp.Body, left: d.truncAt}
	resp.ContentLength = -1
	return resp, nil
}

// truncatedBody cuts the stream after its byte budget: reads past the
// budget fail with io.ErrUnexpectedEOF, exactly like a torn connection.
type truncatedBody struct {
	inner io.ReadCloser
	left  int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.inner.Read(p)
	b.left -= int64(n)
	if err == nil && b.left <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// Middleware wraps next with the plan's server-side faults. Latency
// delays the handler; a synthetic error writes the 5xx itself; a reset
// aborts the connection through http.ErrAbortHandler (the sanctioned
// way to kill a response without a status line); truncation caps the
// bytes the handler may write and then aborts — which is what a tier-1
// SSE stream torn mid-event looks like to its client.
func (p *Plan) Middleware(next http.Handler) http.Handler {
	in := &injector{plan: p}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if in.exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		d := in.decide()
		if d.delay > 0 {
			select {
			case <-time.After(d.delay):
			case <-r.Context().Done():
				return
			}
		}
		if d.reset {
			panic(http.ErrAbortHandler)
		}
		if d.errStatus != 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(d.errStatus)
			fmt.Fprintf(w, `{"error":{"code":"injected","message":"faultinject synthetic %d"}}`, d.errStatus)
			return
		}
		if d.truncAt > 0 {
			next.ServeHTTP(&truncatingWriter{ResponseWriter: w, left: d.truncAt}, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// truncatingWriter aborts the connection once the byte budget is spent.
type truncatingWriter struct {
	http.ResponseWriter
	left int64
}

func (tw *truncatingWriter) Write(p []byte) (int, error) {
	if tw.left <= 0 {
		panic(http.ErrAbortHandler)
	}
	if int64(len(p)) > tw.left {
		tw.ResponseWriter.Write(p[:tw.left])
		tw.left = 0
		if f, ok := tw.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	n, err := tw.ResponseWriter.Write(p)
	tw.left -= int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer
// (write deadlines on truncated SSE streams keep working).
func (tw *truncatingWriter) Unwrap() http.ResponseWriter { return tw.ResponseWriter }

// Flush keeps SSE handlers streaming through the wrapper.
func (tw *truncatingWriter) Flush() {
	if f, ok := tw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
