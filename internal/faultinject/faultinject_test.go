package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParsePlanValidates(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ok   bool
	}{
		{"empty plan", `{}`, true},
		{"full plan", `{"seed":7,"latency":{"p":0.1,"min_ms":1,"max_ms":5},
			"error":{"p":0.05,"status":503},"reset":{"p":0.02},
			"truncate":{"p":0.1,"after_bytes":256},"exempt":["/healthz"]}`, true},
		{"probability above one", `{"error":{"p":1.5}}`, false},
		{"negative probability", `{"reset":{"p":-0.1}}`, false},
		{"inverted latency window", `{"latency":{"p":0.5,"min_ms":10,"max_ms":1}}`, false},
		{"non-5xx error status", `{"error":{"p":0.5,"status":404}}`, false},
		{"negative truncate budget", `{"truncate":{"p":0.5,"after_bytes":-1}}`, false},
		{"unknown field", `{"jitter":{"p":0.5}}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePlan([]byte(tc.src))
			if (err == nil) != tc.ok {
				t.Fatalf("ParsePlan(%s) err=%v, want ok=%v", tc.src, err, tc.ok)
			}
		})
	}
}

// TestDecisionsAreDeterministic pins the replayability contract: two
// injectors built from the same plan make identical decisions request
// for request.
func TestDecisionsAreDeterministic(t *testing.T) {
	plan, err := ParsePlan([]byte(`{"seed":42,
		"latency":{"p":0.3,"min_ms":1,"max_ms":9},
		"error":{"p":0.2,"status":502},"reset":{"p":0.1},
		"truncate":{"p":0.25,"after_bytes":128}}`))
	if err != nil {
		t.Fatal(err)
	}
	a := &injector{plan: plan}
	b := &injector{plan: plan}
	anyFault := false
	for i := 0; i < 200; i++ {
		da, db := a.decide(), b.decide()
		if da != db {
			t.Fatalf("request %d diverged: %+v vs %+v", i, da, db)
		}
		if da.delay > 0 || da.errStatus != 0 || da.reset || da.truncAt > 0 {
			anyFault = true
		}
	}
	if !anyFault {
		t.Fatal("200 requests against a faulty plan drew zero faults")
	}

	// A different seed draws a different sequence.
	other := *plan
	other.Seed = 43
	c := &injector{plan: &other}
	a2 := &injector{plan: plan}
	same := 0
	for i := 0; i < 200; i++ {
		if a2.decide() == c.decide() {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seed change did not alter the decision sequence")
	}
}

func TestTransportInjectsErrorAndReset(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer upstream.Close()

	alwaysErr := &Plan{Seed: 1, Error: &ErrorFault{P: 1, Status: 502}}
	c := &http.Client{Transport: alwaysErr.Transport(nil)}
	resp, err := c.Get(upstream.URL + "/work")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 502 || !strings.Contains(string(body), "injected") {
		t.Fatalf("synthetic error: %d %s", resp.StatusCode, body)
	}

	alwaysReset := &Plan{Seed: 1, Reset: &ResetFault{P: 1}}
	c = &http.Client{Transport: alwaysReset.Transport(nil)}
	_, err = c.Get(upstream.URL + "/work")
	if err == nil || !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("reset: err=%v, want ErrInjectedReset", err)
	}
}

func TestTransportTruncatesBody(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer upstream.Close()

	plan := &Plan{Seed: 1, Truncate: &TruncateFault{P: 1, AfterBytes: 100}}
	c := &http.Client{Transport: plan.Transport(nil)}
	resp, err := c.Get(upstream.URL + "/work")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read err=%v, want ErrUnexpectedEOF", err)
	}
	if len(body) != 100 {
		t.Fatalf("read %d bytes before truncation, want 100", len(body))
	}
}

func TestExemptPathsAreUntouched(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer upstream.Close()

	plan := &Plan{Seed: 1, Error: &ErrorFault{P: 1}, Exempt: []string{"/healthz"}}
	c := &http.Client{Transport: plan.Transport(nil)}
	resp, err := c.Get(upstream.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exempt path faulted: %d", resp.StatusCode)
	}
}

func TestMiddlewareInjectsErrorAndAborts(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("y", 2048))
	})

	errPlan := &Plan{Seed: 1, Error: &ErrorFault{P: 1, Status: 500}}
	ts := httptest.NewServer(errPlan.Middleware(inner))
	resp, err := http.Get(ts.URL + "/work")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("middleware error: %d, want 500", resp.StatusCode)
	}

	resetPlan := &Plan{Seed: 1, Reset: &ResetFault{P: 1}}
	ts = httptest.NewServer(resetPlan.Middleware(inner))
	_, err = http.Get(ts.URL + "/work")
	ts.Close()
	if err == nil {
		t.Fatal("middleware reset delivered a response")
	}

	truncPlan := &Plan{Seed: 1, Truncate: &TruncateFault{P: 1, AfterBytes: 64}}
	ts = httptest.NewServer(truncPlan.Middleware(inner))
	resp, err = http.Get(ts.URL + "/work")
	if err != nil {
		t.Fatal(err)
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	ts.Close()
	if readErr == nil {
		t.Fatalf("truncated middleware stream read cleanly (%d bytes)", len(body))
	}
	if len(body) > 64 {
		t.Fatalf("middleware let %d bytes through a 64-byte budget", len(body))
	}
}
