// Package analyzertest runs a statlint analyzer over testdata corpora
// and matches its diagnostics against `// want` comments, following the
// golang.org/x/tools/go/analysis/analysistest convention.
//
// A corpus is a directory testdata/src/<name> next to the calling test,
// loaded through the same loader cmd/statlint uses (so corpus packages
// may import real statsize packages — testdata directories are
// invisible to the go tool and never flagged by `statlint ./...`).
// Every line that must be flagged carries a trailing comment
//
//	code() // want `regexp`
//
// with one or more Go-quoted or backquoted regular expressions, each of
// which must match a distinct diagnostic of the analyzer on that line.
// Unmatched expectations and unexpected diagnostics both fail the test.
// A corpus with no want comments is the "clean twin" pattern: it
// asserts the analyzer's silence on the corrected shape of each seeded
// violation.
package analyzertest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"statsize/internal/analyzers/analysis"
)

// Run checks the analyzer's diagnostics against the want comments of
// each named corpus under testdata/src.
func Run(t *testing.T, a *analysis.Analyzer, corpora ...string) {
	t.Helper()
	loader := analysis.NewLoader("")
	for _, name := range corpora {
		t.Run(name, func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name), "statlint/testdata/"+name)
			if err != nil {
				t.Fatalf("loading corpus %s: %v", name, err)
			}
			diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s on corpus %s: %v", a.Name, name, err)
			}
			check(t, pkg, diags)
		})
	}
}

// expectation is one parsed want regexp, consumed by at most one
// diagnostic on its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	expects := parseExpectations(t, pkg)
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.used || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, e.raw)
		}
	}
}

// parseExpectations collects the want comments of every corpus file.
func parseExpectations(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				for rest != "" {
					lit, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: want expectation must be quoted regexps, got %q", pos.Filename, pos.Line, rest)
					}
					raw, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %q: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: compiling want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					rest = strings.TrimSpace(rest[len(lit):])
				}
			}
		}
	}
	return out
}
