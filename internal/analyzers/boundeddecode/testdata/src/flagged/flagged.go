// Package flagged seeds the unbounded-ingress violations boundeddecode
// exists to catch: HTTP bodies consumed without a size cap.
package flagged

import (
	"encoding/json"
	"io"
	"net/http"
)

type payload struct {
	Design string `json:"design"`
}

// RawDecode decodes straight off the wire with no byte cap.
func RawDecode(w http.ResponseWriter, r *http.Request) {
	var p payload
	_ = json.NewDecoder(r.Body).Decode(&p) // want `json\.NewDecoder reads an HTTP body unbounded`
}

// SlurpAll buffers the whole request body.
func SlurpAll(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(r.Body) // want `io\.ReadAll reads an HTTP body unbounded`
}

// DrainResponse drains a client response with no cap — the server side
// of the connection chooses how much we read.
func DrainResponse(resp *http.Response) error {
	_, err := io.Copy(io.Discard, resp.Body) // want `io\.Copy reads an HTTP body unbounded`
	return err
}
