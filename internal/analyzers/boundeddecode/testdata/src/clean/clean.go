// Package clean is the corrected twin of the flagged corpus: every
// body read is bounded, so boundeddecode must stay silent.
package clean

import (
	"encoding/json"
	"io"
	"net/http"
)

type payload struct {
	Design string `json:"design"`
}

// CappedDecode stacks MaxBytesReader under the decoder, the shape
// wire.decodeJSON uses.
func CappedDecode(w http.ResponseWriter, r *http.Request) {
	var p payload
	_ = json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&p)
}

// CappedSlurp buffers at most a megabyte.
func CappedSlurp(r *http.Request) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r.Body, 1<<20))
}

// CappedDrain drains a client response under a cap.
func CappedDrain(resp *http.Response) error {
	_, err := io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return err
}

// NotAnHTTPBody: Body fields of other types are out of scope.
type envelope struct{ Body io.Reader }

func DecodeEnvelope(e envelope) *json.Decoder {
	return json.NewDecoder(e.Body)
}
