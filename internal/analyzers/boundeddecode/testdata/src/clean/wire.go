// wire.go is the sanctioned trust boundary: the file-name exemption
// lets the bounded decoder itself read the raw body.
package clean

import (
	"encoding/json"
	"net/http"
)

// decodeJSON is the shape of the real server's bounded entry point;
// its raw body access must not be flagged here.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	return json.NewDecoder(r.Body).Decode(dst)
}
