// Package boundeddecode implements the statlint check for the service
// tier's ingress discipline: HTTP bodies are attacker-sized input and
// must only be consumed through a bounded reader. The server side has
// exactly one sanctioned entry point — decodeJSON in wire.go, which
// stacks http.MaxBytesReader under a DisallowUnknownFields decoder —
// and clients must cap their reads with io.LimitReader. Everything
// else is a finding:
//
//   - json.NewDecoder(x.Body) — unbounded decode straight off the wire
//   - io.ReadAll(x.Body)      — unbounded buffering
//   - io.Copy(dst, x.Body)    — unbounded draining
//
// where x.Body is the Body of a net/http Request or Response. Files
// named wire.go are exempt: that is where the bounded decoder itself
// is built, and hiding its internals behind a suppression would just
// move the trust boundary into a comment.
//
// When the file already imports io, the finding carries a suggested
// fix wrapping the body in io.LimitReader(body, 1<<20) — a safe cap
// an order of magnitude above any legitimate statsized payload; call
// sites with tighter budgets can lower it by hand.
package boundeddecode

import (
	"go/ast"
	"path/filepath"

	"statsize/internal/analyzers/analysis"
	"statsize/internal/analyzers/typeutil"
)

// Analyzer is the boundeddecode pass.
var Analyzer = &analysis.Analyzer{
	Name: "boundeddecode",
	Doc:  "HTTP bodies must be read through a bounded decoder (wire.decodeJSON, MaxBytesReader, or io.LimitReader)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		if filepath.Base(file) == "wire.go" {
			continue
		}
		importsIO := false
		for _, imp := range f.Imports {
			if imp.Path.Value == `"io"` {
				importsIO = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := typeutil.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var body ast.Expr
			switch {
			case fn.Pkg().Path() == "encoding/json" && fn.Name() == "NewDecoder" && len(call.Args) == 1:
				body = httpBody(pass, call.Args[0])
			case fn.Pkg().Path() == "io" && fn.Name() == "ReadAll" && len(call.Args) == 1:
				body = httpBody(pass, call.Args[0])
			case fn.Pkg().Path() == "io" && fn.Name() == "Copy" && len(call.Args) == 2:
				body = httpBody(pass, call.Args[1])
			}
			if body == nil {
				return true
			}
			var fix *analysis.SuggestedFix
			if importsIO {
				fix = &analysis.SuggestedFix{
					Message: "wrap the body in io.LimitReader(body, 1<<20)",
					Edits: []analysis.TextEdit{
						{Pos: body.Pos(), NewText: "io.LimitReader("},
						{Pos: body.End(), NewText: ", 1<<20)"},
					},
				}
			}
			pass.ReportfFix(call.Pos(), fix, "%s.%s reads an HTTP body unbounded: a hostile peer can hold the connection and exhaust memory; decode through wire.decodeJSON (server) or cap with io.LimitReader (client)",
				fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	return nil
}

// httpBody returns arg when it is the Body field of a net/http Request
// or Response; nil otherwise.
func httpBody(pass *analysis.Pass, arg ast.Expr) ast.Expr {
	sel, ok := typeutil.Unparen(arg).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Body" {
		return nil
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	if typeutil.Is(tv.Type, "net/http", "Request") || typeutil.Is(tv.Type, "net/http", "Response") {
		return arg
	}
	return nil
}
