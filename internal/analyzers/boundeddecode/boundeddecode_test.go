package boundeddecode

import (
	"testing"

	"statsize/internal/analyzers/analyzertest"
)

func TestBoundedDecode(t *testing.T) {
	analyzertest.Run(t, Analyzer, "flagged", "clean")
}
