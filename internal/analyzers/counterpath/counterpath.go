// Package counterpath implements the statlint check for the stats
// accounting discipline: the engine-wide rollup and its wire snapshot
// have exactly one sanctioned write path each, and everything else is
// a lost-update bug waiting for load.
//
//   - session.Counters fields are atomic mirrors written with Add as
//     operations commit. Store/Swap/CompareAndSwap (or overwriting the
//     whole field) silently discard concurrent adds from other
//     sessions — the rollup is shared by every session the engine
//     opens — so only Add and Load are allowed.
//   - statsize.EngineStats is a point-in-time snapshot with a stable
//     JSON wire contract, built only inside Engine.Stats. Mutating a
//     snapshot's fields anywhere else fabricates accounting the engine
//     never performed; package statsize itself is exempt because
//     Stats() is where the snapshot is legitimately assembled.
package counterpath

import (
	"go/ast"

	"statsize/internal/analyzers/analysis"
	"statsize/internal/analyzers/typeutil"
)

// Analyzer is the counterpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "counterpath",
	Doc:  "stats counters mutate only through atomic Add; EngineStats snapshots are read-only outside Engine.Stats",
	Run:  run,
}

// forbiddenAtomic are the sync/atomic methods that clobber concurrent
// Adds on a shared rollup field.
var forbiddenAtomic = map[string]bool{
	"Store":          true,
	"Swap":           true,
	"CompareAndSwap": true,
	"And":            true,
	"Or":             true,
}

func run(pass *analysis.Pass) error {
	inRoot := pass.Pkg.Path() == typeutil.RootPath
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range t.Lhs {
					checkWrite(pass, lhs, inRoot)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, t.X, inRoot)
			case *ast.CallExpr:
				checkAtomicCall(pass, t)
			}
			return true
		})
	}
	return nil
}

// checkWrite flags a write target that is a field of the shared rollup
// or of a wire snapshot.
func checkWrite(pass *analysis.Pass, lhs ast.Expr, inRoot bool) {
	sel, ok := typeutil.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return
	}
	switch {
	case typeutil.Is(tv.Type, typeutil.SessionPath, "Counters"):
		pass.Reportf(lhs.Pos(), "field %s of the shared session.Counters rollup is overwritten: concurrent Adds from other sessions are lost; mirror through the atomic Add path (session.count)", sel.Sel.Name)
	case !inRoot && typeutil.Is(tv.Type, typeutil.RootPath, "EngineStats"):
		pass.Reportf(lhs.Pos(), "field %s of a statsize.EngineStats snapshot is mutated: snapshots are read-only wire data built only by Engine.Stats", sel.Sel.Name)
	}
}

// checkAtomicCall flags Store/Swap/CompareAndSwap on a rollup field:
// only Add (and Load) preserve concurrent mirroring.
func checkAtomicCall(pass *analysis.Pass, call *ast.CallExpr) {
	fun, ok := typeutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !forbiddenAtomic[fun.Sel.Name] {
		return
	}
	fn := typeutil.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	field, ok := typeutil.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := pass.Info.Types[field.X]
	if !ok || tv.Type == nil {
		return
	}
	if typeutil.Is(tv.Type, typeutil.SessionPath, "Counters") {
		pass.Reportf(call.Pos(), "%s on field %s of the shared session.Counters rollup: concurrent Adds from other sessions are lost; counters only move by Add", fun.Sel.Name, field.Sel.Name)
	}
}
