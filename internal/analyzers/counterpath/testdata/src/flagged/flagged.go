// Package flagged seeds the accounting violations counterpath exists
// to catch: clobbering writes to the shared rollup and mutation of
// wire snapshots.
package flagged

import (
	"sync/atomic"

	"statsize"
	"statsize/internal/session"
)

// StoreCounter clobbers whatever other sessions added concurrently.
func StoreCounter(c *session.Counters) {
	c.Opened.Store(0) // want `Store on field Opened of the shared session\.Counters rollup`
}

// SwapCounter is the same lost update with a return value.
func SwapCounter(c *session.Counters) int64 {
	return c.WhatIfs.Swap(0) // want `Swap on field WhatIfs of the shared session\.Counters rollup`
}

// OverwriteCounter replaces the whole atomic, dropping its history.
func OverwriteCounter(c *session.Counters) {
	c.Closed = atomic.Int64{} // want `field Closed of the shared session\.Counters rollup is overwritten`
}

// MutateSnapshot fabricates accounting the engine never performed.
func MutateSnapshot(st *statsize.EngineStats) {
	st.SessionsLive++    // want `field SessionsLive of a statsize\.EngineStats snapshot is mutated`
	st.WhatIfsServed = 7 // want `field WhatIfsServed of a statsize\.EngineStats snapshot is mutated`
	st.Rollbacks += 1    // want `field Rollbacks of a statsize\.EngineStats snapshot is mutated`
}
