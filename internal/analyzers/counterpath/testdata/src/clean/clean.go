// Package clean is the corrected twin of the flagged corpus: rollup
// fields only move by Add and snapshots are only read, so counterpath
// must stay silent.
package clean

import (
	"statsize"
	"statsize/internal/session"
)

// SanctionedAdd is the one legal mirror operation.
func SanctionedAdd(c *session.Counters) {
	c.Resizes.Add(1)
}

// ReadCounter reads without touching any session lock.
func ReadCounter(c *session.Counters) int64 {
	return c.Opened.Load() - c.Closed.Load()
}

// ReadSnapshot consumes the wire snapshot read-only.
func ReadSnapshot(st statsize.EngineStats) int64 {
	return st.SessionsOpened + st.ResizesCommitted
}

// LocalAccumulator: writes to fields of unrelated types are out of
// scope.
type localStats struct{ Opened int64 }

func Accumulate(l *localStats) {
	l.Opened++
	l.Opened = 5
}
