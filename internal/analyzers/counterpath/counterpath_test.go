package counterpath

import (
	"testing"

	"statsize/internal/analyzers/analyzertest"
)

func TestCounterPath(t *testing.T) {
	analyzertest.Run(t, Analyzer, "flagged", "clean")
}
