package analyzers_test

import (
	"testing"

	"statsize/internal/analyzers"
	"statsize/internal/analyzers/analysis"
)

// TestRepoClean runs the full statlint suite over the whole module and
// requires silence, making `go test ./...` an enforcement gate for the
// memory-model and concurrency invariants: a new violation (or a
// malformed suppression) fails this test even before CI's dedicated
// statlint job runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not a -short test")
	}
	root, err := analysis.ModuleRoot("")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := analysis.NewLoader(root).Load("./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags, err := analysis.Run(pkgs, analyzers.All())
	if err != nil {
		t.Fatalf("running statlint suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the finding or add a reasoned //lint:allow statlint/<analyzer> suppression; see internal/analyzers")
	}
}
