// Package clean is the corrected twin of the flagged corpus: every
// started stream reaches its terminal done event on every path, so
// ssedone must stay silent.
package clean

import "context"

type writer struct{}

func (w *writer) event(name string, id int, payload any) {}

// DrainThenDone mirrors server.streamOptimize: start, a cancellable
// drain loop, one unconditional done.
func DrainThenDone(ctx context.Context, w *writer, events <-chan int) {
	w.event("start", -1, nil)
drain:
	for {
		select {
		case it, ok := <-events:
			if !ok {
				break drain
			}
			w.event("iter", it, nil)
		case <-ctx.Done():
			break drain
		}
	}
	w.event("done", -1, nil)
}

// ReturnBeforeStart may exit freely while the stream is unopened.
func ReturnBeforeStart(w *writer, fail bool) {
	if fail {
		return
	}
	w.event("start", -1, nil)
	w.event("done", -1, nil)
}

// DeferredDone guarantees the terminal event on every exit.
func DeferredDone(w *writer, fail bool) {
	w.event("start", -1, nil)
	defer w.event("done", -1, nil)
	if fail {
		return
	}
	w.event("iter", 0, nil)
}

// DeferredClosureDone terminates through a deferred closure.
func DeferredClosureDone(w *writer, fail bool) {
	w.event("start", -1, nil)
	defer func() {
		w.event("done", -1, nil)
	}()
	if fail {
		return
	}
}

// BothArmsDone terminates the stream on each branch before returning.
func BothArmsDone(w *writer, ok bool) {
	w.event("start", -1, nil)
	if ok {
		w.event("iter", 0, nil)
		w.event("done", -1, nil)
		return
	}
	w.event("done", -1, nil)
}
