// Package clean is the corrected twin of the flagged corpus: every
// started stream reaches its terminal done event on every path, so
// ssedone must stay silent.
package clean

import "context"

type writer struct{}

func (w *writer) event(name string, id int, payload any) {}

// DrainThenDone mirrors server.streamOptimize: start, a cancellable
// drain loop, one unconditional done.
func DrainThenDone(ctx context.Context, w *writer, events <-chan int) {
	w.event("start", -1, nil)
drain:
	for {
		select {
		case it, ok := <-events:
			if !ok {
				break drain
			}
			w.event("iter", it, nil)
		case <-ctx.Done():
			break drain
		}
	}
	w.event("done", -1, nil)
}

// ReturnBeforeStart may exit freely while the stream is unopened.
func ReturnBeforeStart(w *writer, fail bool) {
	if fail {
		return
	}
	w.event("start", -1, nil)
	w.event("done", -1, nil)
}

// DeferredDone guarantees the terminal event on every exit.
func DeferredDone(w *writer, fail bool) {
	w.event("start", -1, nil)
	defer w.event("done", -1, nil)
	if fail {
		return
	}
	w.event("iter", 0, nil)
}

// DeferredClosureDone terminates through a deferred closure.
func DeferredClosureDone(w *writer, fail bool) {
	w.event("start", -1, nil)
	defer func() {
		w.event("done", -1, nil)
	}()
	if fail {
		return
	}
}

// BothArmsDone terminates the stream on each branch before returning.
func BothArmsDone(w *writer, ok bool) {
	w.event("start", -1, nil)
	if ok {
		w.event("iter", 0, nil)
		w.event("done", -1, nil)
		return
	}
	w.event("done", -1, nil)
}

// ReconnectSkipsStart mirrors the reattach path: a client resuming a
// run already saw start, so the frame is conditional — but every path
// that opened a stream still ends in done.
func ReconnectSkipsStart(w *writer, sentStart bool, events <-chan int) {
	if !sentStart {
		w.event("start", -1, nil)
	}
	for it := range events {
		w.event("iter", it, nil)
	}
	w.event("done", -1, nil)
}

// TruncatedWriterStillTerminates mirrors streamRun against a failed
// sseWriter: a mid-stream write failure breaks the drain loop, and the
// terminal done is still attempted (a no-op on a dead writer, but the
// grammar holds).
func TruncatedWriterStillTerminates(w *writer, events <-chan int, failed func() bool) {
	w.event("start", -1, nil)
	for it := range events {
		if failed() {
			break
		}
		w.event("iter", it, nil)
	}
	w.event("done", -1, nil)
}

// GapRejectedBeforeStart mirrors the 410 history_gap reattach: the
// resume is refused before any frame is written, so there is no open
// stream to terminate.
func GapRejectedBeforeStart(w *writer, gap bool) {
	if gap {
		return
	}
	w.event("start", -1, nil)
	w.event("done", -1, nil)
}

// DeferredCancelOnDisconnect mirrors the detach path: the deferred
// cleanup runs on every exit, and the done frame is emitted before the
// drain loop can escape.
func DeferredCancelOnDisconnect(w *writer, cancel func(), events <-chan int, disconnected func() bool) {
	defer cancel()
	w.event("start", -1, nil)
	for it := range events {
		if disconnected() {
			break
		}
		w.event("iter", it, nil)
	}
	w.event("done", -1, nil)
}
