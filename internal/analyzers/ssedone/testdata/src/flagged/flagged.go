// Package flagged seeds the stream-grammar violations ssedone exists
// to catch: SSE runs whose start event is not matched by a terminal
// done event on some exit path.
package flagged

// writer mimics the server's sseWriter frame method; the check is
// shape-based so the corpus does not need the unexported real type.
type writer struct{}

func (w *writer) event(name string, id int, payload any) {}

// EarlyReturnLeak bails out mid-stream without the terminal event.
func EarlyReturnLeak(w *writer, fail bool) {
	w.event("start", -1, nil)
	if fail {
		return // want `return escapes an open SSE stream`
	}
	w.event("done", -1, nil)
}

// FallOffLeak simply never terminates the stream.
func FallOffLeak(w *writer) {
	w.event("start", -1, nil)
	w.event("iter", 0, nil)
} // want `reaches the end of the function without the terminal done event`

// BranchLeak terminates one arm but not the other.
func BranchLeak(w *writer, ok bool) {
	w.event("start", -1, nil)
	if ok {
		w.event("done", -1, nil)
		return
	}
	return // want `return escapes an open SSE stream`
}

// ReconnectGapLeak discovers the history gap after the stream is
// already open and bails without the terminal frame — the reattaching
// client hangs waiting for a done that never comes.
func ReconnectGapLeak(w *writer, sentStart, gap bool) {
	if !sentStart {
		w.event("start", -1, nil)
	}
	if gap {
		return // want `return escapes an open SSE stream`
	}
	w.event("done", -1, nil)
}

// TruncationAbortLeak treats a failed write as grounds to abandon the
// stream grammar: the drain loop escapes without attempting done.
func TruncationAbortLeak(w *writer, events <-chan int, failed func() bool) {
	w.event("start", -1, nil)
	for it := range events {
		if failed() {
			return // want `return escapes an open SSE stream`
		}
		w.event("iter", it, nil)
	}
	w.event("done", -1, nil)
}
