package ssedone

import (
	"testing"

	"statsize/internal/analyzers/analyzertest"
)

func TestSSEDone(t *testing.T) {
	analyzertest.Run(t, Analyzer, "flagged", "clean")
}
