// Package ssedone implements the statlint check for the SSE stream
// grammar DESIGN.md's "Service layer" section fixes: start, then iter
// events, then exactly one terminal done event — on every exit,
// including cancellation. A stream that ends without done leaves the
// client unable to distinguish a completed run from a severed
// connection, so clients hang or retry a run that actually finished.
//
// The check is shape-based: a function that calls X.event("start", …)
// has opened a stream, and every subsequent path out of the function —
// each return statement and the fall-off end — must first call
// X.event("done", …) (directly, in a defer, or inside a deferred
// closure). Paths that panic or os.Exit are not checked, and when the
// event writer is a plain identifier only done calls on that same
// writer count.
package ssedone

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"statsize/internal/analyzers/analysis"
	"statsize/internal/analyzers/typeutil"
)

// Analyzer is the ssedone pass.
var Analyzer = &analysis.Analyzer{
	Name: "ssedone",
	Doc:  "SSE run loops must emit the terminal done event on every exit path, including cancellation",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// sseState is the per-path stream state: exposed means a start event
// was emitted and no done has followed yet; deferredDone means a defer
// guarantees the done event at function exit.
type sseState struct {
	exposed      bool
	deferredDone bool
	writer       *types.Var // the start call's receiver, nil = match any
	startPos     token.Pos
}

type checker struct {
	pass *analysis.Pass
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Cheap pre-pass: most functions never emit SSE events.
	if !mentionsEvent(body) {
		return
	}
	c := &checker{pass: pass}
	st, terminated := c.walkStmts(body.List, sseState{})
	if !terminated && st.exposed && !st.deferredDone {
		c.pass.Reportf(body.Rbrace, "SSE stream started at %s reaches the end of the function without the terminal done event: clients cannot tell completion from a severed connection",
			c.pass.Fset.Position(st.startPos))
	}
}

// mentionsEvent reports whether body contains any .event(...) call
// outside nested function literals (those are checked on their own).
func mentionsEvent(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "event" {
			found = true
		}
		return !found
	})
	return found
}

func (c *checker) walkStmts(stmts []ast.Stmt, st sseState) (sseState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = c.walkStmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (c *checker) walkStmt(s ast.Stmt, st sseState) (sseState, bool) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		if call, ok := typeutil.Unparen(t.X).(*ast.CallExpr); ok {
			st = c.handleCall(call, st)
			if isTerminalCall(c.pass.Info, call) {
				return st, true
			}
		}
		return st, false
	case *ast.DeferStmt:
		if name, w := eventCall(c.pass.Info, t.Call); name == "done" && writerMatches(st, w) {
			st.deferredDone = true
		}
		if lit, ok := typeutil.Unparen(t.Call.Fun).(*ast.FuncLit); ok && closureEmitsDone(c.pass.Info, lit, st) {
			st.deferredDone = true
		}
		return st, false
	case *ast.ReturnStmt:
		if st.exposed && !st.deferredDone {
			c.pass.Reportf(t.Pos(), "return escapes an open SSE stream (started at %s) without the terminal done event: clients cannot tell completion from a severed connection",
				c.pass.Fset.Position(st.startPos))
		}
		return st, true
	case *ast.IfStmt:
		if t.Init != nil {
			st, _ = c.walkStmt(t.Init, st)
		}
		thenSt, thenTerm := c.walkStmts(t.Body.List, st)
		elseSt, elseTerm := st, false
		switch e := t.Else.(type) {
		case *ast.BlockStmt:
			elseSt, elseTerm = c.walkStmts(e.List, st)
		case *ast.IfStmt:
			elseSt, elseTerm = c.walkStmt(e, st)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeState(thenSt, elseSt), false
		}
	case *ast.BlockStmt:
		return c.walkStmts(t.List, st)
	case *ast.LabeledStmt:
		return c.walkStmt(t.Stmt, st)
	case *ast.ForStmt:
		if t.Init != nil {
			st, _ = c.walkStmt(t.Init, st)
		}
		after, _ := c.walkStmts(t.Body.List, st)
		return mergeState(st, after), false
	case *ast.RangeStmt:
		after, _ := c.walkStmts(t.Body.List, st)
		return mergeState(st, after), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkClauses(s, st)
	case *ast.BranchStmt:
		return st, true
	case *ast.AssignStmt:
		// An event call can hide in an assignment RHS only through a
		// closure; closures are analyzed as their own functions.
		return st, false
	default:
		return st, false
	}
}

// walkClauses merges every case body of a switch/select, including the
// implicit empty path when a switch has no default.
func (c *checker) walkClauses(s ast.Stmt, st sseState) (sseState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch t := s.(type) {
	case *ast.SwitchStmt:
		if t.Init != nil {
			st, _ = c.walkStmt(t.Init, st)
		}
		body = t.Body
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			st, _ = c.walkStmt(t.Init, st)
		}
		body = t.Body
	case *ast.SelectStmt:
		body = t.Body
		hasDefault = true // a select blocks; no implicit skip path
	}
	merged := sseState{}
	haveMerged := false
	allTerm := true
	for _, cl := range body.List {
		var list []ast.Stmt
		switch t := cl.(type) {
		case *ast.CaseClause:
			list = t.Body
			if t.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			list = t.Body
		}
		clSt, term := c.walkStmts(list, st)
		if !term {
			allTerm = false
			if !haveMerged {
				merged, haveMerged = clSt, true
			} else {
				merged = mergeState(merged, clSt)
			}
		}
	}
	if !hasDefault {
		allTerm = false
		if !haveMerged {
			merged, haveMerged = st, true
		} else {
			merged = mergeState(merged, st)
		}
	}
	if allTerm && len(body.List) > 0 {
		return st, true
	}
	if !haveMerged {
		merged = st
	}
	return merged, false
}

// handleCall updates the stream state for one statement-position call.
func (c *checker) handleCall(call *ast.CallExpr, st sseState) sseState {
	name, w := eventCall(c.pass.Info, call)
	switch name {
	case "start":
		st.exposed = true
		st.writer = w
		st.startPos = call.Pos()
	case "done":
		if writerMatches(st, w) {
			st.exposed = false
		}
	}
	return st
}

// mergeState joins two paths: the stream is exposed after the join if
// it is exposed on either incoming path, and a deferred done only
// holds if both paths registered it.
func mergeState(a, b sseState) sseState {
	out := a
	if b.exposed && !a.exposed {
		out.exposed = true
		out.writer = b.writer
		out.startPos = b.startPos
	}
	out.deferredDone = a.deferredDone && b.deferredDone
	return out
}

// eventCall decodes X.event("name", ...) calls: the event name from
// the first argument's string literal, and the writer variable when X
// is a plain identifier (nil otherwise).
func eventCall(info *types.Info, call *ast.CallExpr) (string, *types.Var) {
	sel, ok := typeutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "event" || len(call.Args) == 0 {
		return "", nil
	}
	lit, ok := typeutil.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", nil
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", nil
	}
	var w *types.Var
	if id, ok := typeutil.Unparen(sel.X).(*ast.Ident); ok {
		w, _ = info.Uses[id].(*types.Var)
	}
	return name, w
}

// writerMatches reports whether a done call on writer w can close the
// stream in st: unknown writers on either side match anything.
func writerMatches(st sseState, w *types.Var) bool {
	return st.writer == nil || w == nil || st.writer == w
}

// closureEmitsDone reports whether a deferred closure contains a done
// event for the stream's writer.
func closureEmitsDone(info *types.Info, lit *ast.FuncLit, st sseState) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, w := eventCall(info, call); name == "done" && writerMatches(st, w) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isTerminalCall reports whether a call never returns.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := typeutil.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn := typeutil.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
	case "runtime":
		return fn.Name() == "Goexit"
	}
	return false
}
