// Package clean is the silent twin of the flagged corpus: the
// sanctioned per-worker patterns, which arenashare must not report.
package clean

import (
	"context"

	"statsize/internal/dist"
	"statsize/internal/par"
	"statsize/internal/ssta"
)

type worker struct {
	ar *dist.Arena
	kp *dist.Keeper
}

// The sanctioned pattern: per-worker scratch held in slices and indexed
// by the worker ordinal RunIndexed reports. The captured identifiers
// have slice type, not arena type.
func PerWorker(ctx context.Context, ws []worker, scratch []*ssta.Scratch) error {
	return par.RunIndexed(ctx, len(ws), 64, func(w, i int) error {
		ws[w].ar.Reset()
		ws[w].kp.Reset()
		_ = scratch[w]
		return nil
	})
}

// Scratch born inside the worker function is private to its goroutine.
func Local(ctx context.Context) error {
	return par.Run(ctx, 2, 8, func(i int) error {
		ar := dist.NewArena()
		_ = ar
		return nil
	})
}
