// Package flagged seeds the sharing violations arenashare exists to
// catch: single-goroutine scratch state reaching code that runs on
// other goroutines.
package flagged

import (
	"context"

	"statsize/internal/dist"
	"statsize/internal/par"
	"statsize/internal/ssta"
)

type worker struct{ ar *dist.Arena }

func consume(*dist.Keeper) {}

func SharesScratch(ctx context.Context, ar *dist.Arena, k *dist.Keeper, sc *ssta.Scratch, ws worker) error {
	go func() {
		_ = ar // want `\*dist\.Arena "ar" captured by a`
	}()
	go consume(k) // want `\*dist\.Keeper passed into a goroutine`
	return par.Run(ctx, 2, 8, func(i int) error {
		_ = sc    // want `\*ssta\.Scratch "sc" captured by a par worker function`
		_ = ws.ar // want `\*dist\.Arena "ar" of captured "ws"`
		return nil
	})
}
