// Package arenashare implements the statlint check for the
// single-goroutine ownership rule of DESIGN.md's "Memory model": a
// *dist.Arena, *dist.Keeper or *ssta.Scratch serves exactly one
// goroutine — nothing in them is synchronized — so parallel paths must
// hold one per worker, indexed by the worker ordinal par.RunIndexed
// reports.
//
// The check flags a shared-state identifier of one of those types when
// it is captured by (or passed into) code that runs on another
// goroutine:
//
//   - captured by the function literal of a `go` statement, or passed
//     as an argument to the call a `go` statement launches
//   - captured by a function literal handed to par.Run, par.RunIndexed,
//     Pool.Run or Pool.RunIndexed
//
// The sanctioned pattern — a slice of per-worker arenas indexed by the
// worker ordinal (arenas[w]) — passes automatically, because the
// captured identifier then has slice type, not arena type. The check
// does not prove the index used is the worker ordinal, and it does not
// see arenas smuggled through fields of captured structs; those remain
// review territory. A deliberate ownership handoff to a single
// goroutine is expressed with a //lint:allow suppression.
package arenashare

import (
	"go/ast"
	"go/types"

	"statsize/internal/analyzers/analysis"
	"statsize/internal/analyzers/typeutil"
)

// Analyzer is the arenashare pass.
var Analyzer = &analysis.Analyzer{
	Name: "arenashare",
	Doc:  "per-goroutine scratch state (dist.Arena, dist.Keeper, ssta.Scratch) must not be captured by goroutines or par.Run workers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				for _, arg := range st.Call.Args {
					if name := sharedTypeName(pass.Info.Types[arg].Type); name != "" {
						pass.Reportf(arg.Pos(), "%s passed into a goroutine: scratch state serves one goroutine, use per-worker instances", name)
					}
				}
				if lit, ok := typeutil.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
					checkCaptures(pass, lit, "a `go` statement")
				}
			case *ast.CallExpr:
				if !isParRun(pass, st) || len(st.Args) == 0 {
					return true
				}
				if lit, ok := typeutil.Unparen(st.Args[len(st.Args)-1]).(*ast.FuncLit); ok {
					checkCaptures(pass, lit, "a par worker function")
				}
			}
			return true
		})
	}
	return nil
}

// isParRun reports whether a call is one of the par fan-out entry
// points (package functions Run/RunIndexed or the Pool methods).
func isParRun(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeutil.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != typeutil.ParPath {
		return false
	}
	return fn.Name() == "Run" || fn.Name() == "RunIndexed"
}

// sharedTypeName names t when it is one of the single-goroutine scratch
// types, "" otherwise.
func sharedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	switch {
	case typeutil.IsPtrTo(t, typeutil.DistPath, "Arena"):
		return "*dist.Arena"
	case typeutil.IsPtrTo(t, typeutil.DistPath, "Keeper"):
		return "*dist.Keeper"
	case typeutil.IsPtrTo(t, typeutil.SSTAPath, "Scratch"):
		return "*ssta.Scratch"
	}
	return ""
}

// checkCaptures reports scratch state reaching the literal from
// outside: a free variable of a scratch type, or a scratch-typed field
// selected directly off a free variable (base.arena — the whole struct
// is shared, so its arena is too). Selections whose base is itself
// indexed (workers[w].arena) pass: that is the sanctioned per-worker
// pattern, and whether w is really the worker ordinal stays review
// territory. A variable is free when its declaration lies outside the
// literal's extent; each is reported once per literal, at first use.
func checkCaptures(pass *analysis.Pass, lit *ast.FuncLit, where string) {
	type site struct {
		v     *types.Var
		field string
	}
	seen := make(map[site]bool)
	freeVar := func(e ast.Expr) *types.Var {
		id, ok := typeutil.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return nil
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil // declared inside the literal (param or local)
		}
		return v
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			name := sharedTypeName(sel.Type())
			if name == "" {
				return true
			}
			if v := freeVar(e.X); v != nil && !seen[site{v, e.Sel.Name}] {
				seen[site{v, e.Sel.Name}] = true
				pass.Reportf(e.Pos(), "%s %q of captured %q is shared across goroutines by %s: hold one per worker and index by the worker ordinal", name, e.Sel.Name, exprIdent(e.X), where)
			}
		case *ast.Ident:
			v, ok := pass.Info.Uses[e].(*types.Var)
			if !ok || v.IsField() || seen[site{v, ""}] {
				return true
			}
			if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
				return true
			}
			if name := sharedTypeName(v.Type()); name != "" {
				seen[site{v, ""}] = true
				pass.Reportf(e.Pos(), "%s %q captured by %s is shared across goroutines: hold one per worker and index by the worker ordinal", name, e.Name, where)
			}
		}
		return true
	})
}

// exprIdent names the base identifier of a selector for diagnostics.
func exprIdent(e ast.Expr) string {
	if id, ok := typeutil.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}
