package arenashare

import (
	"testing"

	"statsize/internal/analyzers/analyzertest"
)

func TestArenaShare(t *testing.T) {
	analyzertest.Run(t, Analyzer, "flagged", "clean")
}
