package leaseguard

import (
	"testing"

	"statsize/internal/analyzers/analyzertest"
)

func TestLeaseguard(t *testing.T) {
	analyzertest.Run(t, Analyzer, "flagged", "clean")
}
