// Package leaseguard implements the statlint check for the service
// tier's handle discipline: every lease-shaped handle obtained from a
// refcounted pool — *server.Lease from Manager.Acquire/OpenOrAttach,
// *session.Tx from Session.Acquire — must be released exactly once on
// every path out of the acquiring function, or its ownership must be
// handed to someone else who will. A leaked lease pins a pooled
// session forever (the janitor only reaps refs == 0); a double release
// underflows the refcount and lets the janitor evict a session that is
// still in use.
//
// Findings:
//
//   - leaked lease: some return (or the fall-off end of the function)
//     is reachable with the lease unreleased, not deferred, and not
//     transferred away. When the function contains no Release call for
//     the variable at all, the finding carries a suggested fix that
//     inserts `defer x.Release()` right after the acquisition (after
//     its error guard, so a nil handle is never deferred).
//   - double release: a direct Release on a path where the lease was
//     already released, or a direct Release shadowed by an earlier
//     `defer x.Release()`.
//   - discarded lease: the acquiring call's lease result is dropped
//     (expression statement or assigned to the blank identifier) — the
//     refcount is bumped with no way to ever drop it.
//
// Ownership transfers that end the acquiring function's obligation:
// returning the lease itself (alone or inside a composite literal),
// storing it into a field, map or package-level variable, capturing it
// in a function literal, or passing it to a goroutine. Passing the
// lease as a plain call argument is NOT a transfer: synchronous
// callees borrow, the caller still owns the handle (this is what makes
// deleting the `defer lease.Release()` in server.withLease a finding
// even though the handler is called with the lease).
//
// Error guards are understood: inside an `if` whose condition mentions
// the error paired with the acquisition, returns are exempt — by the
// acquisition contract the handle is nil on the error path. Paths that
// panic or os.Exit/log.Fatal are not checked.
package leaseguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"statsize/internal/analyzers/analysis"
	"statsize/internal/analyzers/typeutil"
)

// Analyzer is the leaseguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "leaseguard",
	Doc:  "pool leases (server.Lease, session.Tx) must be released exactly once on every path or ownership-transferred",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// isLease reports whether t is one of the refcounted handle types the
// invariant covers.
func isLease(t types.Type) bool {
	return typeutil.IsPtrTo(t, typeutil.ServerPath, "Lease") ||
		typeutil.IsPtrTo(t, typeutil.SessionPath, "Tx")
}

// leaseName names the handle type for diagnostics ("*server.Lease").
func leaseName(t types.Type) string {
	if typeutil.IsPtrTo(t, typeutil.ServerPath, "Lease") {
		return "*server.Lease"
	}
	return "*session.Tx"
}

// tracked is one acquisition site and its whole-function bookkeeping.
type tracked struct {
	v           *types.Var // the lease variable
	errVar      *types.Var // paired error result, nil if discarded
	typ         types.Type
	pos         token.Pos // acquisition position (report anchor)
	insertAfter ast.Stmt  // where a defer fix would be spliced in
	leaks       []token.Position
	doubles     []token.Pos
}

// varState is the per-path state of one tracked lease.
type varState struct {
	released    bool // Release executed on this path
	deferred    bool // a defer guarantees release at function exit
	transferred bool // ownership handed away
}

type pathState map[*types.Var]varState

func (st pathState) clone() pathState {
	out := make(pathState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// merge joins two path states at a control-flow join: a lease is only
// safe after the join if it is safe on both incoming paths. Vars known
// on one side only (acquired inside a branch that may not have run)
// keep their one-sided state.
func merge(a, b pathState) pathState {
	out := make(pathState, len(a)+len(b))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = varState{
				released:    va.released && vb.released,
				deferred:    va.deferred && vb.deferred,
				transferred: va.transferred && vb.transferred,
			}
		} else {
			out[k] = va
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out[k] = vb
		}
	}
	return out
}

type checker struct {
	pass    *analysis.Pass
	body    *ast.BlockStmt
	tracked []*tracked
	byVar   map[*types.Var]*tracked
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, body: body, byVar: make(map[*types.Var]*tracked)}
	st, terminated := c.walkStmts(body.List, make(pathState), nil)
	if !terminated {
		c.checkExit(st, nil, pass.Fset.Position(body.Rbrace))
	}
	c.report()
}

// walkStmts runs the statement list under state st with the err-guard
// exemptions in exempt, returning the post-state and whether every
// path through the list terminates (return / panic / exit).
func (c *checker) walkStmts(stmts []ast.Stmt, st pathState, exempt map[*types.Var]bool) (pathState, bool) {
	for i, s := range stmts {
		var terminated bool
		st, terminated = c.walkStmt(s, st, exempt, stmts, i)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (c *checker) walkStmt(s ast.Stmt, st pathState, exempt map[*types.Var]bool, siblings []ast.Stmt, idx int) (pathState, bool) {
	// Function literals anywhere in the statement transfer every lease
	// they capture: the closure may outlive this frame, and deferred
	// release closures are additionally credited below.
	c.markClosureCaptures(s, st)
	switch t := s.(type) {
	case *ast.AssignStmt:
		st = c.handleAssign(t, st, siblings, idx)
		return st, false
	case *ast.ExprStmt:
		if call, ok := typeutil.Unparen(t.X).(*ast.CallExpr); ok {
			st = c.handleCallStmt(call, st)
			if isTerminalCall(c.pass.Info, call) {
				return st, true
			}
		}
		return st, false
	case *ast.DeferStmt:
		return c.handleDefer(t, st), false
	case *ast.GoStmt:
		// Already handled by markClosureCaptures for closures; plain
		// `go f(lease)` also hands the handle to another goroutine.
		for v := range st {
			if usesVar(c.pass.Info, t.Call, v) {
				vs := st[v]
				vs.transferred = true
				st[v] = vs
			}
		}
		return st, false
	case *ast.ReturnStmt:
		st = c.handleReturn(t, st, exempt)
		return st, true
	case *ast.IfStmt:
		return c.handleIf(t, st, exempt)
	case *ast.BlockStmt:
		return c.walkStmts(t.List, st, exempt)
	case *ast.LabeledStmt:
		return c.walkStmt(t.Stmt, st, exempt, siblings, idx)
	case *ast.ForStmt:
		if t.Init != nil {
			st, _ = c.walkStmt(t.Init, st, exempt, nil, 0)
		}
		after, _ := c.walkStmts(t.Body.List, st.clone(), exempt)
		return merge(st, after), false
	case *ast.RangeStmt:
		after, _ := c.walkStmts(t.Body.List, st.clone(), exempt)
		return merge(st, after), false
	case *ast.SwitchStmt:
		if t.Init != nil {
			st, _ = c.walkStmt(t.Init, st, exempt, nil, 0)
		}
		return c.handleClauses(t.Body, st, exempt, hasDefaultClause(t.Body))
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			st, _ = c.walkStmt(t.Init, st, exempt, nil, 0)
		}
		return c.handleClauses(t.Body, st, exempt, hasDefaultClause(t.Body))
	case *ast.SelectStmt:
		return c.handleClauses(t.Body, st, exempt, true)
	case *ast.BranchStmt:
		// break/continue/goto: stop analyzing this list. The loop
		// walkers already merge body state conservatively.
		return st, true
	default:
		return st, false
	}
}

// handleAssign recognizes acquisitions and ownership-transferring
// stores.
func (c *checker) handleAssign(a *ast.AssignStmt, st pathState, siblings []ast.Stmt, idx int) pathState {
	// Acquisition: single call on the RHS with a lease in its results.
	if len(a.Rhs) == 1 {
		if call, ok := typeutil.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			st = c.handleAcquisition(a, call, st, siblings, idx)
		}
	}
	// Transfer: a tracked lease stored anywhere that outlives the
	// frame — a field, a map/slice element, or a package-level var.
	for i, rhs := range a.Rhs {
		for v := range st {
			if !transfersExpr(c.pass.Info, rhs, v) {
				continue
			}
			if i < len(a.Lhs) && c.escapingTarget(a.Lhs[i]) {
				vs := st[v]
				vs.transferred = true
				st[v] = vs
			}
		}
	}
	return st
}

// handleAcquisition tracks the lease result of call when a assigns it.
func (c *checker) handleAcquisition(a *ast.AssignStmt, call *ast.CallExpr, st pathState, siblings []ast.Stmt, idx int) pathState {
	leaseIdx, errIdx, ltyp := leaseResult(c.pass.Info, call)
	if leaseIdx < 0 {
		return st
	}
	if len(a.Lhs) != resultCount(c.pass.Info, call) {
		return st
	}
	lid, ok := typeutil.Unparen(a.Lhs[leaseIdx]).(*ast.Ident)
	if !ok {
		return st
	}
	if lid.Name == "_" {
		c.pass.Reportf(lid.Pos(), "%s result of %s is discarded: the pool refcount is bumped with no way to release it", leaseName(ltyp), callName(call))
		return st
	}
	v := defOrUse(c.pass.Info, lid)
	if v == nil {
		return st
	}
	var errVar *types.Var
	if errIdx >= 0 && errIdx < len(a.Lhs) {
		if eid, ok := typeutil.Unparen(a.Lhs[errIdx]).(*ast.Ident); ok && eid.Name != "_" {
			errVar = defOrUse(c.pass.Info, eid)
		}
	}
	tr := &tracked{v: v, errVar: errVar, typ: ltyp, pos: lid.Pos(), insertAfter: a}
	// If the very next statement is the error guard, a defer fix must
	// go after it (deferring Release on a nil handle would panic).
	if idx+1 < len(siblings) {
		if ifs, ok := siblings[idx+1].(*ast.IfStmt); ok && errVar != nil && usesVar(c.pass.Info, ifs.Cond, errVar) {
			tr.insertAfter = ifs
		}
	}
	c.tracked = append(c.tracked, tr)
	c.byVar[v] = tr
	st[v] = varState{}
	return st
}

// handleCallStmt handles a call in statement position: a direct
// Release, or a lease-returning call whose results are dropped.
func (c *checker) handleCallStmt(call *ast.CallExpr, st pathState) pathState {
	if v := releaseReceiver(c.pass.Info, call); v != nil {
		if vs, ok := st[v]; ok {
			if vs.released || vs.deferred {
				if tr := c.byVar[v]; tr != nil {
					tr.doubles = append(tr.doubles, call.Pos())
				}
			}
			vs.released = true
			st[v] = vs
		}
		return st
	}
	if leaseIdx, _, ltyp := leaseResult(c.pass.Info, call); leaseIdx >= 0 {
		c.pass.Reportf(call.Pos(), "%s result of %s is discarded: the pool refcount is bumped with no way to release it", leaseName(ltyp), callName(call))
	}
	return st
}

// handleDefer credits `defer x.Release()` and deferred closures that
// release x.
func (c *checker) handleDefer(d *ast.DeferStmt, st pathState) pathState {
	if v := releaseReceiver(c.pass.Info, d.Call); v != nil {
		if vs, ok := st[v]; ok {
			if vs.released || vs.deferred {
				if tr := c.byVar[v]; tr != nil {
					tr.doubles = append(tr.doubles, d.Pos())
				}
			}
			vs.deferred = true
			st[v] = vs
		}
		return st
	}
	if lit, ok := typeutil.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		for v := range st {
			if closureReleases(c.pass.Info, lit, v) {
				vs := st[v]
				vs.deferred = true
				st[v] = vs
			}
		}
	}
	return st
}

// handleReturn marks return-transfers, then audits every still-owned
// lease at this exit.
func (c *checker) handleReturn(r *ast.ReturnStmt, st pathState, exempt map[*types.Var]bool) pathState {
	for _, res := range r.Results {
		for v := range st {
			if transfersExpr(c.pass.Info, res, v) {
				vs := st[v]
				vs.transferred = true
				st[v] = vs
			}
		}
	}
	c.checkExit(st, exempt, c.pass.Fset.Position(r.Pos()))
	return st
}

// handleIf walks both arms with error-guard exemptions extended by the
// condition, merging by which arms terminate.
func (c *checker) handleIf(ifs *ast.IfStmt, st pathState, exempt map[*types.Var]bool) (pathState, bool) {
	if ifs.Init != nil {
		st, _ = c.walkStmt(ifs.Init, st, exempt, nil, 0)
	}
	branchExempt := exempt
	var guarded []*types.Var
	for v, tr := range c.byVar {
		if _, live := st[v]; live && tr.errVar != nil && usesVar(c.pass.Info, ifs.Cond, tr.errVar) {
			guarded = append(guarded, v)
		}
	}
	if len(guarded) > 0 {
		ext := make(map[*types.Var]bool, len(exempt)+len(guarded))
		for k := range exempt {
			ext[k] = true
		}
		for _, v := range guarded {
			ext[v] = true
		}
		branchExempt = ext
	}
	thenSt, thenTerm := c.walkStmts(ifs.Body.List, st.clone(), branchExempt)
	elseSt, elseTerm := st.clone(), false
	switch e := ifs.Else.(type) {
	case *ast.BlockStmt:
		elseSt, elseTerm = c.walkStmts(e.List, elseSt, branchExempt)
	case *ast.IfStmt:
		elseSt, elseTerm = c.handleIf(e, elseSt, branchExempt)
	}
	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseSt, false
	case elseTerm:
		return thenSt, false
	default:
		return merge(thenSt, elseSt), false
	}
}

// handleClauses walks every case body of a switch/select on its own
// state copy. When hasDefault is false the pre-state is merged in too:
// a switch with no default may match nothing and fall through.
func (c *checker) handleClauses(body *ast.BlockStmt, st pathState, exempt map[*types.Var]bool, hasDefault bool) (pathState, bool) {
	var merged pathState
	allTerm := true
	for _, cl := range body.List {
		var list []ast.Stmt
		switch t := cl.(type) {
		case *ast.CaseClause:
			list = t.Body
		case *ast.CommClause:
			if t.Comm != nil {
				var term bool
				clSt := st.clone()
				clSt, term = c.walkStmt(t.Comm, clSt, exempt, nil, 0)
				if !term {
					clSt, term = c.walkStmts(t.Body, clSt, exempt)
				}
				if !term {
					allTerm = false
					if merged == nil {
						merged = clSt
					} else {
						merged = merge(merged, clSt)
					}
				}
				continue
			}
			list = t.Body
		}
		clSt, term := c.walkStmts(list, st.clone(), exempt)
		if !term {
			allTerm = false
			if merged == nil {
				merged = clSt
			} else {
				merged = merge(merged, clSt)
			}
		}
	}
	if !hasDefault {
		allTerm = false
		if merged == nil {
			merged = st
		} else {
			merged = merge(merged, st)
		}
	}
	if allTerm && len(body.List) > 0 {
		return st, true
	}
	if merged == nil {
		merged = st
	}
	return merged, false
}

// hasDefaultClause reports whether a switch body has a default case.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// checkExit records a leak for every lease still owned at an exit.
func (c *checker) checkExit(st pathState, exempt map[*types.Var]bool, pos token.Position) {
	for v, vs := range st {
		if vs.released || vs.deferred || vs.transferred || (exempt != nil && exempt[v]) {
			continue
		}
		if tr := c.byVar[v]; tr != nil {
			tr.leaks = append(tr.leaks, pos)
		}
	}
}

// markClosureCaptures transfers every tracked lease captured by a
// function literal under s (the closure may escape this frame). The
// deferred-release closure is additionally credited in handleDefer.
func (c *checker) markClosureCaptures(s ast.Stmt, st pathState) {
	ast.Inspect(s, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		for v := range st {
			if usesVar(c.pass.Info, lit.Body, v) {
				vs := st[v]
				vs.transferred = true
				st[v] = vs
			}
		}
		return false
	})
}

// report emits the per-variable findings collected during the walk.
func (c *checker) report() {
	for _, tr := range c.tracked {
		sort.Slice(tr.doubles, func(i, j int) bool { return tr.doubles[i] < tr.doubles[j] })
		for _, p := range tr.doubles {
			c.pass.Reportf(p, "%s %q released twice: the pool refcount underflows and the janitor may evict a session still in use", leaseName(tr.typ), tr.v.Name())
		}
		if len(tr.leaks) == 0 {
			continue
		}
		var fix *analysis.SuggestedFix
		if !funcReleases(c.pass.Info, c.body, tr.v) {
			fix = &analysis.SuggestedFix{
				Message: "defer " + tr.v.Name() + ".Release() after the acquisition",
				Edits: []analysis.TextEdit{{
					Pos:     tr.insertAfter.End(),
					NewText: "\ndefer " + tr.v.Name() + ".Release()",
				}},
			}
		}
		c.pass.ReportfFix(tr.pos, fix, "%s %q can leak: unreleased at %s; release it exactly once on every path (defer %s.Release()) or transfer ownership",
			leaseName(tr.typ), tr.v.Name(), c.leakList(tr.leaks), tr.v.Name())
	}
}

// leakList renders the leaking exit lines compactly ("line 12, line 20").
func (c *checker) leakList(leaks []token.Position) string {
	out := ""
	for i, p := range leaks {
		if i > 0 {
			out += ", "
		}
		out += "line " + strconv.Itoa(p.Line)
	}
	return out
}

// callName names a call for diagnostics by its callee identifier.
func callName(call *ast.CallExpr) string {
	switch f := typeutil.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "the call"
}

// leaseResult locates a lease type in the call's result tuple,
// returning its index, the index of the paired error (-1 if none) and
// the lease type. leaseIdx is -1 when the call yields no lease.
func leaseResult(info *types.Info, call *ast.CallExpr) (leaseIdx, errIdx int, ltyp types.Type) {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return -1, -1, nil
	}
	leaseIdx, errIdx = -1, -1
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			at := t.At(i).Type()
			if isLease(at) && leaseIdx < 0 {
				leaseIdx, ltyp = i, at
			}
			if types.Identical(at, types.Universe.Lookup("error").Type()) {
				errIdx = i
			}
		}
	default:
		if isLease(t) {
			leaseIdx, ltyp = 0, t
		}
	}
	return leaseIdx, errIdx, ltyp
}

func resultCount(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return 0
	}
	if t, ok := tv.Type.(*types.Tuple); ok {
		return t.Len()
	}
	return 1
}

// releaseReceiver returns the tracked-able variable x when call is
// x.Release() on a lease type; nil otherwise.
func releaseReceiver(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := typeutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := typeutil.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !isLease(v.Type()) {
		return nil
	}
	return v
}

// closureReleases reports whether lit's body contains v.Release().
func closureReleases(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && releaseReceiver(info, call) == v {
			found = true
		}
		return !found
	})
	return found
}

// funcReleases reports whether body mentions v.Release anywhere —
// used to decide whether a defer-insertion fix is safe (it is not when
// some path already releases: inserting a defer there would double
// release).
func funcReleases(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
			if id, ok := typeutil.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// transfersExpr reports whether e, as a value being returned or
// stored, carries ownership of v: the identifier itself, possibly
// wrapped in parens, unary operators, or composite literals. A call
// mentioning v does NOT transfer (callees borrow).
func transfersExpr(info *types.Info, e ast.Expr, v *types.Var) bool {
	switch t := typeutil.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[t] == v
	case *ast.UnaryExpr:
		return transfersExpr(info, t.X, v)
	case *ast.CompositeLit:
		for _, elt := range t.Elts {
			if transfersExpr(info, elt, v) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return transfersExpr(info, t.Value, v)
	}
	return false
}

// escapingTarget reports whether an assignment target outlives the
// frame: a field or element of anything, or a package-level variable.
func (c *checker) escapingTarget(lhs ast.Expr) bool {
	switch t := typeutil.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if v, ok := c.pass.Info.Uses[t].(*types.Var); ok {
			return v.Parent() == c.pass.Pkg.Scope()
		}
	}
	return false
}

// usesVar reports whether any identifier under n refers to v.
func usesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// defOrUse resolves an identifier to its variable through either map
// (a := defines, = uses).
func defOrUse(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// isTerminalCall reports whether a call never returns: panic, os.Exit,
// log.Fatal*, runtime.Goexit.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := typeutil.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn := typeutil.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
	case "runtime":
		return fn.Name() == "Goexit"
	}
	return false
}
