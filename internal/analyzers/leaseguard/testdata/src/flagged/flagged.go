// Package flagged seeds the lease-discipline violations leaseguard
// exists to catch: pool handles that leak on some path, are released
// twice, or are discarded outright.
package flagged

import (
	"errors"

	"statsize/internal/server"
	"statsize/internal/session"
)

func use(*server.Lease) {}

// LeakOnEarlyReturn releases on the happy path but leaks when the
// validation fails: the early return escapes with the refcount held.
func LeakOnEarlyReturn(m *server.Manager, id string, bad bool) error {
	lease, err := m.Acquire(id) // want `\*server\.Lease "lease" can leak`
	if err != nil {
		return err
	}
	if bad {
		return errors.New("validation failed")
	}
	lease.Release()
	return nil
}

// LeakOnFallOff never releases at all; passing the lease to a
// synchronous callee is a borrow, not a transfer.
func LeakOnFallOff(m *server.Manager, id string) {
	lease, err := m.Acquire(id) // want `\*server\.Lease "lease" can leak`
	if err != nil {
		return
	}
	use(lease)
}

// Discarded drops the lease result outright: the refcount is bumped
// with no handle to ever drop it.
func Discarded(m *server.Manager, id string) {
	m.Acquire(id) // want `result of Acquire is discarded`
}

// Blank assigns the lease to the blank identifier — same hole, with an
// error check for cover.
func Blank(m *server.Manager, id string) error {
	_, err := m.Acquire(id) // want `result of Acquire is discarded`
	return err
}

// DoubleRelease drops the refcount twice; the janitor may evict a
// session another client still holds.
func DoubleRelease(m *server.Manager, id string) error {
	lease, err := m.Acquire(id)
	if err != nil {
		return err
	}
	lease.Release()
	lease.Release() // want `released twice`
	return nil
}

// DeferThenDirect releases directly under a defer that will release
// again on the way out.
func DeferThenDirect(m *server.Manager, id string) error {
	lease, err := m.Acquire(id)
	if err != nil {
		return err
	}
	defer lease.Release()
	lease.Release() // want `released twice`
	return nil
}

// TxLeak is the same early-return leak on the session transaction
// handle.
func TxLeak(s *session.Session, bad bool) error {
	tx, err := s.Acquire() // want `\*session\.Tx "tx" can leak`
	if err != nil {
		return err
	}
	if bad {
		return errors.New("rejected")
	}
	tx.Release()
	return nil
}

// ShedLeak acquires the lease before the admission decision and lets
// the shed path escape with the refcount held — the session is pinned
// against eviction by a request that was refused.
func ShedLeak(m *server.Manager, id string, shed bool) error {
	lease, err := m.Acquire(id) // want `\*server\.Lease "lease" can leak`
	if err != nil {
		return err
	}
	if shed {
		return errors.New("shed: queue full")
	}
	lease.Release()
	return nil
}

// ShedReleaseUnderDefer releases on the shed path under a defer that
// will release again on the way out.
func ShedReleaseUnderDefer(m *server.Manager, id string, shed bool) error {
	lease, err := m.Acquire(id)
	if err != nil {
		return err
	}
	defer lease.Release()
	if shed {
		lease.Release() // want `released twice`
		return errors.New("shed: queue full")
	}
	return nil
}
