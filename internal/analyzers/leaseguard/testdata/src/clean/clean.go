// Package clean is the corrected twin of the flagged corpus: every
// lease is released exactly once on every path or its ownership is
// transferred, so leaseguard must stay silent.
package clean

import (
	"context"
	"errors"

	"statsize/internal/server"
	"statsize/internal/session"
)

type holder struct{ l *server.Lease }

func use(*server.Lease) {}

// DeferAfterGuard is the canonical shape: error guard, then defer.
func DeferAfterGuard(m *server.Manager, id string) error {
	lease, err := m.Acquire(id)
	if err != nil {
		return err
	}
	defer lease.Release()
	use(lease)
	return nil
}

// DirectRelease releases explicitly before each late exit.
func DirectRelease(m *server.Manager, id string, more bool) error {
	lease, err := m.Acquire(id)
	if err != nil {
		return err
	}
	if more {
		lease.Release()
		return nil
	}
	lease.Release()
	return nil
}

// ReturnTransfer hands ownership to the caller.
func ReturnTransfer(m *server.Manager, id string) (*server.Lease, error) {
	lease, err := m.Acquire(id)
	if err != nil {
		return nil, err
	}
	return lease, nil
}

// CompositeTransfer hands ownership inside a returned struct.
func CompositeTransfer(m *server.Manager, id string) (*holder, error) {
	lease, err := m.Acquire(id)
	if err != nil {
		return nil, err
	}
	return &holder{l: lease}, nil
}

// FieldTransfer parks the lease in a structure the caller owns.
func FieldTransfer(m *server.Manager, id string, h *holder) error {
	lease, err := m.Acquire(id)
	if err != nil {
		return err
	}
	h.l = lease
	return nil
}

// ClosureTransfer hands the lease to a goroutine that releases it.
func ClosureTransfer(m *server.Manager, id string) error {
	lease, err := m.Acquire(id)
	if err != nil {
		return err
	}
	go func() {
		lease.Release()
	}()
	return nil
}

// OpenReleaseEarly mirrors server.handleOpenSession: the three-result
// acquisition released directly once the response is extracted.
func OpenReleaseEarly(ctx context.Context, m *server.Manager, req *server.OpenSessionRequest) (string, error) {
	lease, resp, err := m.OpenOrAttach(ctx, req)
	if err != nil {
		return "", err
	}
	lease.Release()
	return resp.SessionID, nil
}

// DeferredClosureRelease releases through a deferred closure.
func DeferredClosureRelease(s *session.Session) error {
	tx, err := s.Acquire()
	if err != nil {
		return err
	}
	defer func() {
		tx.Release()
	}()
	return tx.EnsureRequired(context.Background())
}

// ReleaseOnShedPath mirrors launchRun behind admission control: when
// the run is refused after the lease is held (shed, conflict), the
// lease is released before the error propagates; on success ownership
// transfers into the run structure that the executor goroutine owns.
func ReleaseOnShedPath(m *server.Manager, id string, shed bool, h *holder) error {
	lease, err := m.Acquire(id)
	if err != nil {
		return err
	}
	if shed {
		lease.Release()
		return errors.New("shed: queue full")
	}
	h.l = lease
	return nil
}

// RunOwnsLeaseUntilDone mirrors executeRun: the run goroutine receives
// ownership through the structure and releases when the run finishes,
// however it finishes.
func RunOwnsLeaseUntilDone(m *server.Manager, id string, work func()) error {
	lease, err := m.Acquire(id)
	if err != nil {
		return err
	}
	go func() {
		defer lease.Release()
		work()
	}()
	return nil
}
