package analysis_test

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"statsize/internal/analyzers/analysis"
)

// marker is a test-only analyzer with a trivially predictable finding
// set: every function whose name starts with Bad. The framework tests
// care about loading, suppression filtering and validation — not about
// any real invariant.
var marker = &analysis.Analyzer{
	Name: "marker",
	Doc:  "flags every function whose name starts with Bad (test-only)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
					pass.Reportf(fd.Name.Pos(), "function %s is bad", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func load(t *testing.T, corpus string) *analysis.Package {
	t.Helper()
	pkg, err := analysis.NewLoader("").LoadDir(filepath.Join("testdata", "src", corpus), "statlint/testdata/"+corpus)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", corpus, err)
	}
	return pkg
}

func run(t *testing.T, corpus string) ([]analysis.Diagnostic, error) {
	t.Helper()
	return analysis.Run([]*analysis.Package{load(t, corpus)}, []*analysis.Analyzer{marker})
}

// TestSuppressionWindow: a valid //lint:allow on the flagged line or
// the line directly above removes the finding; one line further away
// does not, and uncovered findings always survive.
func TestSuppressionWindow(t *testing.T) {
	diags, err := run(t, "suppressed")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var got []string
	audits := 0
	for _, d := range diags {
		if d.Analyzer == analysis.SuppressAuditName {
			// The deliberately-detached directive covers nothing, so the
			// audit must flag it as stale.
			audits++
			continue
		}
		if !strings.HasPrefix(d.Message, "function ") {
			t.Fatalf("unexpected message %q", d.Message)
		}
		got = append(got, strings.TrimSuffix(strings.TrimPrefix(d.Message, "function "), " is bad"))
	}
	if audits != 1 {
		t.Fatalf("suppressaudit findings = %d, want 1 for the out-of-window directive", audits)
	}
	want := []string{"BadUncovered", "BadWrongLine"}
	if len(got) != len(want) {
		t.Fatalf("surviving findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("surviving findings = %v, want %v", got, want)
		}
	}
}

// TestUnknownAnalyzerNameErrors: a suppression naming a nonexistent
// analyzer is a validation error, not a silent no-op.
func TestUnknownAnalyzerNameErrors(t *testing.T) {
	_, err := run(t, "unknown")
	if err == nil || !strings.Contains(err.Error(), `unknown analyzer "nosuch"`) {
		t.Fatalf("Run error = %v, want unknown-analyzer validation failure", err)
	}
}

// TestReasonRequired: a suppression without a justification is a
// validation error.
func TestReasonRequired(t *testing.T) {
	_, err := run(t, "noreason")
	if err == nil || !strings.Contains(err.Error(), "needs a reason") {
		t.Fatalf("Run error = %v, want missing-reason validation failure", err)
	}
}

// TestNamespaceRequired: the analyzer name must live under statlint/ so
// the directive cannot collide with staticcheck's //lint:ignore.
func TestNamespaceRequired(t *testing.T) {
	_, err := run(t, "badns")
	if err == nil || !strings.Contains(err.Error(), "must name a statlint/<analyzer> check") {
		t.Fatalf("Run error = %v, want namespace validation failure", err)
	}
}

// TestStaleSuppressionBecomesFinding: a well-formed suppression whose
// finding no longer fires is reported under the reserved suppressaudit
// name, while a live suppression both eats its finding and stays
// silent — the waiver list can only shrink.
func TestStaleSuppressionBecomesFinding(t *testing.T) {
	diags, err := run(t, "stale")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the stale-suppression audit finding", diags)
	}
	d := diags[0]
	if d.Analyzer != analysis.SuppressAuditName {
		t.Fatalf("finding analyzer = %q, want %q", d.Analyzer, analysis.SuppressAuditName)
	}
	if !strings.Contains(d.Message, "stale suppression") || !strings.Contains(d.Message, "statlint/marker") {
		t.Fatalf("audit message = %q, want stale-suppression wording naming the analyzer", d.Message)
	}
	if !strings.HasSuffix(d.Pos.Filename, "stale.go") || d.Pos.Line == 0 {
		t.Fatalf("audit finding position = %v, want the directive's own line in stale.go", d.Pos)
	}
}

// TestSuppressAuditCannotBeWaived: the reserved audit name is not a
// real analyzer, so trying to //lint:allow it is the unknown-name hard
// error — an audit finding cannot be suppressed away.
func TestSuppressAuditCannotBeWaived(t *testing.T) {
	known := map[string]bool{"marker": true}
	if known[analysis.SuppressAuditName] {
		t.Fatal("test invariant broken")
	}
	// The unknown corpus exercises the error path generically; here we
	// only pin the design property that SuppressAuditName is reserved
	// out of the analyzer namespace.
	if analysis.SuppressAuditName != "suppressaudit" {
		t.Fatalf("SuppressAuditName = %q, want the documented reserved name", analysis.SuppressAuditName)
	}
}

// TestLoadModulePackage: the loader resolves module-import-path
// patterns through `go list` and returns fully type-checked packages.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := analysis.NewLoader("").Load("statsize/internal/dist")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Types == nil || pkgs[0].Types.Path() != "statsize/internal/dist" {
		t.Fatalf("Load returned %+v, want one type-checked statsize/internal/dist package", pkgs)
	}
	if pkgs[0].Types.Scope().Lookup("Arena") == nil {
		t.Fatalf("loaded dist package is missing the Arena type")
	}
}
