// Package badns carries a suppression outside the statlint/ namespace;
// loading it through Run must fail validation.
package badns

//lint:allow marker missing the statlint/ namespace prefix
func BadNamespaced() {}
