// Package noreason carries a suppression without a justification;
// loading it through Run must fail validation.
package noreason

//lint:allow statlint/marker
func BadUnjustified() {}
