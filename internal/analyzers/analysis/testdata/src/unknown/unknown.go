// Package unknown carries a suppression naming an analyzer that does
// not exist; loading it through Run must fail validation.
package unknown

//lint:allow statlint/nosuch this analyzer name is a deliberate typo
func BadTypoed() {}
