// Package suppressed exercises the //lint:allow matching rules against
// the test-only marker analyzer, which flags every function whose name
// starts with Bad.
package suppressed

// BadCovered is suppressed by the comment-above form.
//
//lint:allow statlint/marker exercising the line-above suppression form
func BadCovered() {}

func BadTrailing() {} //lint:allow statlint/marker exercising the same-line suppression form

// BadUncovered must survive suppression filtering.
func BadUncovered() {}

// BadWrongLine is NOT covered: the directive is detached, two lines
// above the declaration and outside the L/L+1 window.

//lint:allow statlint/marker this directive is deliberately one line too far away

func BadWrongLine() {}
