// Package stale seeds the suppression-audit failure mode: a
// well-formed //lint:allow whose finding no longer exists. The audit
// must surface it as a suppressaudit finding so the waiver can only be
// deleted, never silently forgotten.
package stale

// GoodRenamed was once BadRenamed; the fix landed but the waiver
// below survived it.
//
//lint:allow statlint/marker the finding this once covered is gone
func GoodRenamed() {}

// BadStill is a live finding with a live suppression: the audit must
// not flag this one.
//
//lint:allow statlint/marker intentional test fixture, still firing
func BadStill() {}
