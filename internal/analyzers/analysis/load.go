package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// modulePath is the import prefix of this repository's own packages.
// Imports under it are type-checked from source in dependency order;
// everything else is assumed to be the standard library and delegated
// to go/importer's source importer. The prefix is a constant rather
// than parsed from go.mod because the analyzers themselves hard-code
// statsize types (dist.Arena, graph.NodeID, ...) — the suite is
// repo-specific by design.
const modulePath = "statsize"

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("statlint/testdata" paths are synthetic)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with a shared FileSet and
// package cache. It replaces golang.org/x/tools/go/packages using only
// the standard library: `go list -json -deps` supplies metadata in
// dependency order, go/types checks each package, and the source
// importer resolves standard-library imports. A Loader is not safe for
// concurrent use.
type Loader struct {
	fset    *token.FileSet
	checked map[string]*Package
	std     types.Importer
	dir     string // working directory for go list (anywhere in the module)
}

// ModuleRoot locates the root directory of the module enclosing dir
// ("" means the process cwd) via `go env GOMOD`. Callers that want to
// load the whole module from an arbitrary package directory pair this
// with the "./..." pattern: directory-relative patterns stay inside the
// main module, while a module-path wildcard like "statsize/..." makes
// the go tool consult the full module graph — which the lint-toolchain
// require in go.mod leaves unresolvable offline (no go.sum, no module
// cache).
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("analysis: %q is not inside a Go module", dir)
	}
	return filepath.Dir(gomod), nil
}

// NewLoader returns a loader that resolves `go list` patterns relative
// to dir (any directory inside the module; "" means the process cwd).
func NewLoader(dir string) *Loader {
	l := &Loader{
		fset:    token.NewFileSet(),
		checked: make(map[string]*Package),
		dir:     dir,
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	GoFiles    []string
}

// goList runs `go list -json` with the given arguments and decodes the
// package stream.
func (l *Loader) goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=Dir,ImportPath,Standard,GoFiles"}, args...)...)
	cmd.Dir = l.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves the patterns and returns the matched packages, fully
// type-checked. Dependencies are checked too (they are needed for type
// information) but only pattern matches are returned, in import-path
// order. Test files are not loaded: the invariants under check are
// production-code contracts, and the testdata corpora that exercise
// the analyzers are plain non-test packages.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	deps, err := l.goList(append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// -deps emits dependencies before dependents, so a single in-order
	// sweep always finds a package's imports already checked.
	for _, p := range deps {
		if p.Standard {
			continue
		}
		if _, err := l.check(p); err != nil {
			return nil, err
		}
	}
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range targets {
		if pkg, ok := l.checked[p.ImportPath]; ok {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks the .go files of a single directory as a package
// with the given synthetic import path — the route the analyzer test
// corpora take, since directories under testdata/ are invisible to the
// go tool. Imports are resolved like any other load, so corpus
// packages may import real statsize packages.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(listPkg{Dir: dir, ImportPath: path, GoFiles: files})
}

// check parses and type-checks one package and caches the result.
func (l *Loader) check(p listPkg) (*Package, error) {
	if pkg, ok := l.checked[p.ImportPath]; ok {
		return pkg, nil
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(p.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
	}
	pkg := &Package{
		Path:  p.ImportPath,
		Dir:   p.Dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.checked[p.ImportPath] = pkg
	return pkg, nil
}

// loaderImporter adapts the loader's cache into a types.Importer:
// module-local imports come from the cache (loading on demand for the
// LoadDir route, whose imports are not pre-walked by `go list -deps`),
// "unsafe" is the magic package, and everything else is standard
// library resolved from GOROOT source.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.checked[path]; ok {
		return pkg.Types, nil
	}
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		deps, err := l.goList("-deps", path)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Standard {
				continue
			}
			if _, err := l.check(p); err != nil {
				return nil, err
			}
		}
		if pkg, ok := l.checked[path]; ok {
			return pkg.Types, nil
		}
		return nil, fmt.Errorf("analysis: package %s not found", path)
	}
	return l.std.Import(path)
}
