package analysis

import (
	"fmt"
	"strings"
)

// allowPrefix is the directive that marks an intentional exception to
// an analyzer. The full form is
//
//	//lint:allow statlint/<analyzer> <reason>
//
// placed at the end of the flagged line or on its own line directly
// above. The statlint/ namespace keeps the directive from colliding
// with staticcheck's //lint:ignore, which uses check codes, not
// analyzer names.
const (
	allowPrefix   = "lint:allow "
	allowCategory = "statlint/"
)

// suppression is one parsed //lint:allow directive.
type suppression struct {
	file     string
	line     int
	analyzer string
}

// parseSuppressions extracts and validates every //lint:allow directive
// in the loaded packages. Validation is strict: an unknown analyzer
// name or a missing reason is an error, because a suppression that no
// longer names a real check (or never justified itself) is a silent
// hole in the gate.
func parseSuppressions(pkgs []*Package, known map[string]bool) ([]suppression, error) {
	var out []suppression
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, allowPrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
					name, reason, _ := strings.Cut(rest, " ")
					if !strings.HasPrefix(name, allowCategory) {
						return nil, fmt.Errorf("%s: lint:allow must name a statlint/<analyzer> check, got %q", pos, name)
					}
					analyzer := strings.TrimPrefix(name, allowCategory)
					if !known[analyzer] {
						return nil, fmt.Errorf("%s: lint:allow names unknown analyzer %q", pos, analyzer)
					}
					if strings.TrimSpace(reason) == "" {
						return nil, fmt.Errorf("%s: lint:allow statlint/%s needs a reason", pos, analyzer)
					}
					out = append(out, suppression{
						file:     pos.Filename,
						line:     pos.Line,
						analyzer: analyzer,
					})
				}
			}
		}
	}
	return out, nil
}

// applySuppressions removes diagnostics covered by a valid directive: a
// suppression on line L covers findings of its analyzer on L (trailing
// comment) and L+1 (comment on its own line above the flagged one). It
// also returns the stale suppressions — directives that covered no
// diagnostic at all — for the audit pass: a waiver outliving its
// finding is a silent hole in the gate and must be deleted.
func applySuppressions(pkgs []*Package, analyzers []*Analyzer, diags []Diagnostic) (kept []Diagnostic, stale []suppression, err error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sups, err := parseSuppressions(pkgs, known)
	if err != nil {
		return nil, nil, err
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key][]*suppression, 2*len(sups))
	used := make(map[*suppression]bool, len(sups))
	for i := range sups {
		s := &sups[i]
		covered[key{s.file, s.line, s.analyzer}] = append(covered[key{s.file, s.line, s.analyzer}], s)
		covered[key{s.file, s.line + 1, s.analyzer}] = append(covered[key{s.file, s.line + 1, s.analyzer}], s)
	}
	kept = diags[:0]
	for _, d := range diags {
		if matches := covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; len(matches) > 0 {
			for _, s := range matches {
				used[s] = true
			}
			continue
		}
		kept = append(kept, d)
	}
	for i := range sups {
		if !used[&sups[i]] {
			stale = append(stale, sups[i])
		}
	}
	return kept, stale, nil
}
