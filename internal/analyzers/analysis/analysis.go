// Package analysis is the minimal static-analysis framework behind
// cmd/statlint. It mirrors the shape of golang.org/x/tools/go/analysis
// — an Analyzer owns a Run function that inspects one type-checked
// package through a Pass and reports Diagnostics — but is built purely
// on the standard library (go/parser, go/types, `go list`), because
// this repository vendors no third-party modules.
//
// The framework exists to machine-check the memory-model and
// concurrency invariants DESIGN.md states in prose: scratch
// distributions must be persisted before retention, arenas serve one
// goroutine, session queries hold the lock, long propagation loops
// observe their context. See the sibling analyzer packages
// (scratchescape, arenashare, lockdiscipline, ctxflow) and DESIGN.md's
// "Enforced invariants" section.
//
// Intentional exceptions are suppressed in source with
//
//	//lint:allow statlint/<analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory and unknown analyzer names are a hard error, so stale or
// typoed suppressions cannot silently disable checking.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a single package
// and reports findings through the Pass; it must not retain the Pass.
type Analyzer struct {
	Name string // short identifier, e.g. "scratchescape"
	Doc  string // one-paragraph description of the invariant checked
	Run  func(*Pass) error
}

// Pass carries everything an Analyzer needs to inspect one package:
// the syntax, the type information, and the reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the
// surviving diagnostics in (file, line, column, analyzer) order, after
// removing findings covered by a //lint:allow suppression. A malformed
// or unknown suppression is an error, not a finding: the driver must
// refuse to certify a tree whose suppression state it cannot validate.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	kept, err := applySuppressions(pkgs, analyzers, diags)
	if err != nil {
		return nil, err
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}
