// Package analysis is the minimal static-analysis framework behind
// cmd/statlint. It mirrors the shape of golang.org/x/tools/go/analysis
// — an Analyzer owns a Run function that inspects one type-checked
// package through a Pass and reports Diagnostics — but is built purely
// on the standard library (go/parser, go/types, `go list`), because
// this repository vendors no third-party modules.
//
// The framework exists to machine-check the memory-model and
// concurrency invariants DESIGN.md states in prose: scratch
// distributions must be persisted before retention, arenas serve one
// goroutine, session queries hold the lock, long propagation loops
// observe their context, leases are released exactly once, HTTP
// bodies are read bounded, SSE streams terminate with done, counters
// move only through sanctioned paths. See the sibling analyzer
// packages (scratchescape, arenashare, lockdiscipline, ctxflow,
// leaseguard, boundeddecode, ssedone, counterpath) and DESIGN.md's
// "Enforced invariants" section.
//
// Intentional exceptions are suppressed in source with
//
//	//lint:allow statlint/<analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory and unknown analyzer names are a hard error, so stale or
// typoed suppressions cannot silently disable checking. Suppressions
// are audited against each run: a directive that covers no finding is
// itself reported under the reserved SuppressAuditName, which names no
// analyzer and therefore cannot be waived.
//
// Analyzers may attach a SuggestedFix to a Diagnostic; ApplyFixes
// turns the surviving fixes into file edits (cmd/statlint -fix).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a single package
// and reports findings through the Pass; it must not retain the Pass.
type Analyzer struct {
	Name string // short identifier, e.g. "scratchescape"
	Doc  string // one-paragraph description of the invariant checked
	Run  func(*Pass) error
}

// Pass carries everything an Analyzer needs to inspect one package:
// the syntax, the type information, and the reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFix(pos, nil, format, args...)
}

// TextEdit is one replacement inside a suggested fix, in token.Pos
// coordinates. Pos == End inserts.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// SuggestedFix is an optional machine-applicable correction attached to
// a diagnostic. Fixes must be safe to apply blindly: `statlint -fix`
// applies them textually, gofmts the file, and re-runs the suite to
// verify the finding is gone.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// ReportfFix records a diagnostic at pos carrying a suggested fix
// (fix may be nil). Edit positions are resolved to byte offsets
// immediately, so the Diagnostic stays self-contained once the Pass is
// gone.
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
	if fix != nil {
		rf := &ResolvedFix{Message: fix.Message}
		for _, e := range fix.Edits {
			start := p.Fset.Position(e.Pos)
			end := start
			if e.End.IsValid() {
				end = p.Fset.Position(e.End)
			}
			rf.Edits = append(rf.Edits, Edit{
				File:    start.Filename,
				Start:   start.Offset,
				End:     end.Offset,
				NewText: e.NewText,
			})
		}
		d.Fix = rf
	}
	*p.diags = append(*p.diags, d)
}

// Diagnostic is one finding, already resolved to a file position. Fix,
// when non-nil, is a machine-applicable correction.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fix      *ResolvedFix
}

// ResolvedFix is a SuggestedFix with its edits resolved to byte
// offsets, ready for ApplyFixes.
type ResolvedFix struct {
	Message string
	Edits   []Edit
}

// Edit is one byte-offset splice in one file.
type Edit struct {
	File       string
	Start, End int
	NewText    string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// SuppressAuditName is the reserved analyzer name under which stale
// suppressions are reported. It is deliberately not a real analyzer:
// a //lint:allow naming it is an unknown-analyzer hard error, so an
// audit finding cannot itself be waived — the suppression list can
// only shrink.
const SuppressAuditName = "suppressaudit"

// Run applies every analyzer to every package and returns the
// surviving diagnostics in (file, line, column, analyzer) order, after
// removing findings covered by a //lint:allow suppression. A malformed
// or unknown suppression is an error, not a finding: the driver must
// refuse to certify a tree whose suppression state it cannot validate.
// A *stale* suppression — well-formed, but covering no finding any
// analyzer still reports — is appended as a finding of the reserved
// suppressaudit pseudo-analyzer, so obsolete waivers fail the gate the
// same way new violations do.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	kept, stale, err := applySuppressions(pkgs, analyzers, diags)
	if err != nil {
		return nil, err
	}
	for _, s := range stale {
		kept = append(kept, Diagnostic{
			Analyzer: SuppressAuditName,
			Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
			Message: fmt.Sprintf("stale suppression: no statlint/%s finding on this or the next line; delete the //lint:allow (the waiver list only shrinks)",
				s.analyzer),
		})
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}
