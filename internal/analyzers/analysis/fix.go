package analysis

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// ApplyFixes applies the suggested fixes carried by diags to the files
// on disk, gofmt-ing each touched file afterwards so fixed trees stay
// format-clean. Fixes are accepted in diagnostic order; a fix whose
// edits overlap an already-accepted edit is skipped (and returned in
// skipped) rather than applied half-way — the driver re-runs the suite
// after applying, so a skipped fix simply resurfaces as a finding.
//
// Returns the diagnostics whose fixes were applied, the files written,
// and the ones skipped for overlap. Any I/O or gofmt failure aborts
// with an error: a fix that produces unparseable Go is an analyzer bug,
// not something to write to the tree.
func ApplyFixes(diags []Diagnostic) (applied []Diagnostic, files []string, skipped []Diagnostic, err error) {
	type fileEdits struct {
		edits []Edit
	}
	perFile := make(map[string]*fileEdits)
	overlaps := func(e Edit) bool {
		fe, ok := perFile[e.File]
		if !ok {
			return false
		}
		for _, a := range fe.edits {
			if e.Start < a.End && a.Start < e.End {
				return true
			}
			// Two pure insertions at the same offset have no defined
			// order; treat them as overlapping too.
			if e.Start == a.Start && e.End == e.Start && a.End == a.Start {
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		clash := false
		for _, e := range d.Fix.Edits {
			if overlaps(e) {
				clash = true
				break
			}
		}
		if clash {
			skipped = append(skipped, d)
			continue
		}
		for _, e := range d.Fix.Edits {
			fe := perFile[e.File]
			if fe == nil {
				fe = &fileEdits{}
				perFile[e.File] = fe
			}
			fe.edits = append(fe.edits, e)
		}
		applied = append(applied, d)
	}
	for file, fe := range perFile {
		src, rerr := os.ReadFile(file)
		if rerr != nil {
			return nil, nil, nil, fmt.Errorf("analysis: applying fixes: %w", rerr)
		}
		// Splice back-to-front so earlier offsets stay valid.
		sort.Slice(fe.edits, func(i, j int) bool { return fe.edits[i].Start > fe.edits[j].Start })
		for _, e := range fe.edits {
			if e.Start < 0 || e.End > len(src) || e.Start > e.End {
				return nil, nil, nil, fmt.Errorf("analysis: fix edit [%d,%d) out of range for %s (%d bytes)",
					e.Start, e.End, file, len(src))
			}
			src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
		}
		formatted, ferr := format.Source(src)
		if ferr != nil {
			return nil, nil, nil, fmt.Errorf("analysis: fixed %s does not gofmt (analyzer fix bug): %w", file, ferr)
		}
		info, serr := os.Stat(file)
		mode := os.FileMode(0o644)
		if serr == nil {
			mode = info.Mode().Perm()
		}
		if werr := os.WriteFile(file, formatted, mode); werr != nil {
			return nil, nil, nil, fmt.Errorf("analysis: writing fixed %s: %w", file, werr)
		}
		files = append(files, file)
	}
	sort.Strings(files)
	return applied, files, skipped, nil
}
