// Package analyzers registers the statlint suite: the custom static
// analyses that machine-check the memory-model and concurrency
// invariants DESIGN.md's "Memory model" and "Concurrency model"
// sections state in prose. cmd/statlint runs them (plus go vet) over
// the tree; the analyzer packages themselves document what each check
// enforces and where its flow-insensitive edges are.
package analyzers

import (
	"statsize/internal/analyzers/analysis"
	"statsize/internal/analyzers/arenashare"
	"statsize/internal/analyzers/boundeddecode"
	"statsize/internal/analyzers/counterpath"
	"statsize/internal/analyzers/ctxflow"
	"statsize/internal/analyzers/leaseguard"
	"statsize/internal/analyzers/lockdiscipline"
	"statsize/internal/analyzers/scratchescape"
	"statsize/internal/analyzers/ssedone"
)

// All returns the full statlint suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		arenashare.Analyzer,
		boundeddecode.Analyzer,
		counterpath.Analyzer,
		ctxflow.Analyzer,
		leaseguard.Analyzer,
		lockdiscipline.Analyzer,
		scratchescape.Analyzer,
		ssedone.Analyzer,
	}
}
