// Package clean is the silent twin of the flagged corpus: the Session
// locking discipline followed correctly, which lockdiscipline must not
// report.
package clean

import "sync"

type Store struct {
	capacity int

	mu    sync.Mutex
	items map[string]int
}

// Config above the mutex is immutable after construction: lock-free
// reads are the convention.
func (s *Store) Capacity() int { return s.capacity }

func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// size is the unexported with-lock-held helper pattern: the exported
// surface acquires, the helper touches state.
func (s *Store) size() int { return len(s.items) }

func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size()
}
