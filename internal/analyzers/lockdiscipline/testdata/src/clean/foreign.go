// foreign.go is the corrected twin of the foreign-guard violations:
// every access to an annotated field holds the owner's lock, directly
// or through a lock-taking owner method, and unexported helpers stay
// exempt.
package clean

import "sync"

// Pool mimics the server Manager: its mutex guards the lease
// accounting inside every pooled pentry.
type Pool struct {
	mu      sync.Mutex
	entries map[string]*pentry
}

type pentry struct {
	id   string
	refs int  // in-flight leases (guarded by Pool.mu)
	gone bool // evicted from the pool (guarded by Pool.mu)
}

// Refs locks the owner mutex directly before reading.
func (p *Pool) Refs(id string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.entries[id].refs
}

// Doom goes through the direct-lock path on a free function: the
// owner is a parameter, not a receiver.
func Doom(p *Pool, id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries[id].gone = true
}

// Acquire is a lock-taking primitive (returns with the lock held).
func (p *Pool) Acquire() *Pool {
	p.mu.Lock()
	return p
}

// ViaAcquire holds through a lock-taking owner method.
func (p *Pool) ViaAcquire(id string) int {
	p.Acquire()
	defer p.mu.Unlock()
	return p.entries[id].refs
}

// reap is unexported: the with-lock-held helper convention applies to
// foreign guards exactly as to same-struct guards.
func reap(e *pentry) bool {
	return e.refs == 0 && !e.gone
}
