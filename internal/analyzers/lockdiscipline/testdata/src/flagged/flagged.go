// Package flagged seeds the two lockdiscipline violation classes on a
// miniature of the Session pattern: an exported method touching a
// guarded field lock-free, and lock-taking methods nesting on the same
// receiver.
package flagged

import "sync"

// Store declares config above the mutex (lock-free by convention) and
// guarded state below it.
type Store struct {
	capacity int

	mu    sync.Mutex
	items map[string]int
}

// Capacity is legitimate: the field sits above the mutex.
func (s *Store) Capacity() int { return s.capacity }

func (s *Store) Len() int {
	return len(s.items) // want `exported method Store.Len accesses guarded field items without acquiring the mutex`
}

func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

func (s *Store) Both(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Get(k) // want `Store.Both holds the Store lock and calls lock-taking method Get on the same receiver`
}

// Acquire is the primitive of the Acquire/Tx pattern: it returns with
// the lock held.
func (s *Store) Acquire() *Store {
	s.mu.Lock()
	return s
}

// Snapshot holds via Acquire — one acquisition is fine.
func (s *Store) Snapshot() map[string]int {
	s.Acquire()
	out := make(map[string]int, len(s.items))
	for k, v := range s.items {
		out[k] = v
	}
	defer s.mu.Unlock()
	return out
}

func (s *Store) Double() {
	s.Acquire() // want `Store.Double holds the Store lock and calls lock-taking method Acquire on the same receiver`
	s.Acquire()
	s.mu.Unlock()
	s.mu.Unlock()
}
