// foreign.go seeds violations of the guarded-by annotation: fields of
// one struct protected by another struct's mutex (the Manager/entry
// pool pattern), accessed without the owner's lock.
package flagged

import "sync"

// Pool mimics the server Manager: its mutex guards the lease
// accounting inside every pooled pentry.
type Pool struct {
	mu      sync.Mutex
	entries map[string]*pentry
}

type pentry struct {
	id   string
	refs int  // in-flight leases (guarded by Pool.mu)
	gone bool // evicted from the pool (guarded by Pool.mu)
}

// StealRefs reads a foreign-guarded field with no lock in sight.
func StealRefs(e *pentry) int {
	return e.refs // want `exported StealRefs accesses field refs, guarded by Pool\.mu, without holding Pool's lock`
}

// Doom writes a foreign-guarded field through a method of the wrong
// type: pentry has no mutex of its own.
func (e *pentry) Doom() {
	e.gone = true // want `exported Doom accesses field gone, guarded by Pool\.mu, without holding Pool's lock`
}

// PeekUnlocked is on the owner but forgets its own mutex.
func (p *Pool) PeekUnlocked(id string) int {
	return p.entries[id].refs // want `exported PeekUnlocked accesses field refs, guarded by Pool\.mu, without holding Pool's lock` `exported method Pool\.PeekUnlocked accesses guarded field entries without acquiring the mutex`
}

// orphan carries an annotation that validates nothing: there is no
// package-level Registry struct with a mutex named mu. The doc-comment
// form is under test here; the finding lands on the field itself.
type orphan struct {
	// guarded by Registry.mu
	m int // want `guarded-by annotation names Registry\.mu, which is not a sync\.Mutex/RWMutex field of a package-level struct`
}
