package lockdiscipline

import (
	"testing"

	"statsize/internal/analyzers/analyzertest"
)

func TestLockDiscipline(t *testing.T) {
	analyzertest.Run(t, Analyzer, "flagged", "clean")
}
