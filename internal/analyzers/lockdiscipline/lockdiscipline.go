// Package lockdiscipline implements the statlint check for the
// session-locking rule of DESIGN.md's "Concurrency model": on a struct
// type that embeds a sync.Mutex/sync.RWMutex (the Session pattern),
// every exported method must acquire the lock before touching guarded
// fields, and a method that holds the lock must not call another
// lock-taking method on the same receiver — the self-deadlock class
// the PR 3 NumGates/DT fix was an instance of.
//
// "Guarded" follows the standard Go declaration convention, which every
// mutex-holding struct in this repository honors: a mutex guards the
// fields declared after it, up to the next mutex. Fields declared above
// the first mutex are immutable-after-construction configuration
// (Engine.lib/bins/objective/parallelism, the pre-Run fields of
// par.batch) and may be read lock-free.
//
// Holding is recognized flow-insensitively: a method holds when it
// locks the mutex directly (recv.mu.Lock / recv.mu.RLock, or the
// embedded forms) or calls a method of the same type that does (the
// Acquire pattern, which returns with the lock held). Two findings
// follow:
//
//   - guard: an exported method reads or writes a guarded field of
//     the receiver without holding. Unexported methods are exempt —
//     they are the with-lock-held helpers the exported surface
//     delegates to (checkGate, the Tx working set).
//   - deadlock: a method that holds also calls a lock-taking method on
//     the same receiver (or acquires twice). Because the check cannot
//     order statements, a method that releases early and then calls a
//     locking sibling is a false positive — restructure it through the
//     Tx working view, or suppress with a reason.
//
// Beyond the same-struct convention, a field of any struct can declare
// a *foreign* guard with a machine-readable marker in its doc or line
// comment:
//
//	refs int // in-flight leases (guarded by Manager.mu)
//
// names a sync.Mutex/RWMutex field of another package-level struct as
// the field's guard — the Manager/entry pattern, where the pool's
// mutex protects the lease accounting inside every pooled entry. An
// exported function that touches a foreign-guarded field must hold the
// owner's lock: lock it directly (owner.mu.Lock / owner.mu.RLock) or
// call a lock-taking method of the owner type. Unexported functions
// are exempt, exactly like the with-lock-held helper convention above
// (leaseLocked, release, evictOneLocked). An annotation naming a
// nonexistent owner or a non-mutex field is itself a finding: a guard
// declaration that validates nothing is documentation pretending to be
// enforcement.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"statsize/internal/analyzers/analysis"
	"statsize/internal/analyzers/typeutil"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "exported methods on mutex-holding types must acquire the lock before guarded fields, and must not nest lock-taking calls",
	Run:  run,
}

// method is the per-method evidence the two rules are judged on.
type method struct {
	decl       *ast.FuncDecl
	recv       *types.Var
	directLock bool           // recv...Lock()/RLock() appears in the body
	calls      map[string]int // direct recv.M() call counts, by method name
	callPos    map[string]ast.Node
	fieldUse   ast.Node // first guarded receiver field access
	fieldName  string
}

func run(pass *analysis.Pass) error {
	guarded := mutexTypes(pass)
	if len(guarded) == 0 {
		return nil
	}
	methods := make(map[string][]*method) // type name -> methods
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			tname := recvTypeName(fd)
			if _, ok := guarded[tname]; !ok {
				continue
			}
			methods[tname] = append(methods[tname], inspectMethod(pass, fd, guarded[tname]))
		}
	}
	for tname, ms := range methods {
		lockTaking := lockTakingSet(ms)
		primitives := directLockers(ms)
		for _, m := range ms {
			holds := m.directLock
			acquisitions := 0
			nested := 0
			var nestedAt ast.Node
			var nestedName string
			for name, cnt := range m.calls {
				if !lockTaking[name] {
					continue
				}
				if primitives[name] {
					acquisitions += cnt
					holds = true
					if nestedAt == nil {
						nestedAt, nestedName = m.callPos[name], name
					}
				} else {
					nested += cnt
					nestedAt, nestedName = m.callPos[name], name
				}
			}
			if holds && (nested >= 1 || acquisitions >= threshold(m)) {
				pass.Reportf(nestedAt.Pos(),
					"%s.%s holds the %s lock and calls lock-taking method %s on the same receiver: self-deadlock (work through the held Tx instead)",
					tname, m.decl.Name.Name, tname, nestedName)
			}
			if m.decl.Name.IsExported() && m.fieldUse != nil && !holds {
				pass.Reportf(m.fieldUse.Pos(),
					"exported method %s.%s accesses guarded field %s without acquiring the mutex",
					tname, m.decl.Name.Name, m.fieldName)
			}
		}
	}
	checkForeignGuards(pass, methods)
	return nil
}

// guardAnnotation is the machine-readable foreign-guard marker inside
// a field's doc or line comment: `guarded by Owner.mutexField`.
var guardAnnotation = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)\.([A-Za-z_]\w*)`)

// foreignGuard names the mutex that protects an annotated field.
type foreignGuard struct {
	ownerName  string
	mutexField string
}

// checkForeignGuards enforces the `guarded by Owner.mu` annotations:
// every exported function touching an annotated field must hold the
// owner's lock. methods supplies the per-owner lock-taking sets
// already computed for the same-struct rule.
func checkForeignGuards(pass *analysis.Pass, methods map[string][]*method) {
	foreign := parseForeignGuards(pass)
	if len(foreign) == 0 {
		return
	}
	lockTakingByType := make(map[string]map[string]bool, len(methods))
	for tname, ms := range methods {
		lockTakingByType[tname] = lockTakingSet(ms)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			// First annotated access per owner; one finding each.
			type access struct {
				node  ast.Node
				field string
				guard foreignGuard
			}
			byOwner := make(map[string]access)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pass.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				fv, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				if g, ok := foreign[fv]; ok {
					if _, seen := byOwner[g.ownerName]; !seen {
						byOwner[g.ownerName] = access{node: sel, field: fv.Name(), guard: g}
					}
				}
				return true
			})
			for owner, acc := range byOwner {
				if holdsOwnerLock(pass, fd.Body, acc.guard, lockTakingByType[owner]) {
					continue
				}
				pass.Reportf(acc.node.Pos(),
					"exported %s accesses field %s, guarded by %s.%s, without holding %s's lock (lock it directly or go through a lock-taking %s method)",
					fd.Name.Name, acc.field, owner, acc.guard.mutexField, owner, owner)
			}
		}
	}
}

// parseForeignGuards collects and validates the guarded-by field
// annotations of every package-level struct.
func parseForeignGuards(pass *analysis.Pass) map[*types.Var]foreignGuard {
	out := make(map[*types.Var]foreignGuard)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					g, ok := parseGuardComment(field)
					if !ok {
						continue
					}
					if !validGuardOwner(pass, g) {
						pass.Reportf(field.Pos(),
							"guarded-by annotation names %s.%s, which is not a sync.Mutex/RWMutex field of a package-level struct",
							g.ownerName, g.mutexField)
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.Info.Defs[name].(*types.Var); ok {
							out[v] = g
						}
					}
				}
			}
		}
	}
	return out
}

// parseGuardComment extracts the annotation from a field's line or doc
// comment.
func parseGuardComment(field *ast.Field) (foreignGuard, bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardAnnotation.FindStringSubmatch(cg.Text()); m != nil {
			return foreignGuard{ownerName: m[1], mutexField: m[2]}, true
		}
	}
	return foreignGuard{}, false
}

// validGuardOwner reports whether the annotation names a real mutex:
// a package-level struct with a sync.Mutex/RWMutex field of that name.
func validGuardOwner(pass *analysis.Pass, g foreignGuard) bool {
	tn, ok := pass.Pkg.Scope().Lookup(g.ownerName).(*types.TypeName)
	if !ok {
		return false
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == g.mutexField && isMutex(f.Type()) {
			return true
		}
	}
	return false
}

// holdsOwnerLock reports whether body acquires the guard's mutex: a
// direct owner.mu.Lock()/RLock() (or embedded owner.Lock()), or a call
// to a lock-taking method of the owner type.
func holdsOwnerLock(pass *analysis.Pass, body *ast.BlockStmt, g foreignGuard, lockTaking map[string]bool) bool {
	isOwner := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		p, n := typeutil.NamedPath(tv.Type)
		return p == pass.Pkg.Path() && n == g.ownerName
	}
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := typeutil.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
		if fn == nil {
			return true
		}
		if (fn.Name() == "Lock" || fn.Name() == "RLock") && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			switch base := typeutil.Unparen(sel.X).(type) {
			case *ast.SelectorExpr:
				if base.Sel.Name == g.mutexField && isOwner(base.X) {
					held = true
				}
			default:
				if isOwner(sel.X) {
					held = true // embedded mutex: owner.Lock()
				}
			}
			return true
		}
		if lockTaking != nil && lockTaking[fn.Name()] && isOwner(sel.X) {
			held = true
		}
		return true
	})
	return held
}

// threshold is the acquisition count at which re-acquisition becomes a
// self-deadlock: any lock-taking call on top of a direct lock, or a
// second Acquire-style call.
func threshold(m *method) int {
	if m.directLock {
		return 1
	}
	return 2
}

// mutexTypes maps every package-level struct type name that holds a
// sync.Mutex/sync.RWMutex (including embedded) to the set of its
// guarded field names: by the standard declaration convention, the
// non-mutex fields declared after the first mutex field. Fields above
// the mutex are immutable-after-construction configuration and stay
// lock-free.
func mutexTypes(pass *analysis.Pass) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var guarded map[string]bool
		below := false
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutex(f.Type()) {
				below = true
				if guarded == nil {
					guarded = make(map[string]bool)
				}
				continue
			}
			if below {
				guarded[f.Name()] = true
			}
		}
		if guarded != nil {
			out[name] = guarded
		}
	}
	return out
}

func isMutex(t types.Type) bool {
	return typeutil.Is(t, "sync", "Mutex") || typeutil.Is(t, "sync", "RWMutex")
}

func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// inspectMethod gathers one method's lock/call/field evidence.
func inspectMethod(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[string]bool) *method {
	m := &method{
		decl:    fd,
		calls:   make(map[string]int),
		callPos: make(map[string]ast.Node),
	}
	if names := fd.Recv.List[0].Names; len(names) > 0 {
		m.recv, _ = pass.Info.Defs[names[0]].(*types.Var)
	}
	if m.recv == nil {
		return m
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := typeutil.Unparen(e).(*ast.Ident)
		return ok && pass.Info.Uses[id] == m.recv
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			sel, ok := typeutil.Unparen(e.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
			if fn == nil {
				return true
			}
			// Direct lock: a sync Lock/RLock whose selector chain roots
			// at the receiver (recv.mu.Lock or embedded recv.Lock).
			if (fn.Name() == "Lock" || fn.Name() == "RLock") &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sync" && rootIsRecv(pass, sel, m.recv) {
				m.directLock = true
				return true
			}
			// Direct method call on the receiver itself.
			if isRecv(sel.X) {
				if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					m.calls[fn.Name()]++
					if _, seen := m.callPos[fn.Name()]; !seen {
						m.callPos[fn.Name()] = e
					}
				}
			}
		case *ast.SelectorExpr:
			if m.fieldUse != nil || !isRecv(e.X) {
				return true
			}
			if s, ok := pass.Info.Selections[e]; ok && s.Kind() == types.FieldVal &&
				guarded[e.Sel.Name] && !isMutex(s.Type()) {
				m.fieldUse, m.fieldName = e, e.Sel.Name
			}
		}
		return true
	})
	return m
}

// rootIsRecv walks a selector chain (recv.mu.Lock, recv.Lock) down to
// its base identifier and reports whether it is the receiver.
func rootIsRecv(pass *analysis.Pass, sel *ast.SelectorExpr, recv *types.Var) bool {
	e := ast.Expr(sel)
	for {
		s, ok := typeutil.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			break
		}
		e = s.X
	}
	id, ok := typeutil.Unparen(e).(*ast.Ident)
	return ok && pass.Info.Uses[id] == recv
}

// directLockers returns the names of methods that lock the mutex
// directly — the acquisition primitives (Acquire, Close, ...).
func directLockers(ms []*method) map[string]bool {
	out := make(map[string]bool, len(ms))
	for _, m := range ms {
		if m.directLock {
			out[m.decl.Name.Name] = true
		}
	}
	return out
}

// lockTakingSet computes, to a fixpoint, the methods that take the
// lock: directly, or by calling a lock-taking sibling (the
// convenience-wrapper pattern).
func lockTakingSet(ms []*method) map[string]bool {
	taking := directLockers(ms)
	for changed := true; changed; {
		changed = false
		for _, m := range ms {
			name := m.decl.Name.Name
			if taking[name] {
				continue
			}
			for callee := range m.calls {
				if taking[callee] {
					taking[name] = true
					changed = true
					break
				}
			}
		}
	}
	return taking
}
