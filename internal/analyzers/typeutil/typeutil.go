// Package typeutil holds the small type-matching helpers shared by the
// statlint analyzers: resolving called functions, recognizing the
// statsize types the memory-model invariants are phrased in terms of
// (dist.Arena, dist.Keeper, ssta.Scratch, graph.NodeID, ...), and
// unwrapping expressions.
package typeutil

import (
	"go/ast"
	"go/types"
)

// Import paths of the packages whose types the invariants name.
const (
	DistPath    = "statsize/internal/dist"
	SSTAPath    = "statsize/internal/ssta"
	GraphPath   = "statsize/internal/graph"
	ParPath     = "statsize/internal/par"
	SessionPath = "statsize/internal/session"
	ServerPath  = "statsize/internal/server"
	RootPath    = "statsize"
)

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// NamedPath returns the package path and name of t if it is a defined
// (named) type, unwrapping one level of pointer first; "" otherwise.
func NamedPath(t types.Type) (path, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// Is reports whether t (possibly behind one pointer) is the named type
// path.name.
func Is(t types.Type, path, name string) bool {
	p, n := NamedPath(t)
	return p == path && n == name
}

// IsPtrTo reports whether t is exactly *path.name.
func IsPtrTo(t types.Type, path, name string) bool {
	p, ok := t.(*types.Pointer)
	return ok && Is(p.Elem(), path, name)
}

// SliceBase strips any number of slice/array layers off t.
func SliceBase(t types.Type) types.Type {
	for {
		switch u := t.Underlying().(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return t
		}
	}
}

// Callee resolves the function or method object a call invokes, or nil
// for calls through function values, built-ins and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Signature returns the signature a call invokes, covering function
// values and method values as well as declared functions; nil for
// built-ins and type conversions.
func Signature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	return Is(t, "context", "Context")
}

// IsNilIdent reports whether e is the predeclared nil.
func IsNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
