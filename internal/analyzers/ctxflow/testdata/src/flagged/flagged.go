// Package flagged seeds the ctxflow violation classes: context-taking
// functions that loop at propagation scale without observing their
// context.
package flagged

import (
	"context"

	"statsize/internal/graph"
)

func pending(n int) bool { return n > 0 }
func step(n int) int     { return n - 1 }

// Dropped takes a context and loops but never touches ctx at all.
func Dropped(ctx context.Context, nodes []graph.NodeID) int { // want `Dropped accepts a context but never observes it`
	total := 0
	for _, n := range nodes {
		total += int(n)
	}
	return total
}

// Unchecked observes ctx once up front, but neither propagation-scale
// loop below is covered by a check or an observing ancestor.
func Unchecked(ctx context.Context, nodes []graph.NodeID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sum := 0
	for _, n := range nodes { // want `loop over timing-graph nodes/edges in Unchecked does not observe`
		sum += int(n)
	}
	for pending(sum) { // want `unbounded loop in Unchecked does not observe`
		sum = step(sum)
	}
	return nil
}

type front struct{ dead bool }

func (f *front) propagateOneLevel() {}

// HintFront is a miniature of the acceleratedIteration hint-front loop
// this analyzer caught in the real tree (fixed in the same change that
// introduced the check): a run-to-the-sink drain with no cancellation
// check, outside the heap loop's strided ctx.Err.
func HintFront(ctx context.Context, f *front) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for !f.dead { // want `unbounded loop in HintFront does not observe`
		f.propagateOneLevel()
	}
	return nil
}
