// Package clean is the silent twin of the flagged corpus: every
// propagation-scale loop observes its context one way or another, so
// ctxflow must not report here.
package clean

import (
	"context"

	"statsize/internal/graph"
)

const stride = 64

func visit(ctx context.Context, n graph.NodeID) { _ = ctx; _ = n }
func step(n int) int                            { return n - 1 }

// Strided is the cancelCheckStride pattern: a periodic ctx.Err check
// inside the loop.
func Strided(ctx context.Context, nodes []graph.NodeID) error {
	for i, n := range nodes {
		if i%stride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		_ = n
	}
	return nil
}

// Ancestor: the level loop checks cancellation, covering the per-node
// loop nested inside it.
func Ancestor(ctx context.Context, levels [][]graph.NodeID) error {
	for _, lvl := range levels {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, n := range lvl {
			_ = n
		}
	}
	return nil
}

// Forwarded: passing ctx to a callee counts — every ctx-taking callee
// in this codebase checks cancellation itself.
func Forwarded(ctx context.Context, nodes []graph.NodeID) {
	for _, n := range nodes {
		visit(ctx, n)
	}
}

// Bounded: 3-clause index loops are below the propagation-scale bar.
func Bounded(ctx context.Context, nodes []graph.NodeID) int {
	if err := ctx.Err(); err != nil {
		return 0
	}
	total := 0
	for i := 0; i < len(nodes); i++ {
		total = step(total)
	}
	return total
}
