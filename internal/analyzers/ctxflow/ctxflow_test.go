package ctxflow

import (
	"testing"

	"statsize/internal/analyzers/analyzertest"
)

func TestCtxFlow(t *testing.T) {
	analyzertest.Run(t, Analyzer, "flagged", "clean")
}
