// Package ctxflow implements the statlint check for the Engine's
// partial-result cancellation contract: a function that accepts a
// context.Context and then iterates at propagation scale must actually
// observe that context, so cancellation latency stays bounded by one
// unit of work (the cancelCheckStride pattern in ssta and montecarlo).
//
// Two findings:
//
//   - dropped context: the function has a named context parameter and
//     contains loops, but the context is never used at all — neither
//     checked (ctx.Err, ctx.Done) nor forwarded to a callee.
//   - unchecked loop: a loop at propagation scale neither observes the
//     context itself nor sits inside a loop that does. "Propagation
//     scale" means the loop ranges over timing-graph node or edge
//     collections (graph.NodeID / graph.EdgeID elements, including the
//     level buckets), or is an unbounded for / for-cond loop that
//     performs calls.
//
// Deliberately out of scope: functions without a context parameter.
// The cancellation atom of this codebase is the per-node kernel
// evaluation — computeArrival and below are intentionally context-free,
// and their callers carry the context — so requiring a ctx parameter
// of everything that loops would mostly flag the atoms themselves.
// Bounded 3-clause loops (for i := 0; i < n; i++) are likewise exempt:
// the sample loops that matter already observe their context, and the
// remainder are small index loops. A loop observes the context when
// any identifier inside it (including inside closures it builds, and
// in its condition) refers to a context parameter — passing ctx to a
// callee counts, since every ctx-taking callee in this codebase checks
// cancellation itself.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"statsize/internal/analyzers/analysis"
	"statsize/internal/analyzers/typeutil"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "functions that accept a context and loop at propagation scale must observe cancellation",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Name.Name, fn.Type, fn.Body, fn.Name.Pos())
				}
			case *ast.FuncLit:
				checkFunc(pass, "func literal", fn.Type, fn.Body, fn.Pos())
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, name string, ftype *ast.FuncType, body *ast.BlockStmt, pos token.Pos) {
	ctxs := ctxParams(pass, ftype)
	if len(ctxs) == 0 {
		return
	}
	uses := func(n ast.Node) bool { return usesCtx(pass, n, ctxs) }
	if !uses(body) {
		if hasOwnLoop(body) {
			pass.Reportf(pos, "%s accepts a context but never observes it while looping: check ctx.Err (or pass ctx on) so cancellation can interrupt the iteration", name)
		}
		return
	}
	// Walk the function's own loops (closures are checked as functions
	// of their own), tracking whether an enclosing loop already
	// observes the context.
	var visit func(n ast.Node, covered bool)
	visit = func(n ast.Node, covered bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			switch l := c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt:
				observed := covered || uses(l)
				if !observed && substantial(pass, l) {
					pass.Reportf(l.Pos(), "%s in %s does not observe the function's context: no enclosing or local ctx.Err/ctx.Done check or ctx-forwarding call bounds cancellation latency", loopKind(l), name)
				}
				visit(l, observed)
				return false
			}
			return true
		})
	}
	visit(body, false)
}

// ctxParams collects the named, non-blank context.Context parameters.
func ctxParams(pass *analysis.Pass, ftype *ast.FuncType) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	if ftype.Params == nil {
		return out
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := pass.Info.Defs[name].(*types.Var); ok && typeutil.IsContext(v.Type()) {
				out[v] = true
			}
		}
	}
	return out
}

// usesCtx reports whether any identifier under n refers to one of the
// context parameters. Closures are included: a loop that builds a
// ctx-checking closure or passes ctx to par.Run observes the context.
func usesCtx(pass *analysis.Pass, n ast.Node, ctxs map[*types.Var]bool) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[id].(*types.Var); ok && ctxs[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasOwnLoop reports whether body contains a loop outside any nested
// function literal.
func hasOwnLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// substantial reports whether a loop is at propagation scale: a range
// over timing-graph node/edge collections, or an unbounded for loop
// that performs calls.
func substantial(pass *analysis.Pass, loop ast.Node) bool {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		tv, ok := pass.Info.Types[l.X]
		if !ok || tv.Type == nil {
			return false
		}
		switch u := tv.Type.Underlying().(type) {
		case *types.Slice, *types.Array:
			return isGraphID(typeutil.SliceBase(tv.Type))
		case *types.Map:
			return isGraphID(typeutil.SliceBase(u.Key())) || isGraphID(typeutil.SliceBase(u.Elem()))
		}
		return false
	case *ast.ForStmt:
		if l.Init != nil || l.Post != nil {
			return false // bounded 3-clause loop
		}
		hasCall := false
		ast.Inspect(l.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				hasCall = true
			}
			return !hasCall
		})
		return hasCall
	}
	return false
}

func isGraphID(t types.Type) bool {
	return typeutil.Is(t, typeutil.GraphPath, "NodeID") || typeutil.Is(t, typeutil.GraphPath, "EdgeID")
}

func loopKind(loop ast.Node) string {
	if _, ok := loop.(*ast.RangeStmt); ok {
		return "loop over timing-graph nodes/edges"
	}
	return "unbounded loop"
}
