// Package stale carries a suppression that covers no finding: the
// waiver audit must turn it into a statlint/suppressaudit finding and
// fail the run.
package stale

//lint:allow statlint/ctxflow the loop this once excused was rewritten
func Quiet() int { return 1 }
