// Package fixme seeds fixable findings for the -fix driver tests: a
// leaked lease and an unbounded HTTP body read, each carrying a
// suggested fix that statlint -fix must apply to leave a clean tree.
package fixme

import (
	"io"
	"net/http"

	"statsize/internal/server"
)

// LeakyCount acquires a lease and never releases it on any path.
func LeakyCount(m *server.Manager, id string) (int, error) {
	lease, err := m.Acquire(id)
	if err != nil {
		return 0, err
	}
	return lease.NumGates(), nil
}

// SlurpBody buffers a request body with no cap.
func SlurpBody(r *http.Request) ([]byte, error) {
	return io.ReadAll(r.Body)
}
