package driver_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"statsize/internal/analyzers/driver"
)

// copyCorpus clones testdata/src/<name> into a fresh temp dir so fix
// mode can rewrite files without dirtying the checked-in corpus.
func copyCorpus(t *testing.T, name string) string {
	t.Helper()
	src := filepath.Join("testdata", "src", name)
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func run(t *testing.T, opts driver.Options) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	opts.Stdout = &out
	opts.Stderr = &errb
	code := driver.Run(opts)
	return code, out.String(), errb.String()
}

func TestFindingsExitOne(t *testing.T) {
	dir := copyCorpus(t, "fixme")
	code, out, errb := run(t, driver.Options{LoadDirs: []string{dir}})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{"[leaseguard]", "[boundeddecode]"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestFixProducesCleanTree(t *testing.T) {
	dir := copyCorpus(t, "fixme")
	code, out, errb := run(t, driver.Options{LoadDirs: []string{dir}, Fix: true})
	if code != 0 {
		t.Fatalf("fix run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "applied 2 fix(es)") {
		t.Errorf("fix run should report 2 applied fixes:\n%s", out)
	}

	// The fixed source must actually carry the repairs, not just quiet
	// the analyzers.
	data, err := os.ReadFile(filepath.Join(dir, "fixme.go"))
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	if !strings.Contains(src, "defer lease.Release()") {
		t.Errorf("fixed source missing lease release:\n%s", src)
	}
	if !strings.Contains(src, "io.LimitReader(r.Body, 1<<20)") {
		t.Errorf("fixed source missing bounded reader:\n%s", src)
	}

	// Idempotence: a second -fix run finds nothing to apply and stays
	// clean.
	code, out, errb = run(t, driver.Options{LoadDirs: []string{dir}, Fix: true})
	if code != 0 {
		t.Fatalf("second fix run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if strings.Contains(out, "applied") {
		t.Errorf("second fix run should be a no-op:\n%s", out)
	}
}

func TestJSONReportSchema(t *testing.T) {
	dir := copyCorpus(t, "fixme")
	jsonPath := filepath.Join(t.TempDir(), "statlint.json")
	code, out, errb := run(t, driver.Options{LoadDirs: []string{dir}, JSONPath: jsonPath})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep driver.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, data)
	}
	if rep.Version != 1 || rep.Tool != "statlint" {
		t.Errorf("header = (%d, %q), want (1, statlint)", rep.Version, rep.Tool)
	}
	if len(rep.Findings) < 2 {
		t.Fatalf("findings = %d, want >= 2:\n%s", len(rep.Findings), data)
	}
	byAnalyzer := map[string]bool{}
	for _, f := range rep.Findings {
		byAnalyzer[f.Analyzer] = true
		if f.File == "" || !strings.HasSuffix(f.File, ".go") {
			t.Errorf("finding has bad file %q", f.File)
		}
		if f.Line <= 0 || f.Column <= 0 {
			t.Errorf("finding has bad position %d:%d", f.Line, f.Column)
		}
		if f.Message == "" {
			t.Errorf("finding has empty message")
		}
		if !f.Fixable {
			t.Errorf("fixme finding %s should be fixable", f.Analyzer)
		}
	}
	if !byAnalyzer["leaseguard"] || !byAnalyzer["boundeddecode"] {
		t.Errorf("findings missing expected analyzers: %v", byAnalyzer)
	}
	if len(rep.Fixed) != 0 {
		t.Errorf("non-fix run should record no fixed findings, got %d", len(rep.Fixed))
	}
}

func TestJSONReportRecordsFixed(t *testing.T) {
	dir := copyCorpus(t, "fixme")
	jsonPath := filepath.Join(t.TempDir(), "statlint.json")
	code, out, errb := run(t, driver.Options{LoadDirs: []string{dir}, Fix: true, JSONPath: jsonPath})
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep driver.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("post-fix findings = %d, want 0:\n%s", len(rep.Findings), data)
	}
	// The findings array must be present even when empty — CI consumers
	// index into it unconditionally.
	if !strings.Contains(string(data), `"findings"`) {
		t.Errorf("report omits empty findings array:\n%s", data)
	}
	if len(rep.Fixed) != 2 {
		t.Errorf("fixed = %d, want 2:\n%s", len(rep.Fixed), data)
	}
}

func TestStaleSuppressionFailsRun(t *testing.T) {
	dir := copyCorpus(t, "stale")
	code, out, errb := run(t, driver.Options{LoadDirs: []string{dir}})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "stale suppression") || !strings.Contains(out, "suppressaudit") {
		t.Errorf("stdout missing stale-suppression finding:\n%s", out)
	}
}
