// Package driver is the statlint engine behind cmd/statlint: it loads
// packages, runs the analyzer suite, and turns the surviving
// diagnostics into an exit code, optionally applying suggested fixes
// and emitting a machine-readable findings report for CI.
//
// The exit-code contract is the gate's API:
//
//	0  clean tree (after fixes, when -fix is on)
//	1  findings (including stale-suppression audit findings) or go vet
//	   failures
//	2  operational failure: load/type-check errors, invalid
//	   suppressions, unwritable reports — the tree's state could not be
//	   certified either way
//
// Fix mode is apply-and-verify: after writing the suggested edits it
// reloads everything from disk with a fresh loader and re-runs the
// whole suite, so the exit code always describes the tree as it now
// is. A fix that fails to silence its finding therefore still fails
// the run — there is no way to "fix" a tree into a green exit without
// the analyzers agreeing.
package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"statsize/internal/analyzers"
	"statsize/internal/analyzers/analysis"
)

// Options configures one driver run.
type Options struct {
	Dir      string   // loader working directory ("" = process cwd)
	Patterns []string // go list patterns; default ./...
	LoadDirs []string // load these directories as synthetic packages instead of Patterns (corpus/fix testing)
	Fix      bool     // apply suggested fixes, then re-run to verify
	JSONPath string   // write a Report here ("" = off)
	Vet      bool     // also run `go vet` over Patterns (ignored with LoadDirs)
	Stdout   io.Writer
	Stderr   io.Writer
}

// Report is the machine-readable run summary, a stable wire contract
// for CI (version bumps on any breaking change).
type Report struct {
	Version  int       `json:"version"`
	Tool     string    `json:"tool"`
	Findings []Finding `json:"findings"`
	Fixed    []Finding `json:"fixed,omitempty"`
}

// Finding is one diagnostic with its position resolved relative to the
// module root when the file lives under it.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable,omitempty"`
}

// Run executes the suite under opts and returns the process exit code.
func Run(opts Options) int {
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	suite := analyzers.All()

	diags, err := loadAndRun(opts, suite)
	if err != nil {
		fmt.Fprintln(opts.Stderr, "statlint:", err)
		return 2
	}

	var fixed []analysis.Diagnostic
	if opts.Fix {
		applied, files, _, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(opts.Stderr, "statlint:", err)
			return 2
		}
		if len(files) > 0 {
			fmt.Fprintf(opts.Stdout, "statlint -fix: applied %d fix(es) across %d file(s)\n", len(applied), len(files))
			// Verify against the tree as it now is: fresh loader, full
			// re-run. Fixes that missed (or overlapped and were skipped)
			// resurface as findings below.
			diags, err = loadAndRun(opts, suite)
			if err != nil {
				fmt.Fprintln(opts.Stderr, "statlint:", err)
				return 2
			}
			fixed = applied
		}
	}

	for _, d := range diags {
		fmt.Fprintln(opts.Stdout, d)
	}
	if opts.JSONPath != "" {
		if err := writeReport(opts, diags, fixed); err != nil {
			fmt.Fprintln(opts.Stderr, "statlint:", err)
			return 2
		}
	}

	vetFailed := false
	if opts.Vet && len(opts.LoadDirs) == 0 {
		patterns := opts.Patterns
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = opts.Dir
		cmd.Stdout = opts.Stdout
		cmd.Stderr = opts.Stderr
		if err := cmd.Run(); err != nil {
			vetFailed = true
		}
	}

	if len(diags) > 0 || vetFailed {
		return 1
	}
	return 0
}

// loadAndRun loads the requested packages with a fresh loader and runs
// the suite over them.
func loadAndRun(opts Options, suite []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	loader := analysis.NewLoader(opts.Dir)
	var pkgs []*analysis.Package
	if len(opts.LoadDirs) > 0 {
		for i, dir := range opts.LoadDirs {
			pkg, err := loader.LoadDir(dir, fmt.Sprintf("statlint/loaded/%d/%s", i, filepath.Base(dir)))
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	} else {
		patterns := opts.Patterns
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		var err error
		pkgs, err = loader.Load(patterns...)
		if err != nil {
			return nil, err
		}
	}
	return analysis.Run(pkgs, suite)
}

// writeReport renders the JSON findings file.
func writeReport(opts Options, diags, fixed []analysis.Diagnostic) error {
	root, err := analysis.ModuleRoot(opts.Dir)
	if err != nil {
		root = ""
	}
	rep := Report{
		Version:  1,
		Tool:     "statlint",
		Findings: toFindings(diags, root),
		Fixed:    toFindings(fixed, root),
	}
	if rep.Findings == nil {
		rep.Findings = []Finding{} // an empty run still emits a findings array
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(opts.JSONPath, append(data, '\n'), 0o644)
}

// toFindings converts diagnostics, relativizing file paths that live
// under the module root.
func toFindings(diags []analysis.Diagnostic, root string) []Finding {
	var out []Finding
	for _, d := range diags {
		file := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, Finding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
			Fixable:  d.Fix != nil,
		})
	}
	return out
}
