// Package scratchescape implements the statlint check for the first
// rule of DESIGN.md's "Memory model": a *dist.Dist produced by an
// Into-form kernel running on a non-nil *dist.Arena is a scratch view,
// invalidated by the arena's next Reset, and must flow through
// Dist.Persist or Keeper.Persist before being retained anywhere that
// can outlive the reset.
//
// The check is intraprocedural and flow-insensitive. Within each
// function it marks as scratch every variable assigned from a call
// that takes a non-nil *dist.Arena argument and returns a *dist.Dist —
// that covers the dist kernels (ConvolveInto, MaxIndepInto, ...) and
// every statsize helper that threads an arena (computeArrival,
// ArrivalWithOverlayInto, ...). A scratch variable is cleansed if it is
// ever reassigned from a Persist call. It then flags scratch values
// that escape:
//
//   - stored to a struct field, map or slice element, dereferenced
//     pointer, or package-level variable
//   - placed in a composite literal, appended to a slice, or sent on a
//     channel
//   - returned from an exported function or method
//
// Returning scratch from an unexported function is allowed — that is
// how the kernel helpers hand results up to the caller that owns the
// arena — and passing scratch as a call argument is not tracked (the
// callee is assumed to follow the same rules; this is the documented
// false-negative class of a flow-insensitive check). Because the
// cleanse rule is unordered, an escape that happens before a later
// x = x.Persist() reassignment is also missed; persisting into a fresh
// variable keeps the check sound. Package dist itself is exempt: its
// kernels are the constructors whose contract is to return scratch.
package scratchescape

import (
	"go/ast"
	"go/types"

	"statsize/internal/analyzers/analysis"
	"statsize/internal/analyzers/typeutil"
)

// Analyzer is the scratchescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "scratchescape",
	Doc:  "arena-scratch *dist.Dist values must be Persisted before they are retained or cross an exported boundary",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == typeutil.DistPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body, exportedBoundary(fn))
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body, false)
			}
			return true
		})
	}
	return nil
}

// exportedBoundary reports whether returning from fn crosses an
// exported boundary: an exported function, or an exported method on an
// exported type.
func exportedBoundary(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// checkFunc analyzes one function body. Nested function literals are
// skipped here — the Inspect loop in run visits each exactly once.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, exported bool) {
	scratch := collectScratchVars(pass, body)
	isScratch := func(e ast.Expr) bool {
		e = typeutil.Unparen(e)
		if id, ok := e.(*ast.Ident); ok {
			v, _ := pass.Info.Uses[id].(*types.Var)
			return v != nil && scratch[v]
		}
		if call, ok := e.(*ast.CallExpr); ok {
			return isScratchCall(pass, call)
		}
		return false
	}
	walkSkippingFuncLits(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				rhs := rhsFor(st, i)
				if rhs == nil || !isScratch(rhs) {
					continue
				}
				if where := escapingLHS(pass, lhs); where != "" {
					pass.Reportf(rhs.Pos(), "arena-scratch *dist.Dist stored in %s without Persist (the value dies at the next Arena.Reset)", where)
				}
			}
		case *ast.SendStmt:
			if isScratch(st.Value) {
				pass.Reportf(st.Value.Pos(), "arena-scratch *dist.Dist sent on a channel without Persist (the value dies at the next Arena.Reset)")
			}
		case *ast.CallExpr:
			if id, ok := typeutil.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range st.Args[1:] {
						if isScratch(arg) {
							pass.Reportf(arg.Pos(), "arena-scratch *dist.Dist appended to a slice without Persist (the value dies at the next Arena.Reset)")
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range st.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isScratch(v) {
					pass.Reportf(v.Pos(), "arena-scratch *dist.Dist stored in a composite literal without Persist (the value dies at the next Arena.Reset)")
				}
			}
		case *ast.ReturnStmt:
			if !exported {
				return
			}
			for _, res := range st.Results {
				if isScratch(res) {
					pass.Reportf(res.Pos(), "arena-scratch *dist.Dist returned across an exported boundary without Persist")
				}
			}
		}
	})
}

// rhsFor pairs the i-th LHS of an assignment with its RHS expression,
// or nil for the multi-value forms (x, err := f()) — those are handled
// as whole-call assignments in collectScratchVars and cannot
// themselves be escaping stores to compound LHS expressions in Go.
func rhsFor(st *ast.AssignStmt, i int) ast.Expr {
	if len(st.Rhs) == len(st.Lhs) {
		return st.Rhs[i]
	}
	return nil
}

// escapingLHS classifies an assignment target that would retain the
// value beyond the current frame; "" means the store is a plain local
// rebind and safe.
func escapingLHS(pass *analysis.Pass, lhs ast.Expr) string {
	switch l := typeutil.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			return "a struct field"
		}
		// Qualified package identifier (pkg.Var).
		if v, ok := pass.Info.Uses[l.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "a package-level variable"
		}
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.StarExpr:
		return "a dereferenced pointer"
	case *ast.Ident:
		if v, ok := pass.Info.Uses[l].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "a package-level variable"
		}
	}
	return ""
}

// isScratchCall reports whether a call produces arena scratch: its
// signature takes a *dist.Arena, the corresponding argument is not the
// nil literal, and it returns a *dist.Dist.
func isScratchCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sig := typeutil.Signature(pass.Info, call)
	if sig == nil {
		return false
	}
	returnsDist := false
	for i := 0; i < sig.Results().Len(); i++ {
		if typeutil.IsPtrTo(sig.Results().At(i).Type(), typeutil.DistPath, "Dist") {
			returnsDist = true
			break
		}
	}
	if !returnsDist {
		return false
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if !typeutil.IsPtrTo(sig.Params().At(i).Type(), typeutil.DistPath, "Arena") {
			continue
		}
		if !typeutil.IsNilIdent(pass.Info, call.Args[i]) {
			return true
		}
	}
	return false
}

// isPersistCall reports whether a call is Dist.Persist or
// Keeper.Persist — the sanctioned scratch-to-immutable boundary.
func isPersistCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeutil.Callee(pass.Info, call)
	return fn != nil && fn.Name() == "Persist" && fn.Pkg() != nil && fn.Pkg().Path() == typeutil.DistPath
}

// collectScratchVars runs the flow-insensitive marking: a fixpoint over
// assignments propagates scratch-ness from kernel calls through
// variable copies, then every variable that is also reassigned from a
// Persist call is cleansed.
func collectScratchVars(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	scratch := make(map[*types.Var]bool)
	persisted := make(map[*types.Var]bool)
	lhsVar := func(e ast.Expr) *types.Var {
		id, ok := typeutil.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := pass.Info.Defs[id].(*types.Var); ok {
			return v
		}
		v, _ := pass.Info.Uses[id].(*types.Var)
		return v
	}
	// assign records one lhs := rhs pair into the maps; returns whether
	// the scratch set grew (for the fixpoint).
	assign := func(lhs, rhs ast.Expr) bool {
		v := lhsVar(lhs)
		if v == nil || !typeutil.IsPtrTo(v.Type(), typeutil.DistPath, "Dist") {
			return false
		}
		rhs = typeutil.Unparen(rhs)
		if call, ok := rhs.(*ast.CallExpr); ok {
			if isPersistCall(pass, call) {
				persisted[v] = true
				return false
			}
			if isScratchCall(pass, call) && !scratch[v] {
				scratch[v] = true
				return true
			}
			return false
		}
		if id, ok := rhs.(*ast.Ident); ok {
			if src, ok := pass.Info.Uses[id].(*types.Var); ok && scratch[src] && !scratch[v] {
				scratch[v] = true
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		walkSkippingFuncLits(body, func(n ast.Node) {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						if assign(st.Lhs[i], st.Rhs[i]) {
							changed = true
						}
					}
				} else if len(st.Rhs) == 1 {
					// x, err := f(...): mark every *dist.Dist LHS when the
					// call is scratch-producing.
					call, ok := typeutil.Unparen(st.Rhs[0]).(*ast.CallExpr)
					if !ok || !isScratchCall(pass, call) {
						return
					}
					for _, lhs := range st.Lhs {
						if v := lhsVar(lhs); v != nil && typeutil.IsPtrTo(v.Type(), typeutil.DistPath, "Dist") && !scratch[v] {
							scratch[v] = true
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if i < len(st.Values) {
						if assign(name, st.Values[i]) {
							changed = true
						}
					}
				}
			}
		})
	}
	for v := range persisted {
		delete(scratch, v)
	}
	return scratch
}

// walkSkippingFuncLits visits every node of body except subtrees rooted
// at nested function literals, which are analyzed as functions of their
// own.
func walkSkippingFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
