package scratchescape

import (
	"testing"

	"statsize/internal/analyzers/analyzertest"
)

func TestScratchEscape(t *testing.T) {
	analyzertest.Run(t, Analyzer, "flagged", "clean")
}
