// Package flagged seeds one violation per escape route scratchescape
// knows: every arena-scratch distribution below is retained without
// flowing through Persist first.
package flagged

import (
	"statsize/internal/dist"
)

type box struct{ d *dist.Dist }

var latest *dist.Dist

var sink box

func Escapes(ar *dist.Arena, a, b *dist.Dist) *dist.Dist {
	s := dist.MaxIndepInto(ar, a, b)
	var bx box
	bx.d = s // want `stored in a struct field`
	cache := map[int]*dist.Dist{}
	cache[0] = s // want `stored in a map or slice element`
	latest = s   // want `stored in a package-level variable`
	var all []*dist.Dist
	all = append(all, s) // want `appended to a slice`
	_ = all
	_ = box{d: s} // want `stored in a composite literal`
	return s      // want `returned across an exported boundary`
}

func sendsScratch(ar *dist.Arena, a, b *dist.Dist, ch chan *dist.Dist) {
	s := dist.ConvolveInto(ar, a, b)
	ch <- s // want `sent on a channel`
}

// kernelOrErr has the multi-result shape of the ssta helpers: a scratch
// distribution plus an error.
func kernelOrErr(ar *dist.Arena, a, b *dist.Dist) (*dist.Dist, error) {
	return dist.SubConvolveInto(ar, a, b), nil
}

// Scratch-ness propagates through tuple assignment and plain copies.
func tupleAndCopy(ar *dist.Arena, a, b *dist.Dist) error {
	s, err := kernelOrErr(ar, a, b)
	if err != nil {
		return err
	}
	u := s
	sink.d = u // want `stored in a struct field`
	return nil
}

// Kernel calls escape directly too, without an intermediate variable.
func DirectReturn(ar *dist.Arena, d *dist.Dist) *dist.Dist {
	return dist.NegInto(ar, d) // want `returned across an exported boundary`
}
