// Package clean is the silent twin of the flagged corpus: every
// retention below follows the memory model, so scratchescape must not
// report anything here.
package clean

import (
	"statsize/internal/dist"
)

type box struct{ d *dist.Dist }

var latest *dist.Dist

// Persisting into a fresh variable is the sanctioned retention path;
// Keeper.Persist on a kernel call composes the same way.
func Retains(ar *dist.Arena, k *dist.Keeper, a, b *dist.Dist) *dist.Dist {
	s := dist.MaxIndepInto(ar, a, b)
	p := s.Persist()
	var bx box
	bx.d = p
	latest = k.Persist(dist.ConvolveInto(ar, a, b))
	return p
}

// The allocating wrappers return immutable distributions; so does an
// Into kernel handed an explicitly nil arena.
func Allocates(a, b *dist.Dist) *dist.Dist {
	s := dist.MaxIndep(a, b)
	latest = s
	return dist.SubConvolveInto(nil, a, b)
}

// Unexported helpers may hand scratch up to the arena-owning caller —
// that is how the kernel pipeline composes.
func helper(ar *dist.Arena, a, b *dist.Dist) *dist.Dist {
	return dist.MinIndepInto(ar, a, b)
}

// Persist-in-place: a variable reassigned from its own Persist call is
// cleansed (the ComputeRequired accumulator pattern).
func InPlace(ar *dist.Arena, a, b *dist.Dist) *dist.Dist {
	acc := dist.ConvolveInto(ar, a, b)
	acc = acc.Persist()
	latest = acc
	return acc
}
