package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 1. Results", "circuit", "nodes", "impr %")
	tb.AddRow("c432", 214, 10.03)
	tb.AddRow("c7552", 2202, 6.17)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1. Results", "circuit", "c432", "2202", "10", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Columns align: header row and data rows share the position of the
	// second column.
	lines := strings.Split(out, "\n")
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "nodes") != strings.Index(row, "214") {
		t.Errorf("columns misaligned:\n%s\n%s", hdr, row)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRowStrings("x,y", `quote"d`)
	tb.AddRow(1, 2)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\n\"x,y\",\"quote\"\"d\"\n1,2\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestPlotRender(t *testing.T) {
	p := NewPlot("Figure 10", "delay (ns)", "total gate size")
	p.Add(Series{Name: "statistical", Marker: 'o', X: []float64{1, 2, 3}, Y: []float64{9, 8.5, 8}})
	p.Add(Series{Name: "deterministic", Marker: 'x', X: []float64{1.5, 2.5, 3.5}, Y: []float64{9, 8.6, 8.2}})
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 10", "delay (ns)", "statistical", "o", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q", want)
		}
	}
	// Corner points must land on the canvas: leftmost x at min, top y at max.
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Error("markers missing from canvas")
	}
}

func TestPlotDegenerate(t *testing.T) {
	p := NewPlot("flat", "x", "y")
	p.Add(Series{Name: "s", Marker: '*', X: []float64{1, 1}, Y: []float64{2, 2}})
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	empty := NewPlot("none", "x", "y")
	if err := empty.Render(&b); err == nil {
		t.Error("empty plot should error")
	}
	tiny := NewPlot("tiny", "x", "y")
	tiny.Width, tiny.Height = 2, 2
	tiny.Add(Series{Name: "s", Marker: '*', X: []float64{1}, Y: []float64{2}})
	if err := tiny.Render(&b); err == nil {
		t.Error("undersized canvas should error")
	}
}
