// Package report renders experiment results as fixed-width text tables,
// CSV, and ASCII line plots — the presentation layer for regenerating
// the paper's tables and figures on a terminal.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table with a title and column
// headers.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowStrings appends a pre-formatted row.
func (t *Table) AddRowStrings(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV emits the table as CSV (headers first). Cells containing
// commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one named curve for an ASCII plot.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Plot renders one or more series on a shared-axis ASCII canvas. It is
// deliberately crude — enough to eyeball the area-delay curves of
// Figure 10 and the path walls of Figure 1 in a terminal; the CSV
// emitters carry the exact numbers.
type Plot struct {
	Title         string
	XLabel        string
	YLabel        string
	Width, Height int
	series        []Series
}

// NewPlot creates a plot with a default 72x20 canvas.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// Add appends a series.
func (p *Plot) Add(s Series) { p.series = append(p.series, s) }

// Render writes the plot.
func (p *Plot) Render(w io.Writer) error {
	if p.Width < 8 || p.Height < 4 {
		return fmt.Errorf("report: canvas %dx%d too small", p.Width, p.Height)
	}
	minX, maxX, minY, maxY, any := bounds(p.series)
	if !any {
		return fmt.Errorf("report: plot %q has no points", p.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, p.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", p.Width))
	}
	for _, s := range p.series {
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(p.Width-1))
			r := p.Height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(p.Height-1))
			if c >= 0 && c < p.Width && r >= 0 && r < p.Height {
				grid[r][c] = s.Marker
			}
		}
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title + "\n")
	}
	b.WriteString(fmt.Sprintf("%s: %.4g .. %.4g\n", p.YLabel, minY, maxY))
	for _, row := range grid {
		b.WriteString("|" + string(row) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", p.Width) + "\n")
	b.WriteString(fmt.Sprintf("%s: %.4g .. %.4g\n", p.XLabel, minX, maxX))
	for _, s := range p.series {
		b.WriteString(fmt.Sprintf("  %c %s\n", s.Marker, s.Name))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func bounds(series []Series) (minX, maxX, minY, maxY float64, any bool) {
	for _, s := range series {
		for i := range s.X {
			if !any {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				any = true
				continue
			}
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	return
}
