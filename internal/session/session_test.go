package session

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/netlist"
	"statsize/internal/ssta"
)

// pct is a local p-quantile objective (core's Percentile aliases the
// same interface; the session package must not depend on core).
type pct float64

func (p pct) Eval(s *dist.Dist) float64 { return s.Percentile(float64(p)) }
func (p pct) String() string            { return fmt.Sprintf("p%g", 100*float64(p)) }

func open(t *testing.T) *Session {
	t.Helper()
	lib := cell.Default180nm()
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(context.Background(), d, d.SuggestDT(500), pct(0.99), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOpenValidation(t *testing.T) {
	lib := cell.Default180nm()
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(context.Background(), d, d.SuggestDT(500), nil, 0); err == nil {
		t.Error("nil objective accepted")
	}
	if _, err := Open(context.Background(), d, -1, pct(0.99), 0); err == nil {
		t.Error("negative grid accepted")
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Open(canceled, d, d.SuggestDT(500), pct(0.99), 0); !errors.Is(err, context.Canceled) {
		t.Errorf("open with canceled ctx: %v", err)
	}
}

func TestTxLifecycle(t *testing.T) {
	s := open(t)
	ctx := context.Background()

	tx, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	objBefore := tx.Objective()
	depth := tx.Checkpoint()
	if depth != 1 {
		t.Fatalf("depth %d", depth)
	}
	rs, err := tx.Resize(ctx, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.OldWidth != tx.Design().Lib.WMin || rs.NewWidth != 2 {
		t.Errorf("resize widths %+v", rs)
	}
	if rs.NodesRecomputed <= 0 || rs.NodesRecomputed > rs.FullPassNodes {
		t.Errorf("implausible recompute count %d", rs.NodesRecomputed)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if tx.Objective() != objBefore {
		t.Error("rollback did not restore the objective")
	}
	if err := tx.Rollback(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err %v, want ErrNoCheckpoint", err)
	}
	tx.Release()

	// The session is usable again after Release.
	if _, err := s.Objective(); err != nil {
		t.Fatal(err)
	}
}

func TestWhatIfDoesNotCommit(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	sink0, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	// Not every gate's perturbation reaches the sink (that pruning is
	// the point), but at least one c17 gate must show a positive exact
	// sensitivity.
	numGates, err := s.NumGates()
	if err != nil {
		t.Fatal(err)
	}
	bestSens := 0.0
	for g := netlist.GateID(0); int(g) < numGates; g++ {
		r, err := s.WhatIf(ctx, g, 2)
		if err != nil {
			t.Fatal(err)
		}
		if r.Sensitivity > bestSens {
			bestSens = r.Sensitivity
		}
		if r.NodesVisited <= 0 {
			t.Errorf("gate %d: visited %d nodes", g, r.NodesVisited)
		}
	}
	if bestSens <= 0 {
		t.Error("no c17 gate has positive what-if sensitivity")
	}
	sink1, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	if sink0 != sink1 {
		t.Error("WhatIf mutated the analysis")
	}
	if w, _ := s.Width(0); w != s.tx.Design().Lib.WMin {
		t.Error("WhatIf mutated the design")
	}
	// Clamped width: sensitivity denominator uses the applied width.
	r2, err := s.WhatIf(ctx, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Width != s.tx.Design().Lib.WMax {
		t.Errorf("width %v not clamped to WMax", r2.Width)
	}
	// Resizing to the current width is a zero-sensitivity no-op.
	r3, err := s.WhatIf(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Sensitivity != 0 || r3.Delta != 0 {
		t.Errorf("no-op what-if reported %+v", r3)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	if _, err := s.WhatIf(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resize(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Slack(ctx, 1); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := Stats{
		Resizes:            1,
		NodesRecomputed:    st.NodesRecomputed, // value checked below
		LastResizeNodes:    st.LastResizeNodes,
		WhatIfs:            1,
		WhatIfNodesVisited: st.WhatIfNodesVisited,
		RequiredPasses:     1,
		Checkpoints:        1,
		Rollbacks:          1,
		TotalNodes:         st.TotalNodes,
	}
	if st != want {
		t.Errorf("stats %+v, want %+v", st, want)
	}
	if st.NodesRecomputed <= 0 || st.WhatIfNodesVisited <= 0 || st.TotalNodes <= 0 {
		t.Errorf("zero counters in %+v", st)
	}
}

func TestDeadlineControlsSlack(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	// A generous deadline gives near-zero violation probability; an
	// impossible one gives certainty.
	if err := s.SetDeadline(1e6); err != nil {
		t.Fatal(err)
	}
	c, err := s.Criticality(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("criticality %v with an infinite deadline", c)
	}
	if err := s.SetDeadline(-1e6); err != nil {
		t.Fatal(err)
	}
	c, err = s.Criticality(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c < 1-1e-9 {
		t.Errorf("criticality %v with an impossible deadline, want ~1", c)
	}
}

// TestRollbackRestoresDeadline: the deadline setting is session state
// and must travel with checkpoints — otherwise a rollback could serve a
// restored required-time cache against a deadline configured later.
func TestRollbackRestoresDeadline(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	if err := s.SetDeadline(-1e6); err != nil { // impossible: criticality 1
		t.Fatal(err)
	}
	if c, err := s.Criticality(ctx, 0); err != nil || c < 1-1e-9 {
		t.Fatalf("criticality %v err %v at impossible deadline", c, err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDeadline(1e6); err != nil { // generous: criticality 0
		t.Fatal(err)
	}
	if c, err := s.Criticality(ctx, 0); err != nil || c != 0 {
		t.Fatalf("criticality %v err %v at generous deadline", c, err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Back at the checkpoint, the impossible deadline applies again.
	if c, err := s.Criticality(ctx, 0); err != nil || c < 1-1e-9 {
		t.Fatalf("criticality %v err %v after rollback, want ~1 (deadline not restored)", c, err)
	}
}

func TestReanalyzeResync(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	tx, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Release()
	// Mutate the design behind the analysis's back (what a legacy
	// optimizer does), then resync.
	tx.Design().SetWidth(1, 3)
	if err := tx.Reanalyze(ctx); err != nil {
		t.Fatal(err)
	}
	fresh, err := ssta.Analyze(ctx, tx.Design(), tx.Analysis().DT)
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(tx.Analysis().SinkDist(), fresh.SinkDist(), 0) {
		t.Error("Reanalyze did not resync the analysis")
	}
	if tx.Stats().FullReanalyses != 1 {
		t.Errorf("FullReanalyses = %d", tx.Stats().FullReanalyses)
	}
}

// TestAccessorsLockAndCheckClosed: NumGates, DT and ObjectiveName must
// behave like every other accessor — serialize on the session lock and
// fail with ErrClosed instead of silently reading freed state.
func TestAccessorsLockAndCheckClosed(t *testing.T) {
	s := open(t)
	if n, err := s.NumGates(); err != nil || n != 6 {
		t.Errorf("NumGates = %d, %v; want 6 (c17)", n, err)
	}
	if dt, err := s.DT(); err != nil || dt <= 0 {
		t.Errorf("DT = %v, %v; want positive", dt, err)
	}
	if name, err := s.ObjectiveName(); err != nil || name != "p99" {
		t.Errorf("ObjectiveName = %q, %v; want p99", name, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NumGates(); !errors.Is(err, ErrClosed) {
		t.Errorf("NumGates after Close: %v, want ErrClosed", err)
	}
	if _, err := s.DT(); !errors.Is(err, ErrClosed) {
		t.Errorf("DT after Close: %v, want ErrClosed", err)
	}
	if _, err := s.ObjectiveName(); !errors.Is(err, ErrClosed) {
		t.Errorf("ObjectiveName after Close: %v, want ErrClosed", err)
	}
	if _, err := s.WhatIfBatch(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("WhatIfBatch after Close: %v, want ErrClosed", err)
	}
}

// TestWhatIfBatchValidation: an invalid candidate fails the whole batch
// deterministically (naming the candidate position) before anything is
// evaluated, and a canceled context fails without evaluation.
func TestWhatIfBatchValidation(t *testing.T) {
	s := open(t)
	ctx := context.Background()
	if _, err := s.WhatIfBatch(ctx, []Candidate{{Gate: 0, Width: 2}, {Gate: 999, Width: 2}}); err == nil {
		t.Error("out-of-range candidate accepted")
	} else if want := "candidate 1"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name %q", err, want)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.WhatIfBatch(canceled, []Candidate{{Gate: 0, Width: 2}}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled batch: %v, want context.Canceled", err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WhatIfs != 0 {
		t.Errorf("failed batches must not count: stats report %d what-ifs", st.WhatIfs)
	}
	// An empty batch succeeds with no results and no accounting.
	res, err := s.WhatIfBatch(ctx, nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: %v results, err %v", res, err)
	}
}
