// Package session implements the stateful incremental-timing abstraction
// the public API is built around: a Session owns one design together
// with a live SSTA analysis and keeps the two consistent across queries
// and mutations.
//
// The paper's contribution is *incremental* statistical timing — bounded
// perturbation fronts that avoid a full SSTA re-propagation per
// candidate move. A Session is that machinery promoted to a first-class
// object:
//
//   - Queries: sink distribution, percentiles, per-gate arrival, and the
//     backward required-time pass that makes statistical slack and gate
//     criticality O(1) lookups.
//   - Mutations: Resize commits a width change through the incremental
//     recompute (reporting how many nodes were touched versus a full
//     pass), WhatIf measures the exact objective sensitivity of a
//     candidate resize via perturbation propagation without committing
//     anything — WhatIfBatch fans a whole candidate set out across the
//     session's worker pool under one lock acquisition, which the
//     mutation-free evaluation contract (see DESIGN.md) makes safe —
//     and Checkpoint/Rollback give transactional sizing.
//   - Optimizers: the sizing strategies in package core drive a Session
//     instead of owning their own analysis loop, so every strategy gets
//     incremental commits, cancellation and stats accounting for free.
//
// Every exported Session method locks the session; concurrent calls from
// multiple goroutines serialize. Multi-step operations (an optimizer
// run, a query-then-resize decision that must not interleave) take the
// lock once with Acquire and work through the returned Tx.
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/netlist"
	"statsize/internal/par"
	"statsize/internal/ssta"
)

// ErrClosed is returned by every operation on a closed session.
var ErrClosed = errors.New("session: use of closed session")

// ErrNoCheckpoint is returned by Rollback when no checkpoint is pending.
var ErrNoCheckpoint = errors.New("session: rollback without a matching checkpoint")

// Objective maps the sink distribution to the scalar being minimized.
// It is structurally identical to core.Objective (core aliases this
// type), so any objective accepted by the optimizers configures a
// session too.
type Objective interface {
	Eval(sink *dist.Dist) float64
	String() string
}

// Session binds a design to a live incremental SSTA analysis. Open one
// with Open (or Engine.Open at the facade, which hands it a private
// clone), query and mutate it freely, and Close it when done.
type Session struct {
	mu sync.Mutex
	tx Tx

	d       *design.Design
	a       *ssta.Analysis
	obj     Objective
	workers int // worker bound for parallel evaluation (>= 1)
	closed  bool

	// scratch holds one reusable what-if evaluation state per worker:
	// kernel arena plus overlay maps, recycled across WhatIf calls and
	// batches so a warm sweep's steady-state allocations are only what
	// escapes (the persisted sink distributions). Guarded by mu like
	// everything else; worker w of a batch touches only scratch[w].
	scratch []*ssta.Scratch

	// deadline overrides the slack reference; when unset the current
	// objective value of the sink distribution is used.
	deadline    float64
	hasDeadline bool

	marks []mark
	stats Stats

	// counters, when bound, is the engine-wide atomic rollup this
	// session mirrors its activity into (see BindCounters).
	counters *Counters
}

// mark is one checkpoint: paired design and analysis snapshots plus the
// deadline setting the cached required-time pass was computed against.
type mark struct {
	d           *design.State
	a           *ssta.State
	deadline    float64
	hasDeadline bool
}

// Stats is the session's cumulative accounting. TotalNodes is the
// number of arrival computations one full SSTA pass performs, the
// yardstick the incremental counters are measured against.
type Stats struct {
	Resizes            int // committed Resize calls
	NodesRecomputed    int // arrival recomputations across all resizes
	LastResizeNodes    int // arrival recomputations of the latest resize
	WhatIfs            int // what-if evaluations served
	WhatIfNodesVisited int // arrival computations across all what-ifs
	RequiredPasses     int // backward required-time passes run
	Checkpoints        int // checkpoints taken
	Rollbacks          int // rollbacks applied
	FullReanalyses     int // full forward passes (legacy-optimizer resync)
	TotalNodes         int // arrival computations of one full pass
}

// ResizeStats describes one committed resize.
type ResizeStats struct {
	Gate            netlist.GateID
	OldWidth        float64
	NewWidth        float64 // after library clamping
	NodesRecomputed int     // arrival recomputations this commit
	FullPassNodes   int     // what a full SSTA pass would have computed
	Objective       float64 // session objective after the commit
}

// Candidate names one hypothetical resize for WhatIfBatch: gate g at
// width w (clamped to the library range during evaluation, like every
// width the session accepts).
type Candidate struct {
	Gate  netlist.GateID
	Width float64
}

// WhatIfResult describes one uncommitted candidate evaluation.
type WhatIfResult struct {
	Gate         netlist.GateID
	Width        float64 // evaluated width, after library clamping
	Objective    float64 // objective if the resize were committed
	Delta        float64 // current objective minus Objective (improvement)
	Sensitivity  float64 // Delta per unit of width change
	NodesVisited int     // arrival computations the perturbation cost
}

// Open runs the initial full SSTA pass over d on grid dt and returns a
// session owning d. The caller must not touch d afterwards except
// through the session. workers bounds the session's parallel evaluation
// paths — the opening (and any resync) SSTA pass and WhatIfBatch fan
// out across up to that many goroutines; non-positive means one worker
// per logical CPU, 1 forces fully serial evaluation. The worker count
// never changes results: every parallel path is bit-identical to its
// serial reference.
func Open(ctx context.Context, d *design.Design, dt float64, obj Objective, workers int) (*Session, error) {
	if obj == nil {
		return nil, fmt.Errorf("session: nil objective")
	}
	workers = par.Workers(workers)
	a, err := ssta.AnalyzeParallel(ctx, d, dt, workers)
	if err != nil {
		return nil, err
	}
	s := &Session{d: d, a: a, obj: obj, workers: workers}
	s.scratch = make([]*ssta.Scratch, workers)
	for i := range s.scratch {
		s.scratch[i] = ssta.NewScratch()
	}
	s.stats.TotalNodes = d.E.G.NumNodes() - 1 // every node but the source
	s.tx.s = s
	return s, nil
}

// Close marks the session unusable. Further calls (including a second
// Close) return ErrClosed. The design last committed remains valid in
// any Result that references it.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	s.marks = nil
	s.count(func(c *Counters) { c.Closed.Add(1) })
	return nil
}

// Acquire locks the session for a multi-step operation and returns the
// transaction view. Every other session call blocks until Release; the
// caller must not retain the Tx afterwards.
func (s *Session) Acquire() (*Tx, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	return &s.tx, nil
}

// --- single-call convenience wrappers (lock, delegate, unlock) ---

// Resize commits gate g at width w through the incremental recompute.
func (s *Session) Resize(ctx context.Context, g netlist.GateID, w float64) (ResizeStats, error) {
	tx, err := s.Acquire()
	if err != nil {
		return ResizeStats{}, err
	}
	defer tx.Release()
	return tx.Resize(ctx, g, w)
}

// WhatIf evaluates resizing gate g to width w without committing.
func (s *Session) WhatIf(ctx context.Context, g netlist.GateID, w float64) (WhatIfResult, error) {
	tx, err := s.Acquire()
	if err != nil {
		return WhatIfResult{}, err
	}
	defer tx.Release()
	return tx.WhatIf(ctx, g, w)
}

// WhatIfBatch evaluates every candidate resize without committing any
// of them. The session lock is taken once for the whole batch; the
// candidates are then evaluated concurrently against the read-only base
// analysis on the session's worker pool. Results arrive in candidate
// order and are bit-identical to issuing the same WhatIf calls one by
// one.
func (s *Session) WhatIfBatch(ctx context.Context, candidates []Candidate) ([]WhatIfResult, error) {
	tx, err := s.Acquire()
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	return tx.WhatIfBatch(ctx, candidates)
}

// Checkpoint pushes a restore point and returns the checkpoint depth
// after the push.
func (s *Session) Checkpoint() (int, error) {
	tx, err := s.Acquire()
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	return tx.Checkpoint(), nil
}

// Rollback pops the most recent checkpoint and restores the session to
// it. Without a pending checkpoint it fails with ErrNoCheckpoint.
func (s *Session) Rollback() error {
	tx, err := s.Acquire()
	if err != nil {
		return err
	}
	defer tx.Release()
	return tx.Rollback()
}

// CheckpointDepth returns the number of pending checkpoints.
func (s *Session) CheckpointDepth() (int, error) {
	tx, err := s.Acquire()
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	return len(s.marks), nil
}

// SinkDist returns the circuit-delay distribution at the current widths.
func (s *Session) SinkDist() (*dist.Dist, error) {
	tx, err := s.Acquire()
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	return s.a.SinkDist(), nil
}

// Percentile returns the p-quantile of the circuit-delay distribution.
func (s *Session) Percentile(p float64) (float64, error) {
	tx, err := s.Acquire()
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	return s.a.Percentile(p), nil
}

// Objective returns the session objective evaluated on the current sink
// distribution.
func (s *Session) Objective() (float64, error) {
	tx, err := s.Acquire()
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	return s.obj.Eval(s.a.SinkDist()), nil
}

// ObjectiveName describes the session objective (e.g. "p99").
func (s *Session) ObjectiveName() (string, error) {
	tx, err := s.Acquire()
	if err != nil {
		return "", err
	}
	defer tx.Release()
	return s.obj.String(), nil
}

// Arrival returns the arrival-time distribution at gate g's output.
func (s *Session) Arrival(g netlist.GateID) (*dist.Dist, error) {
	tx, err := s.Acquire()
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	if err := s.checkGate(g); err != nil {
		return nil, err
	}
	return s.a.Arrival(s.d.E.NodeOf[s.d.NL.Gate(g).Out]), nil
}

// Required returns the required-time distribution at gate g's output,
// running the backward pass first if no current one is cached.
func (s *Session) Required(ctx context.Context, g netlist.GateID) (*dist.Dist, error) {
	tx, err := s.Acquire()
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	if err := s.checkGate(g); err != nil {
		return nil, err
	}
	if err := tx.EnsureRequired(ctx); err != nil {
		return nil, err
	}
	return s.a.Required(s.d.E.NodeOf[s.d.NL.Gate(g).Out]), nil
}

// Slack returns the statistical slack distribution at gate g's output:
// required minus arrival against the session deadline (by default the
// current objective value at the sink). Mass below zero is the
// probability the gate violates the deadline.
func (s *Session) Slack(ctx context.Context, g netlist.GateID) (*dist.Dist, error) {
	tx, err := s.Acquire()
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	if err := s.checkGate(g); err != nil {
		return nil, err
	}
	if err := tx.EnsureRequired(ctx); err != nil {
		return nil, err
	}
	return s.a.Slack(s.d.E.NodeOf[s.d.NL.Gate(g).Out]), nil
}

// Criticality returns P(slack <= 0) at gate g's output — the SSTA-based
// gate criticality that package montecarlo otherwise estimates by
// sampling. Values near 1 mark gates on statistically critical paths.
func (s *Session) Criticality(ctx context.Context, g netlist.GateID) (float64, error) {
	sl, err := s.Slack(ctx, g)
	if err != nil {
		return 0, err
	}
	return sl.CDF(0), nil
}

// SetDeadline fixes the sink deadline the slack queries measure against
// and invalidates any cached required-time pass.
func (s *Session) SetDeadline(t float64) error {
	tx, err := s.Acquire()
	if err != nil {
		return err
	}
	defer tx.Release()
	s.deadline = t
	s.hasDeadline = true
	s.a.InvalidateRequired()
	return nil
}

// Width returns gate g's current width.
func (s *Session) Width(g netlist.GateID) (float64, error) {
	tx, err := s.Acquire()
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	if err := s.checkGate(g); err != nil {
		return 0, err
	}
	return s.d.Width(g), nil
}

// TotalWidth returns the sum of all gate widths (the paper's "total
// gate size").
func (s *Session) TotalWidth() (float64, error) {
	tx, err := s.Acquire()
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	return s.d.TotalWidth(), nil
}

// NumGates returns the gate count of the underlying netlist. Like every
// other accessor it locks the session and fails on a closed one: the
// netlist itself is immutable, but an unlocked read would race with
// Rollback restoring the design in place, and a silent use-after-Close
// is a bug worth surfacing.
func (s *Session) NumGates() (int, error) {
	tx, err := s.Acquire()
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	return s.d.NL.NumGates(), nil
}

// DT returns the SSTA grid resolution the session was opened at.
func (s *Session) DT() (float64, error) {
	tx, err := s.Acquire()
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	return s.a.DT, nil
}

// Snapshot returns an independent clone of the current design, safe to
// use after the session closes or moves on.
func (s *Session) Snapshot() (*design.Design, error) {
	tx, err := s.Acquire()
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	return s.d.Clone(), nil
}

// Stats returns the cumulative session accounting.
func (s *Session) Stats() (Stats, error) {
	tx, err := s.Acquire()
	if err != nil {
		return Stats{}, err
	}
	defer tx.Release()
	return s.stats, nil
}

// checkGate validates a gate ID against the netlist. Callers hold the
// lock.
func (s *Session) checkGate(g netlist.GateID) error {
	if g < 0 || int(g) >= s.d.NL.NumGates() {
		return fmt.Errorf("session: gate %d out of range [0,%d)", g, s.d.NL.NumGates())
	}
	return nil
}
