package session

import (
	"context"
	"errors"
	"fmt"

	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/netlist"
	"statsize/internal/par"
	"statsize/internal/ssta"
)

// Tx is the unlocked working view of an acquired session: the optimizer
// inner loops and any caller that needs several queries and mutations to
// happen without interleaving work through it. A Tx is only valid
// between Acquire and Release on the goroutine that acquired it.
type Tx struct {
	s *Session
}

// Release unlocks the session. The Tx must not be used afterwards.
func (t *Tx) Release() { t.s.mu.Unlock() }

// Design returns the session-owned design. It remains owned by the
// session: mutate widths only through Resize so the analysis stays
// consistent (the legacy-optimizer adapter is the one sanctioned
// exception, and it must call Reanalyze afterwards).
func (t *Tx) Design() *design.Design { return t.s.d }

// Analysis returns the live incremental analysis.
func (t *Tx) Analysis() *ssta.Analysis { return t.s.a }

// Objective evaluates the session objective on the current sink
// distribution.
func (t *Tx) Objective() float64 { return t.s.obj.Eval(t.s.a.SinkDist()) }

// Resize commits gate g at width w: the design width changes (clamped
// to the library range), the affected delay caches refresh, and the
// arrival perturbation propagates incrementally — recomputing only the
// nodes it actually reaches. On error, including cancellation mid
// commit, the session is restored to its pre-call state, so a resize is
// all-or-nothing.
func (t *Tx) Resize(ctx context.Context, g netlist.GateID, w float64) (ResizeStats, error) {
	s := t.s
	if err := s.checkGate(g); err != nil {
		return ResizeStats{}, err
	}
	if err := ctx.Err(); err != nil {
		return ResizeStats{}, fmt.Errorf("session: resize canceled: %w", err)
	}
	oldW := s.d.Width(g)
	// Pre-image for all-or-nothing semantics: O(nodes) pointer copies,
	// cheap next to the recompute itself.
	dSt, aSt := s.d.Snapshot(), s.a.Snapshot()
	applied := s.d.SetWidth(g, w)
	n, err := s.a.ResizeCommit(ctx, g)
	if err != nil {
		s.d.Restore(dSt)
		s.a.Restore(aSt)
		return ResizeStats{}, err
	}
	s.stats.Resizes++
	s.stats.NodesRecomputed += n
	s.stats.LastResizeNodes = n
	s.count(func(c *Counters) { c.Resizes.Add(1) })
	return ResizeStats{
		Gate:            g,
		OldWidth:        oldW,
		NewWidth:        applied,
		NodesRecomputed: n,
		FullPassNodes:   s.stats.TotalNodes,
		Objective:       t.Objective(),
	}, nil
}

// WhatIf evaluates resizing gate g to width w without committing: the
// exact objective sensitivity from propagating the perturbation through
// the graph with overlays, pruned where the perturbation dies out.
// Neither the design nor the analysis changes.
func (t *Tx) WhatIf(ctx context.Context, g netlist.GateID, w float64) (WhatIfResult, error) {
	s := t.s
	if err := s.checkGate(g); err != nil {
		return WhatIfResult{}, err
	}
	res, err := t.evalWhatIf(ctx, t.Objective(), g, w)
	if err != nil {
		return WhatIfResult{}, err
	}
	s.stats.WhatIfs++
	s.stats.WhatIfNodesVisited += res.NodesVisited
	s.count(func(c *Counters) { c.WhatIfs.Add(1) })
	return res, nil
}

// evalWhatIf is the stats-free evaluation core shared by WhatIf and
// WhatIfBatch: the propagation (whatIfSink) followed by the objective
// summary (finishWhatIf).
func (t *Tx) evalWhatIf(ctx context.Context, base float64, g netlist.GateID, w float64) (WhatIfResult, error) {
	wEff, sink, visited, err := t.whatIfSink(ctx, g, w, t.s.scratch[0])
	if err != nil {
		return WhatIfResult{}, err
	}
	return t.finishWhatIf(base, g, wEff, sink, visited), nil
}

// whatIfSink propagates one candidate's perturbation and returns the
// perturbed sink distribution. It only reads session state (the
// design's widths, the base analysis), so WhatIfBatch may invoke it
// from several goroutines at once while the session lock pins that
// state — each goroutine with its own Scratch. The user-supplied
// Objective is deliberately NOT evaluated here: objectives carry no
// thread-safety requirement, so their Eval runs only on the merging
// goroutine (finishWhatIf).
func (t *Tx) whatIfSink(ctx context.Context, g netlist.GateID, w float64, sc *ssta.Scratch) (float64, *dist.Dist, int, error) {
	s := t.s
	wEff := s.d.Lib.ClampWidth(w)
	sink, visited, err := s.a.WhatIfScratch(ctx, g, wEff, sc)
	if err != nil {
		return 0, nil, visited, err
	}
	return wEff, sink, visited, nil
}

// finishWhatIf summarizes one propagated candidate into a WhatIfResult,
// evaluating the objective on the caller's goroutine.
func (t *Tx) finishWhatIf(base float64, g netlist.GateID, wEff float64, sink *dist.Dist, visited int) WhatIfResult {
	s := t.s
	after := s.obj.Eval(sink)
	res := WhatIfResult{
		Gate:         g,
		Width:        wEff,
		Objective:    after,
		Delta:        base - after,
		NodesVisited: visited,
	}
	if dw := wEff - s.d.Width(g); dw != 0 {
		res.Sensitivity = res.Delta / dw
	}
	return res
}

// WhatIfBatch evaluates all candidates concurrently over the read-only
// base analysis, bounded by the session's worker pool. Every candidate
// gate is validated up front, so an invalid batch fails deterministically
// before any evaluation runs. Results are indexed by candidate position
// — never by completion order — and the objective evaluation and stats
// accounting run in that same order on the calling goroutine (so
// user-supplied objectives are never called concurrently), making a
// batch observationally identical to the equivalent serial WhatIf loop,
// for every worker count. Cancellation mid-batch abandons the remaining
// candidates and reports the context error; no partial results are
// returned (nothing was committed, so nothing needs undoing).
func (t *Tx) WhatIfBatch(ctx context.Context, candidates []Candidate) ([]WhatIfResult, error) {
	s := t.s
	for i, c := range candidates {
		if err := s.checkGate(c.Gate); err != nil {
			return nil, fmt.Errorf("session: what-if batch candidate %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("session: what-if batch canceled: %w", err)
	}
	base := t.Objective()
	type propagated struct {
		wEff    float64
		sink    *dist.Dist
		visited int
	}
	props := make([]propagated, len(candidates))
	err := par.RunIndexed(ctx, s.workers, len(candidates), func(w, i int) error {
		wEff, sink, visited, err := t.whatIfSink(ctx, candidates[i].Gate, candidates[i].Width, s.scratch[w])
		if err != nil {
			return err
		}
		props[i] = propagated{wEff: wEff, sink: sink, visited: visited}
		return nil
	})
	if err != nil {
		// Dress pure cancellation in the batch wrapper; real evaluation
		// errors pass through even when the context also died meanwhile.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("session: what-if batch canceled: %w", err)
		}
		return nil, err
	}
	results := make([]WhatIfResult, len(candidates))
	for i, p := range props {
		results[i] = t.finishWhatIf(base, candidates[i].Gate, p.wEff, p.sink, p.visited)
		s.stats.WhatIfNodesVisited += p.visited
	}
	s.stats.WhatIfs += len(results)
	s.count(func(c *Counters) { c.WhatIfs.Add(int64(len(results))) })
	return results, nil
}

// Checkpoint pushes a restore point and returns the checkpoint depth
// after the push. Checkpoints nest: each Rollback pops the most recent.
func (t *Tx) Checkpoint() int {
	s := t.s
	s.marks = append(s.marks, mark{
		d:           s.d.Snapshot(),
		a:           s.a.Snapshot(),
		deadline:    s.deadline,
		hasDeadline: s.hasDeadline,
	})
	s.stats.Checkpoints++
	s.count(func(c *Counters) { c.Checkpoints.Add(1) })
	return len(s.marks)
}

// Rollback pops the most recent checkpoint and restores design,
// analysis and deadline setting to it; ErrNoCheckpoint when none is
// pending. The deadline travels with the mark so a restored
// required-time cache is never served against a deadline configured
// after the checkpoint.
func (t *Tx) Rollback() error {
	s := t.s
	if len(s.marks) == 0 {
		return ErrNoCheckpoint
	}
	m := s.marks[len(s.marks)-1]
	s.marks = s.marks[:len(s.marks)-1]
	s.d.Restore(m.d)
	s.a.Restore(m.a)
	s.deadline = m.deadline
	s.hasDeadline = m.hasDeadline
	s.stats.Rollbacks++
	s.count(func(c *Counters) { c.Rollbacks.Add(1) })
	return nil
}

// EnsureRequired makes a current backward required-time pass available,
// running one if the cache was invalidated. The deadline is the
// session's configured deadline, or the current objective value when
// none was set.
func (t *Tx) EnsureRequired(ctx context.Context) error {
	s := t.s
	if s.a.HasRequired() {
		return nil
	}
	deadline := s.deadline
	if !s.hasDeadline {
		deadline = t.Objective()
	}
	if err := s.a.ComputeRequired(ctx, dist.Point(s.a.DT, deadline)); err != nil {
		return err
	}
	s.stats.RequiredPasses++
	return nil
}

// Reanalyze replaces the incremental analysis with a full SSTA pass at
// the session grid — the resync path for the legacy optimizer adapter,
// whose wrapped strategies mutate the design directly. The pass runs
// level-parallel on the session's worker pool.
func (t *Tx) Reanalyze(ctx context.Context) error {
	s := t.s
	a, err := ssta.AnalyzeParallel(ctx, s.d, s.a.DT, s.workers)
	if err != nil {
		return err
	}
	s.a = a
	s.stats.FullReanalyses++
	return nil
}

// Stats returns the cumulative session accounting.
func (t *Tx) Stats() Stats { return t.s.stats }
