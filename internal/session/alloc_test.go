package session

import (
	"context"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/design"
	"statsize/internal/netlist"
)

// warmBatchAllocLimit pins the steady-state allocation count of one
// warm serial WhatIfBatch iteration on c17 (6 candidates). The warm
// cost is per-batch bookkeeping (props/results slices, the batch
// wrapper) plus what genuinely escapes per candidate (the persisted
// sink distribution and its lazily built cumulative-sum cache) — the
// arenas, overlay maps and delay distributions are all recycled.
// Measured ~40; the limit leaves headroom for runtime-version noise
// while still catching any return of the historical per-node
// allocation storm (hundreds of allocations per candidate).
const warmBatchAllocLimit = 80

// TestWhatIfBatchWarmAllocs is the alloc-regression pin for the arena +
// delay-cache machinery: a warm serial batch must stay within
// warmBatchAllocLimit allocations, where the pre-arena implementation
// spent thousands on a circuit this size.
func TestWhatIfBatchWarmAllocs(t *testing.T) {
	lib := cell.Default180nm()
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	// workers=1: AllocsPerRun pins GOMAXPROCS to 1, and a parallel batch
	// would also count goroutine/pool bookkeeping that is per-batch
	// noise, not steady-state kernel cost.
	s, err := Open(context.Background(), d, d.SuggestDT(500), pct(0.99), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ng, err := s.NumGates()
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]Candidate, 0, ng)
	for g := 0; g < ng; g++ {
		w, err := s.Width(netlist.GateID(g))
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, Candidate{Gate: netlist.GateID(g), Width: w + lib.DeltaW})
	}
	ctx := context.Background()
	batch := func() {
		if _, err := s.WhatIfBatch(ctx, cands); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the scratch arenas, map buckets and the delay memo cache.
	for i := 0; i < 3; i++ {
		batch()
	}
	allocs := testing.AllocsPerRun(50, batch)
	if allocs > warmBatchAllocLimit {
		t.Errorf("warm WhatIfBatch iteration allocates %.1f times, budget %d", allocs, warmBatchAllocLimit)
	}
}
