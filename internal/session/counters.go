package session

import "sync/atomic"

// Counters is an engine-wide atomic rollup of session activity. One
// Counters instance is shared by every session the owning engine opens:
// sessions update it inline (under their own lock, with atomic adds) as
// operations commit, so a reader gets a live snapshot without touching
// any session lock — an in-flight optimizer run holding a session for
// minutes cannot block a stats query.
//
// The per-session Stats struct remains the precise accounting for one
// session's lifetime; Counters is the cross-session aggregate backing
// Engine.Stats and the daemon's /stats endpoint.
type Counters struct {
	Opened      atomic.Int64 // sessions opened
	Closed      atomic.Int64 // sessions closed
	WhatIfs     atomic.Int64 // what-if evaluations served (single + batch)
	Resizes     atomic.Int64 // committed resizes
	Checkpoints atomic.Int64 // checkpoints taken
	Rollbacks   atomic.Int64 // rollbacks applied
}

// Live returns the number of bound sessions opened but not yet closed.
func (c *Counters) Live() int64 { return c.Opened.Load() - c.Closed.Load() }

// BindCounters attaches an engine-wide rollup to the session and
// records the open. Bind at most once, immediately after Open and
// before the session is shared; the session then mirrors its activity
// into the rollup until Close (which records the matching close). An
// unbound session accounts only in its private Stats.
func (s *Session) BindCounters(c *Counters) error {
	tx, err := s.Acquire()
	if err != nil {
		return err
	}
	defer tx.Release()
	s.counters = c
	c.Opened.Add(1)
	return nil
}

// count applies fn to the bound rollup, if any. Callers hold the
// session lock.
func (s *Session) count(fn func(*Counters)) {
	if s.counters != nil {
		fn(s.counters)
	}
}
