// Package design binds a netlist, a cell library and a sizing state
// (per-gate widths) into the object the timing engines and optimizers
// operate on. It maintains the per-net capacitive loads implied by EQ 1:
// a net's load is its wire capacitance plus the input-pin capacitance of
// every reader gate (which scales with that gate's width) plus the
// primary-output load if the net leaves the circuit.
package design

import (
	"fmt"

	"statsize/internal/cell"
	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

// Design is a sized circuit: immutable structure plus mutable widths.
type Design struct {
	NL  *netlist.Netlist
	E   *netlist.Elab
	Lib *cell.Library

	widths []float64 // per gate, in multiples of minimum width
	loads  []float64 // per net, fF, kept consistent with widths
	total  float64   // sum of widths — the paper's "total gate size"

	// delays memoizes Lib.DelayDist evaluations across the whole sizing
	// run. Keys are exact (kind, pin, dt, width, load) tuples, so
	// entries never go stale and the cache is deliberately shared by
	// Clone: optimizer sweeps revisiting the same discrete widths reuse
	// distributions instead of re-deriving them.
	delays *DelayCache
}

// New elaborates the netlist and returns a design with every gate at
// minimum width.
func New(nl *netlist.Netlist, lib *cell.Library) (*Design, error) {
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	e, err := nl.Elaborate()
	if err != nil {
		return nil, err
	}
	d := &Design{
		NL:     nl,
		E:      e,
		Lib:    lib,
		widths: make([]float64, nl.NumGates()),
		loads:  make([]float64, nl.NumNets()),
		delays: NewDelayCache(),
	}
	for i := range d.widths {
		d.widths[i] = lib.WMin
		d.total += lib.WMin
	}
	for n := 0; n < nl.NumNets(); n++ {
		d.loads[n] = d.computeLoad(netlist.NetID(n))
	}
	return d, nil
}

// computeLoad evaluates a net's load from scratch.
func (d *Design) computeLoad(n netlist.NetID) float64 {
	readers := d.NL.Readers(n)
	load := d.Lib.WireCap(len(readers))
	for _, r := range readers {
		g := d.NL.Gate(r.Gate)
		load += d.Lib.InputCap(g.Kind, d.widths[r.Gate])
	}
	if d.NL.IsPO(n) {
		load += d.Lib.POLoad
	}
	return load
}

// Width returns gate g's current width.
func (d *Design) Width(g netlist.GateID) float64 { return d.widths[g] }

// SetWidth resizes gate g, updating the loads of the nets feeding it.
// The width is clamped to the library's sizing range; the applied width
// is returned.
func (d *Design) SetWidth(g netlist.GateID, w float64) float64 {
	w = d.Lib.ClampWidth(w)
	old := d.widths[g]
	if w == old {
		return w
	}
	gate := d.NL.Gate(g)
	delta := d.Lib.InputCap(gate.Kind, w) - d.Lib.InputCap(gate.Kind, old)
	// Each pin contributes its own input capacitance, so a net wired to
	// two pins of g gains delta once per pin.
	for _, in := range gate.Ins {
		d.loads[in] += delta
	}
	d.widths[g] = w
	d.total += w - old
	return w
}

// Load returns the capacitive load on net n, in fF.
func (d *Design) Load(n netlist.NetID) float64 { return d.loads[n] }

// WithWidth runs fn with gate g temporarily resized to w, then restores
// the exact prior state. Incremental load updates are not exactly
// reversible in floating point (+delta followed by -delta can round
// differently), so the affected loads, the width and the running total
// are snapshotted and written back verbatim.
//
// The mutate-and-restore route is deprecated for perturbation
// evaluation: it writes to the shared widths/loads arrays, which forces
// every trial evaluation to serialize on the design. Candidate
// evaluation (ssta.PerturbedDelays, the optimizers' fronts, session
// what-ifs) uses the mutation-free EdgeDelayDistAtWidths instead, which
// produces bit-identical distributions and is safe to run concurrently.
// WithWidth remains for the deterministic corner-based baseline, which
// owns its design exclusively while it runs.
func (d *Design) WithWidth(g netlist.GateID, w float64, fn func() error) error {
	gate := d.NL.Gate(g)
	oldW := d.widths[g]
	oldTotal := d.total
	oldLoads := make([]float64, len(gate.Ins))
	for i, in := range gate.Ins {
		oldLoads[i] = d.loads[in]
	}
	d.SetWidth(g, w)
	err := fn()
	d.widths[g] = oldW
	d.total = oldTotal
	for i, in := range gate.Ins {
		d.loads[in] = oldLoads[i]
	}
	return err
}

// TotalWidth returns the sum of all gate widths — the paper's "total
// gate size" (the y-axis of Figure 10 and the basis of Table 1's "% inc"
// column).
func (d *Design) TotalWidth() float64 { return d.total }

// EdgeNominalDelay returns the nominal pin-to-pin delay of a timing
// edge (EQ 1), or 0 for the zero-delay source→PI and PO→sink arcs.
func (d *Design) EdgeNominalDelay(e graph.EdgeID) float64 {
	g := d.E.EdgeGate[e]
	if g == netlist.NoGate {
		return 0
	}
	gate := d.NL.Gate(g)
	return d.Lib.NominalDelay(gate.Kind, d.E.EdgePin[e], d.widths[g], d.loads[gate.Out])
}

// EdgeDelayDist returns the discretized pin-to-pin delay distribution of
// a timing edge on grid dt, or nil for zero-delay source/sink arcs.
func (d *Design) EdgeDelayDist(dt float64, e graph.EdgeID) (*dist.Dist, error) {
	g := d.E.EdgeGate[e]
	if g == netlist.NoGate {
		return nil, nil
	}
	gate := d.NL.Gate(g)
	return d.delayDist(dt, gate.Kind, d.E.EdgePin[e], d.widths[g], d.loads[gate.Out])
}

// delayDist routes a delay-distribution evaluation through the memo
// cache; the returned *Dist is an immutable shared value.
func (d *Design) delayDist(dt float64, kind cell.Kind, pin int, w, load float64) (*dist.Dist, error) {
	if d.delays == nil {
		// A zero-value Design (tests constructing by hand) falls back to
		// direct evaluation.
		return d.Lib.DelayDist(dt, kind, pin, w, load)
	}
	return d.delays.DelayDist(d.Lib, dt, kind, pin, w, load)
}

// DelayCacheStats reports the hit/miss/flush counters and entry count
// of the delay-distribution memo cache (all zero when the cache has
// been dropped).
func (d *Design) DelayCacheStats() (hits, misses, flushes uint64, entries int) {
	if d.delays == nil {
		return 0, 0, 0, 0
	}
	hits, misses, flushes = d.delays.Stats()
	return hits, misses, flushes, d.delays.Len()
}

// DropDelayCache detaches the delay-distribution memo cache from this
// design (and only this design — clones sharing the cache keep it), so
// every subsequent delay evaluation goes straight to the library. The
// validation suite uses this to prove cache transparency: an analysis
// with the cache must be bit-identical to one without. Not intended
// for production paths, where the cache is always a win.
func (d *Design) DropDelayCache() { d.delays = nil }

// WidthAt returns gate g's width under a hypothetical assignment:
// the override when present (clamped to the library's sizing range,
// exactly as SetWidth would clamp it), the committed width otherwise.
func (d *Design) WidthAt(g netlist.GateID, overrides map[netlist.GateID]float64) float64 {
	if w, ok := overrides[g]; ok {
		return d.Lib.ClampWidth(w)
	}
	return d.widths[g]
}

// LoadAt returns net n's capacitive load under a hypothetical width
// assignment, without touching the design. It reproduces the exact
// floating-point operations the incremental load maintenance performs —
// the cached base load plus one input-capacitance delta per overridden
// reader pin, accumulated in reader-pin order (the canonical order).
// For a single-gate override — the shape every perturbation-evaluation
// path uses — the result is bit-identical to what Load(n) would report
// after SetWidth applied the same override, because every delta is the
// same value and addition order cannot matter. With several overridden
// gates reading one net, the reader-pin order is authoritative; a
// sequence of SetWidth calls in a different order can differ in the
// last ulp.
func (d *Design) LoadAt(n netlist.NetID, overrides map[netlist.GateID]float64) float64 {
	load := d.loads[n]
	for _, r := range d.NL.Readers(n) {
		w, ok := overrides[r.Gate]
		if !ok {
			continue
		}
		kind := d.NL.Gate(r.Gate).Kind
		load += d.Lib.InputCap(kind, d.Lib.ClampWidth(w)) - d.Lib.InputCap(kind, d.widths[r.Gate])
	}
	return load
}

// EdgeDelayDistAtWidths returns the discretized pin-to-pin delay
// distribution of a timing edge under a hypothetical width assignment,
// or nil for zero-delay source/sink arcs. Unlike EdgeDelayDist after a
// SetWidth, nothing is mutated: the driving gate's width and the output
// net's load are evaluated against the overrides functionally. This is
// the purity contract the parallel evaluation paths are built on — any
// number of goroutines may call it concurrently with different override
// sets over one design, and for a single-gate override (the shape every
// perturbation-evaluation path uses) the distribution is bit-identical
// to the mutate-evaluate-restore route; see LoadAt for the multi-gate
// accumulation-order caveat.
func (d *Design) EdgeDelayDistAtWidths(dt float64, e graph.EdgeID, overrides map[netlist.GateID]float64) (*dist.Dist, error) {
	g := d.E.EdgeGate[e]
	if g == netlist.NoGate {
		return nil, nil
	}
	gate := d.NL.Gate(g)
	return d.delayDist(dt, gate.Kind, d.E.EdgePin[e], d.WidthAt(g, overrides), d.LoadAt(gate.Out, overrides))
}

// State is a snapshot of the mutable sizing state (widths, loads, total)
// for checkpoint/rollback. It is valid only for the design it was taken
// from.
type State struct {
	widths []float64
	loads  []float64
	total  float64
}

// Snapshot captures the current sizing state.
func (d *Design) Snapshot() *State {
	return &State{
		widths: append([]float64(nil), d.widths...),
		loads:  append([]float64(nil), d.loads...),
		total:  d.total,
	}
}

// Restore rewinds the sizing state to a snapshot taken from this design.
func (d *Design) Restore(st *State) {
	copy(d.widths, st.widths)
	copy(d.loads, st.loads)
	d.total = st.total
}

// Clone returns an independent copy sharing the immutable structure.
func (d *Design) Clone() *Design {
	c := *d
	c.widths = append([]float64(nil), d.widths...)
	c.loads = append([]float64(nil), d.loads...)
	return &c
}

// RecomputeLoads rebuilds every net load from scratch and reports the
// first inconsistency with the incrementally maintained values, if any —
// a self-check used by tests and assertions.
func (d *Design) RecomputeLoads(tol float64) error {
	for n := 0; n < d.NL.NumNets(); n++ {
		want := d.computeLoad(netlist.NetID(n))
		if diff := want - d.loads[n]; diff > tol || diff < -tol {
			return fmt.Errorf("design: load of net %q drifted: cached %v, actual %v",
				d.NL.NetName(netlist.NetID(n)), d.loads[n], want)
		}
	}
	return nil
}

// SuggestDT returns a grid bin width for SSTA: the estimated maximum
// nominal circuit delay divided by the requested bin budget. The
// estimate is a longest-path pass over nominal delays at current widths.
func (d *Design) SuggestDT(bins int) float64 {
	if bins <= 0 {
		panic("design: non-positive bin budget")
	}
	g := d.E.G
	arr := make([]float64, g.NumNodes())
	for _, n := range g.Topo() {
		for _, eid := range g.In(n) {
			e := g.EdgeAt(eid)
			if t := arr[e.From] + d.EdgeNominalDelay(eid); t > arr[n] {
				arr[n] = t
			}
		}
	}
	maxDelay := arr[g.Sink()]
	if maxDelay <= 0 {
		maxDelay = 1
	}
	// Sizing reduces delay, and the +3σ tail extends ~30% past nominal;
	// the budget covers the nominal span with headroom.
	return 1.35 * maxDelay / float64(bins)
}
