package design

import (
	"math"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

func TestWithWidthRestoresBitExact(t *testing.T) {
	d := c17Design(t)
	// Capture the complete state.
	widths := make([]float64, d.NL.NumGates())
	loads := make([]float64, d.NL.NumNets())
	for g := range widths {
		widths[g] = d.Width(netlist.GateID(g))
	}
	for n := range loads {
		loads[n] = d.Load(netlist.NetID(n))
	}
	total := d.TotalWidth()
	// Hammer WithWidth with many trial widths, including clamped ones.
	for trial := 0; trial < 50; trial++ {
		g := netlist.GateID(trial % d.NL.NumGates())
		w := 0.5 + float64(trial)*0.7
		err := d.WithWidth(g, w, func() error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	for g := range widths {
		if d.Width(netlist.GateID(g)) != widths[g] {
			t.Fatalf("width of gate %d drifted", g)
		}
	}
	for n := range loads {
		if d.Load(netlist.NetID(n)) != loads[n] {
			t.Fatalf("load of net %d drifted: %v vs %v", n, d.Load(netlist.NetID(n)), loads[n])
		}
	}
	if d.TotalWidth() != total {
		t.Fatal("total width drifted")
	}
}

func TestWithWidthPropagatesError(t *testing.T) {
	d := c17Design(t)
	sentinel := &netlist.Netlist{}
	_ = sentinel
	errWant := errTest{}
	err := d.WithWidth(0, 2, func() error { return errWant })
	if err != errWant {
		t.Fatalf("got %v, want sentinel", err)
	}
	// State restored even on error.
	if d.Width(0) != d.Lib.WMin {
		t.Error("width not restored after error")
	}
}

type errTest struct{}

func (errTest) Error() string { return "sentinel" }

func TestNewRejectsInvalidLibrary(t *testing.T) {
	lib := cell.Default180nm()
	lib.SigmaRatio = 2 // invalid
	if _, err := New(netlist.C17(cell.Default180nm()), lib); err == nil {
		t.Error("expected library validation error")
	}
}

func TestNewRejectsUnfinalizedNetlist(t *testing.T) {
	nl := netlist.New("raw")
	if _, err := nl.AddPI("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := New(nl, cell.Default180nm()); err == nil {
		t.Error("expected elaboration error for unfinalized netlist")
	}
}

func TestSuggestDTPanicsOnBadBins(t *testing.T) {
	d := c17Design(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.SuggestDT(0)
}

func TestRecomputeLoadsDetectsDrift(t *testing.T) {
	d := c17Design(t)
	// Corrupt a cached load and verify the self-check notices.
	d.loads[0] += 1
	if err := d.RecomputeLoads(1e-9); err == nil {
		t.Error("expected drift detection")
	}
}

func TestSetWidthNoOp(t *testing.T) {
	d := c17Design(t)
	before := d.TotalWidth()
	d.SetWidth(0, d.Width(0)) // same width: no-op
	if d.TotalWidth() != before {
		t.Error("no-op resize changed total width")
	}
	if err := d.RecomputeLoads(1e-12); err != nil {
		t.Error(err)
	}
}

func TestEdgeNominalDelayFinite(t *testing.T) {
	d := c17Design(t)
	for e := 0; e < d.E.G.NumEdges(); e++ {
		v := d.EdgeNominalDelay(graph.EdgeID(e))
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("edge %d delay %v", e, v)
		}
	}
}
