package design

import (
	"math"
	"sync"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

func cacheTestDesign(t *testing.T) *Design {
	t.Helper()
	lib := cell.Default180nm()
	d, err := New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDelayCacheBitIdentical: every cached edge-delay distribution is
// bit-identical to a direct library evaluation, across resizes (new
// keys), rollbacks (old keys again) and hypothetical overrides.
func TestDelayCacheBitIdentical(t *testing.T) {
	d := cacheTestDesign(t)
	const dt = 0.001
	check := func(stage string) {
		t.Helper()
		for e := 0; e < d.E.G.NumEdges(); e++ {
			eid := graph.EdgeID(e)
			g := d.E.EdgeGate[eid]
			if g == netlist.NoGate {
				continue
			}
			gate := d.NL.Gate(g)
			got, err := d.EdgeDelayDist(dt, eid)
			if err != nil {
				t.Fatal(err)
			}
			want, err := d.Lib.DelayDist(dt, gate.Kind, d.E.EdgePin[eid], d.Width(g), d.Load(gate.Out))
			if err != nil {
				t.Fatal(err)
			}
			if got.DT() != want.DT() || got.I0() != want.I0() || got.NumBins() != want.NumBins() {
				t.Fatalf("%s: edge %d header differs from direct evaluation", stage, e)
			}
			for k := 0; k < want.NumBins(); k++ {
				if got.MassAt(k) != want.MassAt(k) {
					t.Fatalf("%s: edge %d mass[%d] = %x, direct %x", stage, e, k, got.MassAt(k), want.MassAt(k))
				}
			}
		}
	}
	check("initial")
	st := d.Snapshot()
	d.SetWidth(0, d.Width(0)+d.Lib.DeltaW)
	d.SetWidth(2, d.Width(2)+2*d.Lib.DeltaW)
	check("after resize")
	d.Restore(st)
	check("after rollback")
	hits, misses, flushes, entries := d.DelayCacheStats()
	if hits == 0 || misses == 0 || entries == 0 {
		t.Errorf("cache did not engage: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
	if flushes != 0 {
		t.Errorf("lattice-respecting workload flushed the cache %d times", flushes)
	}
	// The rollback re-queried the initial keys: those must be hits, not
	// fresh entries — exact keying makes invalidation unnecessary.
	if int(misses) != entries {
		t.Errorf("misses (%d) should equal distinct entries (%d)", misses, entries)
	}
}

// TestDelayCacheSharedByClone: clones share the memo cache (entries are
// pure values of the library, not of any one sizing state).
func TestDelayCacheSharedByClone(t *testing.T) {
	d := cacheTestDesign(t)
	c := d.Clone()
	if d.delays != c.delays {
		t.Fatal("Clone did not share the delay cache")
	}
	const dt = 0.001
	if _, err := d.EdgeDelayDist(dt, firstGateEdge(t, d)); err != nil {
		t.Fatal(err)
	}
	h0, m0, _, _ := c.DelayCacheStats()
	if _, err := c.EdgeDelayDist(dt, firstGateEdge(t, c)); err != nil {
		t.Fatal(err)
	}
	h1, m1, _, _ := c.DelayCacheStats()
	if h1 != h0+1 || m1 != m0 {
		t.Errorf("clone re-derived a cached distribution: hits %d→%d misses %d→%d", h0, h1, m0, m1)
	}
}

func firstGateEdge(t *testing.T, d *Design) graph.EdgeID {
	t.Helper()
	for e := 0; e < d.E.G.NumEdges(); e++ {
		if d.E.EdgeGate[graph.EdgeID(e)] != netlist.NoGate {
			return graph.EdgeID(e)
		}
	}
	t.Fatal("no gate edges")
	return 0
}

// TestDelayCacheConcurrent hammers one cache from many goroutines mixing
// overlapping keys — run under -race this is the concurrency contract.
func TestDelayCacheConcurrent(t *testing.T) {
	d := cacheTestDesign(t)
	const dt = 0.001
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := graph.EdgeID((seed + i) % d.E.G.NumEdges())
				if d.E.EdgeGate[e] == netlist.NoGate {
					continue
				}
				over := map[netlist.GateID]float64{netlist.GateID(i % d.NL.NumGates()): 1 + 0.5*float64(i%4)}
				if _, err := d.EdgeDelayDistAtWidths(dt, e, over); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestDelayCacheCapFlush: overflowing a shard flushes it instead of
// growing without bound.
func TestDelayCacheCapFlush(t *testing.T) {
	c := NewDelayCache()
	lib := cell.Default180nm()
	// Sweep distinct loads well past the total capacity; the keys spread
	// over the shards roughly uniformly, so at this volume some shard
	// must cross its cap. The huge dt keeps every distribution a single
	// bin, so the sweep is cheap.
	for i := 0; i < delayShards*delayShardCap*5/4; i++ {
		load := 1.0 + float64(i)*1e-9
		if _, err := c.DelayDist(lib, 1000.0, cell.INV, 0, 1.0, load); err != nil {
			t.Fatal(err)
		}
	}
	if got, max := c.Len(), delayShards*delayShardCap; got > max {
		t.Errorf("cache grew past its cap: %d entries > %d", got, max)
	}
	if _, _, flushes := c.Stats(); flushes == 0 {
		t.Error("overflow sweep recorded no shard flushes")
	}
}

// TestDelayCacheStatsAccounting pins the exact hit/miss/flush/entry
// arithmetic: every distinct evaluation point is one miss and one
// entry, every repeat is one hit, and no lattice workload ever flushes.
func TestDelayCacheStatsAccounting(t *testing.T) {
	c := NewDelayCache()
	lib := cell.Default180nm()
	const dt = 0.01
	points := []struct {
		kind    cell.Kind
		pin     int
		w, load float64
	}{
		{cell.INV, 0, 1.0, 5.0},
		{cell.INV, 0, 1.5, 5.0}, // same cell, new width -> new key
		{cell.INV, 0, 1.0, 6.0}, // same cell, new load -> new key
		{cell.NAND2, 1, 1.0, 5.0},
	}
	for round := 0; round < 3; round++ {
		for _, pt := range points {
			if _, err := c.DelayDist(lib, dt, pt.kind, pt.pin, pt.w, pt.load); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, misses, flushes := c.Stats()
	if want := uint64(len(points)); misses != want {
		t.Errorf("misses = %d, want %d (one per distinct point)", misses, want)
	}
	if want := uint64(2 * len(points)); hits != want {
		t.Errorf("hits = %d, want %d (two warm rounds)", hits, want)
	}
	if flushes != 0 {
		t.Errorf("flushes = %d, want 0", flushes)
	}
	if got, want := c.Len(), len(points); got != want {
		t.Errorf("entries = %d, want %d", got, want)
	}
	// A different grid resolution is a different evaluation point.
	if _, err := c.DelayDist(lib, dt/2, cell.INV, 0, 1.0, 5.0); err != nil {
		t.Fatal(err)
	}
	if _, misses2, _ := c.Stats(); misses2 != misses+1 {
		t.Errorf("dt change did not miss: misses %d -> %d", misses, misses2)
	}
}

// TestDelayCacheFlushCounter forces a single targeted shard past its
// cap and checks the flush counter and entry accounting: after the
// flush the shard restarts from the overflowing entry, and flushed keys
// miss again on re-query (recomputation, not corruption).
func TestDelayCacheFlushCounter(t *testing.T) {
	c := NewDelayCache()
	lib := cell.Default180nm()
	const dt = 1000.0 // huge grid -> single-bin dists, cheap to compute
	// Collect delayShardCap+1 evaluation points that land in one shard.
	target := -1
	var ws []float64
	for i := 0; len(ws) <= delayShardCap; i++ {
		w := 1.0 + float64(i)*1e-6
		k := delayKey{kind: cell.INV, pin: 0, dt: math.Float64bits(dt), w: math.Float64bits(w), load: math.Float64bits(5.0)}
		if target == -1 {
			target = shardOf(k)
		}
		if shardOf(k) == target {
			ws = append(ws, w)
		}
	}
	for _, w := range ws {
		if _, err := c.DelayDist(lib, dt, cell.INV, 0, w, 5.0); err != nil {
			t.Fatal(err)
		}
	}
	_, misses, flushes := c.Stats()
	if flushes != 1 {
		t.Fatalf("flushes = %d, want exactly 1 after %d inserts into one shard", flushes, len(ws))
	}
	if want := uint64(len(ws)); misses != want {
		t.Errorf("misses = %d, want %d", misses, want)
	}
	if got := c.shards[target].m; len(got) != 1 {
		t.Errorf("flushed shard holds %d entries, want 1 (the overflowing insert)", len(got))
	}
	// A flushed key is recomputed, served, and recached.
	d1, err := c.DelayDist(lib, dt, cell.INV, 0, ws[0], 5.0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lib.DelayDist(dt, cell.INV, 0, ws[0], 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(d1, want, 0) {
		t.Error("re-query after flush returned a different distribution")
	}
	if _, misses2, _ := c.Stats(); misses2 != misses+1 {
		t.Errorf("re-query after flush should miss: misses %d -> %d", misses, misses2)
	}
}
