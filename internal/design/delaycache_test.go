package design

import (
	"sync"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

func cacheTestDesign(t *testing.T) *Design {
	t.Helper()
	lib := cell.Default180nm()
	d, err := New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDelayCacheBitIdentical: every cached edge-delay distribution is
// bit-identical to a direct library evaluation, across resizes (new
// keys), rollbacks (old keys again) and hypothetical overrides.
func TestDelayCacheBitIdentical(t *testing.T) {
	d := cacheTestDesign(t)
	const dt = 0.001
	check := func(stage string) {
		t.Helper()
		for e := 0; e < d.E.G.NumEdges(); e++ {
			eid := graph.EdgeID(e)
			g := d.E.EdgeGate[eid]
			if g == netlist.NoGate {
				continue
			}
			gate := d.NL.Gate(g)
			got, err := d.EdgeDelayDist(dt, eid)
			if err != nil {
				t.Fatal(err)
			}
			want, err := d.Lib.DelayDist(dt, gate.Kind, d.E.EdgePin[eid], d.Width(g), d.Load(gate.Out))
			if err != nil {
				t.Fatal(err)
			}
			if got.DT() != want.DT() || got.I0() != want.I0() || got.NumBins() != want.NumBins() {
				t.Fatalf("%s: edge %d header differs from direct evaluation", stage, e)
			}
			for k := 0; k < want.NumBins(); k++ {
				if got.MassAt(k) != want.MassAt(k) {
					t.Fatalf("%s: edge %d mass[%d] = %x, direct %x", stage, e, k, got.MassAt(k), want.MassAt(k))
				}
			}
		}
	}
	check("initial")
	st := d.Snapshot()
	d.SetWidth(0, d.Width(0)+d.Lib.DeltaW)
	d.SetWidth(2, d.Width(2)+2*d.Lib.DeltaW)
	check("after resize")
	d.Restore(st)
	check("after rollback")
	hits, misses, entries := d.DelayCacheStats()
	if hits == 0 || misses == 0 || entries == 0 {
		t.Errorf("cache did not engage: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
	// The rollback re-queried the initial keys: those must be hits, not
	// fresh entries — exact keying makes invalidation unnecessary.
	if int(misses) != entries {
		t.Errorf("misses (%d) should equal distinct entries (%d)", misses, entries)
	}
}

// TestDelayCacheSharedByClone: clones share the memo cache (entries are
// pure values of the library, not of any one sizing state).
func TestDelayCacheSharedByClone(t *testing.T) {
	d := cacheTestDesign(t)
	c := d.Clone()
	if d.delays != c.delays {
		t.Fatal("Clone did not share the delay cache")
	}
	const dt = 0.001
	if _, err := d.EdgeDelayDist(dt, firstGateEdge(t, d)); err != nil {
		t.Fatal(err)
	}
	h0, m0, _ := c.DelayCacheStats()
	if _, err := c.EdgeDelayDist(dt, firstGateEdge(t, c)); err != nil {
		t.Fatal(err)
	}
	h1, m1, _ := c.DelayCacheStats()
	if h1 != h0+1 || m1 != m0 {
		t.Errorf("clone re-derived a cached distribution: hits %d→%d misses %d→%d", h0, h1, m0, m1)
	}
}

func firstGateEdge(t *testing.T, d *Design) graph.EdgeID {
	t.Helper()
	for e := 0; e < d.E.G.NumEdges(); e++ {
		if d.E.EdgeGate[graph.EdgeID(e)] != netlist.NoGate {
			return graph.EdgeID(e)
		}
	}
	t.Fatal("no gate edges")
	return 0
}

// TestDelayCacheConcurrent hammers one cache from many goroutines mixing
// overlapping keys — run under -race this is the concurrency contract.
func TestDelayCacheConcurrent(t *testing.T) {
	d := cacheTestDesign(t)
	const dt = 0.001
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := graph.EdgeID((seed + i) % d.E.G.NumEdges())
				if d.E.EdgeGate[e] == netlist.NoGate {
					continue
				}
				over := map[netlist.GateID]float64{netlist.GateID(i % d.NL.NumGates()): 1 + 0.5*float64(i%4)}
				if _, err := d.EdgeDelayDistAtWidths(dt, e, over); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestDelayCacheCapFlush: overflowing a shard flushes it instead of
// growing without bound.
func TestDelayCacheCapFlush(t *testing.T) {
	c := NewDelayCache()
	lib := cell.Default180nm()
	// Drive one shard far past its cap by sweeping loads; entries spread
	// over shards, so push enough volume that every shard crosses the cap
	// at least once.
	for i := 0; i < delayShards*delayShardCap/4; i++ {
		load := 1.0 + float64(i)*1e-9
		if _, err := c.DelayDist(lib, 0.01, cell.INV, 0, 1.0, load); err != nil {
			t.Fatal(err)
		}
	}
	if got, max := c.Len(), delayShards*delayShardCap; got > max {
		t.Errorf("cache grew past its cap: %d entries > %d", got, max)
	}
}
