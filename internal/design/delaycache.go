package design

import (
	"math"
	"sync"
	"sync/atomic"

	"statsize/internal/cell"
	"statsize/internal/dist"
)

// delayKey identifies one library delay-distribution evaluation. Widths
// and loads are keyed by their exact float64 bit patterns: sizing moves
// widths on the library's Δw lattice and loads are deterministic
// functions of the widths, so the key space is small in practice — and
// exact keying is what keeps cached results bit-identical to direct
// Lib.DelayDist calls (a coarser load quantization would silently
// change golden traces). The grid resolution participates because one
// process may analyze the same design at several bin budgets.
type delayKey struct {
	kind cell.Kind
	pin  int32
	dt   uint64
	w    uint64
	load uint64
}

// delayShards is the shard count of the cache: optimizer sweeps hit the
// cache from every worker at once, and sharding keeps the read-mostly
// RWMutexes uncontended without boxing keys the way sync.Map would
// (a sync.Map lookup allocates to box the struct key — fatal for the
// zero-allocation steady state).
const delayShards = 32

// delayShardCap bounds one shard's entry count. Widths live on the Δw
// lattice so growth is naturally bounded, but a caller sweeping
// arbitrary continuous widths must not turn the cache into a leak: a
// full shard is flushed wholesale (the entries are pure values and cost
// only recomputation).
const delayShardCap = 8 << 10

// DelayCache memoizes Lib.DelayDist evaluations. The cached *Dist
// values are immutable shared heap values (never arena scratch), so any
// number of goroutines may read them concurrently and forever — the
// copy-on-read-free contract the SSTA edge caches and perturbation
// overlays rely on.
//
// Because every input that influences the result is part of the key,
// entries never go stale: Resize, Clone and Rollback simply look up
// different keys, so the cache is shared by all clones of a design and
// needs no invalidation hooks. (That property is load-bearing — see
// DESIGN.md, "Memory model".)
type DelayCache struct {
	shards  [delayShards]delayShard
	hits    atomic.Uint64
	misses  atomic.Uint64
	flushes atomic.Uint64
}

type delayShard struct {
	mu sync.RWMutex
	m  map[delayKey]*dist.Dist
}

// NewDelayCache returns an empty cache.
func NewDelayCache() *DelayCache {
	c := &DelayCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[delayKey]*dist.Dist)
	}
	return c
}

// shardOf mixes the key fields into a shard index (fibonacci hashing on
// a xor-fold of the float bit patterns).
func shardOf(k delayKey) int {
	h := uint64(k.kind)<<8 | uint64(uint32(k.pin))
	h ^= k.w * 0x9e3779b97f4a7c15
	h ^= k.load * 0xc2b2ae3d27d4eb4f
	h ^= k.dt * 0x165667b19e3779f9
	h ^= h >> 29
	h *= 0x9e3779b97f4a7c15
	return int((h >> 56) % delayShards)
}

// DelayDist returns the memoized discretized delay distribution for the
// given evaluation point, computing and caching it on first sight.
func (c *DelayCache) DelayDist(lib *cell.Library, dt float64, kind cell.Kind, pin int, w, load float64) (*dist.Dist, error) {
	k := delayKey{
		kind: kind,
		pin:  int32(pin),
		dt:   math.Float64bits(dt),
		w:    math.Float64bits(w),
		load: math.Float64bits(load),
	}
	sh := &c.shards[shardOf(k)]
	sh.mu.RLock()
	d, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return d, nil
	}
	c.misses.Add(1)
	d, err := lib.DelayDist(dt, kind, pin, w, load)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if len(sh.m) >= delayShardCap {
		sh.m = make(map[delayKey]*dist.Dist)
		c.flushes.Add(1)
	}
	// A racing goroutine may have stored the same key meanwhile; both
	// computed identical values, so last-write-wins is harmless.
	sh.m[k] = d
	sh.mu.Unlock()
	return d, nil
}

// Stats reports the cumulative hit/miss counters and the number of
// whole-shard flushes the capacity bound has forced. A non-zero flush
// count under a lattice-respecting workload means the cache is being
// fed continuous widths and is cycling instead of converging.
func (c *DelayCache) Stats() (hits, misses, flushes uint64) {
	return c.hits.Load(), c.misses.Load(), c.flushes.Load()
}

// Len returns the number of cached entries across all shards.
func (c *DelayCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
