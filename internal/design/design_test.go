package design

import (
	"math"
	"strings"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

var lib = cell.Default180nm()

func c17Design(t *testing.T) *Design {
	t.Helper()
	d, err := New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewStartsAtMinWidth(t *testing.T) {
	d := c17Design(t)
	for g := 0; g < d.NL.NumGates(); g++ {
		if d.Width(netlist.GateID(g)) != lib.WMin {
			t.Fatalf("gate %d width %v, want WMin", g, d.Width(netlist.GateID(g)))
		}
	}
	if math.Abs(d.TotalWidth()-float64(d.NL.NumGates())*lib.WMin) > 1e-12 {
		t.Error("total width mismatch at min size")
	}
}

func TestLoadAccounting(t *testing.T) {
	d := c17Design(t)
	// Net 11 feeds gates 16 and 19 (both NAND2): wire cap for fanout 2
	// plus two NAND2 pins at min width.
	n11, _ := d.NL.NetByName("11")
	want := lib.WireCap(2) + 2*lib.InputCap(cell.NAND2, lib.WMin)
	if math.Abs(d.Load(n11)-want) > 1e-12 {
		t.Errorf("load(11) = %v, want %v", d.Load(n11), want)
	}
	// Net 22 is a PO with no readers: wire cap fanout 0 + PO load.
	n22, _ := d.NL.NetByName("22")
	want22 := lib.WireCap(0) + lib.POLoad
	if math.Abs(d.Load(n22)-want22) > 1e-12 {
		t.Errorf("load(22) = %v, want %v", d.Load(n22), want22)
	}
}

func TestSetWidthUpdatesFaninLoads(t *testing.T) {
	d := c17Design(t)
	n16, _ := d.NL.NetByName("16")
	g22 := d.NL.Driver(mustNet(t, d, "22")) // NAND(10, 16)
	before := d.Load(n16)
	d.SetWidth(g22, 3.0)
	after := d.Load(n16)
	wantDelta := lib.InputCap(cell.NAND2, 3.0) - lib.InputCap(cell.NAND2, lib.WMin)
	if math.Abs((after-before)-wantDelta) > 1e-12 {
		t.Errorf("fanin load delta %v, want %v", after-before, wantDelta)
	}
	if err := d.RecomputeLoads(1e-9); err != nil {
		t.Error(err)
	}
	if math.Abs(d.TotalWidth()-(float64(d.NL.NumGates()-1)*lib.WMin+3.0)) > 1e-12 {
		t.Error("total width not updated")
	}
}

func TestSetWidthClamps(t *testing.T) {
	d := c17Design(t)
	if w := d.SetWidth(0, 1e9); w != lib.WMax {
		t.Errorf("clamped width %v, want WMax", w)
	}
	if w := d.SetWidth(0, 0); w != lib.WMin {
		t.Errorf("clamped width %v, want WMin", w)
	}
	if err := d.RecomputeLoads(1e-9); err != nil {
		t.Error(err)
	}
}

func TestManyResizesStayConsistent(t *testing.T) {
	d := c17Design(t)
	widths := []float64{1, 2.5, 7, 1.5, 4, 32, 1}
	for i, w := range widths {
		d.SetWidth(netlist.GateID(i%d.NL.NumGates()), w)
	}
	if err := d.RecomputeLoads(1e-9); err != nil {
		t.Error(err)
	}
}

func TestDuplicateInputPinLoads(t *testing.T) {
	// A gate wired to the same net on both pins must load it twice.
	src := "INPUT(a)\nOUTPUT(z)\nb = NOT(a)\nz = NAND(b, b)\n"
	nl, err := netlist.ParseBench(strings.NewReader(src), "dup", lib)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := nl.NetByName("b")
	want := lib.WireCap(2) + 2*lib.InputCap(cell.NAND2, lib.WMin)
	if math.Abs(d.Load(b)-want) > 1e-12 {
		t.Errorf("duplicate-pin load %v, want %v", d.Load(b), want)
	}
	z, _ := nl.NetByName("z")
	d.SetWidth(nl.Driver(z), 4)
	if err := d.RecomputeLoads(1e-9); err != nil {
		t.Error(err)
	}
}

func TestEdgeDelays(t *testing.T) {
	d := c17Design(t)
	g := d.E.G
	for e := 0; e < g.NumEdges(); e++ {
		eid := graph.EdgeID(e)
		nom := d.EdgeNominalDelay(eid)
		if d.E.EdgeGate[eid] == netlist.NoGate {
			if nom != 0 {
				t.Errorf("source/sink arc %d has delay %v", e, nom)
			}
			dd, err := d.EdgeDelayDist(0.001, eid)
			if err != nil || dd != nil {
				t.Errorf("source/sink arc %d dist = %v, %v", e, dd, err)
			}
			continue
		}
		if nom <= 0 {
			t.Errorf("edge %d nominal delay %v", e, nom)
		}
		dd, err := d.EdgeDelayDist(0.001, eid)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dd.Mean()-nom) > 1e-6 {
			t.Errorf("edge %d dist mean %v, want %v", e, dd.Mean(), nom)
		}
	}
}

func TestUpsizingSpeedsGateSlowsFanin(t *testing.T) {
	d := c17Design(t)
	// Gate driving 22 reads nets 10 and 16; upsizing it must reduce its
	// own edge delays and increase the delay of edges into nets 10/16.
	g22 := d.NL.Driver(mustNet(t, d, "22"))
	ownEdge := d.E.GateEdges[g22][0]
	n10 := mustNet(t, d, "10")
	faninGate := d.NL.Driver(n10)
	faninEdge := d.E.GateEdges[faninGate][0]
	ownBefore := d.EdgeNominalDelay(ownEdge)
	faninBefore := d.EdgeNominalDelay(faninEdge)
	d.SetWidth(g22, 4)
	if own := d.EdgeNominalDelay(ownEdge); own >= ownBefore {
		t.Errorf("upsized gate delay %v, want < %v", own, ownBefore)
	}
	if fanin := d.EdgeNominalDelay(faninEdge); fanin <= faninBefore {
		t.Errorf("fanin delay %v, want > %v (loading effect)", fanin, faninBefore)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := c17Design(t)
	c := d.Clone()
	c.SetWidth(0, 8)
	if d.Width(0) != lib.WMin {
		t.Error("clone mutation leaked into original")
	}
	if err := d.RecomputeLoads(1e-9); err != nil {
		t.Error(err)
	}
	if err := c.RecomputeLoads(1e-9); err != nil {
		t.Error(err)
	}
}

func TestSuggestDT(t *testing.T) {
	d := c17Design(t)
	dt := d.SuggestDT(600)
	if dt <= 0 {
		t.Fatalf("dt = %v", dt)
	}
	// c17 is 3 gate levels; nominal circuit delay is a few hundred ps, so
	// 600 bins should put dt well under a picosecond-scale gate delay.
	if dt > 0.01 {
		t.Errorf("dt = %v ns seems too coarse for c17", dt)
	}
}

func mustNet(t *testing.T, d *Design, name string) netlist.NetID {
	t.Helper()
	n, ok := d.NL.NetByName(name)
	if !ok {
		t.Fatalf("net %q missing", name)
	}
	return n
}
