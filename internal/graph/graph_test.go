package graph

import (
	"math/rand"
	"testing"
)

// buildDiamond constructs source -> a -> {b, c} -> d -> sink.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	src := b.AddNode()
	a := b.AddNode()
	n1 := b.AddNode()
	n2 := b.AddNode()
	d := b.AddNode()
	sink := b.AddNode()
	b.AddEdge(src, a)
	b.AddEdge(a, n1)
	b.AddEdge(a, n2)
	b.AddEdge(n1, d)
	b.AddEdge(n2, d)
	b.AddEdge(d, sink)
	g, err := b.Build(src, sink)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDiamondBasics(t *testing.T) {
	g := buildDiamond(t)
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatalf("got %d nodes %d edges, want 6/6", g.NumNodes(), g.NumEdges())
	}
	if g.Level(g.Source()) != 0 {
		t.Error("source should be level 0")
	}
	if g.Level(g.Sink()) != 4 || g.MaxLevel() != 4 {
		t.Errorf("sink level = %d, want 4", g.Level(g.Sink()))
	}
	if len(g.In(g.Sink())) != 1 || len(g.Out(g.Source())) != 1 {
		t.Error("diamond adjacency wrong at source/sink")
	}
}

func TestTopoRespectsEdges(t *testing.T) {
	g := buildDiamond(t)
	pos := make(map[NodeID]int)
	for i, n := range g.Topo() {
		pos[n] = i
	}
	if len(pos) != g.NumNodes() {
		t.Fatal("topo order missing nodes")
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(EdgeID(i))
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topo order", e.From, e.To)
		}
	}
}

func TestLevelIsLongestPath(t *testing.T) {
	// source -> a -> b -> c -> sink with a shortcut a -> c: c must take
	// the longer route's level.
	b := NewBuilder()
	src, a, nb, c, sink := b.AddNode(), b.AddNode(), b.AddNode(), b.AddNode(), b.AddNode()
	b.AddEdge(src, a)
	b.AddEdge(a, nb)
	b.AddEdge(nb, c)
	b.AddEdge(a, c)
	b.AddEdge(c, sink)
	g, err := b.Build(src, sink)
	if err != nil {
		t.Fatal(err)
	}
	if g.Level(c) != 3 {
		t.Errorf("level(c) = %d, want 3 (longest path)", g.Level(c))
	}
}

func TestCycleDetected(t *testing.T) {
	b := NewBuilder()
	src, a, c, sink := b.AddNode(), b.AddNode(), b.AddNode(), b.AddNode()
	b.AddEdge(src, a)
	b.AddEdge(a, c)
	b.AddEdge(c, a) // cycle
	b.AddEdge(c, sink)
	if _, err := b.Build(src, sink); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	b := NewBuilder()
	src, a, sink := b.AddNode(), b.AddNode(), b.AddNode()
	b.AddEdge(src, a)
	b.AddEdge(a, a)
	b.AddEdge(a, sink)
	if _, err := b.Build(src, sink); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestDanglingNodeRejected(t *testing.T) {
	b := NewBuilder()
	src, a, sink := b.AddNode(), b.AddNode(), b.AddNode()
	orphanIn := b.AddNode() // no fanin
	b.AddEdge(src, a)
	b.AddEdge(a, sink)
	b.AddEdge(orphanIn, sink)
	if _, err := b.Build(src, sink); err == nil {
		t.Fatal("expected no-fanin error")
	}

	b2 := NewBuilder()
	src2, a2, sink2 := b2.AddNode(), b2.AddNode(), b2.AddNode()
	deadEnd := b2.AddNode() // no fanout
	b2.AddEdge(src2, a2)
	b2.AddEdge(a2, sink2)
	b2.AddEdge(src2, deadEnd)
	if _, err := b2.Build(src2, sink2); err == nil {
		t.Fatal("expected no-fanout error")
	}
}

func TestSourceWithFaninRejected(t *testing.T) {
	b := NewBuilder()
	src, a, sink := b.AddNode(), b.AddNode(), b.AddNode()
	b.AddEdge(src, a)
	b.AddEdge(a, sink)
	b.AddEdge(a, src)
	if _, err := b.Build(src, sink); err == nil {
		t.Fatal("expected source-fanin error")
	}
}

func TestSinkWithFanoutRejected(t *testing.T) {
	b := NewBuilder()
	src, a, sink := b.AddNode(), b.AddNode(), b.AddNode()
	b.AddEdge(src, a)
	b.AddEdge(a, sink)
	b.AddEdge(sink, a)
	if _, err := b.Build(src, sink); err == nil {
		t.Fatal("expected sink-fanout error")
	}
}

func TestSourceSinkValidation(t *testing.T) {
	b := NewBuilder()
	src := b.AddNode()
	if _, err := b.Build(src, src); err == nil {
		t.Fatal("expected coincident source/sink error")
	}
	if _, err := b.Build(src, NodeID(99)); err == nil {
		t.Fatal("expected out-of-range sink error")
	}
}

func TestAddNodes(t *testing.T) {
	b := NewBuilder()
	first := b.AddNodes(5)
	if first != 0 || b.NumNodes() != 5 {
		t.Fatalf("AddNodes: first=%d count=%d", first, b.NumNodes())
	}
	next := b.AddNode()
	if next != 5 {
		t.Fatalf("node after AddNodes = %d, want 5", next)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	b.AddNode()
	b.AddEdge(0, 7)
}

// randomLayeredDAG builds a valid layered random DAG for property tests:
// every non-source node gets at least one fanin from an earlier layer,
// nodes without consumers are wired to the sink.
func randomLayeredDAG(rng *rand.Rand, layers, width int) (*Builder, NodeID, NodeID) {
	b := NewBuilder()
	src := b.AddNode()
	prev := []NodeID{src}
	var all []NodeID
	for l := 0; l < layers; l++ {
		cur := make([]NodeID, 0, width)
		for w := 0; w < 1+rng.Intn(width); w++ {
			n := b.AddNode()
			// At least one fanin from the previous layer keeps levels tight.
			b.AddEdge(prev[rng.Intn(len(prev))], n)
			// Extra random fanins from any earlier node.
			for k := 0; k < rng.Intn(3); k++ {
				cand := src
				if len(all) > 0 {
					cand = all[rng.Intn(len(all))]
				}
				if cand != n {
					b.AddEdge(cand, n)
				}
			}
			cur = append(cur, n)
		}
		all = append(all, cur...)
		prev = cur
	}
	sink := b.AddNode()
	// Wire every node with no fanout to the sink.
	fanout := make(map[NodeID]bool)
	for _, e := range b.edges {
		fanout[e.From] = true
	}
	for _, n := range all {
		if !fanout[n] {
			b.AddEdge(n, sink)
		}
	}
	if !fanout[src] {
		b.AddEdge(src, sink)
	}
	return b, src, sink
}

func TestRandomDAGInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		b, src, sink := randomLayeredDAG(rng, 2+rng.Intn(8), 1+rng.Intn(6))
		g, err := b.Build(src, sink)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Topological order property.
		pos := make([]int, g.NumNodes())
		for i, n := range g.Topo() {
			pos[n] = i
		}
		for i := 0; i < g.NumEdges(); i++ {
			e := g.EdgeAt(EdgeID(i))
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("trial %d: topo violation on %d->%d", trial, e.From, e.To)
			}
			// Level strictly increases along edges.
			if g.Level(e.From) >= g.Level(e.To) {
				t.Fatalf("trial %d: level not increasing on %d->%d", trial, e.From, e.To)
			}
		}
		// Level equals 1 + max predecessor level.
		for _, n := range g.Topo() {
			if n == g.Source() {
				continue
			}
			want := 0
			for _, eid := range g.In(n) {
				if l := g.Level(g.EdgeAt(eid).From) + 1; l > want {
					want = l
				}
			}
			if g.Level(n) != want {
				t.Fatalf("trial %d: level(%d) = %d, want %d", trial, n, g.Level(n), want)
			}
		}
	}
}
