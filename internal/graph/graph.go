// Package graph implements the timing graph of the paper's Definition 1:
// a directed acyclic graph with exactly one source and one sink, whose
// nodes correspond to circuit nets and whose edges correspond to gate
// input-pin-to-output-pin delay arcs (plus zero-delay arcs from the
// source to each primary input and from each primary output to the sink).
//
// The package holds pure topology — node and edge identities, adjacency,
// levelization and topological order. Delay semantics are attached by the
// netlist elaboration and consumed by the STA/SSTA engines.
package graph

import (
	"fmt"
)

// NodeID identifies a node (net). IDs are dense indices from 0.
type NodeID int32

// EdgeID identifies an edge (pin-to-pin arc). IDs are dense indices from 0.
type EdgeID int32

// Edge is an ordered pair of nodes.
type Edge struct {
	From, To NodeID
}

// Builder accumulates nodes and edges before validation.
type Builder struct {
	numNodes int
	edges    []Edge
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddNode allocates a new node and returns its ID.
func (b *Builder) AddNode() NodeID {
	id := NodeID(b.numNodes)
	b.numNodes++
	return id
}

// AddNodes allocates n nodes and returns the first ID.
func (b *Builder) AddNodes(n int) NodeID {
	id := NodeID(b.numNodes)
	b.numNodes += n
	return id
}

// NumNodes returns the number of nodes allocated so far.
func (b *Builder) NumNodes() int { return b.numNodes }

// AddEdge records a directed edge and returns its ID. Endpoints must
// already exist.
func (b *Builder) AddEdge(from, to NodeID) EdgeID {
	if int(from) >= b.numNodes || int(to) >= b.numNodes || from < 0 || to < 0 {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) with %d nodes", from, to, b.numNodes))
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{From: from, To: to})
	return id
}

// Graph is a validated timing graph. It is immutable after Build.
type Graph struct {
	source, sink NodeID
	edges        []Edge
	in, out      [][]EdgeID
	level        []int32 // longest edge distance from source
	topo         []NodeID
	maxLevel     int32
}

// Build validates the accumulated topology and returns the immutable
// graph. It checks that source has no fanin, sink has no fanout, the
// graph is acyclic, and every node both is reachable from source and
// reaches sink.
func (b *Builder) Build(source, sink NodeID) (*Graph, error) {
	n := b.numNodes
	if int(source) >= n || int(sink) >= n || source < 0 || sink < 0 {
		return nil, fmt.Errorf("graph: source %d or sink %d out of range (%d nodes)", source, sink, n)
	}
	if source == sink {
		return nil, fmt.Errorf("graph: source and sink coincide at node %d", source)
	}
	g := &Graph{
		source: source,
		sink:   sink,
		edges:  b.edges,
		in:     make([][]EdgeID, n),
		out:    make([][]EdgeID, n),
	}
	for id, e := range b.edges {
		if e.From == e.To {
			return nil, fmt.Errorf("graph: self loop at node %d", e.From)
		}
		g.out[e.From] = append(g.out[e.From], EdgeID(id))
		g.in[e.To] = append(g.in[e.To], EdgeID(id))
	}
	if len(g.in[source]) != 0 {
		return nil, fmt.Errorf("graph: source node %d has %d fanin edges", source, len(g.in[source]))
	}
	if len(g.out[sink]) != 0 {
		return nil, fmt.Errorf("graph: sink node %d has %d fanout edges", sink, len(g.out[sink]))
	}
	if err := g.computeOrder(); err != nil {
		return nil, err
	}
	return g, nil
}

// computeOrder runs Kahn's algorithm to produce a topological order,
// detects cycles, computes levels as longest edge distance from the
// source, and verifies full source-to-sink connectivity.
func (g *Graph) computeOrder() error {
	n := len(g.in)
	indeg := make([]int32, n)
	for i := range indeg {
		indeg[i] = int32(len(g.in[i]))
	}
	g.level = make([]int32, n)
	g.topo = make([]NodeID, 0, n)
	queue := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.topo = append(g.topo, u)
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			if lv := g.level[u] + 1; lv > g.level[v] {
				g.level[v] = lv
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(g.topo) != n {
		return fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(g.topo), n)
	}
	// Connectivity: every non-source node must have fanin (reachable only
	// through the DAG from roots); the only root must be the source, and
	// the only leaf the sink.
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if id != g.source && len(g.in[i]) == 0 {
			return fmt.Errorf("graph: node %d has no fanin and is not the source", i)
		}
		if id != g.sink && len(g.out[i]) == 0 {
			return fmt.Errorf("graph: node %d has no fanout and is not the sink", i)
		}
	}
	g.maxLevel = g.level[g.sink]
	return nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.in) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Source returns the unique source node.
func (g *Graph) Source() NodeID { return g.source }

// Sink returns the unique sink node.
func (g *Graph) Sink() NodeID { return g.sink }

// EdgeAt returns the endpoints of edge id.
func (g *Graph) EdgeAt(id EdgeID) Edge { return g.edges[id] }

// In returns the fanin edge IDs of node n. The slice is shared; callers
// must not mutate it.
func (g *Graph) In(n NodeID) []EdgeID { return g.in[n] }

// Out returns the fanout edge IDs of node n. The slice is shared; callers
// must not mutate it.
func (g *Graph) Out(n NodeID) []EdgeID { return g.out[n] }

// Level returns the node's level: the longest edge distance from the
// source. The source is level 0 and the sink has the maximum level.
func (g *Graph) Level(n NodeID) int { return int(g.level[n]) }

// MaxLevel returns the sink's level.
func (g *Graph) MaxLevel() int { return int(g.maxLevel) }

// Topo returns a topological order of all nodes. The slice is shared;
// callers must not mutate it.
func (g *Graph) Topo() []NodeID { return g.topo }

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{nodes=%d, edges=%d, levels=%d}", g.NumNodes(), g.NumEdges(), g.MaxLevel())
}
