// Package dist implements the discretized probability distributions the
// SSTA engine propagates (the DAC'03 representation the paper builds
// on): a probability mass function on the uniform grid t = i·dt. Bin k
// of a Dist carries the probability that the value equals (i0+k)·dt, so
// convolution (delay addition along an edge) and the independence
// maximum (fanin merge) are exact lattice operations — which is what
// lets the accelerated optimizer reproduce brute-force results bit for
// bit.
//
// The package also provides the perturbation machinery of Section 3:
// PerturbationBound computes Δ, the largest leftward shift of a
// perturbed CDF against its base (the per-node quantity whose maximum
// over a propagation front is the paper's pruning bound Smx·Δw).
package dist

import (
	"fmt"
	"math"
)

// Dist is a discretized probability distribution on a uniform grid:
// mass p[k] sits at time (i0+k)·dt. The mass vector always sums to 1
// (up to float rounding) and has nonzero first and last entries.
type Dist struct {
	dt float64
	i0 int
	p  []float64
}

// trim drops zero-mass bins at both ends, keeping supports tight.
//
// An all-zero mass vector panics: every constructor in this package
// (Point, TruncGauss, Convolve, MaxIndep, MinIndep) preserves unit
// mass, so zero total mass can only mean a corrupted operand or a bug
// in a new operation. The historical fallback — silently returning a
// single zero-mass bin — violated the documented mass-sums-to-1
// invariant and let Percentile/CDF/Mean return garbage far from the
// actual defect; failing loudly at the construction site is the
// debuggable behavior.
func trim(dt float64, i0 int, p []float64) *Dist {
	lo, hi := 0, len(p)
	for lo < hi && p[lo] == 0 {
		lo++
	}
	for hi > lo && p[hi-1] == 0 {
		hi--
	}
	if lo == hi {
		panic(fmt.Sprintf("dist: zero total mass over %d bins (dt=%v, i0=%v) — operand violated the mass-sums-to-1 invariant", len(p), dt, i0))
	}
	return &Dist{dt: dt, i0: i0 + lo, p: p[lo:hi]}
}

// Point returns the distribution concentrated on the grid point nearest
// to v.
func Point(dt, v float64) *Dist {
	if dt <= 0 {
		panic(fmt.Sprintf("dist: non-positive dt %v", dt))
	}
	return &Dist{dt: dt, i0: int(math.Round(v / dt)), p: []float64{1}}
}

// TruncGauss discretizes a Gaussian with the given mean and standard
// deviation, truncated at ±k·sigma and renormalized — the paper's
// intra-die delay variation model. A zero sigma yields a point mass.
func TruncGauss(dt, mean, sigma, k float64) (*Dist, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("dist: non-positive dt %v", dt)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("dist: negative sigma %v", sigma)
	}
	if sigma == 0 {
		return Point(dt, mean), nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("dist: non-positive truncation %v", k)
	}
	lo, hi := mean-k*sigma, mean+k*sigma
	iLo := int(math.Round(lo / dt))
	iHi := int(math.Round(hi / dt))
	p := make([]float64, iHi-iLo+1)
	total := 0.0
	for i := iLo; i <= iHi; i++ {
		a := math.Max(lo, (float64(i)-0.5)*dt)
		b := math.Min(hi, (float64(i)+0.5)*dt)
		if b <= a {
			continue
		}
		m := phi((b-mean)/sigma) - phi((a-mean)/sigma)
		p[i-iLo] = m
		total += m
	}
	if total <= 0 {
		// The whole truncation window fell inside one half-bin; collapse
		// to a point mass at the mean.
		return Point(dt, mean), nil
	}
	for i := range p {
		p[i] /= total
	}
	return trim(dt, iLo, p), nil
}

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// DT returns the grid resolution in time units.
func (d *Dist) DT() float64 { return d.dt }

// I0 returns the grid index of the first bin.
func (d *Dist) I0() int { return d.i0 }

// NumBins returns the number of bins in the support.
func (d *Dist) NumBins() int { return len(d.p) }

// MassAt returns the probability mass of bin k (0 <= k < NumBins).
func (d *Dist) MassAt(k int) float64 { return d.p[k] }

// MinTime returns the earliest support point.
func (d *Dist) MinTime() float64 { return float64(d.i0) * d.dt }

// MaxTime returns the latest support point.
func (d *Dist) MaxTime() float64 { return float64(d.i0+len(d.p)-1) * d.dt }

// Mean returns the expected value.
func (d *Dist) Mean() float64 {
	m := 0.0
	for k, pk := range d.p {
		m += float64(d.i0+k) * pk
	}
	return m * d.dt
}

// Std returns the standard deviation.
func (d *Dist) Std() float64 {
	mean := d.Mean()
	v := 0.0
	for k, pk := range d.p {
		x := float64(d.i0+k)*d.dt - mean
		v += pk * x * x
	}
	return math.Sqrt(v)
}

// probEps absorbs float rounding when comparing cumulative
// probabilities: bin sums drift by ~1e-16 per operation, and a quantile
// query must not skip to the next bin over such noise.
const probEps = 1e-12

// Percentile returns the p-quantile: the earliest grid point whose
// cumulative probability reaches p.
func (d *Dist) Percentile(p float64) float64 {
	cum := 0.0
	for k, pk := range d.p {
		cum += pk
		if cum >= p-probEps {
			return float64(d.i0+k) * d.dt
		}
	}
	return d.MaxTime()
}

// CDF returns the probability of a value at or below t.
func (d *Dist) CDF(t float64) float64 {
	cum := 0.0
	for k, pk := range d.p {
		if float64(d.i0+k)*d.dt > t+probEps*d.dt {
			break
		}
		cum += pk
	}
	return cum
}

// ShiftBins returns a copy displaced by n grid steps (negative n shifts
// earlier).
func (d *Dist) ShiftBins(n int) *Dist {
	return &Dist{dt: d.dt, i0: d.i0 + n, p: d.p}
}

// Convolve returns the distribution of the sum of two independent
// variables — the arrival-plus-edge-delay step of SSTA. Exact on the
// lattice: indices add.
func Convolve(a, b *Dist) *Dist {
	out := make([]float64, len(a.p)+len(b.p)-1)
	// Convolve with the shorter operand outer so the inner loop runs
	// long and contiguous.
	x, y := a, b
	if len(x.p) > len(y.p) {
		x, y = y, x
	}
	for i, pi := range x.p {
		if pi == 0 {
			continue
		}
		row := out[i : i+len(y.p)]
		for j, pj := range y.p {
			row[j] += pi * pj
		}
	}
	return trim(a.dt, a.i0+b.i0, out)
}

// MaxIndep returns the distribution of the maximum of two independent
// variables — the fanin merge of SSTA: the result CDF is the product of
// the operand CDFs, evaluated bin by bin on the common grid.
func MaxIndep(a, b *Dist) *Dist {
	// A strictly-later operand dominates outright: when one support ends
	// at or before the other begins, the maximum IS the later operand —
	// returned as-is, bit for bit. This is the exact cancellation the
	// optimizer's dead-front elision detects ("an unperturbed fanin
	// dominates the max"), and the common case on unbalanced fanins.
	if a.i0+len(a.p)-1 <= b.i0 {
		return b
	}
	if b.i0+len(b.p)-1 <= a.i0 {
		return a
	}
	lo := a.i0
	if b.i0 > lo {
		lo = b.i0
	}
	aHi, bHi := a.i0+len(a.p)-1, b.i0+len(b.p)-1
	hi := aHi
	if bHi > hi {
		hi = bHi
	}
	out := make([]float64, hi-lo+1)
	cumA := a.cdfBelow(lo)
	cumB := b.cdfBelow(lo)
	prev := 0.0 // product of CDFs at the previous index; P(max < lo) = 0
	for i := lo; i <= hi; i++ {
		if k := i - a.i0; k >= 0 && k < len(a.p) {
			cumA += a.p[k]
			// Snap a fully-consumed operand's CDF to exactly 1 (bin sums
			// land at 1±ulps): a dominated operand then contributes the
			// identity, so the max of X and a strictly-later Y reproduces
			// Y bit for bit — the exact cancellation the optimizer's
			// dead-front elision detects.
			if k == len(a.p)-1 && math.Abs(cumA-1) < probEps {
				cumA = 1
			}
		}
		if k := i - b.i0; k >= 0 && k < len(b.p) {
			cumB += b.p[k]
			if k == len(b.p)-1 && math.Abs(cumB-1) < probEps {
				cumB = 1
			}
		}
		prod := cumA * cumB
		m := prod - prev
		if m < 0 {
			m = 0
		}
		out[i-lo] = m
		prev = prod
	}
	return trim(a.dt, lo, out)
}

// Neg returns the distribution of the negated variable: mass at grid
// point i moves to -i. Used to subtract independent variables by
// convolution (A - B = A + (-B)).
func (d *Dist) Neg() *Dist {
	p := make([]float64, len(d.p))
	for i, v := range d.p {
		p[len(p)-1-i] = v
	}
	return &Dist{dt: d.dt, i0: -(d.i0 + len(d.p) - 1), p: p}
}

// SubConvolve returns the distribution of the difference A - B of two
// independent variables — the backward-propagation step of required-time
// analysis (required at a fanin = required at the fanout minus the edge
// delay). Exact on the lattice: indices subtract.
func SubConvolve(a, b *Dist) *Dist {
	return Convolve(a, b.Neg())
}

// MinIndep returns the distribution of the minimum of two independent
// variables — the fanout merge of backward required-time propagation:
// the survival function of the result is the product of the operand
// survival functions, evaluated bin by bin on the common grid.
func MinIndep(a, b *Dist) *Dist {
	// A strictly-earlier operand dominates outright: when one support
	// ends at or before the other begins, the minimum IS the earlier
	// operand — returned as-is, bit for bit (the mirror image of
	// MaxIndep's shortcut).
	if a.i0+len(a.p)-1 <= b.i0 {
		return a
	}
	if b.i0+len(b.p)-1 <= a.i0 {
		return b
	}
	lo := a.i0
	if b.i0 < lo {
		lo = b.i0
	}
	aHi, bHi := a.i0+len(a.p)-1, b.i0+len(b.p)-1
	hi := aHi
	if bHi < hi {
		hi = bHi
	}
	out := make([]float64, hi-lo+1)
	cumA := a.cdfBelow(lo)
	cumB := b.cdfBelow(lo)
	// P(min <= t) = 1 - (1-Fa)(1-Fb); accumulate mass per bin as the
	// CDF difference, with the same snap-to-1 protection as MaxIndep.
	prev := 1 - (1-cumA)*(1-cumB)
	for i := lo; i <= hi; i++ {
		if k := i - a.i0; k >= 0 && k < len(a.p) {
			cumA += a.p[k]
			if k == len(a.p)-1 && math.Abs(cumA-1) < probEps {
				cumA = 1
			}
		}
		if k := i - b.i0; k >= 0 && k < len(b.p) {
			cumB += b.p[k]
			if k == len(b.p)-1 && math.Abs(cumB-1) < probEps {
				cumB = 1
			}
		}
		cur := 1 - (1-cumA)*(1-cumB)
		m := cur - prev
		if m < 0 {
			m = 0
		}
		out[i-lo] = m
		prev = cur
	}
	return trim(a.dt, lo, out)
}

// cdfBelow returns the cumulative probability strictly before absolute
// grid index i.
func (d *Dist) cdfBelow(i int) float64 {
	if i <= d.i0 {
		return 0
	}
	n := i - d.i0
	if n >= len(d.p) {
		n = len(d.p)
	}
	cum := 0.0
	for k := 0; k < n; k++ {
		cum += d.p[k]
	}
	// Same snap as MaxIndep's running sums: a fully-consumed
	// distribution reports CDF exactly 1.
	if n == len(d.p) && math.Abs(cum-1) < probEps {
		cum = 1
	}
	return cum
}

// ApproxEqual reports whether two distributions assign the same mass to
// every grid point within tol (tol = 0 demands bit equality) — the test
// the optimizer uses to detect that a perturbation has died out.
func ApproxEqual(a, b *Dist, tol float64) bool {
	if a == b {
		return true
	}
	if a.dt != b.dt {
		return false
	}
	lo, hi := a.i0, a.i0+len(a.p)-1
	if b.i0 < lo {
		lo = b.i0
	}
	if h := b.i0 + len(b.p) - 1; h > hi {
		hi = h
	}
	for i := lo; i <= hi; i++ {
		var ma, mb float64
		if k := i - a.i0; k >= 0 && k < len(a.p) {
			ma = a.p[k]
		}
		if k := i - b.i0; k >= 0 && k < len(b.p) {
			mb = b.p[k]
		}
		if diff := ma - mb; diff > tol || diff < -tol {
			return false
		}
	}
	return true
}

// MaxPercentileGap returns the largest horizontal gap between the
// quantile functions of a and b: sup over probability levels of
// (Q_a(p) − Q_b(p)), clamped at zero. When b is a leftward perturbation
// of a, this is the maximum arrival-time improvement at any percentile.
//
// Probability levels within probEps are treated as reached — the ε
// slack the optimizer's pruneSlack constant accounts for.
func MaxPercentileGap(a, b *Dist) float64 {
	gap := 0.0
	cumB := 0.0
	cumA := 0.0
	ja := 0 // bins of a consumed so far
	for k, pk := range b.p {
		cumB += pk
		if pk <= 0 {
			continue
		}
		for ja < len(a.p) && cumA < cumB-probEps {
			cumA += a.p[ja]
			ja++
		}
		// Q_a(cumB) is the last bin consumed; before any bin is consumed
		// the level is below probEps and the gap there is immaterial.
		if ja == 0 {
			continue
		}
		g := float64((a.i0+ja-1)-(b.i0+k)) * a.dt
		if g > gap {
			gap = g
		}
	}
	return gap
}

// PerturbationBound returns Δ for a perturbed arrival CDF against its
// base: the largest leftward shift at any probability level, an upper
// bound (Theorems 1–4) on how much any downstream percentile — and so
// the optimization objective — can improve.
func PerturbationBound(base, perturbed *Dist) float64 {
	return MaxPercentileGap(base, perturbed)
}
