// Package dist implements the discretized probability distributions the
// SSTA engine propagates (the DAC'03 representation the paper builds
// on): a probability mass function on the uniform grid t = i·dt. Bin k
// of a Dist carries the probability that the value equals (i0+k)·dt, so
// convolution (delay addition along an edge) and the independence
// maximum (fanin merge) are exact lattice operations — which is what
// lets the accelerated optimizer reproduce brute-force results bit for
// bit.
//
// The package also provides the perturbation machinery of Section 3:
// PerturbationBound computes Δ, the largest leftward shift of a
// perturbed CDF against its base (the per-node quantity whose maximum
// over a propagation front is the paper's pruning bound Smx·Δw).
//
// # Memory model
//
// Every kernel exists in two forms. The classic form (Convolve,
// MaxIndep, MinIndep, SubConvolve, Neg) allocates a fresh immutable
// Dist — safe to share between goroutines, snapshot, and retain
// forever. The Into form (ConvolveInto, MaxIndepInto, …) takes an
// *Arena and returns a scratch view whose mass vector and header live
// in arena memory: bit-identical values (same trim, same snap-to-1),
// zero steady-state allocations, but valid only until the arena's next
// Reset. Call Persist on a scratch view to obtain an immutable compact
// copy before retaining it. A nil arena makes every Into kernel behave
// exactly like its allocating wrapper. See DESIGN.md ("Memory model")
// for the ownership rules the SSTA hot paths follow.
package dist

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Dist is a discretized probability distribution on a uniform grid:
// mass p[k] sits at time (i0+k)·dt. The mass vector always sums to 1
// (up to float rounding) and has nonzero first and last entries.
//
// A Dist is immutable after construction unless it is an arena-backed
// scratch view (see Arena); scratch views die at the arena's next
// Reset and must be Persist-ed before being retained or shared.
type Dist struct {
	dt float64
	i0 int
	p  []float64

	// scratch marks arena-backed views; Persist uses it to decide
	// whether a compact copy is needed.
	scratch bool

	// cum lazily caches the cumulative sums of p for Percentile/CDF:
	// cum[k] = p[0]+…+p[k], computed on first query and binary-searched
	// afterwards. The pointer is atomic so concurrent readers may race
	// to fill it — both compute the identical array, so either store
	// wins harmlessly.
	cum atomic.Pointer[[]float64]
}

// trim drops zero-mass bins at both ends, keeping supports tight.
//
// An all-zero mass vector panics: every constructor in this package
// (Point, TruncGauss, Convolve, MaxIndep, MinIndep) preserves unit
// mass, so zero total mass can only mean a corrupted operand or a bug
// in a new operation. The historical fallback — silently returning a
// single zero-mass bin — violated the documented mass-sums-to-1
// invariant and let Percentile/CDF/Mean return garbage far from the
// actual defect; failing loudly at the construction site is the
// debuggable behavior.
func trim(dt float64, i0 int, p []float64) *Dist {
	return trimInto(nil, dt, i0, p)
}

// trimInto is trim with the result header drawn from ar (or the heap
// when ar is nil). The mass slice is never copied — the returned Dist
// views p[lo:hi].
func trimInto(ar *Arena, dt float64, i0 int, p []float64) *Dist {
	lo, hi := 0, len(p)
	for lo < hi && p[lo] == 0 {
		lo++
	}
	for hi > lo && p[hi-1] == 0 {
		hi--
	}
	if lo == hi {
		panic(fmt.Sprintf("dist: zero total mass over %d bins (dt=%v, i0=%v) — operand violated the mass-sums-to-1 invariant", len(p), dt, i0))
	}
	if ar == nil {
		return &Dist{dt: dt, i0: i0 + lo, p: p[lo:hi]}
	}
	return ar.newDist(dt, i0+lo, p[lo:hi])
}

// Point returns the distribution concentrated on the grid point nearest
// to v.
func Point(dt, v float64) *Dist {
	if dt <= 0 {
		panic(fmt.Sprintf("dist: non-positive dt %v", dt))
	}
	return &Dist{dt: dt, i0: int(math.Round(v / dt)), p: []float64{1}}
}

// TruncGauss discretizes a Gaussian with the given mean and standard
// deviation, truncated at ±k·sigma and renormalized — the paper's
// intra-die delay variation model. A zero sigma yields a point mass.
func TruncGauss(dt, mean, sigma, k float64) (*Dist, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("dist: non-positive dt %v", dt)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("dist: negative sigma %v", sigma)
	}
	if sigma == 0 {
		return Point(dt, mean), nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("dist: non-positive truncation %v", k)
	}
	lo, hi := mean-k*sigma, mean+k*sigma
	iLo := int(math.Round(lo / dt))
	iHi := int(math.Round(hi / dt))
	p := make([]float64, iHi-iLo+1)
	total := 0.0
	for i := iLo; i <= iHi; i++ {
		a := math.Max(lo, (float64(i)-0.5)*dt)
		b := math.Min(hi, (float64(i)+0.5)*dt)
		if b <= a {
			continue
		}
		m := phi((b-mean)/sigma) - phi((a-mean)/sigma)
		p[i-iLo] = m
		total += m
	}
	if total <= 0 {
		// The whole truncation window fell inside one half-bin; collapse
		// to a point mass at the mean.
		return Point(dt, mean), nil
	}
	for i := range p {
		p[i] /= total
	}
	return trim(dt, iLo, p), nil
}

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// DT returns the grid resolution in time units.
func (d *Dist) DT() float64 { return d.dt }

// I0 returns the grid index of the first bin.
func (d *Dist) I0() int { return d.i0 }

// NumBins returns the number of bins in the support.
func (d *Dist) NumBins() int { return len(d.p) }

// MassAt returns the probability mass of bin k (0 <= k < NumBins).
func (d *Dist) MassAt(k int) float64 { return d.p[k] }

// MinTime returns the earliest support point.
func (d *Dist) MinTime() float64 { return float64(d.i0) * d.dt }

// MaxTime returns the latest support point.
func (d *Dist) MaxTime() float64 { return float64(d.i0+len(d.p)-1) * d.dt }

// Mean returns the expected value.
func (d *Dist) Mean() float64 {
	m := 0.0
	for k, pk := range d.p {
		m += float64(d.i0+k) * pk
	}
	return m * d.dt
}

// Std returns the standard deviation.
func (d *Dist) Std() float64 {
	mean := d.Mean()
	v := 0.0
	for k, pk := range d.p {
		x := float64(d.i0+k)*d.dt - mean
		v += pk * x * x
	}
	return math.Sqrt(v)
}

// probEps absorbs float rounding when comparing cumulative
// probabilities: bin sums drift by ~1e-16 per operation, and a quantile
// query must not skip to the next bin over such noise.
const probEps = 1e-12

// cumsum returns the cached cumulative-sum array, computing it on first
// use: cumsum()[k] is the running sum p[0]+…+p[k] in index order —
// bit-identical to the accumulator the historical linear scans carried,
// so binary searches over it reproduce the scans exactly. Concurrent
// first queries may compute it twice; both arrays are identical and the
// atomic store is idempotent.
func (d *Dist) cumsum() []float64 {
	if c := d.cum.Load(); c != nil {
		return *c
	}
	c := make([]float64, len(d.p))
	s := 0.0
	for k, pk := range d.p {
		s += pk
		c[k] = s
	}
	d.cum.Store(&c)
	return c
}

// Percentile returns the p-quantile: the earliest grid point whose
// cumulative probability reaches p. The cumulative sums are cached on
// first query and binary-searched afterwards, so repeated quantile
// queries against one distribution (the slack/criticality tables) cost
// O(log n) instead of O(n).
//
// The domain is [0, 1]: p = 0 answers MinTime (modulo probEps), p = 1
// answers MaxTime. Out-of-domain inputs — NaN, p < 0, p > 1 — return
// NaN rather than silently snapping to an in-range quantile; a caller
// holding an unvalidated probability must check it, not launder it.
func (d *Dist) Percentile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	c := d.cumsum()
	thr := p - probEps
	k := sort.Search(len(c), func(i int) bool { return c[i] >= thr })
	if k == len(c) {
		return d.MaxTime()
	}
	return float64(d.i0+k) * d.dt
}

// CDF returns the probability of a value at or below t. Like
// Percentile it binary-searches the cached cumulative sums. A NaN
// query returns NaN (±Inf behave naturally: -Inf → 0, +Inf → 1).
func (d *Dist) CDF(t float64) float64 {
	if math.IsNaN(t) {
		return math.NaN()
	}
	thr := t + probEps*d.dt
	// n is the number of leading bins whose grid time is at or below
	// thr; grid times increase strictly with the index, so the
	// predicate is monotone.
	n := sort.Search(len(d.p), func(k int) bool { return float64(d.i0+k)*d.dt > thr })
	if n == 0 {
		return 0
	}
	return d.cumsum()[n-1]
}

// ShiftBins returns a copy displaced by n grid steps (negative n shifts
// earlier). The mass vector is shared, so a shift of a scratch view is
// itself a scratch view.
func (d *Dist) ShiftBins(n int) *Dist {
	return &Dist{dt: d.dt, i0: d.i0 + n, p: d.p, scratch: d.scratch}
}

// Persist returns d when it is an ordinary immutable value, or a
// compact heap copy when d is an arena-backed scratch view — the one
// operation that may move a kernel result out of scratch memory into a
// retained structure (an arrival slot, an overlay map, a snapshot).
func (d *Dist) Persist() *Dist {
	if !d.scratch {
		return d
	}
	p := make([]float64, len(d.p))
	copy(p, d.p)
	return &Dist{dt: d.dt, i0: d.i0, p: p}
}

// IsScratch reports whether d is an arena-backed view (valid only until
// its arena's next Reset).
func (d *Dist) IsScratch() bool { return d.scratch }

// Convolve returns the distribution of the sum of two independent
// variables — the arrival-plus-edge-delay step of SSTA. Exact on the
// lattice: indices add.
func Convolve(a, b *Dist) *Dist { return ConvolveInto(nil, a, b) }

// ConvolveInto is Convolve with the output mass vector and header drawn
// from ar; a nil arena allocates, making it identical to Convolve. The
// result values are bit-identical either way.
//
// Wide convolutions — both operand supports at or above the process
// crossover (see SetConvolveCrossover and fft.go) — take an O(n log n)
// FFT route whose per-bin values agree with the direct kernel to
// ~1e-15 of mass; everything below the crossover runs the direct
// kernel bit for bit.
func ConvolveInto(ar *Arena, a, b *Dist) *Dist {
	if useFFT(len(a.p), len(b.p)) {
		return convolveFFTInto(ar, a, b)
	}
	return convolveDirectInto(ar, a, b)
}

// convolveDirectInto is the exact O(n·m) kernel: every output bin is
// the correctly-rounded sum of its contributing products, accumulated
// in index order. The FFT route's results are validated against this
// kernel, and calibration times it, so it must stay reachable without
// going through the dispatching ConvolveInto.
func convolveDirectInto(ar *Arena, a, b *Dist) *Dist {
	out := scratchFloats(ar, len(a.p)+len(b.p)-1)
	// Convolve with the shorter operand outer so the inner loop runs
	// long and contiguous.
	x, y := a, b
	if len(x.p) > len(y.p) {
		x, y = y, x
	}
	for i, pi := range x.p {
		if pi == 0 {
			continue
		}
		row := out[i : i+len(y.p)]
		for j, pj := range y.p {
			row[j] += pi * pj
		}
	}
	return trimInto(ar, a.dt, a.i0+b.i0, out)
}

// MaxIndep returns the distribution of the maximum of two independent
// variables — the fanin merge of SSTA: the result CDF is the product of
// the operand CDFs, evaluated bin by bin on the common grid.
func MaxIndep(a, b *Dist) *Dist { return MaxIndepInto(nil, a, b) }

// MaxIndepInto is MaxIndep writing into arena scratch (nil arena
// allocates). When one operand dominates outright the operand itself is
// returned — possibly a scratch view, possibly a shared immutable value;
// callers that retain the result go through Persist either way.
func MaxIndepInto(ar *Arena, a, b *Dist) *Dist {
	// A strictly-later operand dominates outright: when one support ends
	// at or before the other begins, the maximum IS the later operand —
	// returned as-is, bit for bit. This is the exact cancellation the
	// optimizer's dead-front elision detects ("an unperturbed fanin
	// dominates the max"), and the common case on unbalanced fanins.
	if a.i0+len(a.p)-1 <= b.i0 {
		return b
	}
	if b.i0+len(b.p)-1 <= a.i0 {
		return a
	}
	lo := a.i0
	if b.i0 > lo {
		lo = b.i0
	}
	aHi, bHi := a.i0+len(a.p)-1, b.i0+len(b.p)-1
	hi := aHi
	if bHi > hi {
		hi = bHi
	}
	out := scratchFloats(ar, hi-lo+1)
	// Prefix sums: accumulate each operand's CDF below lo in index
	// order — the same additions, in the same order, that the merge
	// loop below continues, so the running sums are bit-identical to a
	// single scan from each operand's first bin. (The dominance
	// shortcuts above guarantee neither prefix consumes a whole
	// operand, so no snap-to-1 check is needed here.)
	cumA, cumB := 0.0, 0.0
	for k := 0; k < lo-a.i0; k++ {
		cumA += a.p[k]
	}
	for k := 0; k < lo-b.i0; k++ {
		cumB += b.p[k]
	}
	prev := 0.0 // product of CDFs at the previous index; P(max < lo) = 0
	for i := lo; i <= hi; i++ {
		if k := i - a.i0; k >= 0 && k < len(a.p) {
			cumA += a.p[k]
			// Snap a fully-consumed operand's CDF to exactly 1 (bin sums
			// land at 1±ulps): a dominated operand then contributes the
			// identity, so the max of X and a strictly-later Y reproduces
			// Y bit for bit — the exact cancellation the optimizer's
			// dead-front elision detects.
			if k == len(a.p)-1 && math.Abs(cumA-1) < probEps {
				cumA = 1
			}
		}
		if k := i - b.i0; k >= 0 && k < len(b.p) {
			cumB += b.p[k]
			if k == len(b.p)-1 && math.Abs(cumB-1) < probEps {
				cumB = 1
			}
		}
		prod := cumA * cumB
		m := prod - prev
		if m < 0 {
			m = 0
		}
		out[i-lo] = m
		prev = prod
	}
	return trimInto(ar, a.dt, lo, out)
}

// Neg returns the distribution of the negated variable: mass at grid
// point i moves to -i. Used to subtract independent variables by
// convolution (A - B = A + (-B)).
func (d *Dist) Neg() *Dist { return NegInto(nil, d) }

// NegInto is Neg writing into arena scratch (nil arena allocates).
//
// An empty support panics: a zero-length mass vector violates the
// nonzero-mass invariant every constructor maintains, and the
// historical behavior — returning a headerless distribution whose i0
// arithmetic was computed from len(p)-1 = -1 — produced a corrupt value
// that only failed far downstream.
func NegInto(ar *Arena, d *Dist) *Dist {
	if len(d.p) == 0 {
		panic("dist: Neg of an empty distribution (zero-length support violates the nonzero-mass invariant)")
	}
	p := scratchFloats(ar, len(d.p))
	for i, v := range d.p {
		p[len(p)-1-i] = v
	}
	i0 := -(d.i0 + len(d.p) - 1)
	if ar == nil {
		return &Dist{dt: d.dt, i0: i0, p: p}
	}
	return ar.newDist(d.dt, i0, p)
}

// SubConvolve returns the distribution of the difference A - B of two
// independent variables — the backward-propagation step of required-time
// analysis (required at a fanin = required at the fanout minus the edge
// delay). Exact on the lattice: indices subtract.
func SubConvolve(a, b *Dist) *Dist { return SubConvolveInto(nil, a, b) }

// SubConvolveInto is SubConvolve with both the negation and the
// convolution working in arena scratch (nil arena allocates).
func SubConvolveInto(ar *Arena, a, b *Dist) *Dist {
	return ConvolveInto(ar, a, NegInto(ar, b))
}

// MinIndep returns the distribution of the minimum of two independent
// variables — the fanout merge of backward required-time propagation:
// the survival function of the result is the product of the operand
// survival functions, evaluated bin by bin on the common grid.
func MinIndep(a, b *Dist) *Dist { return MinIndepInto(nil, a, b) }

// MinIndepInto is MinIndep writing into arena scratch (nil arena
// allocates); the dominance shortcuts return the operand itself, as in
// MaxIndepInto.
func MinIndepInto(ar *Arena, a, b *Dist) *Dist {
	// A strictly-earlier operand dominates outright: when one support
	// ends at or before the other begins, the minimum IS the earlier
	// operand — returned as-is, bit for bit (the mirror image of
	// MaxIndep's shortcut).
	if a.i0+len(a.p)-1 <= b.i0 {
		return a
	}
	if b.i0+len(b.p)-1 <= a.i0 {
		return b
	}
	lo := a.i0
	if b.i0 < lo {
		lo = b.i0
	}
	aHi, bHi := a.i0+len(a.p)-1, b.i0+len(b.p)-1
	hi := aHi
	if bHi < hi {
		hi = bHi
	}
	out := scratchFloats(ar, hi-lo+1)
	// lo is the smaller i0, so both CDFs below lo are exactly zero — the
	// prefix sums MaxIndepInto accumulates are trivial here.
	cumA, cumB := 0.0, 0.0
	// P(min <= t) = 1 - (1-Fa)(1-Fb); accumulate mass per bin as the
	// CDF difference, with the same snap-to-1 protection as MaxIndep.
	prev := 1 - (1-cumA)*(1-cumB)
	for i := lo; i <= hi; i++ {
		if k := i - a.i0; k >= 0 && k < len(a.p) {
			cumA += a.p[k]
			if k == len(a.p)-1 && math.Abs(cumA-1) < probEps {
				cumA = 1
			}
		}
		if k := i - b.i0; k >= 0 && k < len(b.p) {
			cumB += b.p[k]
			if k == len(b.p)-1 && math.Abs(cumB-1) < probEps {
				cumB = 1
			}
		}
		cur := 1 - (1-cumA)*(1-cumB)
		m := cur - prev
		if m < 0 {
			m = 0
		}
		out[i-lo] = m
		prev = cur
	}
	return trimInto(ar, a.dt, lo, out)
}

// ApproxEqual reports whether two distributions assign the same mass to
// every grid point within tol (tol = 0 demands bit equality) — the test
// the optimizer uses to detect that a perturbation has died out.
func ApproxEqual(a, b *Dist, tol float64) bool {
	if a == b {
		return true
	}
	if a.dt != b.dt {
		return false
	}
	lo, hi := a.i0, a.i0+len(a.p)-1
	if b.i0 < lo {
		lo = b.i0
	}
	if h := b.i0 + len(b.p) - 1; h > hi {
		hi = h
	}
	for i := lo; i <= hi; i++ {
		var ma, mb float64
		if k := i - a.i0; k >= 0 && k < len(a.p) {
			ma = a.p[k]
		}
		if k := i - b.i0; k >= 0 && k < len(b.p) {
			mb = b.p[k]
		}
		if diff := ma - mb; diff > tol || diff < -tol {
			return false
		}
	}
	return true
}

// MaxPercentileGap returns the largest horizontal gap between the
// quantile functions of a and b: sup over probability levels of
// (Q_a(p) − Q_b(p)), clamped at zero. When b is a leftward perturbation
// of a, this is the maximum arrival-time improvement at any percentile.
//
// Probability levels within probEps are treated as reached — the ε
// slack the optimizer's pruneSlack constant accounts for.
func MaxPercentileGap(a, b *Dist) float64 {
	gap := 0.0
	cumB := 0.0
	cumA := 0.0
	ja := 0 // bins of a consumed so far
	for k, pk := range b.p {
		cumB += pk
		if pk <= 0 {
			continue
		}
		for ja < len(a.p) && cumA < cumB-probEps {
			cumA += a.p[ja]
			ja++
		}
		// Q_a(cumB) is the last bin consumed; before any bin is consumed
		// the level is below probEps and the gap there is immaterial.
		if ja == 0 {
			continue
		}
		g := float64((a.i0+ja-1)-(b.i0+k)) * a.dt
		if g > gap {
			gap = g
		}
	}
	return gap
}

// PerturbationBound returns Δ for a perturbed arrival CDF against its
// base: the largest leftward shift at any probability level, an upper
// bound (Theorems 1–4) on how much any downstream percentile — and so
// the optimization objective — can improve.
func PerturbationBound(base, perturbed *Dist) float64 {
	return MaxPercentileGap(base, perturbed)
}
