package dist

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"unsafe"
)

// randDist builds a random-support distribution for the equivalence
// sweeps: a renormalized random mass vector at a random offset.
func randDist(rng *rand.Rand, dt float64, maxBins int) *Dist {
	n := 1 + rng.Intn(maxBins)
	p := make([]float64, n)
	total := 0.0
	for i := range p {
		// Leave occasional interior zeros so trim and the skip-zero fast
		// paths get exercised.
		if rng.Intn(5) == 0 {
			continue
		}
		p[i] = rng.Float64()
		total += p[i]
	}
	if total == 0 {
		p[0], total = 1, 1
	}
	for i := range p {
		p[i] /= total
	}
	return trim(dt, rng.Intn(41)-20, p)
}

// bitIdentical demands exact equality of grid, support and every mass.
func bitIdentical(t *testing.T, label string, want, got *Dist) {
	t.Helper()
	if want.DT() != got.DT() || want.I0() != got.I0() || want.NumBins() != got.NumBins() {
		t.Fatalf("%s: header differs: want (dt=%v i0=%d bins=%d), got (dt=%v i0=%d bins=%d)",
			label, want.DT(), want.I0(), want.NumBins(), got.DT(), got.I0(), got.NumBins())
	}
	for k := 0; k < want.NumBins(); k++ {
		if want.MassAt(k) != got.MassAt(k) {
			t.Fatalf("%s: mass at bin %d differs: want %x, got %x", label, k, want.MassAt(k), got.MassAt(k))
		}
	}
}

// TestIntoKernelsBitIdentical sweeps randomized operand pairs through
// every Into kernel and demands bit-identical output versus the
// allocating wrappers — the contract that lets the SSTA hot paths adopt
// arenas without moving a single golden trace.
func TestIntoKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ar := NewArena()
	for trial := 0; trial < 300; trial++ {
		a := randDist(rng, 0.01, 60)
		b := randDist(rng, 0.01, 60)
		ar.Reset()
		bitIdentical(t, "Convolve", Convolve(a, b), ConvolveInto(ar, a, b))
		bitIdentical(t, "MaxIndep", MaxIndep(a, b), MaxIndepInto(ar, a, b))
		bitIdentical(t, "MinIndep", MinIndep(a, b), MinIndepInto(ar, a, b))
		bitIdentical(t, "SubConvolve", SubConvolve(a, b), SubConvolveInto(ar, a, b))
		bitIdentical(t, "Neg", a.Neg(), NegInto(ar, a))
	}
}

// TestIntoKernelsChainReuse chains kernels through one arena the way
// computeArrival does — convolve per fanin, fold with max — and checks
// the persisted result against the allocating chain, across several
// resets of the same arena (stale scratch from earlier rounds must
// never leak into later results).
func TestIntoKernelsChainReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ar := NewArena()
	for round := 0; round < 50; round++ {
		fanins := 1 + rng.Intn(4)
		arrs := make([]*Dist, fanins)
		delays := make([]*Dist, fanins)
		for i := range arrs {
			arrs[i] = randDist(rng, 0.01, 80)
			delays[i] = randDist(rng, 0.01, 40)
		}
		var want *Dist
		for i := range arrs {
			term := Convolve(arrs[i], delays[i])
			if want == nil {
				want = term
			} else {
				want = MaxIndep(want, term)
			}
		}
		ar.Reset()
		var acc *Dist
		for i := range arrs {
			term := ConvolveInto(ar, arrs[i], delays[i])
			if acc == nil {
				acc = term
			} else {
				acc = MaxIndepInto(ar, acc, term)
			}
		}
		got := acc.Persist()
		if got.IsScratch() {
			t.Fatal("Persist returned a scratch view")
		}
		bitIdentical(t, fmt.Sprintf("round %d", round), want, got)
	}
}

// TestPersistPassthrough: Persist on an ordinary immutable Dist is the
// identity (no copy), and on a scratch view yields an independent copy
// that survives a Reset overwriting the arena.
func TestPersistPassthrough(t *testing.T) {
	a, b := mustGauss(t, 0.01, 0.5, 0.05), mustGauss(t, 0.01, 0.6, 0.05)
	if a.Persist() != a {
		t.Error("Persist copied a heap distribution")
	}
	ar := NewArena()
	v := ConvolveInto(ar, a, b)
	if !v.IsScratch() {
		t.Fatal("arena kernel returned a non-scratch view")
	}
	kept := v.Persist()
	want := Convolve(a, b)
	ar.Reset()
	// Scribble over the arena; the persisted copy must be unaffected.
	for i := 0; i < 4; i++ {
		ConvolveInto(ar, b, b)
	}
	bitIdentical(t, "persisted survives reset", want, kept)
}

// TestArenaSteadyStateFootprint: after a warm-up round, repeated
// Reset+work cycles must not grow the arena.
func TestArenaSteadyStateFootprint(t *testing.T) {
	a, b := mustGauss(t, 0.001, 0.5, 0.05), mustGauss(t, 0.001, 0.6, 0.04)
	ar := NewArena()
	work := func() {
		ar.Reset()
		c := ConvolveInto(ar, a, b)
		m := MaxIndepInto(ar, c, a)
		MinIndepInto(ar, m, b)
		SubConvolveInto(ar, m, a)
	}
	work()
	warm := ar.FootprintBytes()
	if warm == 0 {
		t.Fatal("arena retained nothing after work")
	}
	for i := 0; i < 100; i++ {
		work()
	}
	if got := ar.FootprintBytes(); got != warm {
		t.Errorf("arena grew in steady state: %d bytes warm, %d after 100 cycles", warm, got)
	}
}

func mustGauss(tb testing.TB, dt, mean, sigma float64) *Dist {
	tb.Helper()
	d, err := TruncGauss(dt, mean, sigma, 3)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// TestIntoKernelAllocsZero pins the zero-allocation contract of the
// warm into-buffer kernels: once the arena has grown to the working
// set, a full kernel cycle performs no heap allocations at all.
func TestIntoKernelAllocsZero(t *testing.T) {
	a, b := mustGauss(t, 0.001, 0.5, 0.05), mustGauss(t, 0.001, 0.6, 0.04)
	ar := NewArena()
	cycle := func() {
		ar.Reset()
		c := ConvolveInto(ar, a, b)
		m := MaxIndepInto(ar, c, a)
		MinIndepInto(ar, m, b)
		SubConvolveInto(ar, c, b)
		NegInto(ar, c)
	}
	cycle() // warm the slabs and header chunks
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Errorf("warm into-kernel cycle allocates %.1f times per run, want 0", allocs)
	}
}

// TestNegEdgeCases is the table-driven pin for the Neg invariants: the
// empty-support panic and the exact index arithmetic on minimal
// supports (the already-trimmed single-bin case among them).
func TestNegEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		d         *Dist
		wantPanic string
		wantI0    int
		wantMass  []float64
	}{
		{
			name:      "empty support panics",
			d:         &Dist{dt: 0.1, i0: 3, p: nil},
			wantPanic: "empty distribution",
		},
		{
			name:      "zero-length slice panics",
			d:         &Dist{dt: 0.1, i0: -2, p: []float64{}},
			wantPanic: "empty distribution",
		},
		{
			name:     "single bin at origin",
			d:        trim(0.1, 0, []float64{1}),
			wantI0:   0,
			wantMass: []float64{1},
		},
		{
			name:     "single bin off origin",
			d:        trim(0.1, 7, []float64{1}),
			wantI0:   -7,
			wantMass: []float64{1},
		},
		{
			name:     "two bins negative offset",
			d:        trim(0.1, -3, []float64{0.25, 0.75}),
			wantI0:   2,
			wantMass: []float64{0.75, 0.25},
		},
	}
	for _, tc := range cases {
		for _, mode := range []string{"alloc", "arena"} {
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				var ar *Arena
				if mode == "arena" {
					ar = NewArena()
				}
				if tc.wantPanic != "" {
					defer func() {
						r := recover()
						if r == nil {
							t.Fatal("Neg accepted an empty distribution")
						}
						if msg := fmt.Sprint(r); !strings.Contains(msg, tc.wantPanic) {
							t.Errorf("panic %q does not mention %q", msg, tc.wantPanic)
						}
					}()
					NegInto(ar, tc.d)
					return
				}
				got := NegInto(ar, tc.d)
				if got.I0() != tc.wantI0 || got.NumBins() != len(tc.wantMass) {
					t.Fatalf("Neg support: i0=%d bins=%d, want i0=%d bins=%d",
						got.I0(), got.NumBins(), tc.wantI0, len(tc.wantMass))
				}
				for k, m := range tc.wantMass {
					if got.MassAt(k) != m {
						t.Errorf("mass[%d] = %v, want %v", k, got.MassAt(k), m)
					}
				}
			})
		}
	}
}

// TestTrimAllZeroSpans is the table-driven pin for trim called with
// all-zero prefixes/suffixes spanning part or all of the slice: partial
// spans trim away exactly, a whole-slice zero span panics (the PR 3
// invariant), in both the allocating and arena forms.
func TestTrimAllZeroSpans(t *testing.T) {
	cases := []struct {
		name      string
		p         []float64
		i0        int
		wantPanic bool
		wantI0    int
		wantBins  int
	}{
		{name: "no padding", p: []float64{0.5, 0.5}, i0: 4, wantI0: 4, wantBins: 2},
		{name: "zero prefix", p: []float64{0, 0, 1}, i0: 0, wantI0: 2, wantBins: 1},
		{name: "zero suffix", p: []float64{1, 0, 0}, i0: -5, wantI0: -5, wantBins: 1},
		{name: "both ends", p: []float64{0, 0.25, 0.75, 0}, i0: 2, wantI0: 3, wantBins: 2},
		{name: "interior zeros survive", p: []float64{0, 0.5, 0, 0.5, 0}, i0: 0, wantI0: 1, wantBins: 3},
		{name: "all zero panics", p: []float64{0, 0, 0}, wantPanic: true},
		{name: "single zero panics", p: []float64{0}, wantPanic: true},
		{name: "empty slice panics", p: []float64{}, wantPanic: true},
	}
	for _, tc := range cases {
		for _, mode := range []string{"alloc", "arena"} {
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				var ar *Arena
				if mode == "arena" {
					ar = NewArena()
				}
				if tc.wantPanic {
					defer func() {
						if recover() == nil {
							t.Fatal("trim accepted an all-zero span covering the whole slice")
						}
					}()
				}
				got := trimInto(ar, 0.1, tc.i0, append([]float64(nil), tc.p...))
				if tc.wantPanic {
					t.Fatal("unreachable: trim should have panicked")
				}
				if got.I0() != tc.wantI0 || got.NumBins() != tc.wantBins {
					t.Errorf("trim support: i0=%d bins=%d, want i0=%d bins=%d",
						got.I0(), got.NumBins(), tc.wantI0, tc.wantBins)
				}
			})
		}
	}
}

// TestPercentileCDFMatchLinearScan pins the cached binary-search
// quantile queries to the historical linear scans, bit for bit, across
// randomized distributions and query points.
func TestPercentileCDFMatchLinearScan(t *testing.T) {
	// Reference implementations: the pre-cache linear scans, verbatim.
	refPercentile := func(d *Dist, p float64) float64 {
		cum := 0.0
		for k := 0; k < d.NumBins(); k++ {
			cum += d.MassAt(k)
			if cum >= p-probEps {
				return float64(d.I0()+k) * d.DT()
			}
		}
		return d.MaxTime()
	}
	refCDF := func(d *Dist, t float64) float64 {
		cum := 0.0
		for k := 0; k < d.NumBins(); k++ {
			if float64(d.I0()+k)*d.DT() > t+probEps*d.DT() {
				break
			}
			cum += d.MassAt(k)
		}
		return cum
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		d := randDist(rng, 0.01, 120)
		for _, p := range []float64{0, 0.01, 0.5, 0.9, 0.99, 0.999, 1} {
			if got, want := d.Percentile(p), refPercentile(d, p); got != want {
				t.Fatalf("Percentile(%v) = %x, linear scan %x", p, got, want)
			}
		}
		for q := 0; q < 12; q++ {
			x := d.MinTime() + (d.MaxTime()-d.MinTime()+0.04)*(rng.Float64()*1.2-0.1)
			if got, want := d.CDF(x), refCDF(d, x); got != want {
				t.Fatalf("CDF(%v) = %x, linear scan %x", x, got, want)
			}
		}
		// Boundary queries exactly on and between grid points.
		if got, want := d.CDF(d.MinTime()), refCDF(d, d.MinTime()); got != want {
			t.Fatalf("CDF(min) = %x, linear scan %x", got, want)
		}
		if got, want := d.CDF(d.MaxTime()), refCDF(d, d.MaxTime()); got != want {
			t.Fatalf("CDF(max) = %x, linear scan %x", got, want)
		}
	}
}

// TestKeeperPersist: keeper-compacted distributions are bit-identical
// immutable heap values that survive arena resets, and already-heap
// values pass through untouched.
func TestKeeperPersist(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ar, kp := NewArena(), NewKeeper()
	type kept struct{ want, got *Dist }
	var all []kept
	for i := 0; i < 200; i++ {
		a := randDist(rng, 0.01, 90)
		b := randDist(rng, 0.01, 70)
		ar.Reset()
		v := ConvolveInto(ar, a, b)
		g := kp.Persist(v)
		if g.IsScratch() {
			t.Fatal("keeper returned a scratch view")
		}
		all = append(all, kept{want: Convolve(a, b), got: g})
	}
	// Every persisted value must still match after the arena memory they
	// came from has been overwritten many times.
	for i, k := range all {
		bitIdentical(t, fmt.Sprintf("kept %d", i), k.want, k.got)
	}
	h := mustGauss(t, 0.01, 0.3, 0.02)
	if kp.Persist(h) != h {
		t.Error("keeper copied a heap distribution")
	}
}

// TestKeeperReuseAfterReset: a keeper reused across pass boundaries via
// Reset keeps every previously persisted distribution bit-identical —
// Reset forgets the live tails instead of recycling them — and the
// passes after a Reset persist into fresh slabs, never into memory a
// prior pass's distributions occupy.
func TestKeeperReuseAfterReset(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ar, kp := NewArena(), NewKeeper()
	type kept struct{ want, got *Dist }
	var all []kept
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 60; i++ {
			a := randDist(rng, 0.01, 80)
			b := randDist(rng, 0.01, 50)
			ar.Reset()
			v := MaxIndepInto(ar, a, b)
			g := kp.Persist(v)
			if g.IsScratch() {
				t.Fatal("keeper returned a scratch view")
			}
			all = append(all, kept{want: MaxIndep(a, b), got: g})
		}
		kp.Reset()
	}
	for i, k := range all {
		bitIdentical(t, fmt.Sprintf("kept %d", i), k.want, k.got)
	}
}

// TestKeeperResetSeversSlabSharing: distributions persisted on opposite
// sides of a Reset never share a backing slab, so dropping one pass's
// distributions frees that pass's memory even while the keeper keeps
// serving later passes.
func TestKeeperResetSeversSlabSharing(t *testing.T) {
	ar, kp := NewArena(), NewKeeper()
	mk := func() *Dist {
		ar.Reset()
		return kp.Persist(ConvolveInto(ar, mustGauss(t, 0.01, 0.5, 0.05), mustGauss(t, 0.01, 0.3, 0.03)))
	}
	before := mk()
	kp.Reset()
	after := mk()
	// Had Reset kept the slab, the second Persist would have carved the
	// float range immediately after the first (slab carving is strictly
	// sequential); a fresh slab starts somewhere else entirely.
	adjacent := uintptr(unsafe.Pointer(&before.p[0]))+uintptr(len(before.p))*unsafe.Sizeof(float64(0)) ==
		uintptr(unsafe.Pointer(&after.p[0]))
	if adjacent {
		t.Fatal("post-Reset persist continued carving the pre-Reset slab")
	}
	bitIdentical(t, "before vs after", before, after)
}
