package dist

import "unsafe"

// distHeaderSize is the in-memory size of one Dist header, used only
// for footprint accounting.
var distHeaderSize = unsafe.Sizeof(Dist{})

// Arena is reusable scratch memory for the Into-form kernels: mass
// vectors come from append-only float slabs, headers from fixed-size
// Dist chunks, and Reset rewinds both cursors without releasing
// anything — so a steady-state workload (one arena per worker, Reset
// between units of work) performs zero allocations once the arena has
// grown to the workload's peak working set.
//
// Ownership rules (see DESIGN.md, "Memory model"):
//
//   - Every *Dist returned by an Into kernel called with an arena is a
//     view into that arena and is invalidated by the arena's next
//     Reset. Persist before storing one anywhere that outlives the
//     reset (arrival slots, overlay maps, snapshots, results).
//   - An arena serves exactly one goroutine at a time. Parallel paths
//     hold one arena per worker; nothing in an Arena is synchronized.
//   - Resetting is the caller's job, at whatever granularity bounds the
//     live scratch set: per node for passes that persist each result,
//     per candidate for sweeps whose overlays must survive a whole
//     propagation.
type Arena struct {
	slabs [][]float64
	slab  int // index of the slab currently being carved
	off   int // floats consumed from slabs[slab]

	hchunks [][]Dist
	nh      int // headers handed out since the last Reset
}

// arenaMinSlab is the float count of the first slab (32 KiB); each
// further slab doubles, so an arena reaches any peak working set in
// O(log n) allocations and then never allocates again.
const arenaMinSlab = 4 << 10

// arenaHdrChunk is the Dist-header count per chunk. Chunks are never
// reallocated or copied (headers hold an atomic field and outstanding
// views point into them), only appended.
const arenaHdrChunk = 64

// NewArena returns an empty arena; memory is acquired lazily as the
// kernels ask for it.
func NewArena() *Arena { return &Arena{} }

// Reset rewinds the arena, invalidating every scratch view handed out
// since the previous Reset while retaining all capacity for reuse.
func (ar *Arena) Reset() {
	ar.slab, ar.off, ar.nh = 0, 0, 0
}

// floats carves a zeroed n-float slice out of the arena.
func (ar *Arena) floats(n int) []float64 {
	for {
		if ar.slab < len(ar.slabs) {
			slab := ar.slabs[ar.slab]
			if ar.off+n <= len(slab) {
				s := slab[ar.off : ar.off+n : ar.off+n]
				ar.off += n
				clear(s)
				return s
			}
			// The remainder of this slab is too small; leave it and move
			// on (the waste is bounded by one request per slab).
			ar.slab++
			ar.off = 0
			continue
		}
		size := arenaMinSlab
		if k := len(ar.slabs); k > 0 {
			size = 2 * len(ar.slabs[k-1])
		}
		if size < n {
			size = n
		}
		ar.slabs = append(ar.slabs, make([]float64, size))
	}
}

// newDist hands out a scratch header viewing p. Reused headers are
// scrubbed field by field (a Dist holds an atomic and must not be
// copied wholesale).
func (ar *Arena) newDist(dt float64, i0 int, p []float64) *Dist {
	ci, ii := ar.nh/arenaHdrChunk, ar.nh%arenaHdrChunk
	if ci == len(ar.hchunks) {
		ar.hchunks = append(ar.hchunks, make([]Dist, arenaHdrChunk))
	}
	ar.nh++
	h := &ar.hchunks[ci][ii]
	h.dt, h.i0, h.p, h.scratch = dt, i0, p, true
	h.cum.Store(nil)
	return h
}

// keeperSlab is the float capacity of one Keeper slab and
// keeperHdrChunk the headers per chunk — sized so a full-circuit pass
// retains its arrivals with a couple dozen allocations instead of two
// per node.
const (
	keeperSlab     = 16 << 10
	keeperHdrChunk = 64
)

// Keeper compacts scratch views into immutable heap distributions in
// bulk: mass vectors pack into shared append-only slabs, headers into
// chunks, so persisting N distributions costs O(N/chunk) allocations
// instead of 2·N. Unlike an Arena a Keeper never recycles memory — a
// distribution carved from it is immutable forever, and its slab lives
// exactly as long as any distribution carved from that slab. Keepers
// are therefore pass-scoped: one forward or backward pass, then Reset
// (or dropped); carving a second pass from the same slabs would chain
// the first pass's memory lifetime to the second's.
//
// A Keeper serves one goroutine; parallel passes hold one per worker.
type Keeper struct {
	slab []float64 // remaining tail of the current slab
	hdrs []Dist    // remaining tail of the current header chunk
}

// NewKeeper returns an empty keeper; slabs are acquired as needed.
func NewKeeper() *Keeper { return &Keeper{} }

// Reset marks a pass boundary, readying the keeper for reuse. It
// forgets the current slab and header tails — it does NOT recycle them,
// so every distribution persisted before the Reset stays valid forever
// — and thereby cuts the memory-lifetime link between passes: once the
// previous pass's distributions die, their slabs go with them, even
// while the keeper lives on persisting the next pass.
func (k *Keeper) Reset() {
	k.slab = nil
	k.hdrs = nil
}

// Persist returns d unchanged when it is already an immutable heap
// value, or a compact keeper-backed copy when it is arena scratch —
// same contract as Dist.Persist, amortized.
func (k *Keeper) Persist(d *Dist) *Dist {
	if !d.scratch {
		return d
	}
	n := len(d.p)
	if n > len(k.slab) {
		size := keeperSlab
		if size < n {
			size = n
		}
		k.slab = make([]float64, size)
	}
	p := k.slab[:n:n]
	k.slab = k.slab[n:]
	copy(p, d.p)
	if len(k.hdrs) == 0 {
		k.hdrs = make([]Dist, keeperHdrChunk)
	}
	h := &k.hdrs[0]
	k.hdrs = k.hdrs[1:]
	h.dt, h.i0, h.p = d.dt, d.i0, p
	return h
}

// scratchFloats routes a mass-vector request to the arena, or to the
// heap when ar is nil (the allocating wrappers' path).
func scratchFloats(ar *Arena, n int) []float64 {
	if ar == nil {
		return make([]float64, n)
	}
	return ar.floats(n)
}

// FootprintBytes reports the total memory the arena retains across
// resets — slabs plus header chunks — for tests and capacity planning.
func (ar *Arena) FootprintBytes() int {
	n := 0
	for _, s := range ar.slabs {
		n += 8 * len(s)
	}
	for _, c := range ar.hchunks {
		n += len(c) * int(distHeaderSize)
	}
	return n
}
