package dist

import (
	"math"
	"testing"
)

func gauss(t *testing.T, dt, mean, sigma float64) *Dist {
	t.Helper()
	d, err := TruncGauss(dt, mean, sigma, 3)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNeg(t *testing.T) {
	d := gauss(t, 0.01, 1.0, 0.1)
	n := d.Neg()
	if got, want := n.Mean(), -d.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Neg mean %v, want %v", got, want)
	}
	if got, want := n.Std(), d.Std(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Neg std %v, want %v", got, want)
	}
	// Double negation restores bit-exactly.
	if !ApproxEqual(n.Neg(), d, 0) {
		t.Error("Neg(Neg(d)) != d")
	}
	// Point masses reflect exactly.
	p := Point(0.5, 2.0)
	if got := p.Neg().Mean(); got != -2.0 {
		t.Errorf("Neg point mean %v, want -2", got)
	}
}

func TestSubConvolve(t *testing.T) {
	a := gauss(t, 0.01, 2.0, 0.1)
	b := gauss(t, 0.01, 0.5, 0.05)
	d := SubConvolve(a, b)
	if got, want := d.Mean(), a.Mean()-b.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SubConvolve mean %v, want %v", got, want)
	}
	wantVar := a.Std()*a.Std() + b.Std()*b.Std()
	if got := d.Std() * d.Std(); math.Abs(got-wantVar) > 1e-9 {
		t.Errorf("SubConvolve variance %v, want %v", got, wantVar)
	}
	// A - point(c) is a pure shift.
	c := Point(0.01, 0.25)
	s := SubConvolve(a, c)
	if !ApproxEqual(s, a.ShiftBins(-25), 1e-15) {
		t.Error("subtracting a point mass should shift bins")
	}
}

// TestMinIndepAgainstEnumeration cross-checks MinIndep on small discrete
// distributions against exhaustive enumeration of the joint.
func TestMinIndepAgainstEnumeration(t *testing.T) {
	a := &Dist{dt: 1, i0: 0, p: []float64{0.2, 0.3, 0.5}}
	b := &Dist{dt: 1, i0: 1, p: []float64{0.6, 0.4}}
	got := MinIndep(a, b)
	// Enumerate P(min = k).
	want := map[int]float64{}
	for i, pa := range a.p {
		for j, pb := range b.p {
			k := a.i0 + i
			if b.i0+j < k {
				k = b.i0 + j
			}
			want[k] += pa * pb
		}
	}
	for k, w := range want {
		idx := k - got.I0()
		var g float64
		if idx >= 0 && idx < got.NumBins() {
			g = got.MassAt(idx)
		}
		if math.Abs(g-w) > 1e-12 {
			t.Errorf("P(min=%d) = %v, want %v", k, g, w)
		}
	}
	total := 0.0
	for k := 0; k < got.NumBins(); k++ {
		total += got.MassAt(k)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("MinIndep mass %v, want 1", total)
	}
}

func TestMinIndepDominance(t *testing.T) {
	// A strictly earlier operand is returned as-is, bit for bit.
	early := &Dist{dt: 1, i0: 0, p: []float64{0.5, 0.5}}
	late := &Dist{dt: 1, i0: 10, p: []float64{1}}
	if got := MinIndep(early, late); got != early {
		t.Error("strictly-earlier operand should be returned unchanged")
	}
	if got := MinIndep(late, early); got != early {
		t.Error("dominance must be symmetric")
	}
}

// TestMinMaxDuality: min(A,B) = -max(-A,-B), exactly on the lattice.
func TestMinMaxDuality(t *testing.T) {
	a := gauss(t, 0.01, 1.0, 0.08)
	b := gauss(t, 0.01, 1.05, 0.12)
	viaMax := MaxIndep(a.Neg(), b.Neg()).Neg()
	direct := MinIndep(a, b)
	if !ApproxEqual(direct, viaMax, 1e-12) {
		t.Error("MinIndep disagrees with the max-of-negations dual")
	}
}
