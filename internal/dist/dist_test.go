package dist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestTrimZeroMassPanics pins the degenerate-distribution contract: an
// all-zero mass vector violates the mass-sums-to-1 invariant every
// constructor preserves, so trim must fail loudly at the construction
// site instead of returning a p=[0] Dist whose Percentile/CDF/Mean
// silently produce garbage.
func TestTrimZeroMassPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("trim accepted an all-zero mass vector")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "zero total mass") {
			t.Errorf("panic message %q does not diagnose the zero-mass invariant violation", msg)
		}
	}()
	trim(0.1, 3, []float64{0, 0, 0})
}

// TestTrimKeepsMassInvariant: trim on any vector with positive total
// mass returns a Dist with nonzero first and last bins and the total
// preserved exactly.
func TestTrimKeepsMassInvariant(t *testing.T) {
	d := trim(0.1, -2, []float64{0, 0, 0.25, 0, 0.75, 0, 0})
	if d.NumBins() != 3 || d.I0() != 0 {
		t.Fatalf("trim support wrong: %d bins at i0=%d", d.NumBins(), d.I0())
	}
	if d.MassAt(0) != 0.25 || d.MassAt(2) != 0.75 {
		t.Error("trim moved mass")
	}
	total := 0.0
	for k := 0; k < d.NumBins(); k++ {
		total += d.MassAt(k)
	}
	if total != 1 {
		t.Errorf("total mass %v after trim, want exactly 1", total)
	}
}

func TestPoint(t *testing.T) {
	d := Point(0.01, 0.25)
	if d.NumBins() != 1 || d.MassAt(0) != 1 {
		t.Fatal("point mass malformed")
	}
	if d.Mean() != 0.25 || d.Std() != 0 {
		t.Errorf("point moments: mean %v std %v", d.Mean(), d.Std())
	}
	if d.Percentile(0.5) != 0.25 || d.Percentile(0.999) != 0.25 {
		t.Error("point percentiles off")
	}
	if d.CDF(0.24) != 0 || d.CDF(0.25) != 1 {
		t.Error("point CDF off")
	}
}

func TestTruncGaussMoments(t *testing.T) {
	const mean, sigma = 0.2, 0.02
	d, err := TruncGauss(0.001, mean, sigma, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-mean) > 1e-6 {
		t.Errorf("mean %v, want %v", d.Mean(), mean)
	}
	// A 3-sigma truncated Gaussian has std ~0.9866 sigma.
	if d.Std() > sigma || d.Std() < 0.97*sigma {
		t.Errorf("std %v, want slightly below %v", d.Std(), sigma)
	}
	if d.MinTime() < mean-3*sigma-0.001 || d.MaxTime() > mean+3*sigma+0.001 {
		t.Error("support exceeds truncation")
	}
	total := 0.0
	for k := 0; k < d.NumBins(); k++ {
		total += d.MassAt(k)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("mass sums to %v", total)
	}
}

func TestTruncGaussDegenerate(t *testing.T) {
	d, err := TruncGauss(0.001, 0.5, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBins() != 1 {
		t.Error("zero sigma should be a point mass")
	}
	if _, err := TruncGauss(0, 0.5, 0.1, 3); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := TruncGauss(0.001, 0.5, -0.1, 3); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := TruncGauss(0.001, 0.5, 0.1, 0); err == nil {
		t.Error("zero truncation accepted")
	}
}

func TestConvolveExactOnPoints(t *testing.T) {
	a := Point(0.01, 0.10)
	b := Point(0.01, 0.25)
	c := Convolve(a, b)
	if c.NumBins() != 1 || math.Abs(c.Mean()-0.35) > 1e-12 {
		t.Errorf("point convolution: %v bins, mean %v", c.NumBins(), c.Mean())
	}
}

func TestConvolveMoments(t *testing.T) {
	a, _ := TruncGauss(0.001, 0.2, 0.02, 3)
	b, _ := TruncGauss(0.001, 0.3, 0.015, 3)
	c := Convolve(a, b)
	if math.Abs(c.Mean()-(a.Mean()+b.Mean())) > 1e-9 {
		t.Errorf("conv mean %v, want %v", c.Mean(), a.Mean()+b.Mean())
	}
	wantVar := a.Std()*a.Std() + b.Std()*b.Std()
	if math.Abs(c.Std()*c.Std()-wantVar) > 1e-9 {
		t.Errorf("conv var %v, want %v", c.Std()*c.Std(), wantVar)
	}
}

// MaxIndep must match the empirical maximum of independent draws.
func TestMaxIndepAgainstSampling(t *testing.T) {
	a, _ := TruncGauss(0.001, 0.20, 0.02, 3)
	b, _ := TruncGauss(0.001, 0.21, 0.015, 3)
	m := MaxIndep(a, b)

	rng := rand.New(rand.NewSource(42))
	const n = 200000
	sum := 0.0
	countP99 := 0
	p99 := m.Percentile(0.99)
	for i := 0; i < n; i++ {
		x := sample(rng, a)
		y := sample(rng, b)
		v := math.Max(x, y)
		sum += v
		if v <= p99+1e-12 {
			countP99++
		}
	}
	if diff := math.Abs(m.Mean() - sum/n); diff > 0.001 {
		t.Errorf("max mean %v vs sampled %v", m.Mean(), sum/n)
	}
	if frac := float64(countP99) / n; frac < 0.985 || frac > 0.995 {
		t.Errorf("p99 of max covers %.4f of samples", frac)
	}
}

// sample draws from a discretized distribution by inverse CDF.
func sample(rng *rand.Rand, d *Dist) float64 {
	u := rng.Float64()
	cum := 0.0
	for k := 0; k < d.NumBins(); k++ {
		cum += d.MassAt(k)
		if cum >= u {
			return float64(d.I0()+k) * d.DT()
		}
	}
	return d.MaxTime()
}

func TestMaxIndepDominatedOperandIsExact(t *testing.T) {
	// When one operand is entirely later than the other, the max equals
	// it bit for bit — the property dead-front elision relies on.
	early, _ := TruncGauss(0.001, 0.10, 0.01, 3)
	late, _ := TruncGauss(0.001, 0.30, 0.01, 3)
	m := MaxIndep(early, late)
	if !ApproxEqual(m, late, 0) {
		t.Error("max with dominated operand should equal the late operand exactly")
	}
}

func TestApproxEqual(t *testing.T) {
	a, _ := TruncGauss(0.001, 0.2, 0.02, 3)
	b := a.ShiftBins(0)
	if !ApproxEqual(a, b, 0) {
		t.Error("identical dists not equal")
	}
	if ApproxEqual(a, a.ShiftBins(1), 0) {
		t.Error("shifted dist equal to original")
	}
	c, _ := TruncGauss(0.001, 0.2, 0.021, 3)
	if ApproxEqual(a, c, 0) {
		t.Error("different sigmas equal at tol 0")
	}
	if !ApproxEqual(a, c, 1) {
		t.Error("everything should be equal at tol 1")
	}
}

func TestShiftBins(t *testing.T) {
	a, _ := TruncGauss(0.001, 0.2, 0.02, 3)
	s := a.ShiftBins(-5)
	if math.Abs(a.Mean()-s.Mean()-5*0.001) > 1e-12 {
		t.Error("shift did not move the mean by 5 bins")
	}
}

func TestMaxPercentileGapOfShift(t *testing.T) {
	a, _ := TruncGauss(0.001, 0.2, 0.02, 3)
	b := a.ShiftBins(-7)
	if gap := MaxPercentileGap(a, b); math.Abs(gap-7*0.001) > 1e-12 {
		t.Errorf("gap of a 7-bin shift = %v", gap)
	}
	if gap := MaxPercentileGap(a, a); gap != 0 {
		t.Errorf("gap of identity = %v", gap)
	}
	// A rightward (worsening) shift has no positive gap.
	if gap := MaxPercentileGap(a, a.ShiftBins(3)); gap != 0 {
		t.Errorf("gap of worsening shift = %v", gap)
	}
}

// The bound must dominate the objective improvement at the sink for
// randomized perturbations — the contract Theorems 1-4 build on.
func TestPerturbationBoundDominatesPercentileImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		base, _ := TruncGauss(0.001, 0.2+0.1*rng.Float64(), 0.01+0.02*rng.Float64(), 3)
		pert := base.ShiftBins(-rng.Intn(10))
		if rng.Intn(2) == 0 {
			other, _ := TruncGauss(0.001, 0.15+0.1*rng.Float64(), 0.01+0.02*rng.Float64(), 3)
			pert = MaxIndep(pert, other)
			base = MaxIndep(base, other)
		}
		bound := PerturbationBound(base, pert)
		for _, p := range []float64{0.5, 0.9, 0.99} {
			if impr := base.Percentile(p) - pert.Percentile(p); impr > bound+1e-9 {
				t.Fatalf("trial %d: p%v improvement %v exceeds bound %v", trial, p, impr, bound)
			}
		}
	}
}

func TestPercentileMonotone(t *testing.T) {
	d, _ := TruncGauss(0.001, 0.2, 0.02, 3)
	prev := math.Inf(-1)
	for p := 0.01; p < 1; p += 0.01 {
		q := d.Percentile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%v", p)
		}
		prev = q
	}
	if d.Percentile(0) != d.MinTime() && d.Percentile(0) > d.MaxTime() {
		t.Error("p=0 quantile out of support")
	}
}

func TestCDFQuantileRoundTrip(t *testing.T) {
	d, _ := TruncGauss(0.001, 0.2, 0.02, 3)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		q := d.Percentile(p)
		if cdf := d.CDF(q); cdf < p-1e-9 {
			t.Errorf("CDF(Q(%v)) = %v < p", p, cdf)
		}
	}
}
