// FFT convolution fast path. The direct kernel in dist.go is O(n·m)
// and exact; for wide supports this file provides an O(n log n)
// real-to-complex radix-2 FFT route. Dispatch is governed by an
// exactness crossover: only when BOTH operand supports are at least
// the crossover width does ConvolveInto take the FFT path, so every
// configuration on a grid at or below the default 600-bin budget —
// including the golden traces — keeps the direct kernel bit for bit
// (see crossoverFloor). FFT results are cleaned up to satisfy the
// package invariants the direct kernel provides structurally:
// negatives clamp to zero, the end bins are overwritten with the exact
// single-product values (so support bounds match the direct kernel
// exactly), and total mass is renormalized to sum(a)·sum(b).
package dist

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// crossoverFloor is the smallest support width the auto-calibrated
// crossover may choose. It exists for exactness, not speed: the widest
// support a default-budget grid can produce is bounded by the
// SuggestDT construction (dt = 1.35·maxDelay/bins, supports span at
// most ~1.3·maxDelay ≈ 0.96·bins ≈ 578 bins at the 600-bin default),
// so with the floor at 768 every session at or below the default bin
// budget — the golden traces run at 400 — computes bit-identically to
// the direct kernel regardless of where calibration lands.
const crossoverFloor = 768

// crossoverNever is the effective threshold when calibration finds no
// width at which the FFT wins (it always does in practice; this is the
// defensive fallback).
const crossoverNever = math.MaxInt32

// convolveCrossover is the active dispatch threshold: 0 means
// "auto" (calibrate lazily on the first candidate at or above
// crossoverFloor), any positive value is the minimum operand support
// width that routes to the FFT. It is process-global because it is
// dispatch policy, not numerics: which route runs changes only the
// last-ulp rounding of wide convolutions, never the contract.
var convolveCrossover atomic.Int64

// calibrated memoizes the one-time measurement so flipping back to
// auto after an override does not re-run it.
var calibrated struct {
	once sync.Once
	val  int
}

// SetConvolveCrossover overrides the FFT dispatch threshold
// process-wide: n ≥ 1 routes every convolution whose operands both
// span at least n bins through the FFT (n = 1 forces the FFT on, used
// by the validation oracle), n = 0 restores auto-calibration. The
// previous raw setting is returned (0 if it was auto) so tests can
// save and restore.
func SetConvolveCrossover(n int) (prev int) {
	if n < 0 {
		n = 0
	}
	return int(convolveCrossover.Swap(int64(n)))
}

// ConvolveCrossover resolves and returns the effective dispatch
// threshold, running the one-time calibration if it has not happened
// yet. Benchmarks call this before timing so the calibration cost
// never lands inside a measured iteration.
func ConvolveCrossover() int {
	if cx := int(convolveCrossover.Load()); cx > 0 {
		return cx
	}
	cx := calibratedCrossover()
	convolveCrossover.CompareAndSwap(0, int64(cx))
	return int(convolveCrossover.Load())
}

// useFFT decides the route for operand supports of na and nb bins.
// The predicate is on the SMALLER operand: the direct kernel costs
// min·max multiply-adds, so a convolution with one narrow operand is
// already cheap and the FFT's N log N over the padded size would lose.
func useFFT(na, nb int) bool {
	m := na
	if nb < m {
		m = nb
	}
	cx := int(convolveCrossover.Load())
	if cx == 0 {
		if m < crossoverFloor {
			// Below the floor the answer is "direct" no matter where
			// calibration would land — don't pay for it yet.
			return false
		}
		cx = calibratedCrossover()
		convolveCrossover.CompareAndSwap(0, int64(cx))
	}
	return m >= cx
}

// calibratedCrossover measures, once per process, the smallest probed
// support width at which the FFT route beats the direct kernel on
// this machine, clamped below by crossoverFloor.
func calibratedCrossover() int {
	calibrated.once.Do(func() {
		calibrated.val = measureCrossover()
	})
	return calibrated.val
}

// measureCrossover times both kernels on equal-width operands at a
// few probe widths and returns the first width where the FFT wins.
// Total cost is a handful of milliseconds, paid at most once per
// process and only by workloads that actually reach the floor.
func measureCrossover() int {
	ar := NewArena()
	for _, w := range []int{crossoverFloor, 1024, 1536, 2048} {
		p := make([]float64, w)
		for i := range p {
			p[i] = 1 / float64(w)
		}
		d := &Dist{dt: 1, i0: 0, p: p}
		direct := timeKernel(func() { convolveDirectInto(ar, d, d) }, ar)
		fft := timeKernel(func() { convolveFFTInto(ar, d, d) }, ar)
		if fft < direct {
			return w
		}
	}
	return crossoverNever
}

// timeKernel returns the best of three timed runs of f (after one
// untimed warm-up that grows the arena and builds FFT tables).
func timeKernel(f func(), ar *Arena) time.Duration {
	ar.Reset()
	f()
	best := time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		ar.Reset()
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// fftTable holds the precomputed bit-reversal permutation and twiddle
// factors for one transform size. Tables are built once per size and
// cached process-wide (sizes are powers of two, so the cache tops out
// at a few dozen entries); warm lookups are a single atomic load.
type fftTable struct {
	n        int
	rev      []int32   // bit-reversal permutation of 0..n-1
	cos, sin []float64 // cos/sin(2π·j/n) for j < n/2
}

// fftTables caches one table per log2(size).
var fftTables [32]atomic.Pointer[fftTable]

// tableFor returns the cached table for transform size n (a power of
// two), building it on first use.
func tableFor(n int) *fftTable {
	lg := 0
	for 1<<lg < n {
		lg++
	}
	if t := fftTables[lg].Load(); t != nil {
		return t
	}
	t := &fftTable{
		n:   n,
		rev: make([]int32, n),
		cos: make([]float64, n/2),
		sin: make([]float64, n/2),
	}
	for i := 1; i < n; i++ {
		t.rev[i] = t.rev[i>>1]>>1 | int32(i&1)<<(lg-1)
	}
	for j := 0; j < n/2; j++ {
		theta := 2 * math.Pi * float64(j) / float64(n)
		t.cos[j] = math.Cos(theta)
		t.sin[j] = math.Sin(theta)
	}
	fftTables[lg].CompareAndSwap(nil, t)
	return fftTables[lg].Load()
}

// fft runs an in-place iterative radix-2 Cooley–Tukey transform over
// the split complex array (re, im), both of length t.n. invert=false
// computes the forward DFT with kernel e^(-2πi·jk/n); invert=true the
// unscaled inverse (the caller folds the 1/n into its own pass).
func fft(re, im []float64, t *fftTable, invert bool) {
	n := t.n
	for i, j := range t.rev {
		if int32(i) < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for base := 0; base < n; base += size {
			tw := 0
			for off := base; off < base+half; off++ {
				wr := t.cos[tw]
				wi := -t.sin[tw]
				if invert {
					wi = -wi
				}
				j := off + half
				xr := re[j]*wr - im[j]*wi
				xi := re[j]*wi + im[j]*wr
				re[j] = re[off] - xr
				im[j] = im[off] - xi
				re[off] += xr
				im[off] += xi
				tw += step
			}
		}
	}
}

// convolveFFTInto computes the same convolution as convolveDirectInto
// via one forward and one inverse complex FFT (the two real inputs
// share a single forward transform: pack z = a + i·b, recover both
// spectra from conjugate symmetry, multiply pointwise, invert). The
// two scratch vectors live in the arena, so the warm path performs
// zero allocations once the twiddle tables for the padded size exist.
func convolveFFTInto(ar *Arena, a, b *Dist) *Dist {
	na, nb := len(a.p), len(b.p)
	n := na + nb - 1
	N := 1
	for N < n {
		N <<= 1
	}
	t := tableFor(N)
	zre := scratchFloats(ar, N)
	zim := scratchFloats(ar, N)
	copy(zre, a.p) // tails beyond the supports stay zero (scratch is cleared)
	copy(zim, b.p)
	fft(zre, zim, t, false)

	// Unpack and multiply in conjugate-symmetric pairs: with A and B
	// the spectra of the real inputs, Z[k] = A[k] + i·B[k], so
	//   A[k] = (Z[k] + conj(Z[N-k])) / 2
	//   B[k] = (Z[k] - conj(Z[N-k])) / (2i)
	// and the product spectrum C = A·B satisfies C[N-k] = conj(C[k]).
	// k = 0 (and k = N/2 for N ≥ 2) are purely real: C = Z.re · Z.im.
	zre[0], zim[0] = zre[0]*zim[0], 0
	if N >= 2 {
		h := N / 2
		zre[h], zim[h] = zre[h]*zim[h], 0
		for k := 1; k < h; k++ {
			m := N - k
			ar1, ai1 := zre[k], zim[k]
			ar2, ai2 := zre[m], zim[m]
			reA, imA := (ar1+ar2)/2, (ai1-ai2)/2
			reB, imB := (ai1+ai2)/2, -(ar1-ar2)/2
			cr := reA*reB - imA*imB
			ci := reA*imB + imA*reB
			zre[k], zim[k] = cr, ci
			zre[m], zim[m] = cr, -ci
		}
	}
	fft(zre, zim, t, true)

	out := zre[:n]
	// Clean up to the direct kernel's structural guarantees. The end
	// bins are single products (only one index pair contributes), so
	// overwrite them with the exact values — this pins the trimmed
	// support bounds to exactly match the direct route. Interior
	// rounding noise can dip a hair below zero; clamp it.
	inv := 1 / float64(N)
	totalA, totalB := 0.0, 0.0
	for _, v := range a.p {
		totalA += v
	}
	for _, v := range b.p {
		totalB += v
	}
	out[0] = a.p[0] * b.p[0]
	out[n-1] = a.p[na-1] * b.p[nb-1]
	sum := out[0] + out[n-1]
	if n == 1 {
		sum = out[0]
	}
	for i := 1; i < n-1; i++ {
		v := out[i] * inv
		if v < 0 {
			v = 0
		}
		out[i] = v
		sum += v
	}
	// Renormalize the total to the algebraic value sum(a)·sum(b): the
	// FFT's aggregate rounding (~ulps·log N) lands well inside probEps
	// and this removes even that drift from cumulative queries.
	if target := totalA * totalB; sum > 0 && sum != target {
		scale := target / sum
		for i := range out {
			out[i] *= scale
		}
	}
	return trimInto(ar, a.dt, a.i0+b.i0, out)
}
