package dist

import (
	"math"
	"math/rand"
	"testing"
)

// forceFFT routes every convolution through the FFT for the duration
// of a test, restoring the previous setting afterwards.
func forceFFT(t *testing.T) {
	t.Helper()
	prev := SetConvolveCrossover(1)
	t.Cleanup(func() { SetConvolveCrossover(prev) })
}

// randWideDist builds a distribution with exactly n support bins of
// random positive mass (ends guaranteed nonzero), normalized to 1.
func randWideDist(rng *rand.Rand, dt float64, n int) *Dist {
	p := make([]float64, n)
	total := 0.0
	for i := range p {
		p[i] = 0.01 + rng.Float64()
		total += p[i]
	}
	for i := range p {
		p[i] /= total
	}
	return trim(dt, rng.Intn(41)-20, p)
}

// compareFFTToDirect checks every property the FFT route promises
// against the exact kernel: identical support bounds, non-negative
// mass everywhere, per-bin agreement within tol, and total mass within
// probEps.
func compareFFTToDirect(t *testing.T, label string, a, b *Dist, tol float64) {
	t.Helper()
	direct := convolveDirectInto(nil, a, b)
	fft := convolveFFTInto(nil, a, b)
	if direct.DT() != fft.DT() || direct.I0() != fft.I0() || direct.NumBins() != fft.NumBins() {
		t.Fatalf("%s: support mismatch: direct (dt=%v i0=%d bins=%d), fft (dt=%v i0=%d bins=%d)",
			label, direct.DT(), direct.I0(), direct.NumBins(), fft.DT(), fft.I0(), fft.NumBins())
	}
	var sumD, sumF float64
	for k := 0; k < direct.NumBins(); k++ {
		d, f := direct.MassAt(k), fft.MassAt(k)
		if f < 0 {
			t.Fatalf("%s: negative FFT mass %g at bin %d", label, f, k)
		}
		if diff := math.Abs(d - f); diff > tol {
			t.Fatalf("%s: bin %d differs by %g (direct %g, fft %g)", label, k, diff, d, f)
		}
		sumD += d
		sumF += f
	}
	if math.Abs(sumD-sumF) > probEps {
		t.Fatalf("%s: total mass differs by %g", label, sumD-sumF)
	}
}

// fftTestTol is the pinned per-bin agreement bound between the FFT and
// direct convolution routes. The FFT's rounding error per output bin
// is O(ε·log2 N) of the operand mass scale — observed worst cases sit
// near 1e-16 for kilobin supports — so 1e-12 (= probEps, the package's
// own probability-comparison slack) holds with four orders of margin
// while still failing loudly on any structural defect.
const fftTestTol = 1e-12

// TestConvolveFFTMatchesDirect pins FFT-vs-direct agreement across
// support widths straddling the crossover, including the degenerate
// single-bin and impulse cases.
func TestConvolveFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct{ na, nb int }{
		{1, 1},   // both impulses: FFT size 1, pure identity transform
		{1, 2},   // impulse against the smallest non-trivial support
		{2, 2},   // FFT size 4
		{1, 100}, // impulse shifts a wide operand
		{3, 17},
		{64, 64},
		{100, 1000}, // asymmetric widths
		{767, 769},  // straddling crossoverFloor
		{768, 768},  // exactly at the floor
		{800, 880},  // the 1600-bin benchmark shape
		{1000, 1600},
	}
	for _, tc := range cases {
		a := randWideDist(rng, 0.001, tc.na)
		b := randWideDist(rng, 0.001, tc.nb)
		compareFFTToDirect(t, "random", a, b, fftTestTol)
	}

	// Gaussian operands (the shapes SSTA actually convolves).
	g1 := mustGauss(t, 1.0/1600, 0.50, 0.50/6)
	g2 := mustGauss(t, 1.0/1600, 0.55, 0.55/6)
	compareFFTToDirect(t, "gauss", g1, g2, fftTestTol)

	// Operands with interior zero-mass gaps: the direct kernel yields
	// structural zeros the FFT fills with rounding noise; clamping and
	// the per-bin tolerance must absorb it.
	gap := make([]float64, 900)
	gap[0], gap[899] = 0.5, 0.5
	compareFFTToDirect(t, "gap", trim(0.001, -5, gap), randWideDist(rng, 0.001, 800), fftTestTol)
}

// TestConvolveFFTDispatch pins the crossover policy itself.
func TestConvolveFFTDispatch(t *testing.T) {
	// The floor guarantees exactness for every grid at or below the
	// default 600-bin budget: SuggestDT spans ~1.3× the estimated max
	// delay across the budget, so supports top out near 0.96·bins ≈
	// 578 bins at 600 — comfortably under the floor. Pin the margin.
	if crossoverFloor < 600 {
		t.Fatalf("crossoverFloor %d < 600: supports on default-budget grids could reach the FFT", crossoverFloor)
	}

	// Below the floor the dispatch must answer "direct" without even
	// calibrating; the smaller operand governs.
	prev := SetConvolveCrossover(0)
	defer SetConvolveCrossover(prev)
	if useFFT(crossoverFloor-1, 100000) {
		t.Fatal("useFFT fired below the floor under auto-calibration")
	}
	if useFFT(100000, crossoverFloor-1) {
		t.Fatal("useFFT must key on the smaller operand")
	}

	// An explicit override beats the floor in both directions.
	SetConvolveCrossover(1)
	if !useFFT(1, 1) {
		t.Fatal("SetConvolveCrossover(1) did not force the FFT route")
	}
	SetConvolveCrossover(1 << 20)
	if useFFT(5000, 5000) {
		t.Fatal("a high explicit crossover did not suppress the FFT route")
	}

	// The resolved threshold is never below the floor when automatic.
	SetConvolveCrossover(0)
	if cx := ConvolveCrossover(); cx < crossoverFloor {
		t.Fatalf("auto-calibrated crossover %d below floor %d", cx, crossoverFloor)
	}
}

// TestConvolveDispatchBitIdenticalBelowCrossover verifies the whole
// point of the crossover: ConvolveInto on sub-crossover supports is
// the direct kernel, bit for bit — the property that keeps the golden
// traces hex-identical across this change.
func TestConvolveDispatchBitIdenticalBelowCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prev := SetConvolveCrossover(0)
	defer SetConvolveCrossover(prev)
	for _, n := range []int{1, 60, 400, 578, crossoverFloor - 1} {
		a := randWideDist(rng, 0.01, n)
		b := randWideDist(rng, 0.01, (n+1)/2)
		bitIdentical(t, "dispatch", convolveDirectInto(nil, a, b), ConvolveInto(nil, a, b))
	}
}

// TestConvolveFFTArenaAllocsZero extends the PR 4 warm-path pin to the
// FFT route: once the arena and the twiddle tables for the padded size
// exist, a convolution through the FFT performs zero allocations.
func TestConvolveFFTArenaAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randWideDist(rng, 0.001, 900)
	b := randWideDist(rng, 0.001, 800)
	ar := NewArena()
	cycle := func() {
		ar.Reset()
		convolveFFTInto(ar, a, b)
	}
	cycle() // warm: grow the arena, build the tables
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("warm FFT convolution allocated %v times per run, want 0", n)
	}
}

// TestSubConvolveFFT checks the backward-pass kernel inherits the fast
// path (SubConvolve is Convolve against the negated operand) and still
// matches its direct form.
func TestSubConvolveFFT(t *testing.T) {
	forceFFT(t)
	rng := rand.New(rand.NewSource(11))
	a := randWideDist(rng, 0.001, 900)
	b := randWideDist(rng, 0.001, 850)
	direct := convolveDirectInto(nil, a, NegInto(nil, b))
	fft := SubConvolveInto(nil, a, b)
	if direct.I0() != fft.I0() || direct.NumBins() != fft.NumBins() {
		t.Fatalf("support mismatch: direct (i0=%d bins=%d), fft (i0=%d bins=%d)",
			direct.I0(), direct.NumBins(), fft.I0(), fft.NumBins())
	}
	for k := 0; k < direct.NumBins(); k++ {
		if diff := math.Abs(direct.MassAt(k) - fft.MassAt(k)); diff > fftTestTol {
			t.Fatalf("bin %d differs by %g", k, diff)
		}
	}
}

// FuzzConvolveFFT drives randomized operand shapes through both routes
// and demands the full agreement contract at every width, including
// widths far below and above the crossover.
func FuzzConvolveFFT(f *testing.F) {
	f.Add(int64(1), uint16(1), uint16(1))
	f.Add(int64(2), uint16(1), uint16(300))
	f.Add(int64(3), uint16(40), uint16(40))
	f.Add(int64(4), uint16(700), uint16(900))
	f.Add(int64(5), uint16(1500), uint16(1400))
	f.Fuzz(func(t *testing.T, seed int64, wa, wb uint16) {
		na := int(wa)%1500 + 1
		nb := int(wb)%1500 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randWideDist(rng, 0.001, na)
		b := randWideDist(rng, 0.001, nb)
		compareFFTToDirect(t, "fuzz", a, b, fftTestTol)
	})
}

// TestPercentileCDFDomain pins the out-of-domain contract: NaN in, NaN
// out — never a silently in-range answer.
func TestPercentileCDFDomain(t *testing.T) {
	d := trim(0.5, 2, []float64{0.25, 0.5, 0.25})
	for _, p := range []float64{math.NaN(), -0.01, 1.01, math.Inf(1), math.Inf(-1)} {
		if q := d.Percentile(p); !math.IsNaN(q) {
			t.Errorf("Percentile(%v) = %v, want NaN", p, q)
		}
	}
	// The closed domain endpoints stay answered.
	if q := d.Percentile(0); q != d.MinTime() {
		t.Errorf("Percentile(0) = %v, want MinTime %v", q, d.MinTime())
	}
	if q := d.Percentile(1); q != d.MaxTime() {
		t.Errorf("Percentile(1) = %v, want MaxTime %v", q, d.MaxTime())
	}
	if c := d.CDF(math.NaN()); !math.IsNaN(c) {
		t.Errorf("CDF(NaN) = %v, want NaN", c)
	}
	if c := d.CDF(math.Inf(-1)); c != 0 {
		t.Errorf("CDF(-Inf) = %v, want 0", c)
	}
	if c := d.CDF(math.Inf(1)); math.Abs(c-1) > probEps {
		t.Errorf("CDF(+Inf) = %v, want 1", c)
	}
}
