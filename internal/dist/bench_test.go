package dist

import (
	"fmt"
	"testing"
)

// kernelOperands builds a representative operand pair whose supports
// span roughly `bins` bins each — the shape the SSTA forward pass feeds
// the kernels at the default 600-bin grid.
func kernelOperands(b *testing.B, bins int) (*Dist, *Dist) {
	b.Helper()
	// sigma chosen so the ±3σ support covers ~bins grid steps.
	dt := 1.0 / float64(bins)
	x := mustGauss(b, dt, 0.50, 0.50/6)
	y := mustGauss(b, dt, 0.55, 0.55/6)
	return x, y
}

// BenchmarkDistKernels measures the numeric core at representative bin
// counts, in both the allocating and the arena (Into) forms — the
// machine-readable perf trajectory cmd/benchreport records per PR.
// Run with -benchmem: the Into forms must show 0 allocs/op warm.
//
// Convolve rows dispatch through the crossover (wide shapes take the
// FFT); ConvolveFFT rows force the FFT route so its own trajectory is
// visible even at widths the dispatcher would serve directly.
func BenchmarkDistKernels(b *testing.B) {
	// Resolve the crossover calibration before timing anything so its
	// one-time cost cannot land inside a measured iteration (material
	// at -benchtime=1x, the CI smoke setting).
	ConvolveCrossover()
	for _, bins := range []int{400, 1600, 6400} {
		x, y := kernelOperands(b, bins)
		ar := NewArena()
		b.Run(fmt.Sprintf("ConvolveFFT/bins%d/into", bins), func(b *testing.B) {
			b.ReportAllocs()
			ar.Reset()
			convolveFFTInto(ar, x, y) // warm the arena and twiddle tables
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ar.Reset()
				convolveFFTInto(ar, x, y)
			}
		})
	}
	for _, bins := range []int{100, 400, 1600} {
		x, y := kernelOperands(b, bins)
		ar := NewArena()
		kernels := []struct {
			name  string
			alloc func() *Dist
			into  func() *Dist
		}{
			{"Convolve", func() *Dist { return Convolve(x, y) }, func() *Dist { return ConvolveInto(ar, x, y) }},
			{"MaxIndep", func() *Dist { return MaxIndep(x, y) }, func() *Dist { return MaxIndepInto(ar, x, y) }},
			{"MinIndep", func() *Dist { return MinIndep(x, y) }, func() *Dist { return MinIndepInto(ar, x, y) }},
			{"SubConvolve", func() *Dist { return SubConvolve(x, y) }, func() *Dist { return SubConvolveInto(ar, x, y) }},
		}
		for _, k := range kernels {
			b.Run(fmt.Sprintf("%s/bins%d/alloc", k.name, bins), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					k.alloc()
				}
			})
			b.Run(fmt.Sprintf("%s/bins%d/into", k.name, bins), func(b *testing.B) {
				b.ReportAllocs()
				ar.Reset()
				k.into() // warm the arena before timing
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ar.Reset()
					k.into()
				}
			})
		}
	}
}

// BenchmarkPercentile measures the cached quantile query against a
// fresh distribution (first query pays the cumulative-sum build) and a
// warm one (binary search only) — the satellite fix for timingreport's
// per-gate slack table.
func BenchmarkPercentile(b *testing.B) {
	x, y := kernelOperands(b, 1600)
	d := Convolve(x, y)
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		d.Percentile(0.99) // build the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Percentile(0.99)
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			fresh := Convolve(x, y)
			b.StartTimer()
			fresh.Percentile(0.99)
		}
	})
}
