package validate

import (
	"context"
	"errors"
	"flag"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/dist"
	"statsize/internal/montecarlo"
)

// corpusN overrides the corpus size: `go test ./internal/validate
// -corpus.n 200` is the nightly-style large sweep. 0 means the default
// for the mode (25 in -short, 40 otherwise).
var corpusN = flag.Int("corpus.n", 0, "validation corpus size (0 = mode default)")

func testOptions(t *testing.T) Options {
	opts := DefaultOptions()
	if !testing.Short() {
		opts.Corpus.N = 40
	}
	if *corpusN > 0 {
		opts.Corpus.N = *corpusN
	}
	opts.Log = func(format string, args ...any) { t.Logf(format, args...) }
	return opts
}

// TestCorpus is the statistical correctness oracle: every corpus
// circuit's SSTA sink CDF must stay within the DKW-derived tolerances
// of a 20k-sample Monte Carlo reference, and every metamorphic property
// must hold. Failures print minimized, self-contained reproducer specs.
func TestCorpus(t *testing.T) {
	lib := cell.Default180nm()
	opts := testOptions(t)
	if *corpusN == 0 && opts.Corpus.N < 25 {
		t.Fatalf("default corpus size %d below the 25-circuit floor", opts.Corpus.N)
	}
	sum, err := Run(context.Background(), lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := opts.Corpus.N + len(opts.ISCAS); len(sum.Outcomes) != want {
		t.Fatalf("corpus covered %d circuits, want %d", len(sum.Outcomes), want)
	}
	if !sum.Ok() {
		t.Fatalf("validation failures:\n%s", sum.Report())
	}
}

// TestCorpusFFTForced reruns the oracle with every convolution routed
// through the FFT fast path (crossover forced to 1): the DKW bounds
// against Monte Carlo must hold identically, proving the FFT route is
// a drop-in numeric replacement and not just close-on-average. A
// smaller corpus keeps the double Monte Carlo cost in budget; the
// ISCAS replicas stay in because their deep topologies chain the most
// convolutions.
func TestCorpusFFTForced(t *testing.T) {
	prev := dist.SetConvolveCrossover(1)
	defer dist.SetConvolveCrossover(prev)

	lib := cell.Default180nm()
	opts := testOptions(t)
	opts.Corpus.N = 10
	sum, err := Run(context.Background(), lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() {
		t.Fatalf("validation failures with FFT forced on:\n%s", sum.Report())
	}
}

// TestCorpusDeterministic: the corpus is a pure function of its
// options — reruns must yield identical spec sequences, or reproducers
// would not reproduce.
func TestCorpusDeterministic(t *testing.T) {
	lib := cell.Default180nm()
	opt := DefaultCorpusOptions()
	a, err := Corpus(lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpus(lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs across runs:\n%#v\n%#v", i, a[i], b[i])
		}
	}
}

// TestCorpusCoversFamilies: every shape family contributes, and every
// spec is valid and generable by construction.
func TestCorpusCoversFamilies(t *testing.T) {
	lib := cell.Default180nm()
	specs, err := Corpus(lib, DefaultCorpusOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, sp := range specs {
		if err := sp.Validate(lib); err != nil {
			t.Errorf("invalid corpus spec %#v: %v", sp, err)
		}
		for _, f := range []string{"mix", "deep", "wide", "reconv", "taper"} {
			if len(sp.Name) > len(f) && sp.Name[:len(f)] == f {
				seen[f]++
			}
		}
	}
	for _, f := range []string{"mix", "deep", "wide", "reconv", "taper"} {
		if seen[f] == 0 {
			t.Errorf("family %s absent from the corpus", f)
		}
	}
}

// TestDKWEpsilon pins the band arithmetic: at n=20000, alpha=0.001 the
// half-width is sqrt(ln(2000)/40000).
func TestDKWEpsilon(t *testing.T) {
	got := DKWEpsilon(20000, 0.001)
	want := math.Sqrt(math.Log(2000.0) / 40000.0)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("DKWEpsilon = %v, want %v", got, want)
	}
	if n4 := DKWEpsilon(4*20000, 0.001); math.Abs(n4-want/2) > 1e-15 {
		t.Errorf("quadrupling samples should halve the band: %v vs %v", n4, want/2)
	}
}

// TestOracleFlagsOptimism is the negative control: an SSTA distribution
// artificially shifted *earlier* than the samples it is compared against
// must be convicted as unsound, and one shifted *later* as loose — the
// oracle cannot pass everything.
func TestOracleFlagsOptimism(t *testing.T) {
	cfg := DefaultOracleConfig()
	cfg.Samples = 4000
	const dt = 0.01
	mkSink := func(mean float64) *dist.Dist {
		d, err := dist.TruncGauss(dt, mean, 0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Samples from the same truncated Gaussian the sink claims.
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, cfg.Samples)
	for i := range samples {
		z := rng.NormFloat64()
		for z < -3 || z > 3 {
			z = rng.NormFloat64()
		}
		samples[i] = 10.0 + 0.05*z
	}
	mc := &montecarlo.Result{Delays: samples}
	sort.Float64s(mc.Delays)

	if rep := CompareCDFs(mkSink(10.0), mc, cfg); !rep.Pass {
		t.Errorf("matched distributions should pass, got: %s", rep.Failure)
	}
	if rep := CompareCDFs(mkSink(9.8), mc, cfg); rep.Pass || rep.MaxOptimistic <= rep.OptimisticLimit {
		t.Errorf("optimistic sink not convicted: %+v", rep)
	}
	if rep := CompareCDFs(mkSink(11.0), mc, cfg); rep.Pass {
		t.Error("grossly conservative sink not convicted")
	}
}

// TestShrinkMinimizes: the shrinker must walk a failing spec down to a
// materially smaller one while preserving the failure predicate.
func TestShrinkMinimizes(t *testing.T) {
	lib := cell.Default180nm()
	specs, err := Corpus(lib, CorpusOptions{N: 3, Seed: 99, MaxGates: 120})
	if err != nil {
		t.Fatal(err)
	}
	sp := specs[0]
	for _, cand := range specs {
		if cand.Gates() > sp.Gates() {
			sp = cand
		}
	}
	fails := func(c circuitgen.Spec) bool { return c.Gates() >= 10 }
	if !fails(sp) {
		t.Skipf("largest corpus spec has only %d gates", sp.Gates())
	}
	min := Shrink(lib, sp, fails, 200)
	if !fails(min) {
		t.Fatalf("shrinker returned a non-failing spec: %#v", min)
	}
	if min.Gates() >= sp.Gates() {
		t.Fatalf("shrinker made no progress: %d -> %d gates", sp.Gates(), min.Gates())
	}
	if min.Gates() > 20 {
		t.Errorf("shrinker stalled at %d gates (predicate is satisfiable at 10)", min.Gates())
	}
	if err := min.Validate(lib); err != nil {
		t.Fatalf("minimized spec invalid: %v", err)
	}
	if _, err := circuitgen.Generate(lib, min); err != nil {
		t.Fatalf("minimized spec not generable: %v", err)
	}
}

// TestFailureReproducerRoundTrips: the reproducer literal embedded in a
// failure report parses back into the identical spec.
func TestFailureReproducerRoundTrips(t *testing.T) {
	sp := circuitgen.Spec{Name: "repro-1", Nodes: 40, Edges: 77, PIs: 6, POs: 3, Depth: 9, Seed: 123456789}
	f := &Failure{Circuit: "repro-1", Kind: "oracle", Detail: "example", Minimal: sp, Original: sp}
	text := f.String()
	const marker = "reproducer: "
	i := strings.Index(text, marker)
	if i < 0 {
		t.Fatalf("failure report lacks a reproducer: %q", text)
	}
	got, err := circuitgen.ParseSpec(text[i+len(marker):])
	if err != nil {
		t.Fatal(err)
	}
	if got != sp {
		t.Fatalf("round trip changed the spec:\n%#v\n%#v", got, sp)
	}
}

// TestMetamorphicSuiteOnOneSpec exercises every property against a
// single mid-sized spec directly (TestCorpus covers the full sweep):
// a cheap always-on guard that the properties themselves stay runnable.
func TestMetamorphicSuiteOnOneSpec(t *testing.T) {
	lib := cell.Default180nm()
	specs, err := Corpus(lib, CorpusOptions{N: 1, Seed: 5, MaxGates: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, prop := range Properties() {
		t.Run(prop.Name, func(t *testing.T) {
			if err := prop.Run(context.Background(), lib, specs[0]); err != nil {
				t.Fatalf("property failed on %#v: %v", specs[0], err)
			}
		})
	}
}

// TestRunReportsMinimizedFailures drives the failure path end to end:
// under a draconian tightness tolerance real circuits must fail, each
// failure must carry a shrunk reproducer that (a) still fails the same
// check and (b) appears in the report as a parseable Spec literal.
func TestRunReportsMinimizedFailures(t *testing.T) {
	lib := cell.Default180nm()
	opts := DefaultOptions()
	opts.Corpus.N = 5
	opts.ISCAS = nil
	opts.ShrinkBudget = 8
	opts.Oracle.Samples = 4000
	opts.Oracle.QuantileTol = 1e-9 // every reconvergent circuit is "too loose" now
	opts.Oracle.SlopBins = 0
	sum, err := Run(context.Background(), lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ok() {
		t.Fatal("draconian tolerance produced no failures; negative path untested")
	}
	for _, f := range sum.Failures {
		if f.Kind != "oracle" {
			t.Errorf("unexpected non-oracle failure: %s", f)
			continue
		}
		rep, err := RunOracle(context.Background(), lib, f.Minimal, opts.Oracle)
		if err != nil {
			t.Fatalf("minimized reproducer %#v does not run: %v", f.Minimal, err)
		}
		if rep.Pass {
			t.Errorf("minimized reproducer %#v no longer fails", f.Minimal)
		}
		if f.Minimal.Gates() > f.Original.Gates() {
			t.Errorf("shrinker grew the spec: %d -> %d gates", f.Original.Gates(), f.Minimal.Gates())
		}
	}
	report := sum.Report()
	const marker = "reproducer: "
	i := strings.Index(report, marker)
	if i < 0 {
		t.Fatalf("report lacks reproducer literals:\n%s", report)
	}
	rest := report[i+len(marker):]
	if j := strings.Index(rest, "\n"); j >= 0 {
		rest = rest[:j]
	}
	if _, err := circuitgen.ParseSpec(rest); err != nil {
		t.Fatalf("report reproducer does not parse: %v", err)
	}
}

// TestRunCanceled: a canceled context aborts the sweep with a wrapped
// context error rather than fabricating a clean summary.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Corpus.N = 2
	_, err := Run(ctx, cell.Default180nm(), opts)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
}

// TestWidenNeverSlowerHonorsCancellation: regression for the unchecked
// per-gate delay-evaluation loop ctxflow flagged in
// propWidenNeverSlower — a dead context must abort the property with
// context.Canceled instead of running the remaining sweep.
func TestWidenNeverSlowerHonorsCancellation(t *testing.T) {
	lib := cell.Default180nm()
	specs, err := Corpus(lib, CorpusOptions{N: 1, Seed: 5, MaxGates: 60})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := propWidenNeverSlower(ctx, lib, specs[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled property returned %v, want context.Canceled", err)
	}
}
