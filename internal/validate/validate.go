package validate

import (
	"context"
	"fmt"
	"strings"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
)

// Options configures a full validation run.
type Options struct {
	Corpus CorpusOptions
	Oracle OracleConfig
	// ISCAS lists benchmark replicas (circuitgen.ByName) to validate
	// alongside the random corpus.
	ISCAS []string
	// ShrinkBudget bounds the circuit regenerations spent minimizing
	// each failure (0 disables shrinking). Oracle failures re-run Monte
	// Carlo per shrink step, so this is the knob that keeps failing
	// runs from crawling.
	ShrinkBudget int
	// Log, when non-nil, receives one progress line per circuit.
	Log func(format string, args ...any)
}

// DefaultOptions is the short-mode configuration TestCorpus runs.
func DefaultOptions() Options {
	return Options{
		Corpus:       DefaultCorpusOptions(),
		Oracle:       DefaultOracleConfig(),
		ISCAS:        []string{"c432", "c880"},
		ShrinkBudget: 24,
	}
}

// Failure is one validated-property or oracle violation, carrying the
// minimized reproducer.
type Failure struct {
	Circuit  string
	Kind     string // "oracle" or the metamorphic property name
	Detail   string
	Minimal  circuitgen.Spec // smallest spec still exhibiting the failure
	Original circuitgen.Spec
}

func (f *Failure) String() string {
	return fmt.Sprintf("%s/%s: %s\n  reproducer: %#v", f.Circuit, f.Kind, f.Detail, f.Minimal)
}

// CircuitOutcome is the per-circuit record of a run.
type CircuitOutcome struct {
	Spec     circuitgen.Spec
	Oracle   *OracleReport
	Failures []*Failure
}

// Summary aggregates a whole validation run.
type Summary struct {
	Outcomes []CircuitOutcome
	Failures []*Failure
}

// Ok reports whether every circuit passed every check.
func (s *Summary) Ok() bool { return len(s.Failures) == 0 }

// Report renders a human-readable run report: one line per circuit and
// the verdict tail.
func (s *Summary) Report() string {
	var b strings.Builder
	for _, oc := range s.Outcomes {
		fmt.Fprintf(&b, "%s\n", oc.Oracle)
	}
	b.WriteString(s.ReportTail())
	return b.String()
}

// ReportTail renders only the verdict plus one block per failure with
// its reproducer literal — what cmd/validate prints after streaming
// the per-circuit lines as progress.
func (s *Summary) ReportTail() string {
	var b strings.Builder
	if len(s.Failures) == 0 {
		fmt.Fprintf(&b, "PASS: %d circuits within tolerance, all metamorphic properties hold\n", len(s.Outcomes))
		return b.String()
	}
	fmt.Fprintf(&b, "FAIL: %d violation(s) across %d circuits\n", len(s.Failures), len(s.Outcomes))
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "%s\n", f)
	}
	return b.String()
}

// Run executes the differential oracle and the metamorphic suite over
// the random corpus plus the requested ISCAS replicas. Circuit-level
// check violations are collected (with minimized reproducers) in the
// summary; the returned error is reserved for infrastructure problems —
// corpus generation failing, analysis erroring, context cancellation.
func Run(ctx context.Context, lib *cell.Library, opts Options) (*Summary, error) {
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	specs, err := Corpus(lib, opts.Corpus)
	if err != nil {
		return nil, err
	}
	for _, name := range opts.ISCAS {
		sp, ok := circuitgen.ByName(name)
		if !ok {
			return nil, fmt.Errorf("validate: unknown ISCAS benchmark %q", name)
		}
		specs = append(specs, sp)
	}
	props := Properties()
	sum := &Summary{}
	for _, sp := range specs {
		if err := ctx.Err(); err != nil {
			return sum, fmt.Errorf("validate: run canceled: %w", err)
		}
		oc, err := checkCircuit(ctx, lib, sp, opts, props)
		if err != nil {
			return sum, err
		}
		logf("%s", oc.Oracle)
		sum.Outcomes = append(sum.Outcomes, *oc)
		sum.Failures = append(sum.Failures, oc.Failures...)
	}
	return sum, nil
}

// checkCircuit runs every check against one spec, shrinking each
// failure it finds.
func checkCircuit(ctx context.Context, lib *cell.Library, sp circuitgen.Spec, opts Options, props []Property) (*CircuitOutcome, error) {
	oc := &CircuitOutcome{Spec: sp}
	rep, err := RunOracle(ctx, lib, sp, opts.Oracle)
	if err != nil {
		return nil, err
	}
	oc.Oracle = rep
	if !rep.Pass {
		min := Shrink(lib, sp, func(cand circuitgen.Spec) bool {
			r, err := RunOracle(ctx, lib, cand, opts.Oracle)
			return err == nil && !r.Pass
		}, opts.ShrinkBudget)
		oc.Failures = append(oc.Failures, &Failure{
			Circuit: sp.Name, Kind: "oracle", Detail: rep.Failure,
			Minimal: min, Original: sp,
		})
	}
	for _, prop := range props {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("validate: run canceled: %w", err)
		}
		perr := prop.Run(ctx, lib, sp)
		if perr == nil {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("validate: %s on %s: %w", prop.Name, sp.Name, perr)
		}
		min := Shrink(lib, sp, func(cand circuitgen.Spec) bool {
			// A cancellation mid-shrink makes every candidate error;
			// that is not the failure being minimized.
			return prop.Run(ctx, lib, cand) != nil && ctx.Err() == nil
		}, opts.ShrinkBudget)
		oc.Failures = append(oc.Failures, &Failure{
			Circuit: sp.Name, Kind: prop.Name, Detail: perr.Error(),
			Minimal: min, Original: sp,
		})
	}
	return oc, nil
}
