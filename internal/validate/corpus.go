// Package validate is the statistical correctness oracle of the
// repository: it exercises the full SSTA/session/optimizer stack on a
// randomized corpus of generated circuits that nobody hand-picked, and
// checks two independent kinds of ground truth against it.
//
//   - The differential oracle (oracle.go) compares the SSTA sink CDF of
//     every corpus circuit against a Monte Carlo reference simulation,
//     with a tolerance derived from the Dvoretzky–Kiefer–Wolfowitz
//     inequality at the sample count plus explicit allowances for grid
//     discretization and the documented reconvergence conservatism.
//   - The metamorphic suite (metamorphic.go) checks internal-consistency
//     properties that must hold exactly — serial == parallel analysis,
//     incremental resize == fresh analysis, rollback restores the past,
//     what-if == commit-then-query, delay-cache transparency, and
//     monotonicity of gate widening.
//
// Any failing circuit is shrunk (shrink.go) to a minimal still-failing
// circuitgen.Spec and reported as a self-contained Go literal that
// reproduces the failure via cmd/validate -spec.
package validate

import (
	"fmt"
	"math/rand"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
)

// CorpusOptions configures corpus generation. The zero value is not
// usable; start from DefaultCorpusOptions.
type CorpusOptions struct {
	N        int   // number of generated circuits
	Seed     int64 // master seed; same seed + N = same corpus
	MaxGates int   // per-circuit gate-count ceiling
}

// DefaultCorpusOptions is the short-mode corpus: enough circuits to
// cover every family, small enough that 20k-sample Monte Carlo per
// circuit stays test-suite friendly.
func DefaultCorpusOptions() CorpusOptions {
	return CorpusOptions{N: 25, Seed: 20050613, MaxGates: 120}
}

// family is one region of circuit-shape space the corpus draws from.
// Families deliberately stress different code paths: deep chains grow
// long convolution pipelines, wide plates grow big per-level fan-outs
// for the parallel pass, reconvergent meshes maximize the correlation
// the SSTA bound ignores, and tapered cones bound how often the
// generator's PO-budget rewiring triggers.
type family struct {
	name string
	draw func(r *rand.Rand, maxGates int) circuitgen.Spec
}

func families() []family {
	clampG := func(g, depth, maxGates int) int {
		if g > maxGates {
			g = maxGates
		}
		if g < depth {
			g = depth
		}
		return g
	}
	mk := func(r *rand.Rand, pis, pos, depth, gates int, avgFanin float64) circuitgen.Spec {
		pins := int(float64(gates) * avgFanin)
		if pins < gates {
			pins = gates
		}
		if max := gates * 4; pins > max {
			pins = max
		}
		if pos > gates+pis {
			pos = gates + pis
		}
		return circuitgen.Spec{
			Nodes: pis + gates + 2,
			Edges: pins + pis + pos,
			PIs:   pis,
			POs:   pos,
			Depth: depth,
			Seed:  r.Int63(),
		}
	}
	return []family{
		{"mix", func(r *rand.Rand, maxGates int) circuitgen.Spec {
			depth := 5 + r.Intn(14)
			gates := clampG(depth*(2+r.Intn(3)), depth, maxGates)
			return mk(r, 4+r.Intn(17), 1+r.Intn(8), depth, gates, 1.4+1.4*r.Float64())
		}},
		{"deep", func(r *rand.Rand, maxGates int) circuitgen.Spec {
			depth := 18 + r.Intn(13)
			gates := clampG(depth+depth*r.Intn(2)/2+r.Intn(depth), depth, maxGates)
			return mk(r, 2+r.Intn(6), 1+r.Intn(3), depth, gates, 1.2+0.8*r.Float64())
		}},
		{"wide", func(r *rand.Rand, maxGates int) circuitgen.Spec {
			depth := 3 + r.Intn(4)
			gates := clampG(40+r.Intn(81), depth, maxGates)
			return mk(r, 10+r.Intn(31), 4+r.Intn(12), depth, gates, 1.5+1.5*r.Float64())
		}},
		{"reconv", func(r *rand.Rand, maxGates int) circuitgen.Spec {
			depth := 6 + r.Intn(10)
			gates := clampG(depth*3+r.Intn(depth*2), depth, maxGates)
			return mk(r, 2+r.Intn(4), 1+r.Intn(2), depth, gates, 2.5+1.0*r.Float64())
		}},
		{"taper", func(r *rand.Rand, maxGates int) circuitgen.Spec {
			depth := 6 + r.Intn(9)
			gates := clampG(depth*4+r.Intn(depth*3), depth, maxGates)
			pos := gates/3 + 1
			return mk(r, 15+r.Intn(26), pos, depth, gates, 1.6+1.0*r.Float64())
		}},
	}
}

// Corpus generates opt.N specs, cycling through the shape families. A
// drawn spec that fails validation or that the generator cannot wire is
// discarded and redrawn, so every returned spec is known-generable. The
// walk is deterministic in (Seed, N, MaxGates).
func Corpus(lib *cell.Library, opt CorpusOptions) ([]circuitgen.Spec, error) {
	if opt.N < 1 {
		return nil, fmt.Errorf("validate: corpus size %d", opt.N)
	}
	if opt.MaxGates < 8 {
		return nil, fmt.Errorf("validate: max gates %d too small to cover the families", opt.MaxGates)
	}
	r := rand.New(rand.NewSource(opt.Seed))
	fams := families()
	out := make([]circuitgen.Spec, 0, opt.N)
	for i := 0; len(out) < opt.N; i++ {
		if i >= 50*opt.N {
			return nil, fmt.Errorf("validate: corpus generation stalled after %d draws (%d/%d specs)", i, len(out), opt.N)
		}
		f := fams[len(out)%len(fams)]
		sp := f.draw(r, opt.MaxGates)
		sp.Name = fmt.Sprintf("%s-%03d", f.name, len(out))
		if sp.Validate(lib) != nil {
			continue
		}
		if _, err := circuitgen.Generate(lib, sp); err != nil {
			continue
		}
		out = append(out, sp)
	}
	return out, nil
}
