package validate

import (
	"statsize/internal/cell"
	"statsize/internal/circuitgen"
)

// Shrink greedily minimizes a failing spec: starting from sp (which
// fails(sp) must hold for), it repeatedly tries shape-reducing moves —
// fewer gates, shallower depth, fewer pins, fewer PIs/POs — and keeps
// any candidate that still validates, still generates, and still fails.
// The search stops at a fixpoint (no move preserves the failure) or
// after budget calls to fails, whichever comes first, and returns the
// smallest failing spec found. Deterministic: moves are tried in a
// fixed order.
//
// fails must be a pure predicate of the spec (the property suite and
// the oracle both are); it is never called on sp itself.
func Shrink(lib *cell.Library, sp circuitgen.Spec, fails func(circuitgen.Spec) bool, budget int) circuitgen.Spec {
	cur := sp
	for budget > 0 {
		improved := false
		for _, cand := range shrinkMoves(cur) {
			if budget <= 0 {
				break
			}
			if cand.Validate(lib) != nil {
				continue
			}
			if _, err := circuitgen.Generate(lib, cand); err != nil {
				continue
			}
			budget--
			if fails(cand) {
				cur = cand
				improved = true
				break // restart the move ladder from the smaller spec
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// shrinkMoves proposes candidate reductions of sp, most aggressive
// first. Gates and pins are the implied quantities, so moves rewrite
// Nodes and Edges consistently: Nodes = PIs + gates + 2 and
// Edges = pins + PIs + POs.
func shrinkMoves(sp circuitgen.Spec) []circuitgen.Spec {
	gates, pins := sp.Gates(), sp.Pins()
	rebuild := func(pis, pos, depth, g, p int) circuitgen.Spec {
		return circuitgen.Spec{
			Name:  sp.Name,
			Nodes: pis + g + 2,
			Edges: p + pis + pos,
			PIs:   pis,
			POs:   pos,
			Depth: depth,
			Seed:  sp.Seed,
		}
	}
	scaleGates := func(num, den int) circuitgen.Spec {
		g := gates * num / den
		if g < 1 {
			g = 1
		}
		// Scale pins with the gates, preserving the average fanin.
		p := pins * g / gates
		if p < g {
			p = g
		}
		d := sp.Depth
		if d > g {
			d = g
		}
		return rebuild(sp.PIs, sp.POs, d, g, p)
	}
	moves := []circuitgen.Spec{
		scaleGates(1, 2),
		scaleGates(3, 4),
		rebuild(sp.PIs, sp.POs, max(1, sp.Depth/2), gates, pins),
		rebuild(sp.PIs, sp.POs, sp.Depth, gates, max(gates, pins*3/4)), // thin the fanin
		rebuild(max(2, sp.PIs/2), sp.POs, sp.Depth, gates, pins),
		rebuild(sp.PIs, max(1, sp.POs/2), sp.Depth, gates, pins),
		scaleGates(9, 10),
		rebuild(sp.PIs, sp.POs, max(1, sp.Depth-1), gates, pins),
		rebuild(sp.PIs, sp.POs, sp.Depth, gates, max(gates, pins-1)),
	}
	return moves
}
