package validate

import (
	"context"
	"fmt"
	"math"
	"sort"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/montecarlo"
	"statsize/internal/ssta"
)

// OracleConfig parameterizes one SSTA-vs-Monte-Carlo comparison.
//
// The tolerance derivation (DESIGN.md, "Validation oracle") splits the
// classical KS band into the two one-sided checks that are actually
// meaningful for a bound computation:
//
//   - Soundness. The SSTA sink CDF is a stochastic upper bound on the
//     circuit delay, so it must never climb above the true CDF. The
//     Dvoretzky–Kiefer–Wolfowitz inequality turns "true CDF" into
//     "empirical CDF + epsilon" with simultaneous coverage 1-Alpha, so
//     any excursion of the SSTA CDF more than DKWEpsilon above the
//     empirical CDF convicts the implementation, not the sampling.
//   - Tightness. On the conservative side a vertical band is the wrong
//     instrument: circuit-delay CDFs are steep, so the documented
//     reconvergence conservatism — about 1% of delay horizontally, the
//     paper's Section 4 number — shows up as a vertical CDF distance
//     approaching the CDF's slope times that shift (0.3–0.55 on the
//     corpus). The oracle therefore measures conservatism in quantile
//     space: Q_SSTA(p) may exceed the DKW-widened empirical quantile
//     Q_n(p+epsilon) by at most QuantileTol of the circuit's p99 delay.
type OracleConfig struct {
	Samples int     // Monte Carlo sample count
	Alpha   float64 // DKW band confidence: P(band violated) <= Alpha
	Bins    int     // SSTA grid bin budget (design.SuggestDT input)
	// SlopBins is the horizontal discretization slack, in grid steps:
	// comparisons read the empirical CDF SlopBins*dt away in the
	// favorable direction, absorbing the per-edge snap-to-grid error.
	SlopBins int
	// QuantileTol bounds the conservatism: the SSTA quantile may trail
	// the DKW-widened empirical quantile by at most this fraction of
	// the p99 delay, at every probed probability level.
	QuantileTol float64
	// QuantileLo/QuantileHi bracket the probed probability levels. The
	// extreme tails are excluded: below ~1/Samples the empirical
	// quantiles are order statistics of a handful of samples and the
	// DKW band is vacuous there.
	QuantileLo, QuantileHi float64
	// P99ErrLimit bounds |p99_SSTA - p99_MC| / p99_MC — the paper's
	// headline Section 4 accuracy claim, applied per circuit.
	P99ErrLimit float64
	Seed        int64
}

// DefaultOracleConfig mirrors the paper's operating point: 20k samples
// (Figure 10's Monte Carlo), 400-bin grids, a 99.9% DKW band, and a 7%
// tightness budget calibrated on the randomized corpus: observed
// conservatism tops out near 5% of p99 on the fanout-heavy shallow
// family, where reconvergent sharing — the one correlation the bound
// ignores — is maximal (see DESIGN.md, "Validation oracle").
func DefaultOracleConfig() OracleConfig {
	return OracleConfig{
		Samples:     20000,
		Alpha:       0.001,
		Bins:        400,
		SlopBins:    2,
		QuantileTol: 0.07,
		QuantileLo:  0.02,
		QuantileHi:  0.99,
		P99ErrLimit: 0.05,
		Seed:        1,
	}
}

// DKWEpsilon returns the half-width of the Dvoretzky–Kiefer–Wolfowitz
// confidence band: with n i.i.d. samples, the empirical CDF stays
// within epsilon of the true CDF everywhere, simultaneously, with
// probability at least 1-alpha, for epsilon = sqrt(ln(2/alpha)/(2n)).
func DKWEpsilon(n int, alpha float64) float64 {
	return math.Sqrt(math.Log(2/alpha) / (2 * float64(n)))
}

// OracleReport is the outcome of one differential comparison.
type OracleReport struct {
	Circuit      string
	Nodes, Edges int
	DT           float64
	Samples      int

	DKW float64 // DKW band half-width at the sample count

	// MaxOptimistic is sup_t (CDF_SSTA(t - slop) - F_n(t)): how far the
	// SSTA CDF ever climbs above the empirical one, i.e. SSTA claiming
	// more probability of meeting a deadline than sampling supports.
	// Soundness demands this stays within the DKW band.
	MaxOptimistic float64
	// MaxConservative is sup_t (F_n(t) - CDF_SSTA(t + slop)): the
	// vertical magnitude of the bound's conservatism. Reported (it is
	// the other half of the classical KS distance) but judged in
	// quantile space instead — see QuantileGap.
	MaxConservative float64
	// KS is the slop-adjusted two-sided max-CDF-distance:
	// max(MaxOptimistic, MaxConservative).
	KS float64

	// QuantileGap is max over probed levels p of
	// Q_SSTA(p) - Q_n(p+DKW) - slop, clamped at zero — the horizontal
	// conservatism beyond what sampling noise and discretization
	// explain. QuantileGapFrac is the same as a fraction of p99.
	QuantileGap     float64
	QuantileGapFrac float64

	P50SSTA, P50MC float64
	P99SSTA, P99MC float64
	P99ErrPct      float64 // 100*(P99SSTA-P99MC)/P99MC

	OptimisticLimit float64 // tolerance applied to MaxOptimistic
	QuantileLimit   float64 // tolerance applied to QuantileGapFrac
	Pass            bool
	Failure         string // empty when Pass
}

func (r *OracleReport) String() string {
	status := "ok"
	if !r.Pass {
		status = "FAIL: " + r.Failure
	}
	return fmt.Sprintf("%-12s nodes=%-5d ks=%.4f opt=%.4f(<=%.4f) qgap=%.2f%%(<=%.0f%%) p99err=%+.2f%% %s",
		r.Circuit, r.Nodes, r.KS, r.MaxOptimistic, r.OptimisticLimit,
		100*r.QuantileGapFrac, 100*r.QuantileLimit, r.P99ErrPct, status)
}

// RunOracle generates the spec's circuit, analyzes it with the full
// SSTA stack, simulates it with Monte Carlo, and checks the sink CDFs
// against each other under the DKW-derived tolerances.
func RunOracle(ctx context.Context, lib *cell.Library, sp circuitgen.Spec, cfg OracleConfig) (*OracleReport, error) {
	nl, err := circuitgen.Generate(lib, sp)
	if err != nil {
		return nil, fmt.Errorf("validate: generate %s: %w", sp.Name, err)
	}
	d, err := design.New(nl, lib)
	if err != nil {
		return nil, fmt.Errorf("validate: design %s: %w", sp.Name, err)
	}
	return RunOracleOn(ctx, d, sp.Name, cfg)
}

// RunOracleOn is RunOracle over an already-built design — the entry
// point for validating the ISCAS replicas or externally loaded
// netlists.
func RunOracleOn(ctx context.Context, d *design.Design, name string, cfg OracleConfig) (*OracleReport, error) {
	dt := d.SuggestDT(cfg.Bins)
	a, err := ssta.Analyze(ctx, d, dt)
	if err != nil {
		return nil, fmt.Errorf("validate: ssta %s: %w", name, err)
	}
	mc, err := montecarlo.Run(ctx, d, cfg.Samples, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("validate: monte carlo %s: %w", name, err)
	}
	rep := CompareCDFs(a.SinkDist(), mc, cfg)
	rep.Circuit = name
	rep.Nodes = d.E.G.NumNodes()
	rep.Edges = d.E.G.NumEdges()
	rep.DT = dt
	return rep, nil
}

// CompareCDFs evaluates the slop-adjusted Kolmogorov–Smirnov statistics
// between an SSTA sink distribution and a Monte Carlo sample set and
// applies the DKW-derived tolerances. It is deterministic and pure, so
// the shrinker re-invokes it freely.
func CompareCDFs(sink *dist.Dist, mc *montecarlo.Result, cfg OracleConfig) *OracleReport {
	eps := DKWEpsilon(cfg.Samples, cfg.Alpha)
	slop := float64(cfg.SlopBins) * sink.DT()
	rep := &OracleReport{
		Samples:         cfg.Samples,
		DKW:             eps,
		OptimisticLimit: eps,
		QuantileLimit:   cfg.QuantileTol,
		P50SSTA:         sink.Percentile(0.50),
		P50MC:           mc.Percentile(0.50),
		P99SSTA:         sink.Percentile(0.99),
		P99MC:           mc.Percentile(0.99),
	}
	rep.MaxOptimistic = supDiff(
		func(t float64) float64 { return sink.CDF(t - slop) },
		empiricalCDF(mc.Delays), cdfJumpPoints(sink, slop), mc.Delays)
	rep.MaxConservative = supDiff(
		empiricalCDF(mc.Delays),
		func(t float64) float64 { return sink.CDF(t + slop) },
		mc.Delays, cdfJumpPoints(sink, -slop))
	rep.KS = math.Max(rep.MaxOptimistic, rep.MaxConservative)
	rep.P99ErrPct = 100 * (rep.P99SSTA - rep.P99MC) / rep.P99MC

	// Quantile-space conservatism: probe a fixed ladder of levels.
	const probes = 98
	for i := 0; i <= probes; i++ {
		p := cfg.QuantileLo + (cfg.QuantileHi-cfg.QuantileLo)*float64(i)/probes
		widened := p + eps
		if widened > 1 {
			widened = 1
		}
		if g := sink.Percentile(p) - mc.Percentile(widened) - slop; g > rep.QuantileGap {
			rep.QuantileGap = g
		}
	}
	if rep.P99MC > 0 {
		rep.QuantileGapFrac = rep.QuantileGap / rep.P99MC
	}

	switch {
	case rep.MaxOptimistic > rep.OptimisticLimit:
		rep.Failure = fmt.Sprintf("unsound: SSTA CDF exceeds empirical CDF by %.4f (DKW limit %.4f)",
			rep.MaxOptimistic, rep.OptimisticLimit)
	case rep.QuantileGapFrac > rep.QuantileLimit:
		rep.Failure = fmt.Sprintf("loose: SSTA quantiles trail Monte Carlo by %.2f%% of p99 (limit %.2f%%)",
			100*rep.QuantileGapFrac, 100*rep.QuantileLimit)
	case math.Abs(rep.P99ErrPct) > 100*cfg.P99ErrLimit:
		rep.Failure = fmt.Sprintf("p99 off by %+.2f%% (limit %.2f%%)", rep.P99ErrPct, 100*cfg.P99ErrLimit)
	default:
		rep.Pass = true
	}
	return rep
}

// empiricalCDF returns F_n over an ascending sample slice.
func empiricalCDF(sorted []float64) func(float64) float64 {
	n := float64(len(sorted))
	return func(t float64) float64 {
		return float64(sort.SearchFloat64s(sorted, math.Nextafter(t, math.Inf(1)))) / n
	}
}

// cdfJumpPoints returns the time points (shifted by shift) where the
// discrete CDF jumps — the candidate locations of a supremum involving
// it.
func cdfJumpPoints(d *dist.Dist, shift float64) []float64 {
	out := make([]float64, 0, d.NumBins())
	for k := 0; k < d.NumBins(); k++ {
		if d.MassAt(k) > 0 {
			out = append(out, float64(d.I0()+k)*d.DT()+shift)
		}
	}
	return out
}

// supDiff evaluates sup_t (a(t) - b(t)) for two right-continuous
// non-decreasing step functions whose jump locations are jumpsA and
// jumpsB. The supremum of the difference of two such step functions is
// attained either right at a jump of a (a just rose) or immediately
// before a jump of b (b is about to rise); both function arguments are
// total, so evaluating at every candidate point is exact.
func supDiff(a, b func(float64) float64, jumpsA, jumpsB []float64) float64 {
	sup := 0.0
	for _, t := range jumpsA {
		if d := a(t) - b(t); d > sup {
			sup = d
		}
	}
	for _, t := range jumpsB {
		u := math.Nextafter(t, math.Inf(-1)) // just before b rises
		if d := a(u) - b(u); d > sup {
			sup = d
		}
	}
	return sup
}
