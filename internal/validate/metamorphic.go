package validate

import (
	"context"
	"fmt"
	"math/rand"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/core"
	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/netlist"
	"statsize/internal/session"
	"statsize/internal/ssta"
)

// metaBins is the SSTA grid budget of the metamorphic suite — smaller
// than the oracle's because these properties demand bit-identity, which
// holds at any resolution, and a coarser grid keeps the suite fast.
const metaBins = 200

// Property is one metamorphic invariant of the timing stack: a relation
// between two computations over the same generated circuit that must
// hold exactly (or, for the monotonicity property, up to a stated
// discretization bound) regardless of the circuit drawn. Run returns
// nil when the property holds.
type Property struct {
	Name string
	Run  func(ctx context.Context, lib *cell.Library, sp circuitgen.Spec) error
}

// Properties returns the metamorphic suite. Every property builds its
// circuit from the spec alone, so a failure is reproducible from the
// spec literal and shrinkable by re-running on smaller specs.
func Properties() []Property {
	return []Property{
		{"serial-parallel", propSerialParallel},
		{"resize-fresh", propResizeFresh},
		{"rollback-restores", propRollbackRestores},
		{"whatif-commit", propWhatIfCommit},
		{"widen-never-slower", propWidenNeverSlower},
		{"delay-cache-identity", propDelayCacheIdentity},
	}
}

// buildDesign generates the spec's netlist and binds it at minimum
// widths.
func buildDesign(lib *cell.Library, sp circuitgen.Spec) (*design.Design, error) {
	nl, err := circuitgen.Generate(lib, sp)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	d, err := design.New(nl, lib)
	if err != nil {
		return nil, fmt.Errorf("design: %w", err)
	}
	return d, nil
}

// sampleGates draws up to n distinct gate IDs, deterministically in the
// spec seed.
func sampleGates(r *rand.Rand, numGates, n int) []netlist.GateID {
	if n > numGates {
		n = numGates
	}
	out := make([]netlist.GateID, 0, n)
	for _, gi := range r.Perm(numGates)[:n] {
		out = append(out, netlist.GateID(gi))
	}
	return out
}

// latticeWidth draws a width on the library's Δw sizing lattice.
func latticeWidth(r *rand.Rand, lib *cell.Library) float64 {
	steps := int((lib.WMax - lib.WMin) / lib.DeltaW)
	if steps > 16 {
		steps = 16 // stay in the low range, where delay sensitivity is largest
	}
	return lib.WMin + float64(1+r.Intn(steps))*lib.DeltaW
}

// equalDists compares two distributions for bit equality with a
// diagnostic error.
func equalDists(what string, got, want *dist.Dist) error {
	if !dist.ApproxEqual(got, want, 0) {
		return fmt.Errorf("%s: distributions differ (got mean %v, want mean %v)", what, got.Mean(), want.Mean())
	}
	return nil
}

// propSerialParallel: the level-parallel forward pass must be
// bit-identical to the serial reference at every node, for any worker
// count.
func propSerialParallel(ctx context.Context, lib *cell.Library, sp circuitgen.Spec) error {
	d, err := buildDesign(lib, sp)
	if err != nil {
		return err
	}
	dt := d.SuggestDT(metaBins)
	serial, err := ssta.AnalyzeParallel(ctx, d, dt, 1)
	if err != nil {
		return fmt.Errorf("serial analyze: %w", err)
	}
	parallel, err := ssta.AnalyzeParallel(ctx, d, dt, 4)
	if err != nil {
		return fmt.Errorf("parallel analyze: %w", err)
	}
	for n := 0; n < d.E.G.NumNodes(); n++ {
		ga, gb := serial.Arrival(graph.NodeID(n)), parallel.Arrival(graph.NodeID(n))
		if ga == nil || gb == nil {
			if ga != gb {
				return fmt.Errorf("node %d: one pass has an arrival, the other does not", n)
			}
			continue
		}
		if err := equalDists(fmt.Sprintf("node %d", n), gb, ga); err != nil {
			return err
		}
	}
	return nil
}

// propResizeFresh: a session's incremental resize commits must land on
// exactly the analysis a fresh full pass over the resized design
// computes — the incremental recompute may prune work, never precision.
func propResizeFresh(ctx context.Context, lib *cell.Library, sp circuitgen.Spec) error {
	d, err := buildDesign(lib, sp)
	if err != nil {
		return err
	}
	dt := d.SuggestDT(metaBins)
	s, err := session.Open(ctx, d, dt, core.Percentile(0.99), 2)
	if err != nil {
		return fmt.Errorf("open session: %w", err)
	}
	defer s.Close()
	r := rand.New(rand.NewSource(sp.Seed ^ 0x5e5510))
	for _, g := range sampleGates(r, d.NL.NumGates(), 4) {
		if _, err := s.Resize(ctx, g, latticeWidth(r, lib)); err != nil {
			return fmt.Errorf("resize gate %d: %w", g, err)
		}
	}
	sessionSink, err := s.SinkDist()
	if err != nil {
		return err
	}
	resized, err := s.Snapshot()
	if err != nil {
		return err
	}
	fresh, err := ssta.Analyze(ctx, resized, dt)
	if err != nil {
		return fmt.Errorf("fresh analyze: %w", err)
	}
	return equalDists("incremental vs fresh sink", sessionSink, fresh.SinkDist())
}

// propRollbackRestores: checkpoint, mutate, rollback must restore the
// pre-checkpoint sink distribution and widths bit for bit.
func propRollbackRestores(ctx context.Context, lib *cell.Library, sp circuitgen.Spec) error {
	d, err := buildDesign(lib, sp)
	if err != nil {
		return err
	}
	s, err := session.Open(ctx, d, d.SuggestDT(metaBins), core.Percentile(0.99), 2)
	if err != nil {
		return fmt.Errorf("open session: %w", err)
	}
	defer s.Close()
	before, err := s.SinkDist()
	if err != nil {
		return err
	}
	widthsBefore := make(map[netlist.GateID]float64)
	r := rand.New(rand.NewSource(sp.Seed ^ 0x011bac4))
	gates := sampleGates(r, d.NL.NumGates(), 5)
	for _, g := range gates {
		w, err := s.Width(g)
		if err != nil {
			return err
		}
		widthsBefore[g] = w
	}
	if _, err := s.Checkpoint(); err != nil {
		return err
	}
	for _, g := range gates {
		if _, err := s.Resize(ctx, g, latticeWidth(r, lib)); err != nil {
			return fmt.Errorf("resize gate %d: %w", g, err)
		}
	}
	if err := s.Rollback(); err != nil {
		return err
	}
	after, err := s.SinkDist()
	if err != nil {
		return err
	}
	if err := equalDists("sink after rollback", after, before); err != nil {
		return err
	}
	for g, want := range widthsBefore {
		got, err := s.Width(g)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("gate %d width after rollback = %v, want %v", g, got, want)
		}
	}
	return nil
}

// propWhatIfCommit: an uncommitted WhatIf must predict exactly the
// objective that committing the same resize produces.
func propWhatIfCommit(ctx context.Context, lib *cell.Library, sp circuitgen.Spec) error {
	d, err := buildDesign(lib, sp)
	if err != nil {
		return err
	}
	s, err := session.Open(ctx, d, d.SuggestDT(metaBins), core.Percentile(0.99), 2)
	if err != nil {
		return fmt.Errorf("open session: %w", err)
	}
	defer s.Close()
	r := rand.New(rand.NewSource(sp.Seed ^ 0x3a7c0))
	for _, g := range sampleGates(r, d.NL.NumGates(), 3) {
		w := latticeWidth(r, lib)
		predicted, err := s.WhatIf(ctx, g, w)
		if err != nil {
			return fmt.Errorf("what-if gate %d: %w", g, err)
		}
		if _, err := s.Checkpoint(); err != nil {
			return err
		}
		if _, err := s.Resize(ctx, g, w); err != nil {
			return fmt.Errorf("commit gate %d: %w", g, err)
		}
		committed, err := s.Objective()
		if err != nil {
			return err
		}
		if err := s.Rollback(); err != nil {
			return err
		}
		if predicted.Objective != committed {
			return fmt.Errorf("gate %d width %v: what-if predicts objective %x, commit yields %x",
				g, w, predicted.Objective, committed)
		}
	}
	return nil
}

// propWidenNeverSlower: widening a gate must never worsen the mean of
// any of that gate's own pin-to-pin delay distributions — EQ 1 says its
// drive strengthens while its output load is unaffected by its own
// width. The comparison allows half a grid bin: the distribution means
// are discretized, and a width step whose analytic improvement is
// smaller than the snap-to-grid error may tie, but never regress by
// more than the snap.
func propWidenNeverSlower(ctx context.Context, lib *cell.Library, sp circuitgen.Spec) error {
	d, err := buildDesign(lib, sp)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	dt := d.SuggestDT(metaBins)
	r := rand.New(rand.NewSource(sp.Seed ^ 0x51de))
	for _, g := range sampleGates(r, d.NL.NumGates(), 6) {
		if err := ctx.Err(); err != nil {
			return err
		}
		w1 := latticeWidth(r, lib)
		w2 := w1 + float64(1+r.Intn(4))*lib.DeltaW
		if w2 > lib.WMax {
			w2 = lib.WMax
		}
		for _, eid := range d.E.GateEdges[g] {
			if d.E.EdgeGate[eid] != g {
				continue // a fanin driver's edge: its load grows with w, legitimately slower
			}
			narrow, err := d.EdgeDelayDistAtWidths(dt, eid, map[netlist.GateID]float64{g: w1})
			if err != nil {
				return err
			}
			wide, err := d.EdgeDelayDistAtWidths(dt, eid, map[netlist.GateID]float64{g: w2})
			if err != nil {
				return err
			}
			if wide.Mean() > narrow.Mean()+dt/2 {
				return fmt.Errorf("gate %d edge %d: widening %v->%v raises mean delay %v -> %v",
					g, eid, w1, w2, narrow.Mean(), wide.Mean())
			}
		}
	}
	return nil
}

// propDelayCacheIdentity: the delay-distribution memo cache must be
// observationally invisible — a full analysis with the cache detached
// is bit-identical at every node to one that memoizes.
func propDelayCacheIdentity(ctx context.Context, lib *cell.Library, sp circuitgen.Spec) error {
	cached, err := buildDesign(lib, sp)
	if err != nil {
		return err
	}
	uncached, err := buildDesign(lib, sp)
	if err != nil {
		return err
	}
	uncached.DropDelayCache()
	dt := cached.SuggestDT(metaBins)
	aCached, err := ssta.Analyze(ctx, cached, dt)
	if err != nil {
		return fmt.Errorf("cached analyze: %w", err)
	}
	aDirect, err := ssta.Analyze(ctx, uncached, dt)
	if err != nil {
		return fmt.Errorf("uncached analyze: %w", err)
	}
	hits, misses, _, _ := cached.DelayCacheStats()
	if hits+misses == 0 {
		return fmt.Errorf("delay cache saw no traffic during a full analysis")
	}
	for n := 0; n < cached.E.G.NumNodes(); n++ {
		ga, gb := aCached.Arrival(graph.NodeID(n)), aDirect.Arrival(graph.NodeID(n))
		if ga == nil || gb == nil {
			if ga != gb {
				return fmt.Errorf("node %d: cached and direct passes disagree on having an arrival", n)
			}
			continue
		}
		if err := equalDists(fmt.Sprintf("node %d cached-vs-direct", n), ga, gb); err != nil {
			return err
		}
	}
	return nil
}
