package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			const n = 1000
			counts := make([]atomic.Int32, n)
			err := Run(context.Background(), workers, n, func(i int) error {
				counts[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("index %d ran %d times", i, c)
				}
			}
		})
	}
}

// TestRunLowestIndexErrorWins: with several failing indices, the
// reported error must be the lowest-index one — the property that keeps
// parallel failure deterministic.
func TestRunLowestIndexErrorWins(t *testing.T) {
	wantErr := errors.New("boom-10")
	// Indices 10, 20, 30 fail. Run enough times that scheduling varies.
	for trial := 0; trial < 20; trial++ {
		err := Run(context.Background(), 8, 40, func(i int) error {
			switch i {
			case 10:
				return wantErr
			case 20, 30:
				return fmt.Errorf("boom-%d", i)
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("trial %d: got %v, want boom-10 (lowest index)", trial, err)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int32{}
	err := Run(ctx, 4, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		// A pre-canceled context should skip everything (workers check
		// before drawing an index, but a few draws may slip through on
		// other implementations — pin the strict behavior we provide).
		t.Errorf("%d calls ran under a pre-canceled context", got)
	}
}

// TestPoolBarrierAcrossBatches: a pool reused for dependent batches
// must provide a full barrier between them — batch k+1 reads what batch
// k wrote, the exact structure of the level-parallel SSTA pass.
func TestPoolBarrierAcrossBatches(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n = 256
	cur := make([]int, n)
	next := make([]int, n)
	for round := 1; round <= 50; round++ {
		err := p.Run(context.Background(), n, func(i int) error {
			// Read a neighbor from the previous round; any missing
			// barrier shows up as a torn read under -race or as a wrong
			// value here.
			next[i] = cur[(i+1)%n] + 1
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		cur, next = next, cur
		for i := range cur {
			if cur[i] != round {
				t.Fatalf("round %d: slot %d = %d, want %d (barrier violated)", round, i, cur[i], round)
			}
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("non-positive parallelism must normalize to >= 1")
	}
	if Workers(5) != 5 {
		t.Error("positive parallelism must pass through")
	}
}

// TestRunIndexedWorkerOrdinals: every index is processed exactly once
// and every reported worker ordinal is within [0, workers) — the
// contract per-worker scratch arenas key off.
func TestRunIndexedWorkerOrdinals(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 200
		seen := make([]int32, n)
		byWorker := make([]atomic.Int64, workers)
		err := RunIndexed(context.Background(), workers, n, func(w, i int) error {
			if w < 0 || w >= workers {
				t.Errorf("worker ordinal %d out of [0,%d)", w, workers)
			}
			atomic.AddInt32(&seen[i], 1)
			byWorker[w].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		total := int64(0)
		for i := range seen {
			if seen[i] != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, seen[i])
			}
		}
		for w := range byWorker {
			total += byWorker[w].Load()
		}
		if total != n {
			t.Fatalf("workers=%d: %d total invocations, want %d", workers, total, n)
		}
		if workers == 1 && byWorker[0].Load() != n {
			t.Error("serial path must report ordinal 0 for every index")
		}
	}
}

// TestPoolRunIndexedSerialOrdinal: a serial pool reports ordinal 0 and
// runs on the calling goroutine in index order.
func TestPoolRunIndexedSerialOrdinal(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if p.NumWorkers() != 1 {
		t.Fatalf("NumWorkers = %d, want 1", p.NumWorkers())
	}
	last := -1
	err := p.RunIndexed(context.Background(), 10, func(w, i int) error {
		if w != 0 {
			t.Errorf("serial pool reported worker %d", w)
		}
		if i != last+1 {
			t.Errorf("serial pool ran index %d after %d", i, last)
		}
		last = i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
