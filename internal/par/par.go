// Package par provides the bounded fan-out primitives shared by the
// parallel evaluation paths: the level-parallel SSTA forward pass, the
// session's what-if batches and the optimizers' candidate sweeps.
//
// Determinism is the design constraint, not raw throughput: callers
// index results by input position and never observe completion order,
// so running the same work across any number of workers produces
// bit-identical output. The helpers only distribute *pure* work — the
// mutation-free evaluation contract documented in DESIGN.md is what
// makes that distribution sound.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism setting: non-positive means "one
// worker per logical CPU" (the engine's WithParallelism default).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run invokes fn(i) for every i in [0, n) across at most workers
// goroutines and waits for all of them. Each fn call must write its
// result to a caller-owned slot indexed by i; slots are never shared
// between indices, so no synchronization is needed beyond the
// happens-before edge Run itself provides on return.
//
// Cancellation and failure: once the context dies or any fn returns an
// error, remaining indices are skipped (best effort — calls already in
// flight finish). The returned error is deterministic given a
// deterministic failure: the lowest-index fn error wins; a pure
// context cancellation returns ctx.Err().
//
// workers <= 1 (or n <= 1) degenerates to a serial loop on the calling
// goroutine, the reference the parallel paths are tested bit-identical
// against. For a sequence of dependent batches (the SSTA levels), use a
// Pool, which amortizes worker startup across batches.
func Run(ctx context.Context, workers, n int, fn func(i int) error) error {
	return RunIndexed(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// RunIndexed is Run with the worker ordinal (in [0, workers)) passed to
// fn alongside the index — the hook per-worker scratch state (arenas,
// reusable maps) keys off. Which ordinal processes which index is
// scheduling-dependent; everything else about the contract matches Run,
// and the serial degenerate case always reports ordinal 0.
func RunIndexed(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	p := NewPool(workers)
	defer p.Close()
	return p.RunIndexed(ctx, n, fn)
}

// Pool is a long-lived set of workers that process successive batches
// with a barrier after each. It exists for batch sequences whose steps
// are individually small — the forward SSTA pass runs one batch per
// topological level, often dozens of nodes across hundreds of levels,
// where spawning goroutines per level would rival the work itself.
// A Pool is not safe for concurrent Run calls; it serves one caller.
type Pool struct {
	workers int
	chans   []chan *batch
}

// batch is one barrier-delimited unit of pool work: an index range, the
// function, and the shared progress/failure state.
type batch struct {
	ctx  context.Context
	n    int
	fn   func(worker, i int) error
	next atomic.Int64
	stop atomic.Bool
	wg   sync.WaitGroup

	mu     sync.Mutex
	firstI int // lowest failed index; n when no failure
	firstE error
}

// NewPool starts workers goroutines (none when the normalized count is
// 1 — a serial pool runs batches on the caller's goroutine). Close must
// be called to release the workers.
func NewPool(workers int) *Pool {
	p := &Pool{workers: Workers(workers)}
	if p.workers <= 1 {
		return p
	}
	p.chans = make([]chan *batch, p.workers)
	for i := range p.chans {
		ch := make(chan *batch, 1)
		p.chans[i] = ch
		worker := i
		go func() {
			for b := range ch {
				b.work(worker)
				b.wg.Done()
			}
		}()
	}
	return p
}

// NumWorkers returns the pool's normalized worker count — the bound on
// the worker ordinals RunIndexed reports.
func (p *Pool) NumWorkers() int { return p.workers }

// Close stops the pool's workers. The pool must not be used afterwards.
func (p *Pool) Close() {
	for _, ch := range p.chans {
		close(ch)
	}
}

// Run processes one batch through the pool and waits for the barrier:
// fn(i) for every i in [0, n), same contract as the package-level Run.
func (p *Pool) Run(ctx context.Context, n int, fn func(i int) error) error {
	return p.RunIndexed(ctx, n, func(_, i int) error { return fn(i) })
}

// RunIndexed is Run with the worker ordinal passed to fn (see the
// package-level RunIndexed).
func (p *Pool) RunIndexed(ctx context.Context, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	b := &batch{ctx: ctx, n: n, fn: fn, firstI: n}
	b.wg.Add(len(p.chans))
	for _, ch := range p.chans {
		ch <- b
	}
	b.wg.Wait()
	if b.firstE != nil {
		return b.firstE
	}
	return ctx.Err()
}

// work drains indices from the batch until exhaustion, failure or
// cancellation.
func (b *batch) work(worker int) {
	for {
		if b.stop.Load() {
			return
		}
		if err := b.ctx.Err(); err != nil {
			b.stop.Store(true)
			return
		}
		i := int(b.next.Add(1)) - 1
		if i >= b.n {
			return
		}
		if err := b.fn(worker, i); err != nil {
			b.mu.Lock()
			if i < b.firstI {
				b.firstI, b.firstE = i, err
			}
			b.mu.Unlock()
			b.stop.Store(true)
			return
		}
	}
}
