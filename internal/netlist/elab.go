package netlist

import (
	"fmt"

	"statsize/internal/graph"
)

// Elab is the elaborated timing graph of a netlist together with the
// cross-reference tables between circuit objects and graph objects.
type Elab struct {
	NL *Netlist
	G  *graph.Graph

	// NodeOf maps each net to its graph node.
	NodeOf []graph.NodeID
	// NetOf maps each graph node back to its net, or NoNet for the
	// source and sink.
	NetOf []NetID
	// EdgeGate and EdgePin map each graph edge to the gate input pin it
	// represents; EdgeGate is NoGate for source→PI and PO→sink arcs.
	EdgeGate []GateID
	EdgePin  []int
	// GateEdges lists, per gate, the edge of each input pin (index =
	// pin).
	GateEdges [][]graph.EdgeID
}

// Elaborate builds the timing graph. The netlist must be finalized; a
// combinational cycle surfaces here as a graph build error.
func (nl *Netlist) Elaborate() (*Elab, error) {
	if !nl.finalized {
		return nil, fmt.Errorf("netlist %s: Elaborate before Finalize", nl.Name)
	}
	b := graph.NewBuilder()
	source := b.AddNode()
	sink := b.AddNode()
	e := &Elab{
		NL:        nl,
		NodeOf:    make([]graph.NodeID, len(nl.nets)),
		GateEdges: make([][]graph.EdgeID, len(nl.gates)),
	}
	for i := range nl.nets {
		e.NodeOf[i] = b.AddNode()
	}
	// Edge annotations accumulate in AddEdge call order.
	var gates []GateID
	var pins []int
	addArc := func(from, to graph.NodeID, g GateID, pin int) {
		b.AddEdge(from, to)
		gates = append(gates, g)
		pins = append(pins, pin)
	}
	for _, pi := range nl.pis {
		addArc(source, e.NodeOf[pi], NoGate, 0)
	}
	for gi := range nl.gates {
		g := &nl.gates[gi]
		e.GateEdges[gi] = make([]graph.EdgeID, len(g.Ins))
		for pin, in := range g.Ins {
			e.GateEdges[gi][pin] = graph.EdgeID(len(gates))
			addArc(e.NodeOf[in], e.NodeOf[g.Out], g.ID, pin)
		}
	}
	for _, po := range nl.pos {
		addArc(e.NodeOf[po], sink, NoGate, 0)
	}
	g, err := b.Build(source, sink)
	if err != nil {
		return nil, fmt.Errorf("netlist %s: %w", nl.Name, err)
	}
	e.G = g
	e.EdgeGate = gates
	e.EdgePin = pins
	e.NetOf = make([]NetID, g.NumNodes())
	e.NetOf[source] = NoNet
	e.NetOf[sink] = NoNet
	for netID, node := range e.NodeOf {
		e.NetOf[node] = NetID(netID)
	}
	return e, nil
}
