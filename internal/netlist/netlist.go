// Package netlist models combinational gate-level netlists, parses and
// writes the ISCAS .bench format, and elaborates a netlist into the
// timing graph of the paper's Definition 1 (nodes = nets, edges = gate
// pin-to-pin arcs, plus a single source feeding all primary inputs and a
// single sink fed by all primary outputs).
package netlist

import (
	"fmt"

	"statsize/internal/cell"
)

// NetID identifies a net within one netlist; dense from 0.
type NetID int32

// GateID identifies a gate instance within one netlist; dense from 0.
type GateID int32

// NoGate marks the absence of a driving gate (primary inputs).
const NoGate GateID = -1

// NoNet marks the absence of a net (source/sink graph nodes).
const NoNet NetID = -1

// PinRef addresses one input pin of one gate.
type PinRef struct {
	Gate GateID
	Pin  int
}

// Gate is one cell instance.
type Gate struct {
	ID   GateID
	Kind cell.Kind
	Out  NetID
	Ins  []NetID
}

type net struct {
	name    string
	driver  GateID
	isPI    bool
	isPO    bool
	readers []PinRef
}

// Netlist is a combinational gate-level circuit. Construct with New,
// populate with AddPI/AddGate/MarkPO, then seal with Finalize before
// elaboration.
type Netlist struct {
	Name      string
	nets      []net
	byName    map[string]NetID
	gates     []Gate
	pis       []NetID
	pos       []NetID
	finalized bool
}

// New returns an empty netlist.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]NetID)}
}

// netID returns the net with the given name, creating an undriven
// placeholder on first reference (the .bench format allows any
// definition order).
func (nl *Netlist) netID(name string) NetID {
	if id, ok := nl.byName[name]; ok {
		return id
	}
	id := NetID(len(nl.nets))
	nl.nets = append(nl.nets, net{name: name, driver: NoGate})
	nl.byName[name] = id
	return id
}

// AddPI declares a primary input net.
func (nl *Netlist) AddPI(name string) (NetID, error) {
	if nl.finalized {
		return 0, fmt.Errorf("netlist %s: AddPI after Finalize", nl.Name)
	}
	id := nl.netID(name)
	n := &nl.nets[id]
	if n.isPI {
		return 0, fmt.Errorf("netlist %s: duplicate primary input %q", nl.Name, name)
	}
	if n.driver != NoGate {
		return 0, fmt.Errorf("netlist %s: net %q is both gate-driven and a primary input", nl.Name, name)
	}
	n.isPI = true
	nl.pis = append(nl.pis, id)
	return id, nil
}

// MarkPO declares a primary output net (it may be defined before or
// after the driving gate).
func (nl *Netlist) MarkPO(name string) (NetID, error) {
	if nl.finalized {
		return 0, fmt.Errorf("netlist %s: MarkPO after Finalize", nl.Name)
	}
	id := nl.netID(name)
	n := &nl.nets[id]
	if n.isPO {
		return 0, fmt.Errorf("netlist %s: duplicate primary output %q", nl.Name, name)
	}
	n.isPO = true
	nl.pos = append(nl.pos, id)
	return id, nil
}

// AddGate instantiates a cell of the given kind driving net out from the
// named input nets. The input count must match the cell's arity.
func (nl *Netlist) AddGate(lib *cell.Library, kind cell.Kind, out string, ins ...string) (GateID, error) {
	if nl.finalized {
		return 0, fmt.Errorf("netlist %s: AddGate after Finalize", nl.Name)
	}
	if want := lib.Spec(kind).NumInputs; len(ins) != want {
		return 0, fmt.Errorf("netlist %s: %s %q takes %d inputs, got %d", nl.Name, kind, out, want, len(ins))
	}
	outID := nl.netID(out)
	if nl.nets[outID].driver != NoGate {
		return 0, fmt.Errorf("netlist %s: net %q driven twice", nl.Name, out)
	}
	if nl.nets[outID].isPI {
		return 0, fmt.Errorf("netlist %s: primary input %q cannot be gate-driven", nl.Name, out)
	}
	g := Gate{ID: GateID(len(nl.gates)), Kind: kind, Out: outID, Ins: make([]NetID, len(ins))}
	for i, in := range ins {
		// netID may grow the nets slice, so the output net is addressed
		// by index again below rather than through a held pointer.
		g.Ins[i] = nl.netID(in)
		if g.Ins[i] == outID {
			return 0, fmt.Errorf("netlist %s: gate %q uses its own output as input", nl.Name, out)
		}
	}
	nl.nets[outID].driver = g.ID
	nl.gates = append(nl.gates, g)
	return g.ID, nil
}

// Finalize validates the netlist and freezes it: every net must be
// driven by a gate or be a primary input, and there must be at least one
// primary input and output. Reader (fanout) lists are computed here.
func (nl *Netlist) Finalize() error {
	if nl.finalized {
		return nil
	}
	if len(nl.pis) == 0 {
		return fmt.Errorf("netlist %s: no primary inputs", nl.Name)
	}
	if len(nl.pos) == 0 {
		return fmt.Errorf("netlist %s: no primary outputs", nl.Name)
	}
	for id := range nl.nets {
		n := &nl.nets[id]
		if !n.isPI && n.driver == NoGate {
			return fmt.Errorf("netlist %s: net %q is never driven", nl.Name, n.name)
		}
	}
	for gi := range nl.gates {
		g := &nl.gates[gi]
		for pin, in := range g.Ins {
			nl.nets[in].readers = append(nl.nets[in].readers, PinRef{Gate: g.ID, Pin: pin})
		}
	}
	nl.finalized = true
	return nil
}

// Finalized reports whether Finalize has completed.
func (nl *Netlist) Finalized() bool { return nl.finalized }

// NumNets returns the net count (excluding the graph's source/sink).
func (nl *Netlist) NumNets() int { return len(nl.nets) }

// NumGates returns the gate count.
func (nl *Netlist) NumGates() int { return len(nl.gates) }

// NumPIs returns the primary input count.
func (nl *Netlist) NumPIs() int { return len(nl.pis) }

// NumPOs returns the primary output count.
func (nl *Netlist) NumPOs() int { return len(nl.pos) }

// PIs returns the primary input nets. Shared slice; do not mutate.
func (nl *Netlist) PIs() []NetID { return nl.pis }

// POs returns the primary output nets. Shared slice; do not mutate.
func (nl *Netlist) POs() []NetID { return nl.pos }

// Gate returns gate g. Shared pointer into the netlist; do not mutate.
func (nl *Netlist) Gate(g GateID) *Gate { return &nl.gates[g] }

// NetName returns the net's name.
func (nl *Netlist) NetName(n NetID) string { return nl.nets[n].name }

// NetByName resolves a net name.
func (nl *Netlist) NetByName(name string) (NetID, bool) {
	id, ok := nl.byName[name]
	return id, ok
}

// Driver returns the gate driving net n, or NoGate for primary inputs.
func (nl *Netlist) Driver(n NetID) GateID { return nl.nets[n].driver }

// Readers returns the gate input pins fed by net n. Shared slice; do not
// mutate. Finalize must have run.
func (nl *Netlist) Readers(n NetID) []PinRef { return nl.nets[n].readers }

// IsPI reports whether net n is a primary input.
func (nl *Netlist) IsPI(n NetID) bool { return nl.nets[n].isPI }

// IsPO reports whether net n is a primary output.
func (nl *Netlist) IsPO(n NetID) bool { return nl.nets[n].isPO }

// TimingNodeCount returns the node count of the elaborated timing graph:
// nets plus source and sink. This is the "node" column of the paper's
// Table 1.
func (nl *Netlist) TimingNodeCount() int { return len(nl.nets) + 2 }

// TimingEdgeCount returns the edge count of the elaborated timing graph:
// one edge per gate input pin, plus source→PI and PO→sink arcs. This is
// the "edge" column of the paper's Table 1.
func (nl *Netlist) TimingEdgeCount() int {
	e := len(nl.pis) + len(nl.pos)
	for i := range nl.gates {
		e += len(nl.gates[i].Ins)
	}
	return e
}

func (nl *Netlist) String() string {
	return fmt.Sprintf("Netlist{%s: %d gates, %d nets, %d PI, %d PO}",
		nl.Name, len(nl.gates), len(nl.nets), len(nl.pis), len(nl.pos))
}
