package netlist

import (
	"strings"
	"testing"

	"statsize/internal/cell"
)

// FuzzParseBench throws arbitrary text at the .bench parser: malformed
// declarations, duplicate definitions, undriven nets, absurd arities,
// unterminated parentheses, NUL bytes. The contract under fuzzing is
// that ParseBench either returns a netlist that elaborates cleanly or
// returns an error — it must never panic and never build an
// inconsistent netlist.
func FuzzParseBench(f *testing.F) {
	seeds := []string{
		// Well-formed c17-style netlist.
		"INPUT(1)\nINPUT(2)\nINPUT(3)\nOUTPUT(22)\n22 = NAND(1, 2)\n",
		// Comments and blank lines.
		"# comment\n\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n",
		// Duplicate driver.
		"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = NOT(a)\n",
		// Undriven net.
		"INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n",
		// Gate driving a primary input.
		"INPUT(a)\nOUTPUT(a)\na = NOT(a)\n",
		// Wide gate that decomposes.
		"INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(z)\nz = NAND(a, b, c, d, e)\n",
		// Malformed lines.
		"INPUT\n",
		"INPUT()\n",
		"z = \n",
		"z = NAND(a,\n",
		"z = NAND a, b)\n",
		"= NAND(a, b)\n",
		"z == NAND(a, b)\n",
		"INPUT(a) OUTPUT(a)\n",
		"z = UNKNOWN(a, b)\n",
		"z = NAND()\n",
		"z = NAND(,)\n",
		"z = NAND(a, a)\n",
		"\x00\nINPUT(\x00)\n",
		"OUTPUT(z)\n",
		"INPUT(a)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lib := cell.Default180nm()
	f.Fuzz(func(t *testing.T, text string) {
		nl, err := ParseBench(strings.NewReader(text), "fuzz", lib)
		if err != nil {
			return
		}
		// A successful parse must yield a consistent, finalized netlist
		// that elaborates into a valid timing graph or reports a clean
		// error (e.g. a combinational cycle).
		if !nl.Finalized() {
			t.Fatal("ParseBench returned a non-finalized netlist")
		}
		if nl.NumPIs() == 0 || nl.NumPOs() == 0 {
			t.Fatal("finalized netlist missing PIs or POs")
		}
		if _, err := nl.Elaborate(); err != nil {
			// Cycles and disconnected nodes are legitimate rejections —
			// but they must be errors, not panics.
			return
		}
		// Round-trip: writing and re-parsing must succeed and preserve
		// the gate count.
		var b strings.Builder
		if err := nl.WriteBench(&b); err != nil {
			t.Fatalf("WriteBench: %v", err)
		}
		nl2, err := ParseBench(strings.NewReader(b.String()), "fuzz2", lib)
		if err != nil {
			t.Fatalf("re-parse of WriteBench output failed: %v\noutput:\n%s", err, b.String())
		}
		if nl2.NumGates() != nl.NumGates() {
			t.Fatalf("round trip changed gate count: %d -> %d", nl.NumGates(), nl2.NumGates())
		}
	})
}
