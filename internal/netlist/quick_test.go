package netlist

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"statsize/internal/cell"
)

// randomNetlist builds a random valid combinational netlist: layered
// wiring guarantees acyclicity, every dangling net becomes a PO.
func randomNetlist(r *rand.Rand) (*Netlist, error) {
	nl := New("fuzz")
	nPI := 2 + r.Intn(6)
	var nets []string
	for i := 0; i < nPI; i++ {
		name := fmt.Sprintf("in%d", i)
		if _, err := nl.AddPI(name); err != nil {
			return nil, err
		}
		nets = append(nets, name)
	}
	kinds := cell.Kinds()
	nGates := 1 + r.Intn(25)
	reads := map[string]int{}
	for i := 0; i < nGates; i++ {
		k := kinds[r.Intn(len(kinds))]
		arity := lib.Spec(k).NumInputs
		if arity > len(nets) {
			k = cell.INV
			arity = 1
		}
		// Sample distinct input nets.
		perm := r.Perm(len(nets))[:arity]
		ins := make([]string, arity)
		for j, p := range perm {
			ins[j] = nets[p]
			reads[nets[p]]++
		}
		out := fmt.Sprintf("g%d", i)
		if _, err := nl.AddGate(lib, k, out, ins...); err != nil {
			return nil, err
		}
		nets = append(nets, out)
	}
	for _, n := range nets {
		if reads[n] == 0 {
			if _, err := nl.MarkPO(n); err != nil {
				return nil, err
			}
		}
	}
	if err := nl.Finalize(); err != nil {
		return nil, err
	}
	return nl, nil
}

func TestQuickBenchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl, err := randomNetlist(r)
		if err != nil {
			t.Logf("generation failed: %v", err)
			return false
		}
		var buf bytes.Buffer
		if err := nl.WriteBench(&buf); err != nil {
			return false
		}
		nl2, err := ParseBench(&buf, "rt", lib)
		if err != nil {
			t.Logf("reparse failed: %v", err)
			return false
		}
		if nl2.NumGates() != nl.NumGates() || nl2.NumNets() != nl.NumNets() ||
			nl2.NumPIs() != nl.NumPIs() || nl2.NumPOs() != nl.NumPOs() {
			return false
		}
		// Gate-by-gate structural equality via names.
		for i := 0; i < nl.NumGates(); i++ {
			a, b := nl.Gate(GateID(i)), nl2.Gate(GateID(i))
			if a.Kind != b.Kind || len(a.Ins) != len(b.Ins) {
				return false
			}
			if nl.NetName(a.Out) != nl2.NetName(b.Out) {
				return false
			}
			for p := range a.Ins {
				if nl.NetName(a.Ins[p]) != nl2.NetName(b.Ins[p]) {
					return false
				}
			}
		}
		// And both must elaborate to identical graph sizes.
		e1, err1 := nl.Elaborate()
		e2, err2 := nl2.Elaborate()
		if err1 != nil || err2 != nil {
			return false
		}
		return e1.G.NumNodes() == e2.G.NumNodes() && e1.G.NumEdges() == e2.G.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickElaborationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl, err := randomNetlist(r)
		if err != nil {
			return false
		}
		e, err := nl.Elaborate()
		if err != nil {
			return false
		}
		// Counts follow the closed formulas.
		if e.G.NumNodes() != nl.TimingNodeCount() || e.G.NumEdges() != nl.TimingEdgeCount() {
			return false
		}
		// Every gate edge annotation round-trips.
		for gi := 0; gi < nl.NumGates(); gi++ {
			for pin, eid := range e.GateEdges[gi] {
				if e.EdgeGate[eid] != GateID(gi) || e.EdgePin[eid] != pin {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
