package netlist

import (
	"bytes"
	"strings"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/graph"
)

var lib = cell.Default180nm()

func TestC17Counts(t *testing.T) {
	nl := C17(lib)
	if nl.NumPIs() != 5 || nl.NumPOs() != 2 || nl.NumGates() != 6 {
		t.Fatalf("c17: %d PI %d PO %d gates, want 5/2/6", nl.NumPIs(), nl.NumPOs(), nl.NumGates())
	}
	if nl.NumNets() != 11 {
		t.Fatalf("c17 nets = %d, want 11", nl.NumNets())
	}
	// Timing graph per Definition 1: 11 nets + source + sink = 13 nodes;
	// 12 gate pins + 5 PI arcs + 2 PO arcs = 19 edges.
	if nl.TimingNodeCount() != 13 {
		t.Errorf("timing nodes = %d, want 13", nl.TimingNodeCount())
	}
	if nl.TimingEdgeCount() != 19 {
		t.Errorf("timing edges = %d, want 19", nl.TimingEdgeCount())
	}
}

func TestC17Elaborate(t *testing.T) {
	nl := C17(lib)
	e, err := nl.Elaborate()
	if err != nil {
		t.Fatal(err)
	}
	if e.G.NumNodes() != nl.TimingNodeCount() || e.G.NumEdges() != nl.TimingEdgeCount() {
		t.Fatalf("graph %v does not match netlist counts %d/%d",
			e.G, nl.TimingNodeCount(), nl.TimingEdgeCount())
	}
	// Net 22 is driven by the NAND(10,16) gate; its node's fanins must be
	// the nodes of nets 10 and 16.
	n22, _ := nl.NetByName("22")
	ins := e.G.In(e.NodeOf[n22])
	if len(ins) != 2 {
		t.Fatalf("net 22 has %d fanin arcs, want 2", len(ins))
	}
	gotFrom := map[string]bool{}
	for _, eid := range ins {
		from := e.G.EdgeAt(eid).From
		gotFrom[nl.NetName(e.NetOf[from])] = true
		if e.EdgeGate[eid] != nl.Driver(n22) {
			t.Errorf("edge into net 22 annotated with gate %d, want driver %d",
				e.EdgeGate[eid], nl.Driver(n22))
		}
	}
	if !gotFrom["10"] || !gotFrom["16"] {
		t.Errorf("net 22 fanins %v, want nets 10 and 16", gotFrom)
	}
	// GateEdges cross-reference: pin edges must match annotations.
	for gi := 0; gi < nl.NumGates(); gi++ {
		for pin, eid := range e.GateEdges[gi] {
			if e.EdgeGate[eid] != GateID(gi) || e.EdgePin[eid] != pin {
				t.Errorf("GateEdges[%d][%d] = edge %d annotated (%d,%d)",
					gi, pin, eid, e.EdgeGate[eid], e.EdgePin[eid])
			}
		}
	}
	// Levels: source 0, PIs 1, then three NAND stages (10/11 -> 16/19 ->
	// 22/23) at levels 2-4, sink 5.
	if e.G.MaxLevel() != 5 {
		t.Errorf("c17 sink level = %d, want 5", e.G.MaxLevel())
	}
}

func TestC17RoundTrip(t *testing.T) {
	nl := C17(lib)
	var buf bytes.Buffer
	if err := nl.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	nl2, err := ParseBench(&buf, "c17rt", lib)
	if err != nil {
		t.Fatal(err)
	}
	if nl2.NumGates() != nl.NumGates() || nl2.NumNets() != nl.NumNets() ||
		nl2.NumPIs() != nl.NumPIs() || nl2.NumPOs() != nl.NumPOs() {
		t.Fatalf("round trip changed counts: %v vs %v", nl2, nl)
	}
	if strings.Join(nl2.SortedNetNames(), ",") != strings.Join(nl.SortedNetNames(), ",") {
		t.Error("round trip changed net names")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown func":   "INPUT(a)\nOUTPUT(b)\nb = DFF(a)\n",
		"malformed line": "INPUT(a)\nOUTPUT(b)\nwhatisthis\n",
		"missing paren":  "INPUT(a\n",
		"empty operand":  "INPUT(a)\nOUTPUT(b)\nb = NAND(a, )\n",
		"double driver":  "INPUT(a)\nINPUT(c)\nOUTPUT(b)\nb = NOT(a)\nb = NOT(c)\n",
		"undriven net":   "INPUT(a)\nOUTPUT(b)\nb = NAND(a, ghost)\n",
		"drive a PI":     "INPUT(a)\nINPUT(b)\nOUTPUT(b)\nb = NOT(a)\n",
		"no inputs":      "OUTPUT(b)\n",
		"no outputs":     "INPUT(a)\n",
		"self input":     "INPUT(a)\nOUTPUT(b)\nb = NAND(a, b)\n",
		"dup input":      "INPUT(a)\nINPUT(a)\n",
		"dup output":     "INPUT(a)\nOUTPUT(b)\nOUTPUT(b)\nb = NOT(a)\n",
		"bad arity":      "INPUT(a)\nINPUT(b)\nOUTPUT(c)\nc = NOT(a, b)\n",
	}
	for name, src := range cases {
		if _, err := ParseBench(strings.NewReader(src), name, lib); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(z)\nx = NAND(a, y)\ny = NAND(a, x)\nz = NOT(x)\n"
	nl, err := ParseBench(strings.NewReader(src), "cyc", lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Elaborate(); err == nil {
		t.Fatal("expected cycle error from elaboration")
	}
}

func TestWideGateDecomposition(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(z)\nz = NAND(a, b, c, d, e)\n"
	nl, err := ParseBench(strings.NewReader(src), "wide", lib)
	if err != nil {
		t.Fatal(err)
	}
	// NAND5 -> two AND2 reducers + one stray + ... + NAND2 capstone.
	// 5 operands: level1: AND2(a,b), AND2(c,d), e -> 3; level2: AND2(l1,l2), e -> 2;
	// capstone NAND2 -> total 4 gates.
	if nl.NumGates() != 4 {
		t.Fatalf("NAND5 decomposed into %d gates, want 4", nl.NumGates())
	}
	// The output net must be driven by a NAND2 (polarity preserved).
	z, _ := nl.NetByName("z")
	if k := nl.Gate(nl.Driver(z)).Kind; k != cell.NAND2 {
		t.Errorf("NAND5 capstone is %s, want NAND2", k)
	}
	if _, err := nl.Elaborate(); err != nil {
		t.Fatal(err)
	}
}

func TestBenchCaseInsensitive(t *testing.T) {
	src := "input(a)\noutput(z)\nz = nand(a, a2)\na2 = not(a)\n"
	nl, err := ParseBench(strings.NewReader(src), "lc", lib)
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumGates() != 2 {
		t.Fatalf("got %d gates, want 2", nl.NumGates())
	}
}

func TestForwardReferences(t *testing.T) {
	// Gate uses a net defined later in the file.
	src := "INPUT(a)\nOUTPUT(z)\nz = NOT(mid)\nmid = NOT(a)\n"
	nl, err := ParseBench(strings.NewReader(src), "fwd", lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Elaborate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadersComputed(t *testing.T) {
	nl := C17(lib)
	n11, _ := nl.NetByName("11")
	rd := nl.Readers(n11)
	if len(rd) != 2 {
		t.Fatalf("net 11 has %d readers, want 2", len(rd))
	}
	for _, r := range rd {
		g := nl.Gate(r.Gate)
		if g.Ins[r.Pin] != n11 {
			t.Errorf("reader %v does not point back to net 11", r)
		}
	}
}

func TestMutationAfterFinalizeRejected(t *testing.T) {
	nl := C17(lib)
	if _, err := nl.AddPI("late"); err == nil {
		t.Error("AddPI after Finalize should fail")
	}
	if _, err := nl.MarkPO("late"); err == nil {
		t.Error("MarkPO after Finalize should fail")
	}
	if _, err := nl.AddGate(lib, cell.INV, "x", "1"); err == nil {
		t.Error("AddGate after Finalize should fail")
	}
}

func TestElaborateRequiresFinalize(t *testing.T) {
	nl := New("raw")
	if _, err := nl.AddPI("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Elaborate(); err == nil {
		t.Fatal("Elaborate before Finalize should fail")
	}
}

func TestPOFedByPIDirectly(t *testing.T) {
	// A PO that is also a PI-driven net via a single buffer, and a PO
	// that fans out internally as well.
	src := "INPUT(a)\nOUTPUT(z)\nOUTPUT(y)\nz = BUFF(a)\ny = NOT(z)\n"
	nl, err := ParseBench(strings.NewReader(src), "po", lib)
	if err != nil {
		t.Fatal(err)
	}
	e, err := nl.Elaborate()
	if err != nil {
		t.Fatal(err)
	}
	// Net z: one reader (the NOT) plus a PO arc to the sink.
	z, _ := nl.NetByName("z")
	outs := e.G.Out(e.NodeOf[z])
	if len(outs) != 2 {
		t.Fatalf("net z has %d out arcs, want 2 (reader + sink)", len(outs))
	}
	sinkArcs := 0
	for _, eid := range outs {
		if e.G.EdgeAt(eid).To == e.G.Sink() {
			sinkArcs++
			if e.EdgeGate[eid] != NoGate {
				t.Error("PO->sink arc must not carry a gate annotation")
			}
		}
	}
	if sinkArcs != 1 {
		t.Errorf("net z has %d sink arcs, want 1", sinkArcs)
	}
	_ = graph.NodeID(0)
}
