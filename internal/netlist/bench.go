package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"statsize/internal/cell"
)

// ParseBench reads a netlist in the ISCAS .bench format:
//
//	# comment
//	INPUT(n1)
//	OUTPUT(n22)
//	n10 = NAND(n1, n3)
//
// Function names are case-insensitive; arity selects the library cell
// (NAND with two operands becomes NAND2, and so on). Functions wider
// than the library's widest cell are decomposed into a balanced tree of
// library cells with generated internal net names, preserving logic
// function; the decomposition changes the gate count, which matters only
// when comparing against published graph sizes. The returned netlist is
// finalized.
func ParseBench(r io.Reader, name string, lib *cell.Library) (*Netlist, error) {
	nl := New(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseBenchLine(nl, lib, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if err := nl.Finalize(); err != nil {
		return nil, err
	}
	return nl, nil
}

func parseBenchLine(nl *Netlist, lib *cell.Library, line string) error {
	upper := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(upper, "INPUT"):
		arg, err := parenArg(line)
		if err != nil {
			return err
		}
		_, err = nl.AddPI(arg)
		return err
	case strings.HasPrefix(upper, "OUTPUT"):
		arg, err := parenArg(line)
		if err != nil {
			return err
		}
		_, err = nl.MarkPO(arg)
		return err
	}
	eq := strings.Index(line, "=")
	if eq < 0 {
		return fmt.Errorf("unrecognized line %q", line)
	}
	out := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.Index(rhs, "(")
	close := strings.LastIndex(rhs, ")")
	if open < 0 || close < open {
		return fmt.Errorf("malformed gate expression %q", rhs)
	}
	fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var ins []string
	for _, tok := range strings.Split(rhs[open+1:close], ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return fmt.Errorf("empty operand in %q", rhs)
		}
		ins = append(ins, tok)
	}
	return addBenchGate(nl, lib, fn, out, ins)
}

// benchFamilies maps .bench function names to the library cell of each
// arity, plus the cells used to decompose wider instances: the reducer
// combines operands pairwise and capstone applies the function's
// polarity at the root.
var benchFamilies = map[string]struct {
	byArity   map[int]cell.Kind
	decompose bool
	reducer   cell.Kind // 2-input cell for balanced decomposition
	capstone  cell.Kind // root cell preserving polarity (reducer if same)
}{
	"NOT":  {byArity: map[int]cell.Kind{1: cell.INV}},
	"INV":  {byArity: map[int]cell.Kind{1: cell.INV}},
	"BUF":  {byArity: map[int]cell.Kind{1: cell.BUF}},
	"BUFF": {byArity: map[int]cell.Kind{1: cell.BUF}},
	"AND":  {byArity: map[int]cell.Kind{2: cell.AND2, 3: cell.AND3}, decompose: true, reducer: cell.AND2, capstone: cell.AND2},
	"OR":   {byArity: map[int]cell.Kind{2: cell.OR2, 3: cell.OR3}, decompose: true, reducer: cell.OR2, capstone: cell.OR2},
	"NAND": {byArity: map[int]cell.Kind{2: cell.NAND2, 3: cell.NAND3, 4: cell.NAND4}, decompose: true, reducer: cell.AND2, capstone: cell.NAND2},
	"NOR":  {byArity: map[int]cell.Kind{2: cell.NOR2, 3: cell.NOR3, 4: cell.NOR4}, decompose: true, reducer: cell.OR2, capstone: cell.NOR2},
	"XOR":  {byArity: map[int]cell.Kind{2: cell.XOR2}, decompose: true, reducer: cell.XOR2, capstone: cell.XOR2},
	"XNOR": {byArity: map[int]cell.Kind{2: cell.XNOR2}, decompose: true, reducer: cell.XOR2, capstone: cell.XNOR2},
}

func addBenchGate(nl *Netlist, lib *cell.Library, fn, out string, ins []string) error {
	fam, ok := benchFamilies[fn]
	if !ok {
		return fmt.Errorf("unsupported .bench function %q (sequential elements belong to ISCAS'89)", fn)
	}
	if k, ok := fam.byArity[len(ins)]; ok {
		_, err := nl.AddGate(lib, k, out, ins...)
		return err
	}
	if !fam.decompose || len(ins) < 2 {
		return fmt.Errorf("%s cannot take %d operand(s)", fn, len(ins))
	}
	// Balanced decomposition: reduce operands pairwise with the family's
	// reducer cell, applying the capstone at the root to preserve
	// polarity (e.g. NAND5 = NAND2(AND2(AND2(a,b),AND2(c,d)), e)).
	gen := 0
	fresh := func() string {
		gen++
		return fmt.Sprintf("%s__dec%d", out, gen)
	}
	level := ins
	for len(level) > 2 {
		var next []string
		for i := 0; i+1 < len(level); i += 2 {
			n := fresh()
			if _, err := nl.AddGate(lib, fam.reducer, n, level[i], level[i+1]); err != nil {
				return err
			}
			next = append(next, n)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	_, err := nl.AddGate(lib, fam.capstone, out, level[0], level[1])
	return err
}

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return arg, nil
}

// benchFunction returns the .bench spelling for a library cell.
func benchFunction(k cell.Kind) string {
	switch k {
	case cell.INV:
		return "NOT"
	case cell.BUF:
		return "BUFF"
	case cell.NAND2, cell.NAND3, cell.NAND4:
		return "NAND"
	case cell.NOR2, cell.NOR3, cell.NOR4:
		return "NOR"
	case cell.AND2, cell.AND3:
		return "AND"
	case cell.OR2, cell.OR3:
		return "OR"
	case cell.XOR2:
		return "XOR"
	case cell.XNOR2:
		return "XNOR"
	}
	return k.String()
}

// WriteBench emits the netlist in .bench format. Output is deterministic:
// inputs, outputs, then gates in instantiation order.
func (nl *Netlist) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", nl.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n", nl.NumPIs(), nl.NumPOs(), nl.NumGates())
	for _, pi := range nl.pis {
		fmt.Fprintf(bw, "INPUT(%s)\n", nl.NetName(pi))
	}
	for _, po := range nl.pos {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", nl.NetName(po))
	}
	for gi := range nl.gates {
		g := &nl.gates[gi]
		names := make([]string, len(g.Ins))
		for i, in := range g.Ins {
			names[i] = nl.NetName(in)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", nl.NetName(g.Out), benchFunction(g.Kind), strings.Join(names, ", "))
	}
	return bw.Flush()
}

// SortedNetNames returns all net names in lexical order (testing aid).
func (nl *Netlist) SortedNetNames() []string {
	names := make([]string, 0, len(nl.nets))
	for i := range nl.nets {
		names = append(names, nl.nets[i].name)
	}
	sort.Strings(names)
	return names
}
