package netlist

import (
	"strings"

	"statsize/internal/cell"
)

// C17Bench is the genuine ISCAS'85 c17 benchmark netlist (Brglez &
// Fujiwara, ISCAS 1985) — the one circuit of the suite small enough to
// embed verbatim. The larger members are replicated structurally by
// package circuitgen.
const C17Bench = `# c17 — ISCAS'85 (Brglez & Fujiwara 1985)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// C17 parses and returns the embedded c17 netlist.
func C17(lib *cell.Library) *Netlist {
	nl, err := ParseBench(strings.NewReader(C17Bench), "c17", lib)
	if err != nil {
		// The constant is under test; failure is a build defect.
		panic("netlist: embedded c17 invalid: " + err.Error())
	}
	return nl
}
