// Package gauss implements moment-based analytic SSTA in the style of
// the paper's related work ([8] Jacobs & Berkelaar DATE'00, [9] Raj,
// Vrudhula & Wang DAC'04): every arrival time is approximated as a
// Gaussian carrying only mean and variance, sums add moments, and the
// statistical maximum uses Clark's formulas (C. Clark, "The greatest of
// a finite set of random variables", Operations Research 1961).
//
// The paper's contribution deliberately avoids this approximation — its
// discretized distributions capture the full CDF shape — so this package
// serves as the comparison baseline: fast, but increasingly wrong where
// max operations make arrival times skewed and non-Gaussian.
package gauss

import (
	"fmt"
	"math"

	"statsize/internal/design"
	"statsize/internal/graph"
)

// Moments is a Gaussian approximation of a random variable.
type Moments struct {
	Mean float64
	Var  float64
}

// Std returns the standard deviation.
func (m Moments) Std() float64 {
	if m.Var <= 0 {
		return 0
	}
	return math.Sqrt(m.Var)
}

// Percentile evaluates the Gaussian quantile mean + z(p)·std.
func (m Moments) Percentile(p float64) float64 {
	return m.Mean + normQuantile(p)*m.Std()
}

// Add returns the moments of the sum of independent variables.
func Add(a, b Moments) Moments {
	return Moments{Mean: a.Mean + b.Mean, Var: a.Var + b.Var}
}

// MaxClark returns Clark's Gaussian approximation of max(X, Y) for
// independent X and Y (the related work's correlation handling also
// assumes independence at reconvergence, like the paper's bound).
func MaxClark(a, b Moments) Moments {
	theta := math.Sqrt(a.Var + b.Var)
	if theta < 1e-15 {
		// Both (near-)deterministic: the max is the larger mean.
		if a.Mean >= b.Mean {
			return a
		}
		return b
	}
	alpha := (a.Mean - b.Mean) / theta
	phiA := stdNormalCDF(alpha)
	phiB := stdNormalCDF(-alpha)
	pdf := stdNormalPDF(alpha)
	mean := a.Mean*phiA + b.Mean*phiB + theta*pdf
	second := (a.Mean*a.Mean+a.Var)*phiA +
		(b.Mean*b.Mean+b.Var)*phiB +
		(a.Mean+b.Mean)*theta*pdf
	v := second - mean*mean
	if v < 0 {
		v = 0
	}
	return Moments{Mean: mean, Var: v}
}

// Analysis is a completed moment-propagation SSTA pass.
type Analysis struct {
	D       *design.Design
	arrival []Moments
}

// Analyze propagates (mean, variance) pairs through the timing graph:
// convolution becomes moment addition and the fanin max uses Clark's
// approximation. Edge delay variance follows the library's sigma ratio
// applied to the nominal delay (the truncation of the underlying model
// shrinks true sigma by ~2%; this baseline ignores that, as [8] does).
func Analyze(d *design.Design) *Analysis {
	g := d.E.G
	a := &Analysis{D: d, arrival: make([]Moments, g.NumNodes())}
	sigma := d.Lib.SigmaRatio
	for _, n := range g.Topo() {
		first := true
		var acc Moments
		for _, eid := range g.In(n) {
			e := g.EdgeAt(eid)
			nom := d.EdgeNominalDelay(eid)
			term := Add(a.arrival[e.From], Moments{Mean: nom, Var: (sigma * nom) * (sigma * nom)})
			if first {
				acc = term
				first = false
			} else {
				acc = MaxClark(acc, term)
			}
		}
		if !first {
			a.arrival[n] = acc
		}
	}
	return a
}

// Arrival returns the Gaussian arrival approximation at a node.
func (a *Analysis) Arrival(n graph.NodeID) Moments { return a.arrival[n] }

// Sink returns the circuit-delay approximation.
func (a *Analysis) Sink() Moments { return a.arrival[a.D.E.G.Sink()] }

// Percentile evaluates the Gaussian circuit-delay quantile.
func (a *Analysis) Percentile(p float64) float64 { return a.Sink().Percentile(p) }

func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

func stdNormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// normQuantile is the standard normal inverse CDF (Acklam's rational
// approximation; |relative error| < 1.2e-9 — far below the use cases
// here).
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("gauss: quantile of p=%v", p))
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00
		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01
		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00
		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00
	)
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}
