package gauss

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/design"
	"statsize/internal/montecarlo"
	"statsize/internal/netlist"
	"statsize/internal/ssta"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.8413447, 1.0},
		{0.9772499, 2.0},
		{0.99, 2.3263479},
		{0.0013499, -3.0},
		{0.999, 3.0902323},
	}
	for _, c := range cases {
		approx(t, normQuantile(c.p), c.z, 1e-5, "normQuantile")
	}
	// Symmetry.
	for _, p := range []float64{0.01, 0.1, 0.3} {
		approx(t, normQuantile(p), -normQuantile(1-p), 1e-9, "quantile symmetry")
	}
}

func TestNormQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	normQuantile(0)
}

func TestMaxClarkAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ m1, s1, m2, s2 float64 }{
		{0, 1, 0, 1},
		{0, 1, 0.5, 1},
		{0, 1, 3, 0.2},
		{1, 0.1, 1, 0.4},
		{-2, 0.5, 2, 0.5},
	}
	for _, c := range cases {
		got := MaxClark(Moments{c.m1, c.s1 * c.s1}, Moments{c.m2, c.s2 * c.s2})
		const n = 400000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := math.Max(c.m1+c.s1*rng.NormFloat64(), c.m2+c.s2*rng.NormFloat64())
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		approx(t, got.Mean, mean, 0.01, "Clark mean")
		approx(t, got.Var, variance, 0.02, "Clark variance")
	}
}

func TestMaxClarkDominatedOperand(t *testing.T) {
	a := Moments{Mean: 10, Var: 0.01}
	b := Moments{Mean: 0, Var: 0.01}
	got := MaxClark(a, b)
	approx(t, got.Mean, a.Mean, 1e-6, "dominated max mean")
	approx(t, got.Var, a.Var, 1e-6, "dominated max variance")
}

func TestMaxClarkDegenerate(t *testing.T) {
	got := MaxClark(Moments{Mean: 1}, Moments{Mean: 2})
	if got.Mean != 2 || got.Var != 0 {
		t.Errorf("degenerate max = %+v", got)
	}
}

func TestAddMoments(t *testing.T) {
	got := Add(Moments{1, 2}, Moments{3, 4})
	if got.Mean != 4 || got.Var != 6 {
		t.Errorf("Add = %+v", got)
	}
}

func newDesign(t *testing.T, name string) *design.Design {
	t.Helper()
	lib := cell.Default180nm()
	var nl *netlist.Netlist
	if name == "c17" {
		nl = netlist.C17(lib)
	} else {
		sp, _ := circuitgen.ByName(name)
		var err error
		nl, err = circuitgen.Generate(lib, sp)
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAnalyzeTracksDiscretizedSSTA(t *testing.T) {
	// The Gaussian baseline and the discretized engine make the same
	// independence assumption; on benchmark circuits their medians agree
	// to ~1% while tails drift a little more (the Gaussian ignores the
	// skew that max operations create and the truncation of the model).
	for _, name := range []string{"c17", "c432", "c880"} {
		d := newDesign(t, name)
		ga := Analyze(d)
		da, err := ssta.Analyze(context.Background(), d, d.SuggestDT(600))
		if err != nil {
			t.Fatal(err)
		}
		p50g, p50d := ga.Percentile(0.5), da.Percentile(0.5)
		if rel := math.Abs(p50g-p50d) / p50d; rel > 0.015 {
			t.Errorf("%s: p50 gauss %.4f vs discretized %.4f (%.1f%%)", name, p50g, p50d, rel*100)
		}
		p99g, p99d := ga.Percentile(0.99), da.Percentile(0.99)
		if rel := math.Abs(p99g-p99d) / p99d; rel > 0.04 {
			t.Errorf("%s: p99 gauss %.4f vs discretized %.4f (%.1f%%)", name, p99g, p99d, rel*100)
		}
	}
}

func TestAnalyzeVsMonteCarlo(t *testing.T) {
	d := newDesign(t, "c432")
	ga := Analyze(d)
	mc, err := montecarlo.Run(context.Background(), d, 20000, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline ignores the ±3σ truncation (true σ is 0.973σ) and
	// reconvergent correlation, so it runs slightly high: mean within 2%,
	// p99 within a few % (Gaussian tail approximation).
	if rel := math.Abs(ga.Sink().Mean-mc.Mean()) / mc.Mean(); rel > 0.02 {
		t.Errorf("mean off by %.2f%%", rel*100)
	}
	if rel := math.Abs(ga.Percentile(0.99)-mc.Percentile(0.99)) / mc.Percentile(0.99); rel > 0.05 {
		t.Errorf("p99 off by %.2f%%", rel*100)
	}
}

func TestAnalyzeMonotoneInWidth(t *testing.T) {
	d := newDesign(t, "c17")
	before := Analyze(d).Sink().Mean
	for g := 0; g < d.NL.NumGates(); g++ {
		d.SetWidth(netlist.GateID(g), 2)
	}
	after := Analyze(d).Sink().Mean
	if after >= before {
		t.Errorf("uniform upsizing did not reduce Gaussian mean: %v -> %v", before, after)
	}
}
