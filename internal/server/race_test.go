package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"statsize"
)

// TestEvictVsQueryRace hammers the lease/evict exclusion under -race:
// workers continuously open-or-attach and run what-ifs while a sweeper
// evicts as aggressively as the budgets allow (IdleTimeout of 1ns makes
// every unleased session reclaimable, MaxSessions below the client
// count forces constant cap pressure). The invariant: a leased session
// is never closed underneath its holder, so no what-if through a live
// lease may ever observe ErrSessionClosed.
func TestEvictVsQueryRace(t *testing.T) {
	eng, err := statsize.New()
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(eng, Config{
		MaxSessions: 3,
		IdleTimeout: time.Nanosecond,
	})
	defer m.CloseAll()
	ctx := context.Background()

	const (
		workers = 6
		clients = 5 // > MaxSessions so opens keep evicting
		rounds  = 25
	)
	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Sweep()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				client := fmt.Sprintf("client-%d", (w+i)%clients)
				lease, _, err := m.OpenOrAttach(ctx, &OpenSessionRequest{
					Design: "c17", Client: client, Bins: 120,
				})
				if errors.Is(err, ErrPoolFull) {
					continue // every slot leased right now; acceptable
				}
				if err != nil {
					errc <- fmt.Errorf("worker %d round %d open: %w", w, i, err)
					return
				}
				_, err = lease.Session().WhatIfBatch(ctx, []statsize.Candidate{
					{Gate: 0, Width: 1.5},
					{Gate: 1, Width: 2.0},
				})
				lease.Release()
				if err != nil {
					// ErrSessionClosed here means eviction broke the lease
					// exclusion — the bug this test exists to catch.
					errc <- fmt.Errorf("worker %d round %d what-if: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sweeps.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := m.Stats()
	if st.InFlight != 0 {
		t.Fatalf("leases leaked: %+v", st)
	}
	if st.Live > m.cfg.MaxSessions {
		t.Fatalf("pool exceeded its cap: %+v", st)
	}
}
