package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"
)

// doReq issues one request with custom headers and returns the status,
// body, and Retry-After header.
func doReq(t testing.TB, method, url string, headers map[string]string, body []byte) (int, []byte, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header.Get("Retry-After")
}

// TestAdmissionRejectionCodes unit-tests the load shedder's four
// rejection causes: each produces its distinct code, status, and —
// where the client can act on it — a Retry-After hint.
func TestAdmissionRejectionCodes(t *testing.T) {
	cfg := Config{HeavySlots: 1, HeavyQueue: 1, QueueWait: 5 * time.Millisecond,
		DrainTimeout: 3 * time.Second}.normalize()
	adm := newAdmission(cfg, func() bool { return false })
	ctx := context.Background()

	tk, aerr := adm.acquire(ctx, classHeavy)
	if aerr != nil {
		t.Fatalf("first acquire rejected: %+v", aerr)
	}

	// Slot held: the next acquire queues, exhausts the 5ms wait, sheds.
	_, aerr = adm.acquire(ctx, classHeavy)
	if aerr == nil || aerr.Status != http.StatusTooManyRequests || aerr.Code != CodeShed {
		t.Fatalf("queue-wait shed: %+v, want 429 %s", aerr, CodeShed)
	}
	if aerr.RetryAfterS < 1 {
		t.Fatalf("shed without Retry-After hint: %+v", aerr)
	}

	// An already-expired request deadline surfaces as such, not as shed.
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	_, aerr = adm.acquire(expired, classHeavy)
	if aerr == nil || aerr.Status != http.StatusGatewayTimeout || aerr.Code != CodeDeadlineExpired {
		t.Fatalf("deadline while queued: %+v, want 504 %s", aerr, CodeDeadlineExpired)
	}

	// A canceled client is 499: not a server error, not overload.
	canceled, cancel2 := context.WithCancel(ctx)
	cancel2()
	_, aerr = adm.acquire(canceled, classHeavy)
	if aerr == nil || aerr.Status != statusClientGone {
		t.Fatalf("canceled while queued: %+v, want %d", aerr, statusClientGone)
	}

	// Release is idempotent and actually frees the slot.
	tk.release()
	tk.release()
	tk2, aerr := adm.acquire(ctx, classHeavy)
	if aerr != nil {
		t.Fatalf("acquire after release: %+v", aerr)
	}
	tk2.release()

	// Draining sheds everything with its own code and the drain hint.
	draining := newAdmission(cfg, func() bool { return true })
	_, aerr = draining.acquire(ctx, classHeavy)
	if aerr == nil || aerr.Status != http.StatusServiceUnavailable || aerr.Code != CodeDraining {
		t.Fatalf("draining acquire: %+v, want 503 %s", aerr, CodeDraining)
	}
	if aerr.RetryAfterS != 3 {
		t.Fatalf("draining Retry-After %d, want the 3s drain hint", aerr.RetryAfterS)
	}
}

// TestAdmissionQueueOverflowShedsImmediately pins the bounded-queue
// contract: with the queue full, overflow is rejected without waiting.
func TestAdmissionQueueOverflowShedsImmediately(t *testing.T) {
	cfg := Config{HeavySlots: 1, HeavyQueue: 1, QueueWait: time.Hour}.normalize()
	adm := newAdmission(cfg, func() bool { return false })

	tk, aerr := adm.acquire(context.Background(), classHeavy)
	if aerr != nil {
		t.Fatalf("first acquire: %+v", aerr)
	}
	defer tk.release()

	// Park one waiter in the queue (it owns the single queue slot).
	waiterCtx, stopWaiter := context.WithCancel(context.Background())
	defer stopWaiter()
	parked := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(parked)
		tw, _ := adm.acquire(waiterCtx, classHeavy)
		tw.release()
	}()
	<-parked
	// Wait for the goroutine to be counted in the queue.
	deadline := time.Now().Add(2 * time.Second)
	for adm.classes[classHeavy].queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	_, aerr = adm.acquire(context.Background(), classHeavy)
	if aerr == nil || aerr.Code != CodeShed {
		t.Fatalf("overflow acquire: %+v, want %s", aerr, CodeShed)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("overflow shed took %v; must not wait in a full queue", d)
	}
	stopWaiter()
	<-done
}

// TestRunRegistryConflict pins one-run-per-session: a live run blocks a
// second with 409 run_active carrying the live run's id, and a finished
// run is displaced.
func TestRunRegistryConflict(t *testing.T) {
	rg := newRunRegistry()
	a := &optRun{sessionID: "s1", updated: make(chan struct{})}
	if aerr := rg.insert(a); aerr != nil {
		t.Fatalf("insert a: %+v", aerr)
	}
	b := &optRun{sessionID: "s1", updated: make(chan struct{})}
	aerr := rg.insert(b)
	if aerr == nil || aerr.Status != http.StatusConflict || aerr.Code != CodeRunActive {
		t.Fatalf("conflicting insert: %+v, want 409 %s", aerr, CodeRunActive)
	}
	if aerr.RunID != a.id {
		t.Fatalf("conflict names run %q, want the live run %q", aerr.RunID, a.id)
	}
	a.finish(marshalEvent("done", -1, &DoneEvent{}))
	if aerr := rg.insert(b); aerr != nil {
		t.Fatalf("insert over finished run: %+v", aerr)
	}
	if _, aerr := rg.find("s1", b.id); aerr != nil {
		t.Fatalf("find displacing run: %+v", aerr)
	}
	if _, aerr := rg.find("s1", a.id); aerr == nil {
		t.Fatal("displaced run still findable")
	}
}

// TestDeadlineHeaderRejections pins the before-any-work contract: an
// expired or malformed X-Deadline-Ms never reaches a handler.
func TestDeadlineHeaderRejections(t *testing.T) {
	_, ts := newHTTP(t, Config{})
	url := ts.URL + "/v1/sessions"
	body, _ := json.Marshal(&OpenSessionRequest{Design: "c17", Bins: 120})

	status, out, _ := doReq(t, "POST", url, map[string]string{HeaderDeadlineMs: "0"}, body)
	if status != http.StatusRequestTimeout || errorCode(t, out) != CodeDeadlineExpired {
		t.Fatalf("expired-on-arrival: %d %s", status, out)
	}
	status, out, _ = doReq(t, "POST", url, map[string]string{HeaderDeadlineMs: "-10"}, body)
	if status != http.StatusRequestTimeout || errorCode(t, out) != CodeDeadlineExpired {
		t.Fatalf("negative deadline: %d %s", status, out)
	}
	status, out, _ = doReq(t, "POST", url, map[string]string{HeaderDeadlineMs: "soon"}, body)
	if status != http.StatusBadRequest || errorCode(t, out) != "bad_deadline" {
		t.Fatalf("malformed deadline: %d %s", status, out)
	}
	// A generous deadline sails through.
	status, _, _ = doReq(t, "POST", url, map[string]string{HeaderDeadlineMs: "60000"}, body)
	if status != http.StatusCreated {
		t.Fatalf("valid deadline rejected: %d", status)
	}
}

// TestPoolFullCarriesRetryAfter pins satellite 1's 503 shape: a
// fully-leased pool rejects opens with code pool_full and a concrete
// Retry-After header.
func TestPoolFullCarriesRetryAfter(t *testing.T) {
	s, ts := newHTTP(t, Config{MaxSessions: 1, SweepEvery: time.Hour})
	sess := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "holder", Bins: 120})

	lease, err := s.Manager().Acquire(sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()

	body, _ := json.Marshal(&OpenSessionRequest{Design: "c17", Client: "other", Bins: 120})
	status, out, retryAfter := doReq(t, "POST", ts.URL+"/v1/sessions", nil, body)
	if status != http.StatusServiceUnavailable || errorCode(t, out) != CodePoolFull {
		t.Fatalf("pool-full open: %d %s, want 503 %s", status, out, CodePoolFull)
	}
	if n, err := strconv.Atoi(retryAfter); err != nil || n < 1 {
		t.Fatalf("pool-full Retry-After %q, want a positive integer", retryAfter)
	}
	var env errorEnvelope
	mustUnmarshal(t, out, &env)
	if env.Error.RetryAfterS < 1 {
		t.Fatalf("pool-full body retry_after_s %d, want >= 1", env.Error.RetryAfterS)
	}
}

// TestHealthzReportsAdmission pins satellite 2: /healthz exposes the
// overload state — per-class slots, inflight, queue depth — and flips
// to draining 503 once shutdown begins.
func TestHealthzReportsAdmission(t *testing.T) {
	s, ts := newHTTP(t, Config{QuerySlots: 7, HeavySlots: 3})

	tk, aerr := s.adm.acquire(context.Background(), classHeavy)
	if aerr != nil {
		t.Fatalf("acquire: %+v", aerr)
	}

	status, body := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d %s", status, body)
	}
	var h HealthResponse
	mustUnmarshal(t, body, &h)
	if h.Admission == nil || !h.Admission.Enabled {
		t.Fatalf("healthz admission missing or disabled: %s", body)
	}
	q, ok := h.Admission.Classes["query"]
	if !ok || q.Slots != 7 {
		t.Fatalf("query class health %+v (ok=%v), want slots 7", q, ok)
	}
	hv, ok := h.Admission.Classes["heavy"]
	if !ok || hv.Slots != 3 || hv.InFlight != 1 || hv.Admitted != 1 {
		t.Fatalf("heavy class health %+v, want slots 3 inflight 1 admitted 1", hv)
	}
	tk.release()

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	status, body = getJSON(t, ts.URL+"/healthz")
	var h2 HealthResponse
	mustUnmarshal(t, body, &h2)
	if status != http.StatusServiceUnavailable || h2.Status != "draining" {
		t.Fatalf("post-shutdown healthz: %d %s", status, body)
	}
	// Work routes shed with the draining code, not a hang or a 500.
	body2, _ := json.Marshal(&OpenSessionRequest{Design: "c17", Bins: 120})
	status, out, _ := doReq(t, "POST", ts.URL+"/v1/sessions", nil, body2)
	if status != http.StatusServiceUnavailable || errorCode(t, out) != CodeDraining {
		t.Fatalf("draining open: %d %s, want 503 %s", status, out, CodeDraining)
	}
}

// TestAdmissionDisabled pins the escape hatch: with DisableAdmission
// every route admits unconditionally and /healthz says so.
func TestAdmissionDisabled(t *testing.T) {
	_, ts := newHTTP(t, Config{DisableAdmission: true})
	openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Bins: 120})
	status, body := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d %s", status, body)
	}
	var h HealthResponse
	mustUnmarshal(t, body, &h)
	if h.Admission == nil || h.Admission.Enabled {
		t.Fatalf("healthz with admission disabled: %s", body)
	}
}

// optimizeStream POSTs an optimize request with headers and parses the
// full SSE body.
func optimizeStream(t testing.TB, url string, headers map[string]string, req *OptimizeRequest) (int, []sseEvent, []byte) {
	t.Helper()
	var body []byte
	if req != nil {
		body, _ = json.Marshal(req)
	}
	status, out, _ := doReq(t, "POST", url, headers, body)
	if status != http.StatusOK {
		return status, nil, out
	}
	return status, collectSSE(t, out), out
}

// TestOptimizeRunResume pins the reconnect contract end to end: a run's
// stream can be re-fetched with X-Run-Id + Last-Event-ID and the replay
// carries exactly the iterations after the one named, then done —
// byte-identical to the frames the first stream carried.
func TestOptimizeRunResume(t *testing.T) {
	_, ts := newHTTP(t, Config{RunLinger: 2 * time.Second})
	sess := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "resume", Bins: 120})
	url := ts.URL + "/v1/sessions/" + sess.SessionID + "/optimize"

	status, events, raw := optimizeStream(t, url, nil, &OptimizeRequest{Optimizer: "accelerated", MaxIterations: 6})
	if status != http.StatusOK {
		t.Fatalf("optimize: %d %s", status, raw)
	}
	if len(events) < 3 || events[0].name != "start" || events[len(events)-1].name != "done" {
		t.Fatalf("stream shape: %d events", len(events))
	}
	var start StartEvent
	mustUnmarshal(t, []byte(events[0].data), &start)
	if start.RunID == "" {
		t.Fatalf("start event missing run_id: %s", events[0].data)
	}
	iters := events[1 : len(events)-1]
	if len(iters) < 2 {
		t.Fatalf("run made %d iterations; need >= 2 to test resume", len(iters))
	}

	// Resume after the first iteration: the replay must be the remaining
	// iter frames plus done, bit-identical, with no duplicate start.
	lastSeen := iters[0].id
	status, replay, raw := optimizeStream(t, url, map[string]string{
		HeaderRunID:       start.RunID,
		HeaderLastEventID: lastSeen,
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("resume: %d %s", status, raw)
	}
	want := append(append([]sseEvent{}, iters[1:]...), events[len(events)-1])
	if len(replay) != len(want) {
		t.Fatalf("resume replayed %d events, want %d", len(replay), len(want))
	}
	for i := range want {
		if replay[i].name != want[i].name || replay[i].id != want[i].id ||
			!bytes.Equal(replay[i].data, want[i].data) {
			t.Fatalf("resume event %d: got %+v want %+v", i, replay[i], want[i])
		}
	}

	// An unknown run id is a clean 404.
	status, _, raw = optimizeStream(t, url, map[string]string{HeaderRunID: "r999999"}, nil)
	if status != http.StatusNotFound || errorCode(t, raw) != "no_run" {
		t.Fatalf("unknown run: %d %s", status, raw)
	}
	// A garbage Last-Event-ID is a clean 400.
	status, _, raw = optimizeStream(t, url, map[string]string{
		HeaderRunID: start.RunID, HeaderLastEventID: "x"}, nil)
	if status != http.StatusBadRequest || errorCode(t, raw) != "bad_last_event_id" {
		t.Fatalf("bad last-event-id: %d %s", status, raw)
	}
}

// TestRunResumeHistoryGap pins the bounded-history contract on the run
// itself: with the retention window smaller than the run, resuming from
// before the window — or asking for a full replay once early
// iterations are trimmed — is a 410 history_gap, not silent data loss.
func TestRunResumeHistoryGap(t *testing.T) {
	rn := &optRun{history: 2, maxDropped: -1, updated: make(chan struct{})}
	rn.start = marshalEvent("start", -1, &StartEvent{RunID: "r000001"})
	for i := 0; i < 6; i++ {
		rn.record(marshalEvent("iter", i, map[string]int{"i": i}))
	}
	rn.finish(marshalEvent("done", -1, &DoneEvent{Iterations: 6}))
	// Ids 0..3 were trimmed; 4 and 5 remain.

	for _, lastIter := range []int{-1, 0, 2} {
		if _, aerr := rn.resume(lastIter); aerr == nil || aerr.Status != http.StatusGone || aerr.Code != "history_gap" {
			t.Fatalf("resume(%d) past a trimmed window: %+v, want 410 history_gap", lastIter, aerr)
		}
	}

	// The window boundary itself resumes: the client saw iteration 3,
	// and 4 onward are retained.
	cur, aerr := rn.resume(3)
	if aerr != nil {
		t.Fatalf("resume(3): %+v", aerr)
	}
	evs, _, gap := rn.collect(cur)
	if gap || len(evs) != 3 || evs[0].id != 4 || evs[1].id != 5 || evs[2].name != "done" {
		t.Fatalf("boundary resume collected %+v (gap=%v), want iters 4,5 then done", evs, gap)
	}

	// A tail resume replays only the terminal done event.
	cur, aerr = rn.resume(5)
	if aerr != nil {
		t.Fatalf("resume(5): %+v", aerr)
	}
	evs, _, gap = rn.collect(cur)
	if gap || len(evs) != 1 || evs[0].name != "done" {
		t.Fatalf("tail resume collected %+v (gap=%v), want just done", evs, gap)
	}

	// An untrimmed run replays in full on resume(-1), start included.
	fresh := &optRun{history: 16, maxDropped: -1, updated: make(chan struct{})}
	fresh.start = marshalEvent("start", -1, &StartEvent{RunID: "r000002"})
	fresh.record(marshalEvent("iter", 0, map[string]int{"i": 0}))
	fresh.finish(marshalEvent("done", -1, &DoneEvent{Iterations: 1}))
	cur, aerr = fresh.resume(-1)
	if aerr != nil {
		t.Fatalf("full replay resume: %+v", aerr)
	}
	evs, _, gap = fresh.collect(cur)
	if gap || len(evs) != 3 || evs[0].name != "start" || evs[2].name != "done" {
		t.Fatalf("full replay collected %+v (gap=%v), want start, iter, done", evs, gap)
	}
}

// TestOptimizeRunExpiresAfterLinger pins the history lifetime: a
// finished run stays attachable for the linger window, then its slot is
// reclaimed and reattachment is a 404.
func TestOptimizeRunExpiresAfterLinger(t *testing.T) {
	_, ts := newHTTP(t, Config{RunLinger: 50 * time.Millisecond})
	sess := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "linger", Bins: 120})
	url := ts.URL + "/v1/sessions/" + sess.SessionID + "/optimize"

	status, events, raw := optimizeStream(t, url, nil, &OptimizeRequest{Optimizer: "accelerated", MaxIterations: 2})
	if status != http.StatusOK {
		t.Fatalf("optimize: %d %s", status, raw)
	}
	var start StartEvent
	mustUnmarshal(t, []byte(events[0].data), &start)

	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _, _ = optimizeStream(t, url, map[string]string{HeaderRunID: start.RunID}, nil)
		if status == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run still attachable long past linger: %d", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDeadlineMidResizeRollsBack is satellite 3: a request deadline
// firing mid-resize must unwind all-or-nothing — the session's timing
// state is exactly what it was — and the session must remain leasable
// and sweep-reclaimable afterwards.
func TestDeadlineMidResizeRollsBack(t *testing.T) {
	s, ts := newHTTP(t, Config{IdleTimeout: time.Nanosecond, SweepEvery: time.Hour})
	sess := openSession(t, ts.URL, &OpenSessionRequest{Design: "c6288", Client: "dl", Bins: 2000})
	base := ts.URL + "/v1/sessions/" + sess.SessionID

	status, out := postJSON(t, base+"/analyze", &AnalyzeRequest{})
	if status != http.StatusOK {
		t.Fatalf("analyze: %d %s", status, out)
	}
	var before AnalyzeResponse
	mustUnmarshal(t, out, &before)

	// Resize cost is proportional to the resized gate's downstream cone,
	// so probe a spread of gates (restoring each) and keep the most
	// expensive one — that is the resize a 1ms budget races against.
	bigGate, bigNodes := int64(-1), 0
	var bigElapsed time.Duration
	for i := 0; i < 25; i++ {
		g := int64(i) * int64(before.NumGates) / 25
		st, out := postJSON(t, base+"/resize", &ResizeRequest{Gate: g, Width: 3.0})
		if st != http.StatusOK {
			t.Fatalf("probe resize gate %d: %d %s", g, st, out)
		}
		var rr ResizeResponse
		mustUnmarshal(t, out, &rr)
		probeStart := time.Now()
		if st, out = postJSON(t, base+"/resize", &ResizeRequest{Gate: g, Width: rr.OldWidth}); st != http.StatusOK {
			t.Fatalf("probe restore gate %d: %d %s", g, st, out)
		}
		if rr.NodesRecomputed > bigNodes {
			bigGate, bigNodes = g, rr.NodesRecomputed
			bigElapsed = time.Since(probeStart)
		}
	}
	if bigElapsed < 2*time.Millisecond {
		t.Skipf("largest resize cone (gate %d, %d nodes) completes in %v; cannot race a 1ms deadline on this host",
			bigGate, bigNodes, bigElapsed)
	}
	// Re-baseline after the probes (they restore widths, but take the
	// post-probe analysis as ground truth regardless).
	status, out = postJSON(t, base+"/analyze", &AnalyzeRequest{})
	if status != http.StatusOK {
		t.Fatalf("analyze: %d %s", status, out)
	}
	mustUnmarshal(t, out, &before)

	// Hammer resizes of the expensive gate under a 1ms budget until one
	// expires mid-work.
	resize, _ := json.Marshal(&ResizeRequest{Gate: bigGate, Width: 3.0})
	sawTimeout := false
	for i := 0; i < 50 && !sawTimeout; i++ {
		status, out, _ := doReq(t, "POST", base+"/resize",
			map[string]string{HeaderDeadlineMs: "1"}, resize)
		switch status {
		case http.StatusGatewayTimeout:
			if errorCode(t, out) != CodeDeadlineExpired {
				t.Fatalf("timeout code %s", out)
			}
			sawTimeout = true
		case http.StatusOK:
			// Won the race; restore the width and try again.
			var rr ResizeResponse
			mustUnmarshal(t, out, &rr)
			if st, out := postJSON(t, base+"/resize", &ResizeRequest{Gate: bigGate, Width: rr.OldWidth}); st != http.StatusOK {
				t.Fatalf("restore: %d %s", st, out)
			}
		default:
			t.Fatalf("deadline resize: unexpected %d %s", status, out)
		}
	}
	if !sawTimeout {
		t.Skip("no 1ms resize ever timed out on this host")
	}

	// All-or-nothing: the objective and total width are bit-identical.
	status, out = postJSON(t, base+"/analyze", &AnalyzeRequest{})
	if status != http.StatusOK {
		t.Fatalf("analyze after timeout: %d %s", status, out)
	}
	var after AnalyzeResponse
	mustUnmarshal(t, out, &after)
	if after.Objective != before.Objective || after.TotalWidth != before.TotalWidth {
		t.Fatalf("state mutated across a rolled-back resize: before=%+v after=%+v", before, after)
	}

	// The session is unleased again and the sweeper can reclaim it.
	if n := s.Manager().Sweep(); n != 1 {
		t.Fatalf("sweep reclaimed %d sessions, want 1", n)
	}
	if st := s.Manager().Stats(); st.Live != 0 {
		t.Fatalf("live sessions after sweep: %+v", st)
	}
}

// TestDeadlineSweepRaceHammer drives resizes-under-deadline, what-ifs,
// and the janitor sweep concurrently against one pooled session. Run
// with -race; the assertion is the absence of data races, leaked
// leases, and post-close use.
func TestDeadlineSweepRaceHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test; skipped with -short")
	}
	s, ts := newHTTP(t, Config{IdleTimeout: time.Nanosecond, SweepEvery: time.Hour})
	open := &OpenSessionRequest{Design: "c1908", Client: "hammer", Bins: 300}
	openSession(t, ts.URL, open)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Reopen in case the sweeper reclaimed the session.
				body, _ := json.Marshal(open)
				st, out, _ := doReq(t, "POST", ts.URL+"/v1/sessions", nil, body)
				if st != http.StatusOK && st != http.StatusCreated {
					t.Errorf("reopen: %d %s", st, out)
					return
				}
				var osr OpenSessionResponse
				if err := json.Unmarshal(out, &osr); err != nil {
					t.Error(err)
					return
				}
				base := ts.URL + "/v1/sessions/" + osr.SessionID
				rz, _ := json.Marshal(&ResizeRequest{Gate: int64(i % 100), Width: 1.5 + float64(w)})
				st, out, _ = doReq(t, "POST", base+"/resize",
					map[string]string{HeaderDeadlineMs: strconv.Itoa(1 + i%3)}, rz)
				switch st {
				case http.StatusOK, http.StatusGatewayTimeout, http.StatusGone, http.StatusNotFound:
					// Gone/NotFound: the sweeper won; the next loop reopens.
				default:
					t.Errorf("hammer resize: %d %s", st, out)
					return
				}
			}
		}(w)
	}
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		for {
			select {
			case <-stop:
				return
			default:
				s.Manager().Sweep()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()
	<-sweepDone

	// Whatever survived, the pool must balance: no leaked leases.
	st := s.Manager().Stats()
	if st.InFlight != 0 {
		t.Fatalf("leaked leases after hammer: %+v", st)
	}
}
