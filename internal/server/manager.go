package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"statsize"
)

// Pool errors the handlers translate to HTTP statuses.
var (
	// ErrNoSession marks a handle that never existed (404).
	ErrNoSession = errors.New("server: no such session")
	// ErrSessionGone marks a handle whose session was evicted or closed;
	// the client should reopen (410).
	ErrSessionGone = errors.New("server: session evicted")
	// ErrPoolFull marks a full session table with nothing evictable (503).
	ErrPoolFull = errors.New("server: session pool full")
)

// poolKey identifies one pooled session: the service keeps at most one
// live Session per (design, client) pair, so a client's repeated opens
// attach to its existing incremental state instead of paying a fresh
// SSTA pass.
type poolKey struct {
	design string
	client string
}

// entry is one pooled session plus its lease accounting. The session
// itself serializes its own calls; refs/lastUsed/doomed carry the
// machine-readable foreign-guard annotation statlint's lockdiscipline
// analyzer enforces: exported functions touching them must hold the
// Manager's mutex.
type entry struct {
	id       string
	key      poolKey
	sess     *statsize.Session
	numGates int
	dt       float64
	objName  string
	obj      statsize.Objective // nil = engine default; passed to optimizer runs
	created  time.Time

	refs     int       // in-flight leases; eviction requires 0 (guarded by Manager.mu)
	lastUsed time.Time // updated on every acquire and release (guarded by Manager.mu)
	doomed   bool      // close fires when refs drain to 0 (guarded by Manager.mu)
}

// Lease pins one session for the duration of one request: the manager
// will not evict a leased entry, so a handler can use the session
// without racing the idle sweeper. Release promptly (and exactly once).
type Lease struct {
	m *Manager
	e *entry
}

// Session returns the leased session.
func (l *Lease) Session() *statsize.Session { return l.e.sess }

// Entry metadata accessors (immutable after construction).
func (l *Lease) ID() string                    { return l.e.id }
func (l *Lease) Design() string                { return l.e.key.design }
func (l *Lease) NumGates() int                 { return l.e.numGates }
func (l *Lease) ObjectiveName() string         { return l.e.objName }
func (l *Lease) Objective() statsize.Objective { return l.e.obj }

// Release returns the lease. If the entry was doomed while leased
// (explicit DELETE during an in-flight request), the last release
// closes the underlying session.
func (l *Lease) Release() { l.m.release(l.e) }

// ManagerStats is the pool accounting surfaced by /stats.
type ManagerStats struct {
	Live           int   `json:"live"`            // pooled sessions right now
	InFlight       int   `json:"in_flight"`       // leases currently held
	Opened         int64 `json:"opened"`          // sessions ever created by the pool
	Attached       int64 `json:"attached"`        // opens served from the pool
	EvictedIdle    int64 `json:"evicted_idle"`    // reclaimed past the idle budget
	EvictedCap     int64 `json:"evicted_cap"`     // reclaimed to respect max_sessions
	ClosedExplicit int64 `json:"closed_explicit"` // DELETE /v1/sessions/{id}
}

// Manager pools live Sessions per (design, client) with lease-based
// handles and reclaims them under two budgets: an idle timeout and a
// live-session cap (the daemon's memory budget proxy — each session
// holds a full analysis). Eviction never touches a session with a
// lease outstanding, which is the evict-vs-query exclusion the race
// tests hammer.
type Manager struct {
	eng *statsize.Engine
	cfg Config
	now func() time.Time // injectable clock for eviction tests

	mu       sync.Mutex
	byID     map[string]*entry
	byKey    map[poolKey]*entry
	seq      int64
	inFlight int
	stats    ManagerStats
}

// NewManager builds a pool over eng. cfg must already be normalized
// (Server.New does it).
func NewManager(eng *statsize.Engine, cfg Config) *Manager {
	return &Manager{
		eng:   eng,
		cfg:   cfg,
		now:   time.Now,
		byID:  make(map[string]*entry),
		byKey: make(map[poolKey]*entry),
	}
}

// OpenOrAttach returns a leased handle for (design, client), creating
// the session on first use. The bins/objective knobs apply only at
// creation; attaching to a pooled session returns its existing grid
// and objective (Created=false tells the client which happened).
func (m *Manager) OpenOrAttach(ctx context.Context, req *OpenSessionRequest) (*Lease, *OpenSessionResponse, error) {
	key := poolKey{design: req.Design, client: req.Client}
	m.mu.Lock()
	if e, ok := m.byKey[key]; ok {
		lease := m.leaseLocked(e)
		m.stats.Attached++
		m.mu.Unlock()
		return lease, openResponse(e, false), nil
	}
	m.mu.Unlock()

	// Build outside the lock: elaboration plus the opening SSTA pass is
	// the expensive part and must not serialize the whole pool. Two
	// racing first-opens may both build; the loser's session is closed.
	e, err := m.build(ctx, req, key)
	if err != nil {
		return nil, nil, err
	}

	m.mu.Lock()
	if prior, ok := m.byKey[key]; ok {
		lease := m.leaseLocked(prior)
		m.stats.Attached++
		m.mu.Unlock()
		e.sess.Close() // lost the race; discard our build
		return lease, openResponse(prior, false), nil
	}
	if len(m.byID) >= m.cfg.MaxSessions && !m.evictOneLocked() {
		m.mu.Unlock()
		e.sess.Close()
		// Every slot is leased by an in-flight request; slots free as
		// soon as any of them finishes, so the honest hint is "shortly"
		// — one second, the Retry-After floor.
		return nil, nil, &retryAfterError{err: ErrPoolFull, after: time.Second}
	}
	m.seq++
	e.id = fmt.Sprintf("s%06d-%s", m.seq, sanitizeID(req.Design))
	m.byID[e.id] = e
	m.byKey[key] = e
	m.stats.Opened++
	lease := m.leaseLocked(e)
	m.mu.Unlock()
	return lease, openResponse(e, true), nil
}

// build elaborates the design and opens its session (no pool locks
// held).
func (m *Manager) build(ctx context.Context, req *OpenSessionRequest, key poolKey) (*entry, error) {
	var (
		d   *statsize.Design
		err error
	)
	if req.Bench != "" {
		d, err = m.eng.LoadBench(strings.NewReader(req.Bench), req.Design)
	} else {
		d, err = m.eng.Benchmark(req.Design)
	}
	if err != nil {
		return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_design", Message: err.Error()}
	}
	obj, apiErr := parseObjective(req.Objective)
	if apiErr != nil {
		return nil, apiErr
	}
	var opts []statsize.RunOption
	if req.Bins > 0 || obj != nil {
		opts = append(opts, statsize.WithConfig(statsize.Config{Bins: req.Bins, Objective: obj}))
	}
	sess, err := m.eng.Open(ctx, d, opts...)
	if err != nil {
		return nil, fmt.Errorf("server: opening session: %w", err)
	}
	numGates, err := sess.NumGates()
	if err != nil {
		sess.Close()
		return nil, err
	}
	dt, err := sess.DT()
	if err != nil {
		sess.Close()
		return nil, err
	}
	objName, err := sess.ObjectiveName()
	if err != nil {
		sess.Close()
		return nil, err
	}
	now := m.now()
	return &entry{
		key:      key,
		sess:     sess,
		numGates: numGates,
		dt:       dt,
		objName:  objName,
		obj:      obj,
		created:  now,
		lastUsed: now,
	}, nil
}

func openResponse(e *entry, created bool) *OpenSessionResponse {
	return &OpenSessionResponse{
		SessionID: e.id,
		Created:   created,
		Design:    e.key.design,
		NumGates:  e.numGates,
		Objective: e.objName,
		DT:        e.dt,
	}
}

// Acquire leases the session behind id. ErrNoSession for unknown ids,
// ErrSessionGone for evicted/closed ones.
func (m *Manager) Acquire(id string) (*Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.byID[id]
	if !ok {
		return nil, ErrNoSession
	}
	if e.doomed {
		return nil, ErrSessionGone
	}
	return m.leaseLocked(e), nil
}

// leaseLocked pins e; the caller holds m.mu.
func (m *Manager) leaseLocked(e *entry) *Lease {
	e.refs++
	e.lastUsed = m.now()
	m.inFlight++
	return &Lease{m: m, e: e}
}

// release unpins e and closes it if a DELETE doomed it while leased.
func (m *Manager) release(e *entry) {
	m.mu.Lock()
	e.refs--
	e.lastUsed = m.now()
	m.inFlight--
	closeNow := e.doomed && e.refs == 0
	m.mu.Unlock()
	if closeNow {
		e.sess.Close()
	}
}

// Close dooms the session behind id: it leaves the pool immediately
// (new acquires fail with ErrSessionGone) and the underlying session
// closes as soon as no lease holds it.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	e, ok := m.byID[id]
	if !ok || e.doomed {
		m.mu.Unlock()
		if ok {
			return ErrSessionGone
		}
		return ErrNoSession
	}
	m.doomLocked(e)
	m.stats.ClosedExplicit++
	closeNow := e.refs == 0
	m.mu.Unlock()
	if closeNow {
		e.sess.Close()
	}
	return nil
}

// doomLocked removes e from the pool maps; the caller holds m.mu and
// is responsible for closing the session once refs reach zero.
func (m *Manager) doomLocked(e *entry) {
	e.doomed = true
	delete(m.byID, e.id)
	delete(m.byKey, e.key)
}

// Sweep reclaims every unleased session idle for at least the
// configured budget, then (still over-cap) the least-recently-used
// unleased sessions until the pool fits. Returns how many sessions it
// closed. The janitor calls this periodically; tests call it directly.
func (m *Manager) Sweep() int {
	now := m.now()
	var doomed []*entry
	m.mu.Lock()
	for _, e := range m.byID {
		if e.refs == 0 && m.cfg.IdleTimeout > 0 && now.Sub(e.lastUsed) >= m.cfg.IdleTimeout {
			m.doomLocked(e)
			m.stats.EvictedIdle++
			doomed = append(doomed, e)
		}
	}
	for len(m.byID) > m.cfg.MaxSessions {
		if !m.evictOneLocked() {
			break
		}
	}
	m.mu.Unlock()
	for _, e := range doomed {
		e.sess.Close()
	}
	return len(doomed)
}

// evictOneLocked dooms and closes the least-recently-used unleased
// entry, reporting whether one existed. The caller holds m.mu. The
// close itself happens inline: refs==0 means no server request is
// inside the session, so Close cannot block on a long-held session
// lock.
func (m *Manager) evictOneLocked() bool {
	var victim *entry
	for _, e := range m.byID {
		if e.refs != 0 {
			continue
		}
		if victim == nil || e.lastUsed.Before(victim.lastUsed) {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	m.doomLocked(victim)
	m.stats.EvictedCap++
	victim.sess.Close()
	return true
}

// Info returns the manager-level metadata for id without touching the
// session lock.
func (m *Manager) Info(id string) (*SessionInfoResponse, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.byID[id]
	if !ok {
		return nil, ErrNoSession
	}
	now := m.now()
	return &SessionInfoResponse{
		SessionID: e.id,
		Design:    e.key.design,
		Client:    e.key.client,
		NumGates:  e.numGates,
		Objective: e.objName,
		DT:        e.dt,
		IdleS:     now.Sub(e.lastUsed).Seconds(),
		InFlight:  e.refs,
		AgeS:      now.Sub(e.created).Seconds(),
	}, nil
}

// Stats snapshots the pool accounting.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Live = len(m.byID)
	st.InFlight = m.inFlight
	return st
}

// CloseAll dooms and closes every unleased session; leased ones close
// on their final release. Used at shutdown, after the HTTP server has
// drained.
func (m *Manager) CloseAll() {
	var doomed []*entry
	m.mu.Lock()
	for _, e := range m.byID {
		m.doomLocked(e)
		if e.refs == 0 {
			doomed = append(doomed, e)
		}
	}
	m.mu.Unlock()
	for _, e := range doomed {
		e.sess.Close()
	}
}

// sanitizeID keeps session ids readable: design names become a short
// [a-z0-9-] suffix.
func sanitizeID(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteRune('-')
		}
		if b.Len() >= 24 {
			break
		}
	}
	if b.Len() == 0 {
		return "design"
	}
	return b.String()
}
