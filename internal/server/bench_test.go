package server

import (
	"net/http"
	"testing"
	"time"
)

// BenchmarkWhatIfBatchHTTP measures the full service path of the
// daemon's hot endpoint — JSON decode, lease acquire, 32-candidate
// WhatIfBatch, JSON encode — against a pooled c880 session. The
// saturation curve lives in cmd/statload; this benchmark pins the
// single-request cost so service-layer regressions show up in the
// benchreport trajectory.
func BenchmarkWhatIfBatchHTTP(b *testing.B) {
	_, ts := newHTTP(b, Config{SweepEvery: time.Hour})
	sess := openSession(b, ts.URL, &OpenSessionRequest{Design: "c880", Client: "bench", Bins: 400})
	cands := make([]CandidateWire, 32)
	for i := range cands {
		cands[i] = CandidateWire{Gate: int64(i % sess.NumGates), Width: 1.5}
	}
	url := ts.URL + "/v1/sessions/" + sess.SessionID + "/whatif"
	req := &WhatIfRequest{Candidates: cands}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, body := postJSON(b, url, req)
		if status != http.StatusOK {
			b.Fatalf("what-if: %d %s", status, body)
		}
	}
}

// BenchmarkOpenAttachHTTP measures the pooled-open fast path: every
// iteration after the first attaches to the live session instead of
// paying a fresh SSTA pass.
func BenchmarkOpenAttachHTTP(b *testing.B) {
	_, ts := newHTTP(b, Config{SweepEvery: time.Hour})
	openSession(b, ts.URL, &OpenSessionRequest{Design: "c432", Client: "bench", Bins: 400})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := openSession(b, ts.URL, &OpenSessionRequest{Design: "c432", Client: "bench", Bins: 400})
		if resp.Created {
			b.Fatal("attach created a fresh session")
		}
	}
}
