package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"statsize"
)

// Config parameterizes one daemon instance. The zero value is usable:
// Normalize fills every unset knob with the documented default.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8790" default).
	Addr string
	// MaxSessions caps the live session pool — the daemon's memory
	// budget proxy, since each session holds a full SSTA analysis.
	// Beyond it the least-recently-used unleased session is evicted;
	// with every session leased, opens fail 503. Default 64.
	MaxSessions int
	// IdleTimeout evicts sessions unleased for this long. Zero means
	// the default (5m); negative disables idle eviction.
	IdleTimeout time.Duration
	// SweepEvery is the janitor period (default 15s).
	SweepEvery time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown: in-flight requests get
	// this long to finish after streams are canceled; then the
	// listener closes hard. Default 10s.
	DrainTimeout time.Duration
	// Logf sinks operational messages (default log.Printf); set to a
	// no-op in tests.
	Logf func(format string, args ...any)

	// Admission control. Two weighted work classes bound how much the
	// daemon accepts at once: the query class (what-if, resize,
	// checkpoint/rollback, metadata) and the heavy class (session
	// opens, analyze, optimizer runs). Each class admits up to its
	// slot count concurrently and parks a bounded queue beyond that;
	// overflow is shed fast with 429 and a computed Retry-After.
	DisableAdmission bool
	// QuerySlots caps concurrently executing query-class requests
	// (default 64).
	QuerySlots int
	// HeavySlots caps concurrently executing heavy-class requests
	// (default 8).
	HeavySlots int
	// QueryQueue / HeavyQueue bound the per-class admission queues
	// (defaults 256 and 16).
	QueryQueue int
	HeavyQueue int
	// QueueWait bounds how long an over-capacity request may wait for
	// a slot before it is shed (default 500ms) — the queue absorbs
	// bursts, it does not hide sustained overload.
	QueueWait time.Duration

	// MaxDeadline clamps the per-request X-Deadline-Ms budget (and
	// applies to requests that send none). Default 2m; negative
	// disables the ceiling.
	MaxDeadline time.Duration
	// SSEWriteTimeout is the per-event write budget on optimize
	// streams: a reader that cannot absorb one event within it is
	// treated as disconnected. Default 15s; negative disables.
	SSEWriteTimeout time.Duration
	// RunLinger is how long a detached optimize run survives without
	// any subscriber (cancel-on-disconnect grace) and how long its
	// recorded history stays attachable after it finishes. Default 10s.
	RunLinger time.Duration
	// RunHistory caps the retained iter events per run; reconnecting
	// past the window yields 410 history_gap. Default 4096.
	RunHistory int

	// Middleware, when non-nil, wraps the daemon's full HTTP surface
	// (outside the panic recoverer, so an aborting middleware reaches
	// net/http directly). The faultinject build of statsized installs
	// its chaos middleware here; nil in production.
	Middleware func(http.Handler) http.Handler
}

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.Addr == "" {
		c.Addr = ":8790"
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.IdleTimeout < 0 {
		c.IdleTimeout = 0 // disabled
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.QuerySlots <= 0 {
		c.QuerySlots = 64
	}
	if c.HeavySlots <= 0 {
		c.HeavySlots = 8
	}
	if c.QueryQueue <= 0 {
		c.QueryQueue = 256
	}
	if c.HeavyQueue <= 0 {
		c.HeavyQueue = 16
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 500 * time.Millisecond
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxDeadline < 0 {
		c.MaxDeadline = 0 // disabled
	}
	if c.SSEWriteTimeout == 0 {
		c.SSEWriteTimeout = 15 * time.Second
	}
	if c.SSEWriteTimeout < 0 {
		c.SSEWriteTimeout = 0 // disabled
	}
	if c.RunLinger <= 0 {
		c.RunLinger = 10 * time.Second
	}
	if c.RunHistory <= 0 {
		c.RunHistory = 4096
	}
	return c
}

// Server is the statsized daemon: an Engine, a session pool, and the
// HTTP surface over them. Construct with New, serve with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	eng     *statsize.Engine
	cfg     Config
	mgr     *Manager
	handler http.Handler
	httpSrv *http.Server
	started time.Time
	clock   func() time.Time

	// streamCtx bounds every SSE optimize run; Shutdown cancels it so
	// streams terminate promptly while ordinary requests drain.
	streamCtx     context.Context
	cancelStreams context.CancelFunc

	// adm is the load shedder; runs tracks detached optimize runs and
	// runWG counts their goroutines so Shutdown can wait for leases
	// and admission slots to come home.
	adm   *admission
	runs  *runRegistry
	runWG sync.WaitGroup

	janitorStop  chan struct{}
	janitorDone  chan struct{}
	shutdownOnce sync.Once
}

// New builds a daemon over eng.
func New(eng *statsize.Engine, cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		eng:     eng,
		cfg:     cfg,
		mgr:     NewManager(eng, cfg),
		started: time.Now(),
		clock:   time.Now,
	}
	s.streamCtx, s.cancelStreams = context.WithCancel(context.Background())
	s.adm = newAdmission(cfg, func() bool {
		select {
		case <-s.streamCtx.Done():
			return true
		default:
			return false
		}
	})
	s.runs = newRunRegistry()
	s.handler = recoverMiddleware(s.routes())
	if cfg.Middleware != nil {
		s.handler = cfg.Middleware(s.handler)
	}
	s.httpSrv = &http.Server{
		Handler: s.handler,
		// No WriteTimeout: optimize streams are legitimately long-lived.
		// Header reads stay bounded so idle half-open connections cannot
		// pin the drain.
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.janitorStop = make(chan struct{})
	s.janitorDone = make(chan struct{})
	go s.janitor()
	return s
}

// Handler exposes the daemon's HTTP surface (tests mount it on
// httptest servers).
func (s *Server) Handler() http.Handler { return s.handler }

// Manager exposes the session pool (tests drive Sweep directly).
func (s *Server) Manager() *Manager { return s.mgr }

// janitor periodically sweeps the session pool until shutdown.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := s.mgr.Sweep(); n > 0 {
				s.cfg.Logf("statsized: evicted %d idle session(s)", n)
			}
		case <-s.janitorStop:
			return
		}
	}
}

// Serve accepts connections on l until Shutdown. It returns the error
// from the underlying http.Server; after a clean Shutdown that is
// http.ErrServerClosed, which Serve maps to nil.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on cfg.Addr and serves. The ready callback,
// when non-nil, runs with the bound address before accepting — the
// daemon main uses it to publish the resolved port (":0" listens).
func (s *Server) ListenAndServe(ready func(addr net.Addr)) error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("statsized: listen %s: %w", s.cfg.Addr, err)
	}
	if ready != nil {
		ready(l.Addr())
	}
	return s.Serve(l)
}

// Shutdown stops the daemon gracefully: the janitor stops, optimize
// streams are canceled (their sessions observe the cancellation within
// one unit of work and the streams emit their terminal done event),
// and in-flight requests — what-if batches in particular — drain
// within cfg.DrainTimeout. Requests still running at the deadline are
// cut off by closing the listener hard. Pooled sessions close once
// the traffic is gone. Safe to call once; ctx bounds the whole wait on
// top of DrainTimeout.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutdownOnce.Do(func() {
		close(s.janitorStop)
		s.cancelStreams()

		drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
		err = s.httpSrv.Shutdown(drainCtx)
		if err != nil {
			// Drain deadline exceeded: sever the remaining connections.
			closeErr := s.httpSrv.Close()
			err = errors.Join(fmt.Errorf("statsized: drain incomplete: %w", err), closeErr)
		}
		// Detached optimize runs outlive their HTTP requests; their
		// contexts are canceled above, so they finish within one unit
		// of optimizer work and give their leases back.
		runsDone := make(chan struct{})
		go func() { s.runWG.Wait(); close(runsDone) }()
		select {
		case <-runsDone:
		case <-drainCtx.Done():
			err = errors.Join(err, fmt.Errorf("statsized: optimize runs still draining at deadline"))
		}
		s.mgr.CloseAll()
		<-s.janitorDone
	})
	return err
}
