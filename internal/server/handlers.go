package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"statsize"
)

// writeJSON emits one 2xx JSON response.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body) // a failed write means the client left; nothing to do
}

// writeError emits the error envelope for any handler failure. A
// rejection carrying a retry hint mirrors it into the Retry-After
// header so proxies and plain HTTP clients see it without parsing the
// body.
func writeError(w http.ResponseWriter, err *apiError) {
	w.Header().Set("Content-Type", "application/json")
	if err.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(err.RetryAfterS))
	}
	w.WriteHeader(err.Status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: err})
}

// toAPIError normalizes every failure class a handler can see into an
// apiError with the right status: pool errors to 404/410/503, session
// sentinel errors to 410/409, context errors to 504/499 (a request
// deadline expiring mid-work surfaces the partial-cancellation
// contract, not a client mistake), apiErrors pass through, everything
// else is a 400 (the session layer validates inputs and its errors
// describe client mistakes — bad gate ids, bad widths). A
// retryAfterError wrapper contributes its hint to whatever the
// underlying error maps to.
func toAPIError(err error) *apiError {
	var ae *apiError
	var ra *retryAfterError
	retryAfter := 0
	if errors.As(err, &ra) {
		retryAfter = retryAfterSeconds(ra.after)
	}
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, ErrNoSession):
		return &apiError{Status: http.StatusNotFound, Code: "no_session", Message: err.Error()}
	case errors.Is(err, ErrSessionGone):
		return &apiError{Status: http.StatusGone, Code: "session_gone", Message: err.Error()}
	case errors.Is(err, ErrPoolFull):
		return &apiError{Status: http.StatusServiceUnavailable, Code: CodePoolFull,
			Message: err.Error(), RetryAfterS: retryAfter}
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{Status: http.StatusGatewayTimeout, Code: CodeDeadlineExpired,
			Message: "request deadline expired mid-work; partial mutations were rolled back"}
	case errors.Is(err, context.Canceled):
		return &apiError{Status: statusClientGone, Code: "canceled", Message: err.Error()}
	case errors.Is(err, statsize.ErrSessionClosed):
		return &apiError{Status: http.StatusGone, Code: "session_closed", Message: err.Error()}
	case errors.Is(err, statsize.ErrNoCheckpoint):
		return &apiError{Status: http.StatusConflict, Code: "no_checkpoint", Message: err.Error()}
	default:
		return badRequest("request_failed", "%v", err)
	}
}

// sessionErr wraps a session-layer error for an already-leased handle.
func sessionErr(err error) *apiError { return toAPIError(err) }

// routes builds the daemon's mux. Every work route runs behind the
// deadline middleware (X-Deadline-Ms threads into the handler context,
// pre-expired budgets rejected before any work) and then admission
// control in its work class: session opens, analyze, and optimize are
// the expensive class (a fresh SSTA pass, percentile sweeps, optimizer
// runs); everything else is the cheap query class. /healthz and /stats
// bypass both — load balancers must reach them during overload, which
// is exactly when they matter.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	query := func(h http.HandlerFunc) http.HandlerFunc { return s.withDeadline(s.admit(classQuery, h)) }
	heavy := func(h http.HandlerFunc) http.HandlerFunc { return s.withDeadline(s.admit(classHeavy, h)) }
	mux.HandleFunc("POST /v1/sessions", heavy(s.handleOpenSession))
	mux.HandleFunc("GET /v1/sessions/{id}", query(s.handleSessionInfo))
	mux.HandleFunc("DELETE /v1/sessions/{id}", query(s.handleCloseSession))
	mux.HandleFunc("POST /v1/sessions/{id}/analyze", heavy(s.withLease(s.handleAnalyze)))
	mux.HandleFunc("POST /v1/sessions/{id}/whatif", query(s.withLease(s.handleWhatIf)))
	mux.HandleFunc("POST /v1/sessions/{id}/resize", query(s.withLease(s.handleResize)))
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", query(s.withLease(s.handleCheckpoint)))
	mux.HandleFunc("POST /v1/sessions/{id}/rollback", query(s.withLease(s.handleRollback)))
	// Optimize manages its own admission: a fresh run's heavy-class
	// ticket transfers to the detached run (released when the optimizer
	// finishes, not when the originating request ends), and stream
	// reattachment is ungated so a draining daemon can still deliver
	// terminal done events to reconnecting clients.
	mux.HandleFunc("POST /v1/sessions/{id}/optimize", s.withDeadline(s.handleOptimize))
	return mux
}

// withLease resolves the {id} path segment to a leased session for the
// request's duration.
func (s *Server) withLease(h func(http.ResponseWriter, *http.Request, *Lease)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lease, err := s.mgr.Acquire(r.PathValue("id"))
		if err != nil {
			writeError(w, toAPIError(err))
			return
		}
		defer lease.Release()
		h(w, r, lease)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	select {
	case <-s.streamCtx.Done():
		status = "draining"
		code = http.StatusServiceUnavailable
	default:
	}
	writeJSON(w, code, &HealthResponse{
		Status:    status,
		UptimeS:   s.clock().Sub(s.started).Seconds(),
		GoDesign:  "statsized",
		Admission: s.adm.health(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StatsResponse{
		Engine:   s.eng.Stats(),
		Sessions: s.mgr.Stats(),
	})
}

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req OpenSessionRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateOpen(&req); err != nil {
		writeError(w, err)
		return
	}
	lease, resp, err := s.mgr.OpenOrAttach(r.Context(), &req)
	if err != nil {
		writeError(w, toAPIError(err))
		return
	}
	lease.Release()
	status := http.StatusOK
	if resp.Created {
		status = http.StatusCreated
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.mgr.Info(r.PathValue("id"))
	if err != nil {
		writeError(w, toAPIError(err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Close(r.PathValue("id")); err != nil {
		writeError(w, toAPIError(err))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Closed bool `json:"closed"`
	}{Closed: true})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, lease *Lease) {
	var req AnalyzeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateAnalyze(&req); err != nil {
		writeError(w, err)
		return
	}
	sess := lease.Session()
	obj, err := sess.Objective()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	tw, err := sess.TotalWidth()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	resp := &AnalyzeResponse{
		Objective:     obj,
		ObjectiveName: lease.ObjectiveName(),
		TotalWidth:    tw,
		NumGates:      lease.NumGates(),
	}
	if len(req.Percentiles) > 0 {
		resp.Percentiles = make(map[string]float64, len(req.Percentiles))
		for _, p := range req.Percentiles {
			v, err := sess.Percentile(p)
			if err != nil {
				writeError(w, sessionErr(err))
				return
			}
			resp.Percentiles[strconv.FormatFloat(p, 'g', -1, 64)] = v
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request, lease *Lease) {
	var req WhatIfRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	cands, apiErr := validateWhatIf(&req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	sess := lease.Session()
	base, err := sess.Objective()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	results, err := sess.WhatIfBatch(r.Context(), cands)
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	resp := &WhatIfResponse{Base: base, Results: make([]WhatIfResultWire, len(results))}
	for i, res := range results {
		resp.Results[i] = WhatIfResultWire{
			Gate:         int64(res.Gate),
			Width:        res.Width,
			Objective:    res.Objective,
			Delta:        res.Delta,
			Sensitivity:  res.Sensitivity,
			NodesVisited: res.NodesVisited,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResize(w http.ResponseWriter, r *http.Request, lease *Lease) {
	var req ResizeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	g, width, apiErr := validateResize(&req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	st, err := lease.Session().Resize(r.Context(), g, width)
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	writeJSON(w, http.StatusOK, &ResizeResponse{
		Gate:            int64(st.Gate),
		OldWidth:        st.OldWidth,
		NewWidth:        st.NewWidth,
		NodesRecomputed: st.NodesRecomputed,
		FullPassNodes:   st.FullPassNodes,
		Objective:       st.Objective,
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, lease *Lease) {
	depth, err := lease.Session().Checkpoint()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	writeJSON(w, http.StatusOK, &CheckpointResponse{Depth: depth})
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request, lease *Lease) {
	sess := lease.Session()
	if err := sess.Rollback(); err != nil {
		writeError(w, sessionErr(err))
		return
	}
	depth, err := sess.CheckpointDepth()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	writeJSON(w, http.StatusOK, &CheckpointResponse{Depth: depth})
}

// handleOptimize starts a detached optimizer run and streams it, or —
// when X-Run-Id names an existing run — reattaches to that run's event
// history, resuming after the Last-Event-ID iteration. Reattachment is
// deliberately cheap: no admission ticket, no session lease (replay
// reads recorded bytes), so a client recovering from a truncated
// stream is never shed behind the very overload that broke it.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if runID := r.Header.Get(HeaderRunID); runID != "" {
		// Iteration ids start at 0, so "no Last-Event-ID" is -1 (full
		// replay), distinct from "I saw iteration 0".
		lastIter := -1
		if h := r.Header.Get(HeaderLastEventID); h != "" {
			n, err := strconv.Atoi(h)
			if err != nil || n < 0 {
				writeError(w, badRequest("bad_last_event_id", "%s %q is not a non-negative iteration index", HeaderLastEventID, h))
				return
			}
			lastIter = n
		}
		rn, aerr := s.runs.find(r.PathValue("id"), runID)
		if aerr != nil {
			writeError(w, aerr)
			return
		}
		cur, aerr := rn.resume(lastIter)
		if aerr != nil {
			writeError(w, aerr)
			return
		}
		s.streamRun(w, r, rn, cur)
		return
	}

	var req OptimizeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateOptimize(&req); err != nil {
		writeError(w, err)
		return
	}
	t, aerr := s.adm.acquire(r.Context(), classHeavy)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	rn, aerr := s.launchRun(r, t, &req)
	if aerr != nil {
		t.release() // shed or failed launch: give the slot back before erroring
		writeError(w, aerr)
		return
	}
	s.streamRun(w, r, rn, &runCursor{})
}

// recoverMiddleware turns a handler panic into a 500 instead of
// killing the connection silently; the daemon itself survives (the
// fuzz suite's job is to prove this path stays unreachable from
// request bodies).
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // the net/http-sanctioned abort, not a bug
				}
				writeError(w, &apiError{
					Status:  http.StatusInternalServerError,
					Code:    "internal_panic",
					Message: fmt.Sprintf("handler panic: %v", rec),
				})
			}
		}()
		next.ServeHTTP(w, r)
	})
}
