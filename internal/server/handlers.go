package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"statsize"
)

// writeJSON emits one 2xx JSON response.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body) // a failed write means the client left; nothing to do
}

// writeError emits the error envelope for any handler failure.
func writeError(w http.ResponseWriter, err *apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(err.Status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: err})
}

// toAPIError normalizes every failure class a handler can see into an
// apiError with the right status: pool errors to 404/410/503, session
// sentinel errors to 410/409, apiErrors pass through, everything else
// is a 400 (the session layer validates inputs and its errors describe
// client mistakes — bad gate ids, bad widths).
func toAPIError(err error) *apiError {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, ErrNoSession):
		return &apiError{Status: http.StatusNotFound, Code: "no_session", Message: err.Error()}
	case errors.Is(err, ErrSessionGone):
		return &apiError{Status: http.StatusGone, Code: "session_gone", Message: err.Error()}
	case errors.Is(err, ErrPoolFull):
		return &apiError{Status: http.StatusServiceUnavailable, Code: "pool_full", Message: err.Error()}
	case errors.Is(err, statsize.ErrSessionClosed):
		return &apiError{Status: http.StatusGone, Code: "session_closed", Message: err.Error()}
	case errors.Is(err, statsize.ErrNoCheckpoint):
		return &apiError{Status: http.StatusConflict, Code: "no_checkpoint", Message: err.Error()}
	default:
		return badRequest("request_failed", "%v", err)
	}
}

// sessionErr wraps a session-layer error for an already-leased handle.
func sessionErr(err error) *apiError { return toAPIError(err) }

// routes builds the daemon's mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /v1/sessions", s.handleOpenSession)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCloseSession)
	mux.HandleFunc("POST /v1/sessions/{id}/analyze", s.withLease(s.handleAnalyze))
	mux.HandleFunc("POST /v1/sessions/{id}/whatif", s.withLease(s.handleWhatIf))
	mux.HandleFunc("POST /v1/sessions/{id}/resize", s.withLease(s.handleResize))
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", s.withLease(s.handleCheckpoint))
	mux.HandleFunc("POST /v1/sessions/{id}/rollback", s.withLease(s.handleRollback))
	mux.HandleFunc("POST /v1/sessions/{id}/optimize", s.withLease(s.handleOptimize))
	return mux
}

// withLease resolves the {id} path segment to a leased session for the
// request's duration.
func (s *Server) withLease(h func(http.ResponseWriter, *http.Request, *Lease)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lease, err := s.mgr.Acquire(r.PathValue("id"))
		if err != nil {
			writeError(w, toAPIError(err))
			return
		}
		defer lease.Release()
		h(w, r, lease)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	select {
	case <-s.streamCtx.Done():
		status = "draining"
		code = http.StatusServiceUnavailable
	default:
	}
	writeJSON(w, code, &HealthResponse{
		Status:   status,
		UptimeS:  s.clock().Sub(s.started).Seconds(),
		GoDesign: "statsized",
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StatsResponse{
		Engine:   s.eng.Stats(),
		Sessions: s.mgr.Stats(),
	})
}

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req OpenSessionRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateOpen(&req); err != nil {
		writeError(w, err)
		return
	}
	lease, resp, err := s.mgr.OpenOrAttach(r.Context(), &req)
	if err != nil {
		writeError(w, toAPIError(err))
		return
	}
	lease.Release()
	status := http.StatusOK
	if resp.Created {
		status = http.StatusCreated
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.mgr.Info(r.PathValue("id"))
	if err != nil {
		writeError(w, toAPIError(err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Close(r.PathValue("id")); err != nil {
		writeError(w, toAPIError(err))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Closed bool `json:"closed"`
	}{Closed: true})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, lease *Lease) {
	var req AnalyzeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateAnalyze(&req); err != nil {
		writeError(w, err)
		return
	}
	sess := lease.Session()
	obj, err := sess.Objective()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	tw, err := sess.TotalWidth()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	resp := &AnalyzeResponse{
		Objective:     obj,
		ObjectiveName: lease.ObjectiveName(),
		TotalWidth:    tw,
		NumGates:      lease.NumGates(),
	}
	if len(req.Percentiles) > 0 {
		resp.Percentiles = make(map[string]float64, len(req.Percentiles))
		for _, p := range req.Percentiles {
			v, err := sess.Percentile(p)
			if err != nil {
				writeError(w, sessionErr(err))
				return
			}
			resp.Percentiles[strconv.FormatFloat(p, 'g', -1, 64)] = v
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request, lease *Lease) {
	var req WhatIfRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	cands, apiErr := validateWhatIf(&req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	sess := lease.Session()
	base, err := sess.Objective()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	results, err := sess.WhatIfBatch(r.Context(), cands)
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	resp := &WhatIfResponse{Base: base, Results: make([]WhatIfResultWire, len(results))}
	for i, res := range results {
		resp.Results[i] = WhatIfResultWire{
			Gate:         int64(res.Gate),
			Width:        res.Width,
			Objective:    res.Objective,
			Delta:        res.Delta,
			Sensitivity:  res.Sensitivity,
			NodesVisited: res.NodesVisited,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResize(w http.ResponseWriter, r *http.Request, lease *Lease) {
	var req ResizeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	g, width, apiErr := validateResize(&req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	st, err := lease.Session().Resize(r.Context(), g, width)
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	writeJSON(w, http.StatusOK, &ResizeResponse{
		Gate:            int64(st.Gate),
		OldWidth:        st.OldWidth,
		NewWidth:        st.NewWidth,
		NodesRecomputed: st.NodesRecomputed,
		FullPassNodes:   st.FullPassNodes,
		Objective:       st.Objective,
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, lease *Lease) {
	depth, err := lease.Session().Checkpoint()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	writeJSON(w, http.StatusOK, &CheckpointResponse{Depth: depth})
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request, lease *Lease) {
	sess := lease.Session()
	if err := sess.Rollback(); err != nil {
		writeError(w, sessionErr(err))
		return
	}
	depth, err := sess.CheckpointDepth()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	writeJSON(w, http.StatusOK, &CheckpointResponse{Depth: depth})
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request, lease *Lease) {
	var req OptimizeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateOptimize(&req); err != nil {
		writeError(w, err)
		return
	}
	s.streamOptimize(w, r, lease, &req)
}

// recoverMiddleware turns a handler panic into a 500 instead of
// killing the connection silently; the daemon itself survives (the
// fuzz suite's job is to prove this path stays unreachable from
// request bodies).
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // the net/http-sanctioned abort, not a bug
				}
				writeError(w, &apiError{
					Status:  http.StatusInternalServerError,
					Code:    "internal_panic",
					Message: fmt.Sprintf("handler panic: %v", rec),
				})
			}
		}()
		next.ServeHTTP(w, r)
	})
}
