// Package server implements statsized, the timing-as-a-service daemon
// over the statsize Engine: a long-running HTTP/JSON API exposing
// load/analyze/what-if (single and batch)/resize/checkpoint-rollback/
// optimize against pooled incremental Sessions.
//
// The subsystem has three layers:
//
//   - The Manager pools live Sessions per (design, client) pair behind
//     lease-based handles: a request pins its session for exactly its
//     own duration, and an eviction sweep reclaims sessions that are
//     idle past the configured budget or beyond the live-session cap —
//     never one with a request in flight.
//   - The handlers translate HTTP/JSON to Session calls. Every decoder
//     is bounded (body-size cap, candidate-count cap, finite-float
//     validation) and returns 4xx on hostile input; the daemon never
//     panics on a request body (pinned by fuzz tests).
//   - Optimizer runs stream progress as server-sent events whose data
//     payload is the stable JSON encoding of core.IterRecord — the
//     same record the golden optimizer traces pin, so a streamed run
//     replays bit-identically against testdata/traces.
//
// See DESIGN.md "Service layer" for the leasing and eviction contract
// and the SSE event grammar.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"statsize"
)

// Wire limits enforced by the decoders; Config can lower (or raise)
// the body cap, the rest are fixed sanity bounds.
const (
	// DefaultMaxBodyBytes caps a request body (413 beyond it).
	DefaultMaxBodyBytes = 1 << 20
	// MaxCandidates caps one what-if batch (400 beyond it).
	MaxCandidates = 8192
	// MaxPercentiles caps one analyze request's percentile list.
	MaxPercentiles = 64
	// maxBenchBytes caps an inline .bench netlist upload within the
	// body cap; parsing is linear, so the body cap alone suffices, but
	// the explicit constant documents the intent.
	maxBenchBytes = DefaultMaxBodyBytes
)

// apiError is a request-terminating error with an HTTP status. The
// handlers map every failure to one of these; anything else escaping a
// handler is a 500 (and a bug — the fuzz suite hunts for them).
//
// Rejections the client can act on carry extra fields: RetryAfterS
// mirrors the Retry-After header (writeError sets both from the same
// value), and RunID names the already-active optimize run behind a
// run_active conflict so a client that lost its stream before the
// start event can still attach.
type apiError struct {
	Status      int    `json:"-"`
	Code        string `json:"code"`
	Message     string `json:"message"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
	RunID       string `json:"run_id,omitempty"`
}

func (e *apiError) Error() string { return e.Code + ": " + e.Message }

// Rejection codes for the overload and lifecycle paths. Every cause a
// load balancer or retrying client distinguishes has its own code:
//
//	pool_full        503 — every session slot is leased; Retry-After set
//	shed             429 — admission queue overflowed or timed out; Retry-After set
//	deadline_expired 408/504 — the X-Deadline-Ms budget was already spent
//	                 (408, rejected before any work) or ran out mid-request (504)
//	draining         503 — the daemon is shutting down; Retry-After set
//	run_active       409 — an optimize run is already streaming on the session
const (
	CodePoolFull        = "pool_full"
	CodeShed            = "shed"
	CodeDeadlineExpired = "deadline_expired"
	CodeDraining        = "draining"
	CodeRunActive       = "run_active"
)

// Resilience protocol headers.
const (
	// HeaderDeadlineMs carries the client's remaining per-request budget
	// in milliseconds; the server clamps it to Config.MaxDeadline and
	// threads it into the handler context.
	HeaderDeadlineMs = "X-Deadline-Ms"
	// HeaderRunID targets an existing optimize run when reattaching to
	// its event stream.
	HeaderRunID = "X-Run-Id"
	// HeaderLastEventID carries the last iteration index a reconnecting
	// stream consumer received; replay resumes after it.
	HeaderLastEventID = "Last-Event-ID"
)

// retryAfterError decorates a sentinel error with a retry hint; the
// manager uses it so ErrPoolFull keeps working with errors.Is while the
// HTTP layer surfaces a concrete Retry-After.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// retryAfterSeconds rounds a wait hint up to whole seconds (the
// Retry-After header's granularity), never below 1.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// errorEnvelope is the JSON body of every non-2xx response.
type errorEnvelope struct {
	Error *apiError `json:"error"`
}

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: code, Message: fmt.Sprintf(format, args...)}
}

// OpenSessionRequest creates (or attaches to) a pooled session.
// Exactly one of Design (a benchmark name) or Bench (an inline ISCAS
// .bench netlist, with Design naming it) loads the circuit.
type OpenSessionRequest struct {
	Design string `json:"design"`          // benchmark name, or the name for an uploaded netlist
	Client string `json:"client"`          // pool key second half; "" means the shared anonymous client
	Bench  string `json:"bench,omitempty"` // inline .bench source; empty means Design is a benchmark name
	Bins   int    `json:"bins,omitempty"`  // SSTA grid resolution; 0 means the engine default
	// Objective selects the session objective: "mean" or "pN" /
	// "pN.N" (e.g. "p99", "p99.9"); empty means the engine default.
	Objective string `json:"objective,omitempty"`
}

// OpenSessionResponse describes the (possibly pre-existing) session.
type OpenSessionResponse struct {
	SessionID string  `json:"session_id"`
	Created   bool    `json:"created"` // false when attached to a pooled session
	Design    string  `json:"design"`
	NumGates  int     `json:"num_gates"`
	Objective string  `json:"objective"`
	DT        float64 `json:"dt"` // SSTA grid bin width (ns)
}

// WhatIfRequest evaluates candidates without committing. Either the
// single Gate/Width pair or the Candidates list must be set (not both).
type WhatIfRequest struct {
	Gate       *int64          `json:"gate,omitempty"`
	Width      *float64        `json:"width,omitempty"`
	Candidates []CandidateWire `json:"candidates,omitempty"`
}

// CandidateWire is one hypothetical resize on the wire.
type CandidateWire struct {
	Gate  int64   `json:"gate"`
	Width float64 `json:"width"`
}

// WhatIfResultWire mirrors session.WhatIfResult.
type WhatIfResultWire struct {
	Gate         int64   `json:"gate"`
	Width        float64 `json:"width"`
	Objective    float64 `json:"objective"`
	Delta        float64 `json:"delta"`
	Sensitivity  float64 `json:"sensitivity"`
	NodesVisited int     `json:"nodes_visited"`
}

// WhatIfResponse carries the evaluated candidates in request order.
type WhatIfResponse struct {
	Base    float64            `json:"base_objective"`
	Results []WhatIfResultWire `json:"results"`
}

// ResizeRequest commits one width change.
type ResizeRequest struct {
	Gate  int64   `json:"gate"`
	Width float64 `json:"width"`
}

// ResizeResponse mirrors session.ResizeStats.
type ResizeResponse struct {
	Gate            int64   `json:"gate"`
	OldWidth        float64 `json:"old_width"`
	NewWidth        float64 `json:"new_width"`
	NodesRecomputed int     `json:"nodes_recomputed"`
	FullPassNodes   int     `json:"full_pass_nodes"`
	Objective       float64 `json:"objective"`
}

// AnalyzeRequest queries the live analysis. Percentiles lists the
// quantiles to evaluate (each in (0,1)); empty means objective-only.
type AnalyzeRequest struct {
	Percentiles []float64 `json:"percentiles,omitempty"`
}

// AnalyzeResponse summarizes the current timing state.
type AnalyzeResponse struct {
	Objective     float64            `json:"objective"`
	ObjectiveName string             `json:"objective_name"`
	TotalWidth    float64            `json:"total_width"`
	NumGates      int                `json:"num_gates"`
	Percentiles   map[string]float64 `json:"percentiles,omitempty"`
}

// CheckpointResponse reports the checkpoint depth after a push/pop.
type CheckpointResponse struct {
	Depth int `json:"depth"`
}

// OptimizeRequest starts a streamed optimizer run on the session.
type OptimizeRequest struct {
	Optimizer       string  `json:"optimizer"`                   // registry name; required
	MaxIterations   int     `json:"max_iterations,omitempty"`    // 0 means the optimizer default
	MaxAreaIncrease float64 `json:"max_area_increase,omitempty"` // fractional cap; 0 means unlimited
	MultiSize       int     `json:"multi_size,omitempty"`        // top-k gates per iteration; 0 means default
}

// StartEvent is the SSE "start" event payload: the session state the
// run began from. RunID names the run for stream reattachment: a client
// whose stream breaks mid-run reconnects with X-Run-Id and
// Last-Event-ID and replay resumes after the last iteration it saw.
type StartEvent struct {
	RunID            string  `json:"run_id"`
	SessionID        string  `json:"session_id"`
	Design           string  `json:"design"`
	Optimizer        string  `json:"optimizer"`
	Objective        string  `json:"objective"`
	InitialObjective float64 `json:"initial_objective"`
	InitialWidth     float64 `json:"initial_width"`
}

// DoneEvent is the SSE "done" event payload, terminal on every stream:
// on success Error is empty; on cancellation or failure Error explains
// and the counters describe the partial run.
type DoneEvent struct {
	Iterations      int     `json:"iterations"`
	FinalObjective  float64 `json:"final_objective"`
	FinalWidth      float64 `json:"final_width"`
	ImprovementPct  float64 `json:"improvement_pct"`
	AreaIncreasePct float64 `json:"area_increase_pct"`
	ElapsedNS       int64   `json:"elapsed_ns"`
	Canceled        bool    `json:"canceled,omitempty"`
	Error           string  `json:"error,omitempty"`
}

// HealthResponse is the /healthz body. Beyond liveness it reports the
// admission controller's overload state — queue depth and inflight per
// work class — so a load balancer can steer traffic away from a busy
// replica before requests start shedding.
type HealthResponse struct {
	Status    string           `json:"status"` // "ok", or "draining" during shutdown
	UptimeS   float64          `json:"uptime_s"`
	GoDesign  string           `json:"service"` // constant "statsized"
	Admission *AdmissionHealth `json:"admission,omitempty"`
}

// AdmissionHealth is the admission controller's /healthz snapshot.
type AdmissionHealth struct {
	Enabled bool                   `json:"enabled"`
	Classes map[string]ClassHealth `json:"classes,omitempty"`
}

// ClassHealth is one work class's live occupancy.
type ClassHealth struct {
	InFlight int   `json:"in_flight"` // admitted requests currently executing
	Slots    int   `json:"slots"`     // admission semaphore capacity
	Queued   int   `json:"queued"`    // waiters in the admission queue right now
	Queue    int   `json:"queue"`     // admission queue capacity
	Admitted int64 `json:"admitted"`  // requests ever admitted
	Shed     int64 `json:"shed"`      // requests rejected for overload
}

// StatsResponse is the /stats body: the engine-wide rollup plus the
// session manager's pool accounting.
type StatsResponse struct {
	Engine   statsize.EngineStats `json:"engine"`
	Sessions ManagerStats         `json:"sessions"`
}

// SessionInfoResponse is the GET /v1/sessions/{id} body. It carries
// only manager-level metadata — deliberately nothing that would need
// the session lock, so it stays responsive during optimizer runs.
type SessionInfoResponse struct {
	SessionID string  `json:"session_id"`
	Design    string  `json:"design"`
	Client    string  `json:"client"`
	NumGates  int     `json:"num_gates"`
	Objective string  `json:"objective"`
	DT        float64 `json:"dt"`
	IdleS     float64 `json:"idle_s"`
	InFlight  int     `json:"in_flight"`
	AgeS      float64 `json:"age_s"`
}

// decodeJSON reads and decodes one bounded JSON request body into dst.
// Failures map to precise 4xx statuses: 413 when the body exceeds the
// cap, 400 for malformed or trailing JSON. A missing body decodes the
// zero value (endpoints with all-optional fields accept it).
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, dst any) *apiError {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty body = zero-value request
		}
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &apiError{Status: http.StatusRequestEntityTooLarge, Code: "body_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return badRequest("bad_json", "decoding request body: %v", err)
	}
	// Trailing garbage after the JSON value is a malformed request,
	// not an ignorable suffix.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return badRequest("bad_json", "trailing data after JSON body")
	}
	return nil
}

// finite rejects NaN and ±Inf, which cannot arrive through valid JSON
// but guard the decoders against future non-JSON ingestion paths.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// validateWhatIf normalizes a WhatIfRequest into a candidate list.
func validateWhatIf(req *WhatIfRequest) ([]statsize.Candidate, *apiError) {
	single := req.Gate != nil || req.Width != nil
	if single && len(req.Candidates) > 0 {
		return nil, badRequest("ambiguous_whatif", "set either gate/width or candidates, not both")
	}
	if single {
		if req.Gate == nil || req.Width == nil {
			return nil, badRequest("missing_field", "single what-if needs both gate and width")
		}
		req.Candidates = []CandidateWire{{Gate: *req.Gate, Width: *req.Width}}
	}
	if len(req.Candidates) == 0 {
		return nil, badRequest("missing_field", "what-if needs gate/width or a candidates list")
	}
	if len(req.Candidates) > MaxCandidates {
		return nil, badRequest("too_many_candidates", "batch of %d exceeds the %d-candidate cap",
			len(req.Candidates), MaxCandidates)
	}
	out := make([]statsize.Candidate, len(req.Candidates))
	for i, c := range req.Candidates {
		g, err := gateID(c.Gate)
		if err != nil {
			return nil, err
		}
		if !finite(c.Width) {
			return nil, badRequest("bad_width", "candidate %d width is not finite", i)
		}
		out[i] = statsize.Candidate{Gate: g, Width: c.Width}
	}
	return out, nil
}

// gateID range-checks a wire gate id into the GateID type; the session
// re-validates against the actual netlist size.
func gateID(g int64) (statsize.GateID, *apiError) {
	if g < 0 || g > math.MaxInt32 {
		return 0, badRequest("bad_gate", "gate %d out of representable range", g)
	}
	return statsize.GateID(g), nil
}

// validateResize checks a ResizeRequest.
func validateResize(req *ResizeRequest) (statsize.GateID, float64, *apiError) {
	g, err := gateID(req.Gate)
	if err != nil {
		return 0, 0, err
	}
	if !finite(req.Width) {
		return 0, 0, badRequest("bad_width", "width is not finite")
	}
	return g, req.Width, nil
}

// validateAnalyze checks an AnalyzeRequest.
func validateAnalyze(req *AnalyzeRequest) *apiError {
	if len(req.Percentiles) > MaxPercentiles {
		return badRequest("too_many_percentiles", "%d percentiles exceeds the cap of %d",
			len(req.Percentiles), MaxPercentiles)
	}
	for _, p := range req.Percentiles {
		if !finite(p) || p <= 0 || p >= 1 {
			return badRequest("bad_percentile", "percentile %v outside (0,1)", p)
		}
	}
	return nil
}

// validateOpen checks an OpenSessionRequest.
func validateOpen(req *OpenSessionRequest) *apiError {
	if req.Design == "" {
		return badRequest("missing_field", "design is required")
	}
	if len(req.Design) > 256 || len(req.Client) > 256 {
		return badRequest("bad_name", "design/client names capped at 256 bytes")
	}
	if len(req.Bench) > maxBenchBytes {
		return badRequest("bench_too_large", "inline netlist exceeds %d bytes", maxBenchBytes)
	}
	if req.Bins < 0 || req.Bins > 1<<16 {
		return badRequest("bad_bins", "bins %d outside [0,65536]", req.Bins)
	}
	if _, err := parseObjective(req.Objective); err != nil {
		return err
	}
	return nil
}

// parseObjective maps a wire objective name to an Objective; "" means
// engine default (nil).
func parseObjective(name string) (statsize.Objective, *apiError) {
	switch {
	case name == "":
		return nil, nil
	case name == "mean":
		return statsize.Mean{}, nil
	case len(name) > 1 && name[0] == 'p':
		var pct float64
		if _, err := fmt.Sscanf(name[1:], "%f", &pct); err != nil || !finite(pct) || pct <= 0 || pct >= 100 {
			return nil, badRequest("bad_objective", "objective %q: want \"mean\" or \"pN\" with N in (0,100)", name)
		}
		return statsize.Percentile(pct / 100), nil
	default:
		return nil, badRequest("bad_objective", "objective %q: want \"mean\" or \"pN\"", name)
	}
}

// validateOptimize checks an OptimizeRequest against the optimizer
// registry.
func validateOptimize(req *OptimizeRequest) *apiError {
	if req.Optimizer == "" {
		return badRequest("missing_field", "optimizer is required")
	}
	known := statsize.Optimizers()
	found := false
	for _, n := range known {
		if n == req.Optimizer {
			found = true
			break
		}
	}
	if !found {
		return badRequest("unknown_optimizer", "optimizer %q not registered (known: %v)", req.Optimizer, known)
	}
	if req.MaxIterations < 0 || req.MaxIterations > 1<<20 {
		return badRequest("bad_iterations", "max_iterations %d outside [0,1048576]", req.MaxIterations)
	}
	if !finite(req.MaxAreaIncrease) || req.MaxAreaIncrease < 0 {
		return badRequest("bad_area_cap", "max_area_increase must be a finite non-negative fraction")
	}
	if req.MultiSize < 0 || req.MultiSize > 1<<16 {
		return badRequest("bad_multi_size", "multi_size %d outside [0,65536]", req.MultiSize)
	}
	return nil
}
