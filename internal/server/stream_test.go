package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"statsize"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	id   string
	data []byte
}

// sseScanner incrementally parses an SSE stream.
type sseScanner struct {
	sc *bufio.Scanner
}

func newSSEScanner(r *bufio.Reader) *sseScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &sseScanner{sc: sc}
}

// next returns the next event, or ok=false at end of stream.
func (s *sseScanner) next() (sseEvent, bool) {
	var ev sseEvent
	seen := false
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if seen {
				return ev, true
			}
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
			seen = true
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
			seen = true
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(strings.TrimPrefix(line, "data: "))
			seen = true
		}
	}
	return ev, false
}

// collectSSE parses a whole SSE body.
func collectSSE(t testing.TB, body []byte) []sseEvent {
	t.Helper()
	sc := newSSEScanner(bufio.NewReader(bytes.NewReader(body)))
	var out []sseEvent
	for {
		ev, ok := sc.next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// TestSSEWriterFraming pins the wire framing of the three event kinds.
func TestSSEWriterFraming(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := newSSEWriter(rec, 0)
	sw.event("start", -1, map[string]int{"a": 1})
	sw.event("iter", 3, map[string]int{"b": 2})
	want := "event: start\ndata: {\"a\":1}\n\n" +
		"id: 3\nevent: iter\ndata: {\"b\":2}\n\n"
	if got := rec.Body.String(); got != want {
		t.Fatalf("framing mismatch:\n got %q\nwant %q", got, want)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
}

// TestOptimizeStreamReplaysGoldenTrace is the wire-format proof for the
// service layer: a streamed accelerated run on c432 (MaxIterations=10,
// Bins=400 — the golden-trace configuration) must reconstruct the
// committed golden trace bit-identically from its SSE events alone.
// JSON's shortest-round-trip float encoding makes every objective,
// sensitivity and width survive the network exactly.
func TestOptimizeStreamReplaysGoldenTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full 10-iteration optimize on c432; skipped with -short")
	}
	_, ts := newHTTP(t, Config{})
	sess := openSession(t, ts.URL, &OpenSessionRequest{Design: "c432", Client: "golden", Bins: 400})

	status, body := postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/optimize",
		&OptimizeRequest{Optimizer: "accelerated", MaxIterations: 10})
	if status != http.StatusOK {
		t.Fatalf("optimize: %d %s", status, body)
	}
	events := collectSSE(t, body)
	if len(events) < 3 {
		t.Fatalf("stream carried %d events, want start+iters+done", len(events))
	}
	if events[0].name != "start" || events[len(events)-1].name != "done" {
		t.Fatalf("stream framing: first=%q last=%q", events[0].name, events[len(events)-1].name)
	}

	var start StartEvent
	mustUnmarshal(t, events[0].data, &start)
	var done DoneEvent
	mustUnmarshal(t, events[len(events)-1].data, &done)
	if done.Canceled || done.Error != "" {
		t.Fatalf("run did not complete cleanly: %+v", done)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# golden optimizer trace: %s %s (MaxIterations=10 Bins=400)\n", "c432", "accelerated")
	fmt.Fprintf(&b, "initial %x %x\n", start.InitialObjective, start.InitialWidth)
	for _, ev := range events[1 : len(events)-1] {
		if ev.name != "iter" {
			t.Fatalf("unexpected mid-stream event %q", ev.name)
		}
		var rec statsize.IterRecord
		mustUnmarshal(t, ev.data, &rec)
		if ev.id != strconv.Itoa(rec.Iter) {
			t.Fatalf("SSE id %q does not match iteration %d", ev.id, rec.Iter)
		}
		gates := make([]string, len(rec.Gates))
		for i, g := range rec.Gates {
			gates[i] = fmt.Sprint(g)
		}
		fmt.Fprintf(&b, "iter %d gates=%s sens=%x obj=%x width=%x considered=%d pruned=%d visited=%d\n",
			rec.Iter, strings.Join(gates, ","), rec.Sensitivity, rec.Objective, rec.TotalWidth,
			rec.CandidatesConsidered, rec.CandidatesPruned, rec.NodesVisited)
	}
	fmt.Fprintf(&b, "final %x %x\n", done.FinalObjective, done.FinalWidth)

	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "traces", "c432_accelerated.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(want) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := range gotLines {
			if i >= len(wantLines) || gotLines[i] != wantLines[i] {
				t.Fatalf("streamed trace diverges from golden at line %d:\n got  %q\n want %q",
					i+1, gotLines[i], wantLines[min(i, len(wantLines)-1)])
			}
		}
		t.Fatalf("streamed trace diverges from golden (golden %d lines, got %d)",
			len(wantLines), len(gotLines))
	}
}

// listenAndServe boots the daemon on a loopback listener and returns
// its base URL plus a channel carrying Serve's return.
func listenAndServe(t *testing.T, s *Server) (string, <-chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	return "http://" + l.Addr().String(), served
}

// TestShutdownCancelsOptimizeStream pins graceful shutdown against a
// long-lived stream: Shutdown cancels the run between units of work,
// the stream still delivers its terminal done event with Canceled set,
// and the drain completes without hitting the hard deadline.
func TestShutdownCancelsOptimizeStream(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real listener and a brute-force run; skipped with -short")
	}
	s := newDaemon(t, Config{DrainTimeout: 20 * time.Second, SweepEvery: time.Hour})
	base, served := listenAndServe(t, s)

	sess := openSession(t, base, &OpenSessionRequest{Design: "c880", Client: "stream", Bins: 400})
	req, err := json.Marshal(&OptimizeRequest{Optimizer: "brute-force", MaxIterations: 100000})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions/"+sess.SessionID+"/optimize",
		"application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d", resp.StatusCode)
	}

	sc := newSSEScanner(bufio.NewReader(resp.Body))
	ev, ok := sc.next()
	if !ok || ev.name != "start" {
		t.Fatalf("first event %q ok=%v, want start", ev.name, ok)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Keep reading: the stream must end with a canceled done event, not
	// a severed connection.
	var done *DoneEvent
	for {
		ev, ok := sc.next()
		if !ok {
			break
		}
		if ev.name == "done" {
			done = new(DoneEvent)
			mustUnmarshal(t, ev.data, done)
		}
	}
	if done == nil {
		t.Fatal("stream ended without a done event")
	}
	if !done.Canceled {
		t.Fatalf("done event not marked canceled: %+v", done)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestShutdownDrainsInFlightWhatIf pins the other half of the drain
// contract: a what-if batch already executing when Shutdown begins runs
// to completion and its client sees a full 200 response.
func TestShutdownDrainsInFlightWhatIf(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real listener; skipped with -short")
	}
	s := newDaemon(t, Config{DrainTimeout: 30 * time.Second, SweepEvery: time.Hour})
	base, served := listenAndServe(t, s)

	sess := openSession(t, base, &OpenSessionRequest{Design: "c880", Client: "drain", Bins: 400})
	cands := make([]CandidateWire, sess.NumGates)
	for i := range cands {
		cands[i] = CandidateWire{Gate: int64(i), Width: 1.5}
	}

	type result struct {
		status int
		body   []byte
	}
	got := make(chan result, 1)
	go func() {
		status, body := postJSON(t, base+"/v1/sessions/"+sess.SessionID+"/whatif",
			&WhatIfRequest{Candidates: cands})
		got <- result{status, body}
	}()

	// Wait for the batch to be in flight (the lease is taken before the
	// handler runs), then begin the drain.
	deadline := time.Now().Add(10 * time.Second)
	for s.Manager().Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("what-if batch never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	res := <-got
	if res.status != http.StatusOK {
		t.Fatalf("drained what-if: %d %s", res.status, res.body)
	}
	var wi WhatIfResponse
	mustUnmarshal(t, res.body, &wi)
	if len(wi.Results) != sess.NumGates {
		t.Fatalf("drained batch returned %d results, want %d", len(wi.Results), sess.NumGates)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
