package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"statsize"
)

// noLog silences the daemon in tests.
func noLog(string, ...any) {}

// newDaemon builds a Server over a fresh engine and registers its
// shutdown with the test.
func newDaemon(t testing.TB, cfg Config) *Server {
	t.Helper()
	eng, err := statsize.New()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Logf == nil {
		cfg.Logf = noLog
	}
	s := New(eng, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// newHTTP mounts the daemon on an httptest server.
func newHTTP(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newDaemon(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts body (marshaled, or raw bytes) and returns the status
// and response body.
func postJSON(t testing.TB, url string, body any) (int, []byte) {
	t.Helper()
	var buf []byte
	switch b := body.(type) {
	case nil:
	case []byte:
		buf = b
	default:
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// getJSON fetches url and returns the status and body.
func getJSON(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// mustUnmarshal decodes into dst or fails the test.
func mustUnmarshal(t testing.TB, b []byte, dst any) {
	t.Helper()
	if err := json.Unmarshal(b, dst); err != nil {
		t.Fatalf("unmarshal %q: %v", b, err)
	}
}

// openSession opens a pooled session over HTTP and returns the response.
func openSession(t testing.TB, base string, req *OpenSessionRequest) *OpenSessionResponse {
	t.Helper()
	status, body := postJSON(t, base+"/v1/sessions", req)
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("open session: status %d body %s", status, body)
	}
	var resp OpenSessionResponse
	mustUnmarshal(t, body, &resp)
	return &resp
}

// errorCode extracts the error envelope code from a non-2xx body.
func errorCode(t testing.TB, body []byte) string {
	t.Helper()
	var env errorEnvelope
	mustUnmarshal(t, body, &env)
	if env.Error == nil {
		t.Fatalf("no error envelope in %s", body)
	}
	return env.Error.Code
}

// TestSessionLifecycle walks the whole HTTP surface against one pooled
// c17 session: open, attach, analyze, what-if (single and batch),
// checkpoint, resize, rollback, close.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newHTTP(t, Config{})

	created := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "alice", Bins: 120})
	if !created.Created {
		t.Fatalf("first open not created: %+v", created)
	}
	if created.NumGates <= 0 || created.DT <= 0 {
		t.Fatalf("implausible session metadata: %+v", created)
	}

	// A second open with the same (design, client) attaches.
	attached := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "alice", Bins: 120})
	if attached.Created || attached.SessionID != created.SessionID {
		t.Fatalf("expected attach to %s, got %+v", created.SessionID, attached)
	}
	// A different client gets its own session.
	other := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "bob", Bins: 120})
	if !other.Created || other.SessionID == created.SessionID {
		t.Fatalf("expected a distinct session for bob, got %+v", other)
	}

	base := ts.URL + "/v1/sessions/" + created.SessionID

	status, body := postJSON(t, base+"/analyze", &AnalyzeRequest{Percentiles: []float64{0.5, 0.99}})
	if status != http.StatusOK {
		t.Fatalf("analyze: %d %s", status, body)
	}
	var an AnalyzeResponse
	mustUnmarshal(t, body, &an)
	if an.Objective <= 0 || an.TotalWidth <= 0 || an.NumGates != created.NumGates {
		t.Fatalf("implausible analysis: %+v", an)
	}
	if len(an.Percentiles) != 2 || an.Percentiles["0.99"] < an.Percentiles["0.5"] {
		t.Fatalf("bad percentiles: %+v", an.Percentiles)
	}

	g, w := int64(0), 2.0
	status, body = postJSON(t, base+"/whatif", &WhatIfRequest{Gate: &g, Width: &w})
	if status != http.StatusOK {
		t.Fatalf("single what-if: %d %s", status, body)
	}
	var wi WhatIfResponse
	mustUnmarshal(t, body, &wi)
	if len(wi.Results) != 1 || wi.Results[0].Gate != 0 || wi.Results[0].Width != 2.0 {
		t.Fatalf("bad what-if result: %+v", wi)
	}

	cands := make([]CandidateWire, created.NumGates)
	for i := range cands {
		cands[i] = CandidateWire{Gate: int64(i), Width: 1.5}
	}
	status, body = postJSON(t, base+"/whatif", &WhatIfRequest{Candidates: cands})
	if status != http.StatusOK {
		t.Fatalf("batch what-if: %d %s", status, body)
	}
	mustUnmarshal(t, body, &wi)
	if len(wi.Results) != created.NumGates {
		t.Fatalf("batch returned %d results, want %d", len(wi.Results), created.NumGates)
	}

	status, body = postJSON(t, base+"/checkpoint", nil)
	if status != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", status, body)
	}
	var cp CheckpointResponse
	mustUnmarshal(t, body, &cp)
	if cp.Depth != 1 {
		t.Fatalf("checkpoint depth %d, want 1", cp.Depth)
	}

	status, body = postJSON(t, base+"/resize", &ResizeRequest{Gate: 0, Width: 2.5})
	if status != http.StatusOK {
		t.Fatalf("resize: %d %s", status, body)
	}
	var rz ResizeResponse
	mustUnmarshal(t, body, &rz)
	if rz.NewWidth != 2.5 || rz.NodesRecomputed <= 0 {
		t.Fatalf("bad resize stats: %+v", rz)
	}

	status, body = postJSON(t, base+"/rollback", nil)
	if status != http.StatusOK {
		t.Fatalf("rollback: %d %s", status, body)
	}
	mustUnmarshal(t, body, &cp)
	if cp.Depth != 0 {
		t.Fatalf("depth after rollback %d, want 0", cp.Depth)
	}
	// A second rollback has no checkpoint to pop: 409.
	status, body = postJSON(t, base+"/rollback", nil)
	if status != http.StatusConflict || errorCode(t, body) != "no_checkpoint" {
		t.Fatalf("double rollback: %d %s", status, body)
	}

	// The rollback restored the pre-resize width: analyze agrees with the
	// original objective.
	status, body = postJSON(t, base+"/analyze", nil)
	if status != http.StatusOK {
		t.Fatalf("analyze after rollback: %d %s", status, body)
	}
	var an2 AnalyzeResponse
	mustUnmarshal(t, body, &an2)
	if an2.TotalWidth != an.TotalWidth {
		t.Fatalf("rollback did not restore width: %v vs %v", an2.TotalWidth, an.TotalWidth)
	}

	status, body = getJSON(t, base)
	if status != http.StatusOK {
		t.Fatalf("session info: %d %s", status, body)
	}
	var info SessionInfoResponse
	mustUnmarshal(t, body, &info)
	if info.SessionID != created.SessionID || info.Client != "alice" || info.InFlight != 0 {
		t.Fatalf("bad session info: %+v", info)
	}

	req, err := http.NewRequest(http.MethodDelete, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	status, body = postJSON(t, base+"/analyze", nil)
	if status != http.StatusNotFound {
		t.Fatalf("analyze after delete: %d %s", status, body)
	}
}

// TestOpenValidation pins the 4xx mapping of bad open requests.
func TestOpenValidation(t *testing.T) {
	_, ts := newHTTP(t, Config{})
	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"missing design", &OpenSessionRequest{}, 400, "missing_field"},
		{"unknown benchmark", &OpenSessionRequest{Design: "c9999"}, 400, "bad_design"},
		{"bad objective", &OpenSessionRequest{Design: "c17", Objective: "median"}, 400, "bad_objective"},
		{"objective out of range", &OpenSessionRequest{Design: "c17", Objective: "p250"}, 400, "bad_objective"},
		{"negative bins", []byte(`{"design":"c17","bins":-3}`), 400, "bad_bins"},
		{"bins over cap", []byte(`{"design":"c17","bins":70000}`), 400, "bad_bins"},
		{"long name", &OpenSessionRequest{Design: strings.Repeat("x", 300)}, 400, "bad_name"},
		{"malformed json", []byte(`{"design":`), 400, "bad_json"},
		{"trailing data", []byte(`{"design":"c17"} extra`), 400, "bad_json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, ts.URL+"/v1/sessions", tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (%s)", status, tc.status, body)
			}
			if code := errorCode(t, body); code != tc.code {
				t.Fatalf("code %q, want %q", code, tc.code)
			}
		})
	}
}

// TestOpenBinsEdgeValues pins the daemon's handling of bins values that
// pass validation: every in-range budget — including the degenerate
// 1-bin grid — must open a working session, never escalate to a
// 500-via-recover from a panic deeper in the engine.
func TestOpenBinsEdgeValues(t *testing.T) {
	_, ts := newHTTP(t, Config{})
	for _, bins := range []int{1, 16, 1 << 16} {
		req := &OpenSessionRequest{Design: "c17", Client: fmt.Sprintf("bins-%d", bins), Bins: bins}
		status, body := postJSON(t, ts.URL+"/v1/sessions", req)
		if status != http.StatusCreated {
			t.Fatalf("bins=%d: status %d, want 201 (%s)", bins, status, body)
		}
		var sess OpenSessionResponse
		if err := json.Unmarshal(body, &sess); err != nil {
			t.Fatalf("bins=%d: %v", bins, err)
		}
		status, body = postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/analyze", &AnalyzeRequest{})
		if status != http.StatusOK {
			t.Fatalf("bins=%d: analyze status %d, want 200 (%s)", bins, status, body)
		}
	}
}

// TestRequestValidation pins the 4xx mapping of bad per-session bodies.
func TestRequestValidation(t *testing.T) {
	_, ts := newHTTP(t, Config{MaxBodyBytes: 4096})
	sess := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Bins: 120})
	base := ts.URL + "/v1/sessions/" + sess.SessionID

	tooMany := make([]CandidateWire, MaxCandidates+1)
	g, w := int64(0), 2.0
	cases := []struct {
		name   string
		path   string
		body   any
		status int
		code   string
	}{
		{"whatif empty", "/whatif", nil, 400, "missing_field"},
		{"whatif ambiguous", "/whatif", &WhatIfRequest{Gate: &g, Width: &w, Candidates: []CandidateWire{{}}}, 400, "ambiguous_whatif"},
		{"whatif half single", "/whatif", []byte(`{"gate":0}`), 400, "missing_field"},
		{"whatif negative gate", "/whatif", &WhatIfRequest{Candidates: []CandidateWire{{Gate: -1, Width: 2}}}, 400, "bad_gate"},
		{"whatif too many", "/whatif", &WhatIfRequest{Candidates: tooMany}, 413, "body_too_large"},
		{"whatif bad gate id", "/whatif", &WhatIfRequest{Candidates: []CandidateWire{{Gate: 1 << 40, Width: 2}}}, 400, "bad_gate"},
		{"whatif out of range gate", "/whatif", &WhatIfRequest{Candidates: []CandidateWire{{Gate: 99999, Width: 2}}}, 400, "request_failed"},
		{"resize bad gate", "/resize", &ResizeRequest{Gate: -1, Width: 2}, 400, "bad_gate"},
		{"analyze bad percentile", "/analyze", &AnalyzeRequest{Percentiles: []float64{1.5}}, 400, "bad_percentile"},
		{"optimize missing name", "/optimize", &OptimizeRequest{}, 400, "missing_field"},
		{"optimize unknown name", "/optimize", &OptimizeRequest{Optimizer: "annealer"}, 400, "unknown_optimizer"},
		{"optimize bad multi", "/optimize", []byte(`{"optimizer":"deterministic","multi_size":-1}`), 400, "bad_multi_size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, base+tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (%s)", status, tc.status, body)
			}
			if code := errorCode(t, body); code != tc.code {
				t.Fatalf("code %q, want %q (%s)", code, tc.code, body)
			}
		})
	}

	// An unknown session id is a 404, whatever the body.
	status, body := postJSON(t, ts.URL+"/v1/sessions/nope/analyze", nil)
	if status != http.StatusNotFound || errorCode(t, body) != "no_session" {
		t.Fatalf("unknown id: %d %s", status, body)
	}
}

// TestBodySizeCap pins the 413 for oversized bodies.
func TestBodySizeCap(t *testing.T) {
	_, ts := newHTTP(t, Config{MaxBodyBytes: 512})
	huge := []byte(`{"design":"` + strings.Repeat("a", 2048) + `"}`)
	status, body := postJSON(t, ts.URL+"/v1/sessions", huge)
	if status != http.StatusRequestEntityTooLarge || errorCode(t, body) != "body_too_large" {
		t.Fatalf("oversized body: %d %s", status, body)
	}
}

// TestInlineBenchUpload loads a netlist from the request body instead
// of the benchmark table.
func TestInlineBenchUpload(t *testing.T) {
	_, ts := newHTTP(t, Config{})
	bench := `# tiny
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
`
	sess := openSession(t, ts.URL, &OpenSessionRequest{Design: "tiny", Client: "up", Bench: bench, Bins: 120})
	if sess.NumGates != 1 {
		t.Fatalf("uploaded netlist has %d gates, want 1", sess.NumGates)
	}
	status, body := postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/analyze", nil)
	if status != http.StatusOK {
		t.Fatalf("analyze uploaded design: %d %s", status, body)
	}
}

// TestIdleEviction pins the idle budget: an unleased session past the
// timeout is reclaimed by Sweep, observable in /stats, and its handle
// turns 404.
func TestIdleEviction(t *testing.T) {
	s, ts := newHTTP(t, Config{
		IdleTimeout: 30 * time.Millisecond,
		SweepEvery:  time.Hour, // manual sweeps only
	})
	sess := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "idle", Bins: 120})

	if n := s.Manager().Sweep(); n != 0 {
		t.Fatalf("fresh session swept: %d", n)
	}
	time.Sleep(60 * time.Millisecond)
	if n := s.Manager().Sweep(); n != 1 {
		t.Fatalf("swept %d sessions, want 1", n)
	}

	status, body := getJSON(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	var st StatsResponse
	mustUnmarshal(t, body, &st)
	if st.Sessions.EvictedIdle != 1 || st.Sessions.Live != 0 {
		t.Fatalf("stats after idle eviction: %+v", st.Sessions)
	}
	if st.Engine.SessionsOpened < 1 || st.Engine.SessionsLive != 0 {
		t.Fatalf("engine rollup after eviction: %+v", st.Engine)
	}

	status, body = postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/analyze", nil)
	if status != http.StatusNotFound {
		t.Fatalf("evicted session: %d %s", status, body)
	}
}

// TestCapEviction pins the live-session cap: opening past MaxSessions
// evicts the least-recently-used unleased session.
func TestCapEviction(t *testing.T) {
	s, ts := newHTTP(t, Config{MaxSessions: 2, SweepEvery: time.Hour})
	first := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "a", Bins: 120})
	second := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "b", Bins: 120})
	// Touch the first so the second is LRU.
	if status, body := postJSON(t, ts.URL+"/v1/sessions/"+first.SessionID+"/analyze", nil); status != http.StatusOK {
		t.Fatalf("touch: %d %s", status, body)
	}
	third := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "c", Bins: 120})
	if !third.Created {
		t.Fatalf("third open did not create: %+v", third)
	}
	st := s.Manager().Stats()
	if st.Live != 2 || st.EvictedCap != 1 {
		t.Fatalf("stats after cap eviction: %+v", st)
	}
	if status, _ := getJSON(t, ts.URL+"/v1/sessions/"+second.SessionID); status != http.StatusNotFound {
		t.Fatalf("LRU session survived the cap: %d", status)
	}
	if status, _ := getJSON(t, ts.URL+"/v1/sessions/"+first.SessionID); status != http.StatusOK {
		t.Fatalf("recently-used session evicted: %d", status)
	}
}

// TestPoolFullWhenAllLeased pins the 503: with every session leased,
// nothing is evictable and opens must fail rather than block.
func TestPoolFullWhenAllLeased(t *testing.T) {
	s := newDaemon(t, Config{MaxSessions: 1, SweepEvery: time.Hour})
	m := s.Manager()
	ctx := context.Background()

	lease, _, err := m.OpenOrAttach(ctx, &OpenSessionRequest{Design: "c17", Client: "holder", Bins: 120})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = m.OpenOrAttach(ctx, &OpenSessionRequest{Design: "c17", Client: "other", Bins: 120})
	if !errors.Is(err, ErrPoolFull) {
		t.Fatalf("open with a fully-leased pool: %v, want ErrPoolFull", err)
	}
	lease.Release()
	lease2, _, err := m.OpenOrAttach(ctx, &OpenSessionRequest{Design: "c17", Client: "other", Bins: 120})
	if err != nil {
		t.Fatalf("open after release should evict the idle holder: %v", err)
	}
	lease2.Release()
	if st := m.Stats(); st.EvictedCap != 1 || st.Live != 1 {
		t.Fatalf("stats after cap turnover: %+v", st)
	}
}

// TestDeleteWhileLeased pins the doomed-entry contract: DELETE during
// an in-flight lease removes the handle immediately but closes the
// session only on the final release.
func TestDeleteWhileLeased(t *testing.T) {
	s := newDaemon(t, Config{SweepEvery: time.Hour})
	m := s.Manager()
	ctx := context.Background()

	lease, resp, err := m.OpenOrAttach(ctx, &OpenSessionRequest{Design: "c17", Client: "x", Bins: 120})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(resp.SessionID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(resp.SessionID); err != ErrNoSession {
		t.Fatalf("acquire after delete: %v", err)
	}
	// The lease still works: the session must not close under it.
	if _, err := lease.Session().WhatIfBatch(ctx, []statsize.Candidate{{Gate: 0, Width: 1.5}}); err != nil {
		t.Fatalf("what-if on doomed-but-leased session: %v", err)
	}
	lease.Release()
	// Now it is closed.
	if _, err := lease.Session().TotalWidth(); err != statsize.ErrSessionClosed {
		t.Fatalf("session after final release: %v, want ErrSessionClosed", err)
	}
}

// TestHealthz pins both health states: ok while serving, draining (503)
// once shutdown has begun.
func TestHealthz(t *testing.T) {
	eng, err := statsize.New()
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, Config{Logf: noLog})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz while serving: %d", rec.Code)
	}
	var h HealthResponse
	mustUnmarshal(t, rec.Body.Bytes(), &h)
	if h.Status != "ok" || h.GoDesign != "statsized" {
		t.Fatalf("healthz body: %+v", h)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", rec.Code)
	}
	mustUnmarshal(t, rec.Body.Bytes(), &h)
	if h.Status != "draining" {
		t.Fatalf("healthz body while draining: %+v", h)
	}
}

// TestRecoverMiddleware pins the panic fence: a handler panic becomes a
// 500 envelope, not a dead connection; the net/http abort sentinel
// passes through.
func TestRecoverMiddleware(t *testing.T) {
	h := recoverMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic status %d, want 500", rec.Code)
	}
	if code := errorCode(t, rec.Body.Bytes()); code != "internal_panic" {
		t.Fatalf("panic code %q", code)
	}

	abort := recoverMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler swallowed by the middleware")
		}
	}()
	abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}

// TestValidateWhatIfCap pins the candidate-count cap (hit below the
// HTTP body cap so the size fence has two layers).
func TestValidateWhatIfCap(t *testing.T) {
	req := &WhatIfRequest{Candidates: make([]CandidateWire, MaxCandidates+1)}
	for i := range req.Candidates {
		req.Candidates[i] = CandidateWire{Gate: int64(i), Width: 1}
	}
	if _, err := validateWhatIf(req); err == nil || err.Code != "too_many_candidates" {
		t.Fatalf("oversized batch: %v", err)
	}
}

// TestParseObjective pins the wire objective grammar.
func TestParseObjective(t *testing.T) {
	for _, tc := range []struct {
		in   string
		ok   bool
		name string
	}{
		{"", true, ""},
		{"mean", true, "mean"},
		{"p99", true, "p99"},
		{"p99.9", true, "p99.9"},
		{"p0", false, ""},
		{"p100", false, ""},
		{"median", false, ""},
		{"p", false, ""},
		{"pNaN", false, ""},
	} {
		obj, err := parseObjective(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseObjective(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && tc.in != "" && obj == nil {
			t.Errorf("parseObjective(%q) returned nil objective", tc.in)
		}
	}
}

// TestSanitizeID pins the session id suffix rules.
func TestSanitizeID(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"c1908", "c1908"},
		{"My Design!", "my-design-"},
		{"", "design"},
		{strings.Repeat("a", 100), strings.Repeat("a", 24)},
	} {
		if got := sanitizeID(tc.in); got != tc.want {
			t.Errorf("sanitizeID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestStatsEndpoint pins the /stats shape: the engine rollup and the
// pool accounting move when traffic flows.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newHTTP(t, Config{})
	sess := openSession(t, ts.URL, &OpenSessionRequest{Design: "c17", Client: "stats", Bins: 120})
	base := ts.URL + "/v1/sessions/" + sess.SessionID
	g, w := int64(0), 2.0
	for i := 0; i < 3; i++ {
		if status, body := postJSON(t, base+"/whatif", &WhatIfRequest{Gate: &g, Width: &w}); status != http.StatusOK {
			t.Fatalf("whatif %d: %d %s", i, status, body)
		}
	}
	status, body := getJSON(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	var st StatsResponse
	mustUnmarshal(t, body, &st)
	if st.Engine.WhatIfsServed < 3 {
		t.Fatalf("what-ifs served %d, want >= 3", st.Engine.WhatIfsServed)
	}
	if st.Sessions.Live != 1 || st.Sessions.Opened != 1 {
		t.Fatalf("pool stats: %+v", st.Sessions)
	}
	if st.Engine.SessionsLive != 1 {
		t.Fatalf("engine live sessions %d, want 1", st.Engine.SessionsLive)
	}
}

// TestMethodNotAllowed pins the mux's method discipline.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newHTTP(t, Config{})
	status, _ := getJSON(t, ts.URL+"/v1/sessions")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sessions: %d, want 405", status)
	}
	resp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: %d, want 405", resp.StatusCode)
	}
}
