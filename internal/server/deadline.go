package server

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// parseDeadline reads the X-Deadline-Ms header: the client's remaining
// budget for this request in milliseconds. Absent means no deadline
// (the server max still applies when configured). A budget that is
// already spent (<= 0) is rejected here, before any work — the session
// lock is too expensive a place to discover the client stopped caring.
func parseDeadline(r *http.Request, max time.Duration) (time.Duration, *apiError) {
	h := r.Header.Get(HeaderDeadlineMs)
	if h == "" {
		return max, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil {
		return 0, badRequest("bad_deadline", "%s %q is not an integer millisecond count", HeaderDeadlineMs, h)
	}
	if ms <= 0 {
		return 0, &apiError{
			Status: http.StatusRequestTimeout, Code: CodeDeadlineExpired,
			Message: "request deadline already expired on arrival; nothing was attempted",
		}
	}
	d := time.Duration(ms) * time.Millisecond
	if max > 0 && d > max {
		d = max // the server's ceiling wins; the client learns via 504 timing
	}
	return d, nil
}

// withDeadline threads the per-request deadline into the handler
// context so the Engine's partial-result cancellation actually fires:
// an expiring what-if batch or resize observes ctx.Done inside the
// propagation loops (the ctxflow contract) and unwinds all-or-nothing.
// Runs before admission so time spent queued burns the same budget.
func (s *Server) withDeadline(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d, aerr := parseDeadline(r, s.cfg.MaxDeadline)
		if aerr != nil {
			writeError(w, aerr)
			return
		}
		if d <= 0 {
			next(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}
