package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"statsize"
)

// sseWriter frames server-sent events. The grammar is deliberately
// tiny and documented in DESIGN.md "Service layer":
//
//	event: start   data: StartEvent        — once, before the run
//	event: iter    data: core.IterRecord   — per sizing iteration, in
//	                                         its stable JSON encoding
//	event: done    data: DoneEvent         — once, terminal
//
// Iteration events carry an SSE id field with the iteration number so
// a client can tell where a broken stream stopped (the daemon does not
// resume streams; the id is diagnostic).
type sseWriter struct {
	w      http.ResponseWriter
	flush  func()
	failed bool // a write failed (client gone); subsequent writes no-op
}

func newSSEWriter(w http.ResponseWriter) *sseWriter {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	sw := &sseWriter{w: w, flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		sw.flush = f.Flush
	}
	return sw
}

// event writes one frame; id < 0 omits the id field. Write errors mark
// the writer failed — the caller keeps draining its producer (bounded
// by cancellation) but stops touching the dead connection.
func (sw *sseWriter) event(name string, id int, payload any) {
	if sw.failed {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		// Payloads are our own wire structs; a marshal failure is a
		// programming error, but a broken stream must not panic the
		// daemon mid-response.
		sw.failed = true
		return
	}
	if id >= 0 {
		if _, err := fmt.Fprintf(sw.w, "id: %d\n", id); err != nil {
			sw.failed = true
			return
		}
	}
	if _, err := fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		sw.failed = true
		return
	}
	sw.flush()
}

// streamOptimize runs the named optimizer on the leased session and
// streams progress. The run context is the request context bounded by
// the server's stream context, so both a departing client and a daemon
// shutdown cancel the optimizer between iterations (the ctxflow
// contract bounds that latency to one unit of work); the terminal done
// event then reports the partial run with Canceled set.
func (s *Server) streamOptimize(w http.ResponseWriter, r *http.Request, lease *Lease, req *OptimizeRequest) {
	sess := lease.Session()

	// The pre-run state for the start event. Another lease holder could
	// mutate between these queries and the run; that is the documented
	// cost of pooled sessions, and single-writer clients (the load
	// generator, the golden replay test) see exact values.
	initObj, err := sess.Objective()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}
	initW, err := sess.TotalWidth()
	if err != nil {
		writeError(w, sessionErr(err))
		return
	}

	runCtx, cancel := mergeDone(r.Context(), s.streamCtx)
	defer cancel()

	sw := newSSEWriter(w)
	sw.event("start", -1, &StartEvent{
		SessionID:        lease.ID(),
		Design:           lease.Design(),
		Optimizer:        req.Optimizer,
		Objective:        lease.ObjectiveName(),
		InitialObjective: initObj,
		InitialWidth:     initW,
	})

	events := make(chan statsize.IterRecord, 16)
	type outcome struct {
		res *statsize.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		opts := []statsize.RunOption{
			statsize.OnIteration(func(rec statsize.IterRecord) {
				select {
				case events <- rec:
				case <-runCtx.Done():
				}
			}),
		}
		if req.MaxIterations > 0 {
			opts = append(opts, statsize.MaxIterations(req.MaxIterations))
		}
		if req.MaxAreaIncrease > 0 {
			opts = append(opts, statsize.MaxAreaIncrease(req.MaxAreaIncrease))
		}
		if req.MultiSize > 0 {
			opts = append(opts, statsize.MultiSize(req.MultiSize))
		}
		if obj := lease.Objective(); obj != nil {
			opts = append(opts, statsize.ForObjective(obj))
		}
		res, err := s.eng.OptimizeSession(runCtx, sess, req.Optimizer, opts...)
		close(events)
		done <- outcome{res: res, err: err}
	}()

drain:
	for {
		select {
		case rec, ok := <-events:
			if !ok {
				break drain
			}
			sw.event("iter", rec.Iter, rec)
		case <-runCtx.Done():
			// Stop forwarding; the optimizer observes the same context
			// and returns shortly with its partial result.
			break drain
		}
	}
	out := <-done

	ev := DoneEvent{Canceled: errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded)}
	if out.err != nil && !ev.Canceled {
		ev.Error = out.err.Error()
	} else if ev.Canceled {
		ev.Error = "run canceled"
	}
	if res := out.res; res != nil {
		ev.Iterations = res.Iterations
		ev.FinalObjective = res.FinalObjective
		ev.FinalWidth = res.FinalWidth
		ev.ImprovementPct = res.Improvement()
		ev.AreaIncreasePct = res.AreaIncrease()
		ev.ElapsedNS = res.Elapsed.Nanoseconds()
	}
	sw.event("done", -1, &ev)
}

// mergeDone derives a context canceled when either parent is: the
// child of a, with an AfterFunc watcher propagating b's cancellation.
func mergeDone(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}
