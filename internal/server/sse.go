package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// sseWriter frames server-sent events. The grammar is deliberately
// tiny and documented in DESIGN.md "Service layer":
//
//	event: start   data: StartEvent        — once, before the run
//	event: iter    data: core.IterRecord   — per sizing iteration, in
//	                                         its stable JSON encoding
//	event: done    data: DoneEvent         — once, terminal
//
// Iteration events carry an SSE id field with the iteration number so
// a broken stream can resume: the client reconnects with X-Run-Id and
// Last-Event-ID and replay continues after that iteration.
//
// Every frame is written under a per-event write deadline: a reader
// that stalls (dead TCP peer, saturated proxy) fails the write within
// the budget instead of blocking the subscriber forever — the failure
// detaches the subscriber, and the run's linger watchdog cancels an
// abandoned run. This is the mechanism that keeps a stalled reader
// from pinning an optimize run and its session lease.
type sseWriter struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	timeout time.Duration // per-event write budget; 0 disables
	flush   func()
	failed  bool // a write failed (client gone); subsequent writes no-op
}

func newSSEWriter(w http.ResponseWriter, timeout time.Duration) *sseWriter {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	sw := &sseWriter{w: w, rc: http.NewResponseController(w), timeout: timeout, flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		sw.flush = f.Flush
	}
	return sw
}

// fail marks the connection dead; every later event call is a no-op.
// Idempotent, so disconnect detection (write error, request context
// cancellation) and the final done emission compose without fuss.
func (sw *sseWriter) fail() { sw.failed = true }

// event writes one frame; id < 0 omits the id field. Write errors mark
// the writer failed — the subscriber loop detaches but stops touching
// the dead connection.
func (sw *sseWriter) event(name string, id int, payload any) {
	if sw.failed {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		// Payloads are our own wire structs; a marshal failure is a
		// programming error, but a broken stream must not panic the
		// daemon mid-response.
		sw.fail()
		return
	}
	if sw.timeout > 0 {
		// Recorders and exotic ResponseWriters may not support write
		// deadlines (ErrNotSupported); the event still goes out, just
		// without the stall bound.
		if err := sw.rc.SetWriteDeadline(time.Now().Add(sw.timeout)); err != nil &&
			!errors.Is(err, http.ErrNotSupported) {
			sw.fail()
			return
		}
	}
	if id >= 0 {
		if _, err := fmt.Fprintf(sw.w, "id: %d\n", id); err != nil {
			sw.fail()
			return
		}
	}
	if _, err := fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		sw.fail()
		return
	}
	sw.flush()
}

// streamRun subscribes one HTTP response to a run's event history:
// replay everything past the cursor, then follow the live run until
// its terminal done event. The subscriber detaches when the client
// goes away — request context canceled or a write failed under its
// deadline — and the deferred detach arms the run's
// cancel-on-disconnect watchdog; the run itself keeps executing
// through the linger window so the client can reconnect and resume.
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request, rn *optRun, cur *runCursor) {
	sw := newSSEWriter(w, s.cfg.SSEWriteTimeout)
	rn.attach()
	defer rn.detach()
	for !sw.failed {
		evs, wait, gap := rn.collect(cur)
		if gap {
			// This subscriber fell behind the history window; only a
			// reconnect (which will see history_gap) can tell it.
			sw.fail()
			break
		}
		terminal := false
		for _, ev := range evs {
			sw.event(ev.name, ev.id, ev.data)
			if ev.name == "done" {
				terminal = true
			}
		}
		if terminal || sw.failed {
			break
		}
		if wait != nil {
			select {
			case <-wait:
			case <-r.Context().Done():
				sw.fail()
			}
		}
	}
}
