package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"statsize"
)

// An optimize run is detached from the HTTP request that started it:
// the optimizer executes in its own goroutine, recording progress into
// a bounded in-memory history, and HTTP streams are subscribers over
// that history. This is what makes the stream fault-tolerant — a
// truncated connection does not kill the run; the client reconnects
// with X-Run-Id and Last-Event-ID and replay resumes after the last
// iteration it received, while a run nobody is watching is canceled
// once the linger grace expires (so a vanished client cannot pin a
// session and its lease forever).
//
// Ownership: the run owns its session lease and its heavy-class
// admission ticket from the moment the launching handler stores them
// into the run's fields until the optimizer goroutine returns, which
// releases both. The recorded history outlives the lease by the linger
// window so a client that lost the tail of the stream can still fetch
// its terminal done event.

// recordedEvent is one SSE frame in a run's history: the name, the SSE
// id (< 0 omits the field), and the payload bytes marshaled exactly
// once so every subscriber — first attach or replay — streams
// identical bytes.
type recordedEvent struct {
	name string
	id   int
	data json.RawMessage
}

// optRun is one detached optimizer run.
type optRun struct {
	id        string
	sessionID string
	linger    time.Duration
	history   int // max retained iter events

	cancel context.CancelFunc // cancels the run context

	lease  *Lease  // owned by the run; released when the optimizer returns
	ticket *ticket // heavy-class admission slot, released with the lease

	mu         sync.Mutex
	start      recordedEvent   // retained for the run's whole lifetime
	iters      []recordedEvent // trailing window of iter events
	totalIters int             // iters ever recorded (ordinals [total-len, total) retained)
	maxDropped int             // highest iter id trimmed out of the window; -1 if none
	doneEv     recordedEvent
	done       bool
	subs       int           // attached streams
	gen        int           // detach generation, for the linger watchdog
	updated    chan struct{} // closed and replaced on every record
}

// runCursor is one subscriber's position in a run's history.
type runCursor struct {
	sentStart bool
	nextOrd   int
	sentDone  bool
}

// record appends one iter event. The optimizer's OnIteration callback
// lands here, so it must never block: append, trim, broadcast.
func (rn *optRun) record(ev recordedEvent) {
	rn.mu.Lock()
	rn.iters = append(rn.iters, ev)
	rn.totalIters++
	if len(rn.iters) > rn.history {
		rn.maxDropped = rn.iters[0].id
		rn.iters = rn.iters[1:]
	}
	rn.broadcastLocked()
	rn.mu.Unlock()
}

// finish records the terminal done event and marks the run complete.
func (rn *optRun) finish(ev recordedEvent) {
	rn.mu.Lock()
	rn.doneEv = ev
	rn.done = true
	rn.broadcastLocked()
	rn.mu.Unlock()
}

func (rn *optRun) broadcastLocked() {
	close(rn.updated)
	rn.updated = make(chan struct{})
}

// attach registers a subscriber.
func (rn *optRun) attach() {
	rn.mu.Lock()
	rn.subs++
	rn.mu.Unlock()
}

// detach drops a subscriber. When the last one leaves an unfinished
// run, a watchdog arms: if nobody reattaches within the linger window,
// the run is canceled — this is the cancel-on-disconnect contract that
// keeps a stalled or vanished reader from pinning the session, while
// still leaving a reconnecting client its resume window.
func (rn *optRun) detach() {
	rn.mu.Lock()
	rn.subs--
	if rn.subs > 0 || rn.done {
		rn.mu.Unlock()
		return
	}
	rn.gen++
	gen := rn.gen
	rn.mu.Unlock()
	time.AfterFunc(rn.linger, func() {
		rn.mu.Lock()
		abandoned := rn.gen == gen && rn.subs == 0 && !rn.done
		rn.mu.Unlock()
		if abandoned {
			rn.cancel()
		}
	})
}

// resume builds a cursor for a reattaching subscriber that last saw
// iteration lastIter; lastIter < 0 (no Last-Event-ID) replays the whole
// run including the start event. Iteration ids start at 0, so 0 means
// "I saw the first iteration", not "replay everything". Fails when the
// requested range was trimmed out of the history window — including a
// full replay of a run whose early iterations are gone.
func (rn *optRun) resume(lastIter int) (*runCursor, *apiError) {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	if lastIter < rn.maxDropped {
		return nil, &apiError{
			Status: http.StatusGone, Code: "history_gap",
			Message: "requested replay point trimmed from the run history window; restart the run",
		}
	}
	if lastIter < 0 {
		return &runCursor{}, nil
	}
	cur := &runCursor{sentStart: true}
	oldest := rn.totalIters - len(rn.iters)
	cur.nextOrd = rn.totalIters
	for i, ev := range rn.iters {
		if ev.id > lastIter {
			cur.nextOrd = oldest + i
			break
		}
	}
	return cur, nil
}

// collect returns every event past cur (advancing it). With nothing
// new and the run unfinished it returns the broadcast channel to wait
// on. A subscriber that fell behind the history window gets gap=true
// and must drop the stream.
func (rn *optRun) collect(cur *runCursor) (evs []recordedEvent, wait <-chan struct{}, gap bool) {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	if !cur.sentStart {
		evs = append(evs, rn.start)
		cur.sentStart = true
	}
	oldest := rn.totalIters - len(rn.iters)
	if cur.nextOrd < oldest {
		return nil, nil, true
	}
	for ord := cur.nextOrd; ord < rn.totalIters; ord++ {
		evs = append(evs, rn.iters[ord-oldest])
	}
	cur.nextOrd = rn.totalIters
	if rn.done && !cur.sentDone {
		evs = append(evs, rn.doneEv)
		cur.sentDone = true
	}
	if len(evs) == 0 && !rn.done {
		wait = rn.updated
	}
	return evs, wait, false
}

// runRegistry tracks at most one run per session: live runs block new
// ones (409 run_active), finished runs linger for reattachment until
// their removal timer fires.
type runRegistry struct {
	mu        sync.Mutex
	bySession map[string]*optRun
	seq       int64
}

func newRunRegistry() *runRegistry {
	return &runRegistry{bySession: make(map[string]*optRun)}
}

// insert claims the session's run slot for rn (assigning its id). A
// still-executing prior run is a conflict; a finished lingering one is
// displaced.
func (rg *runRegistry) insert(rn *optRun) *apiError {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if prior, ok := rg.bySession[rn.sessionID]; ok {
		prior.mu.Lock()
		priorDone := prior.done
		prior.mu.Unlock()
		if !priorDone {
			return &apiError{
				Status: http.StatusConflict, Code: CodeRunActive,
				Message: "an optimize run is already streaming on this session; attach with " + HeaderRunID,
				RunID:   prior.id,
			}
		}
	}
	rg.seq++
	rn.id = fmt.Sprintf("r%06d", rg.seq)
	rg.bySession[rn.sessionID] = rn
	return nil
}

// find resolves a reattach target.
func (rg *runRegistry) find(sessionID, runID string) (*optRun, *apiError) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	rn, ok := rg.bySession[sessionID]
	if !ok || rn.id != runID {
		return nil, &apiError{
			Status: http.StatusNotFound, Code: "no_run",
			Message: "no such optimize run on this session (finished runs are retained only for the linger window)",
		}
	}
	return rn, nil
}

// remove drops rn if it still owns its session's slot.
func (rg *runRegistry) remove(rn *optRun) {
	rg.mu.Lock()
	if rg.bySession[rn.sessionID] == rn {
		delete(rg.bySession, rn.sessionID)
	}
	rg.mu.Unlock()
}

// marshalEvent freezes one event payload into its recorded form.
func marshalEvent(name string, id int, payload any) recordedEvent {
	data, err := json.Marshal(payload)
	if err != nil {
		// Payloads are our own wire structs; this cannot fail on them,
		// and a run must still terminate if it ever does.
		data = []byte(`{"error":"event marshal failed"}`)
	}
	return recordedEvent{name: name, id: id, data: data}
}

// launchRun acquires the session lease, claims the run slot, and
// starts the detached optimizer goroutine. On success the returned
// run owns the lease and the caller's admission ticket; on failure
// ownership of the ticket stays with the caller.
func (s *Server) launchRun(r *http.Request, t *ticket, req *OptimizeRequest) (*optRun, *apiError) {
	lease, err := s.mgr.Acquire(r.PathValue("id"))
	if err != nil {
		return nil, toAPIError(err)
	}
	sess := lease.Session()
	initObj, err := sess.Objective()
	if err != nil {
		lease.Release()
		return nil, sessionErr(err)
	}
	initW, err := sess.TotalWidth()
	if err != nil {
		lease.Release()
		return nil, sessionErr(err)
	}

	rn := &optRun{
		sessionID:  lease.ID(),
		linger:     s.cfg.RunLinger,
		history:    s.cfg.RunHistory,
		maxDropped: -1,
		updated:    make(chan struct{}),
	}
	if aerr := s.runs.insert(rn); aerr != nil {
		lease.Release()
		return nil, aerr
	}
	rn.lease = lease
	rn.ticket = t

	// The run outlives the request: its context derives from the
	// server's stream context (so Shutdown cancels it), bounded by the
	// request's X-Deadline-Ms budget when one was given.
	var runCtx context.Context
	if dl, ok := r.Context().Deadline(); ok {
		runCtx, rn.cancel = context.WithDeadline(s.streamCtx, dl)
	} else {
		runCtx, rn.cancel = context.WithCancel(s.streamCtx)
	}

	rn.start = marshalEvent("start", -1, &StartEvent{
		RunID:            rn.id,
		SessionID:        lease.ID(),
		Design:           lease.Design(),
		Optimizer:        req.Optimizer,
		Objective:        lease.ObjectiveName(),
		InitialObjective: initObj,
		InitialWidth:     initW,
	})

	s.runWG.Add(1)
	go s.executeRun(runCtx, rn, req)
	return rn, nil
}

// executeRun is the detached run body: drive the optimizer, record its
// iterations, finish with the terminal done event, then give back the
// lease and the admission slot. The history lingers for reattachment;
// the registry slot is reclaimed after the linger window.
func (s *Server) executeRun(runCtx context.Context, rn *optRun, req *OptimizeRequest) {
	defer s.runWG.Done()
	defer rn.cancel()

	opts := []statsize.RunOption{
		statsize.OnIteration(func(rec statsize.IterRecord) {
			rn.record(marshalEvent("iter", rec.Iter, rec))
		}),
	}
	if req.MaxIterations > 0 {
		opts = append(opts, statsize.MaxIterations(req.MaxIterations))
	}
	if req.MaxAreaIncrease > 0 {
		opts = append(opts, statsize.MaxAreaIncrease(req.MaxAreaIncrease))
	}
	if req.MultiSize > 0 {
		opts = append(opts, statsize.MultiSize(req.MultiSize))
	}
	if obj := rn.lease.Objective(); obj != nil {
		opts = append(opts, statsize.ForObjective(obj))
	}
	res, err := s.eng.OptimizeSession(runCtx, rn.lease.Session(), req.Optimizer, opts...)

	ev := DoneEvent{Canceled: errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)}
	if err != nil && !ev.Canceled {
		ev.Error = err.Error()
	} else if ev.Canceled {
		ev.Error = "run canceled"
	}
	if res != nil {
		ev.Iterations = res.Iterations
		ev.FinalObjective = res.FinalObjective
		ev.FinalWidth = res.FinalWidth
		ev.ImprovementPct = res.Improvement()
		ev.AreaIncreasePct = res.AreaIncrease()
		ev.ElapsedNS = res.Elapsed.Nanoseconds()
	}
	rn.finish(marshalEvent("done", -1, &ev))

	rn.lease.Release()
	rn.ticket.release()
	time.AfterFunc(rn.linger, func() { s.runs.remove(rn) })
}
