package server

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"
)

// Work classes for admission control. The daemon serves two very
// different request shapes: cheap incremental queries (what-if, resize,
// checkpoint/rollback, metadata) that finish in milliseconds, and
// expensive work (session opens paying a fresh SSTA pass, analyze with
// percentile sweeps, optimizer runs) that holds a session for seconds
// to minutes. One shared limit would let either class starve the
// other, so each gets its own weighted semaphore and bounded queue.
type workClass int

const (
	classQuery workClass = iota
	classHeavy
	numClasses
)

func (c workClass) String() string {
	if c == classHeavy {
		return "heavy"
	}
	return "query"
}

// admitClass is one work class's semaphore plus queue accounting. The
// slots channel is the semaphore (capacity = the class weight); queued
// counts waiters parked on it, bounded by maxQueue. All fields are
// channels or atomics — acquire runs on every request and must not
// serialize the classes against each other.
type admitClass struct {
	name      string
	slots     chan struct{}
	maxQueue  int64
	queueWait time.Duration

	queued    atomic.Int64
	inFlight  atomic.Int64
	admitted  atomic.Int64
	shed      atomic.Int64
	serviceNs atomic.Int64 // EWMA of observed service time, for Retry-After
}

// admission is the daemon's load shedder: a fixed set of work classes,
// each admitting up to its weight concurrently and parking a short
// bounded queue beyond that. Overflow — queue full or queue wait
// exhausted — is shed immediately with a computed Retry-After, so under
// overload rejections stay fast while admitted work keeps its latency.
type admission struct {
	enabled   bool
	draining  func() bool // reports shutdown; shed everything with CodeDraining
	drainHint time.Duration
	classes   [numClasses]*admitClass
}

func newAdmission(cfg Config, draining func() bool) *admission {
	a := &admission{
		enabled:   !cfg.DisableAdmission,
		draining:  draining,
		drainHint: cfg.DrainTimeout,
	}
	mk := func(name string, slots, queue int) *admitClass {
		return &admitClass{
			name:      name,
			slots:     make(chan struct{}, slots),
			maxQueue:  int64(queue),
			queueWait: cfg.QueueWait,
		}
	}
	a.classes[classQuery] = mk("query", cfg.QuerySlots, cfg.QueryQueue)
	a.classes[classHeavy] = mk("heavy", cfg.HeavySlots, cfg.HeavyQueue)
	return a
}

// ticket is one admitted request's slot. Exactly one release per
// ticket; the sync is a CAS so a handler that transfers the ticket to a
// detached run and a deferred release cannot double-free the slot.
type ticket struct {
	c        *admitClass
	start    time.Time
	released atomic.Bool
}

// release frees the slot and folds the observed service time into the
// class EWMA that prices Retry-After. Idempotent.
func (t *ticket) release() {
	if t == nil || !t.released.CompareAndSwap(false, true) {
		return
	}
	t.c.observe(time.Since(t.start))
	t.c.inFlight.Add(-1)
	<-t.c.slots
}

// observe folds one service time into the EWMA (alpha = 1/8, integer
// arithmetic on nanoseconds; a lossy race between concurrent updates
// only blurs a heuristic).
func (c *admitClass) observe(d time.Duration) {
	old := c.serviceNs.Load()
	if old == 0 {
		c.serviceNs.Store(int64(d))
		return
	}
	c.serviceNs.Store(old + (int64(d)-old)/8)
}

// retryAfter estimates when a slot should free up: the current backlog
// (queue plus one for the caller) times the EWMA service time, spread
// over the class's slots. Clamped to [1s, 60s] — it is a hint, not a
// promise.
func (c *admitClass) retryAfter() time.Duration {
	svc := time.Duration(c.serviceNs.Load())
	if svc <= 0 {
		svc = 50 * time.Millisecond
	}
	backlog := c.queued.Load() + 1
	est := time.Duration(backlog) * svc / time.Duration(cap(c.slots))
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// acquire admits one request in class cl, blocking in the bounded
// admission queue for at most the configured wait (and never past the
// request's deadline). On success the caller owns the returned ticket
// and must release it exactly once. On rejection the apiError carries
// the cause-specific code and Retry-After.
func (a *admission) acquire(ctx context.Context, cl workClass) (*ticket, *apiError) {
	if a.draining() {
		return nil, &apiError{
			Status: http.StatusServiceUnavailable, Code: CodeDraining,
			Message:     "daemon is draining; retry against another replica",
			RetryAfterS: retryAfterSeconds(a.drainHint),
		}
	}
	if !a.enabled {
		return nil, nil
	}
	c := a.classes[cl]
	select {
	case c.slots <- struct{}{}:
		return c.admitLocked(), nil
	default:
	}
	// Slots are full: join the bounded queue, or shed.
	if q := c.queued.Add(1); q > c.maxQueue {
		c.queued.Add(-1)
		return nil, c.shedError("admission queue full")
	}
	defer c.queued.Add(-1)
	wait := time.NewTimer(c.queueWait)
	defer wait.Stop()
	select {
	case c.slots <- struct{}{}:
		return c.admitLocked(), nil
	case <-wait.C:
		return nil, c.shedError("admission queue wait exhausted")
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, &apiError{
				Status: http.StatusGatewayTimeout, Code: CodeDeadlineExpired,
				Message: "request deadline expired while queued for admission",
			}
		}
		return nil, &apiError{Status: statusClientGone, Code: "canceled",
			Message: "client went away while queued for admission"}
	}
}

// admitLocked finishes an acquire that already holds a slot.
func (c *admitClass) admitLocked() *ticket {
	c.inFlight.Add(1)
	c.admitted.Add(1)
	return &ticket{c: c, start: time.Now()}
}

// shedError builds the 429 overload rejection for class c.
func (c *admitClass) shedError(why string) *apiError {
	c.shed.Add(1)
	return &apiError{
		Status: http.StatusTooManyRequests, Code: CodeShed,
		Message:     c.name + " class overloaded: " + why,
		RetryAfterS: retryAfterSeconds(c.retryAfter()),
	}
}

// health snapshots the controller for /healthz.
func (a *admission) health() *AdmissionHealth {
	h := &AdmissionHealth{Enabled: a.enabled}
	if !a.enabled {
		return h
	}
	h.Classes = make(map[string]ClassHealth, numClasses)
	for _, c := range a.classes {
		h.Classes[c.name] = ClassHealth{
			InFlight: int(c.inFlight.Load()),
			Slots:    cap(c.slots),
			Queued:   int(c.queued.Load()),
			Queue:    int(c.maxQueue),
			Admitted: c.admitted.Load(),
			Shed:     c.shed.Load(),
		}
	}
	return h
}

// statusClientGone is the non-standard 499 nginx popularized for
// "client closed request": the response is never read, but the access
// log should not call an abandoned request a server error.
const statusClientGone = 499

// admit wraps next with admission control for class cl. The ticket is
// released when the handler returns; handlers that outlive their
// request (detached optimize runs) take ownership explicitly instead of
// going through this wrapper.
func (s *Server) admit(cl workClass, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, aerr := s.adm.acquire(r.Context(), cl)
		if aerr != nil {
			writeError(w, aerr)
			return
		}
		defer t.release()
		next(w, r)
	}
}
