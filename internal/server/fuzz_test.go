package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"statsize"
)

// fuzzEnv is the shared daemon the decoder fuzzers drive: one engine,
// one pre-opened c17 session. Shared across fuzz iterations (an engine
// per input would dominate the run) and guarded for the parallel fuzz
// workers by being internally concurrency-safe.
var (
	fuzzOnce sync.Once
	fuzzTS   *httptest.Server
	fuzzSess string
)

func fuzzEnv(t testing.TB) (base, sessID string) {
	fuzzOnce.Do(func() {
		eng, err := statsize.New()
		if err != nil {
			t.Fatal(err)
		}
		s := New(eng, Config{
			MaxSessions:  4,
			MaxBodyBytes: 8 << 10, // small cap so oversized inputs 413 cheaply
			SweepEvery:   time.Hour,
			Logf:         noLog,
		})
		fuzzTS = httptest.NewServer(s.Handler())
		resp := openSession(t, fuzzTS.URL, &OpenSessionRequest{Design: "c17", Client: "fuzz-pinned", Bins: 120})
		fuzzSess = resp.SessionID
	})
	return fuzzTS.URL, fuzzSess
}

// FuzzRequestDecoders throws arbitrary bytes at every JSON-decoding
// endpoint. The contract under fuzz: the daemon answers — a 2xx for
// inputs that happen to be valid, a 4xx for everything else — and never
// panics. A panic would surface as the recover middleware's 500
// "internal_panic", so any >=500 status fails the target.
func FuzzRequestDecoders(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"design":"c17"}`,
		`{"design":"c17","bins":400,"objective":"p99"}`,
		`{"design":"c17","objective":"p-1e308"}`,
		`{"gate":0,"width":2}`,
		`{"gate":-9223372036854775808,"width":1e309}`,
		`{"candidates":[{"gate":0,"width":1.5},{"gate":1,"width":2}]}`,
		`{"candidates":[{"gate":184467440737095516,"width":-0}]}`,
		`{"percentiles":[0.5,0.99]}`,
		`{"percentiles":[0,1,0.5]}`,
		`{"optimizer":"deterministic","max_iterations":1}`,
		`{"optimizer":"../../../etc/passwd"}`,
		`{"design":`,
		`{"design":"c17"} trailing`,
		`{"design":"c17","bench":"INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n"}`,
		strings.Repeat(`[`, 5000),
		`{"width":` + strings.Repeat("9", 400) + `}`,
		"\x00\xff\xfe garbage",
		`{"a":` + strings.Repeat(`{"a":`, 200) + `1` + strings.Repeat(`}`, 201),
	}
	for ep := 0; ep < 5; ep++ {
		for _, s := range seeds {
			f.Add(uint8(ep), []byte(s))
		}
	}
	f.Fuzz(func(t *testing.T, which uint8, body []byte) {
		base, sess := fuzzEnv(t)
		endpoints := []string{
			"/v1/sessions",
			"/v1/sessions/" + sess + "/analyze",
			"/v1/sessions/" + sess + "/whatif",
			"/v1/sessions/" + sess + "/resize",
			"/v1/sessions/" + sess + "/optimize",
		}
		url := base + endpoints[int(which)%len(endpoints)]
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("reading response: %v", err)
		}
		if resp.StatusCode >= 500 {
			t.Fatalf("POST %s with %q: status %d — the daemon must 4xx hostile bodies, never fail",
				url, body, resp.StatusCode)
		}
	})
}
