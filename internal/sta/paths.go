package sta

import (
	"container/heap"

	"statsize/internal/graph"
)

// Path is one source-to-sink path with its nominal delay.
type Path struct {
	Edges []graph.EdgeID
	Delay float64
}

// TopPaths enumerates the k longest source-to-sink paths in descending
// delay order using best-first search with an exact suffix bound: a
// partial path from the source is expanded in order of
// (delay so far + longest remaining suffix), so paths pop in exact rank
// order and the search touches only what the top k require. This powers
// timing reports and the near-critical-path analyses around Figure 1.
func (r *Result) TopPaths(k int) []Path {
	if k <= 0 {
		return nil
	}
	g := r.d.E.G
	// suffix[n] = longest delay from n to the sink.
	suffix := make([]float64, g.NumNodes())
	topo := g.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		for _, eid := range g.Out(n) {
			e := g.EdgeAt(eid)
			if t := r.d.EdgeNominalDelay(eid) + suffix[e.To]; t > suffix[n] {
				suffix[n] = t
			}
		}
	}
	h := &partialHeap{}
	heap.Push(h, &partial{node: g.Source(), bound: suffix[g.Source()]})
	var out []Path
	for h.Len() > 0 && len(out) < k {
		p := heap.Pop(h).(*partial)
		if p.node == g.Sink() {
			out = append(out, Path{Edges: p.edges(), Delay: p.delay})
			continue
		}
		for _, eid := range g.Out(p.node) {
			e := g.EdgeAt(eid)
			d := p.delay + r.d.EdgeNominalDelay(eid)
			heap.Push(h, &partial{
				node:  e.To,
				delay: d,
				bound: d + suffix[e.To],
				edge:  eid,
				prev:  p,
			})
		}
	}
	return out
}

// partial is a prefix path stored as a parent chain to avoid slice
// copies during search.
type partial struct {
	node    graph.NodeID
	delay   float64
	bound   float64
	edge    graph.EdgeID
	prev    *partial
	heapIdx int
}

func (p *partial) edges() []graph.EdgeID {
	var rev []graph.EdgeID
	for q := p; q.prev != nil; q = q.prev {
		rev = append(rev, q.edge)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type partialHeap []*partial

func (h partialHeap) Len() int           { return len(h) }
func (h partialHeap) Less(i, j int) bool { return h[i].bound > h[j].bound }
func (h partialHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *partialHeap) Push(x any)        { p := x.(*partial); p.heapIdx = len(*h); *h = append(*h, p) }
func (h *partialHeap) Pop() any          { old := *h; p := old[len(old)-1]; *h = old[:len(old)-1]; return p }
