// Package sta implements deterministic static timing analysis over the
// elaborated timing graph: nominal arrival times, required times and
// slacks, critical-path extraction, and an exact path-delay histogram
// (the path-count distribution of the paper's Figure 1).
//
// The deterministic optimizer baseline of Section 4 is built on this
// package; the statistical engine lives in package ssta.
package sta

import (
	"math"

	"statsize/internal/design"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

// Result holds one deterministic timing analysis.
type Result struct {
	d *design.Design
	// Arrival[n] is the longest-path arrival time at graph node n.
	Arrival []float64
	// Required[n] is the latest arrival at n that keeps the sink at its
	// current time; Required[n] - Arrival[n] is the node slack.
	Required []float64
}

// Analyze runs a full forward and backward pass at the design's current
// widths.
func Analyze(d *design.Design) *Result {
	g := d.E.G
	r := &Result{
		d:        d,
		Arrival:  make([]float64, g.NumNodes()),
		Required: make([]float64, g.NumNodes()),
	}
	topo := g.Topo()
	for _, n := range topo {
		best := 0.0
		for _, eid := range g.In(n) {
			e := g.EdgeAt(eid)
			if t := r.Arrival[e.From] + d.EdgeNominalDelay(eid); t > best {
				best = t
			}
		}
		r.Arrival[n] = best
	}
	for i := range r.Required {
		r.Required[i] = math.Inf(1)
	}
	r.Required[g.Sink()] = r.Arrival[g.Sink()]
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		for _, eid := range g.Out(n) {
			e := g.EdgeAt(eid)
			if t := r.Required[e.To] - d.EdgeNominalDelay(eid); t < r.Required[n] {
				r.Required[n] = t
			}
		}
	}
	return r
}

// CircuitDelay returns the nominal circuit delay (arrival at the sink).
func (r *Result) CircuitDelay() float64 {
	return r.Arrival[r.d.E.G.Sink()]
}

// Slack returns Required - Arrival at a node; zero on the critical path.
func (r *Result) Slack(n graph.NodeID) float64 {
	return r.Required[n] - r.Arrival[n]
}

// CriticalPath backtracks one longest path from the sink to the source,
// returning its edges in source-to-sink order. Ties resolve to the
// lowest edge ID for determinism.
func (r *Result) CriticalPath() []graph.EdgeID {
	g := r.d.E.G
	var rev []graph.EdgeID
	n := g.Sink()
	for n != g.Source() {
		var pick graph.EdgeID = -1
		bestErr := math.Inf(1)
		for _, eid := range g.In(n) {
			e := g.EdgeAt(eid)
			err := math.Abs(r.Arrival[e.From] + r.d.EdgeNominalDelay(eid) - r.Arrival[n])
			if err < bestErr-1e-15 {
				bestErr = err
				pick = eid
			}
		}
		if pick < 0 {
			break // unreachable: every non-source node has fanin
		}
		rev = append(rev, pick)
		n = g.EdgeAt(pick).From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// CriticalGates returns the distinct gates along the critical path in
// path order — the deterministic optimizer's candidate set.
func (r *Result) CriticalGates() []netlist.GateID {
	var out []netlist.GateID
	seen := make(map[netlist.GateID]bool)
	for _, eid := range r.CriticalPath() {
		gid := r.d.E.EdgeGate[eid]
		if gid == netlist.NoGate || seen[gid] {
			continue
		}
		seen[gid] = true
		out = append(out, gid)
	}
	return out
}

// Histogram is a path-count-versus-delay distribution: Counts[i] is the
// (possibly astronomically large, hence float64) number of distinct
// source-to-sink paths whose nominal delay falls in bin i of width Bin
// starting at delay zero.
type Histogram struct {
	Bin    float64
	Counts []float64
}

// NumPaths returns the total path count.
func (h *Histogram) NumPaths() float64 {
	s := 0.0
	for _, c := range h.Counts {
		s += c
	}
	return s
}

// MaxBinDelay returns the left edge of the last occupied bin.
func (h *Histogram) MaxBinDelay() float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return float64(i) * h.Bin
		}
	}
	return 0
}

// CountAtLeast returns the number of paths with delay >= t (the
// near-critical population whose size distinguishes the "wall" of
// Figure 1a from a well-shaped profile).
func (h *Histogram) CountAtLeast(t float64) float64 {
	from := int(math.Ceil(t / h.Bin))
	if from < 0 {
		from = 0
	}
	s := 0.0
	for i := from; i < len(h.Counts); i++ {
		s += h.Counts[i]
	}
	return s
}

// PathHistogram computes the exact path-count distribution by dynamic
// programming over the timing graph: the histogram at a node is the sum
// of its fanin histograms, each shifted by the corresponding edge delay
// (quantized to the bin width). Runs in O(E * bins).
func PathHistogram(d *design.Design, binWidth float64) *Histogram {
	if binWidth <= 0 {
		panic("sta: non-positive histogram bin width")
	}
	g := d.E.G
	per := make([][]float64, g.NumNodes())
	remainingUses := make([]int, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		remainingUses[n] = len(g.Out(graph.NodeID(n)))
	}
	per[g.Source()] = []float64{1} // one empty path at delay 0
	for _, n := range g.Topo() {
		if n == g.Source() {
			continue
		}
		var acc []float64
		for _, eid := range g.In(n) {
			e := g.EdgeAt(eid)
			src := per[e.From]
			off := int(math.Round(d.EdgeNominalDelay(eid) / binWidth))
			if need := len(src) + off; need > len(acc) {
				acc = append(acc, make([]float64, need-len(acc))...)
			}
			for i, c := range src {
				if c != 0 {
					acc[i+off] += c
				}
			}
			remainingUses[e.From]--
			if remainingUses[e.From] == 0 {
				per[e.From] = nil // free early; wide circuits hold many histograms
			}
		}
		per[n] = acc
	}
	return &Histogram{Bin: binWidth, Counts: per[g.Sink()]}
}
