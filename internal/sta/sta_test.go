package sta

import (
	"math"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/design"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

var lib = cell.Default180nm()

func c17Design(t *testing.T) *design.Design {
	t.Helper()
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func genDesign(t *testing.T, name string) *design.Design {
	t.Helper()
	sp, ok := circuitgen.ByName(name)
	if !ok {
		t.Fatalf("unknown circuit %s", name)
	}
	nl, err := circuitgen.Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestArrivalHandComputed(t *testing.T) {
	d := c17Design(t)
	r := Analyze(d)
	g := d.E.G
	// Arrival at each node must equal max over fanins of arrival+delay.
	for _, n := range g.Topo() {
		if n == g.Source() {
			if r.Arrival[n] != 0 {
				t.Fatal("source arrival must be 0")
			}
			continue
		}
		want := 0.0
		for _, eid := range g.In(n) {
			e := g.EdgeAt(eid)
			if v := r.Arrival[e.From] + d.EdgeNominalDelay(eid); v > want {
				want = v
			}
		}
		if math.Abs(r.Arrival[n]-want) > 1e-12 {
			t.Fatalf("arrival(%d) = %v, want %v", n, r.Arrival[n], want)
		}
	}
	if r.CircuitDelay() <= 0 {
		t.Fatal("circuit delay must be positive")
	}
}

func TestSlackNonNegativeAndZeroOnCriticalPath(t *testing.T) {
	d := genDesign(t, "c432")
	r := Analyze(d)
	g := d.E.G
	for n := 0; n < g.NumNodes(); n++ {
		if s := r.Slack(graph.NodeID(n)); s < -1e-9 {
			t.Fatalf("negative slack %v at node %d", s, n)
		}
	}
	for _, eid := range r.CriticalPath() {
		e := g.EdgeAt(eid)
		if s := r.Slack(e.From); s > 1e-9 {
			t.Fatalf("critical path node %d has slack %v", e.From, s)
		}
		if s := r.Slack(e.To); s > 1e-9 {
			t.Fatalf("critical path node %d has slack %v", e.To, s)
		}
	}
}

func TestCriticalPathConnectsSourceToSink(t *testing.T) {
	d := genDesign(t, "c880")
	r := Analyze(d)
	g := d.E.G
	path := r.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	if g.EdgeAt(path[0]).From != g.Source() {
		t.Error("critical path must start at source")
	}
	if g.EdgeAt(path[len(path)-1]).To != g.Sink() {
		t.Error("critical path must end at sink")
	}
	sum := 0.0
	for i, eid := range path {
		if i > 0 && g.EdgeAt(path[i-1]).To != g.EdgeAt(eid).From {
			t.Fatal("critical path edges do not chain")
		}
		sum += d.EdgeNominalDelay(eid)
	}
	if math.Abs(sum-r.CircuitDelay()) > 1e-9 {
		t.Errorf("critical path delay %v != circuit delay %v", sum, r.CircuitDelay())
	}
}

func TestCriticalGatesAreOnPath(t *testing.T) {
	d := genDesign(t, "c432")
	r := Analyze(d)
	gates := r.CriticalGates()
	if len(gates) == 0 {
		t.Fatal("no critical gates")
	}
	seen := map[netlist.GateID]bool{}
	for _, g := range gates {
		if seen[g] {
			t.Fatal("duplicate gate in critical gate list")
		}
		seen[g] = true
	}
}

func TestUpsizingCriticalGateReducesDelay(t *testing.T) {
	d := genDesign(t, "c432")
	r := Analyze(d)
	before := r.CircuitDelay()
	// Upsizing *some* critical gate must reduce the circuit delay; try
	// them in order (a gate whose fanin is also critical may not help).
	improved := false
	for _, gid := range r.CriticalGates() {
		w := d.Width(gid)
		d.SetWidth(gid, w+lib.DeltaW)
		if Analyze(d).CircuitDelay() < before-1e-12 {
			improved = true
			d.SetWidth(gid, w)
			break
		}
		d.SetWidth(gid, w)
	}
	if !improved {
		t.Error("no critical gate improved the circuit delay when upsized")
	}
}

func TestAnalyzeTracksResizes(t *testing.T) {
	d := genDesign(t, "c432")
	before := Analyze(d).CircuitDelay()
	// Upsize every gate: delays drop except loading effects; circuit
	// delay must drop for a uniform upsizing (drive doubles, loads
	// double, intrinsic unchanged... EQ1 keeps effort term constant but
	// PO/wire loads are fixed, so delay decreases).
	for g := 0; g < d.NL.NumGates(); g++ {
		d.SetWidth(netlist.GateID(g), 2.0)
	}
	after := Analyze(d).CircuitDelay()
	if after >= before {
		t.Errorf("uniform 2x upsizing did not reduce delay: %v -> %v", before, after)
	}
}

// enumeratePaths walks every source-to-sink path, returning delays.
func enumeratePaths(d *design.Design) []float64 {
	g := d.E.G
	var out []float64
	var walk func(n graph.NodeID, acc float64)
	walk = func(n graph.NodeID, acc float64) {
		if n == g.Sink() {
			out = append(out, acc)
			return
		}
		for _, eid := range g.Out(n) {
			walk(g.EdgeAt(eid).To, acc+d.EdgeNominalDelay(eid))
		}
	}
	walk(g.Source(), 0)
	return out
}

func TestPathHistogramMatchesEnumeration(t *testing.T) {
	d := c17Design(t)
	h := PathHistogram(d, 0.001)
	paths := enumeratePaths(d)
	if math.Abs(h.NumPaths()-float64(len(paths))) > 1e-9 {
		t.Fatalf("histogram has %v paths, enumeration %d", h.NumPaths(), len(paths))
	}
	// Every enumerated delay must land within quantization distance of an
	// occupied bin: compare sorted max against histogram max bin.
	maxDelay := 0.0
	for _, p := range paths {
		if p > maxDelay {
			maxDelay = p
		}
	}
	if math.Abs(h.MaxBinDelay()-maxDelay) > 0.001*float64(d.E.G.MaxLevel()+1) {
		t.Errorf("histogram max %v vs enumerated max %v", h.MaxBinDelay(), maxDelay)
	}
}

func TestPathHistogramSmallSynthetic(t *testing.T) {
	sp := circuitgen.Spec{Name: "hist", Nodes: 40, Edges: 72, PIs: 6, POs: 4, Depth: 6, Seed: 5}
	nl, err := circuitgen.Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	h := PathHistogram(d, 0.002)
	paths := enumeratePaths(d)
	if math.Abs(h.NumPaths()-float64(len(paths))) > 1e-6 {
		t.Fatalf("histogram %v paths, enumeration %d", h.NumPaths(), len(paths))
	}
	// CountAtLeast at zero covers everything; above max covers nothing.
	if math.Abs(h.CountAtLeast(0)-h.NumPaths()) > 1e-9 {
		t.Error("CountAtLeast(0) must equal total")
	}
	if h.CountAtLeast(h.MaxBinDelay()+1) != 0 {
		t.Error("CountAtLeast beyond max must be 0")
	}
}

func TestPathHistogramLargeCircuitRuns(t *testing.T) {
	d := genDesign(t, "c3540")
	h := PathHistogram(d, Analyze(d).CircuitDelay()/200)
	if h.NumPaths() < float64(d.NL.NumGates()) {
		t.Errorf("c3540 path count %v implausibly small", h.NumPaths())
	}
	if math.IsInf(h.NumPaths(), 0) || math.IsNaN(h.NumPaths()) {
		t.Error("path count overflowed")
	}
}
