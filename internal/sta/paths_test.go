package sta

import (
	"math"
	"sort"
	"testing"

	"statsize/internal/graph"
)

func TestTopPathsOrderedAndValid(t *testing.T) {
	d := genDesign(t, "c432")
	r := Analyze(d)
	const k = 50
	paths := r.TopPaths(k)
	if len(paths) != k {
		t.Fatalf("got %d paths, want %d", len(paths), k)
	}
	g := d.E.G
	prev := math.Inf(1)
	for pi, p := range paths {
		if p.Delay > prev+1e-12 {
			t.Fatalf("path %d out of order: %v after %v", pi, p.Delay, prev)
		}
		prev = p.Delay
		// Validate connectivity and delay.
		if g.EdgeAt(p.Edges[0]).From != g.Source() || g.EdgeAt(p.Edges[len(p.Edges)-1]).To != g.Sink() {
			t.Fatal("path does not span source to sink")
		}
		sum := 0.0
		for i, eid := range p.Edges {
			if i > 0 && g.EdgeAt(p.Edges[i-1]).To != g.EdgeAt(eid).From {
				t.Fatal("path edges do not chain")
			}
			sum += d.EdgeNominalDelay(eid)
		}
		if math.Abs(sum-p.Delay) > 1e-9 {
			t.Fatalf("path delay %v, edges sum to %v", p.Delay, sum)
		}
	}
	// The first path must be the critical path.
	if math.Abs(paths[0].Delay-r.CircuitDelay()) > 1e-9 {
		t.Errorf("top path delay %v != circuit delay %v", paths[0].Delay, r.CircuitDelay())
	}
}

func TestTopPathsMatchesEnumeration(t *testing.T) {
	d := c17Design(t)
	r := Analyze(d)
	all := enumeratePaths(d)
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	got := r.TopPaths(len(all) + 5)
	if len(got) != len(all) {
		t.Fatalf("enumerated %d paths, TopPaths returned %d", len(all), len(got))
	}
	for i := range all {
		if math.Abs(got[i].Delay-all[i]) > 1e-9 {
			t.Fatalf("rank %d: %v vs enumeration %v", i, got[i].Delay, all[i])
		}
	}
	// Paths must be distinct.
	seen := map[string]bool{}
	for _, p := range got {
		key := ""
		for _, e := range p.Edges {
			key += string(rune(e)) + ","
		}
		if seen[key] {
			t.Fatal("duplicate path emitted")
		}
		seen[key] = true
	}
}

func TestTopPathsZeroAndOne(t *testing.T) {
	d := c17Design(t)
	r := Analyze(d)
	if r.TopPaths(0) != nil {
		t.Error("k=0 should return nil")
	}
	one := r.TopPaths(1)
	if len(one) != 1 {
		t.Fatal("k=1 should return exactly one path")
	}
	_ = graph.EdgeID(0)
}
