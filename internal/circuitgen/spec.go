// Package circuitgen deterministically generates levelized, reconvergent
// gate-level netlists whose elaborated timing graphs match requested node
// and edge counts exactly.
//
// The paper evaluates on synthesized ISCAS'85 netlists mapped to a
// commercial 180 nm library; those mapped netlists are not available, so
// this package replicates their *graph statistics* — the node/edge counts
// published in Table 1, the real benchmark PI/PO counts, and logic depths
// of the published magnitudes — with a seeded generator. The optimizer
// and SSTA engine operate purely on the timing graph, so matching its
// size and shape exercises the same code paths and scaling behaviour as
// the original netlists (see DESIGN.md, substitution table).
package circuitgen

import (
	"fmt"

	"statsize/internal/cell"
)

// Spec describes one circuit to generate. Nodes and Edges are timing
// graph counts (nets + source + sink; gate input pins + PI and PO arcs).
type Spec struct {
	Name  string
	Nodes int // timing graph nodes — Table 1 "node" column
	Edges int // timing graph edges — Table 1 "edge" column
	PIs   int // primary inputs (real ISCAS'85 value)
	POs   int // primary outputs (real ISCAS'85 value)
	Depth int // target logic depth in gate levels
	Seed  int64
}

// GoString renders the spec as a self-contained Go composite literal,
// the exchange format of the validation oracle's failure reproducers: a
// corpus failure prints its (minimized) spec in exactly this form, and
// pasting it into a test or cmd/validate -spec regenerates the same
// circuit bit for bit.
func (sp Spec) GoString() string {
	return fmt.Sprintf("circuitgen.Spec{Name: %q, Nodes: %d, Edges: %d, PIs: %d, POs: %d, Depth: %d, Seed: %d}",
		sp.Name, sp.Nodes, sp.Edges, sp.PIs, sp.POs, sp.Depth, sp.Seed)
}

// Gates returns the implied gate count: every non-PI net is driven by
// exactly one gate, and source/sink account for the remaining two nodes.
func (sp Spec) Gates() int { return sp.Nodes - sp.PIs - 2 }

// Pins returns the implied total gate input pin count.
func (sp Spec) Pins() int { return sp.Edges - sp.PIs - sp.POs }

// Validate checks that the spec is realizable with the given library.
func (sp Spec) Validate(lib *cell.Library) error {
	g, p := sp.Gates(), sp.Pins()
	switch {
	case sp.Name == "":
		return fmt.Errorf("circuitgen: empty name")
	case sp.PIs < 2:
		return fmt.Errorf("circuitgen %s: need at least 2 primary inputs", sp.Name)
	case sp.POs < 1:
		return fmt.Errorf("circuitgen %s: need at least 1 primary output", sp.Name)
	case g < sp.Depth:
		return fmt.Errorf("circuitgen %s: %d gates cannot fill depth %d", sp.Name, g, sp.Depth)
	case sp.Depth < 1:
		return fmt.Errorf("circuitgen %s: depth %d", sp.Name, sp.Depth)
	case p < g:
		return fmt.Errorf("circuitgen %s: %d pins cannot give every one of %d gates an input", sp.Name, p, g)
	case p > g*lib.MaxInputs():
		return fmt.Errorf("circuitgen %s: %d pins exceed %d gates at max arity %d", sp.Name, p, g, lib.MaxInputs())
	case sp.POs > g+sp.PIs:
		return fmt.Errorf("circuitgen %s: more POs than nets", sp.Name)
	}
	return nil
}

// ISCAS85 lists the ten benchmark replicas of the paper's Tables 1–2.
// Node and edge counts are copied from Table 1; PI/PO counts are the real
// ISCAS'85 values; depths follow the published logic depths of the
// originals.
var ISCAS85 = []Spec{
	{Name: "c432", Nodes: 214, Edges: 379, PIs: 36, POs: 7, Depth: 17, Seed: 432},
	{Name: "c499", Nodes: 561, Edges: 978, PIs: 41, POs: 32, Depth: 11, Seed: 499},
	{Name: "c880", Nodes: 425, Edges: 804, PIs: 60, POs: 26, Depth: 24, Seed: 880},
	{Name: "c1355", Nodes: 570, Edges: 1071, PIs: 41, POs: 32, Depth: 24, Seed: 1355},
	{Name: "c1908", Nodes: 466, Edges: 858, PIs: 33, POs: 25, Depth: 40, Seed: 1908},
	{Name: "c2670", Nodes: 1059, Edges: 1731, PIs: 233, POs: 140, Depth: 32, Seed: 2670},
	{Name: "c3540", Nodes: 991, Edges: 1972, PIs: 50, POs: 22, Depth: 47, Seed: 3540},
	{Name: "c5315", Nodes: 1806, Edges: 3311, PIs: 178, POs: 123, Depth: 49, Seed: 5315},
	{Name: "c6288", Nodes: 2503, Edges: 4999, PIs: 32, POs: 32, Depth: 100, Seed: 6288},
	{Name: "c7552", Nodes: 2202, Edges: 3945, PIs: 207, POs: 108, Depth: 43, Seed: 7552},
}

// ParseSpec parses the GoString literal form back into a Spec — the
// inverse of Spec.GoString, so a reproducer printed by a failing
// validation run can be handed straight to cmd/validate -spec.
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	_, err := fmt.Sscanf(s,
		"circuitgen.Spec{Name: %q, Nodes: %d, Edges: %d, PIs: %d, POs: %d, Depth: %d, Seed: %d}",
		&sp.Name, &sp.Nodes, &sp.Edges, &sp.PIs, &sp.POs, &sp.Depth, &sp.Seed)
	if err != nil {
		return Spec{}, fmt.Errorf("circuitgen: cannot parse spec literal %q: %w", s, err)
	}
	return sp, nil
}

// ByName finds a benchmark spec.
func ByName(name string) (Spec, bool) {
	for _, sp := range ISCAS85 {
		if sp.Name == name {
			return sp, true
		}
	}
	return Spec{}, false
}

// Names lists the benchmark names in Table 1 order.
func Names() []string {
	out := make([]string, len(ISCAS85))
	for i, sp := range ISCAS85 {
		out[i] = sp.Name
	}
	return out
}
