package circuitgen

import (
	"testing"

	"statsize/internal/cell"
	"statsize/internal/netlist"
)

var lib = cell.Default180nm()

func TestAllBenchmarksMatchTable1Exactly(t *testing.T) {
	for _, sp := range ISCAS85 {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			nl, err := Generate(lib, sp)
			if err != nil {
				t.Fatal(err)
			}
			if nl.TimingNodeCount() != sp.Nodes {
				t.Errorf("nodes = %d, want %d (Table 1)", nl.TimingNodeCount(), sp.Nodes)
			}
			if nl.TimingEdgeCount() != sp.Edges {
				t.Errorf("edges = %d, want %d (Table 1)", nl.TimingEdgeCount(), sp.Edges)
			}
			if nl.NumPIs() != sp.PIs || nl.NumPOs() != sp.POs {
				t.Errorf("PI/PO = %d/%d, want %d/%d", nl.NumPIs(), nl.NumPOs(), sp.PIs, sp.POs)
			}
			e, err := nl.Elaborate()
			if err != nil {
				t.Fatalf("elaboration: %v", err)
			}
			// Logic depth exact: sink level = depth + 2 (source->PI arc
			// and PO->sink arc).
			if got := e.G.MaxLevel(); got != sp.Depth+2 {
				t.Errorf("sink level = %d, want %d", got, sp.Depth+2)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sp, _ := ByName("c432")
	a, err := Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != b.NumGates() {
		t.Fatal("gate counts differ between runs")
	}
	for i := 0; i < a.NumGates(); i++ {
		ga, gb := a.Gate(netlist.GateID(i)), b.Gate(netlist.GateID(i))
		if ga.Kind != gb.Kind || len(ga.Ins) != len(gb.Ins) {
			t.Fatalf("gate %d differs between runs", i)
		}
		for p := range ga.Ins {
			if a.NetName(ga.Ins[p]) != b.NetName(gb.Ins[p]) {
				t.Fatalf("gate %d pin %d wiring differs", i, p)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	sp, _ := ByName("c432")
	a, err := Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	sp.Seed++
	b, err := Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.NumGates() && same; i++ {
		ga, gb := a.Gate(netlist.GateID(i)), b.Gate(netlist.GateID(i))
		if ga.Kind != gb.Kind || len(ga.Ins) != len(gb.Ins) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical gate shapes")
	}
	// Counts must still match the spec exactly.
	if b.TimingNodeCount() != sp.Nodes || b.TimingEdgeCount() != sp.Edges {
		t.Error("reseeded circuit no longer matches Table 1 counts")
	}
}

func TestReconvergence(t *testing.T) {
	// The generator must produce reconvergent fanout (the paper's central
	// structural concern): some net must have fanout >= 2.
	sp, _ := ByName("c880")
	nl, err := Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for n := 0; n < nl.NumNets(); n++ {
		if len(nl.Readers(netlist.NetID(n))) >= 2 {
			multi++
		}
	}
	if multi < nl.NumNets()/20 {
		t.Errorf("only %d of %d nets have fanout >= 2; circuit barely reconverges", multi, nl.NumNets())
	}
}

func TestGateArityMix(t *testing.T) {
	sp, _ := ByName("c3540")
	nl, err := Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < nl.NumGates(); i++ {
		counts[len(nl.Gate(netlist.GateID(i)).Ins)]++
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Errorf("arity mix %v lacks 1- or 2-input gates", counts)
	}
	// Total pins must match the spec.
	pins := 0
	for arity, c := range counts {
		pins += arity * c
	}
	if pins != sp.Pins() {
		t.Errorf("total pins = %d, want %d", pins, sp.Pins())
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("c6288"); !ok {
		t.Error("c6288 missing")
	}
	if _, ok := ByName("c9999"); ok {
		t.Error("phantom circuit resolved")
	}
	if len(Names()) != 10 {
		t.Errorf("suite has %d circuits, want 10", len(Names()))
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Name: "", Nodes: 100, Edges: 150, PIs: 5, POs: 3, Depth: 5, Seed: 1},
		{Name: "x", Nodes: 100, Edges: 150, PIs: 1, POs: 3, Depth: 5, Seed: 1},
		{Name: "x", Nodes: 100, Edges: 150, PIs: 5, POs: 0, Depth: 5, Seed: 1},
		{Name: "x", Nodes: 10, Edges: 150, PIs: 5, POs: 3, Depth: 50, Seed: 1},   // depth > gates
		{Name: "x", Nodes: 100, Edges: 90, PIs: 5, POs: 3, Depth: 5, Seed: 1},    // pins < gates
		{Name: "x", Nodes: 100, Edges: 10000, PIs: 5, POs: 3, Depth: 5, Seed: 1}, // pins > 4*gates
		{Name: "x", Nodes: 100, Edges: 150, PIs: 5, POs: 99, Depth: 5, Seed: 1},  // POs > nets
		{Name: "x", Nodes: 100, Edges: 150, PIs: 5, POs: 3, Depth: 0, Seed: 1},   // depth 0
	}
	for i, sp := range bad {
		if err := sp.Validate(lib); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := Spec{Name: "ok", Nodes: 100, Edges: 160, PIs: 6, POs: 4, Depth: 8, Seed: 7}
	if err := good.Validate(lib); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestSmallCustomSpec(t *testing.T) {
	sp := Spec{Name: "tiny", Nodes: 40, Edges: 70, PIs: 6, POs: 4, Depth: 6, Seed: 11}
	nl, err := Generate(lib, sp)
	if err != nil {
		t.Fatal(err)
	}
	if nl.TimingNodeCount() != sp.Nodes || nl.TimingEdgeCount() != sp.Edges {
		t.Fatalf("tiny circuit counts %d/%d, want %d/%d",
			nl.TimingNodeCount(), nl.TimingEdgeCount(), sp.Nodes, sp.Edges)
	}
	if _, err := nl.Elaborate(); err != nil {
		t.Fatal(err)
	}
}

func TestManySeedsAlwaysValid(t *testing.T) {
	sp := Spec{Name: "fuzz", Nodes: 120, Edges: 220, PIs: 10, POs: 8, Depth: 10}
	for seed := int64(0); seed < 30; seed++ {
		sp.Seed = seed
		nl, err := Generate(lib, sp)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if nl.TimingNodeCount() != sp.Nodes || nl.TimingEdgeCount() != sp.Edges {
			t.Fatalf("seed %d: counts drifted", seed)
		}
		if _, err := nl.Elaborate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
