package circuitgen

import (
	"fmt"
	"math/rand"
	"sort"

	"statsize/internal/cell"
	"statsize/internal/netlist"
)

// Intermediate representation used during generation; the netlist object
// is append-only, so rewiring happens here before emission.
type irGate struct {
	kind  cell.Kind
	level int
	ins   []int // net indices
}

type irNet struct {
	level   int
	readers int
	driver  int // gate index, -1 for PI
	po      bool
}

type gen struct {
	sp    Spec
	lib   *cell.Library
	rng   *rand.Rand
	taper float64 // top-profile thinning strength in (0,1)
	gates []irGate
	nets  []irNet
	byLvl [][]int // net indices per level (level 0 = PIs)
}

// Generate builds the netlist for a spec. The result is deterministic in
// the seed and guaranteed (or an error is returned) to elaborate to a
// timing graph with exactly sp.Nodes nodes and sp.Edges edges, sp.PIs
// primary inputs, sp.POs primary outputs, and logic depth exactly
// sp.Depth.
//
// Random wiring occasionally strands a deep net with no possible
// consumer; such attempts are discarded and regenerated with a derived
// seed and a thinner top profile. The retry walk is itself
// deterministic, so equal specs always yield identical circuits.
func Generate(lib *cell.Library, sp Spec) (*netlist.Netlist, error) {
	if err := sp.Validate(lib); err != nil {
		return nil, err
	}
	seed := sp.Seed
	taper := 0.75
	var lastErr error
	for attempt := 0; attempt < 40; attempt++ {
		nl, err := generateOnce(lib, sp, seed, taper)
		if err == nil {
			return nl, nil
		}
		lastErr = err
		seed = seed*1000003 + 17
		if taper < 0.92 {
			taper += 0.02
		}
	}
	return nil, fmt.Errorf("circuitgen %s: no feasible wiring after retries: %w", sp.Name, lastErr)
}

func generateOnce(lib *cell.Library, sp Spec, seed int64, taper float64) (*netlist.Netlist, error) {
	g := &gen{sp: sp, lib: lib, rng: rand.New(rand.NewSource(seed)), taper: taper}
	g.assignShapes()
	if err := g.wire(); err != nil {
		return nil, err
	}
	if err := g.fixDangling(); err != nil {
		return nil, err
	}
	g.choosePOs()
	nl, err := g.emit()
	if err != nil {
		return nil, err
	}
	if nl.TimingNodeCount() != sp.Nodes || nl.TimingEdgeCount() != sp.Edges {
		return nil, fmt.Errorf("circuitgen %s: generated %d/%d nodes/edges, want %d/%d",
			sp.Name, nl.TimingNodeCount(), nl.TimingEdgeCount(), sp.Nodes, sp.Edges)
	}
	return nl, nil
}

// assignShapes fixes each gate's fanin count and level.
func (g *gen) assignShapes() {
	sp, rng := g.sp, g.rng
	nG, pins, depth := sp.Gates(), sp.Pins(), sp.Depth
	maxIn := g.lib.MaxInputs()

	g.gates = make([]irGate, nG)

	// Levels: one gate pinned to every level so the depth is exact; the
	// rest drawn from a profile that tapers smoothly over the deepest
	// 30%. Monotone narrowing toward the top avoids width cliffs whose
	// outputs would have no consumers, and keeps the number of forced
	// primary outputs (top-level gates) within the PO budget.
	level := make([]int, nG)
	weights := make([]float64, depth+1)
	var wsum float64
	for l := 1; l <= depth; l++ {
		frac := float64(l) / float64(depth)
		w := 1.0
		if frac > 0.7 {
			w = 1 - (frac-0.7)/0.3*g.taper
		}
		weights[l] = w
		wsum += w
	}
	sample := func() int {
		x := rng.Float64() * wsum
		for l := 1; l <= depth; l++ {
			x -= weights[l]
			if x <= 0 {
				return l
			}
		}
		return depth
	}
	perm := rng.Perm(nG)
	for l := 1; l <= depth; l++ {
		level[perm[l-1]] = l
	}
	for i := depth; i < nG; i++ {
		level[perm[i]] = sample()
	}
	// Cap the top level: its outputs can never be consumed and are all
	// forced POs.
	topCap := sp.POs * 2 / 3
	if topCap < 1 {
		topCap = 1
	}
	var top []int
	for i, l := range level {
		if l == depth {
			top = append(top, i)
		}
	}
	// With depth 1 there is no lower level to move a gate to; every
	// gate is a forced PO and the PO-budget check in fixDangling
	// decides feasibility.
	for depth > 1 && len(top) > topCap {
		i := top[len(top)-1]
		top = top[:len(top)-1]
		level[i] = 1 + rng.Intn(depth-1)
	}

	// Fanins: one guaranteed input per gate; extra pins distributed with
	// a bias toward deeper gates so the upper levels have the pin
	// capacity to consume the wide mid-circuit levels below them.
	fanin := make([]int, nG)
	for i := range fanin {
		fanin[i] = 1
	}
	for extra := pins - nG; extra > 0; {
		i := rng.Intn(nG)
		if fanin[i] >= maxIn {
			continue
		}
		if accept := 0.4 + 0.6*float64(level[i])/float64(depth); rng.Float64() > accept {
			continue
		}
		fanin[i]++
		extra--
	}

	for i := range g.gates {
		g.gates[i].level = level[i]
		g.gates[i].ins = make([]int, fanin[i])
		g.gates[i].kind = g.pickKind(fanin[i])
	}
}

// pickKind selects a cell of the given arity with weights resembling
// synthesized netlists (NAND-rich).
func (g *gen) pickKind(fanin int) cell.Kind {
	r := g.rng.Float64()
	switch fanin {
	case 1:
		if r < 0.8 {
			return cell.INV
		}
		return cell.BUF
	case 2:
		switch {
		case r < 0.40:
			return cell.NAND2
		case r < 0.60:
			return cell.NOR2
		case r < 0.72:
			return cell.AND2
		case r < 0.84:
			return cell.OR2
		case r < 0.92:
			return cell.XOR2
		default:
			return cell.XNOR2
		}
	case 3:
		switch {
		case r < 0.45:
			return cell.NAND3
		case r < 0.75:
			return cell.NOR3
		case r < 0.9:
			return cell.AND3
		default:
			return cell.OR3
		}
	default:
		if r < 0.6 {
			return cell.NAND4
		}
		return cell.NOR4
	}
}

// wire connects every gate: pin 0 anchors to a net exactly one level
// below (making the longest-path level exact), remaining pins draw from
// strictly lower levels with a geometric bias toward nearby levels —
// which yields the reconvergent fanout structure the paper's Section 2
// discusses.
//
// Wiring fails (with an error, so Generate's retry walk can redistribute
// levels and fanins under a derived seed) when a gate cannot find enough
// distinct nets below it — e.g. a wide gate landing on level 1 of a
// circuit with fewer primary inputs than the gate has pins.
func (g *gen) wire() error {
	sp, rng := g.sp, g.rng
	g.nets = make([]irNet, 0, sp.PIs+len(g.gates))
	g.byLvl = make([][]int, sp.Depth+1)
	for i := 0; i < sp.PIs; i++ {
		g.byLvl[0] = append(g.byLvl[0], len(g.nets))
		g.nets = append(g.nets, irNet{level: 0, driver: -1})
	}
	// Gate outputs, allocated level by level.
	order := make([]int, len(g.gates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return g.gates[order[a]].level < g.gates[order[b]].level })

	outNet := make([]int, len(g.gates))
	for _, gi := range order {
		L := g.gates[gi].level
		ins := g.gates[gi].ins
		var ok bool
		if ins[0], ok = g.pickNetAt(L-1, ins[:0]); !ok {
			return fmt.Errorf("circuitgen %s: no anchor net below level %d", sp.Name, L)
		}
		for p := 1; p < len(ins); p++ {
			lv := L - 1
			for lv > 0 && rng.Float64() > 0.55 {
				lv--
			}
			if ins[p], ok = g.pickNetAt(lv, ins[:p]); !ok {
				return fmt.Errorf("circuitgen %s: only %d distinct nets below level %d for a %d-input gate",
					sp.Name, p, L, len(ins))
			}
		}
		for _, in := range ins {
			g.nets[in].readers++
		}
		id := len(g.nets)
		outNet[gi] = id
		g.byLvl[L] = append(g.byLvl[L], id)
		g.nets = append(g.nets, irNet{level: L, driver: gi})
	}
	return nil
}

// pickNetAt returns a net at the requested level (walking down if the
// level is empty) that is not already among taken, reporting failure
// when every net at or below the level is taken. Unread nets are
// strongly preferred, mirroring synthesized circuits where nearly every
// net is consumed; this keeps the dangling set close to the PO budget.
func (g *gen) pickNetAt(level int, taken []int) (int, bool) {
	for lv := level; lv >= 0; lv-- {
		cands := g.byLvl[lv]
		if len(cands) == 0 {
			continue
		}
		if g.rng.Float64() < 0.8 {
			var unread []int
			for _, n := range cands {
				if g.nets[n].readers == 0 && !contains(taken, n) {
					unread = append(unread, n)
				}
			}
			if len(unread) > 0 {
				return unread[g.rng.Intn(len(unread))], true
			}
		}
		for try := 0; try < 12; try++ {
			n := cands[g.rng.Intn(len(cands))]
			if !contains(taken, n) {
				return n, true
			}
		}
		for _, n := range cands {
			if !contains(taken, n) {
				return n, true
			}
		}
	}
	return 0, false
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// fixDangling rewires gate inputs until the number of unread nets is at
// most the PO budget. A rewire moves one pin from a multiply-read donor
// net onto the dangling net, preserving all level invariants and pin
// counts; since donors keep at least one reader, rewiring never creates
// new dangles and a single pass suffices.
func (g *gen) fixDangling() error {
	// Consume every unread primary input first — a dangling PI would
	// otherwise become a degenerate PI-to-PO feedthrough.
	for n := range g.nets {
		if g.nets[n].driver == -1 && g.nets[n].readers == 0 {
			g.rewireTo(n) // best effort; failures fall through to phase 2
		}
	}
	var dangling []int
	for n := range g.nets {
		if g.nets[n].readers == 0 {
			dangling = append(dangling, n)
		}
	}
	if len(dangling) <= g.sp.POs {
		return nil
	}
	// Keep the deepest nets as future POs (real observable outputs sit
	// deep in the logic); rewire the shallow excess, which has the most
	// potential consumers.
	sort.Slice(dangling, func(a, b int) bool {
		if g.nets[dangling[a]].level != g.nets[dangling[b]].level {
			return g.nets[dangling[a]].level > g.nets[dangling[b]].level
		}
		return dangling[a] < dangling[b]
	})
	for _, d := range dangling[g.sp.POs:] {
		if !g.rewireTo(d) {
			return fmt.Errorf("circuitgen %s: cannot consume dangling net at level %d (PO budget %d)",
				g.sp.Name, g.nets[d].level, g.sp.POs)
		}
	}
	return nil
}

// rewireTo makes net d read by some gate above its level without
// breaking any invariant: the donor pin's current source must keep at
// least one reader, pin 0 (the level anchor) only accepts nets exactly
// one level below the gate, and no gate reads the same net twice.
func (g *gen) rewireTo(d int) bool {
	dl := g.nets[d].level
	attempt := func(gi, p int) bool {
		gate := &g.gates[gi]
		if gate.level <= dl {
			return false
		}
		if p >= len(gate.ins) {
			return false
		}
		if p == 0 && dl != gate.level-1 {
			return false
		}
		s := gate.ins[p]
		if s == d || g.nets[s].readers < 2 || contains(gate.ins, d) {
			return false
		}
		gate.ins[p] = d
		g.nets[s].readers--
		g.nets[d].readers++
		return true
	}
	for try := 0; try < 600; try++ {
		gi := g.rng.Intn(len(g.gates))
		if attempt(gi, g.rng.Intn(len(g.gates[gi].ins))) {
			return true
		}
	}
	// Deterministic exhaustive fallback.
	for gi := range g.gates {
		for p := range g.gates[gi].ins {
			if attempt(gi, p) {
				return true
			}
		}
	}
	return false
}

// choosePOs marks every remaining unread net as a primary output and
// tops up with the deepest driven nets until exactly sp.POs outputs.
func (g *gen) choosePOs() {
	count := 0
	for n := range g.nets {
		if g.nets[n].readers == 0 {
			g.nets[n].po = true
			count++
		}
	}
	if count >= g.sp.POs {
		return
	}
	// Deepest driven non-PI nets first, mirroring real circuits where
	// observable outputs also fan out internally.
	var cands []int
	for n := range g.nets {
		if !g.nets[n].po && g.nets[n].driver != -1 {
			cands = append(cands, n)
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if g.nets[cands[a]].level != g.nets[cands[b]].level {
			return g.nets[cands[a]].level > g.nets[cands[b]].level
		}
		return cands[a] < cands[b]
	})
	for _, n := range cands {
		if count == g.sp.POs {
			break
		}
		g.nets[n].po = true
		count++
	}
}

// emit converts the IR into a finalized netlist. Net names follow the
// ISCAS convention of bare numbers: PIs first, then gate outputs in
// (level, index) order.
func (g *gen) emit() (*netlist.Netlist, error) {
	nl := netlist.New(g.sp.Name)
	name := make([]string, len(g.nets))
	for n := range g.nets {
		name[n] = fmt.Sprintf("%d", n+1)
	}
	for n := range g.nets {
		if g.nets[n].driver == -1 {
			if _, err := nl.AddPI(name[n]); err != nil {
				return nil, err
			}
		}
	}
	// Gate outputs indexed by driver: emit in net order (already level
	// sorted by construction).
	for n := range g.nets {
		gi := g.nets[n].driver
		if gi == -1 {
			continue
		}
		gate := &g.gates[gi]
		ins := make([]string, len(gate.ins))
		for p, in := range gate.ins {
			ins[p] = name[in]
		}
		if _, err := nl.AddGate(g.lib, gate.kind, name[n], ins...); err != nil {
			return nil, err
		}
	}
	for n := range g.nets {
		if g.nets[n].po {
			if _, err := nl.MarkPO(name[n]); err != nil {
				return nil, err
			}
		}
	}
	if err := nl.Finalize(); err != nil {
		return nil, err
	}
	return nl, nil
}
