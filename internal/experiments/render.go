package experiments

import (
	"fmt"
	"io"
	"math"

	"statsize/internal/dist"
	"statsize/internal/report"
	"statsize/internal/sta"
)

// RenderTable1 writes Table 1 in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	t := report.NewTable(
		"Table 1. Results for the 99-percentile delay point",
		"circuit", "node/edge", "% inc", "deterministic (ns)", "statistical (ns)", "% impr.", "iters (det/stat)")
	var sum float64
	for _, r := range rows {
		t.AddRowStrings(
			r.Circuit,
			fmt.Sprintf("%d/%d", r.Nodes, r.Edges),
			fmt.Sprintf("%.1f", r.AreaIncPct),
			fmt.Sprintf("%.3f", r.Det99),
			fmt.Sprintf("%.3f", r.Stat99),
			fmt.Sprintf("%.2f", r.ImprPct),
			fmt.Sprintf("%d/%d", r.DetIters, r.StatIters),
		)
		sum += r.ImprPct
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if len(rows) > 0 {
		_, err := fmt.Fprintf(w, "average improvement: %.2f%%\n", sum/float64(len(rows)))
		return err
	}
	return nil
}

// Table1CSV writes Table 1 as CSV.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	t := report.NewTable("", "circuit", "nodes", "edges", "area_inc_pct", "det_p99_ns", "stat_p99_ns", "impr_pct", "det_iters", "stat_iters")
	for _, r := range rows {
		t.AddRowStrings(
			r.Circuit,
			fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges),
			fmt.Sprintf("%.4f", r.AreaIncPct),
			fmt.Sprintf("%.6f", r.Det99), fmt.Sprintf("%.6f", r.Stat99),
			fmt.Sprintf("%.4f", r.ImprPct),
			fmt.Sprint(r.DetIters), fmt.Sprint(r.StatIters),
		)
	}
	return t.WriteCSV(w)
}

// RenderTable2 writes Table 2 in the paper's layout.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	t := report.NewTable(
		"Table 2. Results for the runtime improvement",
		"circuit", "brute force (s/iter)", "our algo. (s/iter)", "imp. factor",
		"range of time per iter (s)", "range of impr. factor", "pruned %")
	for _, r := range rows {
		t.AddRowStrings(
			r.Circuit,
			fmt.Sprintf("%.3f", r.BruteAvg.Seconds()),
			fmt.Sprintf("%.3f", r.AccelAvg.Seconds()),
			fmt.Sprintf("%.1f", r.Factor),
			fmt.Sprintf("%.3f-%.3f", r.AccelMin.Seconds(), r.AccelMax.Seconds()),
			fmt.Sprintf("%.1f-%.1f", r.FactorMin, r.FactorMax),
			fmt.Sprintf("%.1f", r.PrunedPct),
		)
	}
	return t.Render(w)
}

// Table2CSV writes Table 2 as CSV.
func Table2CSV(w io.Writer, rows []Table2Row) error {
	t := report.NewTable("", "circuit", "brute_s_per_iter", "accel_s_per_iter", "factor",
		"accel_min_s", "accel_max_s", "factor_min", "factor_max", "pruned_pct", "iterations")
	for _, r := range rows {
		t.AddRowStrings(
			r.Circuit,
			fmt.Sprintf("%.6f", r.BruteAvg.Seconds()),
			fmt.Sprintf("%.6f", r.AccelAvg.Seconds()),
			fmt.Sprintf("%.3f", r.Factor),
			fmt.Sprintf("%.6f", r.AccelMin.Seconds()),
			fmt.Sprintf("%.6f", r.AccelMax.Seconds()),
			fmt.Sprintf("%.3f", r.FactorMin),
			fmt.Sprintf("%.3f", r.FactorMax),
			fmt.Sprintf("%.2f", r.PrunedPct),
			fmt.Sprint(r.Iterations),
		)
	}
	return t.WriteCSV(w)
}

// RenderFigure10 draws the area-delay curves as an ASCII plot plus a
// point table.
func (f *Figure10Result) Render(w io.Writer) error {
	p := report.NewPlot(
		fmt.Sprintf("Figure 10. Area-delay curve for %s", f.Circuit),
		"99%-pt delay (ns)", "total gate size")
	det := report.Series{Name: "deterministic (bounds)", Marker: 'x'}
	detMC := report.Series{Name: "deterministic (Monte Carlo)", Marker: '+'}
	for _, pt := range f.Deterministic {
		det.X = append(det.X, pt.P99Bound)
		det.Y = append(det.Y, pt.Area)
		detMC.X = append(detMC.X, pt.P99MC)
		detMC.Y = append(detMC.Y, pt.Area)
	}
	st := report.Series{Name: "statistical (bounds)", Marker: 'o'}
	stMC := report.Series{Name: "statistical (Monte Carlo)", Marker: '*'}
	for _, pt := range f.Statistical {
		st.X = append(st.X, pt.P99Bound)
		st.Y = append(st.Y, pt.Area)
		stMC.X = append(stMC.X, pt.P99MC)
		stMC.Y = append(stMC.Y, pt.Area)
	}
	p.Add(det)
	p.Add(detMC)
	p.Add(st)
	p.Add(stMC)
	return p.Render(w)
}

// CSV writes the Figure 10 curves as CSV.
func (f *Figure10Result) CSV(w io.Writer) error {
	t := report.NewTable("", "method", "iter", "area", "p99_bound_ns", "p99_mc_ns")
	emit := func(method string, pts []CurvePoint) {
		for _, pt := range pts {
			t.AddRowStrings(method, fmt.Sprint(pt.Iter),
				fmt.Sprintf("%.4f", pt.Area),
				fmt.Sprintf("%.6f", pt.P99Bound),
				fmt.Sprintf("%.6f", pt.P99MC))
		}
	}
	emit("deterministic", f.Deterministic)
	emit("statistical", f.Statistical)
	return t.WriteCSV(w)
}

// Render draws the Figure 1 path-delay profiles.
func (f *Figure1Result) Render(w io.Writer) error {
	p := report.NewPlot(
		fmt.Sprintf("Figure 1a. Path distribution after optimization (%s)", f.Circuit),
		"path delay (ns)", "log10(1+#paths)")
	p.Add(histSeries("deterministic (wall)", 'x', f.DetHist))
	p.Add(histSeries("statistical (unbalanced)", 'o', f.StatHist))
	if err := p.Render(w); err != nil {
		return err
	}
	q := report.NewPlot(
		"Figure 1b. Circuit delay PDFs",
		"delay (ns)", "probability mass")
	q.Add(pdfSeries("deterministic", 'x', f.DetSink))
	q.Add(pdfSeries("statistical", 'o', f.StatSink))
	if err := q.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"paths within 10%% of critical: deterministic %.3g, statistical %.3g (%.1fx fewer)\n",
		f.DetWall, f.StatWall, f.DetWall/maxf(f.StatWall, 1))
	return err
}

// histSeries maps a path histogram to a log-count series (path counts
// span many orders of magnitude).
func histSeries(name string, marker rune, h *sta.Histogram) report.Series {
	s := report.Series{Name: name, Marker: marker}
	for i, c := range h.Counts {
		if c <= 0 {
			continue
		}
		s.X = append(s.X, (float64(i)+0.5)*h.Bin)
		s.Y = append(s.Y, math.Log10(1+c))
	}
	return s
}

// pdfSeries maps a discretized distribution to a (time, mass) series.
func pdfSeries(name string, marker rune, d *dist.Dist) report.Series {
	s := report.Series{Name: name, Marker: marker}
	for k := 0; k < d.NumBins(); k++ {
		m := d.MassAt(k)
		if m <= 0 {
			continue
		}
		s.X = append(s.X, (float64(d.I0()+k)+0.5)*d.DT())
		s.Y = append(s.Y, m)
	}
	return s
}

// RenderFigure2 writes the single-step CDF perturbation illustration.
func (f *Figure2Result) Render(w io.Writer) error {
	p := report.NewPlot(
		fmt.Sprintf("Figure 2. CDF perturbation from sizing gate %d (%s)", f.Gate, f.Circuit),
		"delay (ns)", "cumulative probability")
	before := report.Series{Name: "unperturbed CDF", Marker: 'x'}
	after := report.Series{Name: "perturbed CDF", Marker: 'o'}
	for _, s := range []struct {
		d   *dist.Dist
		ser *report.Series
	}{{f.Unperturbed, &before}, {f.Perturbed, &after}} {
		cum := 0.0
		for k := 0; k < s.d.NumBins(); k++ {
			cum += s.d.MassAt(k)
			s.ser.X = append(s.ser.X, float64(s.d.I0()+k+1)*s.d.DT())
			s.ser.Y = append(s.ser.Y, cum)
		}
	}
	p.Add(before)
	p.Add(after)
	if err := p.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "99-percentile delay: %.4f -> %.4f ns (change %.4f ns)\n",
		f.P99Before, f.P99After, f.P99Before-f.P99After)
	return err
}

// RenderBounds writes the bounds-vs-Monte-Carlo accuracy table.
func RenderBounds(w io.Writer, rows []BoundsRow) error {
	t := report.NewTable(
		"SSTA bound vs Monte Carlo (Section 4 accuracy claim)",
		"circuit", "p50 bound (ns)", "p50 MC (ns)", "p99 bound (ns)", "p99 MC (ns)", "p99 err %")
	for _, r := range rows {
		t.AddRowStrings(r.Circuit,
			fmt.Sprintf("%.4f", r.P50Bound), fmt.Sprintf("%.4f", r.P50MC),
			fmt.Sprintf("%.4f", r.P99Bound), fmt.Sprintf("%.4f", r.P99MC),
			fmt.Sprintf("%.2f", r.P99ErrPct))
	}
	return t.Render(w)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
