package experiments

import (
	"context"
	"fmt"
	"io"

	"statsize/internal/montecarlo"
	"statsize/internal/report"
	"statsize/internal/ssta"
)

// CorrelationRow quantifies the paper's stated limitation (Section 2):
// the independence-based bound does not model spatially correlated
// variation, and positive correlation widens the true delay tail beyond
// it.
type CorrelationRow struct {
	Circuit    string
	SharedFrac float64 // fraction of delay variance shared (global+region)
	P99Bound   float64 // SSTA bound (independence assumption)
	P99MC      float64 // correlated Monte Carlo
	GapPct     float64 // (MC - bound)/bound
}

// CorrelationStudy sweeps the shared-variance fraction on each circuit
// and reports how far the correlated Monte Carlo p99 moves past the
// independence bound.
func CorrelationStudy(ctx context.Context, opts Options, sharedFracs []float64) ([]CorrelationRow, error) {
	opts = opts.withDefaults()
	if len(sharedFracs) == 0 {
		sharedFracs = []float64{0, 0.25, 0.5, 0.75}
	}
	var rows []CorrelationRow
	for _, name := range opts.Circuits {
		opts.progress("correlation: %s", name)
		d, err := buildDesign(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		a, err := ssta.Analyze(ctx, d, d.SuggestDT(opts.Bins))
		if err != nil {
			return nil, err
		}
		bound := a.Percentile(opts.Percentile)
		for _, frac := range sharedFracs {
			m := montecarlo.CorrModel{GlobalFrac: frac * 0.6, RegionFrac: frac * 0.4}
			mc, err := montecarlo.RunCorrelated(ctx, d, opts.MCSamples, opts.Seed+29, m)
			if err != nil {
				return nil, err
			}
			p99 := mc.Percentile(opts.Percentile)
			rows = append(rows, CorrelationRow{
				Circuit:    name,
				SharedFrac: frac,
				P99Bound:   bound,
				P99MC:      p99,
				GapPct:     100 * (p99 - bound) / bound,
			})
		}
	}
	return rows, nil
}

// RenderCorrelation writes the correlation study table.
func RenderCorrelation(w io.Writer, rows []CorrelationRow) error {
	t := report.NewTable(
		"Spatial correlation vs the independence bound (paper Section 2 limitation)",
		"circuit", "shared var", "p99 bound (ns)", "p99 corr-MC (ns)", "MC - bound %")
	for _, r := range rows {
		t.AddRowStrings(r.Circuit,
			fmt.Sprintf("%.0f%%", 100*r.SharedFrac),
			fmt.Sprintf("%.4f", r.P99Bound),
			fmt.Sprintf("%.4f", r.P99MC),
			fmt.Sprintf("%+.2f", r.GapPct))
	}
	return t.Render(w)
}
