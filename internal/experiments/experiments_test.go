package experiments

import (
	"context"
	"strings"
	"testing"
)

// quickOpts keeps experiment tests fast: two small circuits, few
// iterations, few samples.
func quickOpts() Options {
	return Options{
		Circuits:        []string{"c17", "c432"},
		Iterations:      8,
		TimedIterations: 2,
		Bins:            300,
		MCSamples:       400,
		TracePoints:     4,
	}
}

func TestTable1Quick(t *testing.T) {
	rows, err := Table1(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Det99 <= 0 || r.Stat99 <= 0 {
			t.Errorf("%s: non-positive delays", r.Circuit)
		}
		if r.StatIters == 0 || r.DetIters == 0 {
			t.Errorf("%s: zero iterations", r.Circuit)
		}
		if r.AreaIncPct <= 0 {
			t.Errorf("%s: no area added", r.Circuit)
		}
	}
	// c432 row must carry the Table 1 node/edge counts.
	if rows[1].Nodes != 214 || rows[1].Edges != 379 {
		t.Errorf("c432 counts %d/%d, want 214/379", rows[1].Nodes, rows[1].Edges)
	}
	var b strings.Builder
	if err := RenderTable1(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "c432") || !strings.Contains(b.String(), "average improvement") {
		t.Error("render incomplete")
	}
	b.Reset()
	if err := Table1CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "impr_pct") {
		t.Error("CSV incomplete")
	}
}

func TestTable2Quick(t *testing.T) {
	opts := quickOpts()
	opts.Circuits = []string{"c432"}
	rows, err := Table2(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.BruteAvg <= 0 || r.AccelAvg <= 0 {
		t.Fatal("missing timings")
	}
	if r.Factor <= 1 {
		t.Errorf("accelerated not faster than brute force: factor %.2f", r.Factor)
	}
	if r.PrunedPct <= 50 {
		t.Errorf("pruned only %.1f%% of candidates", r.PrunedPct)
	}
	if r.FactorMin > r.Factor || r.Factor > r.FactorMax {
		t.Errorf("factor %v outside its range [%v, %v]", r.Factor, r.FactorMin, r.FactorMax)
	}
	var b strings.Builder
	if err := RenderTable2(&b, rows); err != nil {
		t.Fatal(err)
	}
	if err := Table2CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFigure10Quick(t *testing.T) {
	opts := quickOpts()
	res, err := Figure10(context.Background(), "c432", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deterministic) < 2 || len(res.Statistical) < 2 {
		t.Fatalf("curves too short: %d/%d points", len(res.Deterministic), len(res.Statistical))
	}
	// Area grows monotonically along each curve; the bound tracks MC.
	for _, curve := range [][]CurvePoint{res.Deterministic, res.Statistical} {
		for i := 1; i < len(curve); i++ {
			if curve[i].Area < curve[i-1].Area {
				t.Error("area decreased along curve")
			}
		}
		for _, pt := range curve {
			rel := (pt.P99Bound - pt.P99MC) / pt.P99MC
			if rel < -0.02 || rel > 0.08 {
				t.Errorf("bound vs MC diverged: %.4f vs %.4f", pt.P99Bound, pt.P99MC)
			}
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := res.CSV(&b); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Quick(t *testing.T) {
	opts := quickOpts()
	opts.Iterations = 12
	res, err := Figure1(context.Background(), "c432", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetHist.NumPaths() <= 0 || res.StatHist.NumPaths() <= 0 {
		t.Fatal("empty path histograms")
	}
	if res.DetSink == nil || res.StatSink == nil {
		t.Fatal("missing sink distributions")
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wall") {
		t.Error("Figure 1 render incomplete")
	}
}

func TestFigure2Quick(t *testing.T) {
	res, err := Figure2(context.Background(), "c432", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.P99After >= res.P99Before {
		t.Errorf("sizing did not improve p99: %v -> %v", res.P99Before, res.P99After)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsVsMCQuick(t *testing.T) {
	opts := quickOpts()
	opts.MCSamples = 4000
	rows, err := BoundsVsMC(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Conservative and tight at p99 (the paper reports <1%; sampling
		// noise at 4000 samples warrants slack).
		if r.P99ErrPct < -1.5 {
			t.Errorf("%s: bound below MC by %.2f%%", r.Circuit, -r.P99ErrPct)
		}
		if r.P99ErrPct > 5 {
			t.Errorf("%s: bound loose by %.2f%%", r.Circuit, r.P99ErrPct)
		}
	}
	var b strings.Builder
	if err := RenderBounds(&b, rows); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCircuit(t *testing.T) {
	opts := quickOpts()
	opts.Circuits = []string{"c404"}
	if _, err := Table1(context.Background(), opts); err == nil {
		t.Error("expected unknown-circuit error")
	}
}

func TestFullOptionsProtocol(t *testing.T) {
	f := Full().withDefaults()
	if f.Iterations < 1000 {
		t.Error("full protocol must run the paper's 1000+ iterations")
	}
	if len(f.Circuits) != 10 {
		t.Error("full protocol must cover the whole suite")
	}
}
