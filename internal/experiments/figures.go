package experiments

import (
	"context"
	"fmt"

	"statsize/internal/core"
	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/montecarlo"
	"statsize/internal/ssta"
	"statsize/internal/sta"
)

// CurvePoint is one sample of an area-delay trajectory (Figure 10).
type CurvePoint struct {
	Iter     int
	Area     float64 // total gate size
	P99Bound float64 // 99-percentile via the SSTA bound (ns)
	P99MC    float64 // 99-percentile via Monte Carlo (ns)
}

// Figure10Result carries both optimizers' area-delay curves for one
// circuit (the paper plots c3540).
type Figure10Result struct {
	Circuit       string
	Deterministic []CurvePoint
	Statistical   []CurvePoint
}

// Figure10 traces total gate size versus 99-percentile delay for the
// deterministic and statistical optimizers, evaluating each recorded
// point with both the SSTA bound and Monte Carlo — the two nearly
// coincident markers of the paper's Figure 10.
func Figure10(ctx context.Context, circuit string, opts Options) (*Figure10Result, error) {
	opts = opts.withDefaults()
	stride := opts.Iterations / opts.TracePoints
	if stride < 1 {
		stride = 1
	}
	res := &Figure10Result{Circuit: circuit}

	dDet, err := buildDesign(circuit, opts.Seed)
	if err != nil {
		return nil, err
	}
	opts.progress("figure10: %s deterministic", circuit)
	detPoints, err := traceRun(ctx, dDet, opts, stride, func(cfg core.Config) (*core.Result, error) {
		return runOnSession(ctx, dDet, cfg, core.Deterministic)
	})
	if err != nil {
		return nil, err
	}
	res.Deterministic = detPoints

	dStat, err := buildDesign(circuit, opts.Seed)
	if err != nil {
		return nil, err
	}
	opts.progress("figure10: %s statistical", circuit)
	statPoints, err := traceRun(ctx, dStat, opts, stride, func(cfg core.Config) (*core.Result, error) {
		return runOnSession(ctx, dStat, cfg, core.Accelerated)
	})
	if err != nil {
		return nil, err
	}
	res.Statistical = statPoints
	return res, nil
}

// traceRun runs one optimizer while sampling (area, p99-bound, p99-MC)
// every `stride` iterations, including the initial and final designs.
func traceRun(
	ctx context.Context,
	d *design.Design,
	opts Options,
	stride int,
	run func(core.Config) (*core.Result, error),
) ([]CurvePoint, error) {
	var points []CurvePoint
	var traceErr error
	sample := func(iter int) {
		if traceErr != nil {
			return
		}
		p99, err := percentileOf(ctx, d, opts)
		if err != nil {
			traceErr = err
			return
		}
		mc, err := montecarlo.Run(ctx, d, opts.MCSamples, opts.Seed+int64(iter)+7)
		if err != nil {
			traceErr = err
			return
		}
		points = append(points, CurvePoint{
			Iter:     iter,
			Area:     d.TotalWidth(),
			P99Bound: p99,
			P99MC:    mc.Percentile(opts.Percentile),
		})
	}
	sample(0)
	last := 0
	cfg := core.Config{
		MaxIterations: opts.Iterations,
		Bins:          opts.Bins,
		Objective:     core.Percentile(opts.Percentile),
		OnIteration: func(r core.IterRecord) {
			if (r.Iter+1)%stride == 0 {
				sample(r.Iter + 1)
				last = r.Iter + 1
			}
		},
	}
	res, err := run(cfg)
	if err != nil {
		return nil, err
	}
	if traceErr != nil {
		return nil, traceErr
	}
	if res.Iterations != last {
		sample(res.Iterations)
	}
	return points, nil
}

// Figure1Result carries the path-delay histograms and circuit-delay PDFs
// after deterministic and statistical optimization of one circuit — the
// "wall of critical paths" contrast of Figure 1.
type Figure1Result struct {
	Circuit string
	// Path-count histograms over nominal path delay.
	DetHist, StatHist *sta.Histogram
	// Circuit-delay distributions (SSTA sink PDFs).
	DetSink, StatSink *dist.Dist
	// Near-critical population: paths within 10% of the nominal maximum.
	DetWall, StatWall float64
	DetIters          int
	StatIters         int
}

// Figure1 optimizes a circuit both ways for the same added area and
// reports the resulting path-delay profiles: deterministic optimization
// piles paths against the critical delay (the "wall", Figure 1a) while
// the statistical optimizer keeps the profile unbalanced, which is what
// improves the statistical circuit delay (Figure 1b).
func Figure1(ctx context.Context, circuit string, opts Options) (*Figure1Result, error) {
	opts = opts.withDefaults()
	res := &Figure1Result{Circuit: circuit}

	dDet, err := buildDesign(circuit, opts.Seed)
	if err != nil {
		return nil, err
	}
	opts.progress("figure1: %s deterministic", circuit)
	detRes, err := runOnSession(ctx, dDet, core.Config{MaxIterations: opts.Iterations, Bins: opts.Bins}, core.Deterministic)
	if err != nil {
		return nil, err
	}
	iters := detRes.Iterations
	if iters == 0 {
		iters = opts.Iterations
	}
	dStat, err := buildDesign(circuit, opts.Seed)
	if err != nil {
		return nil, err
	}
	opts.progress("figure1: %s statistical", circuit)
	statRes, err := runOnSession(ctx, dStat, core.Config{
		MaxIterations: iters,
		Bins:          opts.Bins,
		Objective:     core.Percentile(opts.Percentile),
	}, core.Accelerated)
	if err != nil {
		return nil, err
	}
	res.DetIters, res.StatIters = detRes.Iterations, statRes.Iterations

	bin := sta.Analyze(dDet).CircuitDelay() / 120
	res.DetHist = sta.PathHistogram(dDet, bin)
	res.StatHist = sta.PathHistogram(dStat, bin)
	res.DetWall = res.DetHist.CountAtLeast(0.9 * sta.Analyze(dDet).CircuitDelay())
	res.StatWall = res.StatHist.CountAtLeast(0.9 * sta.Analyze(dDet).CircuitDelay())

	aDet, err := ssta.Analyze(ctx, dDet, dDet.SuggestDT(opts.Bins))
	if err != nil {
		return nil, err
	}
	aStat, err := ssta.Analyze(ctx, dStat, dStat.SuggestDT(opts.Bins))
	if err != nil {
		return nil, err
	}
	res.DetSink = aDet.SinkDist()
	res.StatSink = aStat.SinkDist()
	return res, nil
}

// Figure2Result is the CDF perturbation of one sizing step.
type Figure2Result struct {
	Circuit     string
	Gate        int
	Unperturbed *dist.Dist
	Perturbed   *dist.Dist
	P99Before   float64
	P99After    float64
}

// Figure2 reproduces the illustration of the optimization objective: one
// accelerated sizing step is taken and the sink CDF before and after is
// returned, together with the change in the 99-percentile point.
func Figure2(ctx context.Context, circuit string, opts Options) (*Figure2Result, error) {
	opts = opts.withDefaults()
	d, err := buildDesign(circuit, opts.Seed)
	if err != nil {
		return nil, err
	}
	a, err := ssta.Analyze(ctx, d, d.SuggestDT(opts.Bins))
	if err != nil {
		return nil, err
	}
	before := a.SinkDist()
	p99Before := before.Percentile(opts.Percentile)
	res, err := runOnSession(ctx, d, core.Config{
		MaxIterations: 1,
		Bins:          opts.Bins,
		Objective:     core.Percentile(opts.Percentile),
	}, core.Accelerated)
	if err != nil {
		return nil, err
	}
	if res.Iterations == 0 {
		return nil, fmt.Errorf("experiments: %s had no positive-sensitivity gate", circuit)
	}
	a2, err := ssta.Analyze(ctx, d, a.DT)
	if err != nil {
		return nil, err
	}
	return &Figure2Result{
		Circuit:     circuit,
		Gate:        int(res.Records[0].Gates[0]),
		Unperturbed: before,
		Perturbed:   a2.SinkDist(),
		P99Before:   p99Before,
		P99After:    a2.Percentile(opts.Percentile),
	}, nil
}

// BoundsRow compares the SSTA bound with Monte Carlo on one min-sized
// circuit — the Section 4 accuracy claim.
type BoundsRow struct {
	Circuit   string
	P50Bound  float64
	P50MC     float64
	P99Bound  float64
	P99MC     float64
	P99ErrPct float64
}

// BoundsVsMC quantifies the tightness of the arrival-time bound on every
// requested circuit at minimum size.
func BoundsVsMC(ctx context.Context, opts Options) ([]BoundsRow, error) {
	opts = opts.withDefaults()
	var rows []BoundsRow
	for _, name := range opts.Circuits {
		opts.progress("bounds: %s", name)
		d, err := buildDesign(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		a, err := ssta.Analyze(ctx, d, d.SuggestDT(opts.Bins))
		if err != nil {
			return nil, err
		}
		mc, err := montecarlo.Run(ctx, d, opts.MCSamples, opts.Seed+13)
		if err != nil {
			return nil, err
		}
		row := BoundsRow{
			Circuit:  name,
			P50Bound: a.Percentile(0.5),
			P50MC:    mc.Percentile(0.5),
			P99Bound: a.Percentile(0.99),
			P99MC:    mc.Percentile(0.99),
		}
		row.P99ErrPct = 100 * (row.P99Bound - row.P99MC) / row.P99MC
		rows = append(rows, row)
	}
	return rows, nil
}
