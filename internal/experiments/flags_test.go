package experiments

import (
	"context"
	"flag"
	"strings"
	"testing"
)

func TestFlagOptionsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	resolve := FlagOptions(fs)
	if err := fs.Parse([]string{"-quiet"}); err != nil {
		t.Fatal(err)
	}
	o := resolve().withDefaults()
	if o.Iterations != 120 || o.Bins != 600 || o.MCSamples != 4000 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if len(o.Circuits) != 10 {
		t.Errorf("default circuits = %d, want full suite", len(o.Circuits))
	}
	if o.Progress != nil {
		t.Error("-quiet should suppress progress")
	}
}

func TestFlagOptionsFullAndOverrides(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	resolve := FlagOptions(fs)
	args := strings.Fields("-full -circuits c432,c880 -iters 42 -timed-iters 7 -bins 512 -samples 999 -trace-points 9 -seed 5 -quiet")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	o := resolve()
	if o.Iterations != 42 || o.TimedIterations != 7 || o.Bins != 512 ||
		o.MCSamples != 999 || o.TracePoints != 9 || o.Seed != 5 {
		t.Errorf("overrides not honored: %+v", o)
	}
	if len(o.Circuits) != 2 || o.Circuits[0] != "c432" || o.Circuits[1] != "c880" {
		t.Errorf("circuit list = %v", o.Circuits)
	}
}

func TestCorrelationStudyQuick(t *testing.T) {
	opts := quickOpts()
	opts.Circuits = []string{"c17"}
	opts.MCSamples = 3000
	rows, err := CorrelationStudy(context.Background(), opts, []float64{0, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Stronger correlation widens the tail: the gap row at 0.6 shared
	// variance must exceed the independent row.
	if rows[1].P99MC <= rows[0].P99MC {
		t.Errorf("correlated p99 %v not above independent %v", rows[1].P99MC, rows[0].P99MC)
	}
	var b strings.Builder
	if err := RenderCorrelation(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "independence bound") {
		t.Error("render incomplete")
	}
}
