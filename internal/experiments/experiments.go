// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4): Table 1 (deterministic vs statistical
// optimization of the 99-percentile delay), Table 2 (brute-force vs
// accelerated runtimes and pruning effectiveness), Figure 1 (path-delay
// walls), Figure 2 (CDF perturbation from one sizing step), Figure 10
// (area-delay curves with Monte Carlo validation), and the Section 4
// bounds-accuracy claim (SSTA bound within ~1% of Monte Carlo at the
// 99th percentile).
//
// Every experiment is deterministic in Options.Seed and scales with the
// iteration/sample knobs so the full paper protocol and a quick CI run
// share one code path (see EXPERIMENTS.md for the recorded settings).
package experiments

import (
	"context"
	"fmt"
	"time"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/core"
	"statsize/internal/design"
	"statsize/internal/netlist"
	"statsize/internal/session"
	"statsize/internal/ssta"
)

// Options scales an experiment run. The zero value selects quick
// defaults; Full() selects the paper's protocol.
type Options struct {
	// Circuits to run; nil means the full ISCAS'85 suite of Table 1.
	Circuits []string
	// Iterations caps the sizing iterations of Table 1, Figure 1 and
	// Figure 10 runs (paper: >1000). Default 120.
	Iterations int
	// TimedIterations is how many trajectory-matched iterations Table 2
	// times for both optimizers. Default 3 (brute force is expensive by
	// design).
	TimedIterations int
	// Bins is the SSTA grid resolution. Default 600.
	Bins int
	// MCSamples for Monte Carlo validation. Default 4000.
	MCSamples int
	// TracePoints is how many (area, delay) points Figure 10 records per
	// curve. Default 25.
	TracePoints int
	// Percentile of the objective. Default 0.99.
	Percentile float64
	// Seed drives circuit generation and Monte Carlo.
	Seed int64
	// Progress, when non-nil, receives one line per major step.
	Progress func(string)
}

func (o Options) withDefaults() Options {
	if len(o.Circuits) == 0 {
		o.Circuits = circuitgen.Names()
	}
	if o.Iterations <= 0 {
		o.Iterations = 120
	}
	if o.TimedIterations <= 0 {
		o.TimedIterations = 3
	}
	if o.Bins <= 0 {
		o.Bins = 600
	}
	if o.MCSamples <= 0 {
		o.MCSamples = 4000
	}
	if o.TracePoints <= 0 {
		o.TracePoints = 25
	}
	if o.Percentile <= 0 || o.Percentile >= 1 {
		o.Percentile = 0.99
	}
	return o
}

// Full returns the paper-scale protocol: all circuits, 1000+ sizing
// iterations, 10000 Monte Carlo samples.
func Full() Options {
	return Options{Iterations: 1000, TimedIterations: 5, MCSamples: 10000, TracePoints: 40}
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// buildDesign constructs a minimum-sized design for a named benchmark
// ("c17" is the embedded real netlist; the rest are Table 1 replicas).
func buildDesign(name string, seed int64) (*design.Design, error) {
	lib := cell.Default180nm()
	var nl *netlist.Netlist
	if name == "c17" {
		nl = netlist.C17(lib)
	} else {
		sp, ok := circuitgen.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown circuit %q", name)
		}
		sp.Seed += seed
		var err error
		nl, err = circuitgen.Generate(lib, sp)
		if err != nil {
			return nil, err
		}
	}
	return design.New(nl, lib)
}

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Circuit      string
	Nodes, Edges int
	AreaIncPct   float64 // "% inc": total gate size increase
	Det99        float64 // 99-percentile delay after deterministic opt (ns)
	Stat99       float64 // after statistical opt (ns)
	ImprPct      float64 // improvement of statistical over deterministic
	DetIters     int
	StatIters    int
}

// Table1 reproduces the paper's Table 1: both optimizers start from the
// minimum-sized circuit; the deterministic baseline runs until
// convergence or the iteration cap, and the statistical optimizer runs
// the same number of iterations (both size one gate by Δw per iteration,
// so equal iterations means equal added area). The reported 99-percentile
// delays come from a fresh SSTA pass over each optimized design.
func Table1(ctx context.Context, opts Options) ([]Table1Row, error) {
	opts = opts.withDefaults()
	var rows []Table1Row
	for _, name := range opts.Circuits {
		opts.progress("table1: %s", name)
		dDet, err := buildDesign(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		dStat, err := buildDesign(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		detRes, err := runOnSession(ctx, dDet, core.Config{
			MaxIterations: opts.Iterations,
			Bins:          opts.Bins,
		}, core.Deterministic)
		if err != nil {
			return nil, err
		}
		iters := detRes.Iterations
		if iters == 0 {
			iters = opts.Iterations
		}
		statRes, err := runOnSession(ctx, dStat, core.Config{
			MaxIterations: iters,
			Bins:          opts.Bins,
			Objective:     core.Percentile(opts.Percentile),
		}, core.Accelerated)
		if err != nil {
			return nil, err
		}
		det99, err := percentileOf(ctx, dDet, opts)
		if err != nil {
			return nil, err
		}
		stat99, err := percentileOf(ctx, dStat, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Circuit:    name,
			Nodes:      dDet.NL.TimingNodeCount(),
			Edges:      dDet.NL.TimingEdgeCount(),
			AreaIncPct: statRes.AreaIncrease(),
			Det99:      det99,
			Stat99:     stat99,
			ImprPct:    100 * (det99 - stat99) / det99,
			DetIters:   detRes.Iterations,
			StatIters:  statRes.Iterations,
		})
	}
	return rows, nil
}

// runOnSession opens an incremental timing session over d under cfg,
// runs the optimizer against it, and closes the session — the harness's
// bridge onto the session-driving optimizer signatures. The optimizer
// sizes d itself (the session owns it directly, no clone), matching the
// pre-session harness semantics.
func runOnSession(
	ctx context.Context,
	d *design.Design,
	cfg core.Config,
	opt func(context.Context, *session.Session, core.Config) (*core.Result, error),
) (*core.Result, error) {
	s, err := core.OpenSession(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return opt(ctx, s, cfg)
}

// percentileOf runs a fresh SSTA pass on a design and evaluates the
// objective percentile.
func percentileOf(ctx context.Context, d *design.Design, opts Options) (float64, error) {
	a, err := ssta.Analyze(ctx, d, d.SuggestDT(opts.Bins))
	if err != nil {
		return 0, err
	}
	return a.Percentile(opts.Percentile), nil
}

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	Circuit    string
	BruteAvg   time.Duration // average time per brute-force iteration
	AccelAvg   time.Duration // average time per accelerated iteration
	Factor     float64       // BruteAvg / AccelAvg
	AccelMin   time.Duration // range of accelerated per-iteration time
	AccelMax   time.Duration
	FactorMin  float64 // range of improvement factor
	FactorMax  float64
	PrunedPct  float64 // candidates pruned before reaching the sink
	Iterations int
}

// Table2 reproduces the runtime comparison: both statistical optimizers
// run the same trajectory (they are exact, so they size the same gates),
// and per-iteration wall times are compared. The improvement-factor
// range pairs the brute-force average with the fastest and slowest
// accelerated iterations, mirroring the paper's columns 5-6.
func Table2(ctx context.Context, opts Options) ([]Table2Row, error) {
	opts = opts.withDefaults()
	var rows []Table2Row
	for _, name := range opts.Circuits {
		opts.progress("table2: %s (brute force)", name)
		dB, err := buildDesign(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{MaxIterations: opts.TimedIterations, Bins: opts.Bins}
		bruteRes, err := runOnSession(ctx, dB, cfg, core.BruteForce)
		if err != nil {
			return nil, err
		}
		opts.progress("table2: %s (accelerated)", name)
		dA, err := buildDesign(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		accelRes, err := runOnSession(ctx, dA, cfg, core.Accelerated)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Circuit: name, Iterations: bruteRes.Iterations}
		var bruteSum, accelSum time.Duration
		for _, r := range bruteRes.Records {
			bruteSum += r.Elapsed
		}
		var pruned, considered int
		row.AccelMin = time.Duration(1<<63 - 1)
		for _, r := range accelRes.Records {
			accelSum += r.Elapsed
			if r.Elapsed < row.AccelMin {
				row.AccelMin = r.Elapsed
			}
			if r.Elapsed > row.AccelMax {
				row.AccelMax = r.Elapsed
			}
			pruned += r.CandidatesPruned
			considered += r.CandidatesConsidered
		}
		nb, na := len(bruteRes.Records), len(accelRes.Records)
		if nb == 0 || na == 0 {
			return nil, fmt.Errorf("experiments: %s converged before timing (brute %d, accel %d iterations)", name, nb, na)
		}
		row.BruteAvg = bruteSum / time.Duration(nb)
		row.AccelAvg = accelSum / time.Duration(na)
		row.Factor = float64(row.BruteAvg) / float64(row.AccelAvg)
		row.FactorMin = float64(row.BruteAvg) / float64(row.AccelMax)
		row.FactorMax = float64(row.BruteAvg) / float64(row.AccelMin)
		if considered > 0 {
			row.PrunedPct = 100 * float64(pruned) / float64(considered)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
