package experiments

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// FlagOptions registers the shared experiment flags on a FlagSet and
// returns a resolver to call after parsing. Every cmd/ tool uses this so
// the quick and paper-scale protocols stay consistent.
func FlagOptions(fs *flag.FlagSet) func() Options {
	circuits := fs.String("circuits", "", "comma-separated circuit names (default: full suite)")
	iters := fs.Int("iters", 0, "sizing iterations (default 120; -full: 1000)")
	timed := fs.Int("timed-iters", 0, "iterations timed per optimizer in Table 2 (default 3)")
	bins := fs.Int("bins", 0, "SSTA grid bins (default 600)")
	samples := fs.Int("samples", 0, "Monte Carlo samples (default 4000; -full: 10000)")
	points := fs.Int("trace-points", 0, "points per Figure 10 curve (default 25)")
	seed := fs.Int64("seed", 0, "experiment seed")
	full := fs.Bool("full", false, "run the paper-scale protocol (slow)")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	return func() Options {
		var o Options
		if *full {
			o = Full()
		}
		if *circuits != "" {
			for _, c := range strings.Split(*circuits, ",") {
				if c = strings.TrimSpace(c); c != "" {
					o.Circuits = append(o.Circuits, c)
				}
			}
		}
		if *iters > 0 {
			o.Iterations = *iters
		}
		if *timed > 0 {
			o.TimedIterations = *timed
		}
		if *bins > 0 {
			o.Bins = *bins
		}
		if *samples > 0 {
			o.MCSamples = *samples
		}
		if *points > 0 {
			o.TracePoints = *points
		}
		o.Seed = *seed
		if !*quiet {
			o.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		return o
	}
}
