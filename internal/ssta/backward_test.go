package ssta

import (
	"context"
	"math"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

func c17Analysis(t *testing.T) *Analysis {
	t.Helper()
	lib := cell.Default180nm()
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(context.Background(), d, d.SuggestDT(500))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestComputeRequired(t *testing.T) {
	a := c17Analysis(t)
	ctx := context.Background()
	g := a.D.E.G

	if a.HasRequired() {
		t.Fatal("required pass cached before ComputeRequired")
	}
	if a.Required(g.Sink()) != nil || a.Slack(g.Sink()) != nil {
		t.Fatal("required/slack non-nil before ComputeRequired")
	}

	deadline := a.Percentile(0.99)
	if err := a.ComputeRequired(ctx, dist.Point(a.DT, deadline)); err != nil {
		t.Fatal(err)
	}
	if !a.HasRequired() {
		t.Fatal("required pass not cached")
	}
	if got := a.Deadline().Mean(); math.Abs(got-deadline) > a.DT {
		t.Errorf("deadline %v, want %v", got, deadline)
	}

	// Sink: required is the deadline itself, so slack = deadline -
	// arrival and P(slack <= 0) = P(delay >= deadline) ~ 1 - p.
	sl := a.Slack(g.Sink())
	if math.Abs(sl.Mean()-(deadline-a.SinkDist().Mean())) > 1e-9 {
		t.Errorf("sink slack mean %v, want %v", sl.Mean(), deadline-a.SinkDist().Mean())
	}
	if viol := sl.CDF(0); viol > 0.011+1e-9 {
		t.Errorf("sink violation probability %v, want <= ~0.01 at the p99 deadline", viol)
	}

	// Monotonicity along edges: required at a fanin is at most the
	// fanout's required minus that edge's delay (in the mean, since the
	// fanin min can only lower it).
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.EdgeAt(graph.EdgeID(e))
		rFrom, rTo := a.Required(edge.From), a.Required(edge.To)
		if rFrom == nil || rTo == nil {
			continue
		}
		mean := rTo.Mean()
		if dd := a.EdgeDelay(graph.EdgeID(e)); dd != nil {
			mean -= dd.Mean()
		}
		if rFrom.Mean() > mean+1e-9 {
			t.Fatalf("edge %d: required mean %v at fanin exceeds fanout bound %v",
				e, rFrom.Mean(), mean)
		}
	}

	// Every gate output has a slack distribution, and at least one gate
	// is near-critical (little slack mass above zero... i.e. mass below
	// deadline slack exists).
	for gi := 0; gi < a.D.NL.NumGates(); gi++ {
		n := a.D.E.NodeOf[a.D.NL.Gate(netlist.GateID(gi)).Out]
		if a.Slack(n) == nil {
			t.Fatalf("gate %d: nil slack", gi)
		}
	}

	// Arrival mutation invalidates the cache.
	a.D.SetWidth(0, a.D.Width(0)+0.5)
	if _, err := a.ResizeCommit(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if a.HasRequired() {
		t.Error("required pass survived a ResizeCommit")
	}
}

func TestWhatIfMatchesCommit(t *testing.T) {
	a := c17Analysis(t)
	ctx := context.Background()
	d := a.D

	for gi := 0; gi < d.NL.NumGates(); gi++ {
		gid := netlist.GateID(gi)
		w := d.Width(gid) + d.Lib.DeltaW
		if w > d.Lib.WMax {
			continue
		}
		// What-if must not mutate anything.
		before := a.SinkDist()
		pert, visited, err := a.WhatIf(ctx, gid, w)
		if err != nil {
			t.Fatal(err)
		}
		if a.SinkDist() != before {
			t.Fatal("WhatIf replaced the sink distribution")
		}
		if visited <= 0 {
			t.Fatalf("gate %d: WhatIf visited %d nodes", gi, visited)
		}

		// Committing the same resize on a clone must produce the exact
		// sink distribution WhatIf predicted.
		dc := d.Clone()
		ac, err := Analyze(ctx, dc, a.DT)
		if err != nil {
			t.Fatal(err)
		}
		dc.SetWidth(gid, w)
		if _, err := ac.ResizeCommit(ctx, gid); err != nil {
			t.Fatal(err)
		}
		if !dist.ApproxEqual(pert, ac.SinkDist(), 0) {
			t.Fatalf("gate %d: WhatIf sink differs from committed sink", gi)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	a := c17Analysis(t)
	ctx := context.Background()
	d := a.D

	if err := a.ComputeRequired(ctx, dist.Point(a.DT, a.Percentile(0.99))); err != nil {
		t.Fatal(err)
	}
	st := a.Snapshot()
	dSt := d.Snapshot()
	sink0 := a.SinkDist()
	req0 := a.Required(d.E.G.Sink())

	d.SetWidth(2, d.Width(2)+1)
	if _, err := a.ResizeCommit(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if dist.ApproxEqual(sink0, a.SinkDist(), 0) {
		t.Fatal("resize did not change the sink (test is vacuous)")
	}

	d.Restore(dSt)
	a.Restore(st)
	if a.SinkDist() != sink0 {
		t.Error("Restore did not bring back the exact sink distribution")
	}
	if !a.HasRequired() || a.Required(d.E.G.Sink()) != req0 {
		t.Error("Restore did not bring back the required-time cache")
	}
	// The restored analysis must match a fresh pass.
	fresh, err := Analyze(ctx, d, a.DT)
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(a.SinkDist(), fresh.SinkDist(), 0) {
		t.Error("restored analysis inconsistent with the restored design")
	}
}
