package ssta

import (
	"context"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/design"
	"statsize/internal/netlist"
)

func benchDesign(b *testing.B, name string) *design.Design {
	b.Helper()
	lib := cell.Default180nm()
	sp, ok := circuitgen.ByName(name)
	if !ok {
		b.Fatalf("unknown circuit %s", name)
	}
	nl, err := circuitgen.Generate(lib, sp)
	if err != nil {
		b.Fatal(err)
	}
	d, err := design.New(nl, lib)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkAnalyze measures one full SSTA pass — the unit the brute
// force optimizer multiplies by the gate count.
func BenchmarkAnalyze(b *testing.B) {
	for _, name := range []string{"c432", "c3540"} {
		b.Run(name, func(b *testing.B) {
			d := benchDesign(b, name)
			dt := d.SuggestDT(600)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(context.Background(), d, dt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResizeCommitVsFull is the ablation for the incremental
// arrival recomputation: committing one sizing step by recomputing only
// the perturbed cone versus re-running the whole analysis.
func BenchmarkResizeCommitVsFull(b *testing.B) {
	const name = "c3540"
	b.Run("incremental", func(b *testing.B) {
		d := benchDesign(b, name)
		a, err := Analyze(context.Background(), d, d.SuggestDT(600))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := netlist.GateID(i % d.NL.NumGates())
			d.SetWidth(g, d.Width(g)+d.Lib.DeltaW)
			if _, err := a.ResizeCommit(context.Background(), g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		d := benchDesign(b, name)
		dt := d.SuggestDT(600)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := netlist.GateID(i % d.NL.NumGates())
			d.SetWidth(g, d.Width(g)+d.Lib.DeltaW)
			if _, err := Analyze(context.Background(), d, dt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
