// Package ssta implements block-based statistical static timing analysis
// with discretized arrival-time distributions, following the bound
// computation of Agarwal, Blaauw, Zolotov & Vrudhula (DAC'03) that the
// paper builds on: arrival CDFs propagate through a single topological
// pass, convolving with pin-to-pin delay PDFs along edges and combining
// fanins with the independence maximum. Reconvergent correlations are
// ignored, which makes the computed sink CDF a conservative upper bound
// on the exact circuit-delay CDF; package montecarlo quantifies the gap
// (Figure 10 of the paper shows it is small, <1% at the 99th
// percentile).
//
// The analysis object also provides the two building blocks the
// accelerated optimizer needs: cached per-edge delay distributions, and
// arrival recomputation with overlays (perturbed delays and arrivals
// supplied by the caller without mutating the base analysis).
package ssta

import (
	"context"
	"errors"
	"fmt"

	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/netlist"
	"statsize/internal/par"
)

// cancelCheckStride is how many units of work (node propagations in the
// serial incremental paths — ResizeCommit, WhatIf, ComputeRequired)
// pass between context checks: frequent enough for sub-millisecond
// cancellation latency, rare enough to stay invisible in profiles. The
// parallel full pass checks through par.Run instead. Package montecarlo
// keeps its own equivalent constant.
const cancelCheckStride = 64

// Analysis is a completed SSTA pass over a design at fixed grid
// resolution. Arrival distributions are indexed by graph node.
type Analysis struct {
	D  *design.Design
	DT float64

	arrival []*dist.Dist
	edge    []*dist.Dist // cached delay dists; nil for source/sink arcs

	// Backward required-time state, computed on demand by
	// ComputeRequired and invalidated by every arrival mutation.
	required []*dist.Dist
	deadline *dist.Dist
}

// Analyze runs a full statistical timing analysis on grid dt with one
// worker per logical CPU. The context is checked periodically inside
// the propagation loops; on cancellation the partial analysis is
// discarded and the context's error is returned wrapped.
func Analyze(ctx context.Context, d *design.Design, dt float64) (*Analysis, error) {
	return AnalyzeParallel(ctx, d, dt, 0)
}

// AnalyzeParallel is Analyze with an explicit worker bound (non-positive
// means one worker per logical CPU; 1 is the serial reference path).
//
// The pass parallelizes in two stages. Edge-delay distributions are
// independent of each other and fan out freely. The forward arrival
// pass is level-parallel: nodes on one topological level depend only on
// strictly lower levels (an edge always increases the level), so levels
// run in sequence while the nodes within a level fan out. Every node's
// arrival is a pure function of its fanins and results land in
// per-node slots, so the computed analysis is bit-identical for every
// worker count.
func AnalyzeParallel(ctx context.Context, d *design.Design, dt float64, workers int) (*Analysis, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("ssta: non-positive dt %v", dt)
	}
	g := d.E.G
	a := &Analysis{
		D:       d,
		DT:      dt,
		arrival: make([]*dist.Dist, g.NumNodes()),
		edge:    make([]*dist.Dist, g.NumEdges()),
	}
	// One pool serves the edge builds and every level of the forward
	// pass: levels are numerous and individually small, so worker
	// startup is paid once, not per level.
	pool := par.NewPool(workers)
	defer pool.Close()
	err := pool.Run(ctx, g.NumEdges(), func(e int) error {
		dd, err := d.EdgeDelayDist(dt, graph.EdgeID(e))
		if err != nil {
			return err
		}
		a.edge[e] = dd
		return nil
	})
	if err != nil {
		return nil, wrapAnalyzeErr(err)
	}
	a.arrival[g.Source()] = dist.Point(dt, 0)
	for _, level := range levelNodes(g) {
		nodes := level
		err := pool.Run(ctx, len(nodes), func(i int) error {
			arr, err := a.arrivalOrErr(nodes[i])
			if err != nil {
				return err
			}
			a.arrival[nodes[i]] = arr
			return nil
		})
		if err != nil {
			return nil, wrapAnalyzeErr(err)
		}
	}
	return a, nil
}

// wrapAnalyzeErr dresses a pure cancellation in the analysis-canceled
// wrapper while letting genuine evaluation errors (the zero-fanin
// diagnostic, a delay-model failure) pass through untouched — a real
// diagnostic must never be masked just because the context also died
// while the batch drained.
func wrapAnalyzeErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("ssta: analysis canceled: %w", err)
	}
	return err
}

// levelNodes buckets every node except the source by topological level,
// in ascending level order with topological order inside each bucket.
// Level boundaries are the synchronization points of the parallel
// forward pass.
func levelNodes(g *graph.Graph) [][]graph.NodeID {
	out := make([][]graph.NodeID, g.MaxLevel()+1)
	for _, n := range g.Topo() {
		if n == g.Source() {
			continue
		}
		l := g.Level(n)
		out[l] = append(out[l], n)
	}
	return out
}

// arrivalOrErr evaluates one node's arrival against the base analysis,
// turning the nil a zero-fanin node would produce (a disconnected or
// malformed elaboration — graph validation should make this impossible)
// into a diagnostic error instead of letting the nil arrival propagate
// into a downstream Convolve or SinkDist deref.
func (a *Analysis) arrivalOrErr(n graph.NodeID) (*dist.Dist, error) {
	arr := a.computeArrival(n, nil, nil)
	if arr == nil {
		return nil, fmt.Errorf("ssta: node %d has no fanin edges (disconnected or malformed elaboration)", n)
	}
	return arr, nil
}

// computeArrival evaluates one node's arrival CDF from its fanins. The
// overlay callbacks, when non-nil, substitute perturbed arrivals and
// perturbed edge delays; returning nil from an overlay falls back to the
// base analysis. This is the single implementation of the SSTA max/conv
// step shared by the full pass, incremental recompute, and the
// optimizer's perturbation-front propagation.
func (a *Analysis) computeArrival(
	n graph.NodeID,
	arrOverlay func(graph.NodeID) *dist.Dist,
	delayOverlay func(graph.EdgeID) *dist.Dist,
) *dist.Dist {
	g := a.D.E.G
	var acc *dist.Dist
	for _, eid := range g.In(n) {
		e := g.EdgeAt(eid)
		from := a.arrival[e.From]
		if arrOverlay != nil {
			if o := arrOverlay(e.From); o != nil {
				from = o
			}
		}
		delay := a.edge[eid]
		if delayOverlay != nil {
			if o := delayOverlay(eid); o != nil {
				delay = o
			}
		}
		term := from
		if delay != nil {
			term = dist.Convolve(from, delay)
		}
		if acc == nil {
			acc = term
		} else {
			acc = dist.MaxIndep(acc, term)
		}
	}
	return acc
}

// ArrivalWithOverlay exposes computeArrival for the optimizer's
// perturbation fronts.
func (a *Analysis) ArrivalWithOverlay(
	n graph.NodeID,
	arrOverlay func(graph.NodeID) *dist.Dist,
	delayOverlay func(graph.EdgeID) *dist.Dist,
) *dist.Dist {
	return a.computeArrival(n, arrOverlay, delayOverlay)
}

// Arrival returns the arrival distribution at a node.
func (a *Analysis) Arrival(n graph.NodeID) *dist.Dist { return a.arrival[n] }

// EdgeDelay returns the cached delay distribution of an edge (nil for
// the zero-delay source/sink arcs).
func (a *Analysis) EdgeDelay(e graph.EdgeID) *dist.Dist { return a.edge[e] }

// SinkDist returns the circuit-delay distribution (the DAC'03 upper
// bound on the exact CDF).
func (a *Analysis) SinkDist() *dist.Dist { return a.arrival[a.D.E.G.Sink()] }

// Percentile returns the p-percentile of the circuit-delay distribution
// — the paper's optimization objective at p = 0.99.
func (a *Analysis) Percentile(p float64) float64 { return a.SinkDist().Percentile(p) }

// RefreshGate recomputes the cached delay distributions of every pin
// edge of the given gate (after its width or output load changed).
func (a *Analysis) RefreshGate(gid netlist.GateID) error {
	for _, eid := range a.D.E.GateEdges[gid] {
		dd, err := a.D.EdgeDelayDist(a.DT, eid)
		if err != nil {
			return err
		}
		a.edge[eid] = dd
	}
	return nil
}

// AffectedGates returns the set of gates whose pin-to-pin delays change
// when gate x is resized: x itself (its drive changed) and the driver of
// each of x's input nets (their output loads changed). This is exactly
// the initial perturbation scope of the paper's Initialize procedure
// (Figure 7, step 1).
func AffectedGates(d *design.Design, x netlist.GateID) []netlist.GateID {
	out := []netlist.GateID{x}
	seen := map[netlist.GateID]bool{x: true}
	for _, in := range d.NL.Gate(x).Ins {
		if drv := d.NL.Driver(in); drv != netlist.NoGate && !seen[drv] {
			seen[drv] = true
			out = append(out, drv)
		}
	}
	return out
}

// ResizeCommit makes the analysis consistent after gate x has been
// resized in the design: refreshes the affected delay caches and
// recomputes arrivals downstream, pruning nodes whose arrival is
// unchanged. Returns the number of nodes recomputed (a measure of the
// incremental saving versus a full pass). The context is checked
// periodically; on cancellation the analysis is left partially updated —
// callers that need all-or-nothing semantics restore from a Snapshot.
func (a *Analysis) ResizeCommit(ctx context.Context, x netlist.GateID) (int, error) {
	g := a.D.E.G
	affected := AffectedGates(a.D, x)
	for _, gid := range affected {
		if err := a.RefreshGate(gid); err != nil {
			return 0, err
		}
	}
	a.InvalidateRequired()
	// Seed the worklist with the output nodes of all affected gates.
	dirty := make(map[graph.NodeID]bool)
	for _, gid := range affected {
		dirty[a.D.E.NodeOf[a.D.NL.Gate(gid).Out]] = true
	}
	recomputed := 0
	for _, n := range g.Topo() {
		if !dirty[n] {
			continue
		}
		if recomputed%cancelCheckStride == 0 && ctx.Err() != nil {
			return recomputed, fmt.Errorf("ssta: resize commit canceled: %w", ctx.Err())
		}
		next := a.computeArrival(n, nil, nil)
		recomputed++
		if dist.ApproxEqual(next, a.arrival[n], 0) {
			continue // perturbation died out on this branch
		}
		a.arrival[n] = next
		for _, eid := range g.Out(n) {
			dirty[g.EdgeAt(eid).To] = true
		}
	}
	return recomputed, nil
}

// PerturbedDelays returns the delay distributions that change when gate
// x is resized to w — the pin edges of x and of the drivers of x's input
// nets (Figure 7, step 1). The evaluation is mutation-free: the
// hypothetical width is applied functionally through
// design.EdgeDelayDistAtWidths, the design is never touched, and the
// distributions are bit-identical to what the historical
// mutate-evaluate-restore route (design.WithWidth) produced. Because
// nothing is written, any number of goroutines may evaluate different
// candidates concurrently against one quiescent analysis.
func (a *Analysis) PerturbedDelays(x netlist.GateID, w float64) (map[graph.EdgeID]*dist.Dist, error) {
	d := a.D
	overrides := map[netlist.GateID]float64{x: w}
	out := make(map[graph.EdgeID]*dist.Dist)
	for _, gid := range AffectedGates(d, x) {
		for _, eid := range d.E.GateEdges[gid] {
			dd, err := d.EdgeDelayDistAtWidths(a.DT, eid, overrides)
			if err != nil {
				return nil, err
			}
			out[eid] = dd
		}
	}
	return out, nil
}

// WhatIf propagates the perturbation of resizing gate x to width w
// through the timing graph without committing anything: neither the
// design nor the analysis is mutated. It returns the perturbed sink
// distribution and the number of nodes whose arrival was recomputed.
// Nodes whose perturbed arrival matches the base bit for bit stop the
// propagation on that branch (the same exact elision ResizeCommit and
// the accelerated optimizer use), so the cost is the size of the true
// perturbation cone, not the whole graph.
//
// WhatIf only reads the analysis (all overlay state is call-local), so
// concurrent WhatIf calls on one quiescent Analysis are safe — the
// property Session.WhatIfBatch fans candidate evaluations out on.
func (a *Analysis) WhatIf(ctx context.Context, x netlist.GateID, w float64) (*dist.Dist, int, error) {
	g := a.D.E.G
	delays, err := a.PerturbedDelays(x, w)
	if err != nil {
		return nil, 0, err
	}
	overlay := make(map[graph.NodeID]*dist.Dist)
	dirty := make(map[graph.NodeID]bool)
	for _, gid := range AffectedGates(a.D, x) {
		dirty[a.D.E.NodeOf[a.D.NL.Gate(gid).Out]] = true
	}
	arrOverlay := func(n graph.NodeID) *dist.Dist { return overlay[n] }
	delayOverlay := func(e graph.EdgeID) *dist.Dist { return delays[e] }
	visited := 0
	for _, n := range g.Topo() {
		if !dirty[n] {
			continue
		}
		if visited%cancelCheckStride == 0 && ctx.Err() != nil {
			return nil, visited, fmt.Errorf("ssta: what-if canceled: %w", ctx.Err())
		}
		pert := a.computeArrival(n, arrOverlay, delayOverlay)
		visited++
		if dist.ApproxEqual(pert, a.arrival[n], 0) {
			continue // perturbation died out on this branch
		}
		overlay[n] = pert
		for _, eid := range g.Out(n) {
			dirty[g.EdgeAt(eid).To] = true
		}
	}
	if o := overlay[g.Sink()]; o != nil {
		return o, visited, nil
	}
	return a.arrival[g.Sink()], visited, nil
}

// ComputeRequired runs the backward required-time pass: the deadline
// distribution is imposed at the sink and propagated against the edge
// direction — subtracting edge-delay distributions (SubConvolve) along
// each fanout arc and merging fanouts with the independence minimum.
// This is the mirror image of the forward arrival pass; with both in
// hand, statistical slack and gate criticality become O(1) queries.
//
// Required times are cached until the next arrival mutation
// (ResizeCommit) invalidates them.
func (a *Analysis) ComputeRequired(ctx context.Context, deadline *dist.Dist) error {
	g := a.D.E.G
	req := make([]*dist.Dist, g.NumNodes())
	topo := g.Topo()
	req[g.Sink()] = deadline
	for i := len(topo) - 1; i >= 0; i-- {
		if i%cancelCheckStride == 0 && ctx.Err() != nil {
			return fmt.Errorf("ssta: required-time pass canceled: %w", ctx.Err())
		}
		n := topo[i]
		if n == g.Sink() {
			continue
		}
		var acc *dist.Dist
		for _, eid := range g.Out(n) {
			t := req[g.EdgeAt(eid).To]
			if dd := a.edge[eid]; dd != nil {
				t = dist.SubConvolve(t, dd)
			}
			if acc == nil {
				acc = t
			} else {
				acc = dist.MinIndep(acc, t)
			}
		}
		req[n] = acc
	}
	a.required = req
	a.deadline = deadline
	return nil
}

// HasRequired reports whether a required-time pass is cached and
// consistent with the current arrivals.
func (a *Analysis) HasRequired() bool { return a.required != nil }

// Deadline returns the sink deadline distribution of the cached
// required-time pass, or nil when none is cached.
func (a *Analysis) Deadline() *dist.Dist { return a.deadline }

// Required returns the required-time distribution at a node, or nil
// when no required-time pass is cached (call ComputeRequired first).
func (a *Analysis) Required(n graph.NodeID) *dist.Dist {
	if a.required == nil {
		return nil
	}
	return a.required[n]
}

// Slack returns the statistical slack distribution at a node: the
// distribution of required minus arrival, treating the two as
// independent. Shared paths correlate them in reality, so tail
// probabilities are approximate — but the sign structure (mass below
// zero = probability the node violates the deadline) is the queryable
// criticality signal the paper otherwise obtains from Monte Carlo.
// Returns nil when no required-time pass is cached.
func (a *Analysis) Slack(n graph.NodeID) *dist.Dist {
	if a.required == nil {
		return nil
	}
	return dist.SubConvolve(a.required[n], a.arrival[n])
}

// InvalidateRequired drops the cached backward pass; arrival mutations
// call it internally, and sessions call it when the deadline changes.
func (a *Analysis) InvalidateRequired() {
	a.required = nil
	a.deadline = nil
}

// State is an O(nodes) snapshot of the analysis for checkpoint/rollback:
// distributions are immutable once computed, so the snapshot shares them
// and only copies the index slices.
type State struct {
	arrival  []*dist.Dist
	edge     []*dist.Dist
	required []*dist.Dist
	deadline *dist.Dist
}

// Snapshot captures the current analysis state.
func (a *Analysis) Snapshot() *State {
	st := &State{
		arrival:  append([]*dist.Dist(nil), a.arrival...),
		edge:     append([]*dist.Dist(nil), a.edge...),
		deadline: a.deadline,
	}
	if a.required != nil {
		st.required = append([]*dist.Dist(nil), a.required...)
	}
	return st
}

// Restore rewinds the analysis to a snapshot taken on the same design.
func (a *Analysis) Restore(st *State) {
	copy(a.arrival, st.arrival)
	copy(a.edge, st.edge)
	if st.required != nil {
		a.required = append(a.required[:0], st.required...)
	} else {
		a.required = nil
	}
	a.deadline = st.deadline
}
