// Package ssta implements block-based statistical static timing analysis
// with discretized arrival-time distributions, following the bound
// computation of Agarwal, Blaauw, Zolotov & Vrudhula (DAC'03) that the
// paper builds on: arrival CDFs propagate through a single topological
// pass, convolving with pin-to-pin delay PDFs along edges and combining
// fanins with the independence maximum. Reconvergent correlations are
// ignored, which makes the computed sink CDF a conservative upper bound
// on the exact circuit-delay CDF; package montecarlo quantifies the gap
// (Figure 10 of the paper shows it is small, <1% at the 99th
// percentile).
//
// The analysis object also provides the two building blocks the
// accelerated optimizer needs: cached per-edge delay distributions, and
// arrival recomputation with overlays (perturbed delays and arrivals
// supplied by the caller without mutating the base analysis).
package ssta

import (
	"context"
	"errors"
	"fmt"

	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/netlist"
	"statsize/internal/par"
)

// cancelCheckStride is how many units of work (node propagations in the
// serial incremental paths — ResizeCommit, WhatIf, ComputeRequired)
// pass between context checks: frequent enough for sub-millisecond
// cancellation latency, rare enough to stay invisible in profiles. The
// parallel full pass checks through par.Run instead. Package montecarlo
// keeps its own equivalent constant.
const cancelCheckStride = 64

// Analysis is a completed SSTA pass over a design at fixed grid
// resolution. Arrival distributions are indexed by graph node.
//
// Every distribution reachable through an Analysis (arrivals, edge
// delays, required times) is an immutable shared heap value — never
// arena scratch — so queries, snapshots and concurrent read-only
// evaluations (WhatIf) can hold onto them freely; see DESIGN.md,
// "Memory model".
type Analysis struct {
	D  *design.Design
	DT float64

	arrival []*dist.Dist
	edge    []*dist.Dist // cached delay dists; nil for source/sink arcs

	// Backward required-time state, computed on demand by
	// ComputeRequired and invalidated by every arrival mutation.
	required []*dist.Dist
	deadline *dist.Dist

	// scratch is the kernel arena of the serial mutating passes
	// (ResizeCommit, ComputeRequired). Those passes already require
	// exclusive access to the analysis, so one arena suffices; the
	// read-only concurrent paths (WhatIf) carry their own Scratch.
	// Not part of Snapshot/Restore state.
	scratch *dist.Arena
}

// Analyze runs a full statistical timing analysis on grid dt with one
// worker per logical CPU. The context is checked periodically inside
// the propagation loops; on cancellation the partial analysis is
// discarded and the context's error is returned wrapped.
func Analyze(ctx context.Context, d *design.Design, dt float64) (*Analysis, error) {
	return AnalyzeParallel(ctx, d, dt, 0)
}

// AnalyzeParallel is Analyze with an explicit worker bound (non-positive
// means one worker per logical CPU; 1 is the serial reference path).
//
// The pass parallelizes in two stages. Edge-delay distributions are
// independent of each other and fan out freely. The forward arrival
// pass is level-parallel: nodes on one topological level depend only on
// strictly lower levels (an edge always increases the level), so levels
// run in sequence while the nodes within a level fan out. Every node's
// arrival is a pure function of its fanins and results land in
// per-node slots, so the computed analysis is bit-identical for every
// worker count.
func AnalyzeParallel(ctx context.Context, d *design.Design, dt float64, workers int) (*Analysis, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("ssta: non-positive dt %v", dt)
	}
	g := d.E.G
	a := &Analysis{
		D:       d,
		DT:      dt,
		arrival: make([]*dist.Dist, g.NumNodes()),
		edge:    make([]*dist.Dist, g.NumEdges()),
		scratch: dist.NewArena(),
	}
	// One pool serves the edge builds and every level of the forward
	// pass: levels are numerous and individually small, so worker
	// startup is paid once, not per level.
	pool := par.NewPool(workers)
	defer pool.Close()
	err := pool.Run(ctx, g.NumEdges(), func(e int) error {
		dd, err := d.EdgeDelayDist(dt, graph.EdgeID(e))
		if err != nil {
			return err
		}
		a.edge[e] = dd
		return nil
	})
	if err != nil {
		return nil, wrapAnalyzeErr(err)
	}
	// One kernel arena and one persist keeper per pool worker: a node's
	// convolve/max intermediates live in its worker's arena and die at
	// the next node's Reset; the final trimmed arrival is compacted
	// into the worker's keeper (bulk heap slabs — O(1) amortized
	// allocations per node). Workers never share either, so the hot
	// path carries no synchronization. The keepers are dropped with
	// this stack frame; their slabs live on exactly as long as the
	// arrivals carved from them.
	arenas := make([]*dist.Arena, pool.NumWorkers())
	keepers := make([]*dist.Keeper, pool.NumWorkers())
	for i := range arenas {
		arenas[i] = dist.NewArena()
		keepers[i] = dist.NewKeeper()
	}
	a.arrival[g.Source()] = dist.Point(dt, 0)
	for _, level := range levelNodes(g) {
		nodes := level
		err := pool.RunIndexed(ctx, len(nodes), func(w, i int) error {
			ar := arenas[w]
			ar.Reset()
			arr, err := a.arrivalOrErr(nodes[i], ar)
			if err != nil {
				return err
			}
			a.arrival[nodes[i]] = keepers[w].Persist(arr)
			return nil
		})
		if err != nil {
			return nil, wrapAnalyzeErr(err)
		}
	}
	return a, nil
}

// wrapAnalyzeErr dresses a pure cancellation in the analysis-canceled
// wrapper while letting genuine evaluation errors (the zero-fanin
// diagnostic, a delay-model failure) pass through untouched — a real
// diagnostic must never be masked just because the context also died
// while the batch drained.
func wrapAnalyzeErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("ssta: analysis canceled: %w", err)
	}
	return err
}

// levelNodes buckets every node except the source by topological level,
// in ascending level order with topological order inside each bucket.
// Level boundaries are the synchronization points of the parallel
// forward pass.
func levelNodes(g *graph.Graph) [][]graph.NodeID {
	out := make([][]graph.NodeID, g.MaxLevel()+1)
	for _, n := range g.Topo() {
		if n == g.Source() {
			continue
		}
		l := g.Level(n)
		out[l] = append(out[l], n)
	}
	return out
}

// arrivalOrErr evaluates one node's arrival against the base analysis,
// turning the nil a zero-fanin node would produce (a disconnected or
// malformed elaboration — graph validation should make this impossible)
// into a diagnostic error instead of letting the nil arrival propagate
// into a downstream Convolve or SinkDist deref.
func (a *Analysis) arrivalOrErr(n graph.NodeID, ar *dist.Arena) (*dist.Dist, error) {
	arr := a.computeArrival(n, nil, nil, ar)
	if arr == nil {
		return nil, fmt.Errorf("ssta: node %d has no fanin edges (disconnected or malformed elaboration)", n)
	}
	return arr, nil
}

// computeArrival evaluates one node's arrival CDF from its fanins. The
// overlay callbacks, when non-nil, substitute perturbed arrivals and
// perturbed edge delays; returning nil from an overlay falls back to the
// base analysis. This is the single implementation of the SSTA max/conv
// step shared by the full pass, incremental recompute, and the
// optimizer's perturbation-front propagation.
//
// With a non-nil arena the result (and every intermediate) is arena
// scratch — the caller decides when to Reset and must Persist anything
// it retains. A nil arena reproduces the historical allocating
// behavior. Either way the values are bit-identical.
func (a *Analysis) computeArrival(
	n graph.NodeID,
	arrOverlay func(graph.NodeID) *dist.Dist,
	delayOverlay func(graph.EdgeID) *dist.Dist,
	ar *dist.Arena,
) *dist.Dist {
	g := a.D.E.G
	var acc *dist.Dist
	for _, eid := range g.In(n) {
		e := g.EdgeAt(eid)
		from := a.arrival[e.From]
		if arrOverlay != nil {
			if o := arrOverlay(e.From); o != nil {
				from = o
			}
		}
		delay := a.edge[eid]
		if delayOverlay != nil {
			if o := delayOverlay(eid); o != nil {
				delay = o
			}
		}
		term := from
		if delay != nil {
			term = dist.ConvolveInto(ar, from, delay)
		}
		if acc == nil {
			acc = term
		} else {
			acc = dist.MaxIndepInto(ar, acc, term)
		}
	}
	return acc
}

// ArrivalWithOverlay exposes computeArrival for the optimizer's
// perturbation fronts, on the allocating path.
func (a *Analysis) ArrivalWithOverlay(
	n graph.NodeID,
	arrOverlay func(graph.NodeID) *dist.Dist,
	delayOverlay func(graph.EdgeID) *dist.Dist,
) *dist.Dist {
	return a.computeArrival(n, arrOverlay, delayOverlay, nil)
}

// ArrivalWithOverlayInto is ArrivalWithOverlay computing through the
// caller's arena: the returned distribution is scratch (Persist before
// retaining it) unless it is one of the base/overlay operands returned
// by a dominance shortcut.
func (a *Analysis) ArrivalWithOverlayInto(
	n graph.NodeID,
	arrOverlay func(graph.NodeID) *dist.Dist,
	delayOverlay func(graph.EdgeID) *dist.Dist,
	ar *dist.Arena,
) *dist.Dist {
	//lint:allow statlint/scratchescape returning scratch is this method's documented contract: the *Into suffix hands ownership to the arena-passing caller
	return a.computeArrival(n, arrOverlay, delayOverlay, ar)
}

// Arrival returns the arrival distribution at a node.
func (a *Analysis) Arrival(n graph.NodeID) *dist.Dist { return a.arrival[n] }

// EdgeDelay returns the cached delay distribution of an edge (nil for
// the zero-delay source/sink arcs).
func (a *Analysis) EdgeDelay(e graph.EdgeID) *dist.Dist { return a.edge[e] }

// SinkDist returns the circuit-delay distribution (the DAC'03 upper
// bound on the exact CDF).
func (a *Analysis) SinkDist() *dist.Dist { return a.arrival[a.D.E.G.Sink()] }

// Percentile returns the p-percentile of the circuit-delay distribution
// — the paper's optimization objective at p = 0.99.
func (a *Analysis) Percentile(p float64) float64 { return a.SinkDist().Percentile(p) }

// RefreshGate recomputes the cached delay distributions of every pin
// edge of the given gate (after its width or output load changed).
func (a *Analysis) RefreshGate(gid netlist.GateID) error {
	for _, eid := range a.D.E.GateEdges[gid] {
		dd, err := a.D.EdgeDelayDist(a.DT, eid)
		if err != nil {
			return err
		}
		a.edge[eid] = dd
	}
	return nil
}

// AffectedGates returns the set of gates whose pin-to-pin delays change
// when gate x is resized: x itself (its drive changed) and the driver of
// each of x's input nets (their output loads changed). This is exactly
// the initial perturbation scope of the paper's Initialize procedure
// (Figure 7, step 1).
func AffectedGates(d *design.Design, x netlist.GateID) []netlist.GateID {
	out := []netlist.GateID{x}
	seen := map[netlist.GateID]bool{x: true}
	for _, in := range d.NL.Gate(x).Ins {
		if drv := d.NL.Driver(in); drv != netlist.NoGate && !seen[drv] {
			seen[drv] = true
			out = append(out, drv)
		}
	}
	return out
}

// ResizeCommit makes the analysis consistent after gate x has been
// resized in the design: refreshes the affected delay caches and
// recomputes arrivals downstream, pruning nodes whose arrival is
// unchanged. Returns the number of nodes recomputed (a measure of the
// incremental saving versus a full pass). The context is checked
// periodically; on cancellation the analysis is left partially updated —
// callers that need all-or-nothing semantics restore from a Snapshot.
func (a *Analysis) ResizeCommit(ctx context.Context, x netlist.GateID) (int, error) {
	g := a.D.E.G
	affected := AffectedGates(a.D, x)
	for _, gid := range affected {
		if err := a.RefreshGate(gid); err != nil {
			return 0, err
		}
	}
	a.InvalidateRequired()
	// Seed the worklist with the output nodes of all affected gates.
	dirty := make(map[graph.NodeID]bool)
	for _, gid := range affected {
		dirty[a.D.E.NodeOf[a.D.NL.Gate(gid).Out]] = true
	}
	recomputed := 0
	for _, n := range g.Topo() {
		if !dirty[n] {
			continue
		}
		if recomputed%cancelCheckStride == 0 && ctx.Err() != nil {
			return recomputed, fmt.Errorf("ssta: resize commit canceled: %w", ctx.Err())
		}
		// Per-node arena cycle: intermediates die here, the surviving
		// arrival is compacted onto the heap before being retained.
		a.scratch.Reset()
		next := a.computeArrival(n, nil, nil, a.scratch)
		recomputed++
		if dist.ApproxEqual(next, a.arrival[n], 0) {
			continue // perturbation died out on this branch
		}
		a.arrival[n] = next.Persist()
		for _, eid := range g.Out(n) {
			dirty[g.EdgeAt(eid).To] = true
		}
	}
	return recomputed, nil
}

// PerturbedDelays returns the delay distributions that change when gate
// x is resized to w — the pin edges of x and of the drivers of x's input
// nets (Figure 7, step 1). The evaluation is mutation-free: the
// hypothetical width is applied functionally through
// design.EdgeDelayDistAtWidths, the design is never touched, and the
// distributions are bit-identical to what the historical
// mutate-evaluate-restore route (design.WithWidth) produced. Because
// nothing is written, any number of goroutines may evaluate different
// candidates concurrently against one quiescent analysis.
func (a *Analysis) PerturbedDelays(x netlist.GateID, w float64) (map[graph.EdgeID]*dist.Dist, error) {
	out := make(map[graph.EdgeID]*dist.Dist)
	if err := a.PerturbedDelaysInto(x, w, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PerturbedDelaysInto fills a caller-owned (typically scratch-reused)
// map instead of allocating one; the caller clears it between
// candidates. The distributions themselves come from the design's
// delay memo cache, so a sweep revisiting the same discrete widths
// performs no distribution construction at all.
func (a *Analysis) PerturbedDelaysInto(x netlist.GateID, w float64, out map[graph.EdgeID]*dist.Dist) error {
	d := a.D
	overrides := map[netlist.GateID]float64{x: w}
	for _, gid := range AffectedGates(d, x) {
		for _, eid := range d.E.GateEdges[gid] {
			dd, err := d.EdgeDelayDistAtWidths(a.DT, eid, overrides)
			if err != nil {
				return err
			}
			out[eid] = dd
		}
	}
	return nil
}

// Scratch bundles the reusable state of repeated read-only perturbation
// evaluations (WhatIf): a kernel arena plus the overlay maps, all
// recycled between calls so a warm candidate sweep allocates only what
// escapes (the persisted sink distribution). One Scratch serves one
// goroutine at a time; parallel sweeps hold one per worker.
type Scratch struct {
	ar      *dist.Arena
	delays  map[graph.EdgeID]*dist.Dist
	overlay map[graph.NodeID]*dist.Dist
	dirty   map[graph.NodeID]bool
}

// NewScratch returns an empty Scratch; capacity accumulates with use.
func NewScratch() *Scratch {
	return &Scratch{
		ar:      dist.NewArena(),
		delays:  make(map[graph.EdgeID]*dist.Dist),
		overlay: make(map[graph.NodeID]*dist.Dist),
		dirty:   make(map[graph.NodeID]bool),
	}
}

// reset rewinds the arena and empties the maps while keeping their
// buckets — the zero-allocation warm path.
func (sc *Scratch) reset() {
	sc.ar.Reset()
	clear(sc.delays)
	clear(sc.overlay)
	clear(sc.dirty)
}

// WhatIf propagates the perturbation of resizing gate x to width w
// through the timing graph without committing anything: neither the
// design nor the analysis is mutated. It returns the perturbed sink
// distribution and the number of nodes whose arrival was recomputed.
// Nodes whose perturbed arrival matches the base bit for bit stop the
// propagation on that branch (the same exact elision ResizeCommit and
// the accelerated optimizer use), so the cost is the size of the true
// perturbation cone, not the whole graph.
//
// WhatIf only reads the analysis (all overlay state is call-local), so
// concurrent WhatIf calls on one quiescent Analysis are safe — the
// property Session.WhatIfBatch fans candidate evaluations out on.
func (a *Analysis) WhatIf(ctx context.Context, x netlist.GateID, w float64) (*dist.Dist, int, error) {
	return a.WhatIfScratch(ctx, x, w, nil)
}

// WhatIfScratch is WhatIf evaluating through a reusable Scratch: the
// perturbation overlays live in the scratch arena for the duration of
// the call (no reset until the next call on the same Scratch), and only
// the returned sink distribution is compacted onto the heap. A nil
// scratch allocates a transient one — semantically identical, just not
// amortized. The returned distribution is always safe to retain.
func (a *Analysis) WhatIfScratch(ctx context.Context, x netlist.GateID, w float64, sc *Scratch) (*dist.Dist, int, error) {
	if sc == nil {
		sc = NewScratch()
	}
	sc.reset()
	g := a.D.E.G
	if err := a.PerturbedDelaysInto(x, w, sc.delays); err != nil {
		return nil, 0, err
	}
	overlay, dirty := sc.overlay, sc.dirty
	for _, gid := range AffectedGates(a.D, x) {
		dirty[a.D.E.NodeOf[a.D.NL.Gate(gid).Out]] = true
	}
	arrOverlay := func(n graph.NodeID) *dist.Dist { return overlay[n] }
	delayOverlay := func(e graph.EdgeID) *dist.Dist { return sc.delays[e] }
	visited := 0
	for _, n := range g.Topo() {
		if !dirty[n] {
			continue
		}
		if visited%cancelCheckStride == 0 && ctx.Err() != nil {
			return nil, visited, fmt.Errorf("ssta: what-if canceled: %w", ctx.Err())
		}
		pert := a.computeArrival(n, arrOverlay, delayOverlay, sc.ar)
		visited++
		if dist.ApproxEqual(pert, a.arrival[n], 0) {
			continue // perturbation died out on this branch
		}
		//lint:allow statlint/scratchescape the overlay map is scratch-scoped: reset together with sc.ar, only the persisted sink below escapes
		overlay[n] = pert
		for _, eid := range g.Out(n) {
			dirty[g.EdgeAt(eid).To] = true
		}
	}
	if o := overlay[g.Sink()]; o != nil {
		return o.Persist(), visited, nil
	}
	return a.arrival[g.Sink()], visited, nil
}

// ComputeRequired runs the backward required-time pass: the deadline
// distribution is imposed at the sink and propagated against the edge
// direction — subtracting edge-delay distributions (SubConvolve) along
// each fanout arc and merging fanouts with the independence minimum.
// This is the mirror image of the forward arrival pass; with both in
// hand, statistical slack and gate criticality become O(1) queries.
//
// Required times are cached until the next arrival mutation
// (ResizeCommit) invalidates them.
func (a *Analysis) ComputeRequired(ctx context.Context, deadline *dist.Dist) error {
	g := a.D.E.G
	req := make([]*dist.Dist, g.NumNodes())
	topo := g.Topo()
	req[g.Sink()] = deadline
	// Pass-scoped persist keeper, like the forward pass's (see
	// AnalyzeParallel); the backward pass is serial, so one suffices.
	keeper := dist.NewKeeper()
	for i := len(topo) - 1; i >= 0; i-- {
		if i%cancelCheckStride == 0 && ctx.Err() != nil {
			return fmt.Errorf("ssta: required-time pass canceled: %w", ctx.Err())
		}
		n := topo[i]
		if n == g.Sink() {
			continue
		}
		// Same per-node arena cycle as the forward passes: the
		// SubConvolve negation/convolution temporaries and losing
		// MinIndep accumulators stay in scratch, the surviving required
		// time is compacted before retention.
		a.scratch.Reset()
		var acc *dist.Dist
		for _, eid := range g.Out(n) {
			t := req[g.EdgeAt(eid).To]
			if dd := a.edge[eid]; dd != nil {
				t = dist.SubConvolveInto(a.scratch, t, dd)
			}
			if acc == nil {
				acc = t
			} else {
				acc = dist.MinIndepInto(a.scratch, acc, t)
			}
		}
		if acc != nil {
			acc = keeper.Persist(acc)
		}
		req[n] = acc
	}
	a.required = req
	a.deadline = deadline
	return nil
}

// HasRequired reports whether a required-time pass is cached and
// consistent with the current arrivals.
func (a *Analysis) HasRequired() bool { return a.required != nil }

// Deadline returns the sink deadline distribution of the cached
// required-time pass, or nil when none is cached.
func (a *Analysis) Deadline() *dist.Dist { return a.deadline }

// Required returns the required-time distribution at a node, or nil
// when no required-time pass is cached (call ComputeRequired first).
func (a *Analysis) Required(n graph.NodeID) *dist.Dist {
	if a.required == nil {
		return nil
	}
	return a.required[n]
}

// Slack returns the statistical slack distribution at a node: the
// distribution of required minus arrival, treating the two as
// independent. Shared paths correlate them in reality, so tail
// probabilities are approximate — but the sign structure (mass below
// zero = probability the node violates the deadline) is the queryable
// criticality signal the paper otherwise obtains from Monte Carlo.
// Returns nil when no required-time pass is cached.
func (a *Analysis) Slack(n graph.NodeID) *dist.Dist {
	if a.required == nil {
		return nil
	}
	return dist.SubConvolve(a.required[n], a.arrival[n])
}

// InvalidateRequired drops the cached backward pass; arrival mutations
// call it internally, and sessions call it when the deadline changes.
func (a *Analysis) InvalidateRequired() {
	a.required = nil
	a.deadline = nil
}

// State is an O(nodes) snapshot of the analysis for checkpoint/rollback:
// distributions are immutable once computed, so the snapshot shares them
// and only copies the index slices.
type State struct {
	arrival  []*dist.Dist
	edge     []*dist.Dist
	required []*dist.Dist
	deadline *dist.Dist
}

// Snapshot captures the current analysis state.
func (a *Analysis) Snapshot() *State {
	st := &State{
		arrival:  append([]*dist.Dist(nil), a.arrival...),
		edge:     append([]*dist.Dist(nil), a.edge...),
		deadline: a.deadline,
	}
	if a.required != nil {
		st.required = append([]*dist.Dist(nil), a.required...)
	}
	return st
}

// Restore rewinds the analysis to a snapshot taken on the same design.
func (a *Analysis) Restore(st *State) {
	copy(a.arrival, st.arrival)
	copy(a.edge, st.edge)
	if st.required != nil {
		a.required = append(a.required[:0], st.required...)
	} else {
		a.required = nil
	}
	a.deadline = st.deadline
}
