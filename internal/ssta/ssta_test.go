package ssta

import (
	"context"
	"math"
	"strings"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/design"
	"statsize/internal/dist"
	"statsize/internal/graph"
	"statsize/internal/montecarlo"
	"statsize/internal/netlist"
	"statsize/internal/sta"
)

func newDesign(t *testing.T, name string) *design.Design {
	t.Helper()
	lib := cell.Default180nm()
	var nl *netlist.Netlist
	if name == "c17" {
		nl = netlist.C17(lib)
	} else {
		sp, ok := circuitgen.ByName(name)
		if !ok {
			t.Fatalf("unknown circuit %q", name)
		}
		var err error
		nl, err = circuitgen.Generate(lib, sp)
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func analyze(t *testing.T, d *design.Design, bins int) *Analysis {
	t.Helper()
	a, err := Analyze(context.Background(), d, d.SuggestDT(bins))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDegenerateSigmaMatchesSTA(t *testing.T) {
	lib := cell.Default180nm()
	lib.SigmaRatio = 0 // point-mass delays
	nl := netlist.C17(lib)
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	det := sta.Analyze(d).CircuitDelay()
	a, err := Analyze(context.Background(), d, det/2000)
	if err != nil {
		t.Fatal(err)
	}
	// Point masses smear by up to a bin per convolution; with 2000 bins
	// over the circuit delay and ~5 levels the mean stays within a few
	// bins of the deterministic delay.
	if diff := math.Abs(a.SinkDist().Mean() - det); diff > 5*a.DT {
		t.Errorf("degenerate SSTA mean %v vs STA %v (diff %v)", a.SinkDist().Mean(), det, diff)
	}
	if diff := math.Abs(a.Percentile(0.5) - det); diff > 10*a.DT {
		t.Errorf("degenerate SSTA median %v vs STA %v", a.Percentile(0.5), det)
	}
}

func TestSinkDominatesDeterministicLowerBound(t *testing.T) {
	// With symmetric truncated-Gaussian edge delays, the statistical
	// circuit delay mean exceeds the nominal deterministic delay (max of
	// random variables is super-additive) and the sink spread is positive.
	d := newDesign(t, "c432")
	det := sta.Analyze(d).CircuitDelay()
	a := analyze(t, d, 600)
	if a.SinkDist().Mean() < det*0.98 {
		t.Errorf("statistical mean %v below nominal delay %v", a.SinkDist().Mean(), det)
	}
	if a.Percentile(0.99) <= a.Percentile(0.5) {
		t.Error("99th percentile must exceed median")
	}
}

// buildChain returns a reconvergence-free chain of inverters: SSTA is
// exact on trees, so Monte Carlo must agree tightly.
func buildChain(t *testing.T, n int) *design.Design {
	t.Helper()
	lib := cell.Default180nm()
	var b strings.Builder
	b.WriteString("INPUT(a)\nOUTPUT(z)\n")
	prev := "a"
	for i := 0; i < n; i++ {
		name := "z"
		if i < n-1 {
			name = "n" + string(rune('a'+i))
		}
		b.WriteString(name + " = NOT(" + prev + ")\n")
		prev = name
	}
	nl, err := netlist.ParseBench(strings.NewReader(b.String()), "chain", lib)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestChainMatchesMonteCarlo(t *testing.T) {
	d := buildChain(t, 12)
	a := analyze(t, d, 1500)
	mc, err := montecarlo.Run(context.Background(), d, 40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got, want := a.Percentile(p), mc.Percentile(p)
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("chain p%v: SSTA %v vs MC %v (%.2f%%)", p, got, want, rel*100)
		}
	}
	if rel := math.Abs(a.SinkDist().Mean()-mc.Mean()) / mc.Mean(); rel > 0.01 {
		t.Errorf("chain mean: SSTA %v vs MC %v", a.SinkDist().Mean(), mc.Mean())
	}
}

func TestBoundIsConservativeOnReconvergentCircuit(t *testing.T) {
	// On reconvergent circuits the independence assumption yields an
	// upper bound on the delay CDF: SSTA percentiles sit at or above the
	// exact (Monte Carlo) ones, up to sampling noise.
	d := newDesign(t, "c432")
	a := analyze(t, d, 600)
	mc, err := montecarlo.Run(context.Background(), d, 20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got, want := a.Percentile(p), mc.Percentile(p)
		if got < want*(1-0.005) {
			t.Errorf("p%v: SSTA bound %v below MC %v", p, got, want)
		}
		// Section 4 of the paper: the bound is tight (about 1% at p99).
		if got > want*1.05 {
			t.Errorf("p%v: SSTA bound %v too loose vs MC %v", p, got, want)
		}
	}
}

func TestResizeCommitMatchesFullReanalysis(t *testing.T) {
	d := newDesign(t, "c432")
	a := analyze(t, d, 400)
	// Resize a handful of gates spread across the circuit.
	for _, gid := range []netlist.GateID{0, 5, 17, 42, 99} {
		d.SetWidth(gid, d.Width(gid)+d.Lib.DeltaW)
		n, err := a.ResizeCommit(context.Background(), gid)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("gate %d: nothing recomputed", gid)
		}
		full, err := Analyze(context.Background(), d, a.DT)
		if err != nil {
			t.Fatal(err)
		}
		g := d.E.G
		for node := 0; node < g.NumNodes(); node++ {
			if !distEqual(a.arrival[node], full.arrival[node]) {
				t.Fatalf("gate %d: arrival at node %d diverged after incremental commit", gid, node)
			}
		}
		if n >= g.NumNodes() {
			t.Errorf("gate %d: incremental recompute touched every node", gid)
		}
	}
}

func distEqual(a, b interface {
	Percentile(float64) float64
}) bool {
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		if math.Abs(a.Percentile(p)-b.Percentile(p)) > 1e-12 {
			return false
		}
	}
	return true
}

func TestOverlayFallsBackToBase(t *testing.T) {
	// Nil-returning overlays must reproduce the base analysis exactly.
	d := newDesign(t, "c17")
	a := analyze(t, d, 800)
	g := d.E.G
	arrNil := func(graph.NodeID) *dist.Dist { return nil }
	delayNil := func(graph.EdgeID) *dist.Dist { return nil }
	for _, n := range g.Topo() {
		if n == g.Source() {
			continue
		}
		re := a.ArrivalWithOverlay(n, arrNil, delayNil)
		if !dist.ApproxEqual(re, a.Arrival(n), 0) {
			t.Fatalf("overlay recompute differs from base at node %d", n)
		}
	}
}

func TestOverlaySubstitutesPerturbedDelay(t *testing.T) {
	// Substituting a faster delay on one edge must shift that node's
	// arrival earlier (or leave it unchanged if another fanin dominates).
	d := newDesign(t, "c17")
	a := analyze(t, d, 800)
	g := d.E.G
	n22, _ := d.NL.NetByName("22")
	node := d.E.NodeOf[n22]
	eid := g.In(node)[0]
	faster := a.EdgeDelay(eid).ShiftBins(-5)
	perturbed := a.ArrivalWithOverlay(node, nil, func(e graph.EdgeID) *dist.Dist {
		if e == eid {
			return faster
		}
		return nil
	})
	gap := dist.MaxPercentileGap(a.Arrival(node), perturbed)
	if gap < 0 || gap > 5*a.DT+1e-9 {
		t.Errorf("perturbed arrival gap %v outside [0, 5 bins]", gap)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	d := newDesign(t, "c17")
	if _, err := Analyze(context.Background(), d, 0); err == nil {
		t.Error("expected error for dt=0")
	}
	if _, err := Analyze(context.Background(), d, -1); err == nil {
		t.Error("expected error for negative dt")
	}
}

func TestAffectedGates(t *testing.T) {
	d := newDesign(t, "c17")
	// Gate driving net 22 = NAND(10, 16): affected set is itself plus
	// the drivers of nets 10 and 16.
	n22, _ := d.NL.NetByName("22")
	x := d.NL.Driver(n22)
	got := AffectedGates(d, x)
	want := map[netlist.GateID]bool{x: true}
	for _, in := range d.NL.Gate(x).Ins {
		want[d.NL.Driver(in)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("affected gates %v, want %d entries", got, len(want))
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected affected gate %d", g)
		}
	}
	// A gate fed directly by PIs is affected alone.
	n10, _ := d.NL.NetByName("10")
	solo := AffectedGates(d, d.NL.Driver(n10))
	if len(solo) != 1 {
		t.Errorf("PI-fed gate affected set %v, want just itself", solo)
	}
}

// TestZeroFaninDiagnostic pins the defensive contract of the forward
// pass: a node with no fanin edges (only possible through a
// disconnected or malformed elaboration — graph validation rejects such
// topologies, but the analysis must not rely on that) yields a
// diagnostic error instead of a nil arrival that would nil-deref much
// later inside dist.Convolve or SinkDist. The source node is the one
// legitimately fanin-free node, so it exercises the guard directly.
func TestZeroFaninDiagnostic(t *testing.T) {
	d := newDesign(t, "c17")
	a := analyze(t, d, 400)
	src := d.E.G.Source()
	if arr, err := a.arrivalOrErr(src, nil); err == nil || arr != nil {
		t.Fatalf("zero-fanin node: arrival %v, err %v — want nil arrival with diagnostic error", arr, err)
	} else if !strings.Contains(err.Error(), "no fanin edges") {
		t.Errorf("diagnostic %q does not name the zero-fanin condition", err)
	}
}

// TestAnalyzeParallelDeterminism: the level-parallel forward pass must
// be bit-identical to the serial reference at every worker count —
// every edge-delay distribution and every arrival, not just the sink.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"c17", "c432", "c1908"} {
		t.Run(name, func(t *testing.T) {
			d := newDesign(t, name)
			dt := d.SuggestDT(400)
			serial, err := AnalyzeParallel(ctx, d, dt, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				parallel, err := AnalyzeParallel(ctx, d, dt, workers)
				if err != nil {
					t.Fatal(err)
				}
				g := d.E.G
				for e := 0; e < g.NumEdges(); e++ {
					se, pe := serial.EdgeDelay(graph.EdgeID(e)), parallel.EdgeDelay(graph.EdgeID(e))
					if (se == nil) != (pe == nil) || (se != nil && !dist.ApproxEqual(se, pe, 0)) {
						t.Fatalf("workers=%d: edge %d delay diverged from serial", workers, e)
					}
				}
				for n := 0; n < g.NumNodes(); n++ {
					if !dist.ApproxEqual(serial.Arrival(graph.NodeID(n)), parallel.Arrival(graph.NodeID(n)), 0) {
						t.Fatalf("workers=%d: arrival at node %d diverged from serial", workers, n)
					}
				}
			}
		})
	}
}

// TestPerturbedDelaysMutationFree: evaluating a candidate's perturbed
// delays must leave the design bit-identical (no width, load or total
// drift) and must match the historical mutate-evaluate-restore route
// (design.WithWidth + cached-delay refresh) distribution for
// distribution.
func TestPerturbedDelaysMutationFree(t *testing.T) {
	d := newDesign(t, "c432")
	a := analyze(t, d, 400)
	for g := 0; g < d.NL.NumGates(); g += 7 {
		gid := netlist.GateID(g)
		w := d.Width(gid) + d.Lib.DeltaW
		widthsBefore := make([]float64, d.NL.NumGates())
		for i := range widthsBefore {
			widthsBefore[i] = d.Width(netlist.GateID(i))
		}
		loadsBefore := make([]float64, d.NL.NumNets())
		for i := range loadsBefore {
			loadsBefore[i] = d.Load(netlist.NetID(i))
		}
		totalBefore := d.TotalWidth()

		got, err := a.PerturbedDelays(gid, w)
		if err != nil {
			t.Fatal(err)
		}

		if d.TotalWidth() != totalBefore {
			t.Fatalf("gate %d: PerturbedDelays changed total width", g)
		}
		for i := range widthsBefore {
			if d.Width(netlist.GateID(i)) != widthsBefore[i] {
				t.Fatalf("gate %d: PerturbedDelays changed width of gate %d", g, i)
			}
		}
		for i := range loadsBefore {
			if d.Load(netlist.NetID(i)) != loadsBefore[i] {
				t.Fatalf("gate %d: PerturbedDelays changed load of net %d", g, i)
			}
		}

		// Reference: the deprecated mutate-and-restore route.
		want := make(map[graph.EdgeID]*dist.Dist)
		err = d.WithWidth(gid, w, func() error {
			for _, ag := range AffectedGates(d, gid) {
				for _, eid := range d.E.GateEdges[ag] {
					dd, err := d.EdgeDelayDist(a.DT, eid)
					if err != nil {
						return err
					}
					want[eid] = dd
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("gate %d: %d perturbed edges, reference has %d", g, len(got), len(want))
		}
		for eid, wd := range want {
			gd, ok := got[eid]
			if !ok || !dist.ApproxEqual(gd, wd, 0) {
				t.Fatalf("gate %d edge %d: mutation-free delay diverged from mutate-and-restore reference", g, eid)
			}
		}
	}
}
