package montecarlo

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"statsize/internal/design"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

// CorrModel describes spatially correlated intra-die variation in the
// grid style of Chang & Sapatnekar (ICCAD'03, the paper's reference
// [5]): each gate's delay deviation mixes a chip-global component, a
// placement-region component, and an independent local component. The
// paper's optimizer explicitly does not model such correlations
// (Section 2); RunCorrelated exists to quantify what that costs.
type CorrModel struct {
	// GlobalFrac and RegionFrac are the variance fractions of the shared
	// components; the remainder is gate-local. Both non-negative with
	// sum <= 1.
	GlobalFrac float64
	RegionFrac float64
	// Grid is the placement grid arity (Grid x Grid regions). Gates are
	// assigned to regions by a synthetic row-major placement of the
	// netlist. Default 4.
	Grid int
}

// Validate checks the variance budget.
func (m CorrModel) Validate() error {
	if m.GlobalFrac < 0 || m.RegionFrac < 0 || m.GlobalFrac+m.RegionFrac > 1 {
		return fmt.Errorf("montecarlo: variance fractions %v+%v invalid", m.GlobalFrac, m.RegionFrac)
	}
	return nil
}

// RunCorrelated simulates the design under spatially correlated
// variation. Each sample draws one global normal, one normal per grid
// region and one per gate, mixes them by the model's variance fractions,
// clamps the combined deviation at the library's truncation, and runs a
// longest-path pass. With GlobalFrac = RegionFrac = 0 it degenerates to
// the independent model of Run (up to the clamping of the combined
// deviate).
func RunCorrelated(ctx context.Context, d *design.Design, samples int, seed int64, m CorrModel) (*Result, error) {
	if samples < 1 {
		return nil, fmt.Errorf("montecarlo: %d samples", samples)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	grid := m.Grid
	if grid <= 0 {
		grid = 4
	}
	g := d.E.G
	rng := rand.New(rand.NewSource(seed))
	nominal := make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		nominal[e] = d.EdgeNominalDelay(graph.EdgeID(e))
	}
	region := placeGates(d, grid)
	sigma, trunc := d.Lib.SigmaRatio, d.Lib.TruncSigmas
	wGlobal := math.Sqrt(m.GlobalFrac)
	wRegion := math.Sqrt(m.RegionFrac)
	wLocal := math.Sqrt(1 - m.GlobalFrac - m.RegionFrac)

	topo := g.Topo()
	arrival := make([]float64, g.NumNodes())
	regionZ := make([]float64, grid*grid)
	gateZ := make([]float64, d.NL.NumGates())
	delay := make([]float64, g.NumEdges())
	out := make([]float64, samples)
	for s := 0; s < samples; s++ {
		if s%cancelCheckStride == 0 && ctx.Err() != nil {
			return canceled(ctx, out[:s])
		}
		zg := rng.NormFloat64()
		for r := range regionZ {
			regionZ[r] = rng.NormFloat64()
		}
		for i := range gateZ {
			z := wGlobal*zg + wRegion*regionZ[region[i]] + wLocal*rng.NormFloat64()
			if z > trunc {
				z = trunc
			} else if z < -trunc {
				z = -trunc
			}
			gateZ[i] = z
		}
		for e := range delay {
			gid := d.E.EdgeGate[graph.EdgeID(e)]
			if gid == netlist.NoGate {
				delay[e] = 0
				continue
			}
			delay[e] = nominal[e] * (1 + sigma*gateZ[gid])
		}
		for _, n := range topo {
			best := 0.0
			for _, eid := range g.In(n) {
				ed := g.EdgeAt(eid)
				if t := arrival[ed.From] + delay[eid]; t > best {
					best = t
				}
			}
			arrival[n] = best
		}
		out[s] = arrival[g.Sink()]
	}
	sort.Float64s(out)
	return &Result{Delays: out}, nil
}

// placeGates assigns gates to grid regions with a synthetic row-major
// placement ordered by logic level then ID — adjacent logic tends to
// share a region, which is what makes spatial correlation matter.
func placeGates(d *design.Design, grid int) []int {
	n := d.NL.NumGates()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	level := func(gi int) int {
		return d.E.G.Level(d.E.NodeOf[d.NL.Gate(netlist.GateID(gi)).Out])
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := level(order[a]), level(order[b])
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	region := make([]int, n)
	cells := grid * grid
	perCell := (n + cells - 1) / cells
	for rank, gi := range order {
		region[gi] = rank / perCell
	}
	return region
}
