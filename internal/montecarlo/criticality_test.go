package montecarlo

import (
	"context"
	"math"
	"strings"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/design"
	"statsize/internal/netlist"
)

func chainDesign(t *testing.T) *design.Design {
	t.Helper()
	lib := cell.Default180nm()
	src := "INPUT(a)\nOUTPUT(z)\nm1 = NOT(a)\nm2 = NOT(m1)\nz = NOT(m2)\n"
	nl, err := netlist.ParseBench(strings.NewReader(src), "chain3", lib)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCriticalityChainIsOne(t *testing.T) {
	d := chainDesign(t)
	crit, err := Criticality(context.Background(), d, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for g, c := range crit {
		if c != 1.0 {
			t.Errorf("chain gate %d criticality %v, want 1", g, c)
		}
	}
}

func TestCriticalityBalancedFork(t *testing.T) {
	lib := cell.Default180nm()
	// Two identical parallel branches merging at a NAND: each branch
	// should be critical about half the time.
	src := `INPUT(a)
INPUT(b)
OUTPUT(z)
p = NOT(a)
q = NOT(b)
z = NAND(p, q)
`
	nl, err := netlist.ParseBench(strings.NewReader(src), "fork", lib)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.New(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := Criticality(context.Background(), d, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	zGate, _ := nl.NetByName("z")
	if crit[nl.Driver(zGate)] != 1.0 {
		t.Error("merge gate must always be critical")
	}
	p, _ := nl.NetByName("p")
	q, _ := nl.NetByName("q")
	cp, cq := crit[nl.Driver(p)], crit[nl.Driver(q)]
	// The NAND pin factors skew the split slightly off 1/2; both
	// branches must be critical a substantial fraction of the time and
	// the fractions must sum to ~1 (paths are disjoint above the merge).
	if cp < 0.15 || cq < 0.15 {
		t.Errorf("fork criticalities %v/%v too lopsided", cp, cq)
	}
	if math.Abs(cp+cq-1) > 0.02 {
		t.Errorf("fork criticalities sum to %v, want ~1", cp+cq)
	}
}

func TestCriticalityValidation(t *testing.T) {
	d := chainDesign(t)
	if _, err := Criticality(context.Background(), d, 0, 1); err == nil {
		t.Error("expected sample-count error")
	}
}

func TestCorrelatedDegeneratesToIndependent(t *testing.T) {
	d := chainDesign(t)
	corr, err := RunCorrelated(context.Background(), d, 4000, 11, CorrModel{})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := Run(context.Background(), d, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Same model (fully local variance): distributions agree closely.
	if rel := math.Abs(corr.Mean()-ind.Mean()) / ind.Mean(); rel > 0.01 {
		t.Errorf("zero-correlation run diverges from independent: %.2f%%", rel*100)
	}
}

func TestCorrelationWidensDistribution(t *testing.T) {
	lib := cell.Default180nm()
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := RunCorrelated(context.Background(), d, 20000, 13, CorrModel{})
	if err != nil {
		t.Fatal(err)
	}
	corr, err := RunCorrelated(context.Background(), d, 20000, 13, CorrModel{GlobalFrac: 0.6, RegionFrac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Shared variation cannot average out across a path: the correlated
	// circuit-delay distribution is strictly wider.
	if corr.Std() <= ind.Std() {
		t.Errorf("correlated std %v not wider than independent %v", corr.Std(), ind.Std())
	}
	if corr.Percentile(0.99) <= ind.Percentile(0.99) {
		t.Errorf("correlated p99 %v not above independent %v",
			corr.Percentile(0.99), ind.Percentile(0.99))
	}
}

func TestCorrModelValidation(t *testing.T) {
	d := chainDesign(t)
	if _, err := RunCorrelated(context.Background(), d, 10, 1, CorrModel{GlobalFrac: 0.8, RegionFrac: 0.5}); err == nil {
		t.Error("expected variance-budget error")
	}
	if _, err := RunCorrelated(context.Background(), d, 10, 1, CorrModel{GlobalFrac: -0.1}); err == nil {
		t.Error("expected negative-fraction error")
	}
	if _, err := RunCorrelated(context.Background(), d, 0, 1, CorrModel{}); err == nil {
		t.Error("expected sample-count error")
	}
}

func TestCorrelatedDeterministicBySeed(t *testing.T) {
	d := chainDesign(t)
	m := CorrModel{GlobalFrac: 0.3, RegionFrac: 0.3, Grid: 2}
	a, err := RunCorrelated(context.Background(), d, 200, 21, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCorrelated(context.Background(), d, 200, 21, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Delays {
		if a.Delays[i] != b.Delays[i] {
			t.Fatal("same seed produced different correlated samples")
		}
	}
}
