package montecarlo

import (
	"context"
	"math"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/design"
	"statsize/internal/netlist"
	"statsize/internal/sta"
)

func c17Design(t *testing.T) *design.Design {
	t.Helper()
	lib := cell.Default180nm()
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeterministicBySeed(t *testing.T) {
	d := c17Design(t)
	a, err := Run(context.Background(), d, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), d, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Delays {
		if a.Delays[i] != b.Delays[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	c, _ := Run(context.Background(), d, 500, 43)
	same := true
	for i := range a.Delays {
		if a.Delays[i] != c.Delays[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestSamplesSortedAndBounded(t *testing.T) {
	d := c17Design(t)
	r, err := Run(context.Background(), d, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := sta.Analyze(d).CircuitDelay()
	sigma := d.Lib.SigmaRatio
	prev := 0.0
	for _, v := range r.Delays {
		if v < prev {
			t.Fatal("samples not sorted")
		}
		prev = v
	}
	// Every sampled delay is within the ±3σ truncation band scaled to
	// path delays: crude bounds of nominal*(1±3σ).
	if r.Delays[0] < det*(1-3*sigma)-1e-9 {
		t.Errorf("min sample %v below truncation floor", r.Delays[0])
	}
	if r.Delays[len(r.Delays)-1] > det*(1+3*sigma)+1e-9 {
		t.Errorf("max sample %v above truncation ceiling", r.Delays[len(r.Delays)-1])
	}
}

func TestMeanNearNominal(t *testing.T) {
	// The statistical mean exceeds the nominal circuit delay slightly
	// (max over random paths) but stays within a few sigma of it.
	d := c17Design(t)
	r, err := Run(context.Background(), d, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	det := sta.Analyze(d).CircuitDelay()
	if r.Mean() < det*0.97 || r.Mean() > det*1.15 {
		t.Errorf("MC mean %v implausible vs nominal %v", r.Mean(), det)
	}
	if r.Std() <= 0 {
		t.Error("sample std must be positive")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	r := &Result{Delays: []float64{1, 2, 3, 4, 5}}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.625, 3.5},
	}
	for _, c := range cases {
		if got := r.Percentile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	single := &Result{Delays: []float64{7}}
	if single.Percentile(0.5) != 7 {
		t.Error("single-sample percentile")
	}
}

func TestRunValidation(t *testing.T) {
	d := c17Design(t)
	if _, err := Run(context.Background(), d, 0, 1); err == nil {
		t.Error("expected error for zero samples")
	}
}
