package montecarlo

import (
	"context"
	"errors"
	"math"
	"testing"

	"statsize/internal/cell"
	"statsize/internal/design"
	"statsize/internal/netlist"
	"statsize/internal/sta"
)

func c17Design(t *testing.T) *design.Design {
	t.Helper()
	lib := cell.Default180nm()
	d, err := design.New(netlist.C17(lib), lib)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeterministicBySeed(t *testing.T) {
	d := c17Design(t)
	a, err := Run(context.Background(), d, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), d, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Delays {
		if a.Delays[i] != b.Delays[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	c, _ := Run(context.Background(), d, 500, 43)
	same := true
	for i := range a.Delays {
		if a.Delays[i] != c.Delays[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestSamplesSortedAndBounded(t *testing.T) {
	d := c17Design(t)
	r, err := Run(context.Background(), d, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := sta.Analyze(d).CircuitDelay()
	sigma := d.Lib.SigmaRatio
	prev := 0.0
	for _, v := range r.Delays {
		if v < prev {
			t.Fatal("samples not sorted")
		}
		prev = v
	}
	// Every sampled delay is within the ±3σ truncation band scaled to
	// path delays: crude bounds of nominal*(1±3σ).
	if r.Delays[0] < det*(1-3*sigma)-1e-9 {
		t.Errorf("min sample %v below truncation floor", r.Delays[0])
	}
	if r.Delays[len(r.Delays)-1] > det*(1+3*sigma)+1e-9 {
		t.Errorf("max sample %v above truncation ceiling", r.Delays[len(r.Delays)-1])
	}
}

func TestMeanNearNominal(t *testing.T) {
	// The statistical mean exceeds the nominal circuit delay slightly
	// (max over random paths) but stays within a few sigma of it.
	d := c17Design(t)
	r, err := Run(context.Background(), d, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	det := sta.Analyze(d).CircuitDelay()
	if r.Mean() < det*0.97 || r.Mean() > det*1.15 {
		t.Errorf("MC mean %v implausible vs nominal %v", r.Mean(), det)
	}
	if r.Std() <= 0 {
		t.Error("sample std must be positive")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	r := &Result{Delays: []float64{1, 2, 3, 4, 5}}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.625, 3.5},
	}
	for _, c := range cases {
		if got := r.Percentile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	single := &Result{Delays: []float64{7}}
	if single.Percentile(0.5) != 7 {
		t.Error("single-sample percentile")
	}
}

func TestRunValidation(t *testing.T) {
	d := c17Design(t)
	if _, err := Run(context.Background(), d, 0, 1); err == nil {
		t.Error("expected error for zero samples")
	}
}

// countdownCtx is a context whose Err() flips to context.Canceled after
// a fixed number of polls — a deterministic stand-in for "the caller
// cancels while sampling is underway". Run polls at s=0 and then once
// per cancelCheckStride samples, so a budget of k polls stops the run
// with exactly k*cancelCheckStride samples drawn.
type countdownCtx struct {
	context.Context
	polls int
}

func (c *countdownCtx) Err() error {
	if c.polls <= 0 {
		return context.Canceled
	}
	c.polls--
	return nil
}

// TestRunCancelMidSampling: canceling a run mid-way returns the partial
// sorted sample set together with a wrapped context error, and the
// partial result answers statistics queries without panicking.
func TestRunCancelMidSampling(t *testing.T) {
	d := c17Design(t)
	ctx := &countdownCtx{Context: context.Background(), polls: 3}
	r, err := Run(ctx, d, 100000, 1)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if r == nil {
		t.Fatal("canceled run returned nil partial result")
	}
	if want := 3 * cancelCheckStride; len(r.Delays) != want {
		t.Fatalf("partial result holds %d samples, want %d", len(r.Delays), want)
	}
	for i := 1; i < len(r.Delays); i++ {
		if r.Delays[i] < r.Delays[i-1] {
			t.Fatal("partial samples not sorted")
		}
	}
	if p := r.Percentile(0.5); math.IsNaN(p) || p <= 0 {
		t.Errorf("median of partial result = %v", p)
	}
}

// TestRunCancelBeforeFirstSample: a context canceled from the start
// yields an empty partial result whose statistics degrade gracefully —
// Percentile must return NaN, never index out of range.
func TestRunCancelBeforeFirstSample(t *testing.T) {
	d := c17Design(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := Run(ctx, d, 1000, 1)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if r == nil {
		t.Fatal("canceled run returned nil partial result")
	}
	if len(r.Delays) != 0 {
		t.Fatalf("expected no samples, got %d", len(r.Delays))
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := r.Percentile(p); !math.IsNaN(got) {
			t.Errorf("Percentile(%v) on empty result = %v, want NaN", p, got)
		}
	}
}

// TestRunCorrelatedCancel: the correlated-variation runner shares the
// cancellation contract.
func TestRunCorrelatedCancel(t *testing.T) {
	d := c17Design(t)
	ctx := &countdownCtx{Context: context.Background(), polls: 2}
	r, err := RunCorrelated(ctx, d, 100000, 1, CorrModel{GlobalFrac: 0.3, RegionFrac: 0.3})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("expected wrapped context.Canceled, got %v", err)
	}
	if want := 2 * cancelCheckStride; r == nil || len(r.Delays) != want {
		t.Fatalf("partial correlated result wrong: %v", r)
	}
	if p := r.Percentile(0.9); math.IsNaN(p) || p <= 0 {
		t.Errorf("p90 of partial correlated result = %v", p)
	}
}
