// Package montecarlo estimates the exact circuit-delay distribution by
// sampling: every pin-to-pin delay is drawn independently from its
// continuous truncated Gaussian (the paper's intra-die model) and a
// deterministic longest-path pass evaluates each sample.
//
// Unlike the SSTA engine — which ignores reconvergent-fanout correlation
// and therefore computes a conservative upper bound on the delay CDF —
// Monte Carlo evaluates every sample on one consistent set of edge
// delays, capturing those correlations exactly (up to sampling noise).
// The paper uses this comparison in Figure 10 and reports <1% difference
// at the 99th percentile.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"statsize/internal/design"
	"statsize/internal/graph"
)

// cancelCheckStride is how many samples pass between context checks.
const cancelCheckStride = 64

// Result holds the sorted sample delays of one run.
type Result struct {
	Delays []float64 // ascending
}

// canceled builds the partial Result of an interrupted sampling run:
// the samples drawn so far, sorted, alongside the wrapped context
// error, so a caller that chooses to can still read coarse statistics
// off the truncated sample set.
func canceled(ctx context.Context, drawn []float64) (*Result, error) {
	sort.Float64s(drawn)
	return &Result{Delays: drawn}, fmt.Errorf(
		"montecarlo: canceled after %d samples: %w", len(drawn), ctx.Err())
}

// Run simulates the design with the given sample count and seed. On
// cancellation it returns the partial (sorted) sample set together with
// the wrapped context error.
func Run(ctx context.Context, d *design.Design, samples int, seed int64) (*Result, error) {
	if samples < 1 {
		return nil, fmt.Errorf("montecarlo: %d samples", samples)
	}
	g := d.E.G
	rng := rand.New(rand.NewSource(seed))
	nominal := make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		nominal[e] = d.EdgeNominalDelay(graph.EdgeID(e))
	}
	sigma := d.Lib.SigmaRatio
	trunc := d.Lib.TruncSigmas
	topo := g.Topo()
	arrival := make([]float64, g.NumNodes())
	out := make([]float64, samples)
	delay := make([]float64, g.NumEdges())
	for s := 0; s < samples; s++ {
		if s%cancelCheckStride == 0 && ctx.Err() != nil {
			return canceled(ctx, out[:s])
		}
		for e := range delay {
			if nominal[e] == 0 {
				continue // source/sink arcs
			}
			delay[e] = nominal[e] * (1 + sigma*truncNorm(rng, trunc))
		}
		for i := range arrival {
			arrival[i] = 0
		}
		for _, n := range topo {
			best := 0.0
			for _, eid := range g.In(n) {
				ed := g.EdgeAt(eid)
				if t := arrival[ed.From] + delay[eid]; t > best {
					best = t
				}
			}
			arrival[n] = best
		}
		out[s] = arrival[g.Sink()]
	}
	sort.Float64s(out)
	return &Result{Delays: out}, nil
}

// truncNorm draws a standard normal rejected outside ±k.
func truncNorm(rng *rand.Rand, k float64) float64 {
	for {
		z := rng.NormFloat64()
		if z >= -k && z <= k {
			return z
		}
	}
}

// Percentile returns the p-quantile by linear interpolation of the order
// statistics. A result holding no samples — possible when a run is
// canceled before the first cancellation-check stride completes —
// returns NaN rather than panicking, so callers that keep a partial
// Result can probe it safely.
func (r *Result) Percentile(p float64) float64 {
	n := len(r.Delays)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return r.Delays[0]
	}
	if p <= 0 {
		return r.Delays[0]
	}
	if p >= 1 {
		return r.Delays[n-1]
	}
	x := p * float64(n-1)
	i := int(x)
	f := x - float64(i)
	if i+1 >= n {
		return r.Delays[n-1]
	}
	return r.Delays[i]*(1-f) + r.Delays[i+1]*f
}

// Mean returns the sample mean.
func (r *Result) Mean() float64 {
	s := 0.0
	for _, v := range r.Delays {
		s += v
	}
	return s / float64(len(r.Delays))
}

// Std returns the sample standard deviation.
func (r *Result) Std() float64 {
	m := r.Mean()
	s := 0.0
	for _, v := range r.Delays {
		s += (v - m) * (v - m)
	}
	if len(r.Delays) < 2 {
		return 0
	}
	return math.Sqrt(s / float64(len(r.Delays)-1))
}
