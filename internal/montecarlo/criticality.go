package montecarlo

import (
	"context"
	"fmt"
	"math/rand"

	"statsize/internal/design"
	"statsize/internal/graph"
	"statsize/internal/netlist"
)

// Criticality estimates, for every gate, the probability that it lies on
// the circuit's critical path — the statistical generalization of "being
// on the critical path" that motivates why the paper's optimizer must
// compute sensitivities for all gates rather than one path (Section
// 3.1). Each Monte Carlo sample backtracks its argmax path from the sink
// and credits every gate on it.
func Criticality(ctx context.Context, d *design.Design, samples int, seed int64) ([]float64, error) {
	if samples < 1 {
		return nil, fmt.Errorf("montecarlo: %d samples", samples)
	}
	g := d.E.G
	rng := rand.New(rand.NewSource(seed))
	nominal := make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		nominal[e] = d.EdgeNominalDelay(graph.EdgeID(e))
	}
	sigma, trunc := d.Lib.SigmaRatio, d.Lib.TruncSigmas
	topo := g.Topo()
	arrival := make([]float64, g.NumNodes())
	via := make([]graph.EdgeID, g.NumNodes()) // argmax in-edge per node
	delay := make([]float64, g.NumEdges())
	counts := make([]int, d.NL.NumGates())

	for s := 0; s < samples; s++ {
		if s%cancelCheckStride == 0 && ctx.Err() != nil {
			// Return the partial estimate over the samples drawn so far
			// (nil when none completed), mirroring Run's contract.
			var partial []float64
			if s > 0 {
				partial = estimates(counts, s)
			}
			return partial, fmt.Errorf("montecarlo: criticality canceled after %d samples: %w", s, ctx.Err())
		}
		for e := range delay {
			if nominal[e] == 0 {
				delay[e] = 0
				continue
			}
			delay[e] = nominal[e] * (1 + sigma*truncNorm(rng, trunc))
		}
		for _, n := range topo {
			best, bestEdge := 0.0, graph.EdgeID(-1)
			for _, eid := range g.In(n) {
				e := g.EdgeAt(eid)
				if t := arrival[e.From] + delay[eid]; bestEdge < 0 || t > best {
					best, bestEdge = t, eid
				}
			}
			arrival[n] = best
			via[n] = bestEdge
		}
		// Backtrack the unique argmax path and credit its gates.
		for n := g.Sink(); n != g.Source(); {
			eid := via[n]
			if gid := d.E.EdgeGate[eid]; gid != netlist.NoGate {
				counts[gid]++
			}
			n = g.EdgeAt(eid).From
		}
	}
	return estimates(counts, samples), nil
}

// estimates converts path-hit counts into per-gate criticality
// fractions over the given number of completed samples.
func estimates(counts []int, samples int) []float64 {
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / float64(samples)
	}
	return out
}
