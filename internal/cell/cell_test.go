package cell

import (
	"math"
	"testing"
)

func TestDefaultLibraryValid(t *testing.T) {
	l := Default180nm()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := KindByName("FLUXCAP"); ok {
		t.Error("unknown name resolved")
	}
}

func TestKindsWithInputsPartition(t *testing.T) {
	l := Default180nm()
	total := 0
	for n := 1; n <= l.MaxInputs(); n++ {
		ks := l.KindsWithInputs(n)
		total += len(ks)
		for _, k := range ks {
			if l.Spec(k).NumInputs != n {
				t.Errorf("%s misfiled under %d inputs", k, n)
			}
		}
	}
	if total != len(Kinds()) {
		t.Errorf("input-count partition covers %d of %d kinds", total, len(Kinds()))
	}
	if len(l.KindsWithInputs(1)) == 0 || len(l.KindsWithInputs(2)) == 0 {
		t.Error("library must provide 1- and 2-input cells")
	}
}

func TestDelayDecreasesWithWidth(t *testing.T) {
	l := Default180nm()
	for _, k := range Kinds() {
		prev := math.Inf(1)
		for w := 1.0; w <= 8; w += 0.5 {
			d := l.NominalDelay(k, 0, w, 20)
			if d >= prev {
				t.Errorf("%s: delay not decreasing in width at w=%v", k, w)
			}
			if d <= l.Spec(k).Dint {
				t.Errorf("%s: delay %v below intrinsic %v", k, d, l.Spec(k).Dint)
			}
			prev = d
		}
	}
}

func TestDelayIncreasesWithLoad(t *testing.T) {
	l := Default180nm()
	for _, k := range Kinds() {
		prev := 0.0
		for cl := 2.0; cl <= 64; cl *= 2 {
			d := l.NominalDelay(k, 0, 2.0, cl)
			if d <= prev {
				t.Errorf("%s: delay not increasing in load at cl=%v", k, cl)
			}
			prev = d
		}
	}
}

func TestEQ1Exact(t *testing.T) {
	l := Default180nm()
	s := l.Spec(NAND2)
	w, cl := 3.0, 17.0
	want := s.Dint + s.K*cl/(w*s.CcellUnit)
	got := l.NominalDelay(NAND2, 0, w, cl)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("EQ1: got %v want %v", got, want)
	}
}

func TestPinFactorSkew(t *testing.T) {
	l := Default180nm()
	d0 := l.NominalDelay(NAND3, 0, 1, 10)
	d1 := l.NominalDelay(NAND3, 1, 1, 10)
	d2 := l.NominalDelay(NAND3, 2, 1, 10)
	if !(d0 < d1 && d1 < d2) {
		t.Errorf("pin delays not increasing: %v %v %v", d0, d1, d2)
	}
	if math.Abs(d1/d0-(1+l.PinFactorStep)) > 1e-12 {
		t.Errorf("pin factor ratio %v, want %v", d1/d0, 1+l.PinFactorStep)
	}
}

func TestInputCapScalesWithWidth(t *testing.T) {
	l := Default180nm()
	base := l.InputCap(NOR2, 1)
	if math.Abs(l.InputCap(NOR2, 4)-4*base) > 1e-12 {
		t.Error("input cap must scale linearly with width")
	}
}

func TestWireCapMonotone(t *testing.T) {
	l := Default180nm()
	if l.WireCap(4) <= l.WireCap(1) {
		t.Error("wire cap must grow with fanout")
	}
	if l.WireCap(0) != l.WireCapBase {
		t.Error("zero-fanout wire cap must equal base")
	}
}

func TestDelayDistMoments(t *testing.T) {
	l := Default180nm()
	nom := l.NominalDelay(INV, 0, 2, 12)
	d, err := l.DelayDist(0.001, INV, 0, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-nom) > 1e-6 {
		t.Errorf("delay dist mean %v, want nominal %v", d.Mean(), nom)
	}
	// Std of a 3-sigma truncated Gaussian is slightly below sigma.
	sigma := l.SigmaRatio * nom
	if d.Std() > sigma || d.Std() < 0.9*sigma {
		t.Errorf("delay dist std %v, want slightly below %v", d.Std(), sigma)
	}
	// Support honors truncation.
	if d.MinTime() < nom-3*sigma-0.001 || d.MaxTime() > nom+3*sigma+0.001 {
		t.Error("delay dist support exceeds truncation")
	}
}

func TestClampWidth(t *testing.T) {
	l := Default180nm()
	if l.ClampWidth(0.2) != l.WMin {
		t.Error("clamp below WMin")
	}
	if l.ClampWidth(999) != l.WMax {
		t.Error("clamp above WMax")
	}
	if l.ClampWidth(3.5) != 3.5 {
		t.Error("clamp inside range must be identity")
	}
}

func TestValidateCatchesBadLibraries(t *testing.T) {
	mod := func(f func(*Library)) *Library {
		l := Default180nm()
		f(l)
		return l
	}
	cases := map[string]*Library{
		"sigma":  mod(func(l *Library) { l.SigmaRatio = 1.5 }),
		"trunc":  mod(func(l *Library) { l.TruncSigmas = 0 }),
		"wmin":   mod(func(l *Library) { l.WMin = 0 }),
		"wmax":   mod(func(l *Library) { l.WMax = 0.5 }),
		"deltaw": mod(func(l *Library) { l.DeltaW = 0 }),
		"wire":   mod(func(l *Library) { l.WireCapBase = -1 }),
		"cell":   mod(func(l *Library) { l.specs[INV].Dint = 0 }),
		"numin":  mod(func(l *Library) { l.specs[BUF].NumInputs = 0 }),
	}
	for name, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestNonPositiveWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Default180nm().NominalDelay(INV, 0, 0, 10)
}
