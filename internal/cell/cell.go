// Package cell provides a synthetic standard-cell library and the
// logical-effort style delay model of the paper (EQ 1):
//
//	De = Dint + K * Cload / Ccell
//
// where Dint is the cell's constant intrinsic delay, Cload the total
// capacitance driven by the output, K a per-cell constant, and Ccell the
// total capacitance of the cell — which scales linearly with the gate
// width, so upsizing a gate speeds it up while increasing the load it
// presents to its fanin gates.
//
// The paper used a 180 nm commercial library; this package substitutes a
// synthetic library with capacitances and delays of plausible 180 nm
// magnitude (documented in DESIGN.md). All delays are in nanoseconds and
// capacitances in femtofarads.
package cell

import (
	"fmt"

	"statsize/internal/dist"
)

// Kind identifies a standard cell function.
type Kind uint8

// The cell kinds of the library, grouped by input count.
const (
	INV Kind = iota
	BUF
	NAND2
	NOR2
	AND2
	OR2
	XOR2
	XNOR2
	NAND3
	NOR3
	AND3
	OR3
	NAND4
	NOR4
	numKinds
)

var kindNames = [numKinds]string{
	INV: "INV", BUF: "BUF",
	NAND2: "NAND2", NOR2: "NOR2", AND2: "AND2", OR2: "OR2",
	XOR2: "XOR2", XNOR2: "XNOR2",
	NAND3: "NAND3", NOR3: "NOR3", AND3: "AND3", OR3: "OR3",
	NAND4: "NAND4", NOR4: "NOR4",
}

// String returns the cell name, e.g. "NAND2".
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindByName resolves a cell name; ok is false for unknown names.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Kinds returns all cell kinds in the library.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Spec holds the timing and capacitance parameters of one cell at unit
// width.
type Spec struct {
	Kind      Kind
	NumInputs int
	Dint      float64 // intrinsic delay, ns
	K         float64 // effort coefficient of EQ 1, ns
	CinPerPin float64 // input pin capacitance at unit width, fF
	CcellUnit float64 // total cell capacitance at unit width, fF
}

// Library bundles the cell specs with the variability and sizing policy
// used across an analysis.
type Library struct {
	specs [numKinds]Spec

	// WireCapBase and WireCapPerFanout form the lumped wire load of a
	// net: WireCapBase + WireCapPerFanout * fanoutCount, in fF.
	WireCapBase      float64
	WireCapPerFanout float64

	// POLoad is the fixed capacitance seen by a net driving a primary
	// output, in fF.
	POLoad float64

	// SigmaRatio is the standard deviation of a pin-to-pin delay as a
	// fraction of its nominal value (the paper uses 10%), and TruncSigmas
	// where the Gaussian is truncated (the paper uses 3).
	SigmaRatio  float64
	TruncSigmas float64

	// Sizing policy: minimum width, maximum width and the coordinate
	// descent step Δw, in multiples of the minimum width.
	WMin, WMax, DeltaW float64

	// PinFactorStep skews pin-to-pin delays by input index:
	// pin i carries factor 1 + PinFactorStep*i, modeling the inner/outer
	// transistor stack asymmetry of real cells.
	PinFactorStep float64
}

// Default180nm returns the library used by all experiments: synthetic
// constants at 180 nm magnitudes, 10% sigma with 3-sigma truncation, and
// the sizing policy of the reproduction (w in [1,32], Δw = 0.5).
func Default180nm() *Library {
	l := &Library{
		WireCapBase:      1.2,
		WireCapPerFanout: 0.6,
		POLoad:           6.0,
		SigmaRatio:       0.10,
		TruncSigmas:      3.0,
		WMin:             1.0,
		WMax:             32.0,
		DeltaW:           0.5,
		PinFactorStep:    0.04,
	}
	add := func(k Kind, nin int, dint, kk, cin, ccell float64) {
		l.specs[k] = Spec{Kind: k, NumInputs: nin, Dint: dint, K: kk, CinPerPin: cin, CcellUnit: ccell}
	}
	// Constants follow logical-effort intuition: stacked-transistor cells
	// have larger input caps (logical effort) and intrinsic delays.
	add(INV, 1, 0.020, 0.030, 2.0, 3.2)
	add(BUF, 1, 0.034, 0.030, 2.0, 4.4)
	add(NAND2, 2, 0.028, 0.032, 2.7, 5.4)
	add(NOR2, 2, 0.030, 0.034, 3.3, 6.4)
	add(AND2, 2, 0.042, 0.032, 2.2, 6.0)
	add(OR2, 2, 0.046, 0.034, 2.2, 6.6)
	add(XOR2, 2, 0.055, 0.040, 3.6, 8.8)
	add(XNOR2, 2, 0.057, 0.040, 3.6, 8.8)
	add(NAND3, 3, 0.036, 0.035, 3.3, 8.2)
	add(NOR3, 3, 0.040, 0.038, 4.4, 9.6)
	add(AND3, 3, 0.050, 0.035, 2.4, 8.6)
	add(OR3, 3, 0.056, 0.038, 2.4, 9.2)
	add(NAND4, 4, 0.044, 0.038, 4.0, 11.0)
	add(NOR4, 4, 0.052, 0.042, 5.6, 13.0)
	return l
}

// Spec returns the parameters of a cell kind.
func (l *Library) Spec(k Kind) *Spec {
	if k >= numKinds {
		panic(fmt.Sprintf("cell: unknown kind %d", k))
	}
	return &l.specs[k]
}

// KindsWithInputs returns the cell kinds that take exactly n inputs.
func (l *Library) KindsWithInputs(n int) []Kind {
	var out []Kind
	for k := Kind(0); k < numKinds; k++ {
		if l.specs[k].NumInputs == n {
			out = append(out, k)
		}
	}
	return out
}

// MaxInputs returns the largest input count in the library.
func (l *Library) MaxInputs() int {
	m := 0
	for k := Kind(0); k < numKinds; k++ {
		if n := l.specs[k].NumInputs; n > m {
			m = n
		}
	}
	return m
}

// InputCap returns the capacitance one input pin of a cell of kind k at
// width w presents to its driving net, in fF.
func (l *Library) InputCap(k Kind, w float64) float64 {
	return l.specs[k].CinPerPin * w
}

// WireCap returns the lumped wire capacitance of a net with the given
// fanout count, in fF.
func (l *Library) WireCap(fanout int) float64 {
	return l.WireCapBase + l.WireCapPerFanout*float64(fanout)
}

// PinFactor returns the delay skew factor for input pin index `pin`.
func (l *Library) PinFactor(pin int) float64 {
	return 1 + l.PinFactorStep*float64(pin)
}

// NominalDelay evaluates EQ 1 for a cell of kind k at width w driving
// cload fF, seen from input pin index `pin`.
func (l *Library) NominalDelay(k Kind, pin int, w, cload float64) float64 {
	s := &l.specs[k]
	if w <= 0 {
		panic(fmt.Sprintf("cell: non-positive width %v", w))
	}
	return (s.Dint + s.K*cload/(w*s.CcellUnit)) * l.PinFactor(pin)
}

// DelayDist returns the discretized pin-to-pin delay distribution: a
// truncated Gaussian centered on the nominal delay with the library's
// sigma ratio and truncation (the paper's intra-die variation model).
func (l *Library) DelayDist(dt float64, k Kind, pin int, w, cload float64) (*dist.Dist, error) {
	nom := l.NominalDelay(k, pin, w, cload)
	return dist.TruncGauss(dt, nom, l.SigmaRatio*nom, l.TruncSigmas)
}

// ClampWidth restricts a width to the library's sizing range.
func (l *Library) ClampWidth(w float64) float64 {
	if w < l.WMin {
		return l.WMin
	}
	if w > l.WMax {
		return l.WMax
	}
	return w
}

// Validate checks internal consistency of a (possibly user-modified)
// library.
func (l *Library) Validate() error {
	for k := Kind(0); k < numKinds; k++ {
		s := &l.specs[k]
		if s.NumInputs < 1 {
			return fmt.Errorf("cell %s: input count %d", k, s.NumInputs)
		}
		if s.Dint <= 0 || s.K <= 0 || s.CinPerPin <= 0 || s.CcellUnit <= 0 {
			return fmt.Errorf("cell %s: non-positive parameter", k)
		}
	}
	if l.SigmaRatio < 0 || l.SigmaRatio >= 1 {
		return fmt.Errorf("cell: sigma ratio %v out of [0,1)", l.SigmaRatio)
	}
	if l.TruncSigmas <= 0 {
		return fmt.Errorf("cell: truncation %v sigmas", l.TruncSigmas)
	}
	if l.WMin <= 0 || l.WMax < l.WMin || l.DeltaW <= 0 {
		return fmt.Errorf("cell: sizing policy wmin=%v wmax=%v dw=%v", l.WMin, l.WMax, l.DeltaW)
	}
	if l.WireCapBase < 0 || l.WireCapPerFanout < 0 || l.POLoad < 0 {
		return fmt.Errorf("cell: negative wire/PO capacitance")
	}
	return nil
}
