//go:build tools

// Package tools pins the build/lint tool dependencies in go.mod, the
// standard tools.go pattern: the tools build tag never matches a real
// build, so nothing here links into the library, but `go install
// honnef.co/go/tools/cmd/staticcheck` inside the module now resolves
// to the version go.mod requires instead of whatever an ad-hoc
// @version flag in CI says. Upgrading the lint toolchain is a go.mod
// diff reviewed like any other dependency change.
package tools

import (
	_ "honnef.co/go/tools/cmd/staticcheck"
)
