package statsize

import (
	"errors"
	"strings"
	"testing"
)

func TestBenchmarkUnknownCircuitError(t *testing.T) {
	_, err := Benchmark("c1355x")
	var unknown *UnknownCircuitError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want *UnknownCircuitError", err)
	}
	if unknown.Name != "c1355x" {
		t.Errorf("error names %q", unknown.Name)
	}
	if !strings.Contains(err.Error(), "c1355x") {
		t.Error("message should include the circuit name")
	}
	eng := newEngine(t)
	if _, err := eng.Benchmark("nope"); !errors.As(err, &unknown) {
		t.Errorf("engine Benchmark err = %v, want *UnknownCircuitError", err)
	}
}

func TestLoadBenchMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage", "this is not a bench file\n"},
		{"unknown gate kind", "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n"},
		{"undriven net", "INPUT(a)\nOUTPUT(z)\nz = NOT(ghost)\n"},
		{"duplicate driver", "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = NOT(a)\n"},
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := LoadBench(strings.NewReader(tc.src), tc.name)
			if err == nil {
				t.Fatalf("parsed %q into %v, want error", tc.src, d.NL)
			}
		})
	}
}

func TestGenerateCircuitRejectsBadSpec(t *testing.T) {
	_, err := GenerateCircuit(CircuitSpec{Name: "bad", Nodes: 10, Edges: 2, PIs: 20, POs: 1, Depth: 3})
	if err == nil {
		t.Error("inconsistent spec accepted")
	}
}
