package statsize

import (
	"math"
	"strings"
	"testing"
)

func TestBenchmarkC17(t *testing.T) {
	d, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	if d.NL.NumGates() != 6 {
		t.Errorf("c17 has %d gates, want 6", d.NL.NumGates())
	}
}

func TestBenchmarkSuite(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 10 {
		t.Fatalf("suite has %d circuits", len(names))
	}
	d, err := Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	if d.NL.TimingNodeCount() != 214 {
		t.Error("c432 node count mismatch")
	}
	if _, err := Benchmark("c9999"); err == nil {
		t.Error("expected unknown-circuit error")
	} else if !strings.Contains(err.Error(), "c9999") {
		t.Error("error should name the circuit")
	}
}

func TestEndToEndQuickstart(t *testing.T) {
	d, err := Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	det := AnalyzeSTA(d)
	if det.CircuitDelay() <= 0 {
		t.Fatal("bad nominal delay")
	}
	a, err := AnalyzeSSTA(d, 400)
	if err != nil {
		t.Fatal(err)
	}
	p99 := a.Percentile(0.99)
	if p99 <= det.CircuitDelay() {
		t.Error("p99 should exceed nominal delay")
	}
	widthBefore := d.TotalWidth()
	res, err := OptimizeAccelerated(d, Config{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective >= res.InitialObjective {
		t.Error("optimization did not improve p99")
	}
	// The optimizer works on a clone: the caller's design is untouched
	// and the sized design is Result.Design.
	if d.TotalWidth() != widthBefore {
		t.Error("OptimizeAccelerated mutated the caller's design")
	}
	if res.Design == nil || res.Design.TotalWidth() <= widthBefore {
		t.Fatal("Result.Design does not carry the sized clone")
	}
	mc, err := MonteCarlo(res.Design, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(mc.Percentile(0.99)-res.FinalObjective) / res.FinalObjective; rel > 0.05 {
		t.Errorf("MC and bound diverge by %.1f%%", rel*100)
	}
}

func TestLoadBenchFacade(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n"
	d, err := LoadBench(strings.NewReader(src), "mini")
	if err != nil {
		t.Fatal(err)
	}
	if d.NL.NumGates() != 1 {
		t.Error("mini netlist wrong")
	}
	h := PathHistogram(d, 0.001)
	if h.NumPaths() != 2 {
		t.Errorf("mini has %v paths, want 2", h.NumPaths())
	}
}

func TestGenerateCircuitFacade(t *testing.T) {
	d, err := GenerateCircuit(CircuitSpec{
		Name: "custom", Nodes: 50, Edges: 88, PIs: 7, POs: 4, Depth: 7, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NL.TimingNodeCount() != 50 || d.NL.TimingEdgeCount() != 88 {
		t.Error("custom spec counts not honored")
	}
}
