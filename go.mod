module statsize

go 1.24
