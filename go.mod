module statsize

go 1.24

// Lint toolchain, referenced only by internal/tools (build tag
// "tools"): pins the staticcheck CI installs. Not fetched by normal
// builds or tests.
require honnef.co/go/tools v0.6.1
