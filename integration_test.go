package statsize

import (
	"math"
	"testing"
)

// Three independent timing engines — discretized SSTA, Gaussian moment
// propagation, and Monte Carlo — must agree on random circuits within
// their documented error envelopes. This is the strongest cross-check in
// the repository: the engines share no numerical machinery.
func TestThreeEngineConsistency(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		d, err := GenerateCircuit(CircuitSpec{
			Name:  "xcheck",
			Nodes: 120, Edges: 210, PIs: 10, POs: 6, Depth: 12,
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := AnalyzeSSTA(d, 600)
		if err != nil {
			t.Fatal(err)
		}
		ga := AnalyzeGaussian(d)
		mc, err := MonteCarlo(d, 20000, seed*31)
		if err != nil {
			t.Fatal(err)
		}
		p50 := []float64{a.Percentile(0.5), ga.Percentile(0.5), mc.Percentile(0.5)}
		for i := 1; i < 3; i++ {
			if rel := math.Abs(p50[i]-p50[0]) / p50[0]; rel > 0.03 {
				t.Errorf("seed %d: engine %d median %.4f vs SSTA %.4f (%.1f%%)",
					seed, i, p50[i], p50[0], rel*100)
			}
		}
		// The SSTA bound is conservative versus MC at the objective
		// percentile (sampling noise tolerance only).
		if a.Percentile(0.99) < mc.Percentile(0.99)*(1-0.006) {
			t.Errorf("seed %d: bound %.4f under MC %.4f", seed,
				a.Percentile(0.99), mc.Percentile(0.99))
		}
	}
}

// Optimize-then-validate: after an accelerated run, the objective the
// optimizer reports must match a from-scratch SSTA pass exactly and
// Monte Carlo within the bound's envelope.
func TestOptimizeThenValidate(t *testing.T) {
	d, err := Benchmark("c880")
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeAccelerated(d, Config{MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	sized := res.Design
	// The incremental commits inside the optimizer must leave the sized
	// clone in a state where a fresh analysis reproduces the reported
	// value.
	a, err := AnalyzeSSTA(sized, 600)
	if err != nil {
		t.Fatal(err)
	}
	fresh := a.Percentile(0.99)
	if rel := math.Abs(fresh-res.FinalObjective) / fresh; rel > 0.002 {
		t.Errorf("fresh SSTA p99 %.5f vs optimizer-reported %.5f", fresh, res.FinalObjective)
	}
	mc, err := MonteCarlo(sized, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel := (res.FinalObjective - mc.Percentile(0.99)) / mc.Percentile(0.99); rel < -0.006 || rel > 0.05 {
		t.Errorf("optimized p99 %.4f vs MC %.4f (%.2f%%)",
			res.FinalObjective, mc.Percentile(0.99), rel*100)
	}
	// Loads must not have drifted through hundreds of incremental
	// updates.
	if err := sized.RecomputeLoads(1e-9); err != nil {
		t.Error(err)
	}
}
