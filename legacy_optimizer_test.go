package statsize

import (
	"context"
	"testing"

	"statsize/internal/dist"
	"statsize/internal/ssta"
)

// TestLegacyOptimizerAdapter proves the pre-Session optimizer call shape
// still works end to end: an external strategy registered with the old
// design-taking OptimizerFunc — exactly as third-party code wrote it
// before the Session redesign — runs through Engine.Optimize and
// Engine.OptimizeSession, actually resizes gates, and leaves the session
// consistent (the adapter resynchronizes the analysis with a full pass,
// visible in SessionStats.FullReanalyses).
func TestLegacyOptimizerAdapter(t *testing.T) {
	// A pre-existing registration: sizes up the first three gates by one
	// step each, reporting through the classic Result fields. It knows
	// nothing about sessions.
	legacy := OptimizerFunc{
		OptName: "legacy-three-step",
		Run: func(ctx context.Context, d *Design, cfg Config) (*Result, error) {
			res := &Result{Method: "legacy-three-step", Design: d, InitialWidth: d.TotalWidth()}
			for g := GateID(0); g < 3; g++ {
				d.SetWidth(g, d.Width(g)+d.Lib.DeltaW)
			}
			res.FinalWidth = d.TotalWidth()
			return res, nil
		},
	}
	if err := RegisterOptimizer(legacy); err != nil {
		t.Fatal(err)
	}

	eng, err := New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Through the one-shot path.
	res, err := eng.Optimize(ctx, d, "legacy-three-step")
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "legacy-three-step" {
		t.Fatalf("dispatched %q", res.Method)
	}
	if res.FinalWidth <= res.InitialWidth {
		t.Error("legacy optimizer did not resize anything")
	}
	if res.Design.Width(0) != d.Width(0)+d.Lib.DeltaW {
		t.Error("legacy optimizer's resize lost")
	}
	if d.Width(0) != d.Lib.WMin {
		t.Error("caller's design mutated — clone contract broken")
	}

	// Through a caller-held session: the adapter must resync the live
	// analysis, so post-run session queries see the resized circuit.
	s, err := eng.Open(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before, err := s.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.OptimizeSession(ctx, s, "legacy-three-step"); err != nil {
		t.Fatal(err)
	}
	after, err := s.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("session objective %v not improved from %v — analysis not resynced", after, before)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FullReanalyses != 1 {
		t.Errorf("adapter resync count = %d, want 1", st.FullReanalyses)
	}
	// The resynced analysis must equal a from-scratch pass bit for bit.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ssta.Analyze(ctx, snap, sessionDT(t, s))
	if err != nil {
		t.Fatal(err)
	}
	sink, err := s.SinkDist()
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ApproxEqual(sink, fresh.SinkDist(), 0) {
		t.Error("session analysis inconsistent after legacy run")
	}
}
