package statsize

import (
	"math"
	"testing"
)

func TestGaussianFacade(t *testing.T) {
	d, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	ga := AnalyzeGaussian(d)
	a, err := AnalyzeSSTA(d, 800)
	if err != nil {
		t.Fatal(err)
	}
	// Both engines agree on the median within ~1.5%.
	g, s := ga.Percentile(0.5), a.Percentile(0.5)
	if rel := math.Abs(g-s) / s; rel > 0.015 {
		t.Errorf("gaussian p50 %.4f vs discretized %.4f (%.2f%%)", g, s, rel*100)
	}
}

func TestTopPathsFacade(t *testing.T) {
	d, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	paths := TopPaths(d, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	if paths[0].Delay < paths[1].Delay || paths[1].Delay < paths[2].Delay {
		t.Error("paths not in descending delay order")
	}
	if math.Abs(paths[0].Delay-AnalyzeSTA(d).CircuitDelay()) > 1e-9 {
		t.Error("top path must be the critical path")
	}
}

func TestCriticalityFacade(t *testing.T) {
	d, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	crit, err := Criticality(d, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(crit) != d.NL.NumGates() {
		t.Fatal("criticality length mismatch")
	}
	sum := 0.0
	for _, c := range crit {
		if c < 0 || c > 1 {
			t.Fatalf("criticality %v out of [0,1]", c)
		}
		sum += c
	}
	if sum == 0 {
		t.Error("no gate ever critical")
	}
}

func TestCorrelatedMCFacade(t *testing.T) {
	d, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	ind, err := MonteCarloCorrelated(d, 8000, 5, CorrModel{})
	if err != nil {
		t.Fatal(err)
	}
	corr, err := MonteCarloCorrelated(d, 8000, 5, CorrModel{GlobalFrac: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if corr.Std() <= ind.Std() {
		t.Error("correlation should widen the circuit-delay distribution")
	}
}

// The three optimizers expose a consistent protocol: running any of them
// on a WMax-saturated design is a clean no-op.
func TestOptimizersOnSaturatedDesign(t *testing.T) {
	for _, opt := range []struct {
		name string
		run  func(*Design, Config) (*Result, error)
	}{
		{"det", OptimizeDeterministic},
		{"brute", OptimizeBruteForce},
		{"accel", OptimizeAccelerated},
	} {
		d, err := Benchmark("c17")
		if err != nil {
			t.Fatal(err)
		}
		lib := d.Lib
		for g := 0; g < d.NL.NumGates(); g++ {
			d.SetWidth(GateID(g), lib.WMax)
		}
		res, err := opt.run(d, Config{MaxIterations: 3})
		if err != nil {
			t.Fatalf("%s: %v", opt.name, err)
		}
		if res.Iterations != 0 {
			t.Errorf("%s iterated on a saturated design", opt.name)
		}
	}
}
